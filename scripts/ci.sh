#!/usr/bin/env sh
# CI driver for the test lanes (mirrors the CMakePresets test presets, for
# environments whose cmake predates presets):
#
#   scripts/ci.sh unit      # fast lane: ctest -L unit (seconds) — includes
#                           # the 2-worker sweep_smoke and example smokes
#   scripts/ci.sh full      # tier-1: everything incl. the bench gate
#   scripts/ci.sh nightly   # tier-1 + the 1000-schedule sim_fuzz lane
#   scripts/ci.sh sweep     # the sweep lane alone (-L sweep): worker
#                           # fan-out, kill-and-resume, byte-determinism
#   scripts/ci.sh figures   # figure-reproduction smoke (-L figures): a
#                           # reduced-grid `sweep_run --preset` run per
#                           # figure class, 2 workers, series tables
#   scripts/ci.sh obs       # observability lane (-L obs): tracer
#                           # transparency (bit-identical trajectories
#                           # with tracing on), trace JSON shape, registry
#                           # hostile-name round-trips
#   scripts/ci.sh serving   # serving-workload lane (-L serving): the
#                           # reduced `--preset serving` grid (closed-loop
#                           # clients, Zipf skew, latency histograms)
#                           # through the 2-worker sharded path
#   scripts/ci.sh scale     # 100k-node bench_scale smoke with the
#                           # double-run bit-identity check (the 1M proof
#                           # runs in the nightly lane)
#   scripts/ci.sh asan      # unit lane under ASan+UBSan in a separate
#                           # build-asan tree (never mixes with Release
#                           # objects or the bench gate)
#
# Re-baseline bookkeeping: `cmake --build build --target archive_baseline`
# copies bench/BENCH_baseline.json into bench/history/ (regen_goldens does
# it automatically); once >= 3 history files exist the configure step run
# here switches bench_compare_gate to --trend median-of-history gating at
# a 15% threshold.
#
# Warnings are errors in every lane (SOC_WERROR=ON is the default).
set -eu

lane="${1:-full}"
root="$(cd "$(dirname "$0")/.." && pwd)"

# The asan lane configures its own tree; sanitized objects must never mix
# with the Release tree whose binaries write BENCH_*.json.
if [ "$lane" = "asan" ]; then
  cmake -B "$root/build-asan" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSOC_SANITIZE=address,undefined
  cmake --build "$root/build-asan" -j
  cd "$root/build-asan"
  exec ctest -L unit --output-on-failure -j8
fi

cmake -B "$root/build" -S "$root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$root/build" -j

cd "$root/build"
case "$lane" in
  unit)
    ctest -L unit --output-on-failure -j8
    ;;
  sweep)
    ctest -L sweep --output-on-failure -j8
    ;;
  figures)
    ctest -L figures --output-on-failure -j8
    ;;
  serving)
    ctest -L serving --output-on-failure -j8
    ;;
  obs)
    ctest -L obs --output-on-failure -j8
    ;;
  scale)
    # Serialized on purpose: the scale run is itself the measurement.
    ctest -C scale -L scale --output-on-failure
    ;;
  full)
    ctest --output-on-failure -j8
    ;;
  nightly)
    # -C nightly runs every default-lane test plus the CONFIGURATIONS
    # nightly entries (the large sim_fuzz budget).
    ctest -C nightly --output-on-failure -j8
    ;;
  *)
    echo "usage: scripts/ci.sh [unit|sweep|figures|obs|serving|scale|full|nightly|asan]" >&2
    exit 2
    ;;
esac
