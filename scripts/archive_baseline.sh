#!/usr/bin/env sh
# Archive the current bench/BENCH_baseline.json into bench/history/ under
# the next free index (BENCH_baseline_001.json, _002, ...).  Skips the
# copy when the newest archive is already byte-identical, so re-running is
# idempotent.  Invoked by the `archive_baseline` and `regen_goldens` CMake
# targets; once >= 3 history files exist, the cmake configure step switches
# bench_compare_gate to median-of-history trend mode at a 15% threshold
# (see CMakeLists.txt).
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
baseline="$root/bench/BENCH_baseline.json"
hist="$root/bench/history"

[ -f "$baseline" ] || { echo "no $baseline to archive" >&2; exit 1; }
mkdir -p "$hist"

last=""
i=1
while [ -e "$hist/BENCH_baseline_$(printf '%03d' "$i").json" ]; do
  last="$hist/BENCH_baseline_$(printf '%03d' "$i").json"
  i=$((i + 1))
done

if [ -n "$last" ] && cmp -s "$baseline" "$last"; then
  echo "baseline already archived as $last"
  exit 0
fi

dest="$hist/BENCH_baseline_$(printf '%03d' "$i").json"
cp "$baseline" "$dest"
echo "archived $dest ($i total; trend gate activates at 3)"
