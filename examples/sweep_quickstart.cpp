// Sweep quickstart: the library-level view of src/sweep/ — build a
// SweepSpec grid, partition it into deterministic shards, run them
// in-process, and fold the shard results into the merged report with
// per-config statistics across repeat seeds.
//
//   ./example_sweep_quickstart [--nodes 48] [--hours 0.25] [--repeats 2]
//
// The same sweep scales out without code changes: `sweep_run` runs each
// shard in its own worker process (or prints per-shard commands for other
// machines with --mode=plan), and the merged report comes out
// byte-identical to this in-process run — cell seeds and shard ids derive
// from cell content, never from who executed them.  Try it:
//
//   sweep_run --mode=orchestrate --workers=4 --dir /tmp/sweep-demo
//       --shards 8 --protocols HID-CAN,Newscast --lambdas 0.3,0.5
//       --node-counts 48 --repeats 2 --hours 0.25
#include <cstdio>
#include <filesystem>

#include "src/sweep/io.hpp"
#include "src/sweep/merge.hpp"
#include "src/sweep/runner.hpp"

using namespace soc;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  sweep::SweepSpec spec;
  spec.protocols = {core::ProtocolKind::kHidCan,
                    core::ProtocolKind::kNewscast};
  spec.lambdas = {0.3, 0.5};
  spec.node_counts = {
      static_cast<std::size_t>(args.get_int("nodes", 48))};
  spec.scenarios = {"none", "flash"};
  spec.repeats = static_cast<std::size_t>(args.get_int("repeats", 2));
  spec.hours = args.get_double("hours", 0.25);
  spec.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  const std::size_t shards_total = 4;
  std::printf("# sweep quickstart: %s\n", spec.describe().c_str());
  std::printf("# %zu cells across %zu shards, in-process\n\n",
              spec.cell_count(), shards_total);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "soc_sweep_quickstart")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // The orchestrator with no worker binary runs every shard right here;
  // point options.worker_binary at sweep_run to fan out instead.
  sweep::OrchestrateOptions options;
  options.dir = dir;
  const auto outcome = sweep::orchestrate(spec, shards_total, options);
  if (!outcome.has_value() || !outcome->ok()) {
    std::fprintf(stderr, "sweep failed\n");
    return 1;
  }
  std::printf("shards: %zu ran, %zu already done, %zu failed\n",
              outcome->ran, outcome->skipped, outcome->failed);

  std::string err;
  const auto report = sweep::merge_shards(dir, spec, shards_total, &err);
  if (!report.has_value()) {
    std::fprintf(stderr, "merge failed: %s\n", err.c_str());
    return 1;
  }
  sweep::print_merged_table(*report);

  const std::string merged = dir + "/SWEEP_merged.json";
  if (!sweep::write_merged_report(merged, spec, *report)) {
    std::fprintf(stderr, "cannot write %s\n", merged.c_str());
    return 1;
  }
  std::printf("\nmerged report: %s (bench_compare-readable)\n",
              merged.c_str());
  return 0;
}
