// Protocol face-off: run every discovery protocol on the same workload
// (same seed, same population) and print a side-by-side comparison — the
// quickest way to see the paper's headline claim (HID-CAN is the stable
// all-round winner) on your own machine.  For multi-core runs of the full
// figure grids, use `sweep_run --preset fig5` (sharded across worker
// processes) instead.
//
//   ./example_protocol_faceoff [--nodes 384] [--lambda 0.5] [--hours 6]
#include <cstdio>

#include "src/core/soc.hpp"

int main(int argc, char** argv) {
  using namespace soc;
  const CliArgs args(argc, argv);
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 384));
  const double lambda = args.get_double("lambda", 0.5);
  const double hours = args.get_double("hours", 6.0);

  const std::vector<core::ProtocolKind> kinds{
      core::ProtocolKind::kHidCan,    core::ProtocolKind::kSidCan,
      core::ProtocolKind::kHidCanSos, core::ProtocolKind::kSidCanSos,
      core::ProtocolKind::kSidCanVd,  core::ProtocolKind::kNewscast,
      core::ProtocolKind::kKhdnCan};

  std::printf("Face-off: %zu nodes, lambda=%.2f, %.1f simulated hours\n\n",
              nodes, lambda, hours);

  std::vector<core::ExperimentResults> results(kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    core::ExperimentConfig c;
    c.protocol = kinds[i];
    c.nodes = nodes;
    c.demand_ratio = lambda;
    c.duration = seconds(hours * 3600.0);
    c.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    results[i] = core::run_experiment(c);
  }

  std::printf("%-14s %8s %8s %9s %12s %12s %13s\n", "protocol", "T-Ratio",
              "F-Ratio", "fairness", "msgs/node", "query-delay",
              "dispatch-try");
  for (const auto& r : results) {
    std::printf("%-14s %8.3f %8.3f %9.3f %12.0f %11.2fs %13.2f\n",
                r.protocol.c_str(), r.t_ratio, r.f_ratio, r.fairness,
                r.msg_cost_per_node, r.avg_query_delay_s,
                r.avg_dispatch_attempts);
  }

  // Rank by throughput, then by failed-task ratio.
  std::size_t best = 0;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].t_ratio > results[best].t_ratio) best = i;
  }
  std::printf("\nwinner on throughput: %s (T-Ratio %.3f, F-Ratio %.3f)\n",
              results[best].protocol.c_str(), results[best].t_ratio,
              results[best].f_ratio);
  return 0;
}
