// Churn survival: drive HID-CAN through increasingly hostile node-churning
// (the Fig. 8 scenario) and watch the discovery quality degrade — then
// verify the overlay structurally survived (each node one valid zone,
// symmetric neighbor tables) via the CanSpace invariant checker.
//
//   ./example_churn_survival [--nodes 256] [--hours 4]
#include <cstdio>

#include "src/core/soc.hpp"

int main(int argc, char** argv) {
  using namespace soc;
  const CliArgs args(argc, argv);
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 256));
  const double hours = args.get_double("hours", 4.0);

  std::printf("HID-CAN under churn (%zu nodes, lambda=0.5, %.1fh)\n\n", nodes,
              hours);
  std::printf("%-10s %8s %8s %9s %11s %9s %16s\n", "churn", "T-Ratio",
              "F-Ratio", "fairness", "msgs/node", "alive", "overlay-valid");

  for (const double degree : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    core::ExperimentConfig c;
    c.protocol = core::ProtocolKind::kHidCan;
    c.nodes = nodes;
    c.demand_ratio = 0.5;
    c.duration = seconds(hours * 3600.0);
    c.churn_dynamic_degree = degree;
    c.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    core::Experiment ex(c);
    ex.setup();
    ex.run();
    const auto r = ex.results();

    // Structural check: after hours of churn, the CAN space must still
    // tile the unit cube with one zone per live node and exact neighbor
    // tables.
    auto& pid = dynamic_cast<core::PidCanProtocol&>(ex.protocol());
    const bool valid = pid.space().verify_invariants();

    char churn_label[16];
    std::snprintf(churn_label, sizeof churn_label, "%.0f%%", degree * 100.0);
    std::printf("%-10s %8.3f %8.3f %9.3f %11.0f %9zu %16s\n", churn_label,
                r.t_ratio, r.f_ratio, r.fairness, r.msg_cost_per_node,
                ex.alive_nodes(), valid ? "yes" : "NO (bug!)");
  }
  std::printf("\nRunning tasks keep executing when their host leaves the\n"
              "overlay (the paper defers execution fault-tolerance to future\n"
              "work); churn only perturbs discovery state.\n");
  return 0;
}
