// Overlay explorer: the library as a toolkit, below the Experiment facade.
// Builds a CAN space by hand, publishes synthetic availability records,
// lets the INSCAN index diffusion warm up, then walks through what each
// layer did: duty placement, index tables, PILists, a traced PID-CAN query
// and the INSCAN-RQ exhaustive query for comparison.
//
//   ./example_overlay_explorer [--nodes 64] [--dims 2]
#include <cstdio>
#include <unordered_map>

#include "src/core/soc.hpp"

int main(int argc, char** argv) {
  using namespace soc;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("nodes", 64));
  const auto dims = static_cast<std::size_t>(args.get_int("dims", 2));

  sim::Simulator sim(42);
  net::Topology topo(net::TopologyConfig{}, Rng(43));
  net::MessageBus bus(sim, topo);
  can::CanSpace space(dims, Rng(44));
  index::InscanConfig cfg;
  index::IndexSystem index(sim, bus, space, cfg, Rng(45));
  index.attach_to_space();

  // Synthetic availabilities in [0, 10]^dims.
  const ResourceVector cmax = ResourceVector::filled(dims, 10.0);
  std::unordered_map<NodeId, ResourceVector> avail;
  Rng rng(46);
  index.set_availability_provider(
      [&](NodeId id) -> std::optional<index::Record> {
        index::Record r;
        r.provider = id;
        r.availability = avail.at(id);
        r.location = can::Point::normalized(r.availability, cmax);
        r.published_at = sim.now();
        r.expires_at = sim.now() + cfg.record_ttl;
        return r;
      });

  std::printf("1. Building a %zu-dimensional CAN with %zu nodes...\n", dims, n);
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = topo.add_host();
    space.join(id);
    ResourceVector a(dims);
    for (std::size_t d = 0; d < dims; ++d) a[d] = rng.uniform(0.0, 10.0);
    avail[id] = a;
    index.add_node(id);
    ids.push_back(id);
  }
  std::printf("   overlay invariants hold: %s\n",
              space.verify_invariants() ? "yes" : "NO");
  const NodeId sample = ids[0];
  std::printf("   node %u owns zone %s with %zu neighbors\n", sample.value,
              space.zone_of(sample).to_string().c_str(),
              space.neighbors_of(sample).size());
  if (dims == 2 && n <= 80) {
    std::printf("\n%s", can::render_ascii(space, 72, 24).c_str());
  }

  std::printf("\n2. Warming up: state updates, probe walks, HID diffusion "
              "(1500 simulated seconds)...\n");
  sim.run_until(seconds(1500));
  std::size_t records = 0, pi_entries = 0;
  for (const NodeId id : ids) {
    records += index.cache(id).live_count(sim.now());
    pi_entries += index.pi_list(id).live_count(sim.now());
  }
  std::printf("   %zu availability records cached at duty nodes, "
              "%.1f PIList entries per node\n",
              records, static_cast<double>(pi_entries) / static_cast<double>(n));
  std::printf("   diffusion activity: %llu initiations, %llu relays\n",
              static_cast<unsigned long long>(
                  index.activity().diffusion_initiations),
              static_cast<unsigned long long>(
                  index.activity().diffusion_relays));

  const ResourceVector demand = ResourceVector::filled(dims, 6.0);
  const can::Point corner = can::Point::normalized(demand, cmax);
  std::printf("\n3. Range query: demand %s → corner point %s\n",
              demand.to_string().c_str(), corner.to_string().c_str());
  std::printf("   duty (boundary-corner) node: %u\n",
              space.owner_of(corner).value);

  query::QueryConfig qc;
  query::QueryEngine engine(index, qc);
  // Count only query-pipeline message types so concurrent background
  // maintenance (state updates, probes, diffusion) doesn't pollute the
  // comparison.
  auto query_traffic = [&bus] {
    return bus.stats().sent(net::MsgType::kDutyQuery) +
           bus.stats().sent(net::MsgType::kIndexAgent) +
           bus.stats().sent(net::MsgType::kIndexJump) +
           bus.stats().sent(net::MsgType::kFoundNotice);
  };
  const std::uint64_t before = query_traffic();
  engine.submit_k(ids[1], demand, corner, 1,
                  [&](std::vector<query::Candidate> found) {
                    if (found.empty()) {
                      std::printf("   PID-CAN query: no match\n");
                    } else {
                      std::printf("   PID-CAN query: best-fit provider %u, "
                                  "availability %s\n",
                                  found[0].provider.value,
                                  found[0].availability.to_string().c_str());
                    }
                  });
  sim.run_until(sim.now() + seconds(200));
  const std::uint64_t pid_msgs = query_traffic() - before;

  const std::uint64_t before_full = query_traffic();
  engine.submit_full_range(ids[1], demand, corner,
                           [&](std::vector<query::Candidate> found) {
                             std::printf("   INSCAN-RQ flood: %zu qualified "
                                         "records in the whole range\n",
                                         found.size());
                           });
  sim.run_until(sim.now() + seconds(200));
  const std::uint64_t full_msgs = query_traffic() - before_full;

  std::printf("\n4. Traffic: single-message PID-CAN query cost ~%llu messages;"
              "\n   exhaustive INSCAN-RQ cost ~%llu messages — the gap the\n"
              "   paper bounds by returning only the first k results.\n",
              static_cast<unsigned long long>(pid_msgs),
              static_cast<unsigned long long>(full_msgs));
  return 0;
}
