// Quickstart: run a small Self-Organizing Cloud with the HID-CAN discovery
// protocol and print the paper's headline metrics.
//
//   ./example_quickstart [--nodes 256] [--lambda 0.5] [--hours 6]
//                        [--protocol hid|sid|hid-sos|sid-sos|sid-vd|newscast|khdn]
//                        [--seed 1]
#include <cstdio>
#include <string>

#include "src/core/soc.hpp"

namespace {

soc::core::ProtocolKind parse_protocol(const std::string& s) {
  using soc::core::ProtocolKind;
  if (s == "sid") return ProtocolKind::kSidCan;
  if (s == "hid-sos") return ProtocolKind::kHidCanSos;
  if (s == "sid-sos") return ProtocolKind::kSidCanSos;
  if (s == "sid-vd") return ProtocolKind::kSidCanVd;
  if (s == "newscast") return ProtocolKind::kNewscast;
  if (s == "khdn") return ProtocolKind::kKhdnCan;
  return ProtocolKind::kHidCan;
}

}  // namespace

int main(int argc, char** argv) {
  const soc::CliArgs args(argc, argv);

  soc::core::ExperimentConfig config;
  config.protocol = parse_protocol(args.get("protocol", "hid"));
  config.nodes = static_cast<std::size_t>(args.get_int("nodes", 256));
  config.demand_ratio = args.get_double("lambda", 0.5);
  config.duration = soc::seconds(args.get_double("hours", 6.0) * 3600.0);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("Self-Organizing Cloud quickstart\n");
  std::printf("  protocol=%s nodes=%zu lambda=%.2f duration=%.1fh seed=%llu\n\n",
              soc::core::protocol_name(config.protocol).c_str(), config.nodes,
              config.demand_ratio, soc::to_hours(config.duration),
              static_cast<unsigned long long>(config.seed));

  const soc::core::ExperimentResults r = soc::core::run_experiment(config);

  std::printf("hour  T-Ratio  F-Ratio  fairness  generated finished failed\n");
  for (const auto& s : r.series) {
    std::printf("%4.0f  %7.3f  %7.3f  %8.3f  %9llu %8llu %6llu\n", s.hour,
                s.t_ratio, s.f_ratio, s.fairness,
                static_cast<unsigned long long>(s.generated),
                static_cast<unsigned long long>(s.finished),
                static_cast<unsigned long long>(s.failed));
  }
  std::printf("\nfinal: T-Ratio=%.3f F-Ratio=%.3f fairness=%.3f\n", r.t_ratio,
              r.f_ratio, r.fairness);
  std::printf("traffic: %llu messages total, %.0f per node; "
              "avg query delay %.2fs; avg dispatch attempts %.2f\n",
              static_cast<unsigned long long>(r.total_messages),
              r.msg_cost_per_node, r.avg_query_delay_s,
              r.avg_dispatch_attempts);
  std::printf("simulated events: %llu\n",
              static_cast<unsigned long long>(r.events_executed));
  return 0;
}
