// Fault-tolerant cloud: the paper's §VI future-work extension in action.
// Runs the same churn-heavy SOC three times — with the paper's detached
// churn model, with tasks dying alongside their host, and with
// checkpoint-restart on top of HID-CAN — and compares what survives.
//
//   ./example_fault_tolerant_cloud [--nodes 256] [--hours 4] [--churn 0.75]
#include <cstdio>

#include "src/core/soc.hpp"

int main(int argc, char** argv) {
  using namespace soc;
  const CliArgs args(argc, argv);
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 256));
  const double hours = args.get_double("hours", 4.0);
  const double churn = args.get_double("churn", 0.75);

  struct Case {
    core::ChurnTaskPolicy policy;
    const char* name;
    const char* blurb;
  };
  const Case cases[] = {
      {core::ChurnTaskPolicy::kDetachedExecution, "detached",
       "paper model: churn only disturbs discovery"},
      {core::ChurnTaskPolicy::kTasksLost, "tasks-lost",
       "tasks die with their host"},
      {core::ChurnTaskPolicy::kCheckpointRestart, "checkpoint",
       "periodic snapshots + restart via re-query"},
  };

  std::printf("Execution fault tolerance under %.0f%% churn "
              "(%zu nodes, lambda=0.5, %.1fh)\n\n",
              churn * 100.0, nodes, hours);
  std::printf("%-12s %8s %8s %8s %9s %10s %13s\n", "policy", "T-Ratio",
              "F-Ratio", "killed", "restarts", "snapshots", "wasted-work");

  std::vector<core::ExperimentResults> results(std::size(cases));
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    core::ExperimentConfig c;
    c.protocol = core::ProtocolKind::kHidCan;
    c.nodes = nodes;
    c.demand_ratio = 0.5;
    c.duration = seconds(hours * 3600.0);
    c.churn_dynamic_degree = churn;
    c.churn_task_policy = cases[i].policy;
    c.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    results[i] = core::run_experiment(c);
  }

  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const auto& r = results[i];
    std::printf("%-12s %8.3f %8.3f %8llu %9llu %10llu %13.0f\n",
                cases[i].name, r.t_ratio, r.f_ratio,
                static_cast<unsigned long long>(r.tasks_killed_by_churn),
                static_cast<unsigned long long>(r.checkpoint_restarts),
                static_cast<unsigned long long>(r.checkpoint_snapshots),
                r.wasted_work_rate_seconds);
  }
  std::printf("\n");
  for (const auto& c : cases) std::printf("  %-12s %s\n", c.name, c.blurb);
  std::printf("\nCheckpoint-restart recovers most of the throughput that\n"
              "naive task loss destroys, trading snapshot traffic and some\n"
              "redone work — the trade the paper's future-work section\n"
              "anticipates studying.\n");
  return 0;
}
