// CanSpace: membership, zone assignment and neighbor-table maintenance for
// the CAN overlay.  It plays the role of the overlay's distributed
// maintenance machinery (join splits, departure takeover, neighbor-set
// refresh); protocol traffic still flows hop-by-hop through MessageBus.
//
// Neighbor sets are maintained incrementally on every join/leave from local
// candidate sets (the union of the affected zones' previous neighbors), the
// same information real CAN nodes exchange; an O(n²) verifier used by the
// tests checks symmetry and completeness after arbitrary churn.
//
// Storage is dense: members live in a DenseNodeMap indexed by NodeId (no
// hashing on the per-hop path), and every neighbor entry caches its
// adjacency metadata — the abutting dimension and side — maintained
// incrementally alongside the neighbor lists.  Greedy routing uses the
// cached side to prune candidates with a one-multiply lower bound before
// paying for the full box/center distance, and directional filtering is a
// flag test per neighbor instead of a d-dimensional zone comparison.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "src/can/geometry.hpp"
#include "src/can/partition_tree.hpp"
#include "src/common/dense_node_map.hpp"
#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace soc::can {

/// Direction along a dimension, from a zone's own point of view.
enum class Direction : std::uint8_t { kNegative, kPositive };

class CanSpace {
 public:
  /// Cached adjacency metadata for one neighbor: the unique dimension the
  /// two zones abut along, and which side the neighbor sits on.  Kept in
  /// lock-step with the sorted neighbor id list.
  struct NeighborLink {
    NodeId id;
    std::uint8_t dim = 0;   ///< abutting dimension
    bool positive = false;  ///< neighbor starts where our zone ends
  };

  /// Callbacks the record/index layers hook to stay consistent with zone
  /// ownership changes.
  struct Listener {
    /// All records of `from` that now fall inside `to`'s zone must move.
    std::function<void(NodeId from, NodeId to)> on_rehome;
    /// The node's zone or neighbor set changed (indices may be stale).
    std::function<void(NodeId)> on_topology_changed;
  };

  CanSpace(std::size_t dims, Rng rng);

  [[nodiscard]] std::size_t dims() const { return dims_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  /// Storage density of the member and tree-leaf maps (max slot_span/size
  /// over both; BENCH metric).
  [[nodiscard]] double span_ratio() const {
    return std::max(members_.span_ratio(),
                    tree_.has_value() ? tree_->span_ratio() : 1.0);
  }
  [[nodiscard]] bool contains(NodeId id) const {
    return members_.contains(id);
  }

  void set_listener(Listener listener) { listener_ = std::move(listener); }

  /// First node bootstraps the space; later joins split the zone owning a
  /// random point (or the provided hint).  Returns the join point used.
  Point join(NodeId id, std::optional<Point> point_hint = std::nullopt);

  /// Node departs; its zone is merged/reassigned per the partition tree.
  void leave(NodeId id);

  [[nodiscard]] const Zone& zone_of(NodeId id) const;

  /// Cached center of `id`'s zone (== zone_of(id).center(), maintained on
  /// every zone assignment).  Routing's plateau tie-break scores candidates
  /// by center distance; the cache saves recomputing the center per
  /// candidate per hop.
  [[nodiscard]] const Point& center_of(NodeId id) const;

  [[nodiscard]] NodeId owner_of(const Point& p) const;

  /// Adjacent neighbors (paper definition), sorted by id.
  [[nodiscard]] const std::vector<NodeId>& neighbors_of(NodeId id) const;

  /// Neighbors with their cached adjacency metadata, same order as
  /// neighbors_of.
  [[nodiscard]] const std::vector<NeighborLink>& neighbor_links(
      NodeId id) const;

  /// Neighbors adjacent along `dim` on the given side, written into `out`
  /// (cleared first).  Allocation-free in steady state: pass a reused
  /// scratch buffer.
  void directional_neighbors(NodeId id, std::size_t dim, Direction dir,
                             std::vector<NodeId>& out) const;

  /// Allocating convenience wrapper (tests and cold paths).
  [[nodiscard]] std::vector<NodeId> directional_neighbors(
      NodeId id, std::size_t dim, Direction dir) const;

  /// Greedy candidate scan over `from`'s neighbors toward `target`,
  /// updating (best, best_d, best_c) under the (containment, box distance,
  /// center distance, id) ranking shared by every routing layer.  `best`
  /// starts invalid (or at a sentinel the id tie-break must not fire for);
  /// `best_d`/`best_c` carry the incumbent's distances.  Returns true when
  /// a neighbor zone contains the target (best set, distances forced to
  /// -1 so no later candidate can displace it).
  ///
  /// Neighbors are pruned with an exact lower bound first: a neighbor's
  /// zone starts at our boundary along its cached abutting dimension, so
  /// that axis alone contributes gap² to its box distance; gap² > best_d
  /// means it cannot win under the exact same tie-break chain.
  bool scan_neighbors_toward(NodeId from, const Point& target, NodeId& best,
                             double& best_d, double& best_c) const;

  /// Evaluate one arbitrary member candidate (e.g. an INSCAN long-link
  /// finger) under the exact same ranking scan_neighbors_toward applies to
  /// neighbors — the single definition of the tie-break chain.  Returns
  /// true when the candidate's zone contains the target.
  bool consider_candidate_toward(NodeId cand, const Point& target,
                                 NodeId& best, double& best_d,
                                 double& best_c) const;

  /// Greedy CAN routing step: the neighbor whose zone is closest to the
  /// target (self if the local zone already contains it).  Deterministic
  /// tie-break on node id.
  [[nodiscard]] NodeId next_hop(NodeId from, const Point& target) const;

  /// Full greedy route (for hop-count analysis and tests).  Empty when
  /// `from` already owns the target.
  [[nodiscard]] std::vector<NodeId> route(NodeId from,
                                          const Point& target) const;

  [[nodiscard]] std::vector<NodeId> member_ids() const;

  /// A uniformly random member (for bootstrap contacts).
  [[nodiscard]] NodeId random_member(Rng& rng) const;

  /// Sum of all member zone volumes.  With tiles_unit_cube() this is ≈ 1
  /// by construction; the fuzz harness checks it as a cheap O(n)
  /// tessellation tripwire in addition to the full O(n²) verifier.
  [[nodiscard]] double total_volume() const;

  /// Test oracle: zones tile the cube, neighbor sets are exactly the
  /// adjacency relation and symmetric, and the cached per-neighbor
  /// adjacency metadata matches a from-scratch recomputation.
  [[nodiscard]] bool verify_invariants() const;

  /// The metadata check alone (cheaper; used by the churn stress test).
  [[nodiscard]] bool verify_adjacency_cache() const;

  /// Bytes claimed by overlay membership state: the dense member map,
  /// every member's neighbor/link arrays, and the partition tree
  /// (attribution-profiler hook; O(members), report-time only).
  [[nodiscard]] std::size_t mem_bytes() const {
    std::size_t b = members_.mem_bytes();
    for (const auto& [id, m] : members_) {
      (void)id;
      b += m.neighbors.capacity() * sizeof(NodeId) +
           m.links.capacity() * sizeof(NeighborLink);
    }
    if (tree_.has_value()) b += tree_->mem_bytes();
    return b;
  }

 private:
  /// `neighbors` and `links` are parallel arrays (links[i].id ==
  /// neighbors[i], both sorted by id): the duplicate id column buys the
  /// several neighbors_of() callers a ready vector<NodeId> view with no
  /// per-call materialization.  Only upsert_link/erase_link may mutate
  /// them, and verify_adjacency_cache() checks the lock-step invariant.
  struct Member {
    Zone zone;
    Point center;                     // cached zone.center()
    std::vector<NodeId> neighbors;    // sorted by id
    std::vector<NeighborLink> links;  // parallel to `neighbors`
  };

  Member& member(NodeId id);
  [[nodiscard]] const Member& member(NodeId id) const;

  /// The only way a member's zone may change: keeps the cached center in
  /// lock-step (verified by verify_invariants).
  static void set_zone(Member& m, const Zone& zone) {
    m.zone = zone;
    m.center = zone.center();
  }

  /// Recompute adjacency between `id` and every candidate, updating both
  /// sides' sorted neighbor lists and cached metadata.
  void refresh_against(NodeId id, const std::vector<NodeId>& candidates);
  static void upsert_link(Member& m, NodeId id, std::uint8_t dim,
                          bool positive);
  static void erase_link(Member& m, NodeId id);
  void drop_from_all_neighbors(NodeId id);
  void notify_topology(NodeId id);

  std::size_t dims_;
  Rng rng_;
  std::optional<PartitionTree> tree_;
  DenseNodeMap<Member> members_;
  Listener listener_;
};

}  // namespace soc::can
