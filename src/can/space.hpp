// CanSpace: membership, zone assignment and neighbor-table maintenance for
// the CAN overlay.  It plays the role of the overlay's distributed
// maintenance machinery (join splits, departure takeover, neighbor-set
// refresh); protocol traffic still flows hop-by-hop through MessageBus.
//
// Neighbor sets are maintained incrementally on every join/leave from local
// candidate sets (the union of the affected zones' previous neighbors), the
// same information real CAN nodes exchange; an O(n²) verifier used by the
// tests checks symmetry and completeness after arbitrary churn.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/can/geometry.hpp"
#include "src/can/partition_tree.hpp"
#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace soc::can {

/// Direction along a dimension, from a zone's own point of view.
enum class Direction : std::uint8_t { kNegative, kPositive };

class CanSpace {
 public:
  /// Callbacks the record/index layers hook to stay consistent with zone
  /// ownership changes.
  struct Listener {
    /// All records of `from` that now fall inside `to`'s zone must move.
    std::function<void(NodeId from, NodeId to)> on_rehome;
    /// The node's zone or neighbor set changed (indices may be stale).
    std::function<void(NodeId)> on_topology_changed;
  };

  CanSpace(std::size_t dims, Rng rng);

  [[nodiscard]] std::size_t dims() const { return dims_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool contains(NodeId id) const {
    return members_.contains(id);
  }

  void set_listener(Listener listener) { listener_ = std::move(listener); }

  /// First node bootstraps the space; later joins split the zone owning a
  /// random point (or the provided hint).  Returns the join point used.
  Point join(NodeId id, std::optional<Point> point_hint = std::nullopt);

  /// Node departs; its zone is merged/reassigned per the partition tree.
  void leave(NodeId id);

  [[nodiscard]] const Zone& zone_of(NodeId id) const;
  [[nodiscard]] NodeId owner_of(const Point& p) const;

  /// Adjacent neighbors (paper definition).
  [[nodiscard]] const std::vector<NodeId>& neighbors_of(NodeId id) const;

  /// Neighbors adjacent along `dim` on the given side.
  [[nodiscard]] std::vector<NodeId> directional_neighbors(
      NodeId id, std::size_t dim, Direction dir) const;

  /// Greedy CAN routing step: the neighbor whose zone is closest to the
  /// target (self if the local zone already contains it).  Deterministic
  /// tie-break on node id.
  [[nodiscard]] NodeId next_hop(NodeId from, const Point& target) const;

  /// Full greedy route (for hop-count analysis and tests).  Empty when
  /// `from` already owns the target.
  [[nodiscard]] std::vector<NodeId> route(NodeId from,
                                          const Point& target) const;

  [[nodiscard]] std::vector<NodeId> member_ids() const;

  /// A uniformly random member (for bootstrap contacts).
  [[nodiscard]] NodeId random_member(Rng& rng) const;

  /// Test oracle: zones tile the cube, neighbor sets are exactly the
  /// adjacency relation and symmetric.
  [[nodiscard]] bool verify_invariants() const;

 private:
  struct Member {
    Zone zone;
    std::vector<NodeId> neighbors;  // sorted by id
  };

  Member& member(NodeId id);
  [[nodiscard]] const Member& member(NodeId id) const;

  /// Recompute adjacency between `id` and every candidate, updating both
  /// sides' sorted neighbor lists.
  void refresh_against(NodeId id, const std::vector<NodeId>& candidates);
  static void insert_sorted(std::vector<NodeId>& v, NodeId id);
  static void erase_sorted(std::vector<NodeId>& v, NodeId id);
  void drop_from_all_neighbors(NodeId id);
  void notify_topology(NodeId id);

  std::size_t dims_;
  Rng rng_;
  std::optional<PartitionTree> tree_;
  std::unordered_map<NodeId, Member> members_;
  Listener listener_;
};

}  // namespace soc::can
