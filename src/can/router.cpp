#include "src/can/router.hpp"

#include <memory>
#include <utility>

namespace soc::can {

namespace {

// Everything a multi-hop route needs, allocated once per route; hop
// closures capture only {state, at, ttl} and stay inside the InlineFn
// small buffer.
struct RouteState {
  CanSpace* space;
  net::MessageBus* bus;
  Point target;
  net::MsgType type;
  std::size_t bytes;
  ArriveFn on_arrive;
};

void step(const std::shared_ptr<RouteState>& st, NodeId at, std::size_t ttl) {
  CanSpace& space = *st->space;
  if (!space.contains(at)) return;
  if (space.zone_of(at).contains(st->target)) {
    st->on_arrive(at);
    return;
  }
  if (ttl == 0) return;

  // Rank by (containment, box distance, center distance); the strictly
  // decreasing key avoids cycles and resolves corner/boundary plateaus —
  // see CanSpace::next_hop for the rationale.  The scan prunes candidates
  // via the cached abutting-dimension metadata.
  NodeId best;
  double best_d = space.zone_of(at).distance_sq(st->target);
  double best_c = point_distance_sq(space.center_of(at), st->target);
  space.scan_neighbors_toward(at, st->target, best, best_d, best_c);
  if (!best.valid()) return;  // stalled (transient churn state)
  st->bus->send(at, best, st->type, st->bytes,
                [st, best, ttl] { step(st, best, ttl - 1); });
}

}  // namespace

void route_greedy(CanSpace& space, net::MessageBus& bus, NodeId from,
                  const Point& target, net::MsgType type, std::size_t bytes,
                  std::size_t ttl, ArriveFn on_arrive) {
  auto st = std::make_shared<RouteState>(RouteState{
      &space, &bus, target, type, bytes, std::move(on_arrive)});
  step(st, from, ttl);
}

}  // namespace soc::can
