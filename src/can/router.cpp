#include "src/can/router.hpp"

#include <memory>
#include <utility>

namespace soc::can {

namespace {

void step(CanSpace& space, net::MessageBus& bus, NodeId at,
          const Point& target, net::MsgType type, std::size_t bytes,
          std::size_t ttl,
          const std::shared_ptr<std::function<void(NodeId)>>& done) {
  if (!space.contains(at)) return;
  if (space.zone_of(at).contains(target)) {
    (*done)(at);
    return;
  }
  if (ttl == 0) return;

  // Rank by (containment, box distance, center distance); the strictly
  // decreasing key avoids cycles and resolves corner/boundary plateaus —
  // see CanSpace::next_hop for the rationale.
  NodeId best;
  double best_d = space.zone_of(at).distance_sq(target);
  double best_c = space.zone_of(at).center_distance_sq(target);
  for (const NodeId n : space.neighbors_of(at)) {
    const Zone& z = space.zone_of(n);
    if (z.contains(target)) {
      best = n;
      best_d = -1.0;
      best_c = -1.0;
      break;
    }
    const double d = z.distance_sq(target);
    const double c = z.center_distance_sq(target);
    if (d < best_d || (d == best_d && c < best_c) ||
        (d == best_d && c == best_c && best.valid() && n < best)) {
      best = n;
      best_d = d;
      best_c = c;
    }
  }
  if (!best.valid()) return;  // stalled (transient churn state)
  bus.send(at, best, type, bytes,
           [&space, &bus, best, target, type, bytes, ttl, done] {
             step(space, bus, best, target, type, bytes, ttl - 1, done);
           });
}

}  // namespace

void route_greedy(CanSpace& space, net::MessageBus& bus, NodeId from,
                  const Point& target, net::MsgType type, std::size_t bytes,
                  std::size_t ttl, std::function<void(NodeId)> on_arrive) {
  auto done =
      std::make_shared<std::function<void(NodeId)>>(std::move(on_arrive));
  step(space, bus, from, target, type, bytes, ttl, done);
}

}  // namespace soc::can
