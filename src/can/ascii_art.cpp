#include "src/can/ascii_art.hpp"

#include <algorithm>
#include <vector>

namespace soc::can {

std::string render_ascii(const CanSpace& space, std::size_t width,
                         std::size_t height) {
  SOC_CHECK_MSG(space.dims() == 2, "ASCII rendering needs a 2-D space");
  SOC_CHECK(width >= 8 && height >= 4);

  // +1 so both edges of the unit square land on grid lines.
  const std::size_t w = width + 1;
  const std::size_t h = height + 1;
  std::vector<std::string> grid(h, std::string(w, ' '));

  auto col = [&](double x) {
    return static_cast<std::size_t>(
        std::min(x * static_cast<double>(width), static_cast<double>(width)));
  };
  // The y axis points up: row 0 is the top of the picture (y = 1).
  auto row = [&](double y) {
    return height - static_cast<std::size_t>(std::min(
                        y * static_cast<double>(height),
                        static_cast<double>(height)));
  };

  for (const NodeId id : space.member_ids()) {
    const Zone& z = space.zone_of(id);
    const std::size_t c0 = col(z.lo(0));
    const std::size_t c1 = col(z.hi(0));
    const std::size_t r0 = row(z.hi(1));
    const std::size_t r1 = row(z.lo(1));
    for (std::size_t c = c0; c <= c1; ++c) {
      grid[r0][c] = '-';
      grid[r1][c] = '-';
    }
    for (std::size_t r = r0; r <= r1; ++r) {
      grid[r][c0] = grid[r][c0] == '-' ? '+' : '|';
      grid[r][c1] = grid[r][c1] == '-' ? '+' : '|';
    }
    grid[r0][c0] = grid[r0][c1] = grid[r1][c0] = grid[r1][c1] = '+';

    // Owner label centered-ish inside the zone, if there is room.
    const std::string label = std::to_string(id.value);
    if (c1 - c0 > label.size() + 1 && r1 - r0 >= 2) {
      const std::size_t lr = (r0 + r1) / 2;
      const std::size_t lc = (c0 + c1 - label.size()) / 2 + 1;
      for (std::size_t i = 0; i < label.size(); ++i) {
        grid[lr][lc + i] = label[i];
      }
    }
  }

  std::string out;
  out.reserve(h * (w + 1));
  for (const auto& line : grid) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace soc::can
