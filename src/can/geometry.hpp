// Geometry of the CAN coordinate space: d-dimensional points in the unit
// cube and axis-aligned zones produced by recursive binary splits.
//
// Zones use half-open intervals [lo, hi) per dimension, with the top edge
// hi == 1 treated as closed so the whole cube [0,1]^d is covered.  All
// splits bisect exactly at the midpoint, so every boundary coordinate is a
// dyadic rational represented exactly in a double — adjacency tests can use
// exact comparison without epsilons.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string>

#include "src/common/assert.hpp"
#include "src/common/resource_vector.hpp"

namespace soc::can {

constexpr std::size_t kMaxDims = ResourceVector::kMaxDims;

/// A location in the CAN space, components in [0, 1].
class Point {
 public:
  Point() = default;
  explicit Point(std::size_t dims) : size_(dims) {
    SOC_CHECK(dims > 0 && dims <= kMaxDims);
    v_.fill(0.0);
  }
  Point(std::initializer_list<double> init) : size_(init.size()) {
    SOC_CHECK(init.size() > 0 && init.size() <= kMaxDims);
    std::size_t i = 0;
    for (const double x : init) v_[i++] = x;
  }

  /// Map a resource vector into the unit cube by dividing componentwise by
  /// the global capacity ceiling c_max (values clamp into [0, 1]).
  static Point normalized(const ResourceVector& v, const ResourceVector& cmax);

  [[nodiscard]] std::size_t dims() const { return size_; }
  double& operator[](std::size_t i) {
    SOC_DCHECK(i < size_);
    return v_[i];
  }
  double operator[](std::size_t i) const {
    SOC_DCHECK(i < size_);
    return v_[i];
  }

  bool operator==(const Point& o) const {
    if (size_ != o.size_) return false;
    for (std::size_t i = 0; i < size_; ++i)
      if (v_[i] != o.v_[i]) return false;
    return true;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::array<double, kMaxDims> v_{};
  std::size_t size_ = 0;
};

/// Squared Euclidean distance between two points.  With `a` a cached zone
/// center this is exactly Zone::center_distance_sq: the cache stores
/// 0.5 * (lo + hi) per axis — the same expression — so the subtraction and
/// sum are bit-identical to the uncached form.
[[nodiscard]] inline double point_distance_sq(const Point& a, const Point& b) {
  SOC_DCHECK(a.dims() == b.dims());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.dims(); ++i) {
    const double g = b[i] - a[i];
    sum += g * g;
  }
  return sum;
}

/// An axis-aligned box in the CAN space.
class Zone {
 public:
  Zone() = default;
  /// The full unit cube.
  static Zone unit(std::size_t dims);
  Zone(const Point& lo, const Point& hi);

  [[nodiscard]] std::size_t dims() const { return lo_.dims(); }
  [[nodiscard]] const Point& lo() const { return lo_; }
  [[nodiscard]] const Point& hi() const { return hi_; }
  [[nodiscard]] double lo(std::size_t d) const { return lo_[d]; }
  [[nodiscard]] double hi(std::size_t d) const { return hi_[d]; }
  [[nodiscard]] double side(std::size_t d) const { return hi_[d] - lo_[d]; }
  [[nodiscard]] double volume() const;
  [[nodiscard]] Point center() const;

  /// Containment with the closed-top-edge convention.
  [[nodiscard]] bool contains(const Point& p) const;

  /// Positive-measure overlap of the projections onto dimension d.
  [[nodiscard]] bool overlaps_dim(const Zone& o, std::size_t d) const;
  /// Full-box positive-measure intersection.
  [[nodiscard]] bool overlaps(const Zone& o) const;

  /// The two zones abut along dimension d (share a (d-1)-face boundary
  /// coordinate on that axis) — does not check the other dimensions.
  [[nodiscard]] bool abuts_dim(const Zone& o, std::size_t d) const;

  /// CAN adjacency (the paper's "adjacent neighbors"): the boxes abut along
  /// exactly one dimension and overlap with positive measure in all others.
  /// Returns the abutting dimension, or nullopt.
  [[nodiscard]] std::optional<std::size_t> adjacency_dim(const Zone& o) const;

  /// True when `o` lies on the positive side of *this along `dim` (o starts
  /// where this ends).  Only meaningful when abuts_dim(o, dim).
  [[nodiscard]] bool positive_side(const Zone& o, std::size_t dim) const {
    return o.lo(dim) == hi(dim);
  }

  /// Split in half along `d`; returns {lower, upper}.
  [[nodiscard]] std::pair<Zone, Zone> split(std::size_t d) const;

  /// If the two zones are mergeable (identical on all dims but one, where
  /// they abut), return the merged box.
  [[nodiscard]] std::optional<Zone> merged_with(const Zone& o) const;

  /// Squared Euclidean distance from p to the closest point of the box.
  [[nodiscard]] double distance_sq(const Point& p) const;

  /// Squared Euclidean distance from p to the box center — routing's
  /// plateau tie-breaker.
  [[nodiscard]] double center_distance_sq(const Point& p) const;

  /// Does the box intersect the query range [lo_q, 1]^d, i.e. does it
  /// contain any point dominating lo_q?  Used by INSCAN-RQ.
  [[nodiscard]] bool intersects_upper_range(const Point& lo_q) const;

  bool operator==(const Zone& o) const { return lo_ == o.lo_ && hi_ == o.hi_; }

  [[nodiscard]] std::string to_string() const;

 private:
  Point lo_, hi_;
};

}  // namespace soc::can
