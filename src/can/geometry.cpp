#include "src/can/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace soc::can {

Point Point::normalized(const ResourceVector& v, const ResourceVector& cmax) {
  SOC_CHECK(v.size() == cmax.size());
  Point p(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    SOC_CHECK(cmax[i] > 0.0);
    p[i] = std::clamp(v[i] / cmax[i], 0.0, 1.0);
  }
  return p;
}

std::string Point::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < size_; ++i) {
    if (i) os << ", ";
    os << v_[i];
  }
  os << ')';
  return os.str();
}

Zone Zone::unit(std::size_t dims) {
  Point lo(dims), hi(dims);
  for (std::size_t i = 0; i < dims; ++i) hi[i] = 1.0;
  return Zone(lo, hi);
}

Zone::Zone(const Point& lo, const Point& hi) : lo_(lo), hi_(hi) {
  SOC_CHECK(lo.dims() == hi.dims());
  for (std::size_t i = 0; i < lo.dims(); ++i) SOC_CHECK(lo[i] < hi[i]);
}

double Zone::volume() const {
  double v = 1.0;
  for (std::size_t i = 0; i < dims(); ++i) v *= side(i);
  return v;
}

Point Zone::center() const {
  Point c(dims());
  for (std::size_t i = 0; i < dims(); ++i) c[i] = 0.5 * (lo_[i] + hi_[i]);
  return c;
}

bool Zone::contains(const Point& p) const {
  SOC_DCHECK(p.dims() == dims());
  for (std::size_t i = 0; i < dims(); ++i) {
    if (p[i] < lo_[i]) return false;
    if (p[i] >= hi_[i] && !(hi_[i] == 1.0 && p[i] == 1.0)) return false;
  }
  return true;
}

bool Zone::overlaps_dim(const Zone& o, std::size_t d) const {
  return lo_[d] < o.hi_[d] && o.lo_[d] < hi_[d];
}

bool Zone::overlaps(const Zone& o) const {
  SOC_DCHECK(o.dims() == dims());
  for (std::size_t i = 0; i < dims(); ++i)
    if (!overlaps_dim(o, i)) return false;
  return true;
}

bool Zone::abuts_dim(const Zone& o, std::size_t d) const {
  return hi_[d] == o.lo_[d] || o.hi_[d] == lo_[d];
}

std::optional<std::size_t> Zone::adjacency_dim(const Zone& o) const {
  SOC_DCHECK(o.dims() == dims());
  std::optional<std::size_t> abut;
  for (std::size_t i = 0; i < dims(); ++i) {
    if (overlaps_dim(o, i)) continue;
    if (!abuts_dim(o, i)) return std::nullopt;  // gap on this axis
    if (abut.has_value()) return std::nullopt;  // corner contact only
    abut = i;
  }
  return abut;  // nullopt means full overlap (shouldn't happen for zones)
}

std::pair<Zone, Zone> Zone::split(std::size_t d) const {
  SOC_CHECK(d < dims());
  const double mid = 0.5 * (lo_[d] + hi_[d]);
  Point lo_hi = hi_;
  lo_hi[d] = mid;
  Point hi_lo = lo_;
  hi_lo[d] = mid;
  return {Zone(lo_, lo_hi), Zone(hi_lo, hi_)};
}

std::optional<Zone> Zone::merged_with(const Zone& o) const {
  SOC_DCHECK(o.dims() == dims());
  std::optional<std::size_t> merge_dim;
  for (std::size_t i = 0; i < dims(); ++i) {
    if (lo_[i] == o.lo_[i] && hi_[i] == o.hi_[i]) continue;
    if (!abuts_dim(o, i)) return std::nullopt;
    if (merge_dim.has_value()) return std::nullopt;
    merge_dim = i;
  }
  if (!merge_dim.has_value()) return std::nullopt;
  const std::size_t d = *merge_dim;
  Point lo = lo_, hi = hi_;
  lo[d] = std::min(lo_[d], o.lo_[d]);
  hi[d] = std::max(hi_[d], o.hi_[d]);
  return Zone(lo, hi);
}

double Zone::distance_sq(const Point& p) const {
  SOC_DCHECK(p.dims() == dims());
  double sum = 0.0;
  for (std::size_t i = 0; i < dims(); ++i) {
    double g = 0.0;
    if (p[i] < lo_[i]) {
      g = lo_[i] - p[i];
    } else if (p[i] > hi_[i]) {
      g = p[i] - hi_[i];
    }
    sum += g * g;
  }
  return sum;
}

double Zone::center_distance_sq(const Point& p) const {
  SOC_DCHECK(p.dims() == dims());
  double sum = 0.0;
  for (std::size_t i = 0; i < dims(); ++i) {
    const double g = p[i] - 0.5 * (lo_[i] + hi_[i]);
    sum += g * g;
  }
  return sum;
}

bool Zone::intersects_upper_range(const Point& lo_q) const {
  SOC_DCHECK(lo_q.dims() == dims());
  // The range [lo_q, 1]^d intersects the box iff on every axis the box's
  // top edge reaches past lo_q.
  for (std::size_t i = 0; i < dims(); ++i) {
    if (hi_[i] < lo_q[i] || (hi_[i] == lo_q[i] && hi_[i] != 1.0)) return false;
  }
  return true;
}

std::string Zone::to_string() const {
  std::ostringstream os;
  os << '[' << lo_.to_string() << " .. " << hi_.to_string() << ']';
  return os.str();
}

}  // namespace soc::can
