// The binary partition tree underlying the CAN space.  Every zone split on
// node join adds two children; node departures repair the tree so that each
// live node owns exactly one valid (binary-split-shaped) zone — this is the
// "binary partition tree based background zone reassignment algorithm"
// ([14], used by the paper for its node-churning experiments).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "src/can/geometry.hpp"
#include "src/common/dense_node_map.hpp"
#include "src/common/types.hpp"

namespace soc::can {

class PartitionTree {
 public:
  struct TreeNode {
    Zone zone;
    std::size_t depth = 0;
    TreeNode* parent = nullptr;
    std::unique_ptr<TreeNode> left, right;
    NodeId owner;  // valid iff leaf

    [[nodiscard]] bool is_leaf() const { return !left; }
  };

  /// Outcome of a departure repair, so the membership layer can move
  /// records and fix neighbor sets.
  struct Repair {
    /// Node whose zone grew by a merge (absorbs `merged_from`'s old zone),
    /// or invalid when no merge happened (single-node tree).
    NodeId merge_survivor;
    NodeId merged_from;
    /// Node that took over the departed leaf's (unchanged) zone, or invalid
    /// when the departed zone was merged away directly.
    NodeId reassigned_to;
  };

  PartitionTree(std::size_t dims, NodeId first_owner);

  [[nodiscard]] std::size_t dims() const { return dims_; }
  [[nodiscard]] std::size_t leaf_count() const { return leaves_.size(); }
  /// Storage density of the leaf map (slot_span/size; BENCH metric).
  [[nodiscard]] double span_ratio() const { return leaves_.span_ratio(); }
  [[nodiscard]] bool contains_owner(NodeId id) const {
    return leaves_.contains(id);
  }

  [[nodiscard]] const Zone& zone_of(NodeId id) const;
  [[nodiscard]] std::size_t depth_of(NodeId id) const;

  /// Owner of the leaf containing p (tree descent oracle).
  [[nodiscard]] NodeId owner_of(const Point& p) const;

  /// Split the leaf owned by `owner` along `depth % dims` (the original
  /// CAN's cyclic split order).  `owner` keeps the half containing
  /// `keep_point` hint if provided, otherwise the lower half; `joiner`
  /// receives the other half.  Returns the joiner's zone.
  Zone split(NodeId owner, NodeId joiner,
             const std::optional<Point>& joiner_point = std::nullopt);

  /// Remove `owner`'s leaf and repair the tree.  Requires leaf_count() > 1.
  Repair leave(NodeId owner);

  /// All live owners, in ascending id order.
  [[nodiscard]] std::vector<NodeId> owners() const;

  /// Test oracle: zones of all leaves tile the unit cube exactly.
  [[nodiscard]] bool tiles_unit_cube() const;

  /// Bytes claimed by the tree nodes plus the leaf map
  /// (attribution-profiler hook; O(nodes) walk, report-time only).
  [[nodiscard]] std::size_t mem_bytes() const {
    std::size_t n = 0;
    std::vector<const TreeNode*> stack;
    stack.push_back(root_.get());
    while (!stack.empty()) {
      const TreeNode* t = stack.back();
      stack.pop_back();
      if (t == nullptr) continue;
      ++n;
      stack.push_back(t->left.get());
      stack.push_back(t->right.get());
    }
    return n * sizeof(TreeNode) + leaves_.mem_bytes();
  }

 private:
  TreeNode* leaf_for(NodeId id) const;
  /// Deepest leftmost pair of sibling leaves in the subtree rooted at t.
  static TreeNode* find_sibling_leaf_pair(TreeNode* t);

  std::size_t dims_;
  std::unique_ptr<TreeNode> root_;
  DenseNodeMap<TreeNode*> leaves_;  ///< dense by NodeId
};

}  // namespace soc::can
