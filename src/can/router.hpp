// Plain CAN greedy routing over the message bus: one bus message per hop,
// arriving at the owner of the target point.  (INSCAN's long-link-augmented
// routing lives in index::IndexSystem::route; this is the vanilla O(n^{1/d})
// CAN rule used by the KHDN-CAN baseline and available for comparison.)
#pragma once

#include <cstddef>

#include "src/can/space.hpp"
#include "src/common/inline_fn.hpp"
#include "src/net/message_bus.hpp"

namespace soc::can {

using ArriveFn = InlineFn<void(NodeId)>;

/// Route from `from` toward `target`; `on_arrive(duty)` runs at the zone
/// owner.  The message is silently lost if a hop churns out, greedy
/// progress stalls, or `ttl` hops are exhausted.
///
/// Per-route cost: one allocation for the shared route state (target point,
/// arrival callback); every per-hop forwarding closure is slot-sized and
/// lives inside the event-queue slab.
void route_greedy(CanSpace& space, net::MessageBus& bus, NodeId from,
                  const Point& target, net::MsgType type, std::size_t bytes,
                  std::size_t ttl, ArriveFn on_arrive);

}  // namespace soc::can
