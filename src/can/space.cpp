#include "src/can/space.hpp"

#include <algorithm>

namespace soc::can {

CanSpace::CanSpace(std::size_t dims, Rng rng) : dims_(dims), rng_(rng) {
  SOC_CHECK(dims > 0 && dims <= kMaxDims);
}

CanSpace::Member& CanSpace::member(NodeId id) {
  Member* m = members_.find(id);
  SOC_CHECK_MSG(m != nullptr, "unknown member");
  return *m;
}

const CanSpace::Member& CanSpace::member(NodeId id) const {
  const Member* m = members_.find(id);
  SOC_CHECK_MSG(m != nullptr, "unknown member");
  return *m;
}

void CanSpace::upsert_link(Member& m, NodeId id, std::uint8_t dim,
                           bool positive) {
  const auto it = std::lower_bound(m.neighbors.begin(), m.neighbors.end(), id);
  const auto pos = it - m.neighbors.begin();
  if (it == m.neighbors.end() || *it != id) {
    m.neighbors.insert(it, id);
    m.links.insert(m.links.begin() + pos, NeighborLink{id, dim, positive});
    return;
  }
  // Already neighbors: the abutting dimension/side may have changed with a
  // zone update, so always rewrite the cached metadata.
  m.links[static_cast<std::size_t>(pos)] = NeighborLink{id, dim, positive};
}

void CanSpace::erase_link(Member& m, NodeId id) {
  const auto it = std::lower_bound(m.neighbors.begin(), m.neighbors.end(), id);
  if (it != m.neighbors.end() && *it == id) {
    m.links.erase(m.links.begin() + (it - m.neighbors.begin()));
    m.neighbors.erase(it);
  }
}

void CanSpace::refresh_against(NodeId id,
                               const std::vector<NodeId>& candidates) {
  Member& m = member(id);
  for (const NodeId c : candidates) {
    if (c == id || !members_.contains(c)) continue;
    Member& other = member(c);
    const auto adim = m.zone.adjacency_dim(other.zone);
    if (adim.has_value()) {
      const auto dim = static_cast<std::uint8_t>(*adim);
      const bool positive = m.zone.positive_side(other.zone, *adim);
      upsert_link(m, c, dim, positive);
      upsert_link(other, id, dim, !positive);
    } else {
      erase_link(m, c);
      erase_link(other, id);
    }
  }
}

void CanSpace::drop_from_all_neighbors(NodeId id) {
  for (const NodeId n : member(id).neighbors) {
    erase_link(member(n), id);
  }
}

void CanSpace::notify_topology(NodeId id) {
  if (listener_.on_topology_changed) listener_.on_topology_changed(id);
}

Point CanSpace::join(NodeId id, std::optional<Point> point_hint) {
  SOC_CHECK(id.valid());
  SOC_CHECK_MSG(!members_.contains(id), "node already joined");

  Point p = point_hint.value_or(Point(dims_));
  if (!point_hint.has_value()) {
    for (std::size_t i = 0; i < dims_; ++i) p[i] = rng_.uniform();
  }

  if (!tree_.has_value()) {
    tree_.emplace(dims_, id);
    const Zone unit = Zone::unit(dims_);
    members_.emplace(id, Member{unit, unit.center(), {}, {}});
    notify_topology(id);
    return p;
  }

  const NodeId owner = tree_->owner_of(p);
  tree_->split(owner, id, p);

  // Candidates for both halves: the splitter's old neighborhood plus the
  // two halves against each other.
  std::vector<NodeId> candidates = member(owner).neighbors;
  candidates.push_back(owner);

  // Insert the joiner before touching the owner again: DenseNodeMap growth
  // invalidates outstanding references.
  const Zone joiner_zone = tree_->zone_of(id);
  members_.emplace(id, Member{joiner_zone, joiner_zone.center(), {}, {}});
  set_zone(member(owner), tree_->zone_of(owner));

  refresh_against(owner, candidates);
  candidates.push_back(id);  // not used against itself; harmless
  refresh_against(id, candidates);

  // Records of the splitter that now fall in the joiner's half move over.
  if (listener_.on_rehome) listener_.on_rehome(owner, id);
  notify_topology(owner);
  notify_topology(id);
  for (const NodeId n : member(id).neighbors) notify_topology(n);
  return p;
}

void CanSpace::leave(NodeId id) {
  SOC_CHECK_MSG(members_.contains(id), "unknown member");
  if (members_.size() == 1) {
    members_.clear();
    tree_.reset();
    return;
  }

  const PartitionTree::Repair repair = tree_->leave(id);

  // Collect every node whose zone or neighborhood may change, with their
  // pre-repair neighbor sets as candidate pools.
  std::vector<NodeId> affected;
  affected.push_back(repair.merge_survivor);
  if (repair.reassigned_to.valid()) affected.push_back(repair.reassigned_to);

  std::vector<NodeId> candidates = member(id).neighbors;
  for (const NodeId a : affected) {
    if (!members_.contains(a)) continue;
    const auto& ns = member(a).neighbors;
    candidates.insert(candidates.end(), ns.begin(), ns.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Records of the departing node move to whoever now owns its old zone:
  // the reassigned node when there is one, else the merge survivor.
  const NodeId heir = repair.reassigned_to.valid() ? repair.reassigned_to
                                                   : repair.merge_survivor;
  if (listener_.on_rehome) listener_.on_rehome(id, heir);

  drop_from_all_neighbors(id);
  members_.erase(id);

  // Apply new zones, then refresh adjacency for all affected nodes against
  // the combined candidate pool.
  for (const NodeId a : affected) {
    set_zone(member(a), tree_->zone_of(a));
  }
  // The candidate pool (old neighborhoods of the departed node and of every
  // affected node) covers all adjacency pairs that can appear or disappear:
  // zone growth never loses neighbors, and the relocated node's new
  // neighborhood is a subset of the departed node's old one.
  for (const NodeId a : affected) {
    refresh_against(a, candidates);
  }
  // When y (reassigned_to) vacated its old zone to z, records y held move
  // to z as part of the same repair.
  if (repair.reassigned_to.valid() && listener_.on_rehome) {
    listener_.on_rehome(repair.reassigned_to, repair.merge_survivor);
  }

  for (const NodeId a : affected) notify_topology(a);
  for (const NodeId c : candidates) {
    if (members_.contains(c)) notify_topology(c);
  }

  // Safe point: every Member& taken during the repair is dead and all
  // listener callbacks have returned.  Reclaim departed-node holes so
  // long churn keeps iteration O(live), not O(total joins ever).
  members_.maybe_compact();
}

const Zone& CanSpace::zone_of(NodeId id) const { return member(id).zone; }

const Point& CanSpace::center_of(NodeId id) const { return member(id).center; }

NodeId CanSpace::owner_of(const Point& p) const {
  SOC_CHECK(tree_.has_value());
  return tree_->owner_of(p);
}

const std::vector<NodeId>& CanSpace::neighbors_of(NodeId id) const {
  return member(id).neighbors;
}

const std::vector<CanSpace::NeighborLink>& CanSpace::neighbor_links(
    NodeId id) const {
  return member(id).links;
}

void CanSpace::directional_neighbors(NodeId id, std::size_t dim, Direction dir,
                                     std::vector<NodeId>& out) const {
  SOC_CHECK(dim < dims_);
  out.clear();
  const bool want_positive = dir == Direction::kPositive;
  for (const NeighborLink& l : member(id).links) {
    if (l.dim == dim && l.positive == want_positive) out.push_back(l.id);
  }
}

std::vector<NodeId> CanSpace::directional_neighbors(NodeId id, std::size_t dim,
                                                    Direction dir) const {
  std::vector<NodeId> out;
  directional_neighbors(id, dim, dir, out);
  return out;
}

bool CanSpace::scan_neighbors_toward(NodeId from, const Point& target,
                                     NodeId& best, double& best_d,
                                     double& best_c) const {
  const Member& m = member(from);
  for (const NeighborLink& l : m.links) {
    // Exact prune: the neighbor's zone starts at our boundary along its
    // abutting dimension, so that axis alone contributes at least gap² to
    // its box distance (an fp lower bound: distance_sq sums the identical
    // subtraction's square with non-negative terms).  Strict > keeps
    // plateau ties — resolved by center distance then id — intact, and a
    // containing neighbor always has gap <= 0, so it is never pruned.
    const double gap = l.positive ? m.zone.hi(l.dim) - target[l.dim]
                                  : target[l.dim] - m.zone.lo(l.dim);
    if (gap > 0.0 && gap * gap > best_d) continue;
    if (consider_candidate_toward(l.id, target, best, best_d, best_c)) {
      return true;
    }
  }
  return false;
}

bool CanSpace::consider_candidate_toward(NodeId cand, const Point& target,
                                         NodeId& best, double& best_d,
                                         double& best_c) const {
  const Member& cm = member(cand);
  const Zone& z = cm.zone;
  if (z.contains(target)) {
    best = cand;
    best_d = -1.0;
    best_c = -1.0;
    return true;
  }
  const double d = z.distance_sq(target);
  const double c = point_distance_sq(cm.center, target);
  if (d < best_d || (d == best_d && c < best_c) ||
      (d == best_d && c == best_c && best.valid() && cand < best)) {
    best = cand;
    best_d = d;
    best_c = c;
  }
  return false;
}

NodeId CanSpace::next_hop(NodeId from, const Point& target) const {
  const Member& m = member(from);
  if (m.zone.contains(target)) return from;
  // Candidates are ranked by (containment, box distance, center distance):
  // a zone owning the target wins outright; otherwise strictly smaller box
  // distance wins; center distance breaks plateaus — in particular targets
  // on zone corners, where several non-owning zones all report box
  // distance 0 and the owner may not be adjacent to the current node.
  // The key strictly decreases every hop, so routing cannot cycle.
  NodeId best;  // invalid until a neighbor strictly improves on our zone
  double best_d = m.zone.distance_sq(target);
  double best_c = point_distance_sq(m.center, target);
  scan_neighbors_toward(from, target, best, best_d, best_c);
  SOC_CHECK_MSG(best.valid(), "greedy routing stalled");
  return best;
}

std::vector<NodeId> CanSpace::route(NodeId from, const Point& target) const {
  std::vector<NodeId> path;
  NodeId cur = from;
  while (!member(cur).zone.contains(target)) {
    cur = next_hop(cur, target);
    path.push_back(cur);
    SOC_CHECK_MSG(path.size() <= members_.size(), "routing loop");
  }
  return path;
}

std::vector<NodeId> CanSpace::member_ids() const {
  std::vector<NodeId> out;
  out.reserve(members_.size());
  // DenseNodeMap iterates in ascending id order, so no sort is needed.
  for (const auto& [id, _] : members_) out.push_back(id);
  return out;
}

NodeId CanSpace::random_member(Rng& rng) const {
  const auto ids = member_ids();
  SOC_CHECK(!ids.empty());
  return ids[rng.pick_index(ids.size())];
}

double CanSpace::total_volume() const {
  double sum = 0.0;
  for (const auto& [id, m] : members_) sum += m.zone.volume();
  return sum;
}

bool CanSpace::verify_adjacency_cache() const {
  for (const auto& [id, m] : members_) {
    if (!(m.center == m.zone.center())) return false;
    if (m.links.size() != m.neighbors.size()) return false;
    for (std::size_t i = 0; i < m.links.size(); ++i) {
      const NeighborLink& l = m.links[i];
      if (l.id != m.neighbors[i]) return false;
      const Member* other = members_.find(l.id);
      if (other == nullptr) return false;
      const auto adim = m.zone.adjacency_dim(other->zone);
      if (!adim.has_value() || *adim != l.dim) return false;
      if (m.zone.positive_side(other->zone, *adim) != l.positive) return false;
    }
  }
  return true;
}

bool CanSpace::verify_invariants() const {
  if (members_.empty()) return true;
  if (!tree_->tiles_unit_cube()) return false;
  if (!verify_adjacency_cache()) return false;
  const auto ids = member_ids();
  for (const NodeId a : ids) {
    if (member(a).zone == tree_->zone_of(a)) continue;
    return false;
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Member& mi = member(ids[i]);
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      const Member& mj = member(ids[j]);
      const bool adjacent = mi.zone.adjacency_dim(mj.zone).has_value();
      const bool listed_ij = std::binary_search(mi.neighbors.begin(),
                                                mi.neighbors.end(), ids[j]);
      const bool listed_ji = std::binary_search(mj.neighbors.begin(),
                                                mj.neighbors.end(), ids[i]);
      if (adjacent != listed_ij || adjacent != listed_ji) return false;
      if (mi.zone.overlaps(mj.zone)) return false;
    }
  }
  return true;
}

}  // namespace soc::can
