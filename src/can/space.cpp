#include "src/can/space.hpp"

#include <algorithm>

namespace soc::can {

CanSpace::CanSpace(std::size_t dims, Rng rng) : dims_(dims), rng_(rng) {
  SOC_CHECK(dims > 0 && dims <= kMaxDims);
}

CanSpace::Member& CanSpace::member(NodeId id) {
  const auto it = members_.find(id);
  SOC_CHECK_MSG(it != members_.end(), "unknown member");
  return it->second;
}

const CanSpace::Member& CanSpace::member(NodeId id) const {
  const auto it = members_.find(id);
  SOC_CHECK_MSG(it != members_.end(), "unknown member");
  return it->second;
}

void CanSpace::insert_sorted(std::vector<NodeId>& v, NodeId id) {
  const auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it == v.end() || *it != id) v.insert(it, id);
}

void CanSpace::erase_sorted(std::vector<NodeId>& v, NodeId id) {
  const auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it != v.end() && *it == id) v.erase(it);
}

void CanSpace::refresh_against(NodeId id, const std::vector<NodeId>& candidates) {
  Member& m = member(id);
  for (const NodeId c : candidates) {
    if (c == id || !members_.contains(c)) continue;
    Member& other = member(c);
    const bool adjacent = m.zone.adjacency_dim(other.zone).has_value();
    if (adjacent) {
      insert_sorted(m.neighbors, c);
      insert_sorted(other.neighbors, id);
    } else {
      erase_sorted(m.neighbors, c);
      erase_sorted(other.neighbors, id);
    }
  }
}

void CanSpace::drop_from_all_neighbors(NodeId id) {
  for (const NodeId n : member(id).neighbors) {
    erase_sorted(member(n).neighbors, id);
  }
}

void CanSpace::notify_topology(NodeId id) {
  if (listener_.on_topology_changed) listener_.on_topology_changed(id);
}

Point CanSpace::join(NodeId id, std::optional<Point> point_hint) {
  SOC_CHECK(id.valid());
  SOC_CHECK_MSG(!members_.contains(id), "node already joined");

  Point p = point_hint.value_or(Point(dims_));
  if (!point_hint.has_value()) {
    for (std::size_t i = 0; i < dims_; ++i) p[i] = rng_.uniform();
  }

  if (!tree_.has_value()) {
    tree_.emplace(dims_, id);
    members_.emplace(id, Member{Zone::unit(dims_), {}});
    notify_topology(id);
    return p;
  }

  const NodeId owner = tree_->owner_of(p);
  tree_->split(owner, id, p);

  Member& owner_m = member(owner);
  // Candidates for both halves: the splitter's old neighborhood plus the
  // two halves against each other.
  std::vector<NodeId> candidates = owner_m.neighbors;
  candidates.push_back(owner);

  owner_m.zone = tree_->zone_of(owner);
  members_.emplace(id, Member{tree_->zone_of(id), {}});

  refresh_against(owner, candidates);
  candidates.push_back(id);  // not used against itself; harmless
  refresh_against(id, candidates);

  // Records of the splitter that now fall in the joiner's half move over.
  if (listener_.on_rehome) listener_.on_rehome(owner, id);
  notify_topology(owner);
  notify_topology(id);
  for (const NodeId n : member(id).neighbors) notify_topology(n);
  return p;
}

void CanSpace::leave(NodeId id) {
  SOC_CHECK_MSG(members_.contains(id), "unknown member");
  if (members_.size() == 1) {
    members_.clear();
    tree_.reset();
    return;
  }

  const PartitionTree::Repair repair = tree_->leave(id);

  // Collect every node whose zone or neighborhood may change, with their
  // pre-repair neighbor sets as candidate pools.
  std::vector<NodeId> affected;
  affected.push_back(repair.merge_survivor);
  if (repair.reassigned_to.valid()) affected.push_back(repair.reassigned_to);

  std::vector<NodeId> candidates = member(id).neighbors;
  for (const NodeId a : affected) {
    if (!members_.contains(a)) continue;
    const auto& ns = member(a).neighbors;
    candidates.insert(candidates.end(), ns.begin(), ns.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Records of the departing node move to whoever now owns its old zone:
  // the reassigned node when there is one, else the merge survivor.
  const NodeId heir = repair.reassigned_to.valid() ? repair.reassigned_to
                                                   : repair.merge_survivor;
  if (listener_.on_rehome) listener_.on_rehome(id, heir);

  drop_from_all_neighbors(id);
  members_.erase(id);

  // Apply new zones, then refresh adjacency for all affected nodes against
  // the combined candidate pool.
  for (const NodeId a : affected) {
    member(a).zone = tree_->zone_of(a);
  }
  // The candidate pool (old neighborhoods of the departed node and of every
  // affected node) covers all adjacency pairs that can appear or disappear:
  // zone growth never loses neighbors, and the relocated node's new
  // neighborhood is a subset of the departed node's old one.
  for (const NodeId a : affected) {
    refresh_against(a, candidates);
  }
  // When y (reassigned_to) vacated its old zone to z, records y held move
  // to z as part of the same repair.
  if (repair.reassigned_to.valid() && listener_.on_rehome) {
    listener_.on_rehome(repair.reassigned_to, repair.merge_survivor);
  }

  for (const NodeId a : affected) notify_topology(a);
  for (const NodeId c : candidates) {
    if (members_.contains(c)) notify_topology(c);
  }
}

const Zone& CanSpace::zone_of(NodeId id) const { return member(id).zone; }

NodeId CanSpace::owner_of(const Point& p) const {
  SOC_CHECK(tree_.has_value());
  return tree_->owner_of(p);
}

const std::vector<NodeId>& CanSpace::neighbors_of(NodeId id) const {
  return member(id).neighbors;
}

std::vector<NodeId> CanSpace::directional_neighbors(NodeId id, std::size_t dim,
                                                    Direction dir) const {
  SOC_CHECK(dim < dims_);
  const Member& m = member(id);
  std::vector<NodeId> out;
  for (const NodeId n : m.neighbors) {
    const Zone& nz = member(n).zone;
    const auto adim = m.zone.adjacency_dim(nz);
    if (!adim.has_value() || *adim != dim) continue;
    const bool positive = m.zone.positive_side(nz, dim);
    if ((dir == Direction::kPositive) == positive) out.push_back(n);
  }
  return out;
}

NodeId CanSpace::next_hop(NodeId from, const Point& target) const {
  const Member& m = member(from);
  if (m.zone.contains(target)) return from;
  // Candidates are ranked by (containment, box distance, center distance):
  // a zone owning the target wins outright; otherwise strictly smaller box
  // distance wins; center distance breaks plateaus — in particular targets
  // on zone corners, where several non-owning zones all report box
  // distance 0 and the owner may not be adjacent to the current node.
  // The key strictly decreases every hop, so routing cannot cycle.
  NodeId best = from;
  double best_d = m.zone.distance_sq(target);
  double best_c = m.zone.center_distance_sq(target);
  for (const NodeId n : m.neighbors) {
    const Zone& z = member(n).zone;
    if (z.contains(target)) return n;
    const double d = z.distance_sq(target);
    const double c = z.center_distance_sq(target);
    if (d < best_d || (d == best_d && c < best_c) ||
        (d == best_d && c == best_c && best != from && n < best)) {
      best = n;
      best_d = d;
      best_c = c;
    }
  }
  SOC_CHECK_MSG(best != from, "greedy routing stalled");
  return best;
}

std::vector<NodeId> CanSpace::route(NodeId from, const Point& target) const {
  std::vector<NodeId> path;
  NodeId cur = from;
  while (!member(cur).zone.contains(target)) {
    cur = next_hop(cur, target);
    path.push_back(cur);
    SOC_CHECK_MSG(path.size() <= members_.size(), "routing loop");
  }
  return path;
}

std::vector<NodeId> CanSpace::member_ids() const {
  std::vector<NodeId> out;
  out.reserve(members_.size());
  for (const auto& [id, _] : members_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

NodeId CanSpace::random_member(Rng& rng) const {
  const auto ids = member_ids();
  SOC_CHECK(!ids.empty());
  return ids[rng.pick_index(ids.size())];
}

bool CanSpace::verify_invariants() const {
  if (members_.empty()) return true;
  if (!tree_->tiles_unit_cube()) return false;
  const auto ids = member_ids();
  for (const NodeId a : ids) {
    if (member(a).zone == tree_->zone_of(a)) continue;
    return false;
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Member& mi = member(ids[i]);
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      const Member& mj = member(ids[j]);
      const bool adjacent = mi.zone.adjacency_dim(mj.zone).has_value();
      const bool listed_ij = std::binary_search(mi.neighbors.begin(),
                                                mi.neighbors.end(), ids[j]);
      const bool listed_ji = std::binary_search(mj.neighbors.begin(),
                                                mj.neighbors.end(), ids[i]);
      if (adjacent != listed_ij || adjacent != listed_ji) return false;
      if (mi.zone.overlaps(mj.zone)) return false;
    }
  }
  return true;
}

}  // namespace soc::can
