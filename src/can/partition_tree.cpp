#include "src/can/partition_tree.hpp"

#include <cmath>

namespace soc::can {

PartitionTree::PartitionTree(std::size_t dims, NodeId first_owner)
    : dims_(dims), root_(std::make_unique<TreeNode>()) {
  SOC_CHECK(dims > 0 && dims <= kMaxDims);
  SOC_CHECK(first_owner.valid());
  root_->zone = Zone::unit(dims);
  root_->owner = first_owner;
  leaves_.emplace(first_owner, root_.get());
}

PartitionTree::TreeNode* PartitionTree::leaf_for(NodeId id) const {
  TreeNode* const* it = leaves_.find(id);
  SOC_CHECK_MSG(it != nullptr, "unknown owner");
  SOC_DCHECK((*it)->is_leaf());
  return *it;
}

const Zone& PartitionTree::zone_of(NodeId id) const {
  return leaf_for(id)->zone;
}

std::size_t PartitionTree::depth_of(NodeId id) const {
  return leaf_for(id)->depth;
}

NodeId PartitionTree::owner_of(const Point& p) const {
  const TreeNode* t = root_.get();
  while (!t->is_leaf()) {
    t = t->left->zone.contains(p) ? t->left.get() : t->right.get();
  }
  SOC_DCHECK(t->zone.contains(p));
  return t->owner;
}

Zone PartitionTree::split(NodeId owner, NodeId joiner,
                          const std::optional<Point>& joiner_point) {
  SOC_CHECK(joiner.valid());
  SOC_CHECK_MSG(!leaves_.contains(joiner), "joiner already owns a zone");
  TreeNode* leaf = leaf_for(owner);

  const std::size_t dim = leaf->depth % dims_;
  auto [lo_half, hi_half] = leaf->zone.split(dim);

  leaf->left = std::make_unique<TreeNode>();
  leaf->right = std::make_unique<TreeNode>();
  for (TreeNode* child : {leaf->left.get(), leaf->right.get()}) {
    child->parent = leaf;
    child->depth = leaf->depth + 1;
  }
  leaf->left->zone = lo_half;
  leaf->right->zone = hi_half;

  // The joiner takes the half containing its chosen point (so its own
  // availability record tends to land in its zone); default: upper half.
  TreeNode* joiner_leaf = leaf->right.get();
  TreeNode* owner_leaf = leaf->left.get();
  if (joiner_point.has_value() && lo_half.contains(*joiner_point)) {
    joiner_leaf = leaf->left.get();
    owner_leaf = leaf->right.get();
  }
  joiner_leaf->owner = joiner;
  owner_leaf->owner = owner;
  leaf->owner = NodeId{};

  leaves_[owner] = owner_leaf;
  leaves_.emplace(joiner, joiner_leaf);
  return joiner_leaf->zone;
}

PartitionTree::TreeNode* PartitionTree::find_sibling_leaf_pair(TreeNode* t) {
  // Descend to the deepest internal node whose two children are leaves;
  // biased left for determinism.  Any binary tree has such a node.
  while (!(t->left->is_leaf() && t->right->is_leaf())) {
    t = !t->left->is_leaf() ? t->left.get() : t->right.get();
  }
  return t;
}

PartitionTree::Repair PartitionTree::leave(NodeId owner) {
  SOC_CHECK_MSG(leaf_count() > 1, "cannot remove the last owner");
  TreeNode* leaf = leaf_for(owner);
  leaves_.erase(owner);

  TreeNode* parent = leaf->parent;
  SOC_CHECK(parent != nullptr);
  TreeNode* sibling =
      parent->left.get() == leaf ? parent->right.get() : parent->left.get();

  Repair repair{NodeId{}, NodeId{}, NodeId{}};

  if (sibling->is_leaf()) {
    // Simple case: sibling's owner takes over the merged parent zone.
    const NodeId heir = sibling->owner;
    parent->owner = heir;
    parent->left.reset();
    parent->right.reset();
    leaves_[heir] = parent;
    repair.merge_survivor = heir;
    repair.merged_from = owner;
    leaves_.maybe_compact();  // values are TreeNode*; no references held
    return repair;
  }

  // General case: find a pair of sibling leaves (y, z) inside the sibling
  // subtree; merge them under z; y becomes free and takes over the departed
  // leaf's zone unchanged.  Every node keeps exactly one valid zone.
  TreeNode* pair_parent = find_sibling_leaf_pair(sibling);
  const NodeId y = pair_parent->left->owner;
  const NodeId z = pair_parent->right->owner;
  pair_parent->owner = z;
  pair_parent->left.reset();
  pair_parent->right.reset();
  leaves_[z] = pair_parent;

  leaf->owner = y;
  leaves_[y] = leaf;

  repair.merge_survivor = z;
  repair.merged_from = y;
  repair.reassigned_to = y;
  leaves_.maybe_compact();  // values are TreeNode*; no references held
  return repair;
}

std::vector<NodeId> PartitionTree::owners() const {
  std::vector<NodeId> out;
  out.reserve(leaves_.size());
  for (const auto& [id, _] : leaves_) out.push_back(id);
  return out;
}

bool PartitionTree::tiles_unit_cube() const {
  // Volumes of leaves must sum to 1 and each internal node's children must
  // exactly partition it; the construction guarantees the latter, so the
  // volume check plus leaf-count consistency is sufficient.
  double vol = 0.0;
  for (const auto& [_, leaf] : leaves_) {
    if (!leaf->is_leaf()) return false;
    vol += leaf->zone.volume();
  }
  return std::abs(vol - 1.0) < 1e-9;
}

}  // namespace soc::can
