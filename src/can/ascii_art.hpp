// ASCII rendering of a 2-dimensional CAN space — zone boundaries and owner
// ids on a character grid.  Debugging/teaching aid used by the overlay
// explorer example and the README.
#pragma once

#include <string>

#include "src/can/space.hpp"

namespace soc::can {

/// Render the zones of a 2-D CanSpace as an ASCII grid of roughly
/// `width × height` characters (plus borders).  Each zone is outlined and
/// labeled with its owner id where it fits.  Requires space.dims() == 2.
[[nodiscard]] std::string render_ascii(const CanSpace& space,
                                       std::size_t width = 72,
                                       std::size_t height = 24);

}  // namespace soc::can
