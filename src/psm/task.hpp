// Task model.  A task t_ij carries the paper's least-qualified
// five-dimensional expectation vector {CPU rate, I/O speed, network
// bandwidth, disk size, memory size}; its execution progress depends only on
// the first three (rate) resource types, while disk and memory are occupied
// for the task's duration.
#pragma once

#include <array>
#include <cstddef>

#include "src/common/resource_vector.hpp"
#include "src/common/types.hpp"

namespace soc::psm {

/// Resource-dimension conventions used throughout the system.
inline constexpr std::size_t kDims = 5;
inline constexpr std::size_t kRateDims = 3;  // CPU, I/O, network progress
inline constexpr std::size_t kCpu = 0;
inline constexpr std::size_t kIo = 1;
inline constexpr std::size_t kNet = 2;
inline constexpr std::size_t kDisk = 3;
inline constexpr std::size_t kMemory = 4;

/// Immutable description of a submitted task.
struct TaskSpec {
  TaskId id;
  /// e(t_ij): minimal demand per resource type to finish on time.
  ResourceVector expectation;
  /// Work amounts on the rate dimensions, in (rate unit)·seconds; the task
  /// completes when all three drain.  Running exactly at `expectation`
  /// rates finishes in max(workload_k / e_k) seconds.
  std::array<double, kRateDims> workload{};
  /// Bytes shipped to the execution node at dispatch time.
  double input_bytes = 0.0;
  SimTime submit_time = 0;
  NodeId origin;

  /// Execution time if allocated exactly the expectation rates.
  [[nodiscard]] double expected_exec_seconds() const {
    double t = 0.0;
    for (std::size_t k = 0; k < kRateDims; ++k) {
      if (workload[k] <= 0.0) continue;
      SOC_CHECK(expectation[k] > 0.0);
      t = std::max(t, workload[k] / expectation[k]);
    }
    return t;
  }
};

}  // namespace soc::psm
