#include "src/psm/checkpoint.hpp"

#include <algorithm>

namespace soc::psm {

void CheckpointStore::record(TaskId id,
                             const std::array<double, kRateDims>& remaining,
                             SimTime now) {
  auto& entry = entries_[id];
  entry.remaining = remaining;
  entry.taken_at = now;
}

std::optional<CheckpointStore::Checkpoint> CheckpointStore::lookup(
    TaskId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::uint32_t CheckpointStore::note_restart(TaskId id, SimTime now) {
  auto& entry = entries_[id];
  if (entry.taken_at == 0 && entry.restarts == 0) entry.taken_at = now;
  return ++entry.restarts;
}

void CheckpointStore::erase(TaskId id) { entries_.erase(id); }

double CheckpointStore::lost_work(
    TaskId id, const std::array<double, kRateDims>& remaining_now) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return 0.0;
  double lost = 0.0;
  for (std::size_t k = 0; k < kRateDims; ++k) {
    lost += std::max(0.0, it->second.remaining[k] - remaining_now[k]);
  }
  return lost;
}

}  // namespace soc::psm
