#include "src/psm/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace soc::psm {

namespace {
constexpr double kEps = 1e-9;
}

PsmScheduler::PsmScheduler(sim::Simulator& sim, ResourceVector capacity,
                           VmOverhead overhead)
    : sim_(sim), capacity_(std::move(capacity)), overhead_(overhead),
      load_(capacity_.size()), last_progress_(sim.now()) {
  SOC_CHECK(capacity_.size() == kDims);
  SOC_CHECK(capacity_.non_negative());
}

ResourceVector PsmScheduler::effective_capacity(std::size_t instances) const {
  const auto s = static_cast<double>(instances);
  ResourceVector c = capacity_;
  c[kCpu] *= std::max(0.0, 1.0 - overhead_.cpu_fraction * s);
  c[kIo] *= std::max(0.0, 1.0 - overhead_.io_fraction * s);
  c[kNet] *= std::max(0.0, 1.0 - overhead_.net_fraction * s);
  c[kMemory] = std::max(0.0, c[kMemory] - overhead_.memory_mb * s);
  return c;
}

ResourceVector PsmScheduler::availability() const {
  ResourceVector a = effective_capacity(running_.size()) - load_;
  return a.cw_max(ResourceVector(kDims));  // clamp at zero
}

bool PsmScheduler::can_admit(const ResourceVector& expectation) const {
  SOC_CHECK(expectation.size() == kDims);
  const ResourceVector a =
      effective_capacity(running_.size() + 1) - load_;
  return a.dominates(expectation);
}

bool PsmScheduler::admit(const TaskSpec& task) {
  if (!can_admit(task.expectation)) return false;
  integrate_progress();
  Running r;
  r.spec = task;
  r.remaining = task.workload;
  r.started_at = sim_.now();
  const bool inserted = running_.emplace(task.id, std::move(r)).second;
  SOC_CHECK_MSG(inserted, "task already running");
  load_ += task.expectation;
  reschedule();
  return true;
}

std::optional<TaskSpec> PsmScheduler::abort(TaskId id) {
  const auto it = running_.find(id);
  if (it == running_.end()) return std::nullopt;
  integrate_progress();
  TaskSpec spec = it->second.spec;
  load_ -= spec.expectation;
  running_.erase(it);
  reschedule();
  return spec;
}

std::optional<std::array<double, kRateDims>> PsmScheduler::remaining_of(
    TaskId id) {
  const auto it = running_.find(id);
  if (it == running_.end()) return std::nullopt;
  integrate_progress();
  return it->second.remaining;
}

std::vector<PsmScheduler::Progress> PsmScheduler::abort_all_with_progress() {
  integrate_progress();
  std::vector<Progress> out;
  out.reserve(running_.size());
  for (const auto& [_, r] : running_) {
    out.push_back(Progress{r.spec, r.remaining});
  }
  running_.clear();
  load_ = ResourceVector(kDims);
  reschedule();
  return out;
}

std::vector<TaskSpec> PsmScheduler::abort_all() {
  std::vector<TaskSpec> out;
  out.reserve(running_.size());
  for (const auto& [_, r] : running_) out.push_back(r.spec);
  running_.clear();
  load_ = ResourceVector(kDims);
  reschedule();
  return out;
}

ResourceVector PsmScheduler::rates_for(const Running& r) const {
  // Eq. (1): r(t) = e(t)/l · c componentwise, with c the overhead-adjusted
  // capacity.  When the aggregate load on a dimension is zero the share is
  // undefined; no running task demands it, so the rate is zero too.
  const ResourceVector c = effective_capacity(running_.size());
  ResourceVector rates(kDims);
  for (std::size_t j = 0; j < kDims; ++j) {
    if (load_[j] <= kEps) {
      rates[j] = 0.0;
      continue;
    }
    // Proportional share, but never below the expectation (the admission
    // invariant guarantees l ≤ c so the ratio is ≥ 1 up to FP noise).
    rates[j] = r.spec.expectation[j] * std::max(1.0, c[j] / load_[j]);
  }
  return rates;
}

void PsmScheduler::integrate_progress() {
  const SimTime now = sim_.now();
  const double dt = to_seconds(now - last_progress_);
  last_progress_ = now;
  if (dt <= 0.0 || running_.empty()) return;
  for (auto& [_, r] : running_) {
    const ResourceVector rates = rates_for(r);
    for (std::size_t k = 0; k < kRateDims; ++k) {
      r.remaining[k] = std::max(0.0, r.remaining[k] - rates[k] * dt);
    }
  }
}

void PsmScheduler::reschedule() {
  if (pending_completion_.valid()) {
    sim_.cancel(pending_completion_);
    pending_completion_ = {};
  }
  if (running_.empty()) return;

  double min_finish_s = std::numeric_limits<double>::infinity();
  for (const auto& [_, r] : running_) {
    const ResourceVector rates = rates_for(r);
    double finish_s = 0.0;
    for (std::size_t k = 0; k < kRateDims; ++k) {
      if (r.remaining[k] <= kEps) continue;
      // Admission guarantees rates ≥ expectation > 0 on demanded dims.
      SOC_CHECK_MSG(rates[k] > 0.0, "running task with zero allocated rate");
      finish_s = std::max(finish_s, r.remaining[k] / rates[k]);
    }
    min_finish_s = std::min(min_finish_s, finish_s);
  }
  const SimTime delay = std::max<SimTime>(seconds(min_finish_s), 0) + 1;
  pending_completion_ =
      sim_.schedule_after(delay, [this] { on_completion_event(); });
}

void PsmScheduler::on_completion_event() {
  pending_completion_ = {};
  integrate_progress();

  std::vector<CompletionInfo> finished;
  for (auto it = running_.begin(); it != running_.end();) {
    const auto& r = it->second;
    const bool done = std::all_of(r.remaining.begin(), r.remaining.end(),
                                  [](double w) { return w <= kEps; });
    if (done) {
      finished.push_back(CompletionInfo{r.spec.id, r.started_at, sim_.now()});
      load_ -= r.spec.expectation;
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
  // Clamp accumulated FP error when the node empties.
  if (running_.empty()) load_ = ResourceVector(kDims);
  reschedule();
  for (const auto& info : finished) {
    if (on_finish_) on_finish_(info);
  }
}

ResourceVector PsmScheduler::allocation_of(TaskId id) const {
  const auto it = running_.find(id);
  SOC_CHECK_MSG(it != running_.end(), "task not running");
  return rates_for(it->second);
}

}  // namespace soc::psm
