// Proportional-share scheduler (PSM) — the emulated Xen credit scheduler
// the paper runs on every host.
//
// Allocation follows Eq. (1): with aggregated load l = Σ e(t) over running
// tasks, task t receives r(t) = e(t)/l · c componentwise, i.e. spare
// capacity is redistributed proportionally to expectations.  Admission
// follows Inequality (2): a task is accepted only if availability
// a = c − l (after VM-maintenance overhead) still dominates its
// expectation, which guarantees r(t) ≽ e(t) for every running task at all
// times — tasks never run slower than expected once admitted.
//
// Progress is integrated piecewise: rates are constant between admissions
// and completions, so the scheduler keeps one pending completion event and
// re-derives it whenever the task set changes.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/resource_vector.hpp"
#include "src/common/types.hpp"
#include "src/psm/task.hpp"
#include "src/sim/simulator.hpp"

namespace soc::psm {

/// VM-maintenance cost per running instance, from the paper's setting
/// (derived from the virtualization study it cites): 5% CPU, 10% I/O,
/// 5% network of total capacity, plus 5 MB of memory.
struct VmOverhead {
  double cpu_fraction = 0.05;
  double io_fraction = 0.10;
  double net_fraction = 0.05;
  double memory_mb = 5.0;
};

/// Completion report passed to the finish callback.
struct CompletionInfo {
  TaskId id;
  SimTime started_at = 0;
  SimTime finished_at = 0;
  [[nodiscard]] double exec_seconds() const {
    return to_seconds(finished_at - started_at);
  }
};

class PsmScheduler {
 public:
  using FinishCallback = std::function<void(const CompletionInfo&)>;

  PsmScheduler(sim::Simulator& sim, ResourceVector capacity,
               VmOverhead overhead = {});

  void set_finish_callback(FinishCallback cb) { on_finish_ = std::move(cb); }

  [[nodiscard]] const ResourceVector& capacity() const { return capacity_; }

  /// Capacity after VM-maintenance overhead for `instances` running VMs.
  [[nodiscard]] ResourceVector effective_capacity(
      std::size_t instances) const;

  /// Availability vector a_i = c_i − l_i, with overhead for the *current*
  /// instance count already deducted.  This is what state-update messages
  /// advertise to the overlay.
  [[nodiscard]] ResourceVector availability() const;

  /// Inequality (2) with one additional VM's overhead included: would the
  /// task still fit?
  [[nodiscard]] bool can_admit(const ResourceVector& expectation) const;

  /// Admit and start a task; returns false (and changes nothing) if
  /// Inequality (2) would be violated.
  bool admit(const TaskSpec& task);

  /// Abort a running task (e.g. the host churns out); no callback fires.
  /// Returns the spec so the caller can resubmit/fail it, or nullopt.
  std::optional<TaskSpec> abort(TaskId id);

  /// Abort everything (host departure).  Returns the aborted specs.
  std::vector<TaskSpec> abort_all();

  /// Remaining workload of a running task, progress integrated up to now —
  /// the snapshot the checkpointing extension persists.  Nullopt when the
  /// task is not running here.
  std::optional<std::array<double, kRateDims>> remaining_of(TaskId id);

  /// Snapshot of one running task (spec + remaining work).
  struct Progress {
    TaskSpec spec;
    std::array<double, kRateDims> remaining{};
  };
  /// Abort everything, reporting progress (checkpoint-restart on host
  /// departure).  No finish callbacks fire.
  std::vector<Progress> abort_all_with_progress();

  [[nodiscard]] std::size_t running_count() const { return running_.size(); }
  [[nodiscard]] bool is_running(TaskId id) const {
    return running_.contains(id);
  }

  /// Eq. (1) allocation currently granted to a running task.
  [[nodiscard]] ResourceVector allocation_of(TaskId id) const;

  /// Aggregated expectation load l of the running set.
  [[nodiscard]] ResourceVector load() const { return load_; }

 private:
  struct Running {
    TaskSpec spec;
    std::array<double, kRateDims> remaining{};
    SimTime started_at = 0;
  };

  /// Integrate progress from last_progress_ to now at current rates.
  void integrate_progress();
  /// Recompute the next completion event after any change.
  void reschedule();
  void on_completion_event();
  [[nodiscard]] ResourceVector rates_for(const Running& r) const;

  sim::Simulator& sim_;
  ResourceVector capacity_;
  VmOverhead overhead_;
  FinishCallback on_finish_;

  std::unordered_map<TaskId, Running> running_;
  ResourceVector load_;  // Σ expectations of running tasks
  SimTime last_progress_ = 0;
  sim::EventHandle pending_completion_;
};

}  // namespace soc::psm
