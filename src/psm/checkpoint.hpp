// Checkpoint store for PSM execution fault-tolerance — the extension the
// paper's §VI names as future work ("study the PSM based execution
// fault-tolerance issues using check-pointing technologies on top of the
// HID-CAN protocol").
//
// Each running task's remaining workload is periodically snapshotted back
// to its origin node; when the execution host churns out, the origin
// re-queries the overlay and restarts the task from its last checkpoint
// instead of losing it.  This class is the origin-side store; the
// snapshot/restart choreography lives in the experiment driver.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/common/types.hpp"
#include "src/psm/task.hpp"

namespace soc::psm {

class CheckpointStore {
 public:
  struct Checkpoint {
    std::array<double, kRateDims> remaining{};
    SimTime taken_at = 0;
    std::uint32_t restarts = 0;  ///< restart count carried across snapshots
  };

  /// Record (or refresh) a snapshot; preserves the restart count.
  void record(TaskId id, const std::array<double, kRateDims>& remaining,
              SimTime now);

  /// Latest checkpoint for a task, if any.
  [[nodiscard]] std::optional<Checkpoint> lookup(TaskId id) const;

  /// Bump the restart counter; creates the entry if missing (a task that
  /// dies before its first snapshot restarts from the full workload).
  /// Returns the new restart count.
  std::uint32_t note_restart(TaskId id, SimTime now);

  /// Drop the entry (task finished or permanently failed).
  void erase(TaskId id);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Work (rate·seconds, summed over rate dimensions) that would be lost if
  /// the task died now with `remaining_now` left: progress made since the
  /// last checkpoint.  Zero when no checkpoint exists is conservative —
  /// the caller should then count the whole work done so far.
  [[nodiscard]] double lost_work(
      TaskId id, const std::array<double, kRateDims>& remaining_now) const;

 private:
  std::unordered_map<TaskId, Checkpoint> entries_;
};

}  // namespace soc::psm
