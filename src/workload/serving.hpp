// Serving-style workload shaping (ROADMAP direction 5): closed-loop
// clients, Zipfian hot-key demand skew, and a diurnal arrival-rate curve.
// Everything here is strictly opt-in — a default ServingConfig drives no
// RNG forks and no code paths, so default experiment trajectories stay
// bit-identical to the pure open-loop Poisson model.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace soc::workload {

struct ServingConfig {
  /// Closed loop: each node runs this many clients, each holding at most
  /// one task in flight and thinking (exponential, `think_time_s` mean)
  /// between completion and the next submission.  0 = open-loop Poisson.
  std::size_t clients_per_node = 0;
  double think_time_s = 3000.0;

  /// Hot-key skew: task demand vectors are drawn from this many fixed
  /// "key" profiles with Zipf(`zipf_exponent`) popularity, instead of
  /// fresh Table II draws — hot keys hammer the same duty-node region.
  /// 0 = no skew.
  std::size_t zipf_keys = 0;
  double zipf_exponent = 1.0;

  /// Diurnal curve: arrival (and think) rates are modulated by
  /// 1 + amplitude * sin(2π(t/period − phase)), floored at 0.05.
  /// amplitude 0 = flat load.
  double diurnal_amplitude = 0.0;
  double diurnal_period_hours = 24.0;
  double diurnal_phase = 0.0;

  [[nodiscard]] bool closed_loop() const { return clients_per_node > 0; }
  [[nodiscard]] bool skewed() const { return zipf_keys > 0; }
  [[nodiscard]] bool diurnal() const { return diurnal_amplitude > 0.0; }
  [[nodiscard]] bool enabled() const {
    return closed_loop() || skewed() || diurnal();
  }
};

/// Rate multiplier at simulated time `now` (1.0 whenever disabled).
[[nodiscard]] double diurnal_factor(const ServingConfig& config, SimTime now);

/// Inverse-CDF sampler over {0..n-1} with P(k) ∝ 1/(k+1)^s.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double exponent);

  [[nodiscard]] std::size_t draw(Rng& rng) const;
  [[nodiscard]] std::size_t keys() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative weights, cdf_.back() == total
};

/// Named serving presets for sweep axes / CLI: '+'-joined tokens out of
/// {off|open, closed, zipf, diurnal}, e.g. "closed+zipf".  "off" and
/// "open" are the disabled config; unknown tokens yield nullopt so sweep
/// specs fail loudly.
[[nodiscard]] std::optional<ServingConfig> serving_by_name(
    const std::string& name);

/// All names serving_by_name accepts (CLI help).
[[nodiscard]] std::string serving_names_help();

}  // namespace soc::workload
