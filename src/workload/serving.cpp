#include "src/workload/serving.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"

namespace soc::workload {

double diurnal_factor(const ServingConfig& config, SimTime now) {
  if (!config.diurnal()) return 1.0;
  SOC_CHECK(config.diurnal_period_hours > 0.0);
  const double phase = to_hours(now) / config.diurnal_period_hours -
                       config.diurnal_phase;
  const double f = 1.0 + config.diurnal_amplitude *
                             std::sin(2.0 * 3.14159265358979323846 * phase);
  return std::max(f, 0.05);
}

ZipfGenerator::ZipfGenerator(std::size_t n, double exponent) {
  SOC_CHECK(n > 0);
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_.push_back(total);
  }
}

std::size_t ZipfGenerator::draw(Rng& rng) const {
  const double u = rng.uniform() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return std::min<std::size_t>(
      static_cast<std::size_t>(it - cdf_.begin()), cdf_.size() - 1);
}

std::optional<ServingConfig> serving_by_name(const std::string& name) {
  ServingConfig out;
  std::size_t start = 0;
  while (start <= name.size()) {
    const std::size_t sep = std::min(name.find('+', start), name.size());
    const std::string token = name.substr(start, sep - start);
    if (token == "off" || token == "open") {
      // the disabled baseline; composing it with knobs is fine
    } else if (token == "closed") {
      out.clients_per_node = 4;
      out.think_time_s = 3000.0;
    } else if (token == "zipf") {
      out.zipf_keys = 64;
      out.zipf_exponent = 1.0;
    } else if (token == "diurnal") {
      out.diurnal_amplitude = 0.6;
      out.diurnal_period_hours = 24.0;
    } else {
      return std::nullopt;
    }
    start = sep + 1;
  }
  return out;
}

std::string serving_names_help() {
  return "off|open|closed|zipf|diurnal (joined with '+', e.g. closed+zipf)";
}

}  // namespace soc::workload
