#include "src/workload/generator.hpp"

#include <algorithm>

namespace soc::workload {

ResourceVector NodeGenerator::generate(Rng& rng) const {
  const int procs =
      config_.processors[rng.pick_index(config_.processors.size())];
  const double rate = config_.rate_per_processor[rng.pick_index(
      config_.rate_per_processor.size())];
  ResourceVector c(psm::kDims);
  c[psm::kCpu] = procs * rate;
  c[psm::kIo] = config_.io_speed[rng.pick_index(config_.io_speed.size())];
  c[psm::kNet] = rng.uniform(config_.net_lo, config_.net_hi);
  c[psm::kDisk] = config_.disk_gb[rng.pick_index(config_.disk_gb.size())];
  c[psm::kMemory] =
      config_.memory_mb[rng.pick_index(config_.memory_mb.size())];
  if (config_.skewed()) {
    const double roll = rng.uniform();
    if (roll < config_.weak_fraction) {
      c = c * config_.weak_scale;
    } else if (roll < config_.weak_fraction + config_.strong_fraction) {
      c = c * config_.strong_scale;
    }
  }
  return c;
}

ResourceVector NodeGenerator::cmax() const {
  ResourceVector c(psm::kDims);
  c[psm::kCpu] = static_cast<double>(*std::max_element(
                     config_.processors.begin(), config_.processors.end())) *
                 *std::max_element(config_.rate_per_processor.begin(),
                                   config_.rate_per_processor.end());
  c[psm::kIo] =
      *std::max_element(config_.io_speed.begin(), config_.io_speed.end());
  c[psm::kNet] = config_.net_hi;
  c[psm::kDisk] =
      *std::max_element(config_.disk_gb.begin(), config_.disk_gb.end());
  c[psm::kMemory] =
      *std::max_element(config_.memory_mb.begin(), config_.memory_mb.end());
  return c;
}

psm::TaskSpec TaskGenerator::generate(NodeId origin, std::uint32_t seq,
                                      SimTime now, Rng& rng) const {
  const double lam = config_.demand_ratio;
  psm::TaskSpec t;
  t.id = TaskId{origin, seq};
  t.origin = origin;
  t.submit_time = now;

  ResourceVector e(psm::kDims);
  e[psm::kCpu] = rng.uniform(config_.cpu_lo, config_.cpu_hi) * lam;
  e[psm::kIo] = rng.uniform(config_.io_lo, config_.io_hi) * lam;
  e[psm::kNet] = rng.uniform(config_.net_lo, config_.net_hi) * lam;
  e[psm::kDisk] = rng.uniform(config_.disk_lo, config_.disk_hi) * lam;
  e[psm::kMemory] = rng.uniform(config_.mem_lo, config_.mem_hi) * lam;
  t.expectation = e;

  const double exec_s =
      std::clamp(rng.exponential(config_.mean_exec_seconds),
                 config_.min_exec_seconds, config_.max_exec_seconds);
  for (std::size_t k = 0; k < psm::kRateDims; ++k) {
    t.workload[k] = e[k] * exec_s;
  }
  t.input_bytes = rng.uniform(config_.input_bytes_lo, config_.input_bytes_hi);
  return t;
}

SimTime next_arrival_delay(double mean_seconds, Rng& rng) {
  return std::max<SimTime>(seconds(rng.exponential(mean_seconds)), 1);
}

}  // namespace soc::workload
