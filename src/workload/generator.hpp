// Workload synthesis from Tables I and II of the paper: host capacity
// vectors and task demand vectors under the demand-ratio λ, task workloads
// sized for a 3000 s mean execution time, and Poisson arrivals with a
// 3000 s mean inter-arrival per node.
#pragma once

#include <array>

#include "src/common/rng.hpp"
#include "src/psm/task.hpp"

namespace soc::workload {

/// Table I host population.
struct NodeGenConfig {
  std::array<int, 4> processors{1, 2, 4, 8};
  std::array<double, 4> rate_per_processor{1.0, 2.0, 2.4, 3.2};
  std::array<double, 4> io_speed{20, 40, 60, 80};
  std::array<double, 4> memory_mb{512, 1024, 2048, 4096};
  std::array<double, 4> disk_gb{20, 60, 120, 240};
  double net_lo = 5.0;   ///< node network capacity: its LAN rate, 5–10 Mbps
  double net_hi = 10.0;

  /// Optional population heterogeneity (set by the scenario layer's
  /// CapacitySkew): each generated capacity vector is scaled whole by
  /// weak_scale with probability weak_fraction, by strong_scale with
  /// probability strong_fraction, else left at Table I values.  When
  /// disabled (the default) generate() draws exactly the same RNG sequence
  /// as before the knob existed, so default trajectories are unchanged.
  double weak_fraction = 0.0;
  double weak_scale = 1.0;
  double strong_fraction = 0.0;
  double strong_scale = 1.0;

  [[nodiscard]] bool skewed() const {
    return weak_fraction > 0.0 || strong_fraction > 0.0;
  }
};

class NodeGenerator {
 public:
  explicit NodeGenerator(NodeGenConfig config = {}) : config_(config) {}

  /// Draw one host capacity vector {CPU, I/O, net, disk, memory}.
  [[nodiscard]] ResourceVector generate(Rng& rng) const;

  /// The componentwise capacity ceiling c_max of the population; the paper
  /// aggregates it by gossip ([23]) — here it follows from Table I.
  [[nodiscard]] ResourceVector cmax() const;

 private:
  NodeGenConfig config_;
};

/// Table II task demands plus the execution-time model.
struct TaskGenConfig {
  double demand_ratio = 1.0;  ///< λ ∈ {1, 0.5, 0.25} in the paper
  double cpu_lo = 1.0, cpu_hi = 25.6;
  double io_lo = 20.0, io_hi = 80.0;
  double net_lo = 0.1, net_hi = 10.0;
  double disk_lo = 20.0, disk_hi = 240.0;
  double mem_lo = 512.0, mem_hi = 4096.0;
  /// Target execution time at expectation rates: exponential with this
  /// mean, clamped to [min, max] (overall average ≈ 3000 s).
  double mean_exec_seconds = 3000.0;
  double min_exec_seconds = 300.0;
  double max_exec_seconds = 12000.0;
  /// Task input shipped at dispatch.
  double input_bytes_lo = 200e3;
  double input_bytes_hi = 1e6;
};

class TaskGenerator {
 public:
  explicit TaskGenerator(TaskGenConfig config) : config_(config) {
    SOC_CHECK(config.demand_ratio > 0.0);
  }

  /// Draw one task submitted by `origin` at time `now`.
  [[nodiscard]] psm::TaskSpec generate(NodeId origin, std::uint32_t seq,
                                       SimTime now, Rng& rng) const;

  [[nodiscard]] const TaskGenConfig& config() const { return config_; }

 private:
  TaskGenConfig config_;
};

/// Poisson task arrivals: the next submission delay for any node.
[[nodiscard]] SimTime next_arrival_delay(double mean_seconds, Rng& rng);

}  // namespace soc::workload
