// ScenarioEngine: replays a ScenarioSpec against a running Experiment.
//
// The engine owns its own RNG stream (forked by name from the simulator
// root, so enabling it never perturbs the draws any existing component
// sees) and drives every population change through the Experiment's public
// scenario hooks — the same join/departure paths the built-in Poisson churn
// takes, so flash crowds and mass failures exercise the identical overlay
// maintenance, record re-homing and task-teardown machinery.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/core/experiment.hpp"
#include "src/scenario/spec.hpp"

namespace soc::scenario {

class ScenarioEngine {
 public:
  ScenarioEngine(core::Experiment& ex, ScenarioSpec spec);

  /// Schedule the whole spec on the experiment's simulator.  Called once
  /// from Experiment::setup() (after the initial population exists).
  void install();

  /// Execution counters, for tests and fuzz-failure context.
  struct Counters {
    std::uint64_t churn_events = 0;   ///< phased-churn depart+join pairs
    std::uint64_t burst_joins = 0;
    std::uint64_t failure_kills = 0;
    std::uint64_t partitions_started = 0;  ///< cuts actually applied
    std::uint64_t partitions_skipped = 0;  ///< overlapped an active cut
    std::uint64_t partition_detached = 0;  ///< hosts cut off, cumulative
    std::uint64_t heals = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  void schedule_phase_churn();
  void schedule_bursts();
  void schedule_failures();
  void schedule_partitions();
  void start_partition(const Partition& p);
  void churn_tick();
  void mass_failure(const MassFailure& f);
  /// Victims of a spatial failure: the k members whose zone centers lie
  /// closest to a random point of the protocol's CAN space; empty when the
  /// protocol has no CAN space (caller falls back to a cohort kill).
  [[nodiscard]] std::vector<NodeId> spatial_victims(std::size_t k);

  core::Experiment& ex_;
  ScenarioSpec spec_;
  Rng rng_;
  Counters counters_;
};

}  // namespace soc::scenario
