#include "src/scenario/engine.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/can/space.hpp"
#include "src/core/khdn_protocol.hpp"
#include "src/core/pidcan_protocol.hpp"

namespace soc::scenario {

ScenarioEngine::ScenarioEngine(core::Experiment& ex, ScenarioSpec spec)
    : ex_(ex), spec_(std::move(spec)),
      rng_(ex.simulator().rng().fork("scenario")) {}

void ScenarioEngine::install() {
  schedule_phase_churn();
  schedule_bursts();
  schedule_failures();
  schedule_partitions();
}

// ---------------------------------------------------------------------------
// Phased churn: the built-in Poisson churn machinery, but with a rate that
// follows the spec's phase schedule.  Each tick draws the next gap from the
// rate in force when it is scheduled (a gap spanning a phase boundary keeps
// the old rate — the approximation error is one inter-event gap).

void ScenarioEngine::schedule_phase_churn() {
  if (!spec_.phases.empty()) churn_tick();
}

void ScenarioEngine::churn_tick() {
  sim::Simulator& sim = ex_.simulator();
  const SimTime now = sim.now();
  const SimTime horizon = ex_.config().duration;
  const double degree = spec_.churn_degree_at(now);

  if (degree <= 0.0) {
    // Calm phase: sleep until the next phase that churns at all.
    for (const ChurnPhase& p : spec_.phases) {
      if (p.start > now && p.dynamic_degree > 0.0 && p.start <= horizon) {
        sim.schedule_at(p.start, [this] { churn_tick(); });
        return;
      }
    }
    return;  // no churning phase ahead: the chain retires
  }

  const double events_per_s = degree *
                              static_cast<double>(ex_.config().nodes) /
                              ex_.config().churn_window_s;
  const SimTime delay =
      std::max<SimTime>(seconds(rng_.exponential(1.0 / events_per_s)), 1);
  if (now + delay > horizon) return;
  sim.schedule_after(delay, [this] {
    const std::vector<NodeId> alive = ex_.alive_ids();
    if (alive.size() > 2) {
      ex_.scenario_depart(alive[rng_.pick_index(alive.size())]);
    }
    ex_.scenario_join();
    ++counters_.churn_events;
    churn_tick();
  });
}

// ---------------------------------------------------------------------------
// Flash crowds: each burst's joins land uniformly over [at, at + spread].

void ScenarioEngine::schedule_bursts() {
  sim::Simulator& sim = ex_.simulator();
  const SimTime horizon = ex_.config().duration;
  for (const JoinBurst& b : spec_.bursts) {
    for (std::size_t j = 0; j < b.joins; ++j) {
      const SimTime at =
          b.at + (b.spread > 0
                      ? seconds(rng_.uniform(0.0, to_seconds(b.spread)))
                      : 0);
      if (at > horizon) continue;
      sim.schedule_at(std::max<SimTime>(at, 1), [this] {
        ex_.scenario_join();
        ++counters_.burst_joins;
      });
    }
  }
}

// ---------------------------------------------------------------------------
// Mass failures

void ScenarioEngine::schedule_failures() {
  sim::Simulator& sim = ex_.simulator();
  const SimTime horizon = ex_.config().duration;
  for (const MassFailure& f : spec_.failures) {
    if (f.at > horizon) continue;
    sim.schedule_at(std::max<SimTime>(f.at, 1),
                    [this, f] { mass_failure(f); });
  }
}

void ScenarioEngine::mass_failure(const MassFailure& f) {
  const std::vector<NodeId> alive = ex_.alive_ids();
  if (alive.size() <= 3) return;
  std::size_t k = static_cast<std::size_t>(
      f.fraction * static_cast<double>(alive.size()));
  k = std::min(k, alive.size() - 3);  // never collapse the overlay entirely
  if (k == 0) return;

  std::vector<NodeId> victims;
  if (f.spatial) victims = spatial_victims(k);
  if (victims.empty()) {
    // Cohort kill: a contiguous id range of the (ascending) alive list —
    // nodes that joined around the same time fail together.
    const std::size_t start = rng_.pick_index(alive.size() - k + 1);
    victims.assign(alive.begin() + static_cast<std::ptrdiff_t>(start),
                   alive.begin() + static_cast<std::ptrdiff_t>(start + k));
  }
  for (const NodeId v : victims) {
    ex_.scenario_depart(v);
    ++counters_.failure_kills;
  }
}

// ---------------------------------------------------------------------------
// Partitions with heal

void ScenarioEngine::schedule_partitions() {
  sim::Simulator& sim = ex_.simulator();
  const SimTime horizon = ex_.config().duration;
  for (const Partition& p : spec_.partitions) {
    if (p.at > horizon) continue;
    sim.schedule_at(std::max<SimTime>(p.at, 1),
                    [this, p] { start_partition(p); });
  }
}

void ScenarioEngine::start_partition(const Partition& p) {
  if (ex_.partition_active()) {
    // Overlapping partitions do not compose (one cut set at the bus);
    // count the skip so fuzz-failure context shows the schedule collision.
    ++counters_.partitions_skipped;
    return;
  }
  // The epicenter LAN is a random draw; the experiment grows the cut from
  // there along consecutive (wrapping) LAN groups.
  const std::size_t start_lan = rng_.pick_index(ex_.lan_count());
  if (!ex_.scenario_partition(p.fraction, start_lan)) {
    ++counters_.partitions_skipped;
    return;
  }
  ++counters_.partitions_started;
  counters_.partition_detached += ex_.partitioned_ids().size();
  const SimTime heal_at = p.at + p.duration;
  if (heal_at <= ex_.config().duration) {
    ex_.simulator().schedule_at(heal_at, [this] {
      ex_.scenario_heal();
      ++counters_.heals;
    });
  }
  // A partition outliving the horizon never heals inside the run: the
  // run-end invariants then check the partitioned steady state instead.
}

std::vector<NodeId> ScenarioEngine::spatial_victims(std::size_t k) {
  can::CanSpace* space = nullptr;
  if (auto* pid = dynamic_cast<core::PidCanProtocol*>(&ex_.protocol())) {
    space = &pid->space();
  } else if (auto* khdn =
                 dynamic_cast<core::KhdnProtocol*>(&ex_.protocol())) {
    space = &khdn->space();
  }
  if (space == nullptr || space->size() == 0) return {};

  // Epicenter of the regional outage; victims are the k members whose zone
  // centers lie closest to it (deterministic tie-break on id).
  can::Point epicenter(space->dims());
  for (std::size_t d = 0; d < space->dims(); ++d) {
    epicenter[d] = rng_.uniform();
  }
  std::vector<std::pair<double, NodeId>> ranked;
  for (const NodeId id : space->member_ids()) {
    if (!ex_.host_alive(id)) continue;
    const can::Point c = space->zone_of(id).center();
    double d2 = 0.0;
    for (std::size_t d = 0; d < space->dims(); ++d) {
      const double gap = c[d] - epicenter[d];
      d2 += gap * gap;
    }
    ranked.emplace_back(d2, id);
  }
  if (ranked.empty()) return {};
  k = std::min(k, ranked.size());
  std::sort(ranked.begin(), ranked.end());
  std::vector<NodeId> victims;
  victims.reserve(k);
  for (std::size_t i = 0; i < k; ++i) victims.push_back(ranked[i].second);
  return victims;
}

}  // namespace soc::scenario
