// Global simulation invariants, checked between events by the sim_fuzz
// harness (and usable from any test that drives an Experiment step by
// step).
//
// The checked invariant set:
//   1. Experiment accounting — alive counter, DenseNodeMap occupancy and
//      in-flight placements agree (dense-storage handle sanity).
//   2. Event queue — every heap entry points at a live (odd-generation)
//      slab slot with a correct back-pointer, heap order holds, slab live
//      count equals heap size.
//   3. Message conservation — per MsgType, sent == delivered + lost +
//      in-flight, and the bus slab's live count equals total in-flight.
//   4. CAN tessellation — member zones tile the unit cube exactly
//      (Σ volume ≈ 1 plus the full O(n²) overlap/adjacency/symmetry
//      verifier) for every protocol that runs on a CanSpace.
//   5. Overlay membership — CAN members are exactly the alive hosts; the
//      index layer's NodeStates are exactly the CAN members (a ghost
//      NodeState for a departed node — the PR-3 probe-walk bug — fails
//      here), and last-locations are filed only for tracked nodes.
//   6. Record stores — every duty cache is NodeId-sorted and
//      duplicate-free, and its query results match a from-scratch map
//      oracle rebuilt from the cache contents.
//
// Checks are strictly read-only: they never draw from any experiment RNG
// stream and never schedule events, so checking at an interval cannot
// perturb the trajectory being checked (the caller passes its own RNG for
// oracle demand sampling).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/experiment.hpp"

namespace soc::scenario {

struct InvariantReport {
  std::vector<std::string> violations;
  std::uint64_t assertions = 0;  ///< individual conditions evaluated

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Run every invariant against the experiment's current state.  `rng` is
/// the *caller's* stream (used only to sample oracle query demands) — the
/// experiment's own RNG streams are never touched.
[[nodiscard]] InvariantReport check_invariants(core::Experiment& ex,
                                               Rng& rng);

}  // namespace soc::scenario
