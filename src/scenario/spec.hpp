// Scenario specifications: composable workload/churn models beyond the
// paper's steady Poisson churn.
//
// A ScenarioSpec is pure data — a phased churn schedule plus point events
// (flash-crowd join bursts, correlated mass failures / partitions) and a
// population capacity skew — that the ScenarioEngine (engine.hpp) replays
// against a running Experiment.  Specs are strictly opt-in: a
// default-constructed spec is disabled and an Experiment carrying one is
// bit-identical to one without (the engine is never constructed, no RNG
// stream is forked, the node generator draws the same sequence).
//
// Every spec prints as a compact one-line string (describe()) so an
// invariant violation found by the sim_fuzz harness can name the exact
// scenario alongside the seed that regenerates it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"
#include "src/workload/generator.hpp"

namespace soc::scenario {

/// One segment of the phased churn schedule: from `start` until the next
/// phase (or the end of the run), node churn runs at `dynamic_degree` —
/// the same Fig. 8 unit as ExperimentConfig::churn_dynamic_degree, i.e.
/// that fraction of the population departs (and is replaced) per churn
/// window.  Engine churn composes with (adds to) any baseline churn the
/// experiment itself is configured with.
struct ChurnPhase {
  SimTime start = 0;
  double dynamic_degree = 0.0;
};

/// Flash crowd: `joins` fresh hosts arrive spread uniformly over
/// [at, at + spread].
struct JoinBurst {
  SimTime at = 0;
  std::size_t joins = 0;
  SimTime spread = 0;
};

/// Correlated mass failure: at time `at`, `fraction` of the alive
/// population departs simultaneously with no replacement joins.  When
/// `spatial` is set and the protocol runs on a CAN space, the victims are
/// the members whose zones lie closest to a random point — a partition-like
/// loss of one contiguous region of the coordinate space; otherwise victims
/// are a contiguous id range (correlated by join cohort).
struct MassFailure {
  SimTime at = 0;
  double fraction = 0.0;
  bool spatial = false;
};

/// Network partition with heal: at time `at`, whole LAN groups covering
/// ≈ `fraction` of the alive population are cut off at the bus (cross-cut
/// messages resolve as `partitioned`, hosts stay up, protocol state is
/// parked via on_partition_out); after `duration` the cut heals and
/// survivors rejoin with their stale parked state.  Overlapping partitions
/// do not compose: a partition firing while one is active is skipped.
struct Partition {
  SimTime at = 0;
  double fraction = 0.0;
  SimTime duration = 0;
};

/// Heterogeneous node capacities: a fraction of joining hosts is scaled
/// weak, another fraction strong.  Applied by wiring the skew into the
/// workload NodeGenerator, so it covers both the initial population and
/// every later scenario/churn join.
struct CapacitySkew {
  double weak_fraction = 0.0;
  double weak_scale = 1.0;
  double strong_fraction = 0.0;
  double strong_scale = 1.0;

  [[nodiscard]] bool enabled() const {
    return weak_fraction > 0.0 || strong_fraction > 0.0;
  }

  /// Wire into the node generator config (workload layer).
  void apply(workload::NodeGenConfig& cfg) const;
};

struct ScenarioSpec {
  std::vector<ChurnPhase> phases;    ///< sorted by start
  std::vector<JoinBurst> bursts;     ///< sorted by at
  std::vector<MassFailure> failures; ///< sorted by at
  std::vector<Partition> partitions; ///< sorted by at
  CapacitySkew skew;

  [[nodiscard]] bool enabled() const {
    return !phases.empty() || !bursts.empty() || !failures.empty() ||
           !partitions.empty() || skew.enabled();
  }

  /// Churn degree in force at time `t` (0 before the first phase).
  [[nodiscard]] double churn_degree_at(SimTime t) const;

  /// Compact one-line spec, parse-stable across runs — printed next to the
  /// seed on any sim_fuzz invariant violation for one-command replay.
  [[nodiscard]] std::string describe() const;
};

/// Draw a randomized scenario over [0, horizon] — the sim_fuzz schedule
/// generator.  Deterministic in `rng`; every feature (phases, bursts,
/// failures, skew) appears with independent probability so single-feature
/// and composed schedules both occur.
[[nodiscard]] ScenarioSpec random_spec(Rng& rng, SimTime horizon);

}  // namespace soc::scenario
