#include "src/scenario/spec.hpp"

#include <algorithm>
#include <cstdio>

namespace soc::scenario {

void CapacitySkew::apply(workload::NodeGenConfig& cfg) const {
  cfg.weak_fraction = weak_fraction;
  cfg.weak_scale = weak_scale;
  cfg.strong_fraction = strong_fraction;
  cfg.strong_scale = strong_scale;
}

double ScenarioSpec::churn_degree_at(SimTime t) const {
  double degree = 0.0;
  for (const ChurnPhase& p : phases) {
    if (p.start > t) break;
    degree = p.dynamic_degree;
  }
  return degree;
}

namespace {

template <typename... Args>
void append(std::string& out, const char* fmt, Args... args) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

}  // namespace

std::string ScenarioSpec::describe() const {
  if (!enabled()) return "scenario{off}";
  std::string out = "scenario{";
  for (const ChurnPhase& p : phases) {
    append(out, " phase(t=%.0fs dd=%.2f)", to_seconds(p.start),
           p.dynamic_degree);
  }
  for (const JoinBurst& b : bursts) {
    append(out, " burst(t=%.0fs n=%zu over=%.0fs)", to_seconds(b.at), b.joins,
           to_seconds(b.spread));
  }
  for (const MassFailure& f : failures) {
    append(out, " fail(t=%.0fs frac=%.2f %s)", to_seconds(f.at), f.fraction,
           f.spatial ? "spatial" : "cohort");
  }
  for (const Partition& p : partitions) {
    append(out, " part(t=%.0fs frac=%.2f heal=%.0fs)", to_seconds(p.at),
           p.fraction, to_seconds(p.duration));
  }
  if (skew.enabled()) {
    append(out, " skew(weak=%.2fx%.2f strong=%.2fx%.2f)", skew.weak_fraction,
           skew.weak_scale, skew.strong_fraction, skew.strong_scale);
  }
  out += " }";
  return out;
}

ScenarioSpec random_spec(Rng& rng, SimTime horizon) {
  ScenarioSpec spec;
  const double h = to_seconds(horizon);

  // Phased churn: 0–3 phases with rates spanning calm to heavy (Fig. 8's
  // dynamic degree tops out at 1.0; we go a bit past it to stress
  // departure-heavy maintenance).
  if (rng.chance(0.7)) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 3));
    SimTime at = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ChurnPhase p;
      p.start = at;
      p.dynamic_degree = rng.chance(0.3) ? 0.0 : rng.uniform(0.05, 1.2);
      spec.phases.push_back(p);
      at += seconds(rng.uniform(0.2, 0.5) * h);
    }
  }

  // Flash crowds: up to 2 bursts, each adding 25–100% of the base
  // population over a short window.
  if (rng.chance(0.5)) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 2));
    for (std::size_t i = 0; i < n; ++i) {
      JoinBurst b;
      b.at = seconds(rng.uniform(0.1, 0.8) * h);
      b.joins = static_cast<std::size_t>(rng.uniform_int(8, 32));
      b.spread = seconds(rng.uniform(10.0, std::max(20.0, 0.1 * h)));
      spec.bursts.push_back(b);
    }
    std::sort(spec.bursts.begin(), spec.bursts.end(),
              [](const JoinBurst& a, const JoinBurst& b) { return a.at < b.at; });
  }

  // Mass failures / partitions: up to 2, killing 10–45% of the population.
  if (rng.chance(0.5)) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 2));
    for (std::size_t i = 0; i < n; ++i) {
      MassFailure f;
      f.at = seconds(rng.uniform(0.2, 0.9) * h);
      f.fraction = rng.uniform(0.1, 0.45);
      f.spatial = rng.chance(0.5);
      spec.failures.push_back(f);
    }
    std::sort(
        spec.failures.begin(), spec.failures.end(),
        [](const MassFailure& a, const MassFailure& b) { return a.at < b.at; });
  }

  // Capacity skew: heterogeneous populations (weak edge boxes + a few fat
  // servers) exercise best-fit selection and SoS under contention.
  if (rng.chance(0.4)) {
    spec.skew.weak_fraction = rng.uniform(0.1, 0.5);
    spec.skew.weak_scale = rng.uniform(0.3, 0.8);
    spec.skew.strong_fraction = rng.uniform(0.05, 0.2);
    spec.skew.strong_scale = rng.uniform(1.5, 3.0);
  }

  // Network partitions: up to 2, each cutting 10–45% of the population
  // along LAN boundaries for 10–35% of the run, then healing.  Appended
  // *after* all pre-existing draws so a given seed still produces the same
  // churn/burst/failure/skew schedule it did before partitions existed.
  if (rng.chance(0.4)) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 2));
    for (std::size_t i = 0; i < n; ++i) {
      Partition p;
      p.at = seconds(rng.uniform(0.15, 0.6) * h);
      p.fraction = rng.uniform(0.1, 0.45);
      p.duration = seconds(rng.uniform(0.1, 0.35) * h);
      spec.partitions.push_back(p);
    }
    std::sort(
        spec.partitions.begin(), spec.partitions.end(),
        [](const Partition& a, const Partition& b) { return a.at < b.at; });
  }

  return spec;
}

}  // namespace soc::scenario
