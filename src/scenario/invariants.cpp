#include "src/scenario/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <map>

#include "src/can/space.hpp"
#include "src/core/khdn_protocol.hpp"
#include "src/core/pidcan_protocol.hpp"
#include "src/index/record.hpp"
#include "src/net/message_bus.hpp"

namespace soc::scenario {

std::string InvariantReport::to_string() const {
  std::string out;
  for (const std::string& v : violations) {
    out += "  INVARIANT VIOLATED: " + v + "\n";
  }
  return out;
}

namespace {

class Checker {
 public:
  explicit Checker(InvariantReport& report) : report_(report) {}

  void expect(bool cond, const std::string& what) {
    ++report_.assertions;
    if (!cond) report_.violations.push_back(what);
  }

  /// For oracles that return an empty string on success.
  void expect_clean(const std::string& why, const std::string& where) {
    ++report_.assertions;
    if (!why.empty()) report_.violations.push_back(where + ": " + why);
  }

 private:
  InvariantReport& report_;
};

bool same_record(const index::Record& a, const index::Record& b) {
  return a.provider == b.provider && a.availability == b.availability &&
         a.published_at == b.published_at && a.expires_at == b.expires_at;
}

/// Record-store oracle: rebuild a map from the store's live contents and
/// require the store's own query paths to agree with a straightforward
/// scan of that map.
void check_record_store(Checker& chk, index::RecordStore& store, NodeId owner,
                        const ResourceVector& cmax, SimTime now, Rng& rng) {
  const std::string tag = "duty cache of node " + std::to_string(owner.value);
  chk.expect(store.verify_sorted_unique(), tag + " not sorted/unique");

  const std::vector<index::Record> live = store.all_live(now);
  std::map<NodeId, index::Record> oracle;
  for (const index::Record& r : live) oracle.emplace(r.provider, r);
  chk.expect(oracle.size() == live.size(),
             tag + " all_live() returned duplicate providers");
  chk.expect(store.live_count(now) == live.size(),
             tag + " live_count disagrees with all_live");
  chk.expect(store.has_live_records(now) == !live.empty(),
             tag + " has_live_records disagrees with all_live");

  // One sampled demand per check interval (caller's RNG — deterministic
  // per fuzz schedule, never the experiment's streams).
  ResourceVector demand(cmax.size());
  for (std::size_t i = 0; i < cmax.size(); ++i) {
    demand[i] = rng.uniform(0.0, cmax[i]);
  }
  const std::vector<index::Record> got = store.qualified(demand, now);
  chk.expect(store.qualified_count(demand, now) == got.size(),
             tag + " qualified_count disagrees with qualified");
  std::vector<index::Record> want;
  for (const auto& kv : oracle) {
    if (kv.second.qualifies(demand)) want.push_back(kv.second);
  }
  bool equal = got.size() == want.size();
  for (std::size_t i = 0; equal && i < got.size(); ++i) {
    equal = same_record(got[i], want[i]);  // oracle map is id-ascending too
  }
  chk.expect(equal, tag + " qualified() diverges from map oracle");
}

/// Two id lists describe the same set (inputs in ascending order already;
/// sorted defensively so a broken producer reports as a set mismatch, not
/// UB in std::equal).
bool same_ids(std::vector<NodeId> a, std::vector<NodeId> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

void check_can_space(Checker& chk, can::CanSpace& space,
                     const std::vector<NodeId>& alive,
                     const std::string& proto) {
  chk.expect(same_ids(space.member_ids(), alive),
             proto + ": CAN members != alive hosts");
  if (space.size() > 0) {
    chk.expect(std::abs(space.total_volume() - 1.0) < 1e-9,
               proto + ": member zone volumes do not sum to the unit cube");
  }
  chk.expect(space.verify_invariants(),
             proto + ": CAN tessellation/adjacency verifier failed");
}

}  // namespace

InvariantReport check_invariants(core::Experiment& ex, Rng& rng) {
  InvariantReport report;
  Checker chk(report);

  // 1. Host accounting / dense-map sanity.
  chk.expect_clean(ex.check_accounting(), "experiment accounting");

  // 2. Event-queue slab/heap/generation sanity.
  chk.expect(ex.simulator().verify_queue_integrity(),
             "event queue heap/slab integrity");

  // 3. Per-MsgType message conservation (every fate accounted exactly once,
  // including partition swallows).
  const net::TrafficStats& stats = ex.bus().stats();
  for (std::size_t t = 0; t < static_cast<std::size_t>(net::MsgType::kCount);
       ++t) {
    const auto type = static_cast<net::MsgType>(t);
    const std::uint64_t sent = stats.sent(type);
    const std::uint64_t resolved = stats.delivered(type) + stats.lost(type) +
                                   stats.partitioned(type) +
                                   stats.in_flight(type) +
                                   stats.synthetic(type);
    chk.expect(sent == resolved,
               std::string(net::msg_type_name(type)) +
                   " conservation broken: sent=" + std::to_string(sent) +
                   " delivered+lost+partitioned+in_flight+synthetic=" +
                   std::to_string(resolved));
  }
  chk.expect(ex.bus().in_flight() == stats.total_in_flight(),
             "bus slab occupancy != per-type in-flight totals");

  // 4. Partition bookkeeping: the cut set only holds alive hosts, the
  // protocol's parked state mirrors it exactly, and no messages can be
  // swallowed without a cut ever having been active.
  const std::vector<NodeId>& cut = ex.partitioned_ids();
  if (!ex.partition_active()) {
    chk.expect(cut.empty(), "partitioned ids linger after heal");
  }
  for (const NodeId id : cut) {
    chk.expect(ex.host_alive(id),
               "partitioned id " + std::to_string(id.value) + " is dead");
  }
  chk.expect(same_ids(ex.protocol().parked_ids(), cut),
             ex.protocol().name() +
                 ": parked protocol state != experiment's partitioned set");

  // 5–7. Overlay + index layers, per protocol family.  Partitioned hosts
  // are alive but out of the overlay, so the membership oracle is
  // alive-minus-partitioned.
  std::vector<NodeId> alive = ex.alive_ids();
  if (!cut.empty()) {
    std::vector<NodeId> connected;
    connected.reserve(alive.size());
    std::set_difference(alive.begin(), alive.end(), cut.begin(), cut.end(),
                        std::back_inserter(connected));
    alive = std::move(connected);
  }
  if (auto* pid = dynamic_cast<core::PidCanProtocol*>(&ex.protocol())) {
    check_can_space(chk, pid->space(), alive, pid->name());
    index::IndexSystem& index = pid->index();
    chk.expect_clean(index.check_membership_consistency(),
                     pid->name() + " index membership");
    const SimTime now = ex.simulator().now();
    for (const NodeId id : index.tracked_ids()) {
      check_record_store(chk, index.cache(id), id, pid->cmax(), now, rng);
    }
  } else if (auto* khdn = dynamic_cast<core::KhdnProtocol*>(&ex.protocol())) {
    check_can_space(chk, khdn->space(), alive, khdn->name());
    khdn::KhdnSystem& system = khdn->system();
    chk.expect_clean(system.check_membership_consistency(),
                     khdn->name() + " duty-cache membership");
    const SimTime now = ex.simulator().now();
    for (const NodeId id : system.tracked_ids()) {
      check_record_store(chk, system.cache(id), id, khdn->cmax(), now, rng);
    }
  }

  return report;
}

}  // namespace soc::scenario
