#include "src/obs/profiler.hpp"

#include <ctime>

#if defined(__linux__)
#include <unistd.h>

#include <cstdio>
#endif

namespace soc::obs {

std::uint64_t wall_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long vm_pages = 0;
  unsigned long long rss_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::uint64_t>(rss_pages) *
         static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

}  // namespace soc::obs
