// obs attribution profiler — *where* the bytes and the wall time go.
//
// MemBreakdown: per-subsystem memory accounting.  Subsystems expose
// `mem_bytes`-style hooks (CanSpace, IndexSystem caches, gossip views,
// the event/message slabs, HostTable) that report the capacity of their
// backing storage; Experiment::mem_breakdown() folds them into named
// buckets whose sum answers ROADMAP direction 1's open question — which
// per-node overlay state dominates bytes/node at scale.  Accounting is
// capacity-based (vector::capacity, slab high-water marks), i.e. the
// address-space the subsystem has claimed, which is what peak RSS sees.
//
// TimeProfiler: per-key wall-time buckets reusing LatencyHistogram's
// fixed log-bucket layout (values recorded in *nanoseconds* here — the
// histogram is unit-agnostic and handler dispatch is sub-microsecond).
// MessageBus keys it by MsgType, attributing handler wall time to the
// protocol handler that consumed it.  Wall time is inherently
// nondeterministic, so profile samples are flagged deterministic=false
// and never enter byte-compared artifacts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/metrics/latency_histogram.hpp"

namespace soc::obs {

/// Named byte buckets; add() accumulates, so several components may
/// deposit into one bucket (e.g. every protocol's caches under
/// "index.caches").
class MemBreakdown {
 public:
  void add(std::string_view name, std::uint64_t bytes) {
    by_name_[std::string(name)] += bytes;
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& [_, b] : by_name_) t += b;
    return t;
  }

  /// Buckets in name order (std::map iteration — deterministic).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& items() const {
    return by_name_;
  }

 private:
  std::map<std::string, std::uint64_t> by_name_;
};

/// Fixed-size array of wall-time histograms, keyed by small integer
/// (MessageBus uses MsgType).  Values are nanoseconds.
class TimeProfiler {
 public:
  explicit TimeProfiler(std::size_t keys) : hist_(keys) {}

  void record_ns(std::size_t key, std::uint64_t ns) {
    if (key < hist_.size()) hist_[key].record_us(ns);
  }

  [[nodiscard]] std::size_t keys() const { return hist_.size(); }
  [[nodiscard]] const metrics::LatencyHistogram& bucket(
      std::size_t key) const {
    return hist_[key];
  }

 private:
  std::vector<metrics::LatencyHistogram> hist_;  // ns samples per key
};

/// Monotonic wall clock in nanoseconds (CLOCK_MONOTONIC).
[[nodiscard]] std::uint64_t wall_now_ns();

/// Current resident set size from /proc/self/statm (0 where
/// unavailable).  Unlike getrusage's ru_maxrss this is the *instant*
/// RSS, so it can be sampled at phase boundaries (post-join,
/// post-churn) rather than only reporting the run-wide peak.
[[nodiscard]] std::uint64_t current_rss_bytes();

}  // namespace soc::obs
