// obs::Registry — the named-metric export surface.
//
// Ad-hoc counters used to be hand-plumbed through five files to reach a
// report (struct field → results copy → JSON writer → shard writer →
// shard reader).  The registry replaces that pipeline with one step:
// subsystems register a counter, gauge-value or gauge-callback under a
// dotted name, and `snapshot()` delivers every sample, sorted by name,
// to whichever serializer asked (bench `--json`, sweep shard files).
//
// Naming convention: `<subsystem>.<object>.<measure>` in the charset
// `[A-Za-z0-9_.-]` — e.g. `bus.gossip.sent`, `index.stale_debt.peak`,
// `mem.host_table.bytes`.  Names always contain a dot, so a metric key
// in a JSON block can never alias a schema key searched by json_mini's
// `"key":` needles (the needle includes the opening quote, and a dotted
// name never has a quote before its final segment).  Hostile names —
// schema words like `series` or `key`, or out-of-charset bytes — are
// defanged twice: sanitize() rewrites forbidden bytes to '_', and the
// shard schema stores samples as {"k": name, "v": value} pairs so names
// live inside string *values*, never as keys (obs_registry_test pins
// the round-trip).
//
// Determinism: every sample carries a `deterministic` flag.  Samples
// derived from simulation state (counters, slot-span ratios) are
// deterministic and may enter shard files, whose merges must stay
// byte-identical regardless of worker count; wall-clock-derived samples
// (RSS gauges, handler-time profiles) are not and are filtered out of
// any byte-compared artifact, the same regime as `wall_seconds`.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace soc::obs {

struct MetricSample {
  std::string name;
  double value = 0.0;
  bool deterministic = true;
};

class Registry {
 public:
  /// Rewrite out-of-charset bytes ([A-Za-z0-9_.-] allowed) to '_'.
  [[nodiscard]] static std::string sanitize(std::string_view name);

  /// Set a gauge to `value` (registers the name on first use).
  void set(std::string_view name, double value, bool deterministic = true);

  /// Add `delta` to a counter (registers at 0 on first use).
  void add(std::string_view name, double delta, bool deterministic = true);

  /// Register a callback evaluated at snapshot time — for values owned
  /// by a subsystem (bus counters, slab high-water marks) that should
  /// not be copied on every update.  The callback must outlive the
  /// registry or be removed with clear().
  void gauge(std::string_view name, std::function<double()> fn,
             bool deterministic = true);

  /// Every registered sample, sorted by name (std::map order), with
  /// callbacks evaluated now.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    double value = 0.0;
    std::function<double()> fn;  // wins over value when set
    bool deterministic = true;
  };

  Entry& entry(std::string_view name, bool deterministic);

  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace soc::obs
