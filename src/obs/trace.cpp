#include "src/obs/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace soc::obs {

namespace {
Tracer* g_tracer = nullptr;
}  // namespace

Tracer* tracer() { return g_tracer; }

Tracer* install_tracer(Tracer* t) {
  Tracer* prev = g_tracer;
  g_tracer = t;
  return prev;
}

void Tracer::set_lane(std::uint32_t pid, std::string name) {
  pid_ = pid;
  for (const auto& [known, _] : lanes_) {
    if (known == pid) return;
  }
  lanes_.emplace_back(pid, std::move(name));
}

void Tracer::push(Event e) {
  e.pid = pid_;
  events_.push_back(e);
}

void Tracer::begin(const char* cat, const char* name, std::uint64_t id,
                   SimTime ts) {
  push(Event{.ph = 'b', .cat = cat, .name = name, .id = id, .ts = ts});
}

void Tracer::end(const char* cat, const char* name, std::uint64_t id,
                 SimTime ts) {
  push(Event{.ph = 'e', .cat = cat, .name = name, .id = id, .ts = ts});
}

void Tracer::mark(const char* cat, const char* name, std::uint64_t id,
                  SimTime ts) {
  push(Event{.ph = 'n', .cat = cat, .name = name, .id = id, .ts = ts});
}

void Tracer::instant(const char* cat, const char* name, SimTime ts) {
  push(Event{.ph = 'i', .cat = cat, .name = name, .ts = ts});
}

void Tracer::instant(const char* cat, const char* name, SimTime ts,
                     const char* arg_key, std::uint64_t arg) {
  push(Event{
      .ph = 'i', .cat = cat, .name = name, .arg_key = arg_key, .ts = ts,
      .arg = arg});
}

void Tracer::complete(const char* cat, const char* name, SimTime ts,
                      SimTime dur) {
  push(Event{.ph = 'X', .cat = cat, .name = name, .ts = ts, .dur = dur});
}

void Tracer::complete(const char* cat, const char* name, SimTime ts,
                      SimTime dur, const char* arg_key, std::uint64_t arg) {
  push(Event{
      .ph = 'X', .cat = cat, .name = name, .arg_key = arg_key, .ts = ts,
      .dur = dur, .arg = arg});
}

std::size_t Tracer::count_ph(char ph) const {
  std::size_t n = 0;
  for (const Event& e : events_) n += (e.ph == ph) ? 1 : 0;
  return n;
}

std::string Tracer::to_json() const {
  std::string out;
  out.reserve(64 + events_.size() * 96);
  out += "{\"traceEvents\": [\n";
  char buf[256];
  bool first = true;
  auto emit = [&](const char* line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  for (const auto& [pid, name] : lanes_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\": \"M\", \"pid\": %" PRIu32
                  ", \"tid\": 0, \"name\": \"process_name\", "
                  "\"args\": {\"name\": \"%s\"}}",
                  pid, name.c_str());
    emit(buf);
  }
  for (const Event& e : events_) {
    char args[96] = "";
    if (e.arg_key != nullptr) {
      std::snprintf(args, sizeof(args), ", \"args\": {\"%s\": %" PRIu64 "}",
                    e.arg_key, e.arg);
    }
    switch (e.ph) {
      case 'b':
      case 'e':
      case 'n':
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\": \"%c\", \"pid\": %" PRIu32
                      ", \"tid\": 0, \"cat\": \"%s\", \"name\": \"%s\", "
                      "\"id\": \"0x%" PRIx64 "\", \"ts\": %" PRId64 "%s}",
                      e.ph, e.pid, e.cat, e.name, e.id, e.ts, args);
        break;
      case 'X':
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\": \"X\", \"pid\": %" PRIu32
                      ", \"tid\": 0, \"cat\": \"%s\", \"name\": \"%s\", "
                      "\"ts\": %" PRId64 ", \"dur\": %" PRId64 "%s}",
                      e.pid, e.cat, e.name, e.ts, e.dur, args);
        break;
      default:  // 'i'
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\": \"i\", \"pid\": %" PRIu32
                      ", \"tid\": 0, \"cat\": \"%s\", \"name\": \"%s\", "
                      "\"s\": \"p\", \"ts\": %" PRId64 "%s}",
                      e.pid, e.cat, e.name, e.ts, args);
        break;
    }
    emit(buf);
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::export_json(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace soc::obs
