#include "src/obs/registry.hpp"

#include <utility>

namespace soc::obs {

namespace {
bool allowed(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}
}  // namespace

std::string Registry::sanitize(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (!allowed(c)) c = '_';
  }
  return out;
}

Registry::Entry& Registry::entry(std::string_view name, bool deterministic) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(sanitize(name), Entry{}).first;
  }
  it->second.deterministic = it->second.deterministic && deterministic;
  return it->second;
}

void Registry::set(std::string_view name, double value, bool deterministic) {
  Entry& e = entry(name, deterministic);
  e.value = value;
  e.fn = nullptr;
}

void Registry::add(std::string_view name, double delta, bool deterministic) {
  entry(name, deterministic).value += delta;
}

void Registry::gauge(std::string_view name, std::function<double()> fn,
                     bool deterministic) {
  entry(name, deterministic).fn = std::move(fn);
}

std::vector<MetricSample> Registry::snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    out.push_back(MetricSample{
        name, e.fn ? e.fn() : e.value, e.deterministic});
  }
  return out;
}

}  // namespace soc::obs
