// obs::Tracer — per-query lifecycle spans and phase markers, exported as
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Design constraints, in order:
//   1. Pure observer.  The tracer draws no RNG, schedules no events, and
//      never influences iteration order; goldens, fingerprints and
//      BENCH_baseline.json are byte-identical with tracing on or off
//      (pinned by obs_trace_test).  Event ids are logical (task/query
//      sequence numbers), never pointers.
//   2. Zero cost when off.  The global sink is a nullable pointer; every
//      hot-path hook is `if (Tracer* t = obs::tracer()) ...` — one load
//      and one predictable branch when tracing is disabled (guarded by
//      the BM_TracerOff microbenchmark).
//   3. Deterministic output.  Timestamps are simulated time (SimTime is
//      integer microseconds, which is exactly the trace-event `ts` unit),
//      so the trace file for a given seed is bit-identical run to run.
//
// Events are buffered in chunked slab storage (std::deque: no wholesale
// reallocation-copy as the buffer grows) holding fixed-size records whose
// category/name/argument-key strings must be string literals (the tracer
// stores the pointers, it does not copy).  export_json() writes one event
// per line via tmp+rename, the same atomic-publish discipline as the
// sweep shard files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.hpp"

namespace soc::obs {

class Tracer {
 public:
  /// Switch the current lane (trace-event `pid`): subsequent events are
  /// attributed to it.  `name` labels the lane in the Perfetto process
  /// track (emitted as a process_name metadata event once per lane);
  /// unlike event cat/name strings it is copied, so dynamic labels
  /// (protocol names, sweep cell keys) are safe.
  void set_lane(std::uint32_t pid, std::string name);

  /// Async span begin/end ("b"/"e"): Perfetto pairs them by (cat, id) and
  /// nests them under the lane's track.  `id` must be a logical counter
  /// (task seq, query id), never a pointer.
  void begin(const char* cat, const char* name, std::uint64_t id, SimTime ts);
  void end(const char* cat, const char* name, std::uint64_t id, SimTime ts);

  /// Async instant ("n") attached to the (cat, id) span — e.g. the
  /// first-result moment inside a query span.
  void mark(const char* cat, const char* name, std::uint64_t id, SimTime ts);

  /// Free-standing instant ("i", process scope): phase markers such as
  /// partition start/heal.  Optional single numeric argument.
  void instant(const char* cat, const char* name, SimTime ts);
  void instant(const char* cat, const char* name, SimTime ts,
               const char* arg_key, std::uint64_t arg);

  /// Complete event ("X"): a span whose duration is known at emit time
  /// (e.g. a finished probe walk).  Optional single numeric argument.
  void complete(const char* cat, const char* name, SimTime ts, SimTime dur);
  void complete(const char* cat, const char* name, SimTime ts, SimTime dur,
                const char* arg_key, std::uint64_t arg);

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

  /// Registered lane count — the next free pid for callers that allocate
  /// lanes sequentially (e.g. one per sweep cell across several shards).
  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }

  /// Count of events whose ph is `ph` (test hook).
  [[nodiscard]] std::size_t count_ph(char ph) const;

  /// Serialize all buffered events as Chrome trace-event JSON, one event
  /// object per line.  Written to `path + ".tmp"` then renamed — partial
  /// files are never observable.  Returns false on I/O failure.
  [[nodiscard]] bool export_json(const std::string& path) const;

  /// The serialized JSON (export_json minus the file I/O; test hook).
  [[nodiscard]] std::string to_json() const;

 private:
  struct Event {
    char ph = 'i';               // b / e / n / i / X
    std::uint32_t pid = 0;       // lane
    const char* cat = nullptr;   // literal
    const char* name = nullptr;  // literal
    const char* arg_key = nullptr;  // literal or nullptr
    std::uint64_t id = 0;        // async-span id (b/e/n only)
    std::int64_t ts = 0;         // simulated µs
    std::int64_t dur = 0;        // X only
    std::uint64_t arg = 0;       // arg_key's value
  };

  void push(Event e);

  std::deque<Event> events_;
  std::vector<std::pair<std::uint32_t, std::string>> lanes_;
  std::uint32_t pid_ = 0;
};

/// The process-global sink: nullptr when tracing is off (the common
/// case — hooks cost one load + branch).  Not thread-safe by design:
/// experiments are single-threaded and sweep workers are separate
/// processes.
[[nodiscard]] Tracer* tracer();

/// Install (or, with nullptr, remove) the global sink.  Returns the
/// previous sink so scoped users can restore it.
Tracer* install_tracer(Tracer* t);

}  // namespace soc::obs
