// Fixed-size thread pool used to run independent simulation configurations
// (protocol × λ × scale sweeps) in parallel.  Each simulation itself is
// single-threaded and deterministic; the pool only parallelizes across
// experiments, so results never depend on scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace soc {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 → hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Submit a task; the returned future yields its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace soc
