// Small statistics helpers used by the metrics subsystem and the benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace soc {

/// Streaming mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel sweeps).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Jain's fairness index over a set of per-task efficiencies (Eq. (4) of
/// the paper): (Σe)² / (m · Σe²).  Returns 1.0 for an empty set (vacuously
/// fair) and is always within (0, 1].
double jain_fairness(std::span<const double> values);

/// Jain's index from pre-accumulated moments (n values summing to `sum`
/// with Σv² = `sum_sq`).  Streaming callers that fold values left-to-right
/// with `sum += v; sum_sq += v * v` get bit-identical results to
/// jain_fairness over the same sequence — the metrics series relies on
/// this to drop its per-event vectors.
double jain_from_moments(std::size_t n, double sum, double sum_sq);

/// Percentile of a copy of the data (p in [0,100], linear interpolation).
double percentile(std::vector<double> values, double p);

/// Median of a copy of the data (percentile 50).
double median(std::vector<double> values);

/// Two-sided 95% Student-t critical value for `dof` degrees of freedom
/// (table for 1..30, the large-sample normal limit above; dof 0 returns 0).
double student_t95(std::size_t dof);

/// Half-width of the 95% confidence interval of the mean of `n` samples
/// with sample standard deviation `stddev`: t_{0.975, n-1} * s / sqrt(n).
/// Returns 0 for n < 2 (a single repeat has no interval) — the sweep
/// merger's per-config CI across repeat seeds.
double mean_ci95_halfwidth(std::size_t n, double stddev);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// clamp into the edge buckets (-inf lands in bucket 0, +inf in the last).
/// NaN policy: NaN belongs to no bucket, so it is counted separately
/// (nan_count()) and excluded from total() — silently filing it in an edge
/// bucket would fabricate a data point.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bucket) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t nan_count() const { return nan_; }
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_ = 0;
};

}  // namespace soc
