#include "src/common/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace soc {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.contains(name);
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    if (comma > start) out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

std::vector<std::string> CliArgs::get_list(const std::string& name,
                                           const std::string& fallback) const {
  return split_csv(get(name, fallback));
}

std::optional<std::vector<double>> CliArgs::get_double_list(
    const std::string& name, const std::string& fallback) const {
  std::vector<double> out;
  for (const std::string& s : get_list(name, fallback)) {
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0') {
      std::fprintf(stderr, "--%s: '%s' is not a number\n", name.c_str(),
                   s.c_str());
      return std::nullopt;
    }
    out.push_back(v);
  }
  return out;
}

std::optional<std::vector<std::size_t>> CliArgs::get_size_list(
    const std::string& name, const std::string& fallback) const {
  std::vector<std::size_t> out;
  for (const std::string& s : get_list(name, fallback)) {
    char* end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || v < 0) {
      std::fprintf(stderr, "--%s: '%s' is not a non-negative integer\n",
                   name.c_str(), s.c_str());
      return std::nullopt;
    }
    out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

}  // namespace soc
