// ResourceVector: a d-dimensional non-negative quantity vector used for node
// capacities (c_i), aggregated loads (l_i), availabilities (a_i = c_i - l_i)
// and task expectation vectors (e(t_ij)).
//
// The paper works with d = 5 resource types {CPU, I/O, network, disk,
// memory}; the type supports any d up to kMaxDims with inline storage so the
// simulator never allocates per-vector.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <span>
#include <string>

#include "src/common/assert.hpp"

namespace soc {

class ResourceVector {
 public:
  static constexpr std::size_t kMaxDims = 8;

  ResourceVector() = default;

  /// Zero vector of dimension d.
  explicit ResourceVector(std::size_t d) : size_(d) {
    SOC_CHECK(d <= kMaxDims);
    v_.fill(0.0);
  }

  ResourceVector(std::initializer_list<double> init) : size_(init.size()) {
    SOC_CHECK(init.size() <= kMaxDims);
    std::copy(init.begin(), init.end(), v_.begin());
  }

  static ResourceVector filled(std::size_t d, double value) {
    ResourceVector r(d);
    for (std::size_t i = 0; i < d; ++i) r.v_[i] = value;
    return r;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  double& operator[](std::size_t i) {
    SOC_DCHECK(i < size_);
    return v_[i];
  }
  double operator[](std::size_t i) const {
    SOC_DCHECK(i < size_);
    return v_[i];
  }

  [[nodiscard]] std::span<const double> values() const {
    return {v_.data(), size_};
  }

  /// Componentwise "dominates or equals": *this ≽ other (Inequality (2) of
  /// the paper uses availability ≽ expectation).
  [[nodiscard]] bool dominates(const ResourceVector& other) const {
    SOC_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < size_; ++i)
      if (v_[i] < other.v_[i]) return false;
    return true;
  }

  /// Strict componentwise domination on every axis.
  [[nodiscard]] bool strictly_dominates(const ResourceVector& other) const {
    SOC_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < size_; ++i)
      if (v_[i] <= other.v_[i]) return false;
    return true;
  }

  ResourceVector& operator+=(const ResourceVector& o) {
    SOC_DCHECK(size_ == o.size_);
    for (std::size_t i = 0; i < size_; ++i) v_[i] += o.v_[i];
    return *this;
  }
  ResourceVector& operator-=(const ResourceVector& o) {
    SOC_DCHECK(size_ == o.size_);
    for (std::size_t i = 0; i < size_; ++i) v_[i] -= o.v_[i];
    return *this;
  }
  ResourceVector& operator*=(double s) {
    for (std::size_t i = 0; i < size_; ++i) v_[i] *= s;
    return *this;
  }

  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    return a += b;
  }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) {
    return a -= b;
  }
  friend ResourceVector operator*(ResourceVector a, double s) { return a *= s; }
  friend ResourceVector operator*(double s, ResourceVector a) { return a *= s; }

  /// Componentwise division; both vectors must be the same size and the
  /// divisor strictly positive on every axis.
  [[nodiscard]] ResourceVector divided_by(const ResourceVector& o) const {
    SOC_DCHECK(size_ == o.size_);
    ResourceVector r(size_);
    for (std::size_t i = 0; i < size_; ++i) {
      SOC_DCHECK(o.v_[i] > 0.0);
      r.v_[i] = v_[i] / o.v_[i];
    }
    return r;
  }

  /// Componentwise min/max.
  [[nodiscard]] ResourceVector cw_min(const ResourceVector& o) const {
    SOC_DCHECK(size_ == o.size_);
    ResourceVector r(size_);
    for (std::size_t i = 0; i < size_; ++i) r.v_[i] = std::min(v_[i], o.v_[i]);
    return r;
  }
  [[nodiscard]] ResourceVector cw_max(const ResourceVector& o) const {
    SOC_DCHECK(size_ == o.size_);
    ResourceVector r(size_);
    for (std::size_t i = 0; i < size_; ++i) r.v_[i] = std::max(v_[i], o.v_[i]);
    return r;
  }

  /// Clamp every component into [0, hi_i].
  [[nodiscard]] ResourceVector clamped(const ResourceVector& hi) const {
    SOC_DCHECK(size_ == hi.size_);
    ResourceVector r(size_);
    for (std::size_t i = 0; i < size_; ++i)
      r.v_[i] = std::clamp(v_[i], 0.0, hi.v_[i]);
    return r;
  }

  [[nodiscard]] double min_component() const {
    SOC_DCHECK(size_ > 0);
    return *std::min_element(v_.begin(), v_.begin() + size_);
  }
  [[nodiscard]] double max_component() const {
    SOC_DCHECK(size_ > 0);
    return *std::max_element(v_.begin(), v_.begin() + size_);
  }
  [[nodiscard]] double sum() const {
    double s = 0.0;
    for (std::size_t i = 0; i < size_; ++i) s += v_[i];
    return s;
  }

  /// True iff every component is >= 0 (availability vectors must be).
  [[nodiscard]] bool non_negative() const {
    for (std::size_t i = 0; i < size_; ++i)
      if (v_[i] < 0.0) return false;
    return true;
  }

  bool operator==(const ResourceVector& o) const {
    if (size_ != o.size_) return false;
    return std::equal(v_.begin(), v_.begin() + size_, o.v_.begin());
  }

  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const ResourceVector& v) {
    return os << v.to_string();
  }

 private:
  std::array<double, kMaxDims> v_{};
  std::size_t size_ = 0;
};

/// Normalized slack of an availability vector against a demand: how much
/// headroom (as a fraction of the demand's scale) a candidate leaves.  The
/// best-fit selection picks the qualified candidate with the *smallest*
/// slack so large availabilities are preserved for large future demands.
double best_fit_slack(const ResourceVector& availability,
                      const ResourceVector& demand,
                      const ResourceVector& capacity_scale);

}  // namespace soc
