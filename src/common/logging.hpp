// Leveled logger routed through the observability layer's sink rules:
// level-gated (SOC_LOG env / Logger::set_level), rate-limited, prefixed
// with simulated time, and line-atomic.
//
// Simulations are silent by default; raise the level to trace protocol
// decisions.  Each line is rendered into one buffer — including a
// `[t=<sim µs>]` prefix when a simulator is driving the calling thread
// (Simulator::run_until installs a time source; see set_time_source) —
// and emitted with a single write(2) syscall, so lines from concurrent
// sweep worker *processes* sharing one stderr never interleave
// mid-line.  A token bucket (200-line burst, 100 lines/s wall-clock
// refill) drops floods; the first line after a dropped stretch is
// prefixed with the suppressed count, so the log says what it lost.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace soc {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);
  static void write(LogLevel lvl, const std::string& msg);

  /// Parse "trace|debug|info|warn|error|off" (case-insensitive).
  static LogLevel parse_level(const std::string& s);

  /// Install a per-thread simulated-time source (the callback returns
  /// µs, or a negative value for "no sim time").  The simulator sets
  /// this around its run loop; pass {nullptr, nullptr} to restore the
  /// bare prefix.  Returns the previous source so callers can nest.
  struct TimeSource {
    std::int64_t (*fn)(const void*) = nullptr;
    const void* ctx = nullptr;
  };
  static TimeSource set_time_source(TimeSource src);

  /// Disable/restore the rate limiter (tests that count their own
  /// lines).  Returns the previous setting.
  static bool set_rate_limit(bool enabled);

  /// Lines dropped by the rate limiter since process start.
  static std::uint64_t suppressed_total();
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Logger::write(lvl_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace soc

#define SOC_LOG(lvl)                                 \
  if (::soc::LogLevel::lvl < ::soc::Logger::level()) \
    ;                                                \
  else                                               \
    ::soc::detail::LogLine(::soc::LogLevel::lvl)
