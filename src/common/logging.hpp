// Minimal leveled logger.  Simulations are silent by default; raise the
// level via Logger::set_level or the SOC_LOG env var to trace protocol
// decisions.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace soc {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);
  static void write(LogLevel lvl, const std::string& msg);

  /// Parse "trace|debug|info|warn|error|off" (case-insensitive).
  static LogLevel parse_level(const std::string& s);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Logger::write(lvl_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace soc

#define SOC_LOG(lvl)                                 \
  if (::soc::LogLevel::lvl < ::soc::Logger::level()) \
    ;                                                \
  else                                               \
    ::soc::detail::LogLine(::soc::LogLevel::lvl)
