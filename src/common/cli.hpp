// Tiny command-line flag parser shared by benches and examples.
// Accepts --name=value, --name value, and boolean --name forms.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace soc {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  // Comma-separated list forms (sweep grids: --lambdas 0.3,0.5).  The
  // fallback is given in the same comma-separated syntax; empty elements
  // are skipped, so a trailing comma is harmless.  The numeric forms are
  // strict — any element that does not parse in full (a ';' typo, a
  // negative count, trailing junk) returns nullopt with a message on
  // stderr, because a silently truncated grid axis would merge wrong
  // sweep numbers.
  [[nodiscard]] std::vector<std::string> get_list(
      const std::string& name, const std::string& fallback) const;
  [[nodiscard]] std::optional<std::vector<double>> get_double_list(
      const std::string& name, const std::string& fallback) const;
  [[nodiscard]] std::optional<std::vector<std::size_t>> get_size_list(
      const std::string& name, const std::string& fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace soc
