// FlatMap<K, V>: open-addressing hash map with linear probing — the
// replacement for the last std::unordered_map on the per-dispatch path
// (Experiment::in_flight_).  Node-based unordered_map pays an allocation
// per insert and a pointer chase per lookup; at million-node scale the
// in-flight table holds ~10^5 entries and is touched on every dispatch
// and completion.
//
// Design: power-of-two table of std::optional<Entry> plus a state byte
// (empty / full / tombstone), linear probing from a mixed hash
// (splitmix64 finalizer — std::hash on integers is identity on this ABI,
// which would cluster sequential TaskIds).  Erase tombstones; the table
// rehashes — and shrinks — when full+tombstone load passes 3/4, so a
// drained table gives its memory back (unordered_map never does).
//
// Iteration is in table order: deterministic for a deterministic
// insert/erase history (all simulator state is), but NOT sorted — the
// only iterating callers (checkpoint snapshots, accounting audit) need
// determinism, not order.
//
// References and iterators are invalidated by any insert (rehash moves
// entries), matching the repo-wide DenseNodeMap discipline.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/assert.hpp"

namespace soc {

template <typename K, typename V, typename Hash = std::hash<K>>
class FlatMap {
 public:
  struct Entry {
    K first;
    V second;
  };

  template <bool Const>
  class Iterator {
   public:
    using Map = std::conditional_t<Const, const FlatMap, FlatMap>;
    using Ref = std::conditional_t<Const, const Entry&, Entry&>;
    using Ptr = std::conditional_t<Const, const Entry*, Entry*>;

    Iterator(Map* map, std::size_t idx) : map_(map), idx_(idx) { skip(); }

    Ref operator*() const { return *map_->slots_[idx_]; }
    Ptr operator->() const { return &*map_->slots_[idx_]; }
    Iterator& operator++() {
      ++idx_;
      skip();
      return *this;
    }
    bool operator==(const Iterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const Iterator& o) const { return idx_ != o.idx_; }

   private:
    friend class FlatMap;
    void skip() {
      while (idx_ < map_->state_.size() && map_->state_[idx_] != kFull) {
        ++idx_;
      }
    }
    Map* map_;
    std::size_t idx_;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  /// Insert (key → value) if absent; no-op when the key is already
  /// present, mirroring std::unordered_map::emplace.  Returns whether an
  /// insert happened.
  bool emplace(const K& key, V value) {
    reserve_for(size_ + 1);
    std::size_t idx = probe_start(key);
    std::size_t insert_at = kNpos;
    for (;; idx = (idx + 1) & (state_.size() - 1)) {
      if (state_[idx] == kEmpty) {
        if (insert_at == kNpos) insert_at = idx;
        break;
      }
      if (state_[idx] == kTomb) {
        if (insert_at == kNpos) insert_at = idx;
        continue;
      }
      if (slots_[idx]->first == key) return false;
    }
    if (state_[insert_at] == kTomb) --tombstones_;
    state_[insert_at] = kFull;
    slots_[insert_at].emplace(Entry{key, std::move(value)});
    ++size_;
    return true;
  }

  [[nodiscard]] iterator find(const K& key) {
    return {this, find_index(key)};
  }
  [[nodiscard]] const_iterator find(const K& key) const {
    return {this, find_index(key)};
  }
  [[nodiscard]] bool contains(const K& key) const {
    return find_index(key) != state_.size();
  }

  /// Erase by iterator (obtained from find; must not be end()).
  void erase(iterator it) {
    SOC_DCHECK(it.idx_ < state_.size() && state_[it.idx_] == kFull);
    state_[it.idx_] = kTomb;
    slots_[it.idx_].reset();
    --size_;
    ++tombstones_;
  }

  /// Erase by key.  Returns whether it was present.
  bool erase(const K& key) {
    const std::size_t idx = find_index(key);
    if (idx == state_.size()) return false;
    erase(iterator{this, idx});
    return true;
  }

  void clear() {
    state_.clear();
    slots_.clear();
    size_ = 0;
    tombstones_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Table length (diagnostics): full + tombstone + empty slots.
  [[nodiscard]] std::size_t capacity() const { return state_.size(); }

  [[nodiscard]] iterator begin() { return {this, 0}; }
  [[nodiscard]] iterator end() { return {this, state_.size()}; }
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, state_.size()}; }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTomb = 2;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  static std::uint64_t mix(std::uint64_t h) {
    // splitmix64 finalizer: integral std::hash is identity on libstdc++,
    // and linear probing needs the high entropy spread into the mask bits.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
  }

  [[nodiscard]] std::size_t probe_start(const K& key) const {
    return static_cast<std::size_t>(mix(Hash{}(key))) & (state_.size() - 1);
  }

  /// Slot of `key`, or state_.size() when absent (== end()).
  [[nodiscard]] std::size_t find_index(const K& key) const {
    if (state_.empty()) return 0;  // == size(): empty map's end()
    std::size_t idx = probe_start(key);
    for (;; idx = (idx + 1) & (state_.size() - 1)) {
      if (state_[idx] == kEmpty) return state_.size();
      if (state_[idx] == kFull && slots_[idx]->first == key) return idx;
    }
  }

  /// Grow (or shrink, when tombstones dominate) so `want` entries fit
  /// under 3/4 load; rehashed tables start at ≤ 1/2 load.
  void reserve_for(std::size_t want) {
    if (!state_.empty() && (want + tombstones_) * 4 <= state_.size() * 3) {
      return;
    }
    std::size_t cap = 16;
    while (cap < want * 2) cap <<= 1;
    std::vector<std::uint8_t> old_state = std::move(state_);
    std::vector<std::optional<Entry>> old_slots = std::move(slots_);
    state_.assign(cap, kEmpty);
    slots_.assign(cap, std::nullopt);
    tombstones_ = 0;
    for (std::size_t i = 0; i < old_state.size(); ++i) {
      if (old_state[i] != kFull) continue;
      std::size_t idx = probe_start(old_slots[i]->first);
      while (state_[idx] == kFull) idx = (idx + 1) & (cap - 1);
      state_[idx] = kFull;
      slots_[idx] = std::move(old_slots[i]);
    }
  }

  std::vector<std::uint8_t> state_;
  std::vector<std::optional<Entry>> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace soc
