// Slab<T>: a growable arena of reusable slots with a free-slot stack.
//
// The simulator keeps short-lived per-operation state alive in bulk —
// pending events, in-flight messages — and each subsystem used to
// hand-roll the same pattern: a vector of slots, a free-list head threaded
// through a spare field, and a high-water-mark accessor for the stress
// tests.  Slab centralizes it.
//
// The free list is a side stack of indices rather than a link threaded
// through the slots: same LIFO reuse order as the hand-rolled intrusive
// lists, but the slot array stays exactly sizeof(T) per entry (no link
// field padding the hottest arenas — an EventQueue slot is
// alignof(max_align_t)-aligned, so even 4 extra bytes would cost a full
// alignment quantum of stride).
//
// Semantics:
//   * alloc() pops the free stack or appends; a *fresh* slot's value is
//     default-constructed, a *recycled* slot keeps whatever the previous
//     user left behind (callers overwrite what they need — this is what
//     lets pooled vectors keep their capacity across reuses).
//   * release() pushes the slot back; the value is NOT destroyed, so any
//     owned resources persist until reuse unless the caller resets them
//     (EventQueue resets callbacks eagerly to free captures).
//   * Slot indices are dense uint32s, stable for the slot's lifetime.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/assert.hpp"

namespace soc {

template <typename T>
class Slab {
 public:
  static constexpr std::uint32_t kNullSlot = 0xffffffffu;

  /// Allocate a slot index.  O(1); grows the arena only when the free
  /// stack is empty, so the arena size tracks *peak* concurrent usage.
  std::uint32_t alloc() {
    ++live_;
    if (!free_.empty()) {
      const std::uint32_t idx = free_.back();
      free_.pop_back();
      return idx;
    }
    SOC_CHECK_MSG(slots_.size() < kNullSlot, "slab full");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  /// Return a slot to the free stack.  The value stays constructed.
  void release(std::uint32_t idx) {
    SOC_DCHECK(idx < slots_.size());
    SOC_DCHECK(live_ > 0);
    free_.push_back(idx);
    --live_;
  }

  T& operator[](std::uint32_t idx) {
    SOC_DCHECK(idx < slots_.size());
    return slots_[idx];
  }
  const T& operator[](std::uint32_t idx) const {
    SOC_DCHECK(idx < slots_.size());
    return slots_[idx];
  }

  /// High-water mark: slots ever allocated (live + free-stacked).
  [[nodiscard]] std::size_t slots() const { return slots_.size(); }
  /// Currently allocated (not released) slots.
  [[nodiscard]] std::size_t live() const { return live_; }

 private:
  std::vector<T> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
};

}  // namespace soc
