// Minimal JSON field extraction shared by the perf-gate parser
// (bench/compare_core.hpp) and the sweep shard/merged-report parser
// (src/sweep/merge.cpp).  This is deliberately not a JSON library: every
// schema we read is one we also write (BENCH_*.json, sweep shard results,
// merged sweep reports), so bounded key lookups are enough and keep the
// gate dependency-free.
//
// All lookups are bounded to [from, to): when a file holds an array of
// per-experiment/per-cell blocks, bounding the search at the next block's
// sentinel key keeps a field missing from one block from silently reading
// the next block's value.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace soc::json_mini {

/// Escape a string for embedding inside a JSON string literal: quotes and
/// backslashes get a backslash, and the control characters our labels could
/// plausibly pick up (\n, \r, \t) their two-character escapes.  Every
/// hand-rolled writer (BENCH_*.json, sweep shard/manifest/merged reports)
/// routes its string fields through this, so a future protocol/scenario
/// label containing '"' or '\' cannot tear the emitted JSON.  Byte-neutral
/// for every label the writers emit today.
inline std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char ch : raw) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  return out;
}

/// Extract the number following `"key": ` in text[from, to); nullopt when
/// the key is absent there.  Tolerant of whitespace; enough JSON for our
/// own schemas.
inline std::optional<double> find_number(const std::string& text,
                                         const std::string& key,
                                         std::size_t from,
                                         std::size_t to = std::string::npos) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= to) return std::nullopt;
  const char* start = text.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return v;
}

/// Like find_number, but parsed as an exact unsigned 64-bit integer —
/// doubles silently round above 2^53, which would corrupt 64-bit seeds
/// (and, in principle, large event counts) on a shard-file round-trip.
inline std::optional<std::uint64_t> find_uint64(
    const std::string& text, const std::string& key, std::size_t from,
    std::size_t to = std::string::npos) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= to) return std::nullopt;
  const char* start = text.c_str() + at + needle.size();
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(start, &end, 10);
  if (end == start) return std::nullopt;
  return v;
}

/// Extract the string following `"key": "` in text[from, to), undoing the
/// escapes escape() produces — so escaped labels round-trip through the
/// shard/report files instead of reading back with stray backslashes.
inline std::optional<std::string> find_string(
    const std::string& text, const std::string& key, std::size_t from,
    std::size_t to = std::string::npos) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= to) return std::nullopt;
  std::string out;
  for (std::size_t i = at + needle.size(); i < text.size() && i < to; ++i) {
    const char ch = text[i];
    if (ch == '"') return out;
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (i + 1 >= text.size() || i + 1 >= to) return std::nullopt;
    switch (text[++i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      default: return std::nullopt;  // escapes we never write
    }
  }
  return std::nullopt;  // unterminated within [from, to)
}

}  // namespace soc::json_mini
