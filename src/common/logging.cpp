#include "src/common/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <mutex>

namespace soc {

namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized
std::mutex g_write_mutex;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

int initial_level() {
  if (const char* env = std::getenv("SOC_LOG")) {
    return static_cast<int>(Logger::parse_level(env));
  }
  return static_cast<int>(LogLevel::kWarn);
}

}  // namespace

LogLevel Logger::level() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = initial_level();
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lvl);
}

void Logger::set_level(LogLevel lvl) {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

void Logger::write(LogLevel lvl, const std::string& msg) {
  if (lvl < level()) return;
  const std::scoped_lock lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(lvl), msg.c_str());
}

LogLevel Logger::parse_level(const std::string& s) {
  std::string t = s;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (t == "trace") return LogLevel::kTrace;
  if (t == "debug") return LogLevel::kDebug;
  if (t == "info") return LogLevel::kInfo;
  if (t == "warn") return LogLevel::kWarn;
  if (t == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

}  // namespace soc
