#include "src/common/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define SOC_LOG_HAVE_WRITE 1
#endif

namespace soc {

namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized
std::mutex g_write_mutex;

// Token bucket, wall-clock refill.  Guarded by g_write_mutex.
constexpr double kBurstLines = 200.0;
constexpr double kLinesPerSec = 100.0;
bool g_rate_limit_enabled = true;
double g_tokens = kBurstLines;
std::uint64_t g_last_refill_ns = 0;
std::atomic<std::uint64_t> g_suppressed_total{0};
std::uint64_t g_suppressed_run = 0;  // since the last emitted line

// Per-thread simulated-time source (installed by Simulator::run_until).
thread_local Logger::TimeSource g_time_source;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

int initial_level() {
  if (const char* env = std::getenv("SOC_LOG")) {
    return static_cast<int>(Logger::parse_level(env));
  }
  return static_cast<int>(LogLevel::kWarn);
}

std::uint64_t mono_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// Take one token; false means the line is dropped.  Caller holds
/// g_write_mutex.
bool take_token() {
  if (!g_rate_limit_enabled) return true;
  const std::uint64_t now = mono_ns();
  if (g_last_refill_ns == 0) g_last_refill_ns = now;
  const double elapsed_s =
      static_cast<double>(now - g_last_refill_ns) * 1e-9;
  g_tokens = std::min(kBurstLines, g_tokens + elapsed_s * kLinesPerSec);
  g_last_refill_ns = now;
  if (g_tokens < 1.0) return false;
  g_tokens -= 1.0;
  return true;
}

void emit_line(const std::string& line) {
#if SOC_LOG_HAVE_WRITE
  // One write(2) per line: atomic with respect to other processes
  // appending to the same stderr (sweep workers), unlike stdio which
  // may flush a line in pieces.
  ssize_t ignored = ::write(2, line.data(), line.size());
  (void)ignored;
#else
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
#endif
}

}  // namespace

LogLevel Logger::level() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = initial_level();
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lvl);
}

void Logger::set_level(LogLevel lvl) {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

Logger::TimeSource Logger::set_time_source(TimeSource src) {
  const TimeSource prev = g_time_source;
  g_time_source = src;
  return prev;
}

bool Logger::set_rate_limit(bool enabled) {
  const std::scoped_lock lock(g_write_mutex);
  const bool prev = g_rate_limit_enabled;
  g_rate_limit_enabled = enabled;
  return prev;
}

std::uint64_t Logger::suppressed_total() {
  return g_suppressed_total.load(std::memory_order_relaxed);
}

void Logger::write(LogLevel lvl, const std::string& msg) {
  if (lvl < level()) return;

  // Render outside observation: prefix with sim time when the calling
  // thread is inside a simulator run.
  char prefix[96];
  int n = 0;
  const TimeSource src = g_time_source;
  std::int64_t sim_us = -1;
  if (src.fn != nullptr) sim_us = src.fn(src.ctx);
  if (sim_us >= 0) {
    n = std::snprintf(prefix, sizeof(prefix), "[%s] [t=%" PRId64 "us] ",
                      level_name(lvl), sim_us);
  } else {
    n = std::snprintf(prefix, sizeof(prefix), "[%s] ", level_name(lvl));
  }
  if (n < 0) n = 0;

  const std::scoped_lock lock(g_write_mutex);
  if (!take_token()) {
    g_suppressed_total.fetch_add(1, std::memory_order_relaxed);
    ++g_suppressed_run;
    return;
  }

  std::string line;
  line.reserve(static_cast<std::size_t>(n) + msg.size() + 48);
  line.assign(prefix, static_cast<std::size_t>(n));
  if (g_suppressed_run > 0) {
    char sup[48];
    const int m = std::snprintf(sup, sizeof(sup),
                                "[suppressed %" PRIu64 " lines] ",
                                g_suppressed_run);
    if (m > 0) line.append(sup, static_cast<std::size_t>(m));
    g_suppressed_run = 0;
  }
  line += msg;
  line += '\n';
  emit_line(line);
}

LogLevel Logger::parse_level(const std::string& s) {
  std::string t = s;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (t == "trace") return LogLevel::kTrace;
  if (t == "debug") return LogLevel::kDebug;
  if (t == "info") return LogLevel::kInfo;
  if (t == "warn") return LogLevel::kWarn;
  if (t == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

}  // namespace soc
