#include "src/common/resource_vector.hpp"

#include <sstream>

namespace soc {

std::string ResourceVector::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < size_; ++i) {
    if (i) os << ", ";
    os << v_[i];
  }
  os << ')';
  return os.str();
}

double best_fit_slack(const ResourceVector& availability,
                      const ResourceVector& demand,
                      const ResourceVector& capacity_scale) {
  SOC_CHECK(availability.size() == demand.size());
  SOC_CHECK(availability.size() == capacity_scale.size());
  double slack = 0.0;
  for (std::size_t i = 0; i < availability.size(); ++i) {
    const double scale = capacity_scale[i] > 0.0 ? capacity_scale[i] : 1.0;
    slack += (availability[i] - demand[i]) / scale;
  }
  return slack / static_cast<double>(availability.size());
}

}  // namespace soc
