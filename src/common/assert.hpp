// Lightweight contract checks.  SOC_CHECK is always on (simulation
// correctness beats the negligible branch cost); SOC_DCHECK compiles out in
// release builds for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace soc::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "SOC_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace soc::detail

#define SOC_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) [[unlikely]]                                        \
      ::soc::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define SOC_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) [[unlikely]]                                        \
      ::soc::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define SOC_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define SOC_DCHECK(expr) SOC_CHECK(expr)
#endif
