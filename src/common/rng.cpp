#include "src/common/rng.hpp"

#include <cmath>
#include <numbers>

namespace soc {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t hash_name(std::string_view name) {
  // FNV-1a 64-bit over the stream name; stable across platforms.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::string_view name) const {
  return Rng(seed_ ^ hash_name(name) ^ 0x9e3779b97f4a7c15ull);
}

Rng Rng::fork(std::uint64_t key) const {
  SplitMix64 sm(key + 0x632be59bd9b4e019ull);
  return Rng(seed_ ^ sm.next());
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SOC_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SOC_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling for an unbiased draw.
  const std::uint64_t limit = (~0ull) - (~0ull) % span;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % span);
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  SOC_DCHECK(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::pick_index(std::size_t size) {
  SOC_CHECK(size > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size - 1)));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  shuffle(all.begin(), all.end());
  if (k < n) all.resize(k);
  return all;
}

}  // namespace soc
