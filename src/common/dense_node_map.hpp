// DenseNodeMap<T>: per-node state keyed by NodeId, stored as a dense array.
//
// NodeIds are small and allocated sequentially (Topology::add_host hands
// out 0, 1, 2, …; churned-out nodes never reuse an id), so the per-node
// state every subsystem keeps — hosts, CAN members, index caches, gossip
// views — fits a flat vector indexed by id.  That removes the hash-and-
// probe from every per-message lookup, which profiling after the PR-1
// event-queue rewrite showed was the next cost on the hot path.
//
// Compared to std::unordered_map<NodeId, T>:
//   * find/at/contains are one bounds check and one flag test;
//   * iteration is in ascending id order — deterministic by construction,
//     so callers no longer collect-and-sort to stay seed-stable;
//   * erase leaves a hole (ids are never reused within a run); the slot
//     storage is reclaimed only when the map is destroyed.  Because every
//     churn join takes a fresh increasing id, the slot array tracks total
//     joins ever, not live population: long heavy-churn runs pay
//     O(max id) iteration and keep one vacant std::optional<T> slot per
//     departed node (see ROADMAP for compaction if that ever bites).
//   * UNLIKE unordered_map, references are NOT stable across insertions:
//     emplace/operator[] for a new id may grow the backing vector and
//     invalidate every outstanding T&/T*.  Do not hold a reference across
//     a call that can admit a new node.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/types.hpp"

namespace soc {

template <typename T>
class DenseNodeMap {
 public:
  /// Insert a value for `id` (which must not be present).  Returns the
  /// stored value.
  T& emplace(NodeId id, T value) {
    SOC_DCHECK(id.valid());
    SOC_CHECK_MSG(!contains(id), "duplicate node id");
    grow_to(id);
    slots_[id.value].emplace(std::move(value));
    ++size_;
    return *slots_[id.value];
  }

  /// Find-or-default-construct, mirroring std::unordered_map::operator[].
  T& operator[](NodeId id) {
    SOC_DCHECK(id.valid());
    grow_to(id);
    if (!slots_[id.value].has_value()) {
      slots_[id.value].emplace();
      ++size_;
    }
    return *slots_[id.value];
  }

  [[nodiscard]] T* find(NodeId id) {
    if (!id.valid() || id.value >= slots_.size() ||
        !slots_[id.value].has_value()) {
      return nullptr;
    }
    return &*slots_[id.value];
  }
  [[nodiscard]] const T* find(NodeId id) const {
    return const_cast<DenseNodeMap*>(this)->find(id);
  }

  [[nodiscard]] bool contains(NodeId id) const { return find(id) != nullptr; }

  T& at(NodeId id) {
    T* p = find(id);
    SOC_CHECK_MSG(p != nullptr, "unknown node id");
    return *p;
  }
  const T& at(NodeId id) const {
    const T* p = find(id);
    SOC_CHECK_MSG(p != nullptr, "unknown node id");
    return *p;
  }

  /// Remove `id`'s value.  Returns whether it was present.
  bool erase(NodeId id) {
    if (!contains(id)) return false;
    slots_[id.value].reset();
    --size_;
    return true;
  }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Backing-array length (max id ever inserted + 1): what iteration
  /// actually walks.  slot_span() - size() is the vacant-slot count the
  /// long-churn stress test quantifies (see ROADMAP on id recycling).
  [[nodiscard]] std::size_t slot_span() const { return slots_.size(); }

  /// Iteration in ascending id order; *it is a {NodeId, T&} pair.
  template <bool Const>
  class Iterator {
   public:
    using Map = std::conditional_t<Const, const DenseNodeMap, DenseNodeMap>;
    using Ref = std::conditional_t<Const, const T&, T&>;

    Iterator(Map* map, std::uint32_t idx) : map_(map), idx_(idx) { skip(); }

    std::pair<NodeId, Ref> operator*() const {
      return {NodeId(idx_), *map_->slots_[idx_]};
    }
    Iterator& operator++() {
      ++idx_;
      skip();
      return *this;
    }
    bool operator==(const Iterator& o) const { return idx_ == o.idx_; }

   private:
    void skip() {
      while (idx_ < map_->slots_.size() && !map_->slots_[idx_].has_value()) {
        ++idx_;
      }
    }
    Map* map_;
    std::uint32_t idx_;
  };

  [[nodiscard]] Iterator<false> begin() { return {this, 0}; }
  [[nodiscard]] Iterator<false> end() {
    return {this, static_cast<std::uint32_t>(slots_.size())};
  }
  [[nodiscard]] Iterator<true> begin() const { return {this, 0}; }
  [[nodiscard]] Iterator<true> end() const {
    return {this, static_cast<std::uint32_t>(slots_.size())};
  }

 private:
  void grow_to(NodeId id) {
    if (id.value >= slots_.size()) slots_.resize(id.value + 1);
  }

  std::vector<std::optional<T>> slots_;
  std::size_t size_ = 0;
};

}  // namespace soc
