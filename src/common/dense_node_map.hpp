// DenseNodeMap<T>: per-node state keyed by NodeId, stored compactly.
//
// NodeIds are small and allocated sequentially (Topology::add_host hands
// out 0, 1, 2, …; churned-out nodes never reuse an id), so the per-node
// state every subsystem keeps — hosts, CAN members, index caches, gossip
// views — fits a flat array addressed through an id→slot remap.  That
// removes the hash-and-probe from every per-message lookup, which
// profiling after the PR-1 event-queue rewrite showed was the next cost
// on the hot path.
//
// Layout.  `slot_of_[id]` maps an id to its slot in `slots_`; `id_of_`
// is the inverse.  Slots are kept in ascending-id order at all times, so
// iteration is deterministic by construction and callers never
// collect-and-sort to stay seed-stable.  Erase empties the slot but
// leaves it in place (the id keeps mapping to the hole, so the
// park/restore paths that re-emplace an old id — INSCAN/KHDN partition
// rejoin — are O(1) and order-preserving).
//
// Compaction, not id reuse.  Ids never recycle within a run: reusing an
// id would alias RNG fork streams and message targets, breaking same-seed
// bit-identity.  Instead, holes are reclaimed by maybe_compact(), which
// rebuilds `slots_` densely when the span exceeds k·size() (default
// k = 4).  Compaction only moves storage: the surviving ids, their
// values, and their ascending iteration order are untouched, so goldens
// and RNG draw order cannot move.  Without it, a long heavy-churn run
// walks O(max id) per iteration pass and keeps one vacant slot per
// departed node (quantified by dense_node_map_stress_test: ~196 slots
// scanned per live element after 100k churn events over 512 live).
// Callers that erase on departure call maybe_compact() at their own safe
// points — after all outstanding references are dead.
//
// Compared to std::unordered_map<NodeId, T>:
//   * find/at/contains are two array loads and a flag test;
//   * iteration is ascending-id and, after compaction, O(live);
//   * UNLIKE unordered_map, references are NOT stable: emplace/operator[]
//     may grow the backing vectors, and compact()/maybe_compact() moves
//     every stored value.  Do not hold a T&/T* across a call that can
//     admit a node or compact the map.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/types.hpp"

namespace soc {

template <typename T>
class DenseNodeMap {
 public:
  /// Default compaction trigger: compact when span > k·size.
  static constexpr std::size_t kCompactFactor = 4;
  /// Spans below this never compact — the O(span) walk is already cheap.
  static constexpr std::size_t kCompactMinSpan = 64;

  /// Insert a value for `id` (which must not be present).  Returns the
  /// stored value.
  T& emplace(NodeId id, T value) {
    const std::uint32_t s = insert_slot(id);
    slots_[s].emplace(std::move(value));
    ++size_;
    return *slots_[s];
  }

  /// Find-or-default-construct, mirroring std::unordered_map::operator[].
  T& operator[](NodeId id) {
    SOC_DCHECK(id.valid());
    if (T* p = find(id)) return *p;
    const std::uint32_t s = insert_slot(id);
    slots_[s].emplace();
    ++size_;
    return *slots_[s];
  }

  [[nodiscard]] T* find(NodeId id) {
    if (!id.valid() || id.value >= slot_of_.size()) return nullptr;
    const std::uint32_t s = slot_of_[id.value];
    if (s == kNoSlot || !slots_[s].has_value()) return nullptr;
    return &*slots_[s];
  }
  [[nodiscard]] const T* find(NodeId id) const {
    return const_cast<DenseNodeMap*>(this)->find(id);
  }

  [[nodiscard]] bool contains(NodeId id) const { return find(id) != nullptr; }

  T& at(NodeId id) {
    T* p = find(id);
    SOC_CHECK_MSG(p != nullptr, "unknown node id");
    return *p;
  }
  const T& at(NodeId id) const {
    const T* p = find(id);
    SOC_CHECK_MSG(p != nullptr, "unknown node id");
    return *p;
  }

  /// Remove `id`'s value.  Returns whether it was present.  The slot
  /// becomes a hole (reclaimed by the next compaction); the id keeps
  /// mapping to it so a later re-emplace of the same id is O(1).
  bool erase(NodeId id) {
    if (!id.valid() || id.value >= slot_of_.size()) return false;
    const std::uint32_t s = slot_of_[id.value];
    if (s == kNoSlot || !slots_[s].has_value()) return false;
    slots_[s].reset();
    --size_;
    return true;
  }

  void clear() {
    slot_of_.clear();
    slots_.clear();
    id_of_.clear();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Backing-array length (live slots + holes): what iteration actually
  /// walks.  slot_span() - size() is the vacant-slot count; compaction
  /// drives it back to zero.
  [[nodiscard]] std::size_t slot_span() const { return slots_.size(); }

  /// slot_span() / size(): 1.0 when dense, grows with un-reclaimed
  /// churn holes.  Reported into the BENCH schema as slot_span_ratio.
  [[nodiscard]] double span_ratio() const {
    if (size_ == 0) return 1.0;
    return static_cast<double>(slots_.size()) / static_cast<double>(size_);
  }

  /// Bytes claimed by the map's own backing vectors.  Excludes heap
  /// memory owned by stored T values — attribution-profiler callers walk
  /// the values themselves when T owns heap state.
  [[nodiscard]] std::size_t mem_bytes() const {
    return slot_of_.capacity() * sizeof(std::uint32_t) +
           id_of_.capacity() * sizeof(std::uint32_t) +
           slots_.capacity() * sizeof(std::optional<T>);
  }

  /// Rebuild `slots_` densely when span > factor·size (and the span is
  /// worth the rebuild).  Pure storage motion: ids, values, and ascending
  /// iteration order are preserved; no RNG draws, no events.  Returns
  /// whether a compaction ran.  Invalidates every outstanding T&/T*.
  bool maybe_compact(std::size_t factor = kCompactFactor) {
    if (slots_.size() < kCompactMinSpan) return false;
    if (slots_.size() <= factor * size_) return false;
    compact();
    return true;
  }

  /// Unconditional dense rebuild (testing / explicit shrink).
  void compact() {
    std::vector<std::optional<T>> dense;
    std::vector<std::uint32_t> dense_ids;
    dense.reserve(size_);
    dense_ids.reserve(size_);
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (!slots_[s].has_value()) {
        slot_of_[id_of_[s]] = kNoSlot;  // hole: drop the retained mapping
        continue;
      }
      slot_of_[id_of_[s]] = static_cast<std::uint32_t>(dense.size());
      dense_ids.push_back(id_of_[s]);
      dense.push_back(std::move(slots_[s]));
    }
    slots_ = std::move(dense);
    id_of_ = std::move(dense_ids);
  }

  /// Iteration in ascending id order; *it is a {NodeId, T&} pair.
  template <bool Const>
  class Iterator {
   public:
    using Map = std::conditional_t<Const, const DenseNodeMap, DenseNodeMap>;
    using Ref = std::conditional_t<Const, const T&, T&>;

    Iterator(Map* map, std::uint32_t idx) : map_(map), idx_(idx) { skip(); }

    std::pair<NodeId, Ref> operator*() const {
      return {NodeId(map_->id_of_[idx_]), *map_->slots_[idx_]};
    }
    Iterator& operator++() {
      ++idx_;
      skip();
      return *this;
    }
    bool operator==(const Iterator& o) const { return idx_ == o.idx_; }

   private:
    void skip() {
      while (idx_ < map_->slots_.size() && !map_->slots_[idx_].has_value()) {
        ++idx_;
      }
    }
    Map* map_;
    std::uint32_t idx_;
  };

  [[nodiscard]] Iterator<false> begin() { return {this, 0}; }
  [[nodiscard]] Iterator<false> end() {
    return {this, static_cast<std::uint32_t>(slots_.size())};
  }
  [[nodiscard]] Iterator<true> begin() const { return {this, 0}; }
  [[nodiscard]] Iterator<true> end() const {
    return {this, static_cast<std::uint32_t>(slots_.size())};
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Reserve the slot a new value for `id` will occupy, keeping `slots_`
  /// in ascending-id order.  Three cases, by frequency:
  ///   1. the id still maps to its erased hole → reuse it in place (O(1);
  ///      the park/restore re-emplace path);
  ///   2. the id is larger than anything stored → append (O(1); the
  ///      sequential-allocation common case);
  ///   3. the id's hole was compacted away and smaller ids arrived since
  ///      → sorted middle insert with slot_of_ fixup (O(span); only
  ///      reachable by a restore that straddles a compaction — rare by
  ///      construction).
  std::uint32_t insert_slot(NodeId id) {
    SOC_DCHECK(id.valid());
    SOC_CHECK_MSG(!contains(id), "duplicate node id");
    if (id.value >= slot_of_.size()) slot_of_.resize(id.value + 1, kNoSlot);
    std::uint32_t s = slot_of_[id.value];
    if (s != kNoSlot) return s;  // case 1: retained hole, order unchanged
    if (id_of_.empty() || id.value > id_of_.back()) {  // case 2: append
      s = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
      id_of_.push_back(id.value);
    } else {  // case 3: middle insert
      const auto it =
          std::lower_bound(id_of_.begin(), id_of_.end(), id.value);
      s = static_cast<std::uint32_t>(it - id_of_.begin());
      id_of_.insert(it, id.value);
      slots_.insert(slots_.begin() + s, std::optional<T>());
      for (std::size_t j = s + 1; j < id_of_.size(); ++j) {
        slot_of_[id_of_[j]] = static_cast<std::uint32_t>(j);
      }
    }
    slot_of_[id.value] = s;
    return s;
  }

  std::vector<std::uint32_t> slot_of_;       // id → slot (kNoSlot: absent)
  std::vector<std::optional<T>> slots_;      // ascending-id values + holes
  std::vector<std::uint32_t> id_of_;         // slot → id (holes keep theirs)
  std::size_t size_ = 0;
};

}  // namespace soc
