// StableSlab<T>: slab allocator with address-stable slots.
//
// The common Slab<T> (slab.hpp) backs its slots with one std::vector, so
// growth relocates every live object.  That is fine for value-ish state,
// but fatal for objects whose scheduled closures capture `this` — the
// PsmScheduler registers completion events against its own address, so
// the cold half of the SoA host split needs storage that never moves.
//
// StableSlab allocates fixed-size chunks that are never reallocated or
// freed until destruction; a slot's address is stable for the slab's
// lifetime.  Slots are constructed in place on alloc() and destroyed on
// release(); released slots go to a LIFO free list (deterministic reuse
// order).  Not iterable — callers keep their own slot index (the SoA
// tables do), which is the point: hot paths touch the flat arrays, and
// only cold accesses chase into the slab.
#pragma once

#include <bitset>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/assert.hpp"

namespace soc {

template <typename T, std::size_t kChunkSize = 256>
class StableSlab {
 public:
  static constexpr std::uint32_t kNull = 0xffffffffu;

  StableSlab() = default;
  StableSlab(const StableSlab&) = delete;
  StableSlab& operator=(const StableSlab&) = delete;

  ~StableSlab() {
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      for (std::size_t i = 0; i < kChunkSize; ++i) {
        if (chunks_[c]->occupied[i]) chunks_[c]->slot(i)->~T();
      }
    }
  }

  /// Construct a T in place; returns its slot index (stable forever).
  template <typename... Args>
  std::uint32_t alloc(Args&&... args) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(chunks_.size() * kChunkSize - spare_);
      if (spare_ == 0) {
        chunks_.push_back(std::make_unique<Chunk>());
        spare_ = kChunkSize;
      }
      --spare_;
    }
    Chunk& c = *chunks_[slot / kChunkSize];
    SOC_DCHECK(!c.occupied[slot % kChunkSize]);
    ::new (c.slot(slot % kChunkSize)) T(std::forward<Args>(args)...);
    c.occupied[slot % kChunkSize] = true;
    ++live_;
    return slot;
  }

  /// Destroy the object in `slot` and recycle the slot.
  void release(std::uint32_t slot) {
    Chunk& c = chunk_of(slot);
    SOC_DCHECK(c.occupied[slot % kChunkSize]);
    c.slot(slot % kChunkSize)->~T();
    c.occupied[slot % kChunkSize] = false;
    free_.push_back(slot);
    --live_;
  }

  [[nodiscard]] T& operator[](std::uint32_t slot) {
    Chunk& c = chunk_of(slot);
    SOC_DCHECK(c.occupied[slot % kChunkSize]);
    return *c.slot(slot % kChunkSize);
  }
  [[nodiscard]] const T& operator[](std::uint32_t slot) const {
    return (*const_cast<StableSlab*>(this))[slot];
  }

  /// Currently constructed objects.
  [[nodiscard]] std::size_t live() const { return live_; }
  /// Allocated slot capacity (memory held, live or not).
  [[nodiscard]] std::size_t capacity_slots() const {
    return chunks_.size() * kChunkSize;
  }

 private:
  struct Chunk {
    alignas(T) unsigned char bytes[sizeof(T) * kChunkSize];
    std::bitset<kChunkSize> occupied;
    [[nodiscard]] T* slot(std::size_t i) {
      return std::launder(reinterpret_cast<T*>(bytes + i * sizeof(T)));
    }
  };

  [[nodiscard]] Chunk& chunk_of(std::uint32_t slot) {
    SOC_DCHECK(slot / kChunkSize < chunks_.size());
    return *chunks_[slot / kChunkSize];
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::uint32_t> free_;  // LIFO: deterministic reuse order
  std::size_t spare_ = 0;            // unused tail slots in the last chunk
  std::size_t live_ = 0;
};

}  // namespace soc
