// Small-buffer, move-only callable — the simulator hot path's replacement
// for std::function.
//
// Every scheduled event and every in-flight message carries a callback.
// std::function heap-allocates once per capturing closure, which at paper
// scale (millions of events per run) dominates the engine's cost.  InlineFn
// stores callables up to kInlineSize bytes directly in the object (and thus
// directly in the EventQueue slab), falling back to one heap allocation only
// for oversized captures.  Hot-path closures are written to fit: capture a
// shared_ptr to per-operation state rather than the state itself.
//
// Move-only by design: closures own their captures exactly once, and the
// event queue never needs to copy them.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "src/common/assert.hpp"

namespace soc {

template <typename Sig, std::size_t InlineSize = 48>
class InlineFn;

template <typename R, typename... Args, std::size_t InlineSize>
class InlineFn<R(Args...), InlineSize> {
 public:
  static constexpr std::size_t kInlineSize = InlineSize;

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFn(InlineFn&& o) noexcept {
    if (o.ops_ != nullptr) {
      o.ops_->relocate(buf_, o.buf_);
      ops_ = std::exchange(o.ops_, nullptr);
    }
  }

  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      if (o.ops_ != nullptr) {
        o.ops_->relocate(buf_, o.buf_);
        ops_ = std::exchange(o.ops_, nullptr);
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    SOC_DCHECK(ops_ != nullptr);
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void* self, Args&&... args);
    /// Move-construct into raw dst, then destroy src (slab relocation).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static R invoke_inline(void* self, Args&&... args) {
    return (*static_cast<D*>(self))(std::forward<Args>(args)...);
  }
  template <typename D>
  static void relocate_inline(void* dst, void* src) noexcept {
    ::new (dst) D(std::move(*static_cast<D*>(src)));
    static_cast<D*>(src)->~D();
  }
  template <typename D>
  static void destroy_inline(void* self) noexcept {
    static_cast<D*>(self)->~D();
  }

  template <typename D>
  static R invoke_heap(void* self, Args&&... args) {
    return (**static_cast<D**>(self))(std::forward<Args>(args)...);
  }
  template <typename D>
  static void relocate_heap(void* dst, void* src) noexcept {
    ::new (dst) D*(*static_cast<D**>(src));
  }
  template <typename D>
  static void destroy_heap(void* self) noexcept {
    delete *static_cast<D**>(self);
  }

  template <typename D>
  static constexpr Ops kInlineOps{&invoke_inline<D>, &relocate_inline<D>,
                                  &destroy_inline<D>};
  template <typename D>
  static constexpr Ops kHeapOps{&invoke_heap<D>, &relocate_heap<D>,
                                &destroy_heap<D>};

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace soc
