// Fundamental identifier and time types shared by every subsystem.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace soc {

/// Simulated time in microseconds.  64-bit integer time keeps the
/// event-driven engine exactly deterministic across platforms (no FP drift).
using SimTime = std::int64_t;

inline constexpr SimTime kSimTimeNever = std::numeric_limits<SimTime>::max();

/// Convert seconds (double) to SimTime microseconds.
constexpr SimTime seconds(double s) { return static_cast<SimTime>(s * 1e6); }
/// Convert SimTime back to seconds.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) * 1e-6; }
/// Convert milliseconds to SimTime.
constexpr SimTime millis(double ms) { return static_cast<SimTime>(ms * 1e3); }
/// Convert SimTime to hours (used by the hourly metric series).
constexpr double to_hours(SimTime t) { return to_seconds(t) / 3600.0; }

/// Logical identifier of a host machine in the Self-Organizing Cloud.
/// Stable for the lifetime of one simulated node incarnation; a node that
/// churns out and rejoins receives a fresh id.
struct NodeId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  constexpr auto operator<=>(const NodeId&) const = default;
};

/// Identifier of a task: origin node + per-origin sequence number.
struct TaskId {
  NodeId origin;
  std::uint32_t seq = 0;

  constexpr auto operator<=>(const TaskId&) const = default;
};

}  // namespace soc

template <>
struct std::hash<soc::NodeId> {
  std::size_t operator()(const soc::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<soc::TaskId> {
  std::size_t operator()(const soc::TaskId& id) const noexcept {
    const std::uint64_t mix =
        (static_cast<std::uint64_t>(id.origin.value) << 32) | id.seq;
    return std::hash<std::uint64_t>{}(mix);
  }
};
