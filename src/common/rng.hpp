// Deterministic random number generation.
//
// Every experiment owns a single root seed; all stochastic components fork
// named sub-streams from it (`rng.fork("churn")`), so adding a new consumer
// of randomness never perturbs the draws seen by existing components.  The
// generator is xoshiro256++ (Blackman & Vigna), seeded via SplitMix64, both
// reimplemented here so results are identical on every platform (libstdc++'s
// distributions are not portable, so we provide our own).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/assert.hpp"

namespace soc {

/// SplitMix64: used for seeding and for hashing stream names.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ PRNG with portable, reproducible output.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Fork an independent stream whose seed depends on this stream's seed and
  /// the given name (order-insensitive w.r.t. other forks).
  [[nodiscard]] Rng fork(std::string_view name) const;
  /// Fork an independent stream keyed by an integer (e.g. a node id).
  [[nodiscard]] Rng fork(std::uint64_t key) const;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli draw.
  bool chance(double p);
  /// Exponential with the given mean (inter-arrival times of the Poisson
  /// task generation process use mean 3000 s).
  double exponential(double mean);
  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean, double stddev);

  /// Pick a uniformly random element index from a non-empty container size.
  std::size_t pick_index(std::size_t size);

  /// Pick and return a copy of a random element.
  template <typename Container>
  auto pick(const Container& c) -> typename Container::value_type {
    SOC_CHECK(!c.empty());
    auto it = c.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(pick_index(c.size())));
    return *it;
  }

  /// Fisher–Yates shuffle (std::shuffle is not portable across libs).
  template <typename RandomIt>
  void shuffle(RandomIt first, RandomIt last) {
    const auto n = last - first;
    for (auto i = n - 1; i > 0; --i) {
      const auto j = static_cast<decltype(i)>(
          uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(first[i], first[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k may exceed n; then all n are
  /// returned).  Order is random.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
};

}  // namespace soc
