#include "src/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"

namespace soc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double jain_fairness(std::span<const double> values) {
  double sum = 0.0, sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  return jain_from_moments(values.size(), sum, sum_sq);
}

double jain_from_moments(std::size_t n, double sum, double sum_sq) {
  if (n == 0) return 1.0;
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

double percentile(std::vector<double> values, double p) {
  SOC_CHECK(!values.empty());
  SOC_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

double student_t95(std::size_t dof) {
  // Two-sided 95% critical values, dof 1..30; the normal limit beyond.
  static constexpr double kTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof <= 30) return kTable[dof - 1];
  return 1.960;
}

double mean_ci95_halfwidth(std::size_t n, double stddev) {
  if (n < 2) return 0.0;
  return student_t95(n - 1) * stddev / std::sqrt(static_cast<double>(n));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  SOC_CHECK(hi > lo);
  SOC_CHECK(bins > 0);
}

void Histogram::add(double x) {
  // Clamp in floating point *before* any integer cast: casting a NaN,
  // infinity, or out-of-range double to an integer type is UB, so the old
  // cast-then-clamp order was undefined for exactly the values the clamp
  // existed to handle.
  if (std::isnan(x)) {
    ++nan_;  // no bucket can honestly hold it; see header for the policy
    return;
  }
  const double offset = (x - lo_) / width_;
  std::size_t bucket;
  if (!(offset > 0.0)) {
    bucket = 0;  // below lo, including -inf
  } else if (offset >= static_cast<double>(counts_.size())) {
    bucket = counts_.size() - 1;  // at/above hi, including +inf
  } else {
    bucket = static_cast<std::size_t>(offset);  // in range: cast is defined
  }
  ++counts_[bucket];
  ++total_;
}

std::size_t Histogram::count(std::size_t bucket) const {
  SOC_CHECK(bucket < counts_.size());
  return counts_[bucket];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + width_;
}

}  // namespace soc
