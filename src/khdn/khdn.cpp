#include "src/khdn/khdn.hpp"

namespace soc::khdn {

KhdnSystem::KhdnSystem(sim::Simulator& sim, net::MessageBus& bus,
                       can::CanSpace& space, KhdnConfig config, Rng rng)
    : sim_(sim), bus_(bus), space_(space), config_(config), rng_(rng) {}

void KhdnSystem::attach_to_space() {
  can::CanSpace::Listener listener;
  listener.on_rehome = [this](NodeId from, NodeId to) {
    if (!caches_.contains(from)) return;
    std::vector<index::Record> moved;
    if (space_.contains(from) && space_.contains(to)) {
      moved = cache(from).extract_in_zone(space_.zone_of(to), sim_.now());
    } else {
      moved = cache(from).extract_all();
    }
    index::RecordStore& dst = cache(to);
    for (const auto& r : moved) dst.put(r);
  };
  space_.set_listener(std::move(listener));
}

index::RecordStore& KhdnSystem::cache(NodeId id) { return caches_[id]; }

void KhdnSystem::add_node(NodeId id) {
  SOC_CHECK(space_.contains(id));
  caches_[id];  // materialize
  start_periodic(id);
}

void KhdnSystem::start_periodic(NodeId id) {
  sim_.schedule_periodic(
      config_.state_update_period,
      [this, id] {
        if (!caches_.contains(id) || !space_.contains(id)) return false;
        publish_now(id);
        return true;
      },
      static_cast<SimTime>(
          rng_.fork(id.value).uniform_int(1, config_.state_update_period)),
      config_.periodic_jitter);
}

void KhdnSystem::remove_node(NodeId id) {
  caches_.erase(id);
  caches_.maybe_compact();  // teardown safe point: no cache refs outstanding
}

index::RecordStore KhdnSystem::park_node(NodeId id) {
  SOC_CHECK(caches_.contains(id));
  // The moved-from cache stays in place (empty) until the departure
  // teardown erases it, so nothing re-homes to the takeover node.
  return std::move(caches_.at(id));
}

void KhdnSystem::restore_node(NodeId id, index::RecordStore store) {
  SOC_CHECK(space_.contains(id));
  store.prune(sim_.now());
  std::vector<index::Record> keep =
      store.extract_in_zone(space_.zone_of(id), sim_.now());
  std::vector<index::Record> reroute = store.extract_all();
  for (const auto& r : keep) store.put(r);
  // The CanSpace join that preceded this restore split a zone, and the
  // rehome listener materialized a fresh cache to receive the split
  // zone's records — fold those in (in-zone by construction).
  if (index::RecordStore* fresh = caches_.find(id)) {
    for (const auto& r : fresh->extract_all()) store.put(r);
    caches_.erase(id);
  }
  caches_.emplace(id, std::move(store));
  for (const auto& r : reroute) {
    can::route_greedy(space_, bus_, id, r.location,
                      net::MsgType::kStateUpdate, config_.state_msg_bytes,
                      config_.route_ttl, [this, r](NodeId duty) {
                        if (!caches_.contains(duty)) return;
                        cache(duty).put(r);
                      });
  }
  start_periodic(id);
}

std::vector<NodeId> KhdnSystem::tracked_ids() const {
  std::vector<NodeId> out;
  out.reserve(caches_.size());
  for (const auto& [id, store] : caches_) out.push_back(id);
  return out;
}

std::string KhdnSystem::check_membership_consistency() const {
  for (const auto& [id, store] : caches_) {
    if (!space_.contains(id)) {
      return "duty cache for non-member " + std::to_string(id.value);
    }
  }
  for (const NodeId id : space_.member_ids()) {
    if (!caches_.contains(id)) {
      return "member " + std::to_string(id.value) + " has no duty cache";
    }
  }
  return {};
}

void KhdnSystem::publish_now(NodeId id) {
  if (!provider_) return;
  auto record = provider_(id);
  if (!record.has_value()) return;
  // Stamp freshness here so providers need not know the TTL policy.
  record->published_at = sim_.now();
  record->expires_at = sim_.now() + config_.record_ttl;
  can::route_greedy(space_, bus_, id, record->location,
                    net::MsgType::kStateUpdate, config_.state_msg_bytes,
                    config_.route_ttl, [this, r = *record](NodeId duty) {
                      if (!caches_.contains(duty)) return;
                      cache(duty).put(r);
                      spread(duty, r, config_.k_hops);
                    });
}

void KhdnSystem::spread(NodeId at, const index::Record& record,
                        std::size_t hops_left) {
  if (hops_left == 0 || !space_.contains(at)) return;
  // One copy to each negative adjacent neighbor per dimension; every copy
  // keeps spreading with one hop fewer (a bounded negative-orthant flood).
  for (std::size_t d = 0; d < space_.dims(); ++d) {
    space_.directional_neighbors(at, d, can::Direction::kNegative,
                                 dir_scratch_);
    if (dir_scratch_.empty()) continue;
    const NodeId target = dir_scratch_[rng_.pick_index(dir_scratch_.size())];
    bus_.send(at, target, net::MsgType::kKhdnSpread, config_.state_msg_bytes,
              [this, target, record, hops_left] {
                if (!caches_.contains(target)) return;
                cache(target).put(record);
                spread(target, record, hops_left - 1);
              });
  }
}

void KhdnSystem::finish(std::uint64_t qid) {
  const auto it = pending_.find(qid);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  pending_.erase(it);
  sim_.cancel(p.timeout);
  if (p.cb) p.cb(std::move(p.results));
}

void KhdnSystem::query(NodeId requester, const ResourceVector& demand,
                       const can::Point& target, std::size_t want,
                       Callback cb) {
  const std::uint64_t qid = next_qid_++;
  Pending p;
  p.requester = requester;
  p.demand = demand;
  p.want = want;
  p.cb = std::move(cb);
  p.timeout = sim_.schedule_after(config_.query_timeout,
                                  [this, qid] { finish(qid); });
  pending_.emplace(qid, std::move(p));

  can::route_greedy(space_, bus_, requester, target, net::MsgType::kDutyQuery,
                    config_.query_msg_bytes, config_.route_ttl,
                    [this, qid](NodeId duty) {
                      const auto it = pending_.find(qid);
                      if (it == pending_.end()) return;
                      it->second.visited.insert(duty);
                      it->second.outstanding = 1;
                      scan_visit(qid, duty, config_.k_hops);
                    });
}

void KhdnSystem::scan_visit(std::uint64_t qid, NodeId at,
                            std::size_t hops_left) {
  const auto it = pending_.find(qid);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  SOC_CHECK(p.outstanding > 0);
  --p.outstanding;

  if (caches_.contains(at)) {
    // Harvest local qualified records (reused scratch, ascending provider
    // order); one notice message back covers the traffic of returning them.
    std::vector<index::Record>& qualified = record_scratch_;
    cache(at).qualified_into(p.demand, sim_.now(), qualified);
    std::size_t fresh = 0;
    for (const auto& r : qualified) {
      if (p.results.size() >= p.want) break;
      if (!p.seen_providers.insert(r.provider).second) continue;
      p.results.push_back(KhdnCandidate{r.provider, r.availability});
      ++fresh;
    }
    if (fresh > 0) {
      bus_.send(at, p.requester, net::MsgType::kFoundNotice,
                config_.notice_msg_bytes, [] {});
    }
    if (p.results.size() >= p.want) {
      finish(qid);
      return;
    }
    // Expand to *sampled* positive neighbors within the K-hop radius: one
    // random neighbor per dimension per hop, mirroring the sampled K-hop
    // spread (the paper scans "K-hop sampled positive neighbors", not the
    // full K-hop ball).
    if (hops_left > 0 && space_.contains(at)) {
      for (std::size_t d = 0; d < space_.dims(); ++d) {
        space_.directional_neighbors(at, d, can::Direction::kPositive,
                                     dir_scratch_);
        if (dir_scratch_.empty()) continue;
        const NodeId n = dir_scratch_[rng_.pick_index(dir_scratch_.size())];
        if (!p.visited.insert(n).second) continue;
        ++p.outstanding;
        bus_.send(at, n, net::MsgType::kDutyQuery, config_.query_msg_bytes,
                  [this, qid, n, hops_left] {
                    scan_visit(qid, n, hops_left - 1);
                  });
      }
    }
  }
  if (p.outstanding == 0) finish(qid);
}

}  // namespace soc::khdn
