// KHDN-CAN baseline (§IV.A): K-Hop DHT-Neighbor range query over CAN.
// When a state message reaches its duty node, the duty node further spreads
// copies to its negative CAN neighbors within K hops; a query routes to the
// duty node of the demand vector and scans that node plus its K-hop
// positive neighborhood for qualified records.  The paper positions this as
// RT-CAN tailored to the SOC environment.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/can/router.hpp"
#include "src/can/space.hpp"
#include "src/common/dense_node_map.hpp"
#include "src/common/stats.hpp"
#include "src/index/record.hpp"
#include "src/net/message_bus.hpp"
#include "src/sim/simulator.hpp"

namespace soc::khdn {

struct KhdnConfig {
  std::size_t k_hops = 2;             ///< spreading/scan radius K
  SimTime record_ttl = seconds(600);
  SimTime state_update_period = seconds(400);
  SimTime query_timeout = seconds(90);
  std::size_t route_ttl = 512;
  std::size_t state_msg_bytes = 200;
  std::size_t query_msg_bytes = 128;
  std::size_t notice_msg_bytes = 160;
  double periodic_jitter = 0.1;
};

struct KhdnCandidate {
  NodeId provider;
  ResourceVector availability;
};

class KhdnSystem {
 public:
  using AvailabilityProvider =
      std::function<std::optional<index::Record>(NodeId)>;
  using Callback = std::function<void(std::vector<KhdnCandidate>)>;

  KhdnSystem(sim::Simulator& sim, net::MessageBus& bus, can::CanSpace& space,
             KhdnConfig config, Rng rng);

  void set_availability_provider(AvailabilityProvider p) {
    provider_ = std::move(p);
  }

  /// Hook record re-homing into the CanSpace listener.
  void attach_to_space();

  void add_node(NodeId id);
  void remove_node(NodeId id);
  [[nodiscard]] bool tracks(NodeId id) const { return caches_.contains(id); }
  /// Storage density of the duty-cache map (slot_span/size).
  [[nodiscard]] double span_ratio() const { return caches_.span_ratio(); }

  /// Bytes claimed by the duty caches (the dense map plus every
  /// RecordStore's arrays; attribution-profiler hook).
  [[nodiscard]] std::size_t mem_bytes() const {
    std::size_t b = caches_.mem_bytes();
    for (const auto& [id, cache] : caches_) {
      (void)id;
      b += cache.mem_bytes();
    }
    return b;
  }

  /// Extract `id`'s duty cache ahead of a partition teardown (the caller
  /// runs the normal departure path next, which then re-homes nothing).
  [[nodiscard]] index::RecordStore park_node(NodeId id);
  /// Re-enter `id` (already re-joined to the CanSpace) with its parked
  /// stale cache: expired records are pruned, records outside the new zone
  /// are re-routed to their current duty nodes as plain state updates (no
  /// K-hop re-spread — reconciliation is unicast), and the periodic
  /// publisher restarts.
  void restore_node(NodeId id, index::RecordStore cache);

  /// Note: materializes an empty cache for an untracked id (join path);
  /// oracles must stick to tracked_ids().
  [[nodiscard]] index::RecordStore& cache(NodeId id);

  /// Ids with a materialized duty cache, ascending (fuzz/diagnostics).
  [[nodiscard]] std::vector<NodeId> tracked_ids() const;

  /// Membership-consistency oracle (sim_fuzz): duty caches exist exactly
  /// for the CAN member set.  Empty string when consistent.
  [[nodiscard]] std::string check_membership_consistency() const;

  /// Publish `id`'s availability now (also periodic): route to the duty
  /// node, then K-hop negative spread.
  void publish_now(NodeId id);

  /// Query: route to the duty node of `target`, scan it and its K-hop
  /// positive neighborhood.
  void query(NodeId requester, const ResourceVector& demand,
             const can::Point& target, std::size_t want, Callback cb);

 private:
  struct Pending {
    NodeId requester;
    ResourceVector demand;
    std::size_t want;
    std::vector<KhdnCandidate> results;
    std::unordered_set<NodeId> seen_providers;
    std::unordered_set<NodeId> visited;
    std::size_t outstanding = 0;
    sim::EventHandle timeout;
    Callback cb;
  };

  void start_periodic(NodeId id);
  void spread(NodeId at, const index::Record& record, std::size_t hops_left);
  void scan_visit(std::uint64_t qid, NodeId at, std::size_t hops_left);
  void finish(std::uint64_t qid);

  sim::Simulator& sim_;
  net::MessageBus& bus_;
  can::CanSpace& space_;
  KhdnConfig config_;
  Rng rng_;
  AvailabilityProvider provider_;
  DenseNodeMap<index::RecordStore> caches_;  ///< dense by NodeId
  /// Scratch for allocation-free directional-neighbor filtering.
  std::vector<NodeId> dir_scratch_;
  /// Scratch for allocation-free qualified-record harvests.
  std::vector<index::Record> record_scratch_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_qid_ = 1;
};

}  // namespace soc::khdn
