#include "src/gossip/aggregation.hpp"

namespace soc::gossip {

MaxAggregator::MaxAggregator(sim::Simulator& sim, net::MessageBus& bus,
                             AggregationConfig config, Rng rng)
    : sim_(sim), bus_(bus), config_(config), rng_(rng) {
  SOC_CHECK(config_.exchange_period > 0);
  SOC_CHECK(config_.epoch_length >= config_.exchange_period);
}

std::uint64_t MaxAggregator::current_epoch() const {
  return static_cast<std::uint64_t>(sim_.now() / config_.epoch_length);
}

void MaxAggregator::refresh_epoch(NodeState& st) {
  const std::uint64_t epoch = current_epoch();
  if (st.epoch != epoch) {
    st.epoch = epoch;
    st.estimate = st.local;
  }
}

void MaxAggregator::add_node(NodeId id, const ResourceVector& local_value) {
  SOC_CHECK(!state_.contains(id));
  state_.emplace(id, NodeState{local_value, local_value, current_epoch()});
  sim_.schedule_periodic(
      config_.exchange_period,
      [this, id] {
        if (!state_.contains(id)) return false;
        exchange_now(id);
        return true;
      },
      static_cast<SimTime>(
          rng_.fork(id.value).uniform_int(1, config_.exchange_period)),
      config_.periodic_jitter);
}

void MaxAggregator::remove_node(NodeId id) {
  state_.erase(id);
  state_.maybe_compact();  // teardown safe point: no state refs outstanding
}

void MaxAggregator::update_local(NodeId id, const ResourceVector& value) {
  auto& st = state_.at(id);
  refresh_epoch(st);
  st.local = value;
  st.estimate = st.estimate.cw_max(value);
}

const ResourceVector& MaxAggregator::estimate(NodeId id) const {
  const NodeState* st = state_.find(id);
  SOC_CHECK_MSG(st != nullptr, "unknown aggregator node");
  // Stale-epoch reads still return the previous epoch's converged value —
  // preferable to resetting on a const read path.
  return st->estimate;
}

void MaxAggregator::merge(NodeId at, const ResourceVector& incoming,
                          std::uint64_t epoch) {
  NodeState* found = state_.find(at);
  if (found == nullptr) return;
  NodeState& st = *found;
  refresh_epoch(st);
  if (epoch != st.epoch) return;  // cross-epoch messages are dropped
  st.estimate = st.estimate.cw_max(incoming);
}

void MaxAggregator::exchange_now(NodeId id) {
  NodeState* found = state_.find(id);
  if (found == nullptr || !sampler_) return;
  const auto peer = sampler_(id);
  if (!peer.has_value() || *peer == id) return;

  NodeState& st = *found;
  refresh_epoch(st);
  ++exchanges_;

  // Push-pull: send my estimate; the peer merges and answers with its own.
  const ResourceVector mine = st.estimate;
  const std::uint64_t epoch = st.epoch;
  bus_.send(id, *peer, net::MsgType::kGossip, config_.msg_bytes,
            [this, id, peer = *peer, mine, epoch] {
              NodeState* peer_state = state_.find(peer);
              if (peer_state == nullptr) return;
              refresh_epoch(*peer_state);
              const ResourceVector theirs = peer_state->estimate;
              const std::uint64_t peer_epoch = peer_state->epoch;
              merge(peer, mine, epoch);
              bus_.send(peer, id, net::MsgType::kGossip, config_.msg_bytes,
                        [this, id, theirs, peer_epoch] {
                          merge(id, theirs, peer_epoch);
                        });
            });
}

}  // namespace soc::gossip
