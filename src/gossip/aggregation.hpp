// Gossip-based aggregation (Jelasity, Montresor & Babaoglu, TOCS'05 — the
// paper's reference [23]): the SoS variant needs the global capacity
// ceiling c_max, "which can be statistically aggregated using cached
// information".  This implements epidemic max-aggregation with periodic
// epochs so the estimate also *forgets* departed maxima under churn.
//
// Each node keeps a componentwise-max estimate seeded from its local
// value; periodic push-pull exchanges with random peers spread the max in
// O(log n) rounds.  Epochs restart the computation on a fixed wall-clock
// grid: within a fresh epoch a node falls back to its local value, so a
// departed record-holder's contribution ages out after one epoch.
#pragma once

#include <functional>
#include <optional>

#include "src/common/dense_node_map.hpp"
#include "src/common/resource_vector.hpp"
#include "src/common/rng.hpp"
#include "src/net/message_bus.hpp"
#include "src/sim/simulator.hpp"

namespace soc::gossip {

struct AggregationConfig {
  SimTime exchange_period = seconds(60);
  SimTime epoch_length = seconds(1800);  ///< forget horizon under churn
  std::size_t msg_bytes = 96;
  double periodic_jitter = 0.1;
};

class MaxAggregator {
 public:
  /// Supplies a random gossip partner for a node (e.g. a random CAN
  /// neighbor, or a Newscast view member); nullopt when isolated.
  using PeerSampler = std::function<std::optional<NodeId>(NodeId)>;

  MaxAggregator(sim::Simulator& sim, net::MessageBus& bus,
                AggregationConfig config, Rng rng);

  void set_peer_sampler(PeerSampler sampler) {
    sampler_ = std::move(sampler);
  }

  /// Register a node with its local contribution (e.g. its capacity).
  void add_node(NodeId id, const ResourceVector& local_value);
  void remove_node(NodeId id);
  [[nodiscard]] bool tracks(NodeId id) const { return state_.contains(id); }
  /// Storage density of the aggregation-state map (slot_span/size).
  [[nodiscard]] double span_ratio() const { return state_.span_ratio(); }

  /// Bytes claimed by the aggregation state (flat NodeStates — the dense
  /// map accounts for everything; attribution-profiler hook).
  [[nodiscard]] std::size_t mem_bytes() const { return state_.mem_bytes(); }

  /// Update the node's own contribution (capacities are static in the
  /// paper's setting, but the API supports dynamic values).
  void update_local(NodeId id, const ResourceVector& value);

  /// Current componentwise-max estimate at this node.
  [[nodiscard]] const ResourceVector& estimate(NodeId id) const;

  /// One push-pull exchange with a random peer (also runs periodically).
  void exchange_now(NodeId id);

  [[nodiscard]] std::uint64_t exchanges() const { return exchanges_; }

 private:
  struct NodeState {
    ResourceVector local;
    ResourceVector estimate;
    std::uint64_t epoch = 0;
  };

  [[nodiscard]] std::uint64_t current_epoch() const;
  /// Roll a node into the current epoch (resetting its estimate) if stale.
  void refresh_epoch(NodeState& st);
  void merge(NodeId at, const ResourceVector& incoming, std::uint64_t epoch);

  sim::Simulator& sim_;
  net::MessageBus& bus_;
  AggregationConfig config_;
  Rng rng_;
  PeerSampler sampler_;
  DenseNodeMap<NodeState> state_;  ///< dense by NodeId
  std::uint64_t exchanges_ = 0;
};

}  // namespace soc::gossip
