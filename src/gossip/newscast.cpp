#include "src/gossip/newscast.hpp"

#include <algorithm>

#include "src/psm/task.hpp"

namespace soc::gossip {

NewscastSystem::NewscastSystem(sim::Simulator& sim, net::MessageBus& bus,
                               NewscastConfig config, Rng rng)
    : sim_(sim), bus_(bus), config_(config), rng_(rng) {
  SOC_CHECK(config_.view_size >= 1);
}

void NewscastSystem::add_node(NodeId id, const std::vector<NodeId>& bootstrap) {
  SOC_CHECK(!views_.contains(id));
  std::vector<ViewEntry>& view = views_[id];
  for (const NodeId b : bootstrap) {
    if (b == id || !views_.contains(b)) continue;
    view.push_back(ViewEntry{b, ResourceVector(psm::kDims), sim_.now()});
    if (view.size() >= config_.view_size) break;
  }
  start_periodic(id);
}

void NewscastSystem::start_periodic(NodeId id) {
  sim_.schedule_periodic(
      config_.gossip_period,
      [this, id] {
        if (!views_.contains(id)) return false;
        gossip_now(id);
        return true;
      },
      static_cast<SimTime>(
          rng_.fork(id.value).uniform_int(1, config_.gossip_period)),
      config_.periodic_jitter);
}

void NewscastSystem::remove_node(NodeId id) {
  views_.erase(id);
  views_.maybe_compact();  // teardown safe point: no view refs outstanding
}

std::vector<ViewEntry> NewscastSystem::park_node(NodeId id) {
  auto* view = views_.find(id);
  SOC_CHECK(view != nullptr);
  return std::move(*view);
}

void NewscastSystem::restore_node(NodeId id, std::vector<ViewEntry> view) {
  SOC_CHECK(!views_.contains(id));
  views_[id] = std::move(view);
  start_periodic(id);
}

const std::vector<ViewEntry>& NewscastSystem::view_of(NodeId id) const {
  const auto* view = views_.find(id);
  SOC_CHECK_MSG(view != nullptr, "unknown gossip node");
  return *view;
}

std::vector<ViewEntry> NewscastSystem::snapshot_with_self(NodeId id) {
  std::vector<ViewEntry> out = views_.at(id);
  if (provider_) {
    if (const auto avail = provider_(id); avail.has_value()) {
      out.push_back(ViewEntry{id, *avail, sim_.now()});
    }
  }
  return out;
}

void NewscastSystem::merge_view(NodeId owner,
                                const std::vector<ViewEntry>& incoming) {
  auto* view_ptr = views_.find(owner);
  if (view_ptr == nullptr) return;
  std::vector<ViewEntry>& view = *view_ptr;
  for (const ViewEntry& e : incoming) {
    if (e.id == owner) continue;
    const auto existing =
        std::find_if(view.begin(), view.end(),
                     [&](const ViewEntry& v) { return v.id == e.id; });
    if (existing == view.end()) {
      view.push_back(e);
    } else if (e.heard_at > existing->heard_at) {
      *existing = e;
    }
  }
  // Newest first; truncate to the fan-out bound.
  std::sort(view.begin(), view.end(),
            [](const ViewEntry& a, const ViewEntry& b) {
              if (a.heard_at != b.heard_at) return a.heard_at > b.heard_at;
              return a.id < b.id;
            });
  if (view.size() > config_.view_size) view.resize(config_.view_size);
}

void NewscastSystem::gossip_now(NodeId id) {
  const auto* view_ptr = views_.find(id);
  if (view_ptr == nullptr || view_ptr->empty()) return;
  const std::vector<ViewEntry>& view = *view_ptr;
  const NodeId peer = view[rng_.pick_index(view.size())].id;

  // Initiator → peer: my view plus my own fresh entry; the peer merges and
  // answers with its own pre-merge snapshot (the Newscast exchange).
  auto mine = snapshot_with_self(id);
  bus_.send(id, peer, net::MsgType::kGossip, config_.view_msg_bytes,
            [this, id, peer, mine = std::move(mine)] {
              if (!views_.contains(peer)) return;
              auto theirs = snapshot_with_self(peer);
              merge_view(peer, mine);
              bus_.send(peer, id, net::MsgType::kGossip,
                        config_.view_msg_bytes,
                        [this, id, theirs = std::move(theirs)] {
                          merge_view(id, theirs);
                        });
            });
}

void NewscastSystem::finish(std::uint64_t qid) {
  const auto it = pending_.find(qid);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  pending_.erase(it);
  sim_.cancel(p.timeout);
  if (p.results.size() >= p.want) {
    ++stats_.satisfied;
  } else if (p.results.empty()) {
    ++stats_.failed;
  }
  stats_.delay_seconds.add(to_seconds(sim_.now() - p.submitted_at));
  if (p.cb) p.cb(std::move(p.results));
}

void NewscastSystem::query(NodeId requester, const ResourceVector& demand,
                           std::size_t want, Callback cb) {
  const std::uint64_t qid = next_qid_++;
  Pending p;
  p.requester = requester;
  p.demand = demand;
  p.want = want;
  p.cb = std::move(cb);
  p.submitted_at = sim_.now();
  p.timeout = sim_.schedule_after(config_.query_timeout,
                                  [this, qid] { finish(qid); });
  pending_.emplace(qid, std::move(p));
  ++stats_.queries;
  query_hop(qid, requester, config_.query_forward_ttl);
}

void NewscastSystem::query_hop(std::uint64_t qid, NodeId at,
                               std::size_t ttl) {
  const auto pit = pending_.find(qid);
  if (pit == pending_.end()) return;
  Pending& p = pit->second;
  const auto* view = views_.find(at);
  if (view == nullptr) return;  // hop churned out; timeout closes

  // Scan the local partial view for fresh qualified entries.
  for (const ViewEntry& e : *view) {
    if ((sim_.now() - e.heard_at) >= config_.entry_ttl) continue;
    if (!e.availability.dominates(p.demand)) continue;
    if (!p.seen.insert(e.id).second) continue;
    p.results.push_back(GossipCandidate{e.id, e.availability});
  }
  if (p.results.size() >= p.want || ttl == 0) {
    if (at == p.requester || p.results.size() >= p.want) {
      finish(qid);
    } else {
      // Results live with the engine; a real deployment ships them back in
      // one message, which we account for here.
      bus_.send(at, p.requester, net::MsgType::kFoundNotice,
                config_.query_msg_bytes, [this, qid] { finish(qid); });
    }
    return;
  }
  if (view->empty()) {
    finish(qid);
    return;
  }
  const NodeId next = (*view)[rng_.pick_index(view->size())].id;
  bus_.send(at, next, net::MsgType::kDutyQuery, config_.query_msg_bytes,
            [this, qid, next, ttl] { query_hop(qid, next, ttl - 1); });
}

}  // namespace soc::gossip
