// Newscast gossip baseline (§IV.A): an unstructured P2P protocol where each
// node keeps a partial view bounded to ~log2(n) entries and periodically
// exchanges views with a random peer, merging by freshness.  Queries scan
// the local view and forward to random view members for a bounded number of
// hops.  The paper tunes the fan-out so its traffic matches PID-CAN's.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/dense_node_map.hpp"
#include "src/common/resource_vector.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/net/message_bus.hpp"
#include "src/sim/simulator.hpp"

namespace soc::gossip {

struct ViewEntry {
  NodeId id;
  ResourceVector availability;
  SimTime heard_at = 0;
};

struct NewscastConfig {
  std::size_t view_size = 11;          ///< ≈ log2(n); set per experiment
  /// Exchange cadence.  The paper equalizes the three §IV.A protocols'
  /// traffic; at PID-CAN's default maintenance rates that lands Newscast
  /// near one exchange per minute.
  SimTime gossip_period = seconds(60);
  SimTime entry_ttl = seconds(600);    ///< same freshness bound as records
  std::size_t query_forward_ttl = 6;   ///< random-forward hops per query
  SimTime query_timeout = seconds(90);
  std::size_t view_msg_bytes = 600;
  std::size_t query_msg_bytes = 128;
  double periodic_jitter = 0.1;
};

/// A discovered candidate (same shape as the structured protocols return).
struct GossipCandidate {
  NodeId provider;
  ResourceVector availability;
};

class NewscastSystem {
 public:
  using AvailabilityProvider =
      std::function<std::optional<ResourceVector>(NodeId)>;
  using Callback = std::function<void(std::vector<GossipCandidate>)>;

  NewscastSystem(sim::Simulator& sim, net::MessageBus& bus,
                 NewscastConfig config, Rng rng);

  void set_availability_provider(AvailabilityProvider p) {
    provider_ = std::move(p);
  }

  /// Join with a few bootstrap contacts seeding the view.
  void add_node(NodeId id, const std::vector<NodeId>& bootstrap);
  void remove_node(NodeId id);
  [[nodiscard]] bool tracks(NodeId id) const { return views_.contains(id); }
  /// Storage density of the view map (slot_span/size).
  [[nodiscard]] double span_ratio() const { return views_.span_ratio(); }

  /// Bytes claimed by the gossip views (the dense map plus every view's
  /// entry array; attribution-profiler hook).
  [[nodiscard]] std::size_t mem_bytes() const {
    std::size_t b = views_.mem_bytes();
    for (const auto& [id, view] : views_) {
      (void)id;
      b += view.capacity() * sizeof(ViewEntry);
    }
    return b;
  }

  /// Extract `id`'s view ahead of a partition teardown.
  [[nodiscard]] std::vector<ViewEntry> park_node(NodeId id);
  /// Re-enter `id` with its parked *stale* view: the entries it heard
  /// before the cut become its re-entry contacts, and the periodic gossip
  /// exchange (merge by freshness) reconciles from there.
  void restore_node(NodeId id, std::vector<ViewEntry> view);

  /// One proactive exchange round for `id` (also runs periodically).
  void gossip_now(NodeId id);

  /// Query: scan the local view, then forward along random view members.
  void query(NodeId requester, const ResourceVector& demand,
             std::size_t want, Callback cb);

  [[nodiscard]] const std::vector<ViewEntry>& view_of(NodeId id) const;
  [[nodiscard]] const NewscastConfig& config() const { return config_; }

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t satisfied = 0;
    std::uint64_t failed = 0;
    RunningStats delay_seconds;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    NodeId requester;
    ResourceVector demand;
    std::size_t want;
    std::vector<GossipCandidate> results;
    std::unordered_set<NodeId> seen;
    sim::EventHandle timeout;
    Callback cb;
    SimTime submitted_at;
  };

  /// Merge incoming entries into a view: freshest per node, newest first,
  /// truncated to view_size.
  void merge_view(NodeId owner, const std::vector<ViewEntry>& incoming);
  void start_periodic(NodeId id);
  std::vector<ViewEntry> snapshot_with_self(NodeId id);
  void finish(std::uint64_t qid);
  void query_hop(std::uint64_t qid, NodeId at, std::size_t ttl);

  sim::Simulator& sim_;
  net::MessageBus& bus_;
  NewscastConfig config_;
  Rng rng_;
  AvailabilityProvider provider_;
  DenseNodeMap<std::vector<ViewEntry>> views_;  ///< dense by NodeId
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_qid_ = 1;
  Stats stats_;
};

}  // namespace soc::gossip
