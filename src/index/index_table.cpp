#include "src/index/index_table.hpp"

#include <algorithm>

namespace soc::index {

IndexTable::IndexTable(std::size_t dims, std::size_t samples_per_level,
                       SimTime entry_ttl)
    : dims_(dims), samples_per_level_(samples_per_level), ttl_(entry_ttl),
      tracks_(dims * 2) {
  SOC_CHECK(dims > 0);
  SOC_CHECK(samples_per_level > 0);
}

std::size_t IndexTable::track_index(std::size_t dim,
                                    can::Direction dir) const {
  SOC_CHECK(dim < dims_);
  return dim * 2 + (dir == can::Direction::kPositive ? 1 : 0);
}

void IndexTable::store(std::size_t dim, can::Direction dir, std::size_t level,
                       NodeId id, SimTime now) {
  auto& track = tracks_[track_index(dim, dir)];
  // Refresh an existing identical entry in place.
  for (auto& e : track) {
    if (e.id == id && e.level == level) {
      e.refreshed_at = now;
      return;
    }
  }
  // Enforce the per-level sample cap by evicting the stalest same-level
  // entry when full.
  std::size_t level_count = 0;
  auto stalest = track.end();
  for (auto it = track.begin(); it != track.end(); ++it) {
    if (it->level != level) continue;
    ++level_count;
    if (stalest == track.end() || it->refreshed_at < stalest->refreshed_at) {
      stalest = it;
    }
  }
  if (level_count >= samples_per_level_ && stalest != track.end()) {
    track.erase(stalest);
  }
  track.push_back(Entry{id, level, now});
}

void IndexTable::clear_track(std::size_t dim, can::Direction dir) {
  tracks_[track_index(dim, dir)].clear();
}

void IndexTable::clear_all() {
  for (auto& t : tracks_) t.clear();
}

std::vector<IndexTable::Entry> IndexTable::live_entries(
    std::size_t dim, can::Direction dir, SimTime now) const {
  std::vector<Entry> out;
  for_each_live(dim, dir, now, [&](const Entry& e) { out.push_back(e); });
  return out;
}

std::optional<NodeId> IndexTable::pick(std::size_t dim, can::Direction dir,
                                       IndexSelectPolicy policy, SimTime now,
                                       Rng& rng) const {
  const auto live = live_entries(dim, dir, now);
  if (live.empty()) return std::nullopt;

  switch (policy) {
    case IndexSelectPolicy::kRandomPowerLevel: {
      // Random level among those present, then a random sample within it —
      // this is the 2^k randomized selection of the paper.
      std::vector<std::size_t> levels;
      for (const auto& e : live) levels.push_back(e.level);
      std::sort(levels.begin(), levels.end());
      levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
      const std::size_t lvl = levels[rng.pick_index(levels.size())];
      std::vector<NodeId> at_level;
      for (const auto& e : live) {
        if (e.level == lvl) at_level.push_back(e.id);
      }
      return at_level[rng.pick_index(at_level.size())];
    }
    case IndexSelectPolicy::kNearestOnly: {
      const auto it = std::min_element(
          live.begin(), live.end(),
          [](const Entry& a, const Entry& b) { return a.level < b.level; });
      return it->id;
    }
    case IndexSelectPolicy::kUniformEntry:
      return live[rng.pick_index(live.size())].id;
  }
  return std::nullopt;
}

std::size_t IndexTable::total_entries() const {
  std::size_t n = 0;
  for (const auto& t : tracks_) n += t.size();
  return n;
}

}  // namespace soc::index
