#include "src/index/index_table.hpp"

#include <algorithm>
#include <bit>

namespace soc::index {

IndexTable::IndexTable(std::size_t dims, std::size_t samples_per_level,
                       SimTime entry_ttl)
    : dims_(dims), samples_per_level_(samples_per_level), ttl_(entry_ttl),
      tracks_(dims * 2) {
  SOC_CHECK(dims > 0);
  SOC_CHECK(samples_per_level > 0);
}

std::size_t IndexTable::track_index(std::size_t dim,
                                    can::Direction dir) const {
  SOC_CHECK(dim < dims_);
  return dim * 2 + (dir == can::Direction::kPositive ? 1 : 0);
}

void IndexTable::store(std::size_t dim, can::Direction dir, std::size_t level,
                       NodeId id, SimTime now) {
  SOC_CHECK(level < 64);  // pick() tracks the level set in a 64-bit mask
  auto& track = tracks_[track_index(dim, dir)];
  // Refresh an existing identical entry in place.
  for (auto& e : track) {
    if (e.id == id && e.level == level) {
      e.refreshed_at = now;
      return;
    }
  }
  // Enforce the per-level sample cap by evicting the stalest same-level
  // entry when full.
  std::size_t level_count = 0;
  auto stalest = track.end();
  for (auto it = track.begin(); it != track.end(); ++it) {
    if (it->level != level) continue;
    ++level_count;
    if (stalest == track.end() || it->refreshed_at < stalest->refreshed_at) {
      stalest = it;
    }
  }
  if (level_count >= samples_per_level_ && stalest != track.end()) {
    track.erase(stalest);
  }
  track.push_back(Entry{id, level, now});
}

void IndexTable::clear_track(std::size_t dim, can::Direction dir) {
  tracks_[track_index(dim, dir)].clear();
}

void IndexTable::clear_all() {
  for (auto& t : tracks_) t.clear();
}

std::vector<IndexTable::Entry> IndexTable::live_entries(
    std::size_t dim, can::Direction dir, SimTime now) const {
  std::vector<Entry> out;
  for_each_live(dim, dir, now, [&](const Entry& e) { out.push_back(e); });
  return out;
}

std::optional<NodeId> IndexTable::pick(std::size_t dim, can::Direction dir,
                                       IndexSelectPolicy policy, SimTime now,
                                       Rng& rng) const {
  // Allocation-free: one summary scan over the (tiny) track, then at most
  // two more indexed scans.  Draw order and distribution are identical to
  // the old collect-into-vectors version — live entries visit in track
  // order, the level set enumerates ascending (the sorted-unique order),
  // and each policy makes the same pick_index calls — so selection
  // trajectories are unchanged.
  std::size_t live_count = 0;
  std::uint64_t level_mask = 0;
  NodeId nearest;
  std::size_t nearest_level = ~std::size_t{0};
  for_each_live(dim, dir, now, [&](const Entry& e) {
    ++live_count;
    level_mask |= std::uint64_t{1} << e.level;
    if (e.level < nearest_level) {  // strict: keep the first minimum
      nearest_level = e.level;
      nearest = e.id;
    }
  });
  if (live_count == 0) return std::nullopt;

  // Return the k-th live entry (track order) matching `filter`.
  const auto nth_live = [&](std::size_t k, auto&& filter) {
    NodeId out;
    for_each_live(dim, dir, now, [&](const Entry& e) {
      if (out.valid() || !filter(e)) return;
      if (k-- == 0) out = e.id;
    });
    SOC_CHECK(out.valid());
    return out;
  };

  switch (policy) {
    case IndexSelectPolicy::kRandomPowerLevel: {
      // Random level among those present, then a random sample within it —
      // this is the 2^k randomized selection of the paper.
      std::size_t nth = rng.pick_index(
          static_cast<std::size_t>(std::popcount(level_mask)));
      std::uint64_t mask = level_mask;
      while (nth-- > 0) mask &= mask - 1;  // drop the lowest set bits
      const auto lvl = static_cast<std::size_t>(std::countr_zero(mask));
      std::size_t at_level = 0;
      for_each_live(dim, dir, now,
                    [&](const Entry& e) { at_level += e.level == lvl; });
      return nth_live(rng.pick_index(at_level),
                      [&](const Entry& e) { return e.level == lvl; });
    }
    case IndexSelectPolicy::kNearestOnly:
      return nearest;
    case IndexSelectPolicy::kUniformEntry:
      return nth_live(rng.pick_index(live_count),
                      [](const Entry&) { return true; });
  }
  return std::nullopt;
}

std::size_t IndexTable::total_entries() const {
  std::size_t n = 0;
  for (const auto& t : tracks_) n += t.size();
  return n;
}

}  // namespace soc::index
