#include "src/index/record.hpp"

#include <algorithm>

namespace soc::index {

std::vector<Record>::iterator RecordStore::lower_bound(NodeId provider) {
  return std::lower_bound(
      records_.begin(), records_.end(), provider,
      [](const Record& r, NodeId target) { return r.provider < target; });
}

std::vector<Record>::const_iterator RecordStore::lower_bound(
    NodeId provider) const {
  return std::lower_bound(
      records_.begin(), records_.end(), provider,
      [](const Record& r, NodeId target) { return r.provider < target; });
}

void RecordStore::put(const Record& r) {
  SOC_CHECK(r.provider.valid());
  const auto it = lower_bound(r.provider);
  if (it != records_.end() && it->provider == r.provider) {
    *it = r;
    return;
  }
  records_.insert(it, r);
}

bool RecordStore::erase(NodeId provider) {
  const auto it = lower_bound(provider);
  if (it == records_.end() || it->provider != provider) return false;
  records_.erase(it);
  return true;
}

std::size_t RecordStore::live_count(SimTime now) const {
  std::size_t n = 0;
  for (const Record& r : records_) n += !r.expired(now);
  return n;
}

bool RecordStore::has_live_records(SimTime now) const {
  for (const Record& r : records_) {
    if (!r.expired(now)) return true;
  }
  return false;
}

void RecordStore::qualified_into(const ResourceVector& demand, SimTime now,
                                 std::vector<Record>& out) const {
  out.clear();
  for (const Record& r : records_) {
    if (!r.expired(now) && r.qualifies(demand)) out.push_back(r);
  }
}

std::size_t RecordStore::qualified_count(const ResourceVector& demand,
                                         SimTime now) const {
  std::size_t n = 0;
  for (const Record& r : records_) {
    n += !r.expired(now) && r.qualifies(demand);
  }
  return n;
}

std::vector<Record> RecordStore::qualified(const ResourceVector& demand,
                                           SimTime now) const {
  std::vector<Record> out;
  qualified_into(demand, now, out);
  return out;
}

std::vector<Record> RecordStore::all_live(SimTime now) const {
  std::vector<Record> out;
  out.reserve(records_.size());
  for (const Record& r : records_) {
    if (!r.expired(now)) out.push_back(r);
  }
  return out;
}

std::vector<Record> RecordStore::extract_in_zone(const can::Zone& zone,
                                                 SimTime now) {
  std::vector<Record> out;
  std::erase_if(records_, [&](const Record& r) {
    if (r.expired(now)) return true;
    if (!zone.contains(r.location)) return false;
    out.push_back(r);
    return true;
  });
  return out;
}

std::vector<Record> RecordStore::extract_all() {
  std::vector<Record> out;
  out.swap(records_);
  return out;
}

void RecordStore::prune(SimTime now) {
  std::erase_if(records_, [&](const Record& r) { return r.expired(now); });
}

bool RecordStore::verify_sorted_unique() const {
  for (std::size_t i = 1; i < records_.size(); ++i) {
    if (!(records_[i - 1].provider < records_[i].provider)) return false;
  }
  return true;
}

}  // namespace soc::index
