#include "src/index/record.hpp"

#include <algorithm>

namespace soc::index {

std::size_t RecordStore::key_lower_bound(NodeId provider) const {
  return static_cast<std::size_t>(
      std::lower_bound(keys_.begin(), keys_.end(), provider) - keys_.begin());
}

std::uint32_t RecordStore::alloc_slot(const Record& r) {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    slab_[slot] = r;
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slab_.size());
  slab_.push_back(r);
  return slot;
}

void RecordStore::put(const Record& r) {
  SOC_CHECK(r.provider.valid());
  const std::size_t i = key_lower_bound(r.provider);
  if (i < keys_.size() && keys_[i] == r.provider) {
    slab_[slots_[i]] = r;
    return;
  }
  const std::uint32_t slot = alloc_slot(r);
  keys_.insert(keys_.begin() + static_cast<std::ptrdiff_t>(i), r.provider);
  slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(i), slot);
}

bool RecordStore::erase(NodeId provider) {
  const std::size_t i = key_lower_bound(provider);
  if (i == keys_.size() || keys_[i] != provider) return false;
  free_.push_back(slots_[i]);
  keys_.erase(keys_.begin() + static_cast<std::ptrdiff_t>(i));
  slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
  return true;
}

std::size_t RecordStore::live_count(SimTime now) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) n += !at(i).expired(now);
  return n;
}

bool RecordStore::has_live_records(SimTime now) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (!at(i).expired(now)) return true;
  }
  return false;
}

void RecordStore::qualified_into(const ResourceVector& demand, SimTime now,
                                 std::vector<Record>& out) const {
  out.clear();
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    const Record& r = at(i);
    if (!r.expired(now) && r.qualifies(demand)) out.push_back(r);
  }
}

std::size_t RecordStore::qualified_count(const ResourceVector& demand,
                                         SimTime now) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    const Record& r = at(i);
    n += !r.expired(now) && r.qualifies(demand);
  }
  return n;
}

std::vector<Record> RecordStore::qualified(const ResourceVector& demand,
                                           SimTime now) const {
  std::vector<Record> out;
  qualified_into(demand, now, out);
  return out;
}

std::vector<Record> RecordStore::all_live(SimTime now) const {
  std::vector<Record> out;
  out.reserve(keys_.size());
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    const Record& r = at(i);
    if (!r.expired(now)) out.push_back(r);
  }
  return out;
}

std::vector<Record> RecordStore::extract_in_zone(const can::Zone& zone,
                                                 SimTime now) {
  std::vector<Record> out;
  std::size_t w = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    const Record& r = at(i);
    if (r.expired(now)) {
      free_.push_back(slots_[i]);
      continue;
    }
    if (zone.contains(r.location)) {
      out.push_back(r);
      free_.push_back(slots_[i]);
      continue;
    }
    keys_[w] = keys_[i];
    slots_[w] = slots_[i];
    ++w;
  }
  keys_.resize(w);
  slots_.resize(w);
  return out;
}

std::vector<Record> RecordStore::extract_all() {
  std::vector<Record> out;
  out.reserve(keys_.size());
  for (std::size_t i = 0; i < keys_.size(); ++i) out.push_back(at(i));
  keys_.clear();
  slots_.clear();
  slab_.clear();
  free_.clear();
  return out;
}

void RecordStore::prune(SimTime now) {
  std::size_t w = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (at(i).expired(now)) {
      free_.push_back(slots_[i]);
      continue;
    }
    keys_[w] = keys_[i];
    slots_[w] = slots_[i];
    ++w;
  }
  keys_.resize(w);
  slots_.resize(w);
}

bool RecordStore::verify_sorted_unique() const {
  if (keys_.size() != slots_.size()) return false;
  std::vector<bool> used(slab_.size(), false);
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0 && !(keys_[i - 1] < keys_[i])) return false;
    const std::uint32_t slot = slots_[i];
    if (slot >= slab_.size()) return false;
    if (used[slot]) return false;
    used[slot] = true;
    if (!(slab_[slot].provider == keys_[i])) return false;
  }
  for (const std::uint32_t slot : free_) {
    if (slot >= slab_.size()) return false;
    if (used[slot]) return false;
    used[slot] = true;
  }
  for (std::size_t s = 0; s < slab_.size(); ++s) {
    if (!used[s]) return false;
  }
  return true;
}

}  // namespace soc::index
