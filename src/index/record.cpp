#include "src/index/record.hpp"

namespace soc::index {

void RecordStore::put(const Record& r) {
  SOC_CHECK(r.provider.valid());
  records_[r.provider] = r;
}

bool RecordStore::erase(NodeId provider) {
  return records_.erase(provider) > 0;
}

std::size_t RecordStore::live_count(SimTime now) const {
  std::size_t n = 0;
  for (const auto& [_, r] : records_) n += !r.expired(now);
  return n;
}

bool RecordStore::has_live_records(SimTime now) const {
  for (const auto& [_, r] : records_) {
    if (!r.expired(now)) return true;
  }
  return false;
}

std::vector<Record> RecordStore::qualified(const ResourceVector& demand,
                                           SimTime now) const {
  std::vector<Record> out;
  for (const auto& [_, r] : records_) {
    if (!r.expired(now) && r.qualifies(demand)) out.push_back(r);
  }
  return out;
}

std::vector<Record> RecordStore::all_live(SimTime now) const {
  std::vector<Record> out;
  out.reserve(records_.size());
  for (const auto& [_, r] : records_) {
    if (!r.expired(now)) out.push_back(r);
  }
  return out;
}

std::vector<Record> RecordStore::extract_in_zone(const can::Zone& zone,
                                                 SimTime now) {
  std::vector<Record> out;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.expired(now)) {
      it = records_.erase(it);
      continue;
    }
    if (zone.contains(it->second.location)) {
      out.push_back(it->second);
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<Record> RecordStore::extract_all() {
  std::vector<Record> out;
  out.reserve(records_.size());
  for (const auto& [_, r] : records_) out.push_back(r);
  records_.clear();
  return out;
}

void RecordStore::prune(SimTime now) {
  for (auto it = records_.begin(); it != records_.end();) {
    it = it->second.expired(now) ? records_.erase(it) : std::next(it);
  }
}

}  // namespace soc::index
