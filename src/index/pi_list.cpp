#include "src/index/pi_list.hpp"

#include <algorithm>

namespace soc::index {

void PiList::add(NodeId id, SimTime now) {
  SOC_CHECK(id.valid());
  const auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second = now;
    return;
  }
  if (entries_.size() >= capacity_) {
    auto stalest = entries_.begin();
    for (auto e = entries_.begin(); e != entries_.end(); ++e) {
      if (e->second < stalest->second) stalest = e;
    }
    entries_.erase(stalest);
  }
  entries_.emplace(id, now);
}

std::size_t PiList::live_count(SimTime now) const {
  std::size_t n = 0;
  for (const auto& [_, heard] : entries_) n += (now - heard) < ttl_;
  return n;
}

bool PiList::contains_live(NodeId id, SimTime now) const {
  const auto it = entries_.find(id);
  return it != entries_.end() && (now - it->second) < ttl_;
}

std::vector<NodeId> PiList::sample(std::size_t k, SimTime now,
                                   Rng& rng) const {
  std::vector<NodeId> live;
  live.reserve(entries_.size());
  for (const auto& [id, heard] : entries_) {
    if ((now - heard) < ttl_) live.push_back(id);
  }
  // Deterministic base order, then shuffle for the random subset.
  std::sort(live.begin(), live.end());
  rng.shuffle(live.begin(), live.end());
  if (live.size() > k) live.resize(k);
  return live;
}

void PiList::prune(SimTime now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = ((now - it->second) >= ttl_) ? entries_.erase(it) : std::next(it);
  }
}

}  // namespace soc::index
