#include "src/index/pi_list.hpp"

#include <algorithm>

namespace soc::index {

std::vector<PiList::Entry>::iterator PiList::lower_bound(NodeId id) {
  return std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, NodeId target) { return e.id < target; });
}

std::vector<PiList::Entry>::const_iterator PiList::lower_bound(
    NodeId id) const {
  return std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, NodeId target) { return e.id < target; });
}

void PiList::add(NodeId id, SimTime now) {
  SOC_CHECK(id.valid());
  const auto it = lower_bound(id);
  if (it != entries_.end() && it->id == id) {
    it->heard_at = now;
    return;
  }
  if (entries_.size() >= capacity_) {
    // Evict the stalest entry; ties break toward the smallest id (the scan
    // keeps the first minimum in id order).
    std::size_t stalest = 0;
    for (std::size_t e = 1; e < entries_.size(); ++e) {
      if (entries_[e].heard_at < entries_[stalest].heard_at) stalest = e;
    }
    std::size_t insert_at = static_cast<std::size_t>(it - entries_.begin());
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(stalest));
    if (stalest < insert_at) --insert_at;  // erase shifted the slot left
    entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(insert_at),
                    Entry{id, now});
    return;
  }
  entries_.insert(it, Entry{id, now});
}

void PiList::erase(NodeId id) {
  const auto it = lower_bound(id);
  if (it != entries_.end() && it->id == id) entries_.erase(it);
}

std::size_t PiList::live_count(SimTime now) const {
  std::size_t n = 0;
  for (const Entry& e : entries_) n += (now - e.heard_at) < ttl_;
  return n;
}

bool PiList::contains_live(NodeId id, SimTime now) const {
  const auto it = lower_bound(id);
  return it != entries_.end() && it->id == id && (now - it->heard_at) < ttl_;
}

std::vector<NodeId> PiList::sample(std::size_t k, SimTime now,
                                   Rng& rng) const {
  // Live entries come out in ascending id order (the deterministic base
  // order the old map version sorted into), then shuffle for the subset.
  std::vector<NodeId> live;
  live.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if ((now - e.heard_at) < ttl_) live.push_back(e.id);
  }
  rng.shuffle(live.begin(), live.end());
  if (live.size() > k) live.resize(k);
  return live;
}

void PiList::prune(SimTime now) {
  std::erase_if(entries_,
                [&](const Entry& e) { return (now - e.heard_at) >= ttl_; });
}

}  // namespace soc::index
