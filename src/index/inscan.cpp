#include "src/index/inscan.hpp"

#include <memory>
#include <string>
#include <utility>

#include "src/common/logging.hpp"
#include "src/obs/trace.hpp"

namespace soc::index {

IndexSystem::IndexSystem(sim::Simulator& sim, net::MessageBus& bus,
                         can::CanSpace& space, InscanConfig config, Rng rng)
    : sim_(sim), bus_(bus), space_(space), config_(config), rng_(rng) {
  SOC_CHECK(config_.index_fanout_L >= 1);
}

void IndexSystem::attach_to_space() {
  can::CanSpace::Listener listener;
  listener.on_rehome = [this](NodeId from, NodeId to) {
    if (!state_.contains(from)) return;
    // Move the records that now belong to `to`'s zone.  When `from` is no
    // longer a member (departure) everything moves.
    std::vector<Record> moved;
    if (space_.contains(from) && space_.contains(to)) {
      moved = cache(from).extract_in_zone(space_.zone_of(to), sim_.now());
    } else {
      moved = cache(from).extract_all();
    }
    RecordStore& dst = cache(to);
    for (const Record& r : moved) dst.put(r);
  };
  space_.set_listener(std::move(listener));
}

IndexSystem::NodeState& IndexSystem::state(NodeId id) {
  if (NodeState* st = state_.find(id)) return *st;
  return state_.emplace(
      id, NodeState{RecordStore{}, PiList(config_.pi_capacity, config_.pi_ttl),
                    IndexTable(space_.dims(), config_.index_samples_per_level,
                               config_.index_entry_ttl),
                    rng_.fork(id.value)});
}

RecordStore& IndexSystem::cache(NodeId id) { return state(id).cache; }
PiList& IndexSystem::pi_list(NodeId id) { return state(id).pi; }
IndexTable& IndexSystem::table(NodeId id) { return state(id).table; }

void IndexSystem::add_node(NodeId id) {
  SOC_CHECK(space_.contains(id));
  state(id);  // materialize
  // Bootstrap the index tables right away, then keep them fresh.
  for (std::size_t d = 0; d < space_.dims(); ++d) {
    probe_now(id, d, can::Direction::kNegative);
    probe_now(id, d, can::Direction::kPositive);
  }
  start_periodics(id);
}

void IndexSystem::remove_node(NodeId id) {
  state_.erase(id);
  last_location_.erase(id);
  // Safe point: called from departure/partition teardown with no NodeState
  // references outstanding (the rehome listener re-looks-up per call).
  state_.maybe_compact();
  last_location_.maybe_compact();
}

IndexSystem::ParkedNode IndexSystem::park_node(NodeId id) {
  SOC_CHECK(state_.contains(id));
  NodeState& st = state(id);
  // Moved-from sub-objects are left empty, so the departure teardown that
  // follows re-homes nothing to the takeover node.
  return ParkedNode{std::move(st.cache), std::move(st.pi),
                    std::move(st.table), st.rng};
}

void IndexSystem::restore_node(NodeId id, ParkedNode parked) {
  SOC_CHECK(space_.contains(id));
  parked.cache.prune(sim_.now());
  // Keep what the node's new zone still covers; everything else goes back
  // through the normal state-update routing to its current duty node.
  std::vector<Record> keep =
      parked.cache.extract_in_zone(space_.zone_of(id), sim_.now());
  std::vector<Record> reroute = parked.cache.extract_all();
  for (const Record& r : keep) parked.cache.put(r);
  // The CanSpace join that preceded this restore split a zone, and the
  // rehome listener materialized a fresh NodeState to receive the split
  // zone's records — fold those into the parked cache (they are in-zone
  // by construction) and resume on the parked state.
  if (NodeState* fresh = state_.find(id)) {
    for (const Record& r : fresh->cache.extract_all()) parked.cache.put(r);
    state_.erase(id);
  }
  state_.emplace(id, NodeState{std::move(parked.cache), std::move(parked.pi),
                               std::move(parked.table), parked.rng});
  for (const Record& r : reroute) {
    route(id, r.location, net::MsgType::kStateUpdate, config_.state_msg_bytes,
          [this, r](NodeId duty) {
            if (!state_.contains(duty)) return;
            cache(duty).put(r);
          });
  }
  // The parked index table is stale (the neighborhood changed while cut
  // off); bootstrap probes rebuild it like a join, and stale fingers are
  // skipped by routing's contains() guards until then.
  for (std::size_t d = 0; d < space_.dims(); ++d) {
    probe_now(id, d, can::Direction::kNegative);
    probe_now(id, d, can::Direction::kPositive);
  }
  start_periodics(id);
}

std::vector<NodeId> IndexSystem::tracked_ids() const {
  std::vector<NodeId> out;
  out.reserve(state_.size());
  for (const auto& [id, st] : state_) out.push_back(id);
  return out;
}

std::string IndexSystem::check_membership_consistency() const {
  for (const auto& [id, st] : state_) {
    if (!space_.contains(id)) {
      return "ghost NodeState for non-member " + std::to_string(id.value);
    }
  }
  for (const NodeId id : space_.member_ids()) {
    if (!state_.contains(id)) {
      return "member " + std::to_string(id.value) + " has no NodeState";
    }
  }
  for (const auto& [id, loc] : last_location_) {
    if (!state_.contains(id)) {
      return "last-location filed for untracked node " +
             std::to_string(id.value);
    }
  }
  return {};
}

void IndexSystem::start_periodics(NodeId id) {
  // Every periodic body first checks the node is still a tracked member,
  // returning false to retire the process after departure.
  sim_.schedule_periodic(
      config_.state_update_period,
      [this, id] {
        if (!state_.contains(id) || !space_.contains(id)) return false;
        publish_now(id);
        return true;
      },
      /*phase=*/static_cast<SimTime>(
          state(id).rng.uniform_int(1, config_.state_update_period)),
      config_.periodic_jitter);

  sim_.schedule_periodic(
      config_.diffusion_period,
      [this, id] {
        if (!state_.contains(id) || !space_.contains(id)) return false;
        diffuse_now(id);
        return true;
      },
      static_cast<SimTime>(
          state(id).rng.uniform_int(1, config_.diffusion_period)),
      config_.periodic_jitter);

  sim_.schedule_periodic(
      config_.index_refresh_period,
      [this, id] {
        if (!state_.contains(id) || !space_.contains(id)) return false;
        for (std::size_t d = 0; d < space_.dims(); ++d) {
          probe_now(id, d, can::Direction::kNegative);
          probe_now(id, d, can::Direction::kPositive);
        }
        return true;
      },
      static_cast<SimTime>(
          state(id).rng.uniform_int(1, config_.index_refresh_period)),
      config_.periodic_jitter);
}

// ---------------------------------------------------------------------------
// Greedy routing (plain CAN neighbors, optionally + index-table fingers)

// Everything a multi-hop route needs, allocated once per route; hop
// closures capture only {this, ctx, at, ttl} and stay inside the InlineFn
// small buffer.
struct IndexSystem::RouteCtx {
  can::Point target;
  net::MsgType type;
  std::size_t bytes;
  ArriveFn on_arrive;
};

void IndexSystem::route(NodeId from, const can::Point& target,
                        net::MsgType type, std::size_t bytes,
                        ArriveFn on_arrive) {
  auto ctx = std::make_shared<RouteCtx>(
      RouteCtx{target, type, bytes, std::move(on_arrive)});
  route_step(from, config_.route_ttl, ctx);
}

void IndexSystem::route_step(NodeId at, std::size_t ttl,
                             const std::shared_ptr<RouteCtx>& ctx) {
  const can::Point& target = ctx->target;
  if (!space_.contains(at)) return;  // current hop churned out: message lost
  if (space_.zone_of(at).contains(target)) {
    ctx->on_arrive(at);
    return;
  }
  if (ttl == 0) {
    SOC_LOG(kDebug) << "route TTL exhausted at node " << at.value;
    return;
  }

  // Greedy choice over adjacent neighbors plus (optionally) index fingers,
  // ranked by (containment, box distance, center distance) — the strictly
  // decreasing key avoids cycles and resolves corner/boundary plateaus
  // (see CanSpace::next_hop).  The neighbor scan prunes via the cached
  // abutting-dimension metadata; a containing neighbor short-circuits the
  // finger scan (no finger can displace a zone that owns the target).
  NodeId best;
  double best_d = space_.zone_of(at).distance_sq(target);
  double best_c = can::point_distance_sq(space_.center_of(at), target);
  const bool contained =
      space_.scan_neighbors_toward(at, target, best, best_d, best_c);
  if (!contained && config_.long_link_routing && state_.contains(at)) {
    auto consider = [&](NodeId cand) {
      if (cand == at || !space_.contains(cand)) return;
      space_.consider_candidate_toward(cand, target, best, best_d, best_c);
    };
    const IndexTable& tbl = state(at).table;
    for (std::size_t d = 0; d < space_.dims(); ++d) {
      for (const can::Direction dir :
           {can::Direction::kNegative, can::Direction::kPositive}) {
        tbl.for_each_live(d, dir, sim_.now(),
                          [&](const IndexTable::Entry& e) { consider(e.id); });
      }
    }
  }
  if (!best.valid()) {
    SOC_LOG(kDebug) << "route stalled at node " << at.value;
    return;
  }
  // Trace query routing hops only — periodic state updates route too and
  // would swamp the trace with O(nodes/period) events.
  if (ctx->type == net::MsgType::kDutyQuery) {
    if (obs::Tracer* t = obs::tracer()) {
      t->instant("route", "hop", sim_.now(), "to", best.value);
    }
  }
  bus_.send(at, best, ctx->type, ctx->bytes,
            [this, ctx, best, ttl] { route_step(best, ttl - 1, ctx); });
}

// ---------------------------------------------------------------------------
// State updates

void IndexSystem::publish_now(NodeId id) {
  if (!provider_) return;
  const std::optional<Record> record = provider_(id);
  if (!record.has_value()) return;
  SOC_CHECK(record->location.dims() == space_.dims());

  // If the previous record was filed under a different duty node, send an
  // invalidation there — otherwise the overwrite below suffices.  (A real
  // provider caches its last duty node's identity, which the owner_of
  // lookup stands in for.)
  const can::Point* last = last_location_.find(id);
  if (last != nullptr && space_.size() > 0 &&
      space_.owner_of(*last) != space_.owner_of(record->location)) {
    ++activity_.invalidations;
    route(id, *last, net::MsgType::kStateUpdate, config_.index_msg_bytes,
          [this, id](NodeId old_duty) { cache(old_duty).erase(id); });
  }
  last_location_[id] = record->location;
  ++activity_.publishes;

  route(id, record->location, net::MsgType::kStateUpdate,
        config_.state_msg_bytes,
        [this, r = *record](NodeId duty) { cache(duty).put(r); });
}

// ---------------------------------------------------------------------------
// Index diffusion (Algorithms 1 and 2)

std::optional<NodeId> IndexSystem::pick_index_node(NodeId id, std::size_t dim,
                                                   can::Direction dir) {
  NodeState& st = state(id);
  // Prefer a live table entry; fall back to an adjacent directional
  // neighbor (always a valid 2^0 index node) so diffusion still works
  // before the first probe round completes.
  if (auto picked =
          st.table.pick(dim, dir, config_.select_policy, sim_.now(), st.rng);
      picked.has_value() && space_.contains(*picked)) {
    return picked;
  }
  if (!space_.contains(id)) return std::nullopt;
  space_.directional_neighbors(id, dim, dir, dir_scratch_);
  if (dir_scratch_.empty()) return std::nullopt;
  return dir_scratch_[st.rng.pick_index(dir_scratch_.size())];
}

void IndexSystem::diffuse_now(NodeId id) {
  NodeState& st = state(id);
  ++activity_.diffusion_rounds;
  st.cache.prune(sim_.now());
  if (!st.cache.has_live_records(sim_.now())) return;  // Alg. 1 guard
  ++activity_.diffusion_initiations;

  const std::size_t L = config_.index_fanout_L;
  if (config_.diffusion == DiffusionMethod::kHopping) {
    // Alg. 1: a single message {ID, dim j, L} to a random NINode along the
    // first *available* dimension; relays cascade across the remaining
    // dimensions (Alg. 2).  Nodes sitting on the negative edge of early
    // dimensions (common: most hosts' CPU sits far below c_max) start at
    // the first dimension that actually has negative index nodes.
    for (std::size_t j = 0; j < space_.dims(); ++j) {
      const auto target = pick_index_node(id, j, can::Direction::kNegative);
      if (!target.has_value()) continue;
      bus_.send(id, *target, net::MsgType::kIndexDiffuse,
                config_.index_msg_bytes, [this, at = *target, id, j, L] {
                  handle_diffuse(at, id, j, L);
                });
      return;
    }
    return;
  }

  // Spreading (SID).  Strict Fig. 3(a) reading: the sender alone selects
  // L NINodes on each of its d dimension tracks and receivers only store
  // the index — narrow, axis-aligned coverage, which is exactly why the
  // paper finds SID unable to adapt to intensive query ranges.
  if (config_.spreading_scope == SpreadingScope::kSenderTracks) {
    for (std::size_t d = 0; d < space_.dims(); ++d) {
      for (std::size_t i = 0; i < L; ++i) {
        const auto target = pick_index_node(id, d, can::Direction::kNegative);
        if (!target.has_value()) break;
        bus_.send(id, *target, net::MsgType::kIndexDiffuse,
                  config_.index_msg_bytes, [this, at = *target, id] {
                    if (!state_.contains(at) || !space_.contains(at)) return;
                    ++activity_.diffusion_relays;
                    pi_list(at).add(id, sim_.now());
                  });
      }
    }
    return;
  }
  // ω-based cascade reading: the sender picks all L same-dimension targets
  // at once (one hop instead of a relay chain) and each receiver opens the
  // next dimension the same way, so the total message count matches the
  // paper's ω = L(L^d−1)/(L−1) for both methods.
  spread_dimension(id, id, 0);
}

void IndexSystem::spread_dimension(NodeId at, NodeId subject,
                                   std::size_t dim) {
  // Find the first dimension (from `dim` on) with available targets, as in
  // the hopping initiation.
  for (std::size_t j = dim; j < space_.dims(); ++j) {
    bool sent = false;
    for (std::size_t i = 0; i < config_.index_fanout_L; ++i) {
      const auto target = pick_index_node(at, j, can::Direction::kNegative);
      if (!target.has_value()) break;
      sent = true;
      bus_.send(at, *target, net::MsgType::kIndexDiffuse,
                config_.index_msg_bytes, [this, t = *target, subject, j] {
                  if (!state_.contains(t) || !space_.contains(t)) return;
                  ++activity_.diffusion_relays;
                  pi_list(t).add(subject, sim_.now());
                  spread_dimension(t, subject, j + 1);
                });
    }
    if (sent) return;
  }
}

void IndexSystem::handle_diffuse(NodeId at, NodeId subject, std::size_t dim,
                                 std::size_t ttl) {
  if (!state_.contains(at) || !space_.contains(at)) return;
  ++activity_.diffusion_relays;
  pi_list(at).add(subject, sim_.now());

  // Alg. 2 lines 1–4: continue along the same dimension with TTL − 1.
  if (ttl > 1) {
    if (const auto next = pick_index_node(at, dim, can::Direction::kNegative);
        next.has_value()) {
      bus_.send(at, *next, net::MsgType::kIndexDiffuse,
                config_.index_msg_bytes,
                [this, n = *next, subject, dim, ttl] {
                  handle_diffuse(n, subject, dim, ttl - 1);
                });
    }
  }
  // Alg. 2 lines 5–9: open the next *available* dimension with a fresh TTL
  // of L (skipping dimensions where this relay sits on the negative edge).
  for (std::size_t j = dim + 1; j < space_.dims(); ++j) {
    const auto next = pick_index_node(at, j, can::Direction::kNegative);
    if (!next.has_value()) continue;
    bus_.send(at, *next, net::MsgType::kIndexDiffuse,
              config_.index_msg_bytes,
              [this, n = *next, subject, j,
               L = config_.index_fanout_L] { handle_diffuse(n, subject, j, L); });
    break;
  }
}

// ---------------------------------------------------------------------------
// Index-table probe walks

void IndexSystem::probe_now(NodeId id, std::size_t dim, can::Direction dir) {
  auto walk = std::make_shared<ProbeWalk>();
  walk->origin = id;
  walk->started_at = sim_.now();
  walk->dim = static_cast<std::uint32_t>(dim);
  walk->dir = dir;
  probe_step(id, walk);
}

void IndexSystem::probe_step(NodeId at,
                             const std::shared_ptr<ProbeWalk>& walk) {
  if (!space_.contains(at)) return;  // walk dies with a churned-out hop
  // Kill walks whose origin departed: the hop below draws from the origin's
  // RNG via state(), which would otherwise re-materialize a ghost NodeState
  // for the departed node (and the final report would then pass the
  // contains() guard and store into the ghost's table).
  if (!state_.contains(walk->origin) || !space_.contains(walk->origin)) {
    return;
  }

  auto finish = [&] {
    if (obs::Tracer* t = obs::tracer()) {
      t->complete("probe", "probe_walk", walk->started_at,
                  sim_.now() - walk->started_at, "hops", walk->hops);
    }
    if (walk->found.empty()) return;
    // One report message back to the origin with all collected samples; the
    // walk state rides along, so the closure stays slot-sized.
    bus_.send(at, walk->origin, net::MsgType::kIndexProbe,
              config_.probe_msg_bytes, [this, walk] {
                if (!state_.contains(walk->origin)) return;
                IndexTable& tbl = table(walk->origin);
                for (const auto& e : walk->found) {
                  tbl.store(walk->dim, walk->dir, e.level, e.id, sim_.now());
                }
              });
  };

  if (walk->hops > 0) {
    // Record the node sitting exactly 2^level hops out.
    if (walk->hops == (std::uint32_t{1} << walk->level)) {
      walk->found.push_back(IndexTable::Entry{at, walk->level, sim_.now()});
      ++walk->level;
    }
  }

  space_.directional_neighbors(at, walk->dim, walk->dir, dir_scratch_);
  if (dir_scratch_.empty() || walk->hops >= config_.route_ttl) {
    finish();
    return;
  }
  NodeState& origin_state = state(walk->origin);
  const NodeId next =
      dir_scratch_[origin_state.rng.pick_index(dir_scratch_.size())];
  bus_.send(at, next, net::MsgType::kIndexProbe, config_.probe_msg_bytes,
            [this, next, walk] {
              ++walk->hops;
              probe_step(next, walk);
            });
}

}  // namespace soc::index
