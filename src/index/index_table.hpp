// INSCAN index-node tables: per dimension and direction, sampled nodes at
// 2^k zone-hops (k = 0, 1, 2, …), refreshed by periodic directional probe
// walks.  These are the NINodes of Algorithms 1–2 and the long links that
// bring INSCAN routing to O(log² n).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "src/can/space.hpp"
#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace soc::index {

/// Index-node selection policies for the ablation study.  The paper's
/// design samples a random 2^k level then a random entry; alternatives keep
/// only the nearest level or draw a uniformly random known entry.
enum class IndexSelectPolicy : std::uint8_t {
  kRandomPowerLevel,  // paper: random k, then random sample at that level
  kNearestOnly,       // always the 1-hop entry (degenerates to neighbors)
  kUniformEntry,      // uniform over all stored entries regardless of level
};

class IndexTable {
 public:
  struct Entry {
    NodeId id;
    std::size_t level = 0;  // distance 2^level zone-hops
    SimTime refreshed_at = 0;
  };

  IndexTable(std::size_t dims, std::size_t samples_per_level,
             SimTime entry_ttl);

  /// Store a probe result: `id` sits 2^level hops away along (dim, dir).
  void store(std::size_t dim, can::Direction dir, std::size_t level,
             NodeId id, SimTime now);

  /// Drop everything learned about a dimension/direction (pre-refresh).
  void clear_track(std::size_t dim, can::Direction dir);
  void clear_all();

  /// A NINode along (dim, dir) chosen per the policy; nullopt when the
  /// track is empty (e.g. at the space edge).  Allocation-free: selection
  /// runs as indexed scans over the track plus a 64-bit level mask (hence
  /// the `level < 64` bound enforced by store()), with the same RNG draw
  /// order as the original collect-into-vectors implementation.
  [[nodiscard]] std::optional<NodeId> pick(std::size_t dim,
                                           can::Direction dir,
                                           IndexSelectPolicy policy,
                                           SimTime now, Rng& rng) const;

  /// All live entries along a track (query layer may scan them).
  [[nodiscard]] std::vector<Entry> live_entries(std::size_t dim,
                                                can::Direction dir,
                                                SimTime now) const;

  /// Visit live entries along a track without allocating — the per-hop
  /// routing path uses this to treat index entries as long-link fingers.
  template <typename Fn>
  void for_each_live(std::size_t dim, can::Direction dir, SimTime now,
                     Fn&& fn) const {
    for (const Entry& e : tracks_[track_index(dim, dir)]) {
      if ((now - e.refreshed_at) < ttl_) fn(e);
    }
  }

  [[nodiscard]] std::size_t dims() const { return dims_; }
  [[nodiscard]] std::size_t total_entries() const;

  /// Bytes claimed by the per-track entry arrays
  /// (attribution-profiler hook).
  [[nodiscard]] std::size_t mem_bytes() const {
    std::size_t b = tracks_.capacity() * sizeof(std::vector<Entry>);
    for (const auto& t : tracks_) b += t.capacity() * sizeof(Entry);
    return b;
  }

 private:
  [[nodiscard]] std::size_t track_index(std::size_t dim,
                                        can::Direction dir) const;

  std::size_t dims_;
  std::size_t samples_per_level_;
  SimTime ttl_;
  std::vector<std::vector<Entry>> tracks_;  // [dim × direction]
};

}  // namespace soc::index
