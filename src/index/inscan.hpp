// INSCAN — Index-Node Supported CAN (§III.A/B of the paper).
//
// The IndexSystem owns, for every overlay member:
//   * the record cache γ it keeps as a duty node,
//   * its PIList (positive indexes received via diffusion), and
//   * its 2^k-hop index-node tables per dimension/direction,
// and implements the three proactive mechanisms that run on top of CAN:
//   * periodic state updates routed to duty nodes (availability records
//     with a 600 s TTL, published every 400 s),
//   * periodic directional probe walks that (re)build the index tables,
//   * the index-sender / index-relay diffusion of Algorithms 1–2, in both
//     the spreading (SID) and hopping (HID) variants.
//
// All traffic flows hop-by-hop through the MessageBus so delay and the
// message-delivery-cost metric are physical.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/can/space.hpp"
#include "src/common/dense_node_map.hpp"
#include "src/common/inline_fn.hpp"
#include "src/index/index_table.hpp"
#include "src/index/pi_list.hpp"
#include "src/index/record.hpp"
#include "src/net/message_bus.hpp"
#include "src/sim/simulator.hpp"

namespace soc::index {

enum class DiffusionMethod : std::uint8_t {
  kSpreading,  // SID: the sender alone picks L targets on each dimension
  kHopping,    // HID: indexes relay from index-node to index-node (Alg. 2)
};

/// Two defensible readings of the paper's spreading method (Fig. 3(a)):
/// the figure shows index nodes only on the *sender's* axis tracks
/// (d·L messages, no cascade), while the cost analysis ω = L(L^d−1)/(L−1)
/// implies receivers open the next dimension like the hopping method.
/// The strict reading reproduces the paper's SID-vs-HID ranking and is the
/// default; the cascade reading is available for the interpretation
/// ablation (bench_ablation_spreading).
enum class SpreadingScope : std::uint8_t {
  kSenderTracks,  // strict Fig. 3(a): d·L direct messages, receivers store
  kCascade,       // ω-based: receivers spawn the next dimension themselves
};

struct InscanConfig {
  std::size_t index_fanout_L = 2;           ///< L (paper fixes it to 2)
  SimTime record_ttl = seconds(600);        ///< state message age
  SimTime state_update_period = seconds(400);
  SimTime diffusion_period = seconds(100);  ///< Alg. 1 "tiny cycle"
  SimTime index_refresh_period = seconds(900);
  SimTime index_entry_ttl = seconds(2700);
  std::size_t index_samples_per_level = 2;
  std::size_t pi_capacity = 64;
  /// An index entry only says "this node holds records"; it stays useful
  /// well past one record TTL because duty caches refill every update
  /// cycle, so it outlives the 600 s record age.
  SimTime pi_ttl = seconds(1800);
  DiffusionMethod diffusion = DiffusionMethod::kHopping;
  SpreadingScope spreading_scope = SpreadingScope::kSenderTracks;
  IndexSelectPolicy select_policy = IndexSelectPolicy::kRandomPowerLevel;
  std::size_t route_ttl = 512;              ///< safety cap on greedy hops
  bool long_link_routing = true;            ///< use index links in routing
  std::size_t state_msg_bytes = 200;
  std::size_t index_msg_bytes = 64;
  std::size_t probe_msg_bytes = 48;
  double periodic_jitter = 0.1;
};

class IndexSystem {
 public:
  /// Supplies a node's current availability record when it is time to
  /// publish; nullopt suppresses the update (e.g. node busy joining).
  using AvailabilityProvider =
      std::function<std::optional<Record>(NodeId)>;

  IndexSystem(sim::Simulator& sim, net::MessageBus& bus, can::CanSpace& space,
              InscanConfig config, Rng rng);

  void set_availability_provider(AvailabilityProvider provider) {
    provider_ = std::move(provider);
  }

  /// Hook the CanSpace listener so records re-home on zone changes.
  void attach_to_space();

  /// Start protocol state and periodic processes for a member (the node
  /// must already be in the CanSpace).
  void add_node(NodeId id);
  /// Drop protocol state (overlay departure).
  void remove_node(NodeId id);
  [[nodiscard]] bool tracks(NodeId id) const { return state_.contains(id); }
  /// Storage density over the per-node maps (max slot_span/size).
  [[nodiscard]] double span_ratio() const {
    return std::max(state_.span_ratio(), last_location_.span_ratio());
  }

  /// A partitioned-out member's protocol state, extracted by park_node()
  /// before the overlay teardown and handed back to restore_node() at heal
  /// time.  The RNG rides along so the node's draw stream survives the cut.
  struct ParkedNode {
    RecordStore cache;
    PiList pi;
    IndexTable table;
    Rng rng;
  };

  /// Extract `id`'s full NodeState ahead of a partition teardown.  The
  /// caller runs the normal departure path next (remove_node + space
  /// leave); because the state moves out *first*, the takeover node
  /// re-homes an empty cache — records behind the cut are unreachable from
  /// the majority until the heal.
  [[nodiscard]] ParkedNode park_node(NodeId id);

  /// Re-enter `id` (already re-joined to the CanSpace) with its parked
  /// stale state.  Reconciliation rides the existing maintenance paths:
  /// expired records are pruned, records the node's new zone no longer
  /// covers are re-routed to their current duty nodes as ordinary state
  /// updates, the stale index table refreshes via bootstrap probes, and
  /// the periodic processes restart on the parked RNG stream.
  void restore_node(NodeId id, ParkedNode parked);

  [[nodiscard]] RecordStore& cache(NodeId id);
  [[nodiscard]] PiList& pi_list(NodeId id);
  [[nodiscard]] IndexTable& table(NodeId id);

  using ArriveFn = InlineFn<void(NodeId)>;

  /// Route a message greedily toward `target`, one bus message per hop;
  /// `on_arrive` runs at the owner of the target point.  With
  /// long_link_routing the index tables serve as additional fingers
  /// (INSCAN's O(log² n) routing); otherwise plain CAN neighbors only.
  /// The route allocates once (shared target/callback context); every
  /// per-hop forwarding closure stays inside the event-queue slab.
  void route(NodeId from, const can::Point& target, net::MsgType type,
             std::size_t bytes, ArriveFn on_arrive);

  /// Publish `id`'s availability record now (also runs periodically).
  void publish_now(NodeId id);

  /// Run one Alg. 1 index-sender round for `id` now (also periodic).
  void diffuse_now(NodeId id);

  /// Launch one probe walk along (dim, dir) for `id` now (also periodic).
  void probe_now(NodeId id, std::size_t dim, can::Direction dir);

  /// Pick a NINode per the configured policy (exposed for tests).
  [[nodiscard]] std::optional<NodeId> pick_index_node(NodeId id,
                                                      std::size_t dim,
                                                      can::Direction dir);

  /// Ids with materialized protocol state, ascending (fuzz/diagnostics).
  [[nodiscard]] std::vector<NodeId> tracked_ids() const;

  /// Membership-consistency oracle (sim_fuzz): the set of nodes with
  /// materialized NodeState must be exactly the CanSpace member set, and
  /// every filed last-location must belong to a tracked node.  The PR-3
  /// ghost-walk bug is precisely a violation here — a probe walk whose
  /// origin departed re-materializing state for a non-member.  Returns an
  /// empty string when consistent, else a description.
  [[nodiscard]] std::string check_membership_consistency() const;

  /// Protocol activity counters (diagnostics and tests).
  struct Activity {
    std::uint64_t diffusion_rounds = 0;      ///< periodic sender wakeups
    std::uint64_t diffusion_initiations = 0; ///< rounds with non-empty cache
    std::uint64_t diffusion_relays = 0;      ///< Alg. 2 handler invocations
    std::uint64_t publishes = 0;
    std::uint64_t invalidations = 0;
  };
  [[nodiscard]] const Activity& activity() const { return activity_; }

  /// Bytes claimed by the per-node index state: record caches, PILists,
  /// index tables, the dense maps themselves and the last-location map
  /// (attribution-profiler hook; O(members), report-time only).
  [[nodiscard]] std::size_t mem_bytes() const {
    std::size_t b = state_.mem_bytes() + last_location_.mem_bytes() +
                    dir_scratch_.capacity() * sizeof(NodeId);
    for (const auto& [id, st] : state_) {
      (void)id;
      b += st.cache.mem_bytes() + st.pi.mem_bytes() + st.table.mem_bytes();
    }
    return b;
  }

  [[nodiscard]] const InscanConfig& config() const { return config_; }
  [[nodiscard]] can::CanSpace& space() { return space_; }
  [[nodiscard]] net::MessageBus& bus() { return bus_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  struct NodeState {
    RecordStore cache;
    PiList pi;
    IndexTable table;
    Rng rng;
  };

  struct RouteCtx;

  /// One directional probe walk's state, shared across its hop closures
  /// (allocated once per walk, like RouteCtx) so every per-hop closure is
  /// {this, walk, next} and stays inside the 48-byte InlineFn buffer — no
  /// heap fallback per probe hop.
  struct ProbeWalk {
    NodeId origin;
    SimTime started_at = 0;
    std::uint32_t dim = 0;
    can::Direction dir = can::Direction::kNegative;
    std::uint32_t hops = 0;
    std::uint32_t level = 0;
    std::vector<IndexTable::Entry> found;
  };

  NodeState& state(NodeId id);
  void start_periodics(NodeId id);
  void route_step(NodeId at, std::size_t ttl,
                  const std::shared_ptr<RouteCtx>& ctx);
  void handle_diffuse(NodeId at, NodeId subject, std::size_t dim,
                      std::size_t ttl);
  /// SID spreading: emit L next-dimension messages from `at` (the sender
  /// picks all same-dimension targets itself).
  void spread_dimension(NodeId at, NodeId subject, std::size_t dim);
  void probe_step(NodeId at, const std::shared_ptr<ProbeWalk>& walk);

  sim::Simulator& sim_;
  net::MessageBus& bus_;
  can::CanSpace& space_;
  InscanConfig config_;
  Rng rng_;
  AvailabilityProvider provider_;
  DenseNodeMap<NodeState> state_;
  /// Where each provider's previous record was filed, so a republish can
  /// invalidate the stale copy when the availability point moved zones.
  DenseNodeMap<can::Point> last_location_;
  /// Scratch for allocation-free directional-neighbor filtering (the
  /// simulation is single-threaded; every user copies its pick out before
  /// the next refill).
  std::vector<NodeId> dir_scratch_;
  Activity activity_;
};

}  // namespace soc::index
