// Availability records — the state messages nodes publish into the CAN
// space — and the per-node record cache γ.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/can/geometry.hpp"
#include "src/common/resource_vector.hpp"
#include "src/common/types.hpp"

namespace soc::index {

/// One advertised availability vector.  `location` is the CAN point the
/// record was filed under (normalized availability, plus the virtual
/// coordinate in the VD variant), kept with the record so zone changes can
/// re-home it without re-deriving the mapping.
struct Record {
  NodeId provider;
  ResourceVector availability;
  can::Point location;
  SimTime published_at = 0;
  SimTime expires_at = 0;

  [[nodiscard]] bool expired(SimTime now) const { return now >= expires_at; }
  [[nodiscard]] bool qualifies(const ResourceVector& demand) const {
    return availability.dominates(demand);
  }
};

/// The cache γ a duty node keeps: the newest record per provider, with TTL
/// expiry (the paper uses a 600 s record age and 400 s update cycle).
///
/// Storage is a sorted key array indexing a record slab: `keys_` holds the
/// provider ids in ascending order, `slots_[i]` names the slab slot of
/// `keys_[i]`'s record, and the ~170-byte Records themselves live in
/// `slab_` and never move once written (erased slots go to a free list).
/// A first-insert/erase therefore shifts 8 bytes per entry instead of a
/// whole Record — the difference between ~9.5 µs and ~6.5 µs per op on a
/// 2048-entry store under a skewed (hot-duty-node) workload.  The property
/// the query pipeline relies on is unchanged: every result list
/// (`qualified`, `all_live`, the extract_* moves) comes out in ascending
/// provider order by construction, so candidate order is deterministic
/// instead of hash-iteration order.
class RecordStore {
 public:
  /// Insert or refresh the provider's record.
  void put(const Record& r);

  /// Remove a provider's record (e.g. once its resources were claimed).
  bool erase(NodeId provider);

  /// Non-expired record count.
  [[nodiscard]] std::size_t live_count(SimTime now) const;
  [[nodiscard]] bool has_live_records(SimTime now) const;

  /// All non-expired records that componentwise dominate the demand, in
  /// ascending provider order.
  [[nodiscard]] std::vector<Record> qualified(const ResourceVector& demand,
                                              SimTime now) const;

  /// Allocation-free variant: fill a caller scratch buffer (cleared first)
  /// — the per-harvest path of the query engines reuses one buffer.
  void qualified_into(const ResourceVector& demand, SimTime now,
                      std::vector<Record>& out) const;

  /// Count of non-expired dominating records, without copying any.
  [[nodiscard]] std::size_t qualified_count(const ResourceVector& demand,
                                            SimTime now) const;

  /// All non-expired records (for re-homing and the full range query), in
  /// ascending provider order.
  [[nodiscard]] std::vector<Record> all_live(SimTime now) const;

  /// Extract (remove and return) the live records lying inside `zone` —
  /// used when zone ownership moves.
  std::vector<Record> extract_in_zone(const can::Zone& zone, SimTime now);

  /// Extract every record unconditionally (owner departure).
  std::vector<Record> extract_all();

  /// Drop expired entries; called opportunistically.
  void prune(SimTime now);

  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  /// Bytes claimed by the key/slot arrays and the record slab
  /// (attribution-profiler hook; Records are flat — no heap members).
  [[nodiscard]] std::size_t mem_bytes() const {
    return keys_.capacity() * sizeof(NodeId) +
           slots_.capacity() * sizeof(std::uint32_t) +
           slab_.capacity() * sizeof(Record) +
           free_.capacity() * sizeof(std::uint32_t);
  }

  /// Structural oracle (sim_fuzz): the key array — expired entries
  /// included — is strictly ascending by provider id (sorted and
  /// duplicate-free), every key's slab slot is in range and unique, the
  /// slot's record names the key's provider, and used + free slots account
  /// for the whole slab.  Every accessor's ordering guarantee follows from
  /// the key-order property; the rest pins the slab bookkeeping.
  [[nodiscard]] bool verify_sorted_unique() const;

 private:
  /// Index into keys_ of the first entry >= provider.
  [[nodiscard]] std::size_t key_lower_bound(NodeId provider) const;
  /// Take a slot off the free list (or grow the slab) and write `r` there.
  [[nodiscard]] std::uint32_t alloc_slot(const Record& r);
  /// Record of the i-th key, in key (ascending provider) order.
  [[nodiscard]] const Record& at(std::size_t i) const {
    return slab_[slots_[i]];
  }

  std::vector<NodeId> keys_;           // sorted provider ids
  std::vector<std::uint32_t> slots_;   // keys_[i]'s record is slab_[slots_[i]]
  std::vector<Record> slab_;           // stable record storage
  std::vector<std::uint32_t> free_;    // recycled slab slots (LIFO)
};

}  // namespace soc::index
