// Availability records — the state messages nodes publish into the CAN
// space — and the per-node record cache γ.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "src/can/geometry.hpp"
#include "src/common/resource_vector.hpp"
#include "src/common/types.hpp"

namespace soc::index {

/// One advertised availability vector.  `location` is the CAN point the
/// record was filed under (normalized availability, plus the virtual
/// coordinate in the VD variant), kept with the record so zone changes can
/// re-home it without re-deriving the mapping.
struct Record {
  NodeId provider;
  ResourceVector availability;
  can::Point location;
  SimTime published_at = 0;
  SimTime expires_at = 0;

  [[nodiscard]] bool expired(SimTime now) const { return now >= expires_at; }
  [[nodiscard]] bool qualifies(const ResourceVector& demand) const {
    return availability.dominates(demand);
  }
};

/// The cache γ a duty node keeps: the newest record per provider, with TTL
/// expiry (the paper uses a 600 s record age and 400 s update cycle).
class RecordStore {
 public:
  /// Insert or refresh the provider's record.
  void put(const Record& r);

  /// Remove a provider's record (e.g. once its resources were claimed).
  bool erase(NodeId provider);

  /// Non-expired record count.
  [[nodiscard]] std::size_t live_count(SimTime now) const;
  [[nodiscard]] bool has_live_records(SimTime now) const;

  /// All non-expired records that componentwise dominate the demand.
  [[nodiscard]] std::vector<Record> qualified(const ResourceVector& demand,
                                              SimTime now) const;

  /// All non-expired records (for re-homing and the full range query).
  [[nodiscard]] std::vector<Record> all_live(SimTime now) const;

  /// Extract (remove and return) the live records lying inside `zone` —
  /// used when zone ownership moves.
  std::vector<Record> extract_in_zone(const can::Zone& zone, SimTime now);

  /// Extract every record unconditionally (owner departure).
  std::vector<Record> extract_all();

  /// Drop expired entries; called opportunistically.
  void prune(SimTime now);

  [[nodiscard]] std::size_t size() const { return records_.size(); }

 private:
  std::unordered_map<NodeId, Record> records_;
};

}  // namespace soc::index
