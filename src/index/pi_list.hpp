// PIList — the Positive Index List each node accumulates from the proactive
// index diffusion (Alg. 1/2): identifiers of nodes that currently hold
// records, received from the positive direction.  Bounded capacity with
// stale-first eviction; entries expire on a TTL so departed or drained
// index nodes fade out.
//
// Storage is a flat array kept sorted by id: the capacity is small (tens of
// entries), so binary search plus contiguous scans beat a hash map on every
// operation, and iteration order is deterministic by construction (the old
// unordered_map sorted before sampling; here the live set already comes out
// id-ordered).  Stale-first eviction ties break toward the smallest id.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace soc::index {

class PiList {
 public:
  PiList(std::size_t capacity, SimTime entry_ttl)
      : capacity_(capacity), ttl_(entry_ttl) {
    SOC_CHECK(capacity > 0);
    SOC_CHECK(entry_ttl > 0);
  }

  /// Record that `id` advertised itself at time `now` (refreshes an
  /// existing entry).  Evicts the stalest entry when full.
  void add(NodeId id, SimTime now);

  void erase(NodeId id);
  void clear() { entries_.clear(); }

  [[nodiscard]] std::size_t live_count(SimTime now) const;
  [[nodiscard]] bool contains_live(NodeId id, SimTime now) const;

  /// Up to `k` distinct random live entries (Alg. 4 line 1).
  [[nodiscard]] std::vector<NodeId> sample(std::size_t k, SimTime now,
                                           Rng& rng) const;

  void prune(SimTime now);

  /// Bytes claimed by the entry array (attribution-profiler hook).
  [[nodiscard]] std::size_t mem_bytes() const {
    return entries_.capacity() * sizeof(Entry);
  }

 private:
  struct Entry {
    NodeId id;
    SimTime heard_at = 0;
  };

  [[nodiscard]] std::vector<Entry>::iterator lower_bound(NodeId id);
  [[nodiscard]] std::vector<Entry>::const_iterator lower_bound(
      NodeId id) const;

  std::size_t capacity_;
  SimTime ttl_;
  std::vector<Entry> entries_;  // sorted by id
};

}  // namespace soc::index
