#include "src/core/newscast_protocol.hpp"

#include <algorithm>

namespace soc::core {

NewscastProtocol::NewscastProtocol(sim::Simulator& sim, net::MessageBus& bus,
                                   gossip::NewscastConfig config, Rng rng)
    : system_(sim, bus, config, rng.fork("newscast")),
      rng_(rng.fork("newscast-protocol")) {}

void NewscastProtocol::set_availability_source(AvailabilityFn fn) {
  system_.set_availability_provider(std::move(fn));
}

void NewscastProtocol::on_join(NodeId id) {
  // Bootstrap contacts: a random sample of current members (a tracker or
  // any out-of-band introduction service would provide these).
  std::vector<NodeId> bootstrap;
  if (!members_.empty()) {
    for (const std::size_t i :
         rng_.sample_indices(members_.size(), std::size_t{8})) {
      bootstrap.push_back(members_[i]);
    }
  }
  system_.add_node(id, bootstrap);
  members_.push_back(id);
}

void NewscastProtocol::on_leave(NodeId id) {
  system_.remove_node(id);
  members_.erase(std::remove(members_.begin(), members_.end(), id),
                 members_.end());
}

void NewscastProtocol::query(NodeId requester, const ResourceVector& demand,
                             std::size_t want, QueryCallback cb) {
  system_.query(requester, demand, want,
                [cb = std::move(cb)](std::vector<gossip::GossipCandidate> f) {
                  std::vector<Discovered> out;
                  out.reserve(f.size());
                  for (auto& c : f) {
                    out.push_back(Discovered{c.provider, c.availability});
                  }
                  cb(std::move(out));
                });
}

}  // namespace soc::core
