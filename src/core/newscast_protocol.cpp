#include "src/core/newscast_protocol.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace soc::core {

NewscastProtocol::NewscastProtocol(sim::Simulator& sim, net::MessageBus& bus,
                                   gossip::NewscastConfig config, Rng rng)
    : system_(sim, bus, config, rng.fork("newscast")),
      rng_(rng.fork("newscast-protocol")) {}

void NewscastProtocol::set_availability_source(AvailabilityFn fn) {
  system_.set_availability_provider(std::move(fn));
}

void NewscastProtocol::on_join(NodeId id) {
  // Bootstrap contacts: a random sample of current members (a tracker or
  // any out-of-band introduction service would provide these).
  std::vector<NodeId> bootstrap;
  if (!members_.empty()) {
    for (const std::size_t i :
         rng_.sample_indices(members_.size(), std::size_t{8})) {
      bootstrap.push_back(members_[i]);
    }
  }
  system_.add_node(id, bootstrap);
  members_.push_back(id);
}

void NewscastProtocol::on_leave(NodeId id) {
  // Death drops any parked partition state: there is no host left to rejoin.
  parked_.erase(id);
  system_.remove_node(id);
  members_.erase(std::remove(members_.begin(), members_.end(), id),
                 members_.end());
}

void NewscastProtocol::on_partition_out(NodeId id) {
  if (!system_.tracks(id)) return;
  SOC_CHECK(!parked_.contains(id));
  parked_.emplace(id, system_.park_node(id));
  system_.remove_node(id);
  members_.erase(std::remove(members_.begin(), members_.end(), id),
                 members_.end());
}

void NewscastProtocol::on_rejoin(NodeId id) {
  const auto it = parked_.find(id);
  if (it == parked_.end()) {
    on_join(id);
    return;
  }
  std::vector<gossip::ViewEntry> view = std::move(it->second);
  parked_.erase(it);
  // The stale pre-cut view is the node's only way back in: its surviving
  // entries are the re-entry contacts, and merge-by-freshness gossip
  // reconciles from there.  No tracker re-introduction on heal.
  system_.restore_node(id, std::move(view));
  members_.push_back(id);
}

std::vector<NodeId> NewscastProtocol::parked_ids() const {
  std::vector<NodeId> out;
  out.reserve(parked_.size());
  for (const auto& [id, view] : parked_) out.push_back(id);
  return out;
}

StaleDebt NewscastProtocol::stale_debt(
    const std::function<bool(NodeId)>& reachable, SimTime now) const {
  StaleDebt debt;
  const SimTime ttl = system_.config().entry_ttl;
  for (const NodeId id : members_) {
    for (const gossip::ViewEntry& e : system_.view_of(id)) {
      if ((now - e.heard_at) >= ttl) continue;
      if (!reachable(e.id)) ++debt.dead_provider;
    }
  }
  return debt;
}

void NewscastProtocol::query(NodeId requester, const ResourceVector& demand,
                             std::size_t want, QueryCallback cb) {
  system_.query(requester, demand, want,
                [cb = std::move(cb)](std::vector<gossip::GossipCandidate> f) {
                  std::vector<Discovered> out;
                  out.reserve(f.size());
                  for (auto& c : f) {
                    out.push_back(Discovered{c.provider, c.availability});
                  }
                  cb(std::move(out));
                });
}

}  // namespace soc::core
