// The Self-Organizing Cloud experiment driver: builds the host population
// (Table I), runs Poisson task submission (Table II), drives the full task
// lifecycle — query → best-fit selection → dispatch → admission re-check
// (Inequality 2, where multi-dimensional contention bites) → PSM execution
// — plus node churn, and reports the paper's metrics.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/dense_node_map.hpp"
#include "src/common/flat_map.hpp"
#include "src/core/host_table.hpp"
#include "src/core/protocol.hpp"
#include "src/gossip/newscast.hpp"
#include "src/index/inscan.hpp"
#include "src/khdn/khdn.hpp"
#include "src/metrics/latency_histogram.hpp"
#include "src/metrics/task_metrics.hpp"
#include "src/net/message_bus.hpp"
#include "src/net/topology.hpp"
#include "src/obs/registry.hpp"
#include "src/psm/checkpoint.hpp"
#include "src/psm/scheduler.hpp"
#include "src/query/query_engine.hpp"
#include "src/scenario/spec.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/serving.hpp"

namespace soc::scenario {
class ScenarioEngine;
}

namespace soc::core {

/// The protocols compared in §IV.
enum class ProtocolKind : std::uint8_t {
  kSidCan,       ///< spreading index diffusion
  kHidCan,       ///< hopping index diffusion (the paper's recommendation)
  kSidCanSos,    ///< SID + Slack-on-Submission
  kHidCanSos,    ///< HID + Slack-on-Submission
  kSidCanVd,     ///< SID + virtual dimension [27]
  kNewscast,     ///< gossip baseline
  kKhdnCan,      ///< K-hop DHT-neighbor baseline
};

[[nodiscard]] std::string protocol_name(ProtocolKind kind);

/// All protocol kinds in declaration order (sweep grids, CLI help).
inline constexpr std::array<ProtocolKind, 7> kAllProtocols{
    ProtocolKind::kSidCan,    ProtocolKind::kHidCan,
    ProtocolKind::kSidCanSos, ProtocolKind::kHidCanSos,
    ProtocolKind::kSidCanVd,  ProtocolKind::kNewscast,
    ProtocolKind::kKhdnCan};

/// Inverse of protocol_name.  Accepts the exact display name ("HID-CAN")
/// and a shell-friendly lowercase alias with '_' or '-' for the '+'
/// ("hid-can+sos" == "hid_can_sos").  nullopt for unknown names — sweep
/// specs must fail loudly, a shard silently running the wrong protocol
/// would merge wrong numbers.
[[nodiscard]] std::optional<ProtocolKind> protocol_from_name(
    const std::string& name);

/// What happens to tasks running on a host that churns out of the overlay.
enum class ChurnTaskPolicy : std::uint8_t {
  /// The paper's §IV.B model: churn only removes overlay/discovery state;
  /// running tasks execute to completion (execution fault-tolerance is
  /// future work there).
  kDetachedExecution,
  /// Pessimistic model: tasks die with their host and count as failed.
  kTasksLost,
  /// The paper's named future-work extension: periodic checkpoints flow
  /// back to the origin, which re-queries and restarts from the last
  /// snapshot when the execution host departs.
  kCheckpointRestart,
};

/// Parameters of the checkpoint-restart extension.
struct CheckpointConfig {
  SimTime period = seconds(300);     ///< snapshot cadence per running task
  std::size_t max_restarts = 3;      ///< give up after this many restarts
  std::size_t snapshot_bytes = 4096; ///< checkpoint message size
};

struct ExperimentConfig {
  ProtocolKind protocol = ProtocolKind::kHidCan;
  std::size_t nodes = 512;
  double demand_ratio = 0.5;                 ///< λ
  SimTime duration = seconds(21600);         ///< paper: 86400 (one day)
  SimTime sample_step = seconds(3600);       ///< hourly series
  double mean_interarrival_s = 3000.0;       ///< Poisson per node
  double churn_dynamic_degree = 0.0;         ///< Fig. 8's dynamic degree
  double churn_window_s = 3000.0;            ///< one task lifetime
  ChurnTaskPolicy churn_task_policy = ChurnTaskPolicy::kDetachedExecution;
  CheckpointConfig checkpoint;
  std::uint64_t seed = 1;

  std::size_t want_results = 1;              ///< δ (first-k)
  std::size_t max_query_retries = 2;
  SimTime retry_backoff = seconds(20);
  SimTime dispatch_timeout = seconds(120);
  /// O(n)-per-failure ground-truth scan (slower; off for benches).
  bool diagnose_failures = false;

  /// Opt-in scenario schedule (src/scenario): phased churn, join bursts,
  /// mass failures, capacity skew, partitions.  A disabled spec (the
  /// default) leaves the experiment bit-identical to one built before the
  /// scenario layer existed — no engine is constructed and no RNG stream is
  /// forked.
  scenario::ScenarioSpec scenario;

  /// Opt-in correlated link faults (src/net/link_model): burst loss,
  /// reordering, duplication, stragglers.  Disabled (the default) forks no
  /// RNG stream and leaves every delivery bit-identical.
  net::LinkFaultConfig link_faults;

  /// Opt-in serving workload shaping (src/workload/serving): closed-loop
  /// clients, Zipfian hot-key demand skew, diurnal arrival curve.  The
  /// disabled default forks no RNG stream and runs the exact open-loop
  /// Poisson paths, so default trajectories stay bit-identical.
  workload::ServingConfig serving;

  index::InscanConfig inscan;
  query::QueryConfig query;
  gossip::NewscastConfig newscast;           ///< view_size auto if 0
  khdn::KhdnConfig khdn;
  net::TopologyConfig topology;
  workload::NodeGenConfig nodegen;
  workload::TaskGenConfig taskgen;           ///< demand_ratio is overwritten
  psm::VmOverhead overhead;
};

struct ExperimentResults {
  std::string protocol;
  std::vector<metrics::SeriesSample> series;
  std::uint64_t generated = 0;
  std::uint64_t finished = 0;
  std::uint64_t failed = 0;
  double t_ratio = 0.0;
  double f_ratio = 0.0;
  double fairness = 1.0;
  /// Paper's "message delivery cost": messages sent/forwarded per node.
  double msg_cost_per_node = 0.0;
  std::uint64_t total_messages = 0;
  /// Delivery outcomes: arrived at a live host, dropped because the
  /// destination churned out in flight (or the link model lost it), or
  /// swallowed by an active network partition.
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t messages_partitioned = 0;
  /// Per-message-type traffic breakdown (types with zero sends omitted).
  struct MsgTypeCounts {
    std::string type;
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    std::uint64_t partitioned = 0;
  };
  std::vector<MsgTypeCounts> traffic_by_type;
  double avg_query_delay_s = 0.0;
  double avg_dispatch_attempts = 0.0;
  std::uint64_t events_executed = 0;

  /// Diagnostics (only meaningful when config.diagnose_failures is set):
  /// failures split by ground truth at failure time.
  std::uint64_t fail_infeasible = 0;  ///< no alive host could admit the task
  std::uint64_t fail_feasible = 0;    ///< a host existed but was not found
  std::uint64_t fail_undiscoverable = 0;  ///< feasible, but no cached record
  std::uint64_t empty_query_results = 0;
  std::uint64_t dispatch_rejects = 0;

  /// Churn fault-tolerance accounting.
  std::uint64_t tasks_killed_by_churn = 0;   ///< aborted with their host
  std::uint64_t checkpoint_restarts = 0;     ///< restart attempts issued
  std::uint64_t checkpoint_snapshots = 0;    ///< snapshots shipped
  double wasted_work_rate_seconds = 0.0;     ///< progress lost to churn

  /// Peak stale-record debt: live cached records naming a dead/unreachable
  /// provider, and records filed at a node that no longer owns their
  /// location (see core::StaleDebt).  Sampled at both partition edges
  /// (just after the cut, when the damage peaks, and just before rejoin
  /// reconciles what remains) and at collection time; the maximum of
  /// those samples is reported, so a healed-and-expired run still shows
  /// what the fault cost.
  std::uint64_t stale_records_dead_provider = 0;
  std::uint64_t stale_records_misplaced = 0;

  /// Per-query latency distributions (always recorded — passive integer
  /// counters on existing paths, no extra events or RNG draws):
  /// submit → first qualified candidate in hand (fresh submissions only;
  /// checkpoint restarts re-enter the query pipeline mid-life), and
  /// submit → task finished (spanning restarts).  Mergeable bucket-wise
  /// across sweep shards.
  metrics::LatencyHistogram latency_first_result;
  metrics::LatencyHistogram latency_finish;

  /// Max slot_span()/size() over the protocol's per-node state maps at
  /// collection time: 1.0 when dense, bounded by the DenseNodeMap
  /// compaction factor under churn (unbounded growth here is the memory
  /// regression the scale lane guards against).
  double slot_span_ratio = 1.0;

  /// Full metrics-registry snapshot at collection time, sorted by name.
  /// New metrics land in every report (bench --json "metrics" object,
  /// sweep shard "metrics" array) through this one vector instead of
  /// being hand-plumbed per field.  Samples flagged deterministic=false
  /// (RSS gauges, wall-time profiles) are excluded from byte-compared
  /// artifacts, the same regime as wall_seconds.
  std::vector<obs::MetricSample> metrics;
};

/// Run one full simulation; deterministic in config.seed.
[[nodiscard]] ExperimentResults run_experiment(const ExperimentConfig& config);

/// The full simulated system, exposed so examples and tests can drive it
/// step by step instead of only end-to-end.
class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Build hosts, join them to the protocol, start arrivals and churn.
  void setup();
  /// Run the simulation clock to the configured duration.
  void run();
  /// Collect results (valid after run(), or mid-flight for a snapshot).
  [[nodiscard]] ExperimentResults results() const;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::MessageBus& bus() { return *bus_; }
  [[nodiscard]] DiscoveryProtocol& protocol() { return *protocol_; }
  [[nodiscard]] const metrics::TaskMetrics& task_metrics() const {
    return metrics_;
  }
  [[nodiscard]] std::size_t alive_nodes() const;

  /// Submit one task immediately from `origin` (examples/tests).
  void submit_task(NodeId origin);

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }

  /// The experiment's metric registry: bus traffic, task counters, stale
  /// debt, storage footprints — everything results() snapshots into
  /// ExperimentResults::metrics.  Exposed so report tools can add their
  /// own gauges (e.g. phase-boundary RSS).
  [[nodiscard]] obs::Registry& registry() { return registry_; }

  /// Per-subsystem storage footprint at this instant: event queue, bus
  /// slab, host table, in-flight map, plus the protocol's buckets (CAN
  /// space, index caches, gossip views...).  The sum is the simulator's
  /// own accounted memory — bench_scale compares it against peak RSS.
  [[nodiscard]] obs::MemBreakdown mem_breakdown() const;

  // -- Scenario-engine hooks (src/scenario/engine.cpp) and fuzz oracles.
  // The engine drives population changes through the exact same paths the
  // built-in Poisson churn uses, so scenario events exercise identical
  // maintenance/rehome/teardown machinery.

  /// Spawn one fresh host and start its Poisson task arrivals (the same
  /// sequence a churn replacement join performs).
  NodeId scenario_join();
  /// Depart `id` (no-op when already gone); same path as churn departures.
  void scenario_depart(NodeId id);
  [[nodiscard]] bool host_alive(NodeId id) const;
  /// Alive host ids in ascending order.
  [[nodiscard]] std::vector<NodeId> alive_ids() const;

  /// Cut off ≈ `fraction` of the alive population along LAN boundaries
  /// (spatially correlated: whole LAN groups starting at `start_lan`,
  /// wrapping).  Cut hosts stay *up* — their tasks keep arriving and
  /// failing — but leave the overlay via on_partition_out and their
  /// cross-cut messages resolve as `partitioned`.  The cut is capped so at
  /// least 3 hosts stay connected.  Returns false (and changes nothing)
  /// when no LAN group fits under the cap or a partition is already active.
  bool scenario_partition(double fraction, std::size_t start_lan);
  /// Heal the partition: clear the bus cut and on_rejoin every still-alive
  /// cut host with its parked stale state.  No-op when none is active.
  void scenario_heal();
  /// Whether a bus-level cut is in place (survives all victims dying).
  [[nodiscard]] bool partition_active() const {
    return bus_->partition_active();
  }
  /// Currently cut-off host ids, ascending (fuzz oracle: must equal the
  /// protocol's parked_ids()).
  [[nodiscard]] const std::vector<NodeId>& partitioned_ids() const {
    return partitioned_;
  }
  [[nodiscard]] bool is_partitioned(NodeId id) const;
  /// LAN group count of the underlying topology (partition epicenters).
  [[nodiscard]] std::size_t lan_count() const { return topology_->lan_count(); }

  /// Internal-accounting oracle for the invariant checker: alive counter,
  /// host-map occupancy and in-flight placements must agree.  Returns an
  /// empty string when consistent, else a description of the violation.
  [[nodiscard]] std::string check_accounting() const;

  /// The scenario engine, when the config enables one (else nullptr).
  [[nodiscard]] const scenario::ScenarioEngine* scenario_engine() const {
    return scenario_engine_.get();
  }

 private:
  struct TaskRun;  // lifecycle context

  NodeId spawn_host();
  void start_arrivals(NodeId id);
  /// One link of the Poisson arrival chain: draw the next gap, stop past
  /// the horizon, otherwise submit-and-recurse at the drawn time.
  void schedule_next_arrival(NodeId id, double mean_s);
  /// One closed-loop client: think (exponential), then issue; the next
  /// issue is chained from the task's completion, not from a rate.
  void schedule_client_issue(NodeId id);
  /// Shared submission path; `on_complete` (nullable) fires exactly once
  /// when the task settles terminally (finished, failed, or lost).
  void submit_task_internal(NodeId origin, std::function<void()> on_complete);
  /// Replace a fresh Table II demand draw by a Zipf-popular key profile.
  void apply_demand_profile(psm::TaskSpec& spec);
  void start_churn();
  /// One link of the churn chain (depart + join per firing).
  void schedule_next_churn(double mean_gap_s);
  void start_checkpointing();
  void on_host_departed(NodeId victim);
  void restart_from_checkpoint(const psm::PsmScheduler::Progress& progress,
                               std::function<void()> on_complete);
  void begin_query(const std::shared_ptr<TaskRun>& run);
  void on_candidates(const std::shared_ptr<TaskRun>& run,
                     std::vector<Discovered> candidates);
  void dispatch(const std::shared_ptr<TaskRun>& run, NodeId provider);
  void retry_or_fail(const std::shared_ptr<TaskRun>& run);
  void on_host_finished_task(NodeId host, const psm::CompletionInfo& info);
  /// Release schedulers of dead hosts whose last detached task finished.
  /// Deferred to the next safe point (the completion callback fires from
  /// inside the scheduler, which must not destroy itself mid-loop).
  void drain_cold_reap();
  [[nodiscard]] double efficiency_of(const psm::TaskSpec& spec,
                                     SimTime finished_at) const;

  ExperimentConfig config_;
  sim::Simulator sim_;
  Rng rng_;
  std::unique_ptr<scenario::ScenarioEngine> scenario_engine_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<net::MessageBus> bus_;
  std::unique_ptr<DiscoveryProtocol> protocol_;
  workload::NodeGenerator node_gen_;
  workload::TaskGenerator task_gen_;
  HostTable hosts_;  ///< SoA hot fields + stable cold scheduler slab
  struct Placement {
    psm::TaskSpec spec;
    NodeId provider;
    /// Closed-loop client wakeup (empty unless serving.closed_loop()).
    std::function<void()> on_complete;
  };
  FlatMap<TaskId, Placement> in_flight_;  ///< open-addressing; no node allocs
  psm::CheckpointStore checkpoints_;
  metrics::TaskMetrics metrics_;
  metrics::LatencyHistogram lat_first_result_;
  metrics::LatencyHistogram lat_finish_;
  /// Serving skew state, populated only when config.serving.skewed().
  std::optional<Rng> serving_rng_;
  std::optional<workload::ZipfGenerator> zipf_;
  std::vector<ResourceVector> demand_profiles_;
  RunningStats query_delay_s_;
  RunningStats dispatch_attempts_;
  ResourceVector avg_capacity_;
  double avg_wan_mbps_ = 1.0;
  std::size_t alive_count_ = 0;
  void sample_stale_debt();
  /// Debt of live, reachable hosts right now (the results()/gauge reading).
  [[nodiscard]] StaleDebt current_stale_debt() const;

  /// Register the standard gauges (bus per-type counters, task counters,
  /// stale debt, slot-span ratio, memory buckets) once the protocol and
  /// bus exist; called at the end of construction.
  void register_metrics();

  /// mutable: results() is const but folds the memory breakdown into the
  /// registry at snapshot time — observability state, not simulation state.
  mutable obs::Registry registry_;
  std::vector<NodeId> cold_reap_;  ///< dead+drained hosts awaiting release
  std::vector<NodeId> partitioned_;  ///< cut-off alive hosts, ascending
  StaleDebt peak_stale_debt_;  ///< max sampled at partition edges (results)
  bool setup_done_ = false;
  std::uint64_t fail_infeasible_ = 0;
  std::uint64_t fail_feasible_ = 0;
  std::uint64_t fail_undiscoverable_ = 0;
  std::uint64_t empty_query_results_ = 0;
  std::uint64_t dispatch_rejects_ = 0;
  std::uint64_t tasks_killed_by_churn_ = 0;
  std::uint64_t checkpoint_restarts_ = 0;
  std::uint64_t checkpoint_snapshots_ = 0;
  double wasted_work_ = 0.0;
};

}  // namespace soc::core
