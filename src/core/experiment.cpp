#include "src/core/experiment.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

#include "src/common/logging.hpp"
#include "src/core/khdn_protocol.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/trace.hpp"
#include "src/core/newscast_protocol.hpp"
#include "src/core/pidcan_protocol.hpp"
#include "src/scenario/engine.hpp"

namespace soc::core {

std::string protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kSidCan:
      return "SID-CAN";
    case ProtocolKind::kHidCan:
      return "HID-CAN";
    case ProtocolKind::kSidCanSos:
      return "SID-CAN+SoS";
    case ProtocolKind::kHidCanSos:
      return "HID-CAN+SoS";
    case ProtocolKind::kSidCanVd:
      return "SID-CAN+VD";
    case ProtocolKind::kNewscast:
      return "Newscast";
    case ProtocolKind::kKhdnCan:
      return "KHDN-CAN";
  }
  return "?";
}

std::optional<ProtocolKind> protocol_from_name(const std::string& name) {
  const auto canon = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '_' || c == '-' || c == '+') {
        out += '-';
      } else {
        out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    return out;
  };
  const std::string want = canon(name);
  for (const ProtocolKind kind : kAllProtocols) {
    if (canon(protocol_name(kind)) == want) return kind;
  }
  return std::nullopt;
}

// Lifecycle context for one submitted task.
struct Experiment::TaskRun {
  psm::TaskSpec spec;
  std::size_t attempts = 0;       // query attempts so far
  std::size_t dispatches = 0;     // dispatch attempts so far
  bool settled = false;           // placed or failed (guards timeouts)
  bool is_restart = false;        // checkpoint re-entry, not a fresh submit
  bool first_result_seen = false; // first-result latency already recorded
  std::unordered_set<NodeId> tried;  // providers that already rejected us
  std::vector<Discovered> backlog;   // untried candidates from the last query
  std::function<void()> on_complete;  // closed-loop client wakeup (nullable)
};

namespace {
/// submit → now as non-negative integer microseconds for the histograms.
std::uint64_t latency_us(SimTime submit, SimTime now) {
  return now > submit ? static_cast<std::uint64_t>(now - submit) : 0;
}

/// Logical async-span id for a task: origin and per-origin sequence.
/// Never pointer-derived — trace ids must be bit-deterministic per seed.
std::uint64_t trace_id(TaskId id) {
  return (static_cast<std::uint64_t>(id.origin.value) << 32) | id.seq;
}
}  // namespace

Experiment::Experiment(ExperimentConfig config)
    : config_(config), sim_(config.seed), rng_(sim_.rng().fork("experiment")),
      node_gen_([&config] {
        workload::NodeGenConfig ng = config.nodegen;
        // Scenario capacity skew is wired into the node generator so it
        // shapes the initial population and every later join alike.
        if (config.scenario.skew.enabled()) config.scenario.skew.apply(ng);
        return workload::NodeGenerator(ng);
      }()),
      task_gen_([&config] {
        workload::TaskGenConfig tg = config.taskgen;
        tg.demand_ratio = config.demand_ratio;
        return tg;
      }()),
      hosts_(sim_, config.overhead), avg_capacity_(psm::kDims) {
  topology_ = std::make_unique<net::Topology>(config_.topology,
                                              rng_.fork("topology"));
  bus_ = std::make_unique<net::MessageBus>(sim_, *topology_);
  bus_->set_liveness([this](NodeId id) { return hosts_.alive(id); });
  if (config_.link_faults.enabled) {
    bus_->enable_link_faults(config_.link_faults);
  }

  const ResourceVector cmax = node_gen_.cmax();
  const std::size_t n = config_.nodes;
  switch (config_.protocol) {
    case ProtocolKind::kSidCan:
    case ProtocolKind::kHidCan:
    case ProtocolKind::kSidCanSos:
    case ProtocolKind::kHidCanSos:
    case ProtocolKind::kSidCanVd: {
      PidCanOptions opt;
      opt.inscan = config_.inscan;
      opt.query = config_.query;
      const bool hopping = config_.protocol == ProtocolKind::kHidCan ||
                           config_.protocol == ProtocolKind::kHidCanSos;
      opt.inscan.diffusion = hopping ? index::DiffusionMethod::kHopping
                                     : index::DiffusionMethod::kSpreading;
      opt.slack_on_submission =
          config_.protocol == ProtocolKind::kSidCanSos ||
          config_.protocol == ProtocolKind::kHidCanSos;
      opt.virtual_dimension = config_.protocol == ProtocolKind::kSidCanVd;
      // Join routing cost ≈ the CAN route length at this scale.
      opt.maintenance_msgs_per_join = static_cast<std::size_t>(
          std::ceil(std::pow(static_cast<double>(std::max<std::size_t>(n, 2)),
                             1.0 / static_cast<double>(psm::kDims))));
      protocol_ = std::make_unique<PidCanProtocol>(
          sim_, *bus_, cmax, opt, rng_.fork("pidcan"));
      break;
    }
    case ProtocolKind::kNewscast: {
      gossip::NewscastConfig gc = config_.newscast;
      if (gc.view_size == 0 || gc.view_size == 11) {
        gc.view_size = std::max<std::size_t>(
            4, static_cast<std::size_t>(
                   std::ceil(std::log2(static_cast<double>(std::max<std::size_t>(n, 2))))));
      }
      protocol_ = std::make_unique<NewscastProtocol>(sim_, *bus_, gc,
                                                     rng_.fork("newscast"));
      break;
    }
    case ProtocolKind::kKhdnCan:
      protocol_ = std::make_unique<KhdnProtocol>(
          sim_, *bus_, cmax, config_.khdn, rng_.fork("khdn"));
      break;
  }

  if (config_.serving.skewed()) {
    // A dedicated fork keeps the skew draws off every other component's
    // stream; fixed per-key profiles mean a hot key re-demands the exact
    // same vector, concentrating load on the same duty-node region.
    serving_rng_.emplace(rng_.fork("serving"));
    zipf_.emplace(config_.serving.zipf_keys, config_.serving.zipf_exponent);
    Rng profile_rng = rng_.fork("serving-profiles");
    demand_profiles_.reserve(config_.serving.zipf_keys);
    for (std::size_t k = 0; k < config_.serving.zipf_keys; ++k) {
      demand_profiles_.push_back(
          task_gen_.generate(NodeId(0), 0, 0, profile_rng).expectation);
    }
  }

  protocol_->set_availability_source(
      [this](NodeId id) -> std::optional<ResourceVector> {
        // Alive hosts always hold a scheduler (only dead+drained ones
        // release their cold slot).
        if (!hosts_.alive(id)) return std::nullopt;
        return hosts_.scheduler(id)->availability();
      });

  register_metrics();
}

void Experiment::register_metrics() {
  // Bus traffic, per MsgType: the registry is the generic export path
  // (the dedicated ExperimentResults fields stay for the goldens).
  for (std::size_t t = 0; t < static_cast<std::size_t>(net::MsgType::kCount);
       ++t) {
    const auto type = static_cast<net::MsgType>(t);
    const std::string base = "bus." + std::string(net::msg_type_name(type));
    registry_.gauge(base + ".sent", [this, type] {
      return static_cast<double>(bus_->stats().sent(type));
    });
    registry_.gauge(base + ".delivered", [this, type] {
      return static_cast<double>(bus_->stats().delivered(type));
    });
    registry_.gauge(base + ".lost", [this, type] {
      return static_cast<double>(bus_->stats().lost(type));
    });
    registry_.gauge(base + ".partitioned", [this, type] {
      return static_cast<double>(bus_->stats().partitioned(type));
    });
  }
  registry_.gauge("tasks.generated", [this] {
    return static_cast<double>(metrics_.generated());
  });
  registry_.gauge("tasks.finished", [this] {
    return static_cast<double>(metrics_.finished());
  });
  registry_.gauge("tasks.failed", [this] {
    return static_cast<double>(metrics_.failed());
  });
  // Same max(peak-at-partition-edges, current) reading results() reports.
  registry_.gauge("index.stale_debt.dead_provider", [this] {
    return static_cast<double>(
        std::max(peak_stale_debt_.dead_provider, current_stale_debt().dead_provider));
  });
  registry_.gauge("index.stale_debt.misplaced", [this] {
    return static_cast<double>(
        std::max(peak_stale_debt_.misplaced, current_stale_debt().misplaced));
  });
  registry_.gauge("mem.slot_span_ratio",
                  [this] { return protocol_->max_slot_span_ratio(); });
}

obs::MemBreakdown Experiment::mem_breakdown() const {
  obs::MemBreakdown out;
  out.add("sim.event_queue", sim_.queue_mem_bytes());
  out.add("net.bus_pending", bus_->mem_bytes());
  out.add("core.host_table", hosts_.mem_bytes());
  // FlatMap: one state byte plus one key/value pair per table slot.
  out.add("core.in_flight",
          in_flight_.capacity() * (1 + sizeof(TaskId) + sizeof(Placement)));
  protocol_->mem_breakdown(out);
  return out;
}

Experiment::~Experiment() = default;

NodeId Experiment::spawn_host() {
  const NodeId id = topology_->add_host();
  psm::PsmScheduler& sched = hosts_.add(id, node_gen_.generate(rng_));
  sched.set_finish_callback([this, id](const psm::CompletionInfo& info) {
    on_host_finished_task(id, info);
  });
  ++alive_count_;
  protocol_->on_join(id);
  return id;
}

void Experiment::setup() {
  SOC_CHECK(!setup_done_);
  setup_done_ = true;

  RunningStats wan;
  ResourceVector cap_sum(psm::kDims);
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    const NodeId id = spawn_host();
    cap_sum += hosts_.capacity(id);
    wan.add(topology_->wan_bandwidth_mbps(id));
    start_arrivals(id);
  }
  avg_capacity_ = cap_sum * (1.0 / static_cast<double>(config_.nodes));
  avg_wan_mbps_ = wan.mean();
  if (config_.churn_dynamic_degree > 0.0) start_churn();
  if (config_.churn_task_policy == ChurnTaskPolicy::kCheckpointRestart) {
    start_checkpointing();
  }
  if (config_.scenario.enabled()) {
    scenario_engine_ =
        std::make_unique<scenario::ScenarioEngine>(*this, config_.scenario);
    scenario_engine_->install();
  }
  // Phase boundary: all hosts joined, nothing has run yet.
  registry_.set("rss.post_join.bytes",
                static_cast<double>(obs::current_rss_bytes()),
                /*deterministic=*/false);
  if (obs::Tracer* t = obs::tracer()) {
    t->instant("phase", "post_join", sim_.now(), "nodes", config_.nodes);
  }
}

NodeId Experiment::scenario_join() {
  const NodeId id = spawn_host();
  start_arrivals(id);
  return id;
}

void Experiment::scenario_depart(NodeId id) {
  if (!hosts_.alive(id)) return;
  on_host_departed(id);
}

bool Experiment::host_alive(NodeId id) const { return hosts_.alive(id); }

std::vector<NodeId> Experiment::alive_ids() const {
  std::vector<NodeId> out;
  out.reserve(alive_count_);
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_.alive(NodeId(i))) out.push_back(NodeId(i));
  }
  return out;
}

bool Experiment::scenario_partition(double fraction, std::size_t start_lan) {
  SOC_CHECK(fraction > 0.0 && fraction < 1.0);
  if (partition_active()) return false;
  const std::size_t lans = topology_->lan_count();
  SOC_CHECK(lans > 0 && start_lan < lans);

  std::vector<std::vector<NodeId>> by_lan(lans);
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    const NodeId id{i};
    if (hosts_.alive(id)) by_lan[topology_->lan_of(id)].push_back(id);
  }
  // Keep at least 3 hosts connected; aim for fraction·alive cut off.
  const std::size_t cap = alive_count_ > 3 ? alive_count_ - 3 : 0;
  const std::size_t target = std::min<std::size_t>(
      cap, static_cast<std::size_t>(
               std::ceil(fraction * static_cast<double>(alive_count_))));

  std::vector<std::size_t> cut;
  std::vector<NodeId> victims;
  for (std::size_t k = 0; k < lans; ++k) {
    const std::size_t lan = (start_lan + k) % lans;
    if (by_lan[lan].empty()) continue;
    if (!cut.empty() && victims.size() >= target) break;
    if (victims.size() + by_lan[lan].size() > cap) {
      // This whole LAN group does not fit under the cap; a partial LAN cut
      // would not be a LAN-boundary partition, so try the next group.
      continue;
    }
    cut.push_back(lan);
    victims.insert(victims.end(), by_lan[lan].begin(), by_lan[lan].end());
  }
  if (cut.empty()) return false;

  bus_->set_partition(std::move(cut));
  std::sort(victims.begin(), victims.end());
  partitioned_ = victims;
  // Overlay teardown after the bus cut is in place: the departure-style
  // maintenance happens on the detached side, and any in-flight cross-cut
  // messages were fated at send time anyway.
  for (const NodeId id : victims) protocol_->on_partition_out(id);
  if (obs::Tracer* t = obs::tracer()) {
    t->instant("scenario", "partition", sim_.now(), "cut_hosts",
               partitioned_.size());
  }
  sample_stale_debt();
  return true;
}

/// Fold the current stale-record debt into the reported peak.  Called at
/// both partition edges: just after the cut (when every detached
/// provider's record elsewhere is still live — the maximum) and just
/// before rejoin (what's left for rejoin to reconcile; with cuts longer
/// than the record TTL the leftovers have expired and this samples the
/// decayed tail).
StaleDebt Experiment::current_stale_debt() const {
  return protocol_->stale_debt(
      [this](NodeId id) { return host_alive(id) && !is_partitioned(id); },
      sim_.now());
}

void Experiment::sample_stale_debt() {
  const StaleDebt debt = current_stale_debt();
  peak_stale_debt_.dead_provider =
      std::max(peak_stale_debt_.dead_provider, debt.dead_provider);
  peak_stale_debt_.misplaced =
      std::max(peak_stale_debt_.misplaced, debt.misplaced);
}

void Experiment::scenario_heal() {
  if (!partition_active()) return;
  sample_stale_debt();
  bus_->clear_partition();
  const std::vector<NodeId> rejoin = std::move(partitioned_);
  partitioned_.clear();
  for (const NodeId id : rejoin) {
    if (host_alive(id)) protocol_->on_rejoin(id);
  }
  if (obs::Tracer* t = obs::tracer()) {
    t->instant("scenario", "heal", sim_.now(), "rejoined", rejoin.size());
  }
}

bool Experiment::is_partitioned(NodeId id) const {
  return std::binary_search(partitioned_.begin(), partitioned_.end(), id);
}

std::string Experiment::check_accounting() const {
  std::size_t alive = 0;
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    const NodeId id{i};
    if (hosts_.alive(id)) {
      ++alive;
      if (hosts_.scheduler(id) == nullptr) {
        return "alive host " + std::to_string(id.value) + " has no scheduler";
      }
    } else if (const auto* s = hosts_.scheduler(id);
               s != nullptr && s->running_count() == 0 &&
               std::find(cold_reap_.begin(), cold_reap_.end(), id) ==
                   cold_reap_.end()) {
      // A dead idle host may hold its scheduler only while queued for reap.
      return "dead drained host " + std::to_string(id.value) +
             " still holds a scheduler";
    }
  }
  if (alive != alive_count_) {
    return "alive counter " + std::to_string(alive_count_) + " != " +
           std::to_string(alive) + " alive hosts";
  }
  if (hosts_.alive_count() != alive_count_) {
    return "fenwick alive count " + std::to_string(hosts_.alive_count()) +
           " != " + std::to_string(alive_count_);
  }
  for (const auto& kv : in_flight_) {
    if (!hosts_.known(kv.second.provider)) {
      return "in-flight task placed on unknown host " +
             std::to_string(kv.second.provider.value);
    }
  }
  return {};
}

void Experiment::start_arrivals(NodeId id) {
  // Closed-loop serving mode replaces the Poisson chain outright: each
  // client issues its next task from its previous task's completion.
  // Every join path (setup, churn replacement, scenario join) funnels
  // through here, so replacement hosts get clients too.
  if (config_.serving.closed_loop()) {
    for (std::size_t c = 0; c < config_.serving.clients_per_node; ++c) {
      schedule_client_issue(id);
    }
    return;
  }
  // Recursive Poisson arrival chain; stops when the host churns out or the
  // submission horizon passes.
  //
  // The inter-arrival mean scales inversely with the demand ratio λ: the
  // paper reports 57600 submitted tasks for one day at λ=1 (3000 s mean)
  // but 14362 at λ=0.25 — i.e. 3000/λ seconds — so lighter demands also
  // arrive proportionally less often.
  const double mean_s = config_.mean_interarrival_s /
                        std::max(config_.demand_ratio, 1e-6);
  schedule_next_arrival(id, mean_s);
}

void Experiment::schedule_next_arrival(NodeId id, double mean_s) {
  // The diurnal curve stretches/compresses the *current* inter-arrival
  // draw; when disabled the mean is passed through untouched so the draw
  // sequence is bit-identical to the pre-serving code.
  const double mean =
      config_.serving.diurnal()
          ? mean_s / workload::diurnal_factor(config_.serving, sim_.now())
          : mean_s;
  const SimTime delay = workload::next_arrival_delay(mean, rng_);
  if (sim_.now() + delay > config_.duration) return;
  sim_.schedule_after(delay, [this, id, mean_s] {
    if (!hosts_.alive(id)) return;
    submit_task(id);
    schedule_next_arrival(id, mean_s);
  });
}

void Experiment::schedule_client_issue(NodeId id) {
  const double mean =
      config_.serving.think_time_s /
      workload::diurnal_factor(config_.serving, sim_.now());
  const SimTime delay = workload::next_arrival_delay(mean, rng_);
  if (sim_.now() + delay > config_.duration) return;
  sim_.schedule_after(delay, [this, id] {
    if (!hosts_.alive(id)) return;
    submit_task_internal(id, [this, id] { schedule_client_issue(id); });
  });
}

void Experiment::submit_task(NodeId origin) {
  submit_task_internal(origin, {});
}

void Experiment::submit_task_internal(NodeId origin,
                                      std::function<void()> on_complete) {
  drain_cold_reap();
  psm::TaskSpec spec =
      task_gen_.generate(origin, hosts_.bump_seq(origin), sim_.now(), rng_);
  if (zipf_.has_value()) apply_demand_profile(spec);
  metrics_.on_generated(sim_.now());
  if (obs::Tracer* t = obs::tracer()) {
    t->begin("task", "task", trace_id(spec.id), sim_.now());
  }
  auto run = std::make_shared<TaskRun>();
  run->spec = spec;
  run->on_complete = std::move(on_complete);
  begin_query(run);
}

void Experiment::apply_demand_profile(psm::TaskSpec& spec) {
  // Keep the freshly drawn execution time; swap the demand vector for the
  // drawn key's fixed profile and re-derive the rate workloads so the
  // execution model stays consistent (workload = expectation · exec time).
  const double exec_s = spec.expected_exec_seconds();
  const ResourceVector& e = demand_profiles_[zipf_->draw(*serving_rng_)];
  spec.expectation = e;
  for (std::size_t k = 0; k < psm::kRateDims; ++k) {
    spec.workload[k] = e[k] * exec_s;
  }
}

void Experiment::begin_query(const std::shared_ptr<TaskRun>& run) {
  ++run->attempts;
  if (is_partitioned(run->spec.origin)) {
    // A cut-off origin cannot reach the overlay; the attempt comes back
    // empty after a beat and the normal retry/backoff machinery takes over
    // (succeeding only if the partition heals before retries run out).
    sim_.schedule_after(seconds(1), [this, run] { on_candidates(run, {}); });
    return;
  }
  const SimTime started = sim_.now();
  protocol_->query(run->spec.origin, run->spec.expectation,
                   config_.want_results,
                   [this, run, started](std::vector<Discovered> candidates) {
                     query_delay_s_.add(to_seconds(sim_.now() - started));
                     on_candidates(run, std::move(candidates));
                   });
}

void Experiment::on_candidates(const std::shared_ptr<TaskRun>& run,
                               std::vector<Discovered> candidates) {
  if (run->settled) return;
  if (candidates.empty() && run->backlog.empty()) ++empty_query_results_;
  // Keep any still-untried candidates from earlier attempts as fallbacks.
  for (auto& c : candidates) run->backlog.push_back(std::move(c));

  // Best-fit selection: among candidates whose advertised availability
  // dominates the demand (and who have not already rejected this task),
  // prefer the tightest fit so large availabilities stay free for large
  // future demands.
  const ResourceVector& e = run->spec.expectation;
  const ResourceVector scale = node_gen_.cmax();
  NodeId best;
  double best_slack = std::numeric_limits<double>::infinity();
  for (const Discovered& c : run->backlog) {
    if (run->tried.contains(c.provider)) continue;
    if (!c.availability.dominates(e)) continue;
    const double slack = best_fit_slack(c.availability, e, scale);
    if (slack < best_slack) {
      best_slack = slack;
      best = c.provider;
    }
  }
  if (!best.valid()) {
    retry_or_fail(run);
    return;
  }
  if (!run->first_result_seen) {
    run->first_result_seen = true;
    // Fresh submissions only: a checkpoint restart re-enters the pipeline
    // mid-life and would double-count against its original submit time.
    if (!run->is_restart) {
      lat_first_result_.record_us(latency_us(run->spec.submit_time,
                                             sim_.now()));
    }
    if (obs::Tracer* t = obs::tracer()) {
      t->mark("task", "first_result", trace_id(run->spec.id), sim_.now());
    }
  }
  run->tried.insert(best);
  dispatch(run, best);
}

void Experiment::dispatch(const std::shared_ptr<TaskRun>& run,
                          NodeId provider) {
  ++run->dispatches;
  if (obs::Tracer* t = obs::tracer()) {
    t->mark("task", "dispatch", trace_id(run->spec.id), sim_.now());
  }
  const NodeId origin = run->spec.origin;

  // Guard against a dead provider or lost messages with a timeout.
  auto responded = std::make_shared<bool>(false);
  sim_.schedule_after(config_.dispatch_timeout, [this, run, responded] {
    if (*responded || run->settled) return;
    *responded = true;
    on_candidates(run, {});  // fall back to the next untried candidate
  });

  bus_->send(
      origin, provider, net::MsgType::kDispatch,
      static_cast<std::size_t>(run->spec.input_bytes),
      [this, run, provider, origin, responded] {
        psm::PsmScheduler* sched =
            hosts_.alive(provider) ? hosts_.scheduler(provider) : nullptr;
        // Admission must be idempotent in the task id: the link layer can
        // duplicate the dispatch message, and a lost verdict followed by a
        // checkpoint restart can re-route a task to the host that is
        // already executing it.  Either way "already running here" is an
        // accept, not a second admission.
        const bool admitted =
            sched != nullptr && (sched->is_running(run->spec.id) ||
                                 sched->admit(run->spec));
        if (admitted) {
          in_flight_.emplace(run->spec.id,
                             Placement{run->spec, provider, run->on_complete});
        }
        // Either way the provider's availability picture changed (or the
        // advertised record proved stale): push a fresh state update so
        // other requesters stop chasing it.
        protocol_->republish(provider);
        // Admission verdict travels back to the requester.
        bus_->send(provider, origin, net::MsgType::kDispatch, 64,
                   [this, run, responded, admitted] {
                     if (*responded || run->settled) return;
                     *responded = true;
                     if (admitted) {
                       run->settled = true;
                       dispatch_attempts_.add(
                           static_cast<double>(run->dispatches));
                       if (obs::Tracer* t = obs::tracer()) {
                         t->mark("task", "placed", trace_id(run->spec.id),
                                 sim_.now());
                       }
                     } else {
                       // Contention: someone claimed the node first
                       // (Inequality (2) no longer holds).  Try the next
                       // untried candidate, then re-query.
                       ++dispatch_rejects_;
                       on_candidates(run, {});
                     }
                   });
      });
}

void Experiment::retry_or_fail(const std::shared_ptr<TaskRun>& run) {
  if (run->settled) return;
  const bool origin_alive = hosts_.alive(run->spec.origin);
  if (!origin_alive || run->attempts > config_.max_query_retries) {
    run->settled = true;
    metrics_.on_failed(sim_.now());
    if (obs::Tracer* t = obs::tracer()) {
      t->mark("task", "failed", trace_id(run->spec.id), sim_.now());
      t->end("task", "task", trace_id(run->spec.id), sim_.now());
    }
    if (run->on_complete) run->on_complete();
    if (config_.diagnose_failures) {
      // Ground truth at failure time: could any alive host admit the task?
      bool feasible = false;
      for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
        const NodeId id{i};
        if (hosts_.alive(id) &&
            hosts_.scheduler(id)->can_admit(run->spec.expectation)) {
          feasible = true;
          break;
        }
      }
      ++(feasible ? fail_feasible_ : fail_infeasible_);
      // And could a *perfect* search over the published records have found
      // it?  If not, the failure is publication lag, not search quality.
      if (feasible &&
          protocol_->discoverable(run->spec.expectation, sim_.now()) == 0) {
        ++fail_undiscoverable_;
      }
    }
    return;
  }
  sim_.schedule_after(config_.retry_backoff,
                      [this, run] { begin_query(run); });
}

double Experiment::efficiency_of(const psm::TaskSpec& spec,
                                 SimTime finished_at) const {
  // e_ij: expected execution time over real completion time, the expected
  // time estimated from the load amount, the system-wide average node
  // capacity and the average network bandwidth (§IV.A).
  double expected_s = 0.0;
  for (std::size_t k = 0; k < psm::kRateDims; ++k) {
    if (spec.workload[k] <= 0.0) continue;
    expected_s = std::max(expected_s, spec.workload[k] / avg_capacity_[k]);
  }
  expected_s += spec.input_bytes * 8.0 / (avg_wan_mbps_ * 1e6);
  const double real_s = to_seconds(finished_at - spec.submit_time);
  if (real_s <= 0.0) return 1.0;
  return expected_s / real_s;
}

void Experiment::on_host_finished_task(NodeId host,
                                       const psm::CompletionInfo& info) {
  // A detached (departed, kDetachedExecution) host that just drained its
  // last task will never run anything again: queue its scheduler for
  // release.  Deferred because this callback runs inside the scheduler.
  if (!hosts_.alive(host) && hosts_.scheduler(host) != nullptr &&
      hosts_.scheduler(host)->running_count() == 0) {
    cold_reap_.push_back(host);
  }
  const auto it = in_flight_.find(info.id);
  if (it == in_flight_.end()) return;
  metrics_.on_finished(sim_.now(),
                       efficiency_of(it->second.spec, info.finished_at));
  if (obs::Tracer* t = obs::tracer()) {
    t->end("task", "task", trace_id(info.id), sim_.now());
  }
  lat_finish_.record_us(
      latency_us(it->second.spec.submit_time, info.finished_at));
  std::function<void()> wake = std::move(it->second.on_complete);
  in_flight_.erase(it);
  checkpoints_.erase(info.id);
  if (wake) wake();
}

void Experiment::drain_cold_reap() {
  for (const NodeId id : cold_reap_) {
    // Re-check: duplicate queue entries are possible in principle, and
    // nothing may have been admitted meanwhile (dead hosts admit nothing).
    if (!hosts_.alive(id) && hosts_.scheduler(id) != nullptr &&
        hosts_.scheduler(id)->running_count() == 0) {
      hosts_.release_scheduler(id);
    }
  }
  cold_reap_.clear();
}

void Experiment::start_churn() {
  // Node-churning events uniformly spread in time: within every window of
  // `churn_window_s` (one mean task lifetime), `dynamic_degree · n` nodes
  // depart and the same number of fresh nodes join.
  const double events_per_s = config_.churn_dynamic_degree *
                              static_cast<double>(config_.nodes) /
                              config_.churn_window_s;
  if (events_per_s <= 0.0) return;
  const double mean_gap_s = 1.0 / events_per_s;
  schedule_next_churn(mean_gap_s);
}

void Experiment::schedule_next_churn(double mean_gap_s) {
  const SimTime delay =
      std::max<SimTime>(seconds(rng_.exponential(mean_gap_s)), 1);
  if (sim_.now() + delay > config_.duration) return;
  sim_.schedule_after(delay, [this, mean_gap_s] {
    // Departure of a random alive node.  kth_alive selects over ascending
    // ids — by definition the same host the old sorted-candidate-list
    // scan picked for the same draw, without the O(total hosts) walk.
    if (alive_count_ > 2) {
      on_host_departed(hosts_.kth_alive(rng_.pick_index(alive_count_)));
    }
    // ...and a simultaneous fresh join keeps the population stable.
    const NodeId joiner = spawn_host();
    start_arrivals(joiner);
    schedule_next_churn(mean_gap_s);
  });
}

void Experiment::on_host_departed(NodeId victim) {
  drain_cold_reap();
  hosts_.mark_departed(victim);
  --alive_count_;
  // A partitioned host that dies will never rejoin: drop it from the cut
  // set (on_leave below drops the protocol's parked state to match).
  const auto cut = std::lower_bound(partitioned_.begin(), partitioned_.end(),
                                    victim);
  if (cut != partitioned_.end() && *cut == victim) partitioned_.erase(cut);
  protocol_->on_leave(victim);

  switch (config_.churn_task_policy) {
    case ChurnTaskPolicy::kDetachedExecution:
      // The paper's §IV.B model: running tasks keep executing to
      // completion; churn only perturbs overlay/discovery state.
      break;
    case ChurnTaskPolicy::kTasksLost: {
      for (const auto& progress :
           hosts_.scheduler(victim)->abort_all_with_progress()) {
        ++tasks_killed_by_churn_;
        double done = 0.0;
        for (std::size_t k = 0; k < psm::kRateDims; ++k) {
          done += progress.spec.workload[k] - progress.remaining[k];
        }
        wasted_work_ += done;
        metrics_.on_failed(sim_.now());
        std::function<void()> wake;
        if (const auto it = in_flight_.find(progress.spec.id);
            it != in_flight_.end()) {
          wake = std::move(it->second.on_complete);
          in_flight_.erase(it);
        }
        checkpoints_.erase(progress.spec.id);
        if (wake) wake();
      }
      break;
    }
    case ChurnTaskPolicy::kCheckpointRestart: {
      for (const auto& progress :
           hosts_.scheduler(victim)->abort_all_with_progress()) {
        ++tasks_killed_by_churn_;
        std::function<void()> wake;
        if (const auto it = in_flight_.find(progress.spec.id);
            it != in_flight_.end()) {
          wake = std::move(it->second.on_complete);
          in_flight_.erase(it);
        }
        restart_from_checkpoint(progress, std::move(wake));
      }
      break;
    }
  }

  // A departed host with nothing running (always true after an abort
  // policy; true under detached execution when it was idle) never touches
  // its scheduler again — release the cold slot right away.
  if (hosts_.scheduler(victim)->running_count() == 0) {
    hosts_.release_scheduler(victim);
  }
}

void Experiment::restart_from_checkpoint(
    const psm::PsmScheduler::Progress& progress,
    std::function<void()> on_complete) {
  const TaskId id = progress.spec.id;
  // Work since the last snapshot is lost and must be redone.
  const auto cp = checkpoints_.lookup(id);
  if (cp.has_value()) {
    wasted_work_ += checkpoints_.lost_work(id, progress.remaining);
  } else {
    // Never checkpointed: everything done so far is lost.
    for (std::size_t k = 0; k < psm::kRateDims; ++k) {
      wasted_work_ += progress.spec.workload[k] - progress.remaining[k];
    }
  }

  const bool origin_alive = hosts_.alive(progress.spec.origin);
  const std::uint32_t restarts = checkpoints_.note_restart(id, sim_.now());
  if (!origin_alive || restarts > config_.checkpoint.max_restarts) {
    metrics_.on_failed(sim_.now());
    checkpoints_.erase(id);
    if (on_complete) on_complete();
    return;
  }
  ++checkpoint_restarts_;

  // Rebuild the spec from the last snapshot (full workload if none) and
  // push it back through the regular query → dispatch pipeline.
  psm::TaskSpec spec = progress.spec;
  if (cp.has_value()) spec.workload = cp->remaining;
  auto run = std::make_shared<TaskRun>();
  run->spec = spec;
  run->is_restart = true;
  run->on_complete = std::move(on_complete);
  begin_query(run);
}

void Experiment::start_checkpointing() {
  sim_.schedule_periodic(config_.checkpoint.period, [this] {
    // Snapshot every placed task whose provider is still alive; the
    // snapshot travels provider → origin as one message.
    for (const auto& [id, placement] : in_flight_) {
      if (!hosts_.alive(placement.provider)) continue;
      const auto remaining =
          hosts_.scheduler(placement.provider)->remaining_of(id);
      if (!remaining.has_value()) continue;
      ++checkpoint_snapshots_;
      const TaskId task_id = id;
      bus_->send(placement.provider, placement.spec.origin,
                 net::MsgType::kDispatch, config_.checkpoint.snapshot_bytes,
                 [this, task_id, r = *remaining] {
                   checkpoints_.record(task_id, r, sim_.now());
                 });
    }
    return true;
  });
}

void Experiment::run() {
  if (!setup_done_) setup();
  sim_.run_until(config_.duration);
  // Phase boundary: churn/workload done (sampled before any teardown, so
  // it is the post-churn figure bench_report's peak-RSS line lacked).
  registry_.set("rss.post_churn.bytes",
                static_cast<double>(obs::current_rss_bytes()),
                /*deterministic=*/false);
  if (obs::Tracer* t = obs::tracer()) {
    t->instant("phase", "post_churn", sim_.now());
  }
}

std::size_t Experiment::alive_nodes() const { return alive_count_; }

ExperimentResults Experiment::results() const {
  ExperimentResults r;
  r.protocol = protocol_->name();
  r.series = metrics_.series(config_.duration, config_.sample_step);
  r.generated = metrics_.generated();
  r.finished = metrics_.finished();
  r.failed = metrics_.failed();
  r.t_ratio = metrics_.t_ratio();
  r.f_ratio = metrics_.f_ratio();
  r.fairness = metrics_.fairness();
  r.total_messages = bus_->stats().total_sent();
  r.messages_delivered = bus_->stats().total_delivered();
  r.messages_lost = bus_->stats().total_lost();
  r.messages_partitioned = bus_->stats().total_partitioned();
  for (std::size_t t = 0; t < static_cast<std::size_t>(net::MsgType::kCount);
       ++t) {
    const auto type = static_cast<net::MsgType>(t);
    if (bus_->stats().sent(type) == 0) continue;
    r.traffic_by_type.push_back(ExperimentResults::MsgTypeCounts{
        std::string(net::msg_type_name(type)), bus_->stats().sent(type),
        bus_->stats().delivered(type), bus_->stats().lost(type),
        bus_->stats().partitioned(type)});
  }
  r.msg_cost_per_node = bus_->stats().per_node_cost(
      std::max<std::size_t>(config_.nodes, 1));
  r.avg_query_delay_s = query_delay_s_.mean();
  r.avg_dispatch_attempts = dispatch_attempts_.mean();
  r.events_executed = sim_.events_executed();
  r.fail_infeasible = fail_infeasible_;
  r.fail_feasible = fail_feasible_;
  r.fail_undiscoverable = fail_undiscoverable_;
  r.empty_query_results = empty_query_results_;
  r.dispatch_rejects = dispatch_rejects_;
  r.tasks_killed_by_churn = tasks_killed_by_churn_;
  r.checkpoint_restarts = checkpoint_restarts_;
  r.checkpoint_snapshots = checkpoint_snapshots_;
  r.wasted_work_rate_seconds = wasted_work_;
  const StaleDebt debt = current_stale_debt();
  r.stale_records_dead_provider =
      std::max(peak_stale_debt_.dead_provider, debt.dead_provider);
  r.stale_records_misplaced =
      std::max(peak_stale_debt_.misplaced, debt.misplaced);
  r.slot_span_ratio = protocol_->max_slot_span_ratio();
  r.latency_first_result = lat_first_result_;
  r.latency_finish = lat_finish_;
  // Attribution-profiler breakdown, folded in at snapshot time (capacity
  // accounting is a deterministic function of the trajectory, unlike RSS).
  const obs::MemBreakdown breakdown = mem_breakdown();
  for (const auto& [bucket, bytes] : breakdown.items()) {
    registry_.set("mem." + bucket + ".bytes", static_cast<double>(bytes));
  }
  registry_.set("mem.total.bytes", static_cast<double>(breakdown.total()));
  r.metrics = registry_.snapshot();
  return r;
}

ExperimentResults run_experiment(const ExperimentConfig& config) {
  Experiment ex(config);
  ex.setup();
  ex.run();
  return ex.results();
}

}  // namespace soc::core
