#include "src/core/host_table.hpp"

#include <bit>

namespace soc::core {

psm::PsmScheduler& HostTable::add(NodeId id, const ResourceVector& capacity) {
  SOC_CHECK_MSG(id.valid() && id.value == alive_.size(),
                "host ids must be sequential");
  alive_.push_back(1);
  capacity_.push_back(capacity);
  next_seq_.push_back(0);
  cold_slot_.push_back(cold_.alloc(sim_, capacity, overhead_));
  fen_append(true);
  ++alive_count_;
  return cold_[cold_slot_[id.value]];
}

void HostTable::mark_departed(NodeId id) {
  SOC_DCHECK(alive(id));
  alive_[id.value] = 0;
  fen_sub(id.value);
  --alive_count_;
}

void HostTable::release_scheduler(NodeId id) {
  SOC_DCHECK(known(id) && alive_[id.value] == 0);
  const std::uint32_t slot = cold_slot_[id.value];
  if (slot == ColdSlab::kNull) return;
  SOC_DCHECK(cold_[slot].running_count() == 0);
  cold_.release(slot);
  cold_slot_[id.value] = ColdSlab::kNull;
}

std::size_t HostTable::fen_prefix(std::size_t i) const {
  std::size_t s = 0;
  for (; i > 0; i &= i - 1) s += fen_[i];
  return s;
}

void HostTable::fen_append(bool bit) {
  // New 1-based index m covers ids [m - lowbit(m), m); all of it except
  // the new bit is a prefix-sum difference over the existing tree.
  const std::size_t m = fen_.size();  // fen_[0] is the unused root
  if (m == 0) {
    fen_.push_back(0);
    return fen_append(bit);
  }
  const std::size_t lb = m & (~m + 1);
  fen_.push_back(fen_prefix(m - 1) - fen_prefix(m - lb) + (bit ? 1 : 0));
}

void HostTable::fen_sub(std::size_t id) {
  for (std::size_t i = id + 1; i < fen_.size(); i += i & (~i + 1)) {
    --fen_[i];
  }
}

NodeId HostTable::kth_alive(std::size_t k) const {
  SOC_DCHECK(k < alive_count_);
  // Descend the implicit tree: after the loop `pos` is the largest
  // 1-based index whose prefix sum is < k+1, so id `pos` is the answer.
  std::size_t pos = 0;
  std::size_t rem = k + 1;
  for (std::size_t b = std::bit_floor(fen_.size() - 1); b > 0; b >>= 1) {
    const std::size_t next = pos + b;
    if (next < fen_.size() && fen_[next] < rem) {
      pos = next;
      rem -= fen_[next];
    }
  }
  return NodeId(static_cast<std::uint32_t>(pos));
}

}  // namespace soc::core
