// HostTable: the SoA replacement for Experiment's per-host AoS struct.
//
// The fields the message path touches on every delivery — the alive flag
// (bus liveness callback), capacity, and the per-host task sequence —
// live in flat parallel vectors indexed directly by NodeId (host ids are
// handed out sequentially by Topology::add_host and, unlike overlay
// state, host entries are never erased: a departed host keeps its row
// with alive=false, so id == row index for the whole run).  Cold state —
// the PsmScheduler, ~200 bytes plus its running-task map — lives in an
// address-stable slab (StableSlab: scheduler completion closures capture
// `this`) referenced by a per-host slot index, replacing the per-node
// unique_ptr chase.  A dead host whose scheduler has drained (no running
// tasks) can release its cold slot, so cold memory tracks live +
// detached-busy hosts instead of total hosts ever.
//
// Alive-order statistics.  Churn picks "the k-th alive host in ascending
// id order"; materializing the alive list per churn event is O(total
// hosts ever).  The table keeps a Fenwick tree over the alive bits, so
// alive_count() is O(1)-maintained and kth_alive(k) is O(log n) while
// selecting exactly the same host the sorted-list scan would — bit-for-
// bit identical trajectories, three orders of magnitude less scanning at
// 1M nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/resource_vector.hpp"
#include "src/common/stable_slab.hpp"
#include "src/common/types.hpp"
#include "src/psm/scheduler.hpp"

namespace soc::core {

class HostTable {
 public:
  HostTable(sim::Simulator& sim, psm::VmOverhead overhead)
      : sim_(sim), overhead_(overhead) {}

  /// Append the next host (ids must arrive sequentially: id == size()).
  /// Constructs its scheduler and returns it so the caller can attach the
  /// finish callback.
  psm::PsmScheduler& add(NodeId id, const ResourceVector& capacity);

  /// Rows ever created (alive + departed).
  [[nodiscard]] std::size_t size() const { return alive_.size(); }
  [[nodiscard]] bool known(NodeId id) const {
    return id.valid() && id.value < alive_.size();
  }
  [[nodiscard]] bool alive(NodeId id) const {
    return known(id) && alive_[id.value] != 0;
  }
  void mark_departed(NodeId id);

  [[nodiscard]] const ResourceVector& capacity(NodeId id) const {
    SOC_DCHECK(known(id));
    return capacity_[id.value];
  }

  /// Post-increment the host's task sequence number.
  [[nodiscard]] std::uint32_t bump_seq(NodeId id) {
    SOC_DCHECK(known(id));
    return next_seq_[id.value]++;
  }

  /// The host's scheduler, or nullptr when its cold slot was released
  /// (only possible for departed hosts with no running tasks).
  [[nodiscard]] psm::PsmScheduler* scheduler(NodeId id) {
    if (!known(id) || cold_slot_[id.value] == ColdSlab::kNull) return nullptr;
    return &cold_[cold_slot_[id.value]];
  }
  [[nodiscard]] const psm::PsmScheduler* scheduler(NodeId id) const {
    return const_cast<HostTable*>(this)->scheduler(id);
  }

  /// Destroy a drained dead host's scheduler and recycle its cold slot.
  /// Caller must ensure the host is departed and nothing is running (the
  /// scheduler then has no pending completion event, so no scheduled
  /// closure still captures its address).
  void release_scheduler(NodeId id);

  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }

  /// The k-th alive host in ascending id order (0-based, k <
  /// alive_count()): Fenwick order-statistics select, equal by definition
  /// to sorting the alive ids and indexing.
  [[nodiscard]] NodeId kth_alive(std::size_t k) const;

  /// Cold slots currently holding a scheduler (live + detached-busy).
  [[nodiscard]] std::size_t schedulers_live() const { return cold_.live(); }

  /// Bytes claimed by the SoA vectors plus the cold-scheduler slab
  /// chunks; attribution-profiler hook.  Scheduler-internal task maps
  /// are not walked — the fixed ~200-byte PsmScheduler footprint is the
  /// dominant cold term.
  [[nodiscard]] std::size_t mem_bytes() const {
    return alive_.capacity() * sizeof(std::uint8_t) +
           capacity_.capacity() * sizeof(ResourceVector) +
           next_seq_.capacity() * sizeof(std::uint32_t) +
           cold_slot_.capacity() * sizeof(std::uint32_t) +
           fen_.capacity() * sizeof(std::uint32_t) +
           cold_.capacity_slots() * sizeof(psm::PsmScheduler);
  }

 private:
  using ColdSlab = StableSlab<psm::PsmScheduler>;

  // Fenwick tree over alive bits, 1-based: fen_[i] covers ids
  // [i - lowbit(i), i).  Appending host m computes fen_[m] from prefix
  // sums of the already-built tree, so joins stay O(log n).
  [[nodiscard]] std::size_t fen_prefix(std::size_t i) const;  // ids [0, i)
  void fen_append(bool bit);
  void fen_sub(std::size_t id);

  sim::Simulator& sim_;
  psm::VmOverhead overhead_;

  std::vector<std::uint8_t> alive_;         // hot: bus liveness per message
  std::vector<ResourceVector> capacity_;    // hot: admission/selection
  std::vector<std::uint32_t> next_seq_;     // hot: per-submission
  std::vector<std::uint32_t> cold_slot_;    // id → slab slot (kNull: freed)
  ColdSlab cold_;                           // cold: schedulers, stable addrs
  std::vector<std::uint32_t> fen_;          // alive-bit Fenwick tree
  std::size_t alive_count_ = 0;
};

}  // namespace soc::core
