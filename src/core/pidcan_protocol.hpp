// PID-CAN — the paper's contribution — as a DiscoveryProtocol.
//
// Composes the INSCAN overlay (CanSpace + IndexSystem) with the Alg. 3–5
// query engine.  The diffusion method (spreading = SID-CAN, hopping =
// HID-CAN), Slack-on-Submission (Eq. 3) and the virtual-dimension variant
// ([27]) are all options of this one class; the experiment factory maps the
// six protocol names of §IV.A onto option combinations.
#pragma once

#include <algorithm>
#include <map>
#include <memory>

#include "src/core/protocol.hpp"
#include "src/gossip/aggregation.hpp"
#include "src/index/inscan.hpp"
#include "src/query/query_engine.hpp"

namespace soc::core {

struct PidCanOptions {
  index::InscanConfig inscan;
  query::QueryConfig query;
  bool slack_on_submission = false;  ///< SoS: skew e → e' per Eq. (3)
  bool virtual_dimension = false;    ///< +1 CAN dimension to spread load
  /// Estimate c_max by gossip aggregation over CAN neighbors ([23]) instead
  /// of assuming it known — the exact mechanism the paper points at for
  /// obtaining the SoS upper bound.
  bool aggregate_cmax = false;
  gossip::AggregationConfig aggregation;
  std::size_t maintenance_msgs_per_join = 0;  ///< set from topology scale
};

class PidCanProtocol final : public DiscoveryProtocol {
 public:
  PidCanProtocol(sim::Simulator& sim, net::MessageBus& bus,
                 ResourceVector cmax, PidCanOptions options, Rng rng);

  void set_availability_source(AvailabilityFn fn) override;
  void on_join(NodeId id) override;
  void on_leave(NodeId id) override;
  void on_partition_out(NodeId id) override;
  void on_rejoin(NodeId id) override;
  [[nodiscard]] std::vector<NodeId> parked_ids() const override;
  [[nodiscard]] StaleDebt stale_debt(
      const std::function<bool(NodeId)>& reachable,
      SimTime now) const override;
  void query(NodeId requester, const ResourceVector& demand,
             std::size_t want, QueryCallback cb) override;
  void republish(NodeId id) override;
  [[nodiscard]] std::size_t discoverable(const ResourceVector& demand,
                                         SimTime now) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double max_slot_span_ratio() const override {
    double r = std::max(space_.span_ratio(), index_.span_ratio());
    if (aggregator_ != nullptr) r = std::max(r, aggregator_->span_ratio());
    return r;
  }
  void mem_breakdown(obs::MemBreakdown& out) const override {
    out.add("can.space", space_.mem_bytes());
    out.add("index.state", index_.mem_bytes());
    if (aggregator_ != nullptr) {
      out.add("gossip.aggregation", aggregator_->mem_bytes());
    }
    std::size_t parked = 0;
    for (const auto& [id, p] : parked_) {
      (void)id;
      parked += p.cache.mem_bytes() + p.pi.mem_bytes() + p.table.mem_bytes();
    }
    out.add("core.parked", parked);
  }

  /// The CAN point a demand/availability vector files under (appends the
  /// virtual coordinate in the VD variant).
  [[nodiscard]] can::Point locate(const ResourceVector& v, Rng& rng) const;

  [[nodiscard]] can::CanSpace& space() { return space_; }
  [[nodiscard]] index::IndexSystem& index() { return index_; }
  [[nodiscard]] query::QueryEngine& engine() { return engine_; }
  [[nodiscard]] const ResourceVector& cmax() const { return cmax_; }
  /// The gossip aggregator when options.aggregate_cmax is on, else null.
  [[nodiscard]] gossip::MaxAggregator* aggregator() {
    return aggregator_.get();
  }
  /// The c_max bound a requester would use for SoS: the aggregated
  /// estimate when enabled, else the configured global constant.
  [[nodiscard]] ResourceVector cmax_bound_for(NodeId requester) const;

 private:
  /// Eq. (3): a componentwise-random vector with e ≼ e' ≼ c_max.
  [[nodiscard]] ResourceVector skew_demand(const ResourceVector& e,
                                           NodeId requester);
  /// Shared overlay teardown (aggregator, index, CAN zone, maintenance
  /// billing) behind on_leave and on_partition_out.
  void leave_overlay(NodeId id);

  ResourceVector cmax_;
  PidCanOptions options_;
  Rng rng_;
  std::size_t dims_;
  can::CanSpace space_;
  index::IndexSystem index_;
  query::QueryEngine engine_;
  net::MessageBus& bus_;
  AvailabilityFn raw_availability_;
  std::unique_ptr<gossip::MaxAggregator> aggregator_;
  /// Partitioned-out nodes' INSCAN state, keyed ascending, awaiting rejoin.
  std::map<NodeId, index::IndexSystem::ParkedNode> parked_;
};

}  // namespace soc::core
