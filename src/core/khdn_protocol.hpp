// KHDN-CAN baseline as a DiscoveryProtocol.
#pragma once

#include <algorithm>
#include <map>

#include "src/core/protocol.hpp"
#include "src/khdn/khdn.hpp"

namespace soc::core {

class KhdnProtocol final : public DiscoveryProtocol {
 public:
  KhdnProtocol(sim::Simulator& sim, net::MessageBus& bus, ResourceVector cmax,
               khdn::KhdnConfig config, Rng rng);

  void set_availability_source(AvailabilityFn fn) override;
  void on_join(NodeId id) override;
  void on_leave(NodeId id) override;
  void on_partition_out(NodeId id) override;
  void on_rejoin(NodeId id) override;
  [[nodiscard]] std::vector<NodeId> parked_ids() const override;
  /// Counts dead-provider records only: the K-hop spread *intentionally*
  /// replicates records away from the duty node, so "misplaced" is not a
  /// defect for KHDN and stays zero.
  [[nodiscard]] StaleDebt stale_debt(
      const std::function<bool(NodeId)>& reachable,
      SimTime now) const override;
  void query(NodeId requester, const ResourceVector& demand,
             std::size_t want, QueryCallback cb) override;
  void republish(NodeId id) override;
  [[nodiscard]] std::string name() const override { return "KHDN-CAN"; }
  [[nodiscard]] double max_slot_span_ratio() const override {
    return std::max(space_.span_ratio(), system_.span_ratio());
  }
  void mem_breakdown(obs::MemBreakdown& out) const override {
    out.add("can.space", space_.mem_bytes());
    out.add("khdn.caches", system_.mem_bytes());
    std::size_t parked = 0;
    for (const auto& [id, cache] : parked_) {
      (void)id;
      parked += cache.mem_bytes();
    }
    out.add("core.parked", parked);
  }

  [[nodiscard]] can::CanSpace& space() { return space_; }
  [[nodiscard]] khdn::KhdnSystem& system() { return system_; }
  [[nodiscard]] const ResourceVector& cmax() const { return cmax_; }

 private:
  /// Shared overlay teardown behind on_leave and on_partition_out.
  void leave_overlay(NodeId id);

  ResourceVector cmax_;
  Rng rng_;
  can::CanSpace space_;
  khdn::KhdnSystem system_;
  net::MessageBus& bus_;
  /// Partitioned-out nodes' duty caches, keyed ascending, awaiting rejoin.
  std::map<NodeId, index::RecordStore> parked_;
};

}  // namespace soc::core
