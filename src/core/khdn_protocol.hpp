// KHDN-CAN baseline as a DiscoveryProtocol.
#pragma once

#include "src/core/protocol.hpp"
#include "src/khdn/khdn.hpp"

namespace soc::core {

class KhdnProtocol final : public DiscoveryProtocol {
 public:
  KhdnProtocol(sim::Simulator& sim, net::MessageBus& bus, ResourceVector cmax,
               khdn::KhdnConfig config, Rng rng);

  void set_availability_source(AvailabilityFn fn) override;
  void on_join(NodeId id) override;
  void on_leave(NodeId id) override;
  void query(NodeId requester, const ResourceVector& demand,
             std::size_t want, QueryCallback cb) override;
  void republish(NodeId id) override;
  [[nodiscard]] std::string name() const override { return "KHDN-CAN"; }

  [[nodiscard]] can::CanSpace& space() { return space_; }
  [[nodiscard]] khdn::KhdnSystem& system() { return system_; }
  [[nodiscard]] const ResourceVector& cmax() const { return cmax_; }

 private:
  ResourceVector cmax_;
  Rng rng_;
  can::CanSpace space_;
  khdn::KhdnSystem system_;
  net::MessageBus& bus_;
};

}  // namespace soc::core
