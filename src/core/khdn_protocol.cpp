#include "src/core/khdn_protocol.hpp"

#include <utility>

#include "src/psm/task.hpp"

namespace soc::core {

KhdnProtocol::KhdnProtocol(sim::Simulator& sim, net::MessageBus& bus,
                           ResourceVector cmax, khdn::KhdnConfig config,
                           Rng rng)
    : cmax_(std::move(cmax)), rng_(rng.fork("khdn-protocol")),
      space_(cmax_.size(), rng.fork("khdn-space")),
      system_(sim, bus, space_, config, rng.fork("khdn-system")), bus_(bus) {
  system_.attach_to_space();
}

void KhdnProtocol::set_availability_source(AvailabilityFn fn) {
  system_.set_availability_provider(
      [this, fn = std::move(fn)](NodeId id) -> std::optional<index::Record> {
        const auto avail = fn(id);
        if (!avail.has_value()) return std::nullopt;
        index::Record r;
        r.provider = id;
        r.availability = *avail;
        r.location = can::Point::normalized(*avail, cmax_);
        // Reuse the KHDN record TTL for expiry.
        r.published_at = 0;
        r.expires_at = 0;
        return r;
      });
}

void KhdnProtocol::on_join(NodeId id) {
  space_.join(id);
  system_.add_node(id);
  for (std::size_t i = 0; i < space_.neighbors_of(id).size(); ++i) {
    bus_.stats().on_synthetic_send(id, net::MsgType::kMaintenance, 64);
  }
  system_.publish_now(id);
}

void KhdnProtocol::on_leave(NodeId id) {
  if (!space_.contains(id)) return;
  const std::size_t msgs = space_.neighbors_of(id).size();
  system_.remove_node(id);
  space_.leave(id);
  for (std::size_t i = 0; i < msgs; ++i) {
    bus_.stats().on_synthetic_send(id, net::MsgType::kMaintenance, 64);
  }
}

void KhdnProtocol::republish(NodeId id) {
  if (space_.contains(id)) system_.publish_now(id);
}

void KhdnProtocol::query(NodeId requester, const ResourceVector& demand,
                         std::size_t want, QueryCallback cb) {
  system_.query(requester, demand, can::Point::normalized(demand, cmax_),
                want,
                [cb = std::move(cb)](std::vector<khdn::KhdnCandidate> f) {
                  std::vector<Discovered> out;
                  out.reserve(f.size());
                  for (auto& c : f) {
                    out.push_back(Discovered{c.provider, c.availability});
                  }
                  cb(std::move(out));
                });
}

}  // namespace soc::core
