#include "src/core/khdn_protocol.hpp"

#include <utility>

#include "src/common/assert.hpp"
#include "src/psm/task.hpp"

namespace soc::core {

KhdnProtocol::KhdnProtocol(sim::Simulator& sim, net::MessageBus& bus,
                           ResourceVector cmax, khdn::KhdnConfig config,
                           Rng rng)
    : cmax_(std::move(cmax)), rng_(rng.fork("khdn-protocol")),
      space_(cmax_.size(), rng.fork("khdn-space")),
      system_(sim, bus, space_, config, rng.fork("khdn-system")), bus_(bus) {
  system_.attach_to_space();
}

void KhdnProtocol::set_availability_source(AvailabilityFn fn) {
  system_.set_availability_provider(
      [this, fn = std::move(fn)](NodeId id) -> std::optional<index::Record> {
        const auto avail = fn(id);
        if (!avail.has_value()) return std::nullopt;
        index::Record r;
        r.provider = id;
        r.availability = *avail;
        r.location = can::Point::normalized(*avail, cmax_);
        // Reuse the KHDN record TTL for expiry.
        r.published_at = 0;
        r.expires_at = 0;
        return r;
      });
}

void KhdnProtocol::on_join(NodeId id) {
  space_.join(id);
  system_.add_node(id);
  for (std::size_t i = 0; i < space_.neighbors_of(id).size(); ++i) {
    bus_.stats().on_synthetic_send(id, net::MsgType::kMaintenance, 64);
  }
  system_.publish_now(id);
}

void KhdnProtocol::leave_overlay(NodeId id) {
  const std::size_t msgs = space_.neighbors_of(id).size();
  system_.remove_node(id);
  space_.leave(id);
  for (std::size_t i = 0; i < msgs; ++i) {
    bus_.stats().on_synthetic_send(id, net::MsgType::kMaintenance, 64);
  }
}

void KhdnProtocol::on_leave(NodeId id) {
  // Death drops any parked partition state: there is no host left to rejoin.
  parked_.erase(id);
  if (!space_.contains(id)) return;
  leave_overlay(id);
}

void KhdnProtocol::on_partition_out(NodeId id) {
  if (!space_.contains(id)) return;
  SOC_CHECK(!parked_.contains(id));
  // Park the duty cache before teardown so the rehome listener moves
  // nothing to the takeover node.
  parked_.emplace(id, system_.park_node(id));
  leave_overlay(id);
}

void KhdnProtocol::on_rejoin(NodeId id) {
  const auto it = parked_.find(id);
  if (it == parked_.end()) {
    on_join(id);
    return;
  }
  index::RecordStore store = std::move(it->second);
  parked_.erase(it);
  space_.join(id);
  system_.restore_node(id, std::move(store));
  for (std::size_t i = 0; i < space_.neighbors_of(id).size(); ++i) {
    bus_.stats().on_synthetic_send(id, net::MsgType::kMaintenance, 64);
  }
  system_.publish_now(id);
}

std::vector<NodeId> KhdnProtocol::parked_ids() const {
  std::vector<NodeId> out;
  out.reserve(parked_.size());
  for (const auto& [id, store] : parked_) out.push_back(id);
  return out;
}

StaleDebt KhdnProtocol::stale_debt(
    const std::function<bool(NodeId)>& reachable, SimTime now) const {
  StaleDebt debt;
  auto& self = const_cast<KhdnProtocol&>(*this);
  for (const NodeId owner : space_.member_ids()) {
    for (const index::Record& r : self.system_.cache(owner).all_live(now)) {
      if (!reachable(r.provider)) ++debt.dead_provider;
    }
  }
  return debt;
}

void KhdnProtocol::republish(NodeId id) {
  if (space_.contains(id)) system_.publish_now(id);
}

void KhdnProtocol::query(NodeId requester, const ResourceVector& demand,
                         std::size_t want, QueryCallback cb) {
  system_.query(requester, demand, can::Point::normalized(demand, cmax_),
                want,
                [cb = std::move(cb)](std::vector<khdn::KhdnCandidate> f) {
                  std::vector<Discovered> out;
                  out.reserve(f.size());
                  for (auto& c : f) {
                    out.push_back(Discovered{c.provider, c.availability});
                  }
                  cb(std::move(out));
                });
}

}  // namespace soc::core
