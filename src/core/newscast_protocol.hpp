// Newscast gossip baseline as a DiscoveryProtocol.
#pragma once

#include <map>
#include <vector>

#include "src/core/protocol.hpp"
#include "src/gossip/newscast.hpp"

namespace soc::core {

class NewscastProtocol final : public DiscoveryProtocol {
 public:
  NewscastProtocol(sim::Simulator& sim, net::MessageBus& bus,
                   gossip::NewscastConfig config, Rng rng);

  void set_availability_source(AvailabilityFn fn) override;
  void on_join(NodeId id) override;
  void on_leave(NodeId id) override;
  void on_partition_out(NodeId id) override;
  void on_rejoin(NodeId id) override;
  [[nodiscard]] std::vector<NodeId> parked_ids() const override;
  /// Counts fresh (non-expired) view entries naming unreachable providers.
  /// Views have no placement, so "misplaced" stays zero.
  [[nodiscard]] StaleDebt stale_debt(
      const std::function<bool(NodeId)>& reachable,
      SimTime now) const override;
  void query(NodeId requester, const ResourceVector& demand,
             std::size_t want, QueryCallback cb) override;
  [[nodiscard]] std::string name() const override { return "Newscast"; }
  [[nodiscard]] double max_slot_span_ratio() const override {
    return system_.span_ratio();
  }
  void mem_breakdown(obs::MemBreakdown& out) const override {
    out.add("gossip.views", system_.mem_bytes());
    std::size_t parked = 0;
    for (const auto& [id, view] : parked_) {
      (void)id;
      parked += view.capacity() * sizeof(gossip::ViewEntry);
    }
    out.add("core.parked", parked);
  }

  [[nodiscard]] gossip::NewscastSystem& system() { return system_; }

 private:
  gossip::NewscastSystem system_;
  Rng rng_;
  std::vector<NodeId> members_;  // for bootstrap sampling
  /// Partitioned-out nodes' parked views, keyed ascending, awaiting rejoin.
  std::map<NodeId, std::vector<gossip::ViewEntry>> parked_;
};

}  // namespace soc::core
