// Newscast gossip baseline as a DiscoveryProtocol.
#pragma once

#include <vector>

#include "src/core/protocol.hpp"
#include "src/gossip/newscast.hpp"

namespace soc::core {

class NewscastProtocol final : public DiscoveryProtocol {
 public:
  NewscastProtocol(sim::Simulator& sim, net::MessageBus& bus,
                   gossip::NewscastConfig config, Rng rng);

  void set_availability_source(AvailabilityFn fn) override;
  void on_join(NodeId id) override;
  void on_leave(NodeId id) override;
  void query(NodeId requester, const ResourceVector& demand,
             std::size_t want, QueryCallback cb) override;
  [[nodiscard]] std::string name() const override { return "Newscast"; }

  [[nodiscard]] gossip::NewscastSystem& system() { return system_; }

 private:
  gossip::NewscastSystem system_;
  Rng rng_;
  std::vector<NodeId> members_;  // for bootstrap sampling
};

}  // namespace soc::core
