// Umbrella header: the public API of the PID-CAN / Self-Organizing Cloud
// library.  Examples and downstream users include just this.
#pragma once

#include "src/can/ascii_art.hpp"       // 2-D zone visualization
#include "src/can/geometry.hpp"        // CAN points and zones
#include "src/can/partition_tree.hpp"  // binary partition tree
#include "src/can/router.hpp"          // plain CAN greedy routing
#include "src/can/space.hpp"           // overlay membership & neighbors
#include "src/common/cli.hpp"
#include "src/common/resource_vector.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/common/types.hpp"
#include "src/core/experiment.hpp"     // full-system experiment driver
#include "src/core/khdn_protocol.hpp"
#include "src/core/newscast_protocol.hpp"
#include "src/core/pidcan_protocol.hpp"
#include "src/core/protocol.hpp"
#include "src/gossip/aggregation.hpp"  // gossip max-aggregation ([23])
#include "src/gossip/newscast.hpp"     // Newscast baseline
#include "src/index/inscan.hpp"        // INSCAN + index diffusion
#include "src/khdn/khdn.hpp"           // KHDN-CAN baseline
#include "src/metrics/csv.hpp"
#include "src/metrics/task_metrics.hpp"
#include "src/net/message_bus.hpp"
#include "src/net/topology.hpp"
#include "src/psm/checkpoint.hpp"      // execution fault-tolerance (§VI)
#include "src/psm/scheduler.hpp"       // proportional-share scheduler
#include "src/psm/task.hpp"
#include "src/query/query_engine.hpp"  // Alg. 3–5 query pipeline
#include "src/sim/simulator.hpp"       // discrete-event engine
#include "src/workload/generator.hpp"  // Table I/II workloads
