// The resource-discovery protocol interface the Self-Organizing Cloud node
// layer programs against.  Implementations: PID-CAN (SID/HID × SoS × VD),
// Newscast gossip, and KHDN-CAN.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/resource_vector.hpp"
#include "src/common/types.hpp"

namespace soc::core {

/// A discovered execution candidate: the advertised (possibly stale)
/// availability of a provider node.
struct Discovered {
  NodeId provider;
  ResourceVector availability;
};

class DiscoveryProtocol {
 public:
  using AvailabilityFn =
      std::function<std::optional<ResourceVector>(NodeId)>;
  using QueryCallback = std::function<void(std::vector<Discovered>)>;

  virtual ~DiscoveryProtocol() = default;

  /// Wire the live-availability source (the node layer's PSM schedulers).
  virtual void set_availability_source(AvailabilityFn fn) = 0;

  /// A host joined the system (already present in the network topology).
  virtual void on_join(NodeId id) = 0;
  /// A host departed; its protocol state must be torn down.
  virtual void on_leave(NodeId id) = 0;

  /// Multi-dimensional range query: find up to `want` candidates whose
  /// advertised availability dominates `demand`.  The callback fires
  /// exactly once (possibly empty).
  virtual void query(NodeId requester, const ResourceVector& demand,
                     std::size_t want, QueryCallback cb) = 0;

  /// The host's availability just changed materially (a task was admitted
  /// or a dispatch was rejected): push a fresh state update immediately
  /// instead of waiting for the periodic cycle.  Default: no-op.
  virtual void republish(NodeId /*id*/) {}

  /// Diagnostics oracle: how many *currently cached* records anywhere in
  /// the system qualify for `demand` (i.e. what a perfect search could
  /// find).  Default: unknown (0).
  [[nodiscard]] virtual std::size_t discoverable(
      const ResourceVector& /*demand*/, SimTime /*now*/) const {
    return 0;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace soc::core
