// The resource-discovery protocol interface the Self-Organizing Cloud node
// layer programs against.  Implementations: PID-CAN (SID/HID × SoS × VD),
// Newscast gossip, and KHDN-CAN.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/resource_vector.hpp"
#include "src/common/types.hpp"
#include "src/obs/profiler.hpp"

namespace soc::core {

/// A discovered execution candidate: the advertised (possibly stale)
/// availability of a provider node.
struct Discovered {
  NodeId provider;
  ResourceVector availability;
};

/// Stale-record debt: how much of the protocol's cached discovery state
/// points at providers that can no longer serve.  `dead_provider` counts
/// live (unexpired) records/entries naming a dead or unreachable provider;
/// `misplaced` counts records filed at a node that no longer owns their
/// location (zone ownership moved, e.g. across a partition+heal).
struct StaleDebt {
  std::uint64_t dead_provider = 0;
  std::uint64_t misplaced = 0;
  [[nodiscard]] std::uint64_t total() const {
    return dead_provider + misplaced;
  }
};

class DiscoveryProtocol {
 public:
  using AvailabilityFn =
      std::function<std::optional<ResourceVector>(NodeId)>;
  using QueryCallback = std::function<void(std::vector<Discovered>)>;

  virtual ~DiscoveryProtocol() = default;

  /// Wire the live-availability source (the node layer's PSM schedulers).
  virtual void set_availability_source(AvailabilityFn fn) = 0;

  /// A host joined the system (already present in the network topology).
  virtual void on_join(NodeId id) = 0;
  /// A host departed; its protocol state must be torn down.
  virtual void on_leave(NodeId id) = 0;

  /// `id` was cut off by a network partition: it leaves the overlay like a
  /// departure, but its host is still up, so implementations park its
  /// protocol state (duty cache, indexes, views) for a later on_rejoin.
  /// Default: a plain on_leave — no state survives, rejoin is fresh.
  virtual void on_partition_out(NodeId id) { on_leave(id); }
  /// The partition healed and `id` re-enters the overlay.  Implementations
  /// restore the parked *stale* state and reconcile it on the existing
  /// maintenance paths (re-routing records, pruning, periodic refresh) —
  /// not as a clean fresh join.  Default: a fresh on_join.
  virtual void on_rejoin(NodeId id) { on_join(id); }
  /// Ids whose partitioned-out state is currently parked, ascending (fuzz
  /// oracle: must equal the experiment's partitioned set).
  [[nodiscard]] virtual std::vector<NodeId> parked_ids() const { return {}; }

  /// Stale-record debt over all cached discovery state: `reachable(id)`
  /// says whether a provider is alive *and* on the requester-visible side
  /// of any partition.  Default: unknown (zeros).
  [[nodiscard]] virtual StaleDebt stale_debt(
      const std::function<bool(NodeId)>& /*reachable*/, SimTime /*now*/) const {
    return {};
  }

  /// Multi-dimensional range query: find up to `want` candidates whose
  /// advertised availability dominates `demand`.  The callback fires
  /// exactly once (possibly empty).
  virtual void query(NodeId requester, const ResourceVector& demand,
                     std::size_t want, QueryCallback cb) = 0;

  /// The host's availability just changed materially (a task was admitted
  /// or a dispatch was rejected): push a fresh state update immediately
  /// instead of waiting for the periodic cycle.  Default: no-op.
  virtual void republish(NodeId /*id*/) {}

  /// Diagnostics oracle: how many *currently cached* records anywhere in
  /// the system qualify for `demand` (i.e. what a perfect search could
  /// find).  Default: unknown (0).
  [[nodiscard]] virtual std::size_t discoverable(
      const ResourceVector& /*demand*/, SimTime /*now*/) const {
    return 0;
  }

  /// Max slot_span()/size() over the protocol's per-node state maps
  /// (CAN members, index state, gossip views, KHDN caches): 1.0 when
  /// storage is dense, grows with unreclaimed churn holes.  Reported into
  /// the BENCH schema as slot_span_ratio; DenseNodeMap compaction keeps
  /// it bounded by the compaction factor.  Default for protocols without
  /// per-node maps: dense.
  [[nodiscard]] virtual double max_slot_span_ratio() const { return 1.0; }

  /// Deposit the protocol's per-subsystem storage footprint into the
  /// attribution profiler's breakdown (bucket names like "can.space",
  /// "index.caches", "gossip.views").  Capacity-based accounting — what
  /// the subsystem has claimed from the allocator, which is what peak
  /// RSS sees.  Default: nothing to report.
  virtual void mem_breakdown(obs::MemBreakdown& /*out*/) const {}

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace soc::core
