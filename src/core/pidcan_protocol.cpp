#include "src/core/pidcan_protocol.hpp"

#include <utility>

#include "src/common/assert.hpp"
#include "src/psm/task.hpp"

namespace soc::core {

PidCanProtocol::PidCanProtocol(sim::Simulator& sim, net::MessageBus& bus,
                               ResourceVector cmax, PidCanOptions options,
                               Rng rng)
    : cmax_(std::move(cmax)), options_(options), rng_(rng),
      dims_(cmax_.size() + (options.virtual_dimension ? 1 : 0)),
      space_(dims_, rng_.fork("can-space")),
      index_(sim, bus, space_, options.inscan, rng_.fork("index-system")),
      engine_(index_, options.query), bus_(bus) {
  index_.attach_to_space();
  if (options_.aggregate_cmax) {
    aggregator_ = std::make_unique<gossip::MaxAggregator>(
        sim, bus, options_.aggregation, rng_.fork("cmax-aggregation"));
    // Gossip partners: a uniformly random adjacent CAN neighbor.
    aggregator_->set_peer_sampler(
        [this](NodeId id) -> std::optional<NodeId> {
          if (!space_.contains(id)) return std::nullopt;
          const auto& ns = space_.neighbors_of(id);
          if (ns.empty()) return std::nullopt;
          return ns[rng_.pick_index(ns.size())];
        });
  }
}

std::string PidCanProtocol::name() const {
  std::string n = options_.inscan.diffusion == index::DiffusionMethod::kHopping
                      ? "HID-CAN"
                      : "SID-CAN";
  if (options_.slack_on_submission) n += "+SoS";
  if (options_.virtual_dimension) n += "+VD";
  return n;
}

can::Point PidCanProtocol::locate(const ResourceVector& v, Rng& rng) const {
  const can::Point base = can::Point::normalized(v, cmax_);
  if (!options_.virtual_dimension) return base;
  can::Point p(dims_);
  for (std::size_t i = 0; i < base.dims(); ++i) p[i] = base[i];
  p[dims_ - 1] = rng.uniform();
  return p;
}

void PidCanProtocol::set_availability_source(AvailabilityFn fn) {
  raw_availability_ = fn;
  index_.set_availability_provider(
      [this, fn = std::move(fn)](NodeId id) -> std::optional<index::Record> {
        const auto avail = fn(id);
        if (!avail.has_value()) return std::nullopt;
        index::Record r;
        r.provider = id;
        r.availability = *avail;
        r.location = locate(*avail, rng_);
        r.published_at = index_.simulator().now();
        r.expires_at = r.published_at + options_.inscan.record_ttl;
        return r;
      });
}

void PidCanProtocol::on_join(NodeId id) {
  space_.join(id);
  index_.add_node(id);
  if (aggregator_) {
    // The node's contribution to c_max is its capacity; at join time its
    // availability equals it (no tasks admitted yet).
    ResourceVector local = cmax_;
    if (raw_availability_) {
      if (const auto a = raw_availability_(id); a.has_value()) local = *a;
    }
    aggregator_->add_node(id, local);
  }
  // Account the join's overlay maintenance traffic: the join request routes
  // to the split node and the new neighbor set is notified.
  const std::size_t msgs =
      options_.maintenance_msgs_per_join + space_.neighbors_of(id).size();
  for (std::size_t i = 0; i < msgs; ++i) {
    bus_.stats().on_synthetic_send(id, net::MsgType::kMaintenance, 64);
  }
  // Fresh members publish immediately so they become discoverable before
  // the first periodic update.
  index_.publish_now(id);
}

void PidCanProtocol::leave_overlay(NodeId id) {
  const std::size_t msgs = space_.neighbors_of(id).size();
  if (aggregator_) aggregator_->remove_node(id);
  index_.remove_node(id);
  space_.leave(id);
  for (std::size_t i = 0; i < msgs; ++i) {
    bus_.stats().on_synthetic_send(id, net::MsgType::kMaintenance, 64);
  }
}

void PidCanProtocol::on_leave(NodeId id) {
  // Death drops any parked partition state: there is no host left to rejoin.
  parked_.erase(id);
  if (!space_.contains(id)) return;
  leave_overlay(id);
}

void PidCanProtocol::on_partition_out(NodeId id) {
  if (!space_.contains(id)) return;
  SOC_CHECK(!parked_.contains(id));
  // Park the INSCAN state *before* teardown: remove_node then finds empty
  // moved-from state and re-homes nothing to the takeover node.
  parked_.emplace(id, index_.park_node(id));
  leave_overlay(id);
}

void PidCanProtocol::on_rejoin(NodeId id) {
  const auto it = parked_.find(id);
  if (it == parked_.end()) {
    // Nothing parked (e.g. partitioned before any state existed): fresh join.
    on_join(id);
    return;
  }
  index::IndexSystem::ParkedNode parked = std::move(it->second);
  parked_.erase(it);
  space_.join(id);
  if (aggregator_) {
    ResourceVector local = cmax_;
    if (raw_availability_) {
      if (const auto a = raw_availability_(id); a.has_value()) local = *a;
    }
    aggregator_->add_node(id, local);
  }
  index_.restore_node(id, std::move(parked));
  // Rejoin pays the same overlay-maintenance bill as a join: the zone
  // re-split routes and the new neighbor set is notified.
  const std::size_t msgs =
      options_.maintenance_msgs_per_join + space_.neighbors_of(id).size();
  for (std::size_t i = 0; i < msgs; ++i) {
    bus_.stats().on_synthetic_send(id, net::MsgType::kMaintenance, 64);
  }
  index_.publish_now(id);
}

std::vector<NodeId> PidCanProtocol::parked_ids() const {
  std::vector<NodeId> out;
  out.reserve(parked_.size());
  for (const auto& [id, state] : parked_) out.push_back(id);
  return out;
}

StaleDebt PidCanProtocol::stale_debt(
    const std::function<bool(NodeId)>& reachable, SimTime now) const {
  StaleDebt debt;
  auto& self = const_cast<PidCanProtocol&>(*this);
  for (const NodeId owner : space_.member_ids()) {
    for (const index::Record& r : self.index_.cache(owner).all_live(now)) {
      if (!reachable(r.provider)) {
        ++debt.dead_provider;
      } else if (space_.owner_of(r.location) != owner) {
        ++debt.misplaced;
      }
    }
  }
  return debt;
}

void PidCanProtocol::republish(NodeId id) {
  if (space_.contains(id)) index_.publish_now(id);
}

std::size_t PidCanProtocol::discoverable(const ResourceVector& demand,
                                         SimTime now) const {
  std::size_t n = 0;
  auto& self = const_cast<PidCanProtocol&>(*this);
  for (const NodeId id : space_.member_ids()) {
    n += self.index_.cache(id).qualified_count(demand, now);
  }
  return n;
}

ResourceVector PidCanProtocol::cmax_bound_for(NodeId requester) const {
  if (aggregator_ && aggregator_->tracks(requester)) {
    return aggregator_->estimate(requester);
  }
  return cmax_;
}

ResourceVector PidCanProtocol::skew_demand(const ResourceVector& e,
                                           NodeId requester) {
  const ResourceVector bound = cmax_bound_for(requester);
  ResourceVector out(e.size());
  for (std::size_t i = 0; i < e.size(); ++i) {
    const double hi = std::max(e[i], bound[i]);
    out[i] = e[i] + rng_.uniform() * (hi - e[i]);
  }
  return out;
}

void PidCanProtocol::query(NodeId requester, const ResourceVector& demand,
                           std::size_t want, QueryCallback cb) {
  auto to_discovered = [](std::vector<query::Candidate> found) {
    std::vector<Discovered> out;
    out.reserve(found.size());
    for (auto& c : found) out.push_back(Discovered{c.provider, c.availability});
    return out;
  };

  if (!options_.slack_on_submission) {
    engine_.submit_k(requester, demand, locate(demand, rng_), want,
                     [cb = std::move(cb), to_discovered](auto found) {
                       cb(to_discovered(std::move(found)));
                     });
    return;
  }

  // SoS: first query with the skewed vector e' (Eq. 3); if that cannot
  // fulfil the expectation, restore the original e and search again —
  // "twice resource query overhead" as the paper notes.
  const ResourceVector skewed = skew_demand(demand, requester);
  engine_.submit_k(
      requester, skewed, locate(skewed, rng_), want,
      [this, requester, demand, want, cb = std::move(cb),
       to_discovered](auto found) {
        if (found.size() >= want) {
          cb(to_discovered(std::move(found)));
          return;
        }
        engine_.submit_k(requester, demand, locate(demand, rng_), want,
                         [cb, to_discovered](auto retry_found) {
                           cb(to_discovered(std::move(retry_found)));
                         });
      });
}

}  // namespace soc::core
