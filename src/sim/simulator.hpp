// The discrete-event simulator: a clock plus the event queue plus helpers
// for periodic processes.  Replaces PeerSim's event-driven engine used by
// the paper's evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"
#include "src/sim/event_queue.hpp"

namespace soc::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  [[nodiscard]] SimTime now() const { return now_; }

  /// Root RNG for the run; components should fork named streams from it.
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedule fn at absolute time `at`.  Checked: `at` must be >= now and
  /// strictly before kSimTimeNever (the "no pending event" sentinel must
  /// never appear as a real event time).
  EventHandle schedule_at(SimTime at, EventFn fn);
  /// Schedule fn after a non-negative delay.
  EventHandle schedule_after(SimTime delay, EventFn fn);
  bool cancel(EventHandle h);

  /// Schedule fn every `period`, first firing after `phase` (defaults to a
  /// full period).  The callback may return false to stop the series.
  /// Jitter (fraction of the period, drawn per firing) desynchronizes the
  /// thousands of per-node maintenance loops like a real deployment.
  EventHandle schedule_periodic(SimTime period, std::function<bool()> fn,
                                SimTime phase = -1, double jitter = 0.0);

  /// Run until the queue drains or `until` is reached (events strictly after
  /// `until` stay queued).  Returns the number of events executed.
  std::uint64_t run_until(SimTime until);
  /// Run until the queue is empty.
  std::uint64_t run_all();

  /// Execute exactly one event if any is pending before `until`.
  bool step(SimTime until = kSimTimeNever);

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Event-queue storage footprint (attribution-profiler hook).
  [[nodiscard]] std::size_t queue_mem_bytes() const {
    return queue_.mem_bytes();
  }

  /// Event-queue slab/heap sanity oracle (sim_fuzz); see
  /// EventQueue::verify_integrity.
  [[nodiscard]] bool verify_queue_integrity() const {
    return queue_.verify_integrity();
  }

 private:
  struct PeriodicState;
  void fire_periodic(std::shared_ptr<PeriodicState> state);

  SimTime now_ = 0;
  EventQueue queue_;
  Rng rng_;
  std::uint64_t executed_ = 0;
};

}  // namespace soc::sim
