#include "src/sim/event_queue.hpp"

#include <utility>

namespace soc::sim {

EventHandle EventQueue::push(SimTime at, EventFn fn) {
  SOC_CHECK(fn != nullptr);
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  fns_.emplace(id, std::move(fn));
  return EventHandle{id};
}

bool EventQueue::cancel(EventHandle h) {
  return h.valid() && fns_.erase(h.id) > 0;
}

void EventQueue::skim() {
  while (!heap_.empty() && !fns_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  // skim() only removes dead entries, so a const_cast-free variant would
  // require a mutable heap; keep the API honest by scanning here instead.
  auto* self = const_cast<EventQueue*>(this);
  self->skim();
  return heap_.empty() ? kSimTimeNever : heap_.top().at;
}

EventQueue::Popped EventQueue::pop() {
  skim();
  SOC_CHECK_MSG(!heap_.empty(), "pop() on empty event queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = fns_.find(top.id);
  SOC_CHECK(it != fns_.end());
  Popped out{top.at, std::move(it->second)};
  fns_.erase(it);
  return out;
}

}  // namespace soc::sim
