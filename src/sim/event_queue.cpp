#include "src/sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace soc::sim {

namespace {
constexpr std::size_t kArity = 4;
}

std::uint32_t EventQueue::alloc_slot() {
  const std::uint32_t idx = slots_.alloc();
  ++slots_[idx].gen;  // even (free / fresh) -> odd (live)
  return idx;
}

void EventQueue::free_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.fn.reset();  // release captures immediately, not at slot reuse
  ++s.gen;       // odd (live) -> even (free); stale handles now mismatch
  slots_.release(idx);
}

EventHandle EventQueue::push(SimTime at, EventFn fn) {
  SOC_CHECK_MSG(static_cast<bool>(fn), "null event callback");
  const std::uint32_t idx = alloc_slot();
  slots_[idx].fn = std::move(fn);
  heap_.emplace_back();  // room for the sifted-in entry
  sift_up(heap_.size() - 1, Entry{at, next_seq_++, idx});
  return EventHandle{idx, slots_[idx].gen};
}

bool EventQueue::cancel(EventHandle h) {
  if (!h.valid() || h.slot >= slots_.slots()) return false;
  Slot& s = slots_[h.slot];
  if (s.gen != h.gen) return false;  // executed, cancelled, or recycled
  heap_remove(s.heap_pos);
  free_slot(h.slot);
  return true;
}

EventQueue::Popped EventQueue::pop() {
  SOC_CHECK_MSG(!heap_.empty(), "pop() on empty event queue");
  const std::uint32_t idx = heap_[0].slot;
  Popped out{heap_[0].at, std::move(slots_[idx].fn)};
  heap_remove(0);
  free_slot(idx);
  return out;
}

void EventQueue::heap_remove(std::uint32_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  const Entry moved = heap_[last];
  heap_.pop_back();
  // The moved-in entry may violate the invariant in either direction.
  if (pos > 0 && moved.before(heap_[(pos - 1) / kArity])) {
    sift_up(pos, moved);
  } else {
    sift_down(pos, moved);
  }
}

void EventQueue::sift_up(std::size_t pos, Entry e) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!e.before(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = e;
  slots_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

bool EventQueue::verify_integrity() const {
  if (slots_.live() != heap_.size()) return false;
  std::vector<bool> seen(slots_.slots(), false);
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const Entry& e = heap_[i];
    if (e.slot >= slots_.slots()) return false;
    if (seen[e.slot]) return false;  // one slot referenced twice
    seen[e.slot] = true;
    const Slot& s = slots_[e.slot];
    if ((s.gen & 1u) == 0) return false;  // heap points at a freed slot
    if (s.heap_pos != i) return false;    // stale back-pointer
    if (i > 0 && e.before(heap_[(i - 1) / kArity])) return false;
  }
  return true;
}

void EventQueue::sift_down(std::size_t pos, Entry e) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = pos * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(e)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = e;
  slots_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

}  // namespace soc::sim
