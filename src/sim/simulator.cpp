#include "src/sim/simulator.hpp"

#include <memory>
#include <utility>

#include "src/common/logging.hpp"

namespace soc::sim {

namespace {
// While a simulator drives this thread, SOC_LOG lines carry a
// [t=<sim µs>] prefix.  Installed around the run loop; save/restore
// supports nested simulators (tests that run one sim from inside
// another's callback).
struct ScopedLogTime {
  explicit ScopedLogTime(const Simulator* sim)
      : prev_(Logger::set_time_source(
            {[](const void* ctx) {
               return static_cast<const Simulator*>(ctx)->now();
             },
             sim})) {}
  ~ScopedLogTime() { Logger::set_time_source(prev_); }
  Logger::TimeSource prev_;
};
}  // namespace

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

EventHandle Simulator::schedule_at(SimTime at, EventFn fn) {
  SOC_CHECK_MSG(at >= now_, "cannot schedule into the past");
  SOC_CHECK_MSG(at < kSimTimeNever, "cannot schedule at kSimTimeNever");
  return queue_.push(at, std::move(fn));
}

EventHandle Simulator::schedule_after(SimTime delay, EventFn fn) {
  SOC_CHECK(delay >= 0);
  SOC_CHECK_MSG(delay < kSimTimeNever - now_, "delay overflows SimTime");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventHandle h) { return queue_.cancel(h); }

// Periodic processes reschedule themselves; the shared state lets the
// caller's returned handle cancel whichever firing is currently queued.
// Each firing's closure captures only the shared_ptr (16 bytes), so the
// whole chain stays inside the event-queue slab — no per-firing allocation.
struct Simulator::PeriodicState {
  Simulator* sim;
  SimTime period;
  std::function<bool()> fn;
  double jitter;
  Rng jitter_rng;
  EventHandle current;
};

void Simulator::fire_periodic(std::shared_ptr<PeriodicState> state) {
  if (!state->fn()) return;  // process asked to stop
  SimTime delay = state->period;
  if (state->jitter > 0.0) {
    const double f =
        1.0 + state->jitter * (2.0 * state->jitter_rng.uniform() - 1.0);
    delay = static_cast<SimTime>(static_cast<double>(delay) * f);
    if (delay < 1) delay = 1;
  }
  PeriodicState* s = state.get();
  s->current = schedule_after(delay, [st = std::move(state)]() mutable {
    st->sim->fire_periodic(std::move(st));
  });
}

EventHandle Simulator::schedule_periodic(SimTime period,
                                         std::function<bool()> fn,
                                         SimTime phase, double jitter) {
  SOC_CHECK(period > 0);
  SOC_CHECK(jitter >= 0.0 && jitter < 1.0);
  auto state = std::make_shared<PeriodicState>(
      PeriodicState{this, period, std::move(fn), jitter,
                    rng_.fork("periodic-jitter").fork(queue_.size()),
                    EventHandle{}});

  const SimTime first = phase >= 0 ? phase : period;
  PeriodicState* s = state.get();
  s->current = schedule_after(first, [st = std::move(state)]() mutable {
    st->sim->fire_periodic(std::move(st));
  });
  return s->current;
}

std::uint64_t Simulator::run_until(SimTime until) {
  const ScopedLogTime log_time(this);
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [at, fn] = queue_.pop();
    SOC_DCHECK(at >= now_);
    now_ = at;
    fn();
    ++n;
  }
  // Advance the clock to the horizon even if no event lands exactly there,
  // so consecutive run_until calls observe monotone time.
  if (until != kSimTimeNever && until > now_) now_ = until;
  executed_ += n;
  return n;
}

std::uint64_t Simulator::run_all() { return run_until(kSimTimeNever); }

bool Simulator::step(SimTime until) {
  const ScopedLogTime log_time(this);
  if (queue_.empty() || queue_.next_time() > until) return false;
  auto [at, fn] = queue_.pop();
  now_ = at;
  fn();
  ++executed_;
  return true;
}

}  // namespace soc::sim
