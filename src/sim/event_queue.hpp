// Deterministic pending-event set for the discrete-event simulator.
//
// Events at the same timestamp are executed in schedule order (a per-queue
// monotone sequence number breaks ties), so a simulation run is a pure
// function of its seed — the property all reproduction experiments rely on.
//
// Layout: an indexed 4-ary min-heap over a shared Slab<T> arena.  Heap
// entries carry the full sort key (time, seq) so sifting touches only the
// contiguous heap array; the slab slot holds the callback inline via
// InlineFn plus a generation counter.  Scheduling an event costs zero heap
// allocations for small captures, and cancel() is an O(log n) in-place heap
// removal — cancelled events free their slot and their captures immediately
// instead of lingering as tombstones.  Handles are generation-checked, so a
// stale handle to a recycled slot is rejected.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/inline_fn.hpp"
#include "src/common/slab.hpp"
#include "src/common/types.hpp"

namespace soc::sim {

using EventFn = InlineFn<void()>;

/// Handle for cancelling a scheduled event: slab slot plus the generation
/// the slot had when the event was scheduled.
struct EventHandle {
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

  std::uint32_t slot = kInvalidSlot;
  std::uint32_t gen = 0;

  [[nodiscard]] bool valid() const { return slot != kInvalidSlot; }
};

class EventQueue {
 public:
  EventHandle push(SimTime at, EventFn fn);

  /// Cancel a previously scheduled event, removing it from the heap and
  /// releasing its slab slot (and captures) immediately.  Returns false if
  /// the event was unknown (already executed or already cancelled).
  bool cancel(EventHandle h);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest live event time, or kSimTimeNever when empty.
  [[nodiscard]] SimTime next_time() const {
    return heap_.empty() ? kSimTimeNever : heap_[0].at;
  }

  /// Pop and return the earliest live event.  Requires !empty().
  struct Popped {
    SimTime at;
    EventFn fn;
  };
  Popped pop();

  /// Slab high-water mark: slots ever allocated (live + free-listed).
  /// Bounded by the *peak* number of simultaneously pending events, not the
  /// total scheduled — the stress tests assert on this.
  [[nodiscard]] std::size_t slab_slots() const { return slots_.slots(); }

  /// Bytes claimed by the backing storage (heap capacity + slab
  /// high-water slots); attribution-profiler hook.
  [[nodiscard]] std::size_t mem_bytes() const {
    return heap_.capacity() * sizeof(Entry) + slots_.slots() * sizeof(Slot);
  }

  /// Handle-generation / heap sanity oracle (sim_fuzz): every heap entry's
  /// slot is live (odd generation) with a back-pointer to its heap
  /// position, the heap order invariant holds for all parent/child pairs,
  /// and the slab's live count equals the heap size — i.e. no leaked,
  /// double-freed or aliased slots.  O(n); read-only.
  [[nodiscard]] bool verify_integrity() const;

 private:
  /// 24-byte heap entry: the full sort key plus the owning slot, so sift
  /// comparisons stay inside the contiguous heap array.
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;

    /// Strict heap order: (time, schedule sequence).
    [[nodiscard]] bool before(const Entry& o) const {
      return at != o.at ? at < o.at : seq < o.seq;
    }
  };

  struct Slot {
    std::uint32_t gen = 0;       ///< odd = live, even = free
    std::uint32_t heap_pos = 0;  ///< heap index while live
    EventFn fn;
  };

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t idx);
  void heap_remove(std::uint32_t pos);
  void sift_up(std::size_t pos, Entry e);
  void sift_down(std::size_t pos, Entry e);

  std::vector<Entry> heap_;  ///< 4-ary min-heap
  Slab<Slot> slots_;         ///< shared slab arena (free list lives there)
  std::uint64_t next_seq_ = 0;
};

}  // namespace soc::sim
