// Deterministic pending-event set for the discrete-event simulator.
//
// Events at the same timestamp are executed in schedule order (a per-queue
// monotone sequence number breaks ties), so a simulation run is a pure
// function of its seed — the property all reproduction experiments rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/types.hpp"

namespace soc::sim {

using EventFn = std::function<void()>;

/// Handle for cancelling a scheduled event.  Cancellation is lazy: the
/// entry stays in the heap but is skipped when popped.
struct EventHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

class EventQueue {
 public:
  EventHandle push(SimTime at, EventFn fn);

  /// Cancel a previously scheduled event.  Returns false if the event was
  /// unknown (already executed or already cancelled).
  bool cancel(EventHandle h);

  [[nodiscard]] bool empty() const { return fns_.empty(); }
  [[nodiscard]] std::size_t size() const { return fns_.size(); }

  /// Earliest live event time, or kSimTimeNever when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pop and return the earliest live event.  Requires !empty().
  struct Popped {
    SimTime at;
    EventFn fn;
  };
  Popped pop();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint64_t id;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  /// Remove cancelled entries sitting at the heap top.
  void skim();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, EventFn> fns_;  // live events by id
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace soc::sim
