#include "src/net/link_model.hpp"

#include <algorithm>

#include "src/common/logging.hpp"

namespace soc::net {

LinkModel::LinkModel(const Topology& topo, LinkFaultConfig config, Rng rng)
    : topo_(topo), config_(config), rng_(rng),
      straggler_rng_(rng_.fork("stragglers")) {
  SOC_CHECK(config_.straggler_multiplier >= 1.0);
}

double LinkModel::straggler_multiplier_of(NodeId id) {
  if (config_.straggler_fraction <= 0.0) return 1.0;
  if (id.value >= straggler_cache_.size()) {
    straggler_cache_.resize(id.value + 1, 0.0);
  }
  double& cached = straggler_cache_[id.value];
  if (cached == 0.0) {
    // One fork per id: the assignment is a pure function of (seed, id), not
    // of which messages happened to flow first.
    Rng r = straggler_rng_.fork(id.value);
    cached = r.chance(config_.straggler_fraction)
                 ? config_.straggler_multiplier
                 : 1.0;
  }
  return cached;
}

LinkModel::Fate LinkModel::apply(NodeId from, NodeId to) {
  Fate fate;

  // Step the Gilbert–Elliott chain of the link class this message crosses,
  // then draw loss at the post-step state's rate.  One chain per class (not
  // per link pair) is the correlation: a bad spell on the WAN hits every
  // concurrent cross-LAN message.
  const bool wan = !topo_.same_lan(from, to);
  const GilbertElliott& ge = wan ? config_.wan : config_.lan;
  bool& bad = wan ? wan_bad_ : lan_bad_;
  if (bad) {
    if (rng_.chance(ge.p_exit_bad)) bad = false;
  } else {
    if (rng_.chance(ge.p_enter_bad)) bad = true;
  }
  fate.lost = rng_.chance(bad ? ge.loss_bad : ge.loss_good);

  if (config_.reorder_probability > 0.0 &&
      rng_.chance(config_.reorder_probability)) {
    fate.extra_delay =
        seconds(rng_.uniform(0.0, config_.reorder_extra_delay_s));
  }
  if (config_.duplicate_probability > 0.0 &&
      rng_.chance(config_.duplicate_probability)) {
    fate.duplicate = true;
    fate.duplicate_delay_factor = rng_.uniform(1.0, 2.0);
  }
  fate.delay_multiplier = std::max(straggler_multiplier_of(from),
                                   straggler_multiplier_of(to));
  return fate;
}

}  // namespace soc::net
