// Internet model from the paper's experimental setting: nodes are grouped
// into LANs; two nodes in the same LAN communicate at LAN bandwidth
// (5–10 Mbps), nodes in different LANs communicate via their WAN access
// links (0.2–2 Mbps) with ~200 ms one-way WAN delay.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace soc::net {

struct TopologyConfig {
  std::size_t lan_size = 50;            ///< hosts per LAN
  double lan_bandwidth_mbps_lo = 5.0;   ///< Table I: LAN 5–10 Mbps
  double lan_bandwidth_mbps_hi = 10.0;
  double wan_bandwidth_mbps_lo = 0.2;   ///< Table I: WAN 0.2–2 Mbps
  double wan_bandwidth_mbps_hi = 2.0;
  SimTime lan_latency = millis(1);      ///< one-way propagation, same LAN
  SimTime wan_latency = millis(200);    ///< paper: ~200 ms per WAN delay
  double latency_jitter = 0.1;          ///< ± fraction applied per message
};

/// Static-plus-growable host topology.  Hosts fill LANs sequentially in
/// arrival order (`lan = host_index / lan_size`): each LAN fills to
/// capacity before the next opens, so churn joins land in the newest LAN —
/// cohort arrivals share a site, which is what makes LAN-level partitions
/// spatially correlated.  (The topology never learns about departures, so
/// alive populations per LAN can drift below lan_size; "balancing" against
/// liveness is not possible at this layer and is deliberately not
/// attempted — the sequential rule is pinned by the golden trajectories.)
class Topology {
 public:
  Topology(TopologyConfig config, Rng rng);

  /// Register a host and return its id.
  NodeId add_host();
  /// Register `n` hosts.
  void add_hosts(std::size_t n);

  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::size_t lan_of(NodeId id) const;
  /// Number of LAN groups opened so far (the last one may be partial).
  [[nodiscard]] std::size_t lan_count() const {
    return lan_bandwidth_mbps_.size();
  }
  [[nodiscard]] bool same_lan(NodeId a, NodeId b) const;

  /// Effective bandwidth between two hosts in Mbps.
  [[nodiscard]] double bandwidth_mbps(NodeId a, NodeId b) const;
  /// WAN access bandwidth of one host in Mbps (Table I per-node draw).
  [[nodiscard]] double wan_bandwidth_mbps(NodeId id) const;

  /// One-way propagation latency between two hosts (no jitter applied).
  [[nodiscard]] SimTime base_latency(NodeId a, NodeId b) const;

  /// Full one-way transfer delay for a message of `bytes` between `a` and
  /// `b`, with deterministic jitter drawn from `jitter_rng`.
  [[nodiscard]] SimTime transfer_delay(NodeId a, NodeId b, std::size_t bytes,
                                       Rng& jitter_rng) const;

  [[nodiscard]] const TopologyConfig& config() const { return config_; }

 private:
  struct Host {
    std::size_t lan;
    double wan_bandwidth_mbps;
  };

  TopologyConfig config_;
  Rng rng_;
  std::vector<Host> hosts_;
  std::vector<double> lan_bandwidth_mbps_;  // per LAN
};

}  // namespace soc::net
