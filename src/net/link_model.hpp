// Correlated link faults on top of the Topology's clean delay model.
//
// The paper's setting treats the network as uniform LAN/WAN delay with
// independent per-message behavior; production overlays die from
// *correlated* faults instead.  LinkModel adds, strictly opt-in:
//
//   * burst loss — one Gilbert–Elliott two-state chain per link class
//     (LAN, WAN), stepped once per message crossing that class, so losses
//     cluster in bursts instead of arriving i.i.d.;
//   * reordering — a probabilistic extra delay on individual messages, so
//     a later send can overtake an earlier one on the same link class;
//   * duplication — a message occasionally arrives twice (the copy is
//     billed as a second send, keeping the conservation law exact);
//   * stragglers — a deterministic per-node fraction of hosts whose links
//     run a constant factor slower in both directions.
//
// Everything draws from one named fork of the simulator's root RNG
// ("link-model", created only when the model is enabled), so enabling the
// model never perturbs any existing stream and every faulty schedule stays
// seed-replayable.  A default LinkFaultConfig is disabled and leaves the
// MessageBus bit-identical to a build without this layer.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"
#include "src/net/topology.hpp"

namespace soc::net {

/// Parameters of one Gilbert–Elliott burst-loss chain: the link class
/// oscillates between a good and a bad state with the given per-message
/// transition probabilities and drops messages at the state's loss rate.
struct GilbertElliott {
  double p_enter_bad = 0.0;  ///< P(good → bad) per message
  double p_exit_bad = 0.0;   ///< P(bad → good) per message
  double loss_good = 0.0;    ///< loss probability while good
  double loss_bad = 0.0;     ///< loss probability while bad
};

struct LinkFaultConfig {
  bool enabled = false;  ///< master switch; default keeps goldens identical
  GilbertElliott lan;    ///< chain stepped by same-LAN messages
  GilbertElliott wan;    ///< chain stepped by cross-LAN messages
  double reorder_probability = 0.0;  ///< P(extra delay) per message
  double reorder_extra_delay_s = 0.0;  ///< uniform [0, this] extra seconds
  double duplicate_probability = 0.0;  ///< P(second delivery) per message
  double straggler_fraction = 0.0;   ///< fraction of hosts that straggle
  double straggler_multiplier = 1.0; ///< delay factor on straggler links
};

class LinkModel {
 public:
  /// What happens to one message: drawn once at send time so the whole
  /// trajectory is a function of the seed alone.
  struct Fate {
    bool lost = false;
    bool duplicate = false;
    double delay_multiplier = 1.0;    ///< straggler slowdown (≥ 1)
    SimTime extra_delay = 0;          ///< reordering jitter
    double duplicate_delay_factor = 1.0;  ///< copy delay = delay · factor
  };

  LinkModel(const Topology& topo, LinkFaultConfig config, Rng rng);

  /// Step the link-class chain for (from, to) and draw the message's fate.
  [[nodiscard]] Fate apply(NodeId from, NodeId to);

  /// Straggler slowdown of one host (1.0 for non-stragglers).  Derived
  /// from a per-id RNG fork, so it does not depend on first-send order.
  [[nodiscard]] double straggler_multiplier_of(NodeId id);

  /// Chain state, for tests: is the given link class currently bad?
  [[nodiscard]] bool in_bad_state(bool wan) const {
    return wan ? wan_bad_ : lan_bad_;
  }

  [[nodiscard]] const LinkFaultConfig& config() const { return config_; }

 private:
  const Topology& topo_;
  LinkFaultConfig config_;
  Rng rng_;
  Rng straggler_rng_;  ///< forked per id; never stepped directly
  bool lan_bad_ = false;
  bool wan_bad_ = false;
  std::vector<double> straggler_cache_;  ///< dense by NodeId, lazy
};

}  // namespace soc::net
