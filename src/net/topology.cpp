#include "src/net/topology.hpp"

#include <algorithm>

namespace soc::net {

Topology::Topology(TopologyConfig config, Rng rng)
    : config_(config), rng_(rng) {
  SOC_CHECK(config_.lan_size > 0);
}

NodeId Topology::add_host() {
  const std::size_t lan = hosts_.size() / config_.lan_size;
  if (lan >= lan_bandwidth_mbps_.size()) {
    lan_bandwidth_mbps_.push_back(rng_.uniform(config_.lan_bandwidth_mbps_lo,
                                               config_.lan_bandwidth_mbps_hi));
  }
  hosts_.push_back(Host{
      lan, rng_.uniform(config_.wan_bandwidth_mbps_lo,
                        config_.wan_bandwidth_mbps_hi)});
  return NodeId(static_cast<std::uint32_t>(hosts_.size() - 1));
}

void Topology::add_hosts(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) add_host();
}

std::size_t Topology::lan_of(NodeId id) const {
  SOC_CHECK(id.value < hosts_.size());
  return hosts_[id.value].lan;
}

bool Topology::same_lan(NodeId a, NodeId b) const {
  return lan_of(a) == lan_of(b);
}

double Topology::wan_bandwidth_mbps(NodeId id) const {
  SOC_CHECK(id.value < hosts_.size());
  return hosts_[id.value].wan_bandwidth_mbps;
}

double Topology::bandwidth_mbps(NodeId a, NodeId b) const {
  if (same_lan(a, b)) return lan_bandwidth_mbps_[lan_of(a)];
  return std::min(wan_bandwidth_mbps(a), wan_bandwidth_mbps(b));
}

SimTime Topology::base_latency(NodeId a, NodeId b) const {
  return same_lan(a, b) ? config_.lan_latency : config_.wan_latency;
}

SimTime Topology::transfer_delay(NodeId a, NodeId b, std::size_t bytes,
                                 Rng& jitter_rng) const {
  const double bits = static_cast<double>(bytes) * 8.0;
  const double mbps = bandwidth_mbps(a, b);
  const double serialization_s = bits / (mbps * 1e6);
  SimTime delay = base_latency(a, b) + seconds(serialization_s);
  if (config_.latency_jitter > 0.0) {
    const double f = 1.0 + config_.latency_jitter *
                               (2.0 * jitter_rng.uniform() - 1.0);
    delay = static_cast<SimTime>(static_cast<double>(delay) * f);
  }
  return std::max<SimTime>(delay, 1);
}

}  // namespace soc::net
