// Simulated message delivery between hosts, with per-type and per-node
// accounting.  The per-node sent/forwarded counter is exactly the paper's
// "message delivery cost" metric (Table III).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "src/common/inline_fn.hpp"
#include "src/common/rng.hpp"
#include "src/common/slab.hpp"
#include "src/common/types.hpp"
#include "src/net/link_model.hpp"
#include "src/net/topology.hpp"
#include "src/obs/profiler.hpp"
#include "src/sim/simulator.hpp"

namespace soc::net {

/// Every protocol message in the system, for traffic accounting.
enum class MsgType : std::uint8_t {
  kStateUpdate,    ///< availability record routed to its duty node
  kIndexDiffuse,   ///< Alg. 1/2 index (identifier) diffusion
  kIndexProbe,     ///< INSCAN directional walks building index tables
  kDutyQuery,      ///< Alg. 3 query routed to duty node
  kIndexAgent,     ///< Alg. 4 agent message
  kIndexJump,      ///< Alg. 5 jump message
  kFoundNotice,    ///< FoundList ϕ back to requester
  kGossip,         ///< Newscast cache exchange
  kKhdnSpread,     ///< KHDN-CAN K-hop state spreading
  kDispatch,       ///< task dispatch / admission result
  kMaintenance,    ///< join/leave overlay maintenance
  kCount
};

[[nodiscard]] std::string_view msg_type_name(MsgType t);

/// Traffic accounting across the whole simulation.  Alongside the paper's
/// sent-side cost metric, delivery outcomes are tracked per type: a message
/// either reaches a live destination (delivered), is dropped because the
/// destination churned out or the link lost it (lost), or is swallowed by
/// an active network partition (partitioned — accounted separately so
/// partition damage is distinguishable from churn/burst loss).
class TrafficStats {
 public:
  void on_send(NodeId from, MsgType type, std::size_t bytes);
  void on_delivered(MsgType type);
  void on_lost(MsgType type);
  /// A cross-partition message reached its would-be arrival time: resolved
  /// as partitioned, never delivered.
  void on_partitioned(MsgType type);
  /// Sent-side-only accounting charge with no simulated delivery (the
  /// protocols bill join/leave maintenance traffic this way).  Counts
  /// toward sent()/per_node_cost like a real send, but is tracked
  /// separately so the conservation law stays exact:
  ///   sent == delivered + lost + partitioned + in_flight + synthetic.
  void on_synthetic_send(NodeId from, MsgType type, std::size_t bytes);

  [[nodiscard]] std::uint64_t sent(MsgType type) const;
  [[nodiscard]] std::uint64_t delivered(MsgType type) const;
  [[nodiscard]] std::uint64_t lost(MsgType type) const;
  [[nodiscard]] std::uint64_t partitioned(MsgType type) const;
  [[nodiscard]] std::uint64_t total_sent() const;
  [[nodiscard]] std::uint64_t total_delivered() const;
  [[nodiscard]] std::uint64_t total_lost() const;
  [[nodiscard]] std::uint64_t total_partitioned() const;
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

  /// Messages sent but not yet resolved.  Together with the above this
  /// pins the per-type conservation law the sim_fuzz harness asserts at
  /// every instant:
  ///   sent == delivered + lost + partitioned + in_flight + synthetic.
  [[nodiscard]] std::uint64_t in_flight(MsgType type) const;
  [[nodiscard]] std::uint64_t total_in_flight() const;
  [[nodiscard]] std::uint64_t synthetic(MsgType type) const;

  /// Paper metric: messages sent/forwarded per node, averaged over the
  /// node population.
  [[nodiscard]] double per_node_cost(std::size_t node_count) const;

  void reset();

 private:
  static constexpr std::size_t kTypes =
      static_cast<std::size_t>(MsgType::kCount);

  std::array<std::uint64_t, kTypes> by_type_{};
  std::array<std::uint64_t, kTypes> delivered_{};
  std::array<std::uint64_t, kTypes> lost_{};
  std::array<std::uint64_t, kTypes> partitioned_{};
  std::array<std::uint64_t, kTypes> in_flight_{};
  std::array<std::uint64_t, kTypes> synthetic_{};
  std::uint64_t bytes_ = 0;
};

/// Point-to-point delivery with topology-derived delay.  Liveness is
/// consulted at delivery time so messages to churned-out hosts are lost,
/// like UDP datagrams to a dead peer.
///
/// In-flight messages live in a shared Slab<T> arena: send() parks the
/// callback there and schedules a 16-byte closure, so the per message cost
/// is zero heap allocations (small captures stay inside the InlineFn
/// buffer; the slab reuses slots as messages arrive).
class MessageBus {
 public:
  MessageBus(sim::Simulator& sim, const Topology& topo);

  /// Liveness oracle; unset means "all hosts alive".
  void set_liveness(std::function<bool(NodeId)> is_alive);

  using DeliverFn = InlineFn<void()>;

  /// Send `bytes` from `from` to `to`; `on_deliver` runs at arrival time if
  /// the destination is still alive then.  Self-sends deliver after a
  /// minimal local delay (and bypass partitions and link faults).
  void send(NodeId from, NodeId to, MsgType type, std::size_t bytes,
            DeliverFn on_deliver);

  /// Attach the opt-in correlated-fault layer (burst loss, reordering,
  /// duplication, stragglers).  Forks the "link-model" RNG stream from the
  /// simulator root — only here, so a bus without faults draws the exact
  /// same streams as before this layer existed.
  void enable_link_faults(const LinkFaultConfig& config);
  [[nodiscard]] const LinkModel* link_model() const {
    return link_model_.get();
  }

  /// Partition the network: messages between a host inside the cut LAN
  /// set and one outside resolve as `partitioned` at their would-be
  /// arrival time (the fate is sealed at send time, so a message in
  /// flight across the cut when it heals is still swallowed).  Replaces
  /// any previous cut.
  void set_partition(std::vector<std::size_t> cut_lans);
  /// Heal: subsequent sends cross freely again.
  void clear_partition();
  [[nodiscard]] bool partition_active() const { return !cut_lans_.empty(); }
  /// Is this host inside the cut LAN set of the active partition?
  [[nodiscard]] bool in_partition_cut(NodeId id) const;

  [[nodiscard]] TrafficStats& stats() { return stats_; }
  [[nodiscard]] const TrafficStats& stats() const { return stats_; }

  /// Messages sent but not yet arrived (slab occupancy, for tests).
  [[nodiscard]] std::size_t in_flight() const { return pending_.live(); }

  /// Bytes claimed by the in-flight slab's high-water mark
  /// (attribution-profiler hook).
  [[nodiscard]] std::size_t mem_bytes() const {
    return pending_.slots() * sizeof(Pending);
  }

  /// Attach (or with nullptr detach) a handler wall-time profiler: each
  /// delivered message's handler execution is timed and recorded into
  /// the profiler's per-MsgType bucket, in nanoseconds.  Pure observer —
  /// installing it changes no simulated behavior — but it costs a
  /// clock_gettime pair per delivery, so it is off unless a report tool
  /// asks.  The profiler must outlive the bus or be detached first.
  void set_time_profiler(obs::TimeProfiler* profiler) {
    profiler_ = profiler;
  }
  [[nodiscard]] const obs::TimeProfiler* time_profiler() const {
    return profiler_;
  }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  /// Per-message outcome, sealed at send time (deterministic replay) and
  /// resolved when the message reaches its would-be arrival time.
  enum class Fate : std::uint8_t { kDeliver, kLost, kPartitioned };

  struct Pending {
    DeliverFn fn;
    NodeId to;
    MsgType type = MsgType::kCount;
    Fate fate = Fate::kDeliver;
  };

  void deliver(std::uint32_t slot);
  void park_and_schedule(SimTime delay, NodeId to, MsgType type, Fate fate,
                         DeliverFn fn);

  sim::Simulator& sim_;
  const Topology& topo_;
  Rng jitter_rng_;
  TrafficStats stats_;
  std::function<bool(NodeId)> is_alive_;
  Slab<Pending> pending_;
  std::unique_ptr<LinkModel> link_model_;  ///< null unless faults enabled
  std::vector<std::size_t> cut_lans_;      ///< sorted; empty = no partition
  obs::TimeProfiler* profiler_ = nullptr;  ///< null unless a report asks
};

}  // namespace soc::net
