// Simulated message delivery between hosts, with per-type and per-node
// accounting.  The per-node sent/forwarded counter is exactly the paper's
// "message delivery cost" metric (Table III).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "src/common/inline_fn.hpp"
#include "src/common/rng.hpp"
#include "src/common/slab.hpp"
#include "src/common/types.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulator.hpp"

namespace soc::net {

/// Every protocol message in the system, for traffic accounting.
enum class MsgType : std::uint8_t {
  kStateUpdate,    ///< availability record routed to its duty node
  kIndexDiffuse,   ///< Alg. 1/2 index (identifier) diffusion
  kIndexProbe,     ///< INSCAN directional walks building index tables
  kDutyQuery,      ///< Alg. 3 query routed to duty node
  kIndexAgent,     ///< Alg. 4 agent message
  kIndexJump,      ///< Alg. 5 jump message
  kFoundNotice,    ///< FoundList ϕ back to requester
  kGossip,         ///< Newscast cache exchange
  kKhdnSpread,     ///< KHDN-CAN K-hop state spreading
  kDispatch,       ///< task dispatch / admission result
  kMaintenance,    ///< join/leave overlay maintenance
  kCount
};

[[nodiscard]] std::string_view msg_type_name(MsgType t);

/// Traffic accounting across the whole simulation.  Alongside the paper's
/// sent-side cost metric, delivery outcomes are tracked per type: a message
/// either reaches a live destination (delivered) or is dropped because the
/// destination churned out before arrival (lost).
class TrafficStats {
 public:
  void on_send(NodeId from, MsgType type, std::size_t bytes);
  void on_delivered(MsgType type);
  void on_lost(MsgType type);
  /// Sent-side-only accounting charge with no simulated delivery (the
  /// protocols bill join/leave maintenance traffic this way).  Counts
  /// toward sent()/per_node_cost like a real send, but is tracked
  /// separately so the conservation law stays exact:
  ///   sent == delivered + lost + in_flight + synthetic, per type.
  void on_synthetic_send(NodeId from, MsgType type, std::size_t bytes);

  [[nodiscard]] std::uint64_t sent(MsgType type) const;
  [[nodiscard]] std::uint64_t delivered(MsgType type) const;
  [[nodiscard]] std::uint64_t lost(MsgType type) const;
  [[nodiscard]] std::uint64_t total_sent() const;
  [[nodiscard]] std::uint64_t total_delivered() const;
  [[nodiscard]] std::uint64_t total_lost() const;
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

  /// Messages sent but not yet resolved to delivered/lost.  Together with
  /// the above this pins the per-type conservation law the sim_fuzz
  /// harness asserts at every instant:
  ///   sent == delivered + lost + in_flight + synthetic, per MsgType.
  [[nodiscard]] std::uint64_t in_flight(MsgType type) const;
  [[nodiscard]] std::uint64_t total_in_flight() const;
  [[nodiscard]] std::uint64_t synthetic(MsgType type) const;

  /// Paper metric: messages sent/forwarded per node, averaged over the
  /// node population.
  [[nodiscard]] double per_node_cost(std::size_t node_count) const;

  void reset();

 private:
  static constexpr std::size_t kTypes =
      static_cast<std::size_t>(MsgType::kCount);

  std::array<std::uint64_t, kTypes> by_type_{};
  std::array<std::uint64_t, kTypes> delivered_{};
  std::array<std::uint64_t, kTypes> lost_{};
  std::array<std::uint64_t, kTypes> in_flight_{};
  std::array<std::uint64_t, kTypes> synthetic_{};
  std::uint64_t bytes_ = 0;
};

/// Point-to-point delivery with topology-derived delay.  Liveness is
/// consulted at delivery time so messages to churned-out hosts are lost,
/// like UDP datagrams to a dead peer.
///
/// In-flight messages live in a shared Slab<T> arena: send() parks the
/// callback there and schedules a 16-byte closure, so the per message cost
/// is zero heap allocations (small captures stay inside the InlineFn
/// buffer; the slab reuses slots as messages arrive).
class MessageBus {
 public:
  MessageBus(sim::Simulator& sim, const Topology& topo);

  /// Liveness oracle; unset means "all hosts alive".
  void set_liveness(std::function<bool(NodeId)> is_alive);

  using DeliverFn = InlineFn<void()>;

  /// Send `bytes` from `from` to `to`; `on_deliver` runs at arrival time if
  /// the destination is still alive then.  Self-sends deliver after a
  /// minimal local delay.
  void send(NodeId from, NodeId to, MsgType type, std::size_t bytes,
            DeliverFn on_deliver);

  [[nodiscard]] TrafficStats& stats() { return stats_; }
  [[nodiscard]] const TrafficStats& stats() const { return stats_; }

  /// Messages sent but not yet arrived (slab occupancy, for tests).
  [[nodiscard]] std::size_t in_flight() const { return pending_.live(); }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  struct Pending {
    DeliverFn fn;
    NodeId to;
    MsgType type = MsgType::kCount;
  };

  void deliver(std::uint32_t slot);

  sim::Simulator& sim_;
  const Topology& topo_;
  Rng jitter_rng_;
  TrafficStats stats_;
  std::function<bool(NodeId)> is_alive_;
  Slab<Pending> pending_;
};

}  // namespace soc::net
