#include "src/net/message_bus.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace soc::net {

std::string_view msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kStateUpdate:
      return "state-update";
    case MsgType::kIndexDiffuse:
      return "index-diffuse";
    case MsgType::kIndexProbe:
      return "index-probe";
    case MsgType::kDutyQuery:
      return "duty-query";
    case MsgType::kIndexAgent:
      return "index-agent";
    case MsgType::kIndexJump:
      return "index-jump";
    case MsgType::kFoundNotice:
      return "found-notice";
    case MsgType::kGossip:
      return "gossip";
    case MsgType::kKhdnSpread:
      return "khdn-spread";
    case MsgType::kDispatch:
      return "dispatch";
    case MsgType::kMaintenance:
      return "maintenance";
    case MsgType::kCount:
      break;
  }
  return "?";
}

void TrafficStats::on_send(NodeId /*from*/, MsgType type, std::size_t bytes) {
  ++by_type_[static_cast<std::size_t>(type)];
  ++in_flight_[static_cast<std::size_t>(type)];
  bytes_ += bytes;
}

void TrafficStats::on_synthetic_send(NodeId /*from*/, MsgType type,
                                     std::size_t bytes) {
  ++by_type_[static_cast<std::size_t>(type)];
  ++synthetic_[static_cast<std::size_t>(type)];
  bytes_ += bytes;
}

void TrafficStats::on_delivered(MsgType type) {
  SOC_DCHECK(in_flight_[static_cast<std::size_t>(type)] > 0);
  --in_flight_[static_cast<std::size_t>(type)];
  ++delivered_[static_cast<std::size_t>(type)];
}

void TrafficStats::on_lost(MsgType type) {
  SOC_DCHECK(in_flight_[static_cast<std::size_t>(type)] > 0);
  --in_flight_[static_cast<std::size_t>(type)];
  ++lost_[static_cast<std::size_t>(type)];
}

void TrafficStats::on_partitioned(MsgType type) {
  SOC_DCHECK(in_flight_[static_cast<std::size_t>(type)] > 0);
  --in_flight_[static_cast<std::size_t>(type)];
  ++partitioned_[static_cast<std::size_t>(type)];
}

std::uint64_t TrafficStats::sent(MsgType type) const {
  return by_type_[static_cast<std::size_t>(type)];
}

std::uint64_t TrafficStats::delivered(MsgType type) const {
  return delivered_[static_cast<std::size_t>(type)];
}

std::uint64_t TrafficStats::lost(MsgType type) const {
  return lost_[static_cast<std::size_t>(type)];
}

std::uint64_t TrafficStats::partitioned(MsgType type) const {
  return partitioned_[static_cast<std::size_t>(type)];
}

std::uint64_t TrafficStats::total_partitioned() const {
  return std::accumulate(partitioned_.begin(), partitioned_.end(),
                         std::uint64_t{0});
}

std::uint64_t TrafficStats::total_sent() const {
  return std::accumulate(by_type_.begin(), by_type_.end(), std::uint64_t{0});
}

std::uint64_t TrafficStats::total_delivered() const {
  return std::accumulate(delivered_.begin(), delivered_.end(),
                         std::uint64_t{0});
}

std::uint64_t TrafficStats::total_lost() const {
  return std::accumulate(lost_.begin(), lost_.end(), std::uint64_t{0});
}

std::uint64_t TrafficStats::in_flight(MsgType type) const {
  return in_flight_[static_cast<std::size_t>(type)];
}

std::uint64_t TrafficStats::total_in_flight() const {
  return std::accumulate(in_flight_.begin(), in_flight_.end(),
                         std::uint64_t{0});
}

std::uint64_t TrafficStats::synthetic(MsgType type) const {
  return synthetic_[static_cast<std::size_t>(type)];
}

double TrafficStats::per_node_cost(std::size_t node_count) const {
  SOC_CHECK(node_count > 0);
  return static_cast<double>(total_sent()) / static_cast<double>(node_count);
}

void TrafficStats::reset() {
  by_type_.fill(0);
  delivered_.fill(0);
  lost_.fill(0);
  partitioned_.fill(0);
  in_flight_.fill(0);
  synthetic_.fill(0);
  bytes_ = 0;
}

MessageBus::MessageBus(sim::Simulator& sim, const Topology& topo)
    : sim_(sim), topo_(topo), jitter_rng_(sim.rng().fork("message-bus")) {}

void MessageBus::set_liveness(std::function<bool(NodeId)> is_alive) {
  is_alive_ = std::move(is_alive);
}

void MessageBus::enable_link_faults(const LinkFaultConfig& config) {
  SOC_CHECK(config.enabled);
  link_model_ =
      std::make_unique<LinkModel>(topo_, config, sim_.rng().fork("link-model"));
}

void MessageBus::set_partition(std::vector<std::size_t> cut_lans) {
  SOC_CHECK(!cut_lans.empty());
  cut_lans_ = std::move(cut_lans);
  std::sort(cut_lans_.begin(), cut_lans_.end());
}

void MessageBus::clear_partition() { cut_lans_.clear(); }

bool MessageBus::in_partition_cut(NodeId id) const {
  return std::binary_search(cut_lans_.begin(), cut_lans_.end(),
                            topo_.lan_of(id));
}

void MessageBus::send(NodeId from, NodeId to, MsgType type, std::size_t bytes,
                      DeliverFn on_deliver) {
  SOC_CHECK(from.valid() && to.valid());
  stats_.on_send(from, type, bytes);
  if (from == to) {
    // Loopback: negligible but strictly positive delay for causality; never
    // touches the network, so partitions and link faults do not apply.
    park_and_schedule(1, to, type, Fate::kDeliver, std::move(on_deliver));
    return;
  }
  SimTime delay = topo_.transfer_delay(from, to, bytes, jitter_rng_);

  if (partition_active() && in_partition_cut(from) != in_partition_cut(to)) {
    // Sealed at send time: the message is already on a link that just went
    // dark.  It is resolved (and accounted) at its would-be arrival.
    park_and_schedule(delay, to, type, Fate::kPartitioned,
                      std::move(on_deliver));
    return;
  }

  Fate fate = Fate::kDeliver;
  bool duplicate = false;
  SimTime dup_delay = delay;
  if (link_model_) {
    const LinkModel::Fate f = link_model_->apply(from, to);
    if (f.lost) fate = Fate::kLost;
    delay = std::max<SimTime>(
        static_cast<SimTime>(static_cast<double>(delay) * f.delay_multiplier) +
            f.extra_delay,
        1);
    if (f.duplicate && fate == Fate::kDeliver) {
      duplicate = true;
      dup_delay = std::max<SimTime>(
          static_cast<SimTime>(static_cast<double>(delay) *
                               f.duplicate_delay_factor),
          delay + 1);
    }
  }

  if (!duplicate) {
    park_and_schedule(delay, to, type, fate, std::move(on_deliver));
    return;
  }
  // Duplication: the copy is real traffic, billed as a second send so the
  // conservation law stays exact.  The callback is shared (InlineFn is
  // move-only but repeatedly invocable); each arrival invokes it once.
  stats_.on_send(from, type, bytes);
  auto shared = std::make_shared<DeliverFn>(std::move(on_deliver));
  park_and_schedule(delay, to, type, fate, DeliverFn([shared] {
                      if (*shared) (*shared)();
                    }));
  park_and_schedule(dup_delay, to, type, fate, DeliverFn([shared] {
                      if (*shared) (*shared)();
                    }));
}

void MessageBus::park_and_schedule(SimTime delay, NodeId to, MsgType type,
                                   Fate fate, DeliverFn fn) {
  // Park the callback in the slab and schedule a slot-sized closure.
  const std::uint32_t slot = pending_.alloc();
  Pending& p = pending_[slot];
  p.fn = std::move(fn);
  p.to = to;
  p.type = type;
  p.fate = fate;
  sim_.schedule_after(delay, [this, slot] { deliver(slot); });
}

void MessageBus::deliver(std::uint32_t slot) {
  Pending& p = pending_[slot];
  DeliverFn fn = std::move(p.fn);
  const NodeId to = p.to;
  const MsgType type = p.type;
  const Fate fate = p.fate;
  // Free the slot before invoking: the callback may send more messages.
  pending_.release(slot);
  if (fate == Fate::kPartitioned) {
    stats_.on_partitioned(type);  // swallowed by the cut
    return;
  }
  if (fate == Fate::kLost) {
    stats_.on_lost(type);  // burst loss on the link
    return;
  }
  if (is_alive_ && !is_alive_(to)) {
    stats_.on_lost(type);  // message lost to churn
    return;
  }
  stats_.on_delivered(type);
  if (fn) {
    if (profiler_ != nullptr) {
      const std::uint64_t t0 = obs::wall_now_ns();
      fn();
      profiler_->record_ns(static_cast<std::size_t>(type),
                           obs::wall_now_ns() - t0);
      return;
    }
    fn();
  }
}

}  // namespace soc::net
