#include "src/net/message_bus.hpp"

#include <numeric>
#include <utility>

namespace soc::net {

std::string_view msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kStateUpdate:
      return "state-update";
    case MsgType::kIndexDiffuse:
      return "index-diffuse";
    case MsgType::kIndexProbe:
      return "index-probe";
    case MsgType::kDutyQuery:
      return "duty-query";
    case MsgType::kIndexAgent:
      return "index-agent";
    case MsgType::kIndexJump:
      return "index-jump";
    case MsgType::kFoundNotice:
      return "found-notice";
    case MsgType::kGossip:
      return "gossip";
    case MsgType::kKhdnSpread:
      return "khdn-spread";
    case MsgType::kDispatch:
      return "dispatch";
    case MsgType::kMaintenance:
      return "maintenance";
    case MsgType::kCount:
      break;
  }
  return "?";
}

void TrafficStats::on_send(NodeId /*from*/, MsgType type, std::size_t bytes) {
  ++by_type_[static_cast<std::size_t>(type)];
  ++in_flight_[static_cast<std::size_t>(type)];
  bytes_ += bytes;
}

void TrafficStats::on_synthetic_send(NodeId /*from*/, MsgType type,
                                     std::size_t bytes) {
  ++by_type_[static_cast<std::size_t>(type)];
  ++synthetic_[static_cast<std::size_t>(type)];
  bytes_ += bytes;
}

void TrafficStats::on_delivered(MsgType type) {
  SOC_DCHECK(in_flight_[static_cast<std::size_t>(type)] > 0);
  --in_flight_[static_cast<std::size_t>(type)];
  ++delivered_[static_cast<std::size_t>(type)];
}

void TrafficStats::on_lost(MsgType type) {
  SOC_DCHECK(in_flight_[static_cast<std::size_t>(type)] > 0);
  --in_flight_[static_cast<std::size_t>(type)];
  ++lost_[static_cast<std::size_t>(type)];
}

std::uint64_t TrafficStats::sent(MsgType type) const {
  return by_type_[static_cast<std::size_t>(type)];
}

std::uint64_t TrafficStats::delivered(MsgType type) const {
  return delivered_[static_cast<std::size_t>(type)];
}

std::uint64_t TrafficStats::lost(MsgType type) const {
  return lost_[static_cast<std::size_t>(type)];
}

std::uint64_t TrafficStats::total_sent() const {
  return std::accumulate(by_type_.begin(), by_type_.end(), std::uint64_t{0});
}

std::uint64_t TrafficStats::total_delivered() const {
  return std::accumulate(delivered_.begin(), delivered_.end(),
                         std::uint64_t{0});
}

std::uint64_t TrafficStats::total_lost() const {
  return std::accumulate(lost_.begin(), lost_.end(), std::uint64_t{0});
}

std::uint64_t TrafficStats::in_flight(MsgType type) const {
  return in_flight_[static_cast<std::size_t>(type)];
}

std::uint64_t TrafficStats::total_in_flight() const {
  return std::accumulate(in_flight_.begin(), in_flight_.end(),
                         std::uint64_t{0});
}

std::uint64_t TrafficStats::synthetic(MsgType type) const {
  return synthetic_[static_cast<std::size_t>(type)];
}

double TrafficStats::per_node_cost(std::size_t node_count) const {
  SOC_CHECK(node_count > 0);
  return static_cast<double>(total_sent()) / static_cast<double>(node_count);
}

void TrafficStats::reset() {
  by_type_.fill(0);
  delivered_.fill(0);
  lost_.fill(0);
  in_flight_.fill(0);
  synthetic_.fill(0);
  bytes_ = 0;
}

MessageBus::MessageBus(sim::Simulator& sim, const Topology& topo)
    : sim_(sim), topo_(topo), jitter_rng_(sim.rng().fork("message-bus")) {}

void MessageBus::set_liveness(std::function<bool(NodeId)> is_alive) {
  is_alive_ = std::move(is_alive);
}

void MessageBus::send(NodeId from, NodeId to, MsgType type, std::size_t bytes,
                      DeliverFn on_deliver) {
  SOC_CHECK(from.valid() && to.valid());
  stats_.on_send(from, type, bytes);
  SimTime delay;
  if (from == to) {
    delay = 1;  // loopback: negligible but strictly positive for causality
  } else {
    delay = topo_.transfer_delay(from, to, bytes, jitter_rng_);
  }

  // Park the callback in the slab and schedule a slot-sized closure.
  const std::uint32_t slot = pending_.alloc();
  Pending& p = pending_[slot];
  p.fn = std::move(on_deliver);
  p.to = to;
  p.type = type;
  sim_.schedule_after(delay, [this, slot] { deliver(slot); });
}

void MessageBus::deliver(std::uint32_t slot) {
  Pending& p = pending_[slot];
  DeliverFn fn = std::move(p.fn);
  const NodeId to = p.to;
  const MsgType type = p.type;
  // Free the slot before invoking: the callback may send more messages.
  pending_.release(slot);
  if (is_alive_ && !is_alive_(to)) {
    stats_.on_lost(type);  // message lost to churn
    return;
  }
  stats_.on_delivered(type);
  if (fn) fn();
}

}  // namespace soc::net
