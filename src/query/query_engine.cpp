#include "src/query/query_engine.hpp"

#include <algorithm>

#include "src/common/logging.hpp"
#include "src/obs/trace.hpp"

namespace soc::query {

namespace {

/// Remove-and-return a random element; the message carries the remainder
/// ({ι − α} / {j − β} in the paper's notation).
NodeId take_random(std::vector<NodeId>& v, Rng& rng) {
  SOC_CHECK(!v.empty());
  const std::size_t i = rng.pick_index(v.size());
  const NodeId out = v[i];
  v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
  return out;
}

}  // namespace

QueryEngine::QueryEngine(index::IndexSystem& index, QueryConfig config)
    : index_(index), config_(config),
      rng_(index.simulator().rng().fork("query-engine")) {
  SOC_CHECK(config_.expected_results >= 1);
}

std::uint64_t QueryEngine::begin_query(NodeId requester,
                                       const ResourceVector& demand,
                                       std::size_t want, Callback cb) {
  const std::uint64_t qid = next_qid_++;
  Pending p;
  p.requester = requester;
  p.demand = demand;
  p.want = want;
  p.cb = std::move(cb);
  p.submitted_at = index_.simulator().now();
  p.timeout = index_.simulator().schedule_after(
      config_.timeout, [this, qid] { finish(qid); });
  pending_.emplace(qid, std::move(p));
  ++stats_.submitted;
  if (obs::Tracer* t = obs::tracer()) {
    t->begin("query", "query", qid, index_.simulator().now());
  }
  return qid;
}

void QueryEngine::finish(std::uint64_t qid) {
  const auto it = pending_.find(qid);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  pending_.erase(it);
  index_.simulator().cancel(p.timeout);

  if (p.results.size() >= p.want) {
    ++stats_.satisfied;
  } else if (!p.results.empty()) {
    ++stats_.partial;
  } else {
    ++stats_.failed;
  }
  stats_.delay_seconds.add(
      to_seconds(index_.simulator().now() - p.submitted_at));
  stats_.visited_nodes.add(static_cast<double>(p.visited));
  if (obs::Tracer* t = obs::tracer()) {
    t->end("query", "query", qid, index_.simulator().now());
  }
  if (p.cb) p.cb(std::move(p.results));
}

void QueryEngine::submit(NodeId requester, const ResourceVector& demand,
                         const can::Point& target, Callback cb) {
  submit_k(requester, demand, target, config_.expected_results,
           std::move(cb));
}

void QueryEngine::submit_k(NodeId requester, const ResourceVector& demand,
                           const can::Point& target, std::size_t want,
                           Callback cb) {
  SOC_CHECK(want >= 1);
  const std::uint64_t qid = begin_query(requester, demand, want,
                                        std::move(cb));
  // Alg. 3: route the duty-query message to the node whose zone encloses v.
  index_.route(requester, target, net::MsgType::kDutyQuery,
               config_.query_msg_bytes,
               [this, qid](NodeId duty) { on_duty_node(qid, duty); });
}

void QueryEngine::on_duty_node(std::uint64_t qid, NodeId duty) {
  const auto it = pending_.find(qid);
  if (it == pending_.end()) return;
  ++it->second.visited;
  if (obs::Tracer* t = obs::tracer()) {
    t->mark("query", "duty_node", qid, index_.simulator().now());
  }

  // The duty node is the boundary-corner node of the query range (Fig. 1):
  // its own zone overlaps the range, so its cache is searched before the
  // index agents take over (INSCAN-RQ starts checking there too).
  const std::size_t found_here =
      harvest_and_notify(qid, duty, it->second.want);
  if (pending_.find(qid) == pending_.end()) return;
  if (found_here >= it->second.want) return;  // in-flight notice will close

  // Alg. 3 lines 5–7: assemble ι from d positive adjacent neighbors (one
  // random pick per dimension, deduplicated).
  auto& space = index_.space();
  std::vector<NodeId> agents;
  for (std::size_t d = 0; d < space.dims(); ++d) {
    space.directional_neighbors(duty, d, can::Direction::kPositive,
                                dir_scratch_);
    if (dir_scratch_.empty()) continue;
    const NodeId pick = dir_scratch_[rng_.pick_index(dir_scratch_.size())];
    if (std::find(agents.begin(), agents.end(), pick) == agents.end()) {
      agents.push_back(pick);
    }
  }
  if (agents.empty()) {
    // Duty node sits at the positive corner of the space: it is itself the
    // only node that can hold qualified records.
    harvest_and_notify(qid, duty, it->second.want);
    finish(qid);
    return;
  }
  const NodeId alpha = take_random(agents, rng_);
  index_.bus().send(duty, alpha, net::MsgType::kIndexAgent,
                    config_.query_msg_bytes,
                    [this, qid, alpha, agents = std::move(agents)] {
                      on_index_agent(qid, alpha, agents);
                    });
}

void QueryEngine::on_index_agent(std::uint64_t qid, NodeId at,
                                 std::vector<NodeId> agents) {
  const auto it = pending_.find(qid);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  ++p.visited;
  if (!index_.tracks(at)) return;  // agent churned out; timeout will close

  // Alg. 4 line 1: sample a few indexes from the PIList into j.
  std::vector<NodeId> jumps = index_.pi_list(at).sample(
      config_.jump_list_size, index_.simulator().now(), rng_);

  const std::size_t remaining =
      p.want > p.results.size() ? p.want - p.results.size() : 0;
  if (remaining == 0) {
    finish(qid);
    return;
  }

  if (!jumps.empty()) {
    const NodeId beta = take_random(jumps, rng_);
    index_.bus().send(at, beta, net::MsgType::kIndexJump,
                      config_.query_msg_bytes,
                      [this, qid, beta, jumps = std::move(jumps),
                       agents = std::move(agents), remaining] {
                        on_index_jump(qid, beta, jumps, agents, remaining);
                      });
    return;
  }
  // Alg. 4 lines 5–8: empty jump list → try the next agent.
  if (!agents.empty()) {
    const NodeId alpha = take_random(agents, rng_);
    index_.bus().send(at, alpha, net::MsgType::kIndexAgent,
                      config_.query_msg_bytes,
                      [this, qid, alpha, agents = std::move(agents)] {
                        on_index_agent(qid, alpha, agents);
                      });
    return;
  }
  // All agents exhausted with nothing to jump to: the query ends early.
  finish(qid);
}

std::size_t QueryEngine::harvest_and_notify(std::uint64_t qid, NodeId at,
                                            std::size_t delta) {
  const auto it = pending_.find(qid);
  if (it == pending_.end() || !index_.tracks(at)) return 0;
  Pending& p = it->second;

  // Alg. 5 line 1: search γ for records dominating v (into the reused
  // harvest scratch; results come out in ascending provider order).
  std::vector<index::Record>& qualified = record_scratch_;
  index_.cache(at).qualified_into(p.demand, index_.simulator().now(),
                                  qualified);
  // Skip providers this query already collected (duplicate notices).
  std::erase_if(qualified, [&](const index::Record& r) {
    return p.seen_providers.contains(r.provider);
  });
  if (qualified.empty()) return 0;
  if (qualified.size() > delta) qualified.resize(delta);
  if (obs::Tracer* t = obs::tracer()) {
    t->mark("query", "harvest", qid, index_.simulator().now());
  }

  // One FoundList message ϕ straight back to the requester.
  std::vector<Candidate> found;
  found.reserve(qualified.size());
  for (const auto& r : qualified) {
    found.push_back(Candidate{r.provider, r.availability});
    p.seen_providers.insert(r.provider);
  }
  index_.bus().send(
      at, p.requester, net::MsgType::kFoundNotice, config_.notice_msg_bytes,
      [this, qid, found = std::move(found)] {
        const auto pit = pending_.find(qid);
        if (pit == pending_.end()) return;
        Pending& pp = pit->second;
        pp.results.insert(pp.results.end(), found.begin(), found.end());
        if (pp.results.size() >= pp.want) finish(qid);
      });
  return qualified.size();
}

void QueryEngine::on_index_jump(std::uint64_t qid, NodeId at,
                                std::vector<NodeId> jumps,
                                std::vector<NodeId> agents,
                                std::size_t delta) {
  const auto it = pending_.find(qid);
  if (it == pending_.end()) return;
  ++it->second.visited;
  if (!index_.tracks(at)) return;

  // Alg. 5 lines 1–5: harvest and decrement δ.
  const std::size_t sent = harvest_and_notify(qid, at, delta);
  if (pending_.find(qid) == pending_.end()) return;  // finished inline
  delta = delta > sent ? delta - sent : 0;
  if (delta == 0) return;  // the in-flight notice will close the query

  // Alg. 5 lines 7–9: hop to the next index node.
  if (!jumps.empty()) {
    const NodeId beta = take_random(jumps, rng_);
    index_.bus().send(at, beta, net::MsgType::kIndexJump,
                      config_.query_msg_bytes,
                      [this, qid, beta, jumps = std::move(jumps),
                       agents = std::move(agents), delta] {
                        on_index_jump(qid, beta, jumps, agents, delta);
                      });
    return;
  }
  // Alg. 5 lines 10–12: back to the agent track.
  if (!agents.empty()) {
    const NodeId alpha = take_random(agents, rng_);
    index_.bus().send(at, alpha, net::MsgType::kIndexAgent,
                      config_.query_msg_bytes,
                      [this, qid, alpha, agents = std::move(agents)] {
                        on_index_agent(qid, alpha, agents);
                      });
    return;
  }
  finish(qid);
}

// ---------------------------------------------------------------------------
// INSCAN-RQ exhaustive range query

void QueryEngine::submit_full_range(NodeId requester,
                                    const ResourceVector& demand,
                                    const can::Point& target, Callback cb) {
  const std::uint64_t qid =
      begin_query(requester, demand, /*want=*/SIZE_MAX, std::move(cb));
  index_.route(requester, target, net::MsgType::kDutyQuery,
               config_.query_msg_bytes, [this, qid, target](NodeId duty) {
                 const auto it = pending_.find(qid);
                 if (it == pending_.end()) return;
                 it->second.flood_outstanding = 1;
                 it->second.flood_visited.insert(duty);
                 flood_visit(qid, duty, target);
               });
}

void QueryEngine::flood_visit(std::uint64_t qid, NodeId at,
                              const can::Point& corner) {
  const auto it = pending_.find(qid);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  ++p.visited;
  SOC_CHECK(p.flood_outstanding > 0);
  --p.flood_outstanding;

  auto& space = index_.space();
  if (index_.tracks(at) && space.contains(at)) {
    // Collect local qualified records directly (the flood already costs
    // O(N) messages; results ride back on one notice per responsible node).
    std::vector<index::Record>& qualified = record_scratch_;
    index_.cache(at).qualified_into(p.demand, index_.simulator().now(),
                                    qualified);
    for (const auto& r : qualified) {
      if (p.seen_providers.insert(r.provider).second) {
        p.results.push_back(Candidate{r.provider, r.availability});
      }
    }
    // Forward to every unvisited neighbor whose zone still intersects the
    // query range [corner, 1]^d.
    for (const NodeId n : space.neighbors_of(at)) {
      if (p.flood_visited.contains(n)) continue;
      if (!space.zone_of(n).intersects_upper_range(corner)) continue;
      p.flood_visited.insert(n);
      ++p.flood_outstanding;
      index_.bus().send(at, n, net::MsgType::kDutyQuery,
                        config_.query_msg_bytes, [this, qid, n, corner] {
                          flood_visit(qid, n, corner);
                        });
    }
  }
  if (p.flood_outstanding == 0) finish(qid);
}

}  // namespace soc::query
