// The contention-minimized multi-dimensional range query of §III.C:
// duty-query (Alg. 3) → index-agent (Alg. 4) → index-jump (Alg. 5).
//
// A query issues a single duty-query message routed to the node whose zone
// encloses the expectation vector; that duty node picks d random positive
// adjacent neighbors as index agents; agents sample their PILists into a
// jump list; jump messages hop from record-holder to record-holder,
// each returning qualified records (FoundList ϕ) directly to the
// requester, until δ results are found or agents and jumps are exhausted.
//
// The engine also implements INSCAN-RQ (§III.A): the delay-bounded but
// traffic-heavy exhaustive range query used as the paper's motivation for
// bounding per-query traffic — reproduced here for the micro benchmarks.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/stats.hpp"
#include "src/index/inscan.hpp"

namespace soc::query {

/// A discovered execution candidate (possibly stale by record TTL).
struct Candidate {
  NodeId provider;
  ResourceVector availability;
};

struct QueryConfig {
  std::size_t expected_results = 1;  ///< δ: first-k termination
  std::size_t jump_list_size = 4;    ///< indexes sampled into j (Alg. 4)
  SimTime timeout = seconds(90);     ///< requester-side deadline
  std::size_t query_msg_bytes = 128;
  std::size_t notice_msg_bytes = 160;
};

/// Aggregate outcome counters for the evaluation.
struct QueryStats {
  std::uint64_t submitted = 0;
  std::uint64_t satisfied = 0;   ///< got ≥ δ results
  std::uint64_t partial = 0;     ///< got > 0 but < δ results
  std::uint64_t failed = 0;      ///< got nothing
  RunningStats delay_seconds;    ///< submit → completion
  RunningStats visited_nodes;    ///< protocol handlers touched per query
};

class QueryEngine {
 public:
  using Callback = std::function<void(std::vector<Candidate>)>;

  QueryEngine(index::IndexSystem& index, QueryConfig config);

  /// Submit the PID-CAN query.  `target` is the CAN point of the demand
  /// (normalized expectation vector; the VD variant appends its virtual
  /// coordinate).  The callback fires exactly once, possibly with fewer
  /// than δ (even zero) candidates.
  void submit(NodeId requester, const ResourceVector& demand,
              const can::Point& target, Callback cb);

  /// Submit with an explicit δ override (ablation of first-k).
  void submit_k(NodeId requester, const ResourceVector& demand,
                const can::Point& target, std::size_t want, Callback cb);

  /// INSCAN-RQ exhaustive range query: flood every responsible node whose
  /// zone intersects [demand, c_max].
  void submit_full_range(NodeId requester, const ResourceVector& demand,
                         const can::Point& target, Callback cb);

  [[nodiscard]] const QueryStats& stats() const { return stats_; }
  [[nodiscard]] const QueryConfig& config() const { return config_; }

 private:
  struct Pending {
    NodeId requester;
    ResourceVector demand;
    std::size_t want = 1;
    std::vector<Candidate> results;
    std::unordered_set<NodeId> seen_providers;
    sim::EventHandle timeout;
    Callback cb;
    SimTime submitted_at = 0;
    std::uint64_t visited = 0;
    // Full-range bookkeeping:
    std::unordered_set<NodeId> flood_visited;
    std::size_t flood_outstanding = 0;
  };

  std::uint64_t begin_query(NodeId requester, const ResourceVector& demand,
                            std::size_t want, Callback cb);
  void finish(std::uint64_t qid);
  void on_duty_node(std::uint64_t qid, NodeId duty);
  void on_index_agent(std::uint64_t qid, NodeId at,
                      std::vector<NodeId> agents);
  void on_index_jump(std::uint64_t qid, NodeId at, std::vector<NodeId> jumps,
                     std::vector<NodeId> agents, std::size_t delta);
  /// Harvest local qualified records into ϕ and ship them to the
  /// requester; returns how many were sent.
  std::size_t harvest_and_notify(std::uint64_t qid, NodeId at,
                                 std::size_t delta);
  void flood_visit(std::uint64_t qid, NodeId at, const can::Point& corner);

  index::IndexSystem& index_;
  /// Scratch for allocation-free directional-neighbor filtering.
  std::vector<NodeId> dir_scratch_;
  /// Scratch for allocation-free qualified-record harvests (single-threaded;
  /// every harvest finishes with the records copied out before the next).
  std::vector<index::Record> record_scratch_;
  QueryConfig config_;
  QueryStats stats_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_qid_ = 1;
  Rng rng_;
};

}  // namespace soc::query
