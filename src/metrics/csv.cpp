#include "src/metrics/csv.hpp"

#include <cstdio>
#include <sstream>

#include "src/common/assert.hpp"

namespace soc::metrics {

std::string series_to_csv(
    const std::vector<std::string>& labels,
    const std::vector<std::vector<SeriesSample>>& series) {
  SOC_CHECK(labels.size() == series.size());
  std::ostringstream os;
  os << "hour";
  for (const auto& label : labels) {
    os << ',' << label << "_t_ratio" << ',' << label << "_f_ratio" << ','
       << label << "_fairness";
  }
  os << '\n';

  std::size_t rows = 0;
  for (const auto& s : series) rows = std::max(rows, s.size());
  for (std::size_t row = 0; row < rows; ++row) {
    bool hour_written = false;
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (!hour_written) {
        const double hour =
            row < series[i].size() ? series[i][row].hour : 0.0;
        os << hour;
        hour_written = true;
      }
      if (row < series[i].size()) {
        const auto& s = series[i][row];
        os << ',' << s.t_ratio << ',' << s.f_ratio << ',' << s.fairness;
      } else {
        os << ",,,";
      }
    }
    os << '\n';
  }
  return os.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return written == content.size();
}

}  // namespace soc::metrics
