// Evaluation metrics of §IV: throughput ratio T-Ratio(t), failed task
// ratio F-Ratio(t), and Jain's fairness index over finished tasks'
// execution efficiencies — all as cumulative hourly time series, exactly
// the curves of Figs. 4–8.
//
// Storage is O(horizon / 60 s), not O(events): each event stream folds
// into a cumulative (count, Σe, Σe²) state and takes a run-length
// compressed snapshot of that state the first time an event lands past a
// 60 s bucket boundary, so series() replays any sample grid whose step is
// a multiple of 60 s bit-identically to the old keep-every-timestamp
// implementation (the Jain accumulation order is the arrival order, which
// is what sorting the flat vectors produced).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/types.hpp"

namespace soc::metrics {

struct SeriesSample {
  double hour = 0.0;
  std::uint64_t generated = 0;
  std::uint64_t finished = 0;
  std::uint64_t failed = 0;
  double t_ratio = 0.0;   ///< finished / generated (0 when none generated)
  double f_ratio = 0.0;   ///< failed / generated
  double fairness = 1.0;  ///< Jain index over finished tasks' efficiencies
};

class TaskMetrics {
 public:
  /// Snapshot granularity: series() steps must be multiples of this (the
  /// harness uses 600 s and 3600 s grids; both divide evenly).
  static constexpr SimTime kGranularity = seconds(60);

  void on_generated(SimTime at);
  /// The task could not find (or keep) any qualified node.
  void on_failed(SimTime at);
  /// The task finished; `efficiency` is e_ij = expected/actual time.
  void on_finished(SimTime at, double efficiency);

  [[nodiscard]] std::uint64_t generated() const { return generated_.cur.count; }
  [[nodiscard]] std::uint64_t finished() const { return finished_.cur.count; }
  [[nodiscard]] std::uint64_t failed() const { return failed_.cur.count; }

  [[nodiscard]] double t_ratio() const;
  [[nodiscard]] double f_ratio() const;
  [[nodiscard]] double fairness() const;

  /// Cumulative samples at `step` intervals from `step` to `horizon`
  /// inclusive (the paper plots 24 hourly points over one day).  `step`
  /// must be positive and a multiple of kGranularity.
  [[nodiscard]] std::vector<SeriesSample> series(SimTime horizon,
                                                 SimTime step) const;

 private:
  /// One event stream, fed in nondecreasing time order (the simulator's
  /// natural order; enforced at bucket resolution).  `sum`/`sum_sq` carry
  /// the finished stream's efficiency moments and stay 0 elsewhere.
  struct Stream {
    struct State {
      std::uint64_t count = 0;
      double sum = 0.0;
      double sum_sq = 0.0;
    };
    struct Snap {
      std::uint64_t through_bucket;  ///< state is final for buckets <= this
      State state;
    };

    void add(SimTime at, double value);
    /// Cumulative state including every event with at <= bucket * 60 s.
    [[nodiscard]] const State& at_bucket(std::uint64_t bucket) const;

    State cur;
    std::vector<Snap> snaps;      // through_bucket strictly increasing
    std::uint64_t closed = 0;     // buckets <= closed are snapshot-final
  };

  Stream generated_;
  Stream failed_;
  Stream finished_;
};

}  // namespace soc::metrics
