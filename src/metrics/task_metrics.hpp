// Evaluation metrics of §IV: throughput ratio T-Ratio(t), failed task
// ratio F-Ratio(t), and Jain's fairness index over finished tasks'
// execution efficiencies — all as cumulative hourly time series, exactly
// the curves of Figs. 4–8.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/types.hpp"

namespace soc::metrics {

struct SeriesSample {
  double hour = 0.0;
  std::uint64_t generated = 0;
  std::uint64_t finished = 0;
  std::uint64_t failed = 0;
  double t_ratio = 0.0;   ///< finished / generated (0 when none generated)
  double f_ratio = 0.0;   ///< failed / generated
  double fairness = 1.0;  ///< Jain index over finished tasks' efficiencies
};

class TaskMetrics {
 public:
  void on_generated(SimTime at);
  /// The task could not find (or keep) any qualified node.
  void on_failed(SimTime at);
  /// The task finished; `efficiency` is e_ij = expected/actual time.
  void on_finished(SimTime at, double efficiency);

  [[nodiscard]] std::uint64_t generated() const { return generated_.size(); }
  [[nodiscard]] std::uint64_t finished() const { return finished_.size(); }
  [[nodiscard]] std::uint64_t failed() const { return failed_.size(); }

  [[nodiscard]] double t_ratio() const;
  [[nodiscard]] double f_ratio() const;
  [[nodiscard]] double fairness() const;

  /// Cumulative samples at `step` intervals from `step` to `horizon`
  /// inclusive (the paper plots 24 hourly points over one day).
  [[nodiscard]] std::vector<SeriesSample> series(SimTime horizon,
                                                 SimTime step) const;

 private:
  struct Finish {
    SimTime at;
    double efficiency;
  };
  std::vector<SimTime> generated_;
  std::vector<SimTime> failed_;
  std::vector<Finish> finished_;
};

}  // namespace soc::metrics
