// HDR-style log-bucketed latency histogram with a *fixed* bucket layout,
// so merging shard histograms is an exact bucket-wise sum: percentiles
// computed from a merge of N shard files are byte-identical no matter how
// the samples were split across workers.
//
// Layout (values in integer microseconds): 0..31 µs get exact unit
// buckets; above that each power-of-two octave is split into 16
// sub-buckets (~6% relative resolution), covering the full uint64 range
// in 976 buckets (~7.6 KB of counters).  Percentiles report the highest
// value equivalent to the bucket (bucket_hi - 1), so sub-32 µs samples
// come back exact.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace soc::metrics {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBucketCount = 976;

  /// Count one latency sample of `us` microseconds.
  void record_us(std::uint64_t us);

  /// Exact bucket-wise sum — associative and commutative by construction.
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t sum_us() const { return sum_us_; }
  [[nodiscard]] double mean_s() const;
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const;

  /// Percentile p in [0, 100] as seconds: the highest value of the first
  /// bucket whose cumulative count reaches ceil(p/100 * total).  An empty
  /// histogram reports 0.
  [[nodiscard]] double percentile_s(double p) const;

  /// Bucket arithmetic (static so tests can pin the layout).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t us);
  [[nodiscard]] static std::uint64_t bucket_lo_us(std::size_t bucket);
  /// Exclusive upper edge; saturates to uint64 max on the last bucket.
  [[nodiscard]] static std::uint64_t bucket_hi_us(std::size_t bucket);

  /// Sparse text form for the shard files: "idx:count,idx:count,..." over
  /// the non-empty buckets in ascending index order ("" when empty).
  [[nodiscard]] std::string encode() const;
  /// Fold an encode()d histogram into *this; false on malformed input
  /// (*this is left unchanged on failure).
  bool merge_encoded(std::string_view text);

 private:
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_us_ = 0;
};

}  // namespace soc::metrics
