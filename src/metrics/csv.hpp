// CSV export for experiment series and summaries, so the bench outputs can
// be re-plotted with any external tool.
#pragma once

#include <string>
#include <vector>

#include "src/metrics/task_metrics.hpp"

namespace soc::metrics {

/// Render hourly series of several runs to CSV text:
/// hour,<label1>_t_ratio,<label1>_f_ratio,<label1>_fairness,<label2>_...
[[nodiscard]] std::string series_to_csv(
    const std::vector<std::string>& labels,
    const std::vector<std::vector<SeriesSample>>& series);

/// Write text to a file; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace soc::metrics
