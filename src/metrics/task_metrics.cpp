#include "src/metrics/task_metrics.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace soc::metrics {

void TaskMetrics::Stream::add(SimTime at, double value) {
  SOC_CHECK(at >= 0);
  // Bucket boundary b (time b * 60 s) includes events with at <= b * 60 s,
  // so an event at `at` leaves every bucket strictly before ceil(at / 60 s)
  // final.  Events must not arrive behind an already-final boundary.
  const auto want =
      at > 0 ? static_cast<std::uint64_t>((at - 1) / kGranularity) : 0;
  SOC_CHECK(want >= closed);
  if (want > closed) {
    snaps.push_back(Snap{want, cur});
    closed = want;
  }
  ++cur.count;
  cur.sum += value;
  cur.sum_sq += value * value;
}

const TaskMetrics::Stream::State& TaskMetrics::Stream::at_bucket(
    std::uint64_t bucket) const {
  if (bucket > closed) return cur;
  const auto it = std::lower_bound(
      snaps.begin(), snaps.end(), bucket,
      [](const Snap& s, std::uint64_t b) { return s.through_bucket < b; });
  SOC_CHECK(it != snaps.end());
  return it->state;
}

void TaskMetrics::on_generated(SimTime at) { generated_.add(at, 0.0); }
void TaskMetrics::on_failed(SimTime at) { failed_.add(at, 0.0); }
void TaskMetrics::on_finished(SimTime at, double efficiency) {
  finished_.add(at, efficiency);
}

double TaskMetrics::t_ratio() const {
  return generated_.cur.count == 0
             ? 0.0
             : static_cast<double>(finished_.cur.count) /
                   static_cast<double>(generated_.cur.count);
}

double TaskMetrics::f_ratio() const {
  return generated_.cur.count == 0
             ? 0.0
             : static_cast<double>(failed_.cur.count) /
                   static_cast<double>(generated_.cur.count);
}

double TaskMetrics::fairness() const {
  return jain_from_moments(finished_.cur.count, finished_.cur.sum,
                           finished_.cur.sum_sq);
}

std::vector<SeriesSample> TaskMetrics::series(SimTime horizon,
                                              SimTime step) const {
  SOC_CHECK(step > 0);
  SOC_CHECK(step % kGranularity == 0);
  std::vector<SeriesSample> out;
  for (SimTime t = step; t <= horizon; t += step) {
    const auto bucket = static_cast<std::uint64_t>(t / kGranularity);
    const Stream::State& g = generated_.at_bucket(bucket);
    const Stream::State& f = failed_.at_bucket(bucket);
    const Stream::State& c = finished_.at_bucket(bucket);
    SeriesSample s;
    s.hour = to_hours(t);
    s.generated = g.count;
    s.finished = c.count;
    s.failed = f.count;
    if (g.count > 0) {
      s.t_ratio =
          static_cast<double>(c.count) / static_cast<double>(g.count);
      s.f_ratio =
          static_cast<double>(f.count) / static_cast<double>(g.count);
    }
    s.fairness = jain_from_moments(c.count, c.sum, c.sum_sq);
    out.push_back(s);
  }
  return out;
}

}  // namespace soc::metrics
