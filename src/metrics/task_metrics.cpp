#include "src/metrics/task_metrics.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace soc::metrics {

void TaskMetrics::on_generated(SimTime at) { generated_.push_back(at); }
void TaskMetrics::on_failed(SimTime at) { failed_.push_back(at); }
void TaskMetrics::on_finished(SimTime at, double efficiency) {
  finished_.push_back(Finish{at, efficiency});
}

double TaskMetrics::t_ratio() const {
  return generated_.empty() ? 0.0
                            : static_cast<double>(finished_.size()) /
                                  static_cast<double>(generated_.size());
}

double TaskMetrics::f_ratio() const {
  return generated_.empty() ? 0.0
                            : static_cast<double>(failed_.size()) /
                                  static_cast<double>(generated_.size());
}

double TaskMetrics::fairness() const {
  std::vector<double> eff;
  eff.reserve(finished_.size());
  for (const auto& f : finished_) eff.push_back(f.efficiency);
  return jain_fairness(eff);
}

std::vector<SeriesSample> TaskMetrics::series(SimTime horizon,
                                              SimTime step) const {
  SOC_CHECK(step > 0);
  // Events arrive in nondecreasing time order from the simulator; sort
  // defensively so the class also works with out-of-order insertion.
  auto gen = generated_;
  auto fail = failed_;
  auto fin = finished_;
  std::sort(gen.begin(), gen.end());
  std::sort(fail.begin(), fail.end());
  std::sort(fin.begin(), fin.end(),
            [](const Finish& a, const Finish& b) { return a.at < b.at; });

  std::vector<SeriesSample> out;
  std::size_t gi = 0, fi = 0, ci = 0;
  std::vector<double> eff;
  for (SimTime t = step; t <= horizon; t += step) {
    while (gi < gen.size() && gen[gi] <= t) ++gi;
    while (fi < fail.size() && fail[fi] <= t) ++fi;
    while (ci < fin.size() && fin[ci].at <= t) {
      eff.push_back(fin[ci].efficiency);
      ++ci;
    }
    SeriesSample s;
    s.hour = to_hours(t);
    s.generated = gi;
    s.finished = ci;
    s.failed = fi;
    if (gi > 0) {
      s.t_ratio = static_cast<double>(ci) / static_cast<double>(gi);
      s.f_ratio = static_cast<double>(fi) / static_cast<double>(gi);
    }
    s.fairness = jain_fairness(eff);
    out.push_back(s);
  }
  return out;
}

}  // namespace soc::metrics
