#include "src/metrics/latency_histogram.hpp"

#include <bit>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/common/assert.hpp"

namespace soc::metrics {

std::size_t LatencyHistogram::bucket_index(std::uint64_t us) {
  if (us < 32) return static_cast<std::size_t>(us);
  const int msb = std::bit_width(us) - 1;  // >= 5 here
  const int shift = msb - 4;               // 16 sub-buckets per octave
  const auto sub = static_cast<std::size_t>((us >> shift) - 16);
  return 32 + static_cast<std::size_t>(msb - 5) * 16 + sub;
}

std::uint64_t LatencyHistogram::bucket_lo_us(std::size_t bucket) {
  SOC_CHECK(bucket < kBucketCount);
  if (bucket < 32) return bucket;
  const std::uint64_t t = (bucket - 32) / 16;
  const std::uint64_t s = (bucket - 32) % 16;
  return (16 + s) << (t + 1);
}

std::uint64_t LatencyHistogram::bucket_hi_us(std::size_t bucket) {
  SOC_CHECK(bucket < kBucketCount);
  if (bucket + 1 == kBucketCount) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return bucket_lo_us(bucket + 1);
}

void LatencyHistogram::record_us(std::uint64_t us) {
  ++counts_[bucket_index(us)];
  ++total_;
  sum_us_ += us;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_us_ += other.sum_us_;
}

std::uint64_t LatencyHistogram::count(std::size_t bucket) const {
  SOC_CHECK(bucket < kBucketCount);
  return counts_[bucket];
}

double LatencyHistogram::mean_s() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(sum_us_) / static_cast<double>(total_) * 1e-6;
}

double LatencyHistogram::percentile_s(double p) const {
  SOC_CHECK(p >= 0.0 && p <= 100.0);
  if (total_ == 0) return 0.0;
  const double want = std::ceil(p / 100.0 * static_cast<double>(total_));
  const std::uint64_t rank =
      want < 1.0 ? 1 : static_cast<std::uint64_t>(want);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cum += counts_[i];
    if (cum >= rank) {
      return static_cast<double>(bucket_hi_us(i) - 1) * 1e-6;
    }
  }
  return static_cast<double>(bucket_hi_us(kBucketCount - 1) - 1) * 1e-6;
}

std::string LatencyHistogram::encode() const {
  if (total_ == 0) return {};
  char buf[64];
  std::string out;
  std::snprintf(buf, sizeof buf, "%llu;",
                static_cast<unsigned long long>(sum_us_));
  out += buf;
  bool first = true;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (counts_[i] == 0) continue;
    std::snprintf(buf, sizeof buf, "%s%zu:%llu", first ? "" : ",", i,
                  static_cast<unsigned long long>(counts_[i]));
    out += buf;
    first = false;
  }
  return out;
}

bool LatencyHistogram::merge_encoded(std::string_view text) {
  if (text.empty()) return true;
  const char* p = text.data();
  const char* const end = text.data() + text.size();
  const auto parse_u64 = [&](std::uint64_t& out) {
    const auto [next, ec] = std::from_chars(p, end, out);
    if (ec != std::errc() || next == p) return false;
    p = next;
    return true;
  };
  LatencyHistogram add;
  if (!parse_u64(add.sum_us_) || p == end || *p != ';') return false;
  ++p;
  // "<sum>;" with no buckets would smuggle in a sum with total 0 —
  // encode() never emits it, so it is rejected like any other corruption.
  if (p == end) return false;
  while (p != end) {
    std::uint64_t idx = 0, n = 0;
    if (!parse_u64(idx) || idx >= kBucketCount) return false;
    if (p == end || *p != ':') return false;
    ++p;
    if (!parse_u64(n)) return false;
    add.counts_[idx] += n;
    add.total_ += n;
    if (p != end) {
      if (*p != ',') return false;
      ++p;
      if (p == end) return false;  // trailing ','
    }
  }
  merge(add);
  return true;
}

}  // namespace soc::metrics
