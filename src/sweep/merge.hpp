// Merge per-shard results into one combined sweep report.
//
// The merged report is BENCH-schema JSON (bench/compare_core.hpp parses
// it; bench_compare can diff two merged reports of the same spec, and
// --check-counts=1 then acts as a whole-grid trajectory tripwire): one
// "experiments" entry per config *group* (the grid cell, repeats
// collapsed) with summed deterministic counts plus mean/median/95%-CI
// statistics across the repeat seeds.
//
// Byte-determinism: cells are sorted by key before any accumulation, all
// statistics are computed in that fixed order from %.17g-round-tripped
// values, and nothing wall-clock-dependent is emitted ("wall_seconds" and
// the rate fields are fixed at 0) — so the merged bytes are identical no
// matter how many workers produced the shards, in which order they
// finished, or on which machine the merge ran.  Merging is idempotent:
// re-merging the same shard files rewrites the identical file.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/sweep/runner.hpp"

namespace soc::sweep {

/// One hour of a group's figure curve: per-metric means across the repeat
/// seeds that recorded a sample at this hour index.  `repeats` counts the
/// cells that actually had the sample — short (ragged) series are NOT
/// padded with zeros; renderers mark sparse points instead (a padded 0.0
/// would silently drag a figure's tail toward the floor).
struct GroupSeriesPoint {
  double hour = 0.0;
  std::size_t repeats = 0;  ///< cells contributing this hour index
  double t_ratio_mean = 0.0;
  double f_ratio_mean = 0.0;
  double fairness_mean = 1.0;
};

/// Statistics of one config group across its repeat seeds.
struct GroupStats {
  std::string group;
  std::size_t repeats = 0;
  double t_ratio_mean = 0.0, t_ratio_median = 0.0, t_ratio_ci95 = 0.0;
  double f_ratio_mean = 0.0, f_ratio_median = 0.0, f_ratio_ci95 = 0.0;
  double fairness_mean = 1.0, fairness_ci95 = 0.0;
  double msgs_per_node_mean = 0.0;
  double avg_query_delay_s_mean = 0.0;
  std::uint64_t generated = 0, finished = 0, failed = 0;  ///< summed
  std::uint64_t events = 0, messages = 0;                 ///< summed
  std::uint64_t messages_partitioned = 0;                 ///< summed
  /// Stale-record debt at run end, summed over repeats.
  std::uint64_t stale_dead_provider = 0, stale_misplaced = 0;
  /// Worst per-node map density across repeats (max, not mean: one
  /// degenerate run is exactly what the metric exists to surface).
  double slot_span_ratio_max = 1.0;
  /// Per-query latency, folded bucket-wise across the group's repeats.
  /// Bucket counts are exact integer sums, so the fold is associative and
  /// commutative — the merged histogram (and every percentile read off it)
  /// is identical no matter how the cells were sharded or ordered.
  metrics::LatencyHistogram latency_first_result;
  metrics::LatencyHistogram latency_finish;
  /// 95% CI half-width of the per-repeat p99 (tail spread across seeds;
  /// 0 with a single repeat, and 0 when no repeat recorded a query).
  double latency_first_p99_ci95 = 0.0;
  double latency_finish_p99_ci95 = 0.0;
  /// Hour-by-hour curve (the figure shape), indexed by sample position.
  std::vector<GroupSeriesPoint> series;
  /// Registry metrics, per-name mean over the group's repeats, sorted by
  /// name (deterministic bytes regardless of shard layout).
  std::vector<obs::MetricSample> metrics_mean;
};

struct MergedReport {
  std::uint64_t spec_fingerprint = 0;
  std::size_t shards_total = 0;
  std::vector<CellResult> cells;   ///< all cells, sorted by key
  std::vector<GroupStats> groups;  ///< sorted by first-cell key order
};

/// Read every shard file of the sweep and fold.  Fails (with a message in
/// `err`) when any shard is missing/invalid — a partial merge would
/// silently under-report the grid.
[[nodiscard]] std::optional<MergedReport> merge_shards(
    const std::string& dir, const SweepSpec& spec, std::size_t shards_total,
    std::string* err);

/// The BENCH-style merged report (see file comment), written atomically.
bool write_merged_report(const std::string& path, const SweepSpec& spec,
                         const MergedReport& report);

/// Human summary table (stdout): one row per group, mean ± CI.
void print_merged_table(const MergedReport& report);

/// Figure tables (stdout): one table per metric (T-Ratio, F-Ratio,
/// fairness), rows = simulated hour, columns = config groups (labels
/// shortened by dropping key components shared by every group).  Hour
/// indices a group never sampled print "-"; points where only some of a
/// group's repeats reached that hour are marked with "*" — ragged series
/// are surfaced, never zero-padded.
void print_series_tables(const MergedReport& report);

}  // namespace soc::sweep
