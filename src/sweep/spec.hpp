// SweepSpec: the full-factorial experiment grid (protocol × λ × node count
// × scenario × repeat seed) behind the paper's figures, as pure data — the
// execution layer above a single Experiment.
//
// The spec enumerates SweepCells.  Everything about a cell is derived from
// its *content*, never from enumeration order:
//   * cell key     — canonical string naming the coordinates;
//   * seed         — splitmix64 of (base_seed, fnv1a(key)), so an
//                    experiment draws the identical RNG stream whether it
//                    runs in-process, in 1 worker, or in 16;
//   * shard id     — fnv1a(key) mod shards_total (src/sweep/shard.hpp).
// Reordering the spec's axis vectors therefore changes nothing about what
// any shard computes — the property the sweep determinism tests pin.
//
// A spec round-trips through CLI flags (from_args/to_args): the
// orchestrator respawns workers with to_args(), and a manifest's
// describe() string names the sweep for resume-time validation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/cli.hpp"
#include "src/core/experiment.hpp"

namespace soc::sweep {

/// FNV-1a 64-bit — the content hash behind cell seeds and shard ids.
[[nodiscard]] std::uint64_t fnv1a(std::string_view text);

/// One fully-addressed point of the grid: the built ExperimentConfig plus
/// the canonical names the sharder/merger key on.
struct SweepCell {
  std::string key;    ///< unique: group + "/r<repeat>"
  std::string group;  ///< stats-grouping cell (coordinates minus repeat)
  core::ExperimentConfig config;  ///< config.seed already content-derived
};

struct SweepSpec {
  std::vector<core::ProtocolKind> protocols{core::ProtocolKind::kHidCan};
  std::vector<double> lambdas{0.5};
  std::vector<std::size_t> node_counts{384};
  /// Scenario axis, by preset name ("none", "flash", "quake", "phased",
  /// "partition" — see scenario_by_name).  Named presets keep cells addressable from a
  /// worker command line; arbitrary ScenarioSpecs stay a library-level
  /// Experiment feature.
  std::vector<std::string> scenarios{"none"};
  /// Churn axis (Fig. 8's dynamic degree): one cell per value.
  std::vector<double> churns{0.0};
  /// Named config-modifier axis ("base", "delta4", "fanout2", "sel-nearest",
  /// "spread-cascade", "checkpoint", … — see apply_variant).  Like
  /// scenarios, names keep cells addressable from a worker command line;
  /// the ablation grids are spanned by this axis.
  std::vector<std::string> variants{"base"};
  /// Serving-workload axis, by preset name ("off"/"open", "closed",
  /// "zipf", "diurnal", '+'-composed — see workload::serving_by_name).
  /// The "off" default keeps cell keys and the spec fingerprint identical
  /// to pre-serving sweeps (no suffix, no sv=[] in describe()), so old
  /// manifests and shard files stay resumable.
  std::vector<std::string> servings{"off"};
  std::size_t repeats = 1;       ///< seeds per grid cell
  std::uint64_t base_seed = 1;   ///< mixed into every cell seed
  double hours = 6.0;            ///< simulated duration per experiment

  /// Parse from CLI flags (--protocols, --lambdas, --node-counts,
  /// --scenarios, --churns, --variants, --servings, --repeats, --base-seed,
  /// --hours).
  /// Unknown protocol/scenario/variant names return nullopt and print to
  /// stderr.  Flags absent from the command line fall back to `defaults` —
  /// how `--preset` grids stay overridable by explicit flags.
  [[nodiscard]] static std::optional<SweepSpec> from_args(
      const CliArgs& args, const SweepSpec& defaults);
  [[nodiscard]] static std::optional<SweepSpec> from_args(const CliArgs& args) {
    return from_args(args, SweepSpec{});
  }

  /// The spec as the equivalent CLI flags — how the orchestrator tells a
  /// worker process what sweep it belongs to.
  [[nodiscard]] std::vector<std::string> to_args() const;

  /// Compact one-line canonical description; equal specs (after axis
  /// sorting/dedup in normalized()) produce equal strings.
  [[nodiscard]] std::string describe() const;

  /// fnv1a(describe()) — stamped into every shard result and the manifest
  /// so resume and merge refuse to mix artifacts of different sweeps.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Canonical axis order: protocols by enum value, numeric axes
  /// ascending, scenarios lexicographic; duplicates removed.  Enumeration
  /// then yields cells sorted by key construction — and because every
  /// cell property is content-derived, a spec that arrives in a different
  /// axis order still produces the identical sweep.
  [[nodiscard]] SweepSpec normalized() const;

  /// All cells of the normalized grid.
  [[nodiscard]] std::vector<SweepCell> enumerate() const;

  [[nodiscard]] std::size_t cell_count() const {
    return protocols.size() * lambdas.size() * node_counts.size() *
           scenarios.size() * churns.size() * variants.size() *
           servings.size() * repeats;
  }
};

/// Apply a named config modifier — the ablation axis:
///   base            — no-op (the paper's defaults);
///   delta<N>        — want_results = N (first-k result count δ);
///   fanout<N>       — inscan.index_fanout_L = N (diffusion fan-out L);
///   sel-random / sel-nearest / sel-uniform — NINode selection policy;
///   spread-strict / spread-cascade — SID spreading-scope reading;
///   detached / tasks-lost / checkpoint — churn task policy.
/// Returns false (config untouched) for unknown names — sweep specs must
/// fail loudly, a shard silently running the wrong config would merge
/// wrong numbers.
[[nodiscard]] bool apply_variant(const std::string& name,
                                 core::ExperimentConfig& config);

/// A named figure/table/ablation grid: the paper's headline artifacts as
/// SweepSpec defaults, so `sweep_run --preset fig6` reproduces Fig. 6
/// through the sharded/resumable path.  `spec` carries the scaled default
/// grid (384 nodes, 6 simulated hours — pass --node-counts 2000 --hours 24
/// for paper scale; any explicit flag overrides its axis).  Presets whose
/// artifact is an hour-by-hour curve (Figs. 4–8) set `render_series` so
/// the merge step prints the figure tables.
struct SweepPreset {
  const char* name;
  const char* what;  ///< one-line description (CLI help)
  SweepSpec spec;
  bool render_series = false;
};

/// All presets, in paper order: fig4..fig8, table3, ablation-*.
[[nodiscard]] const std::vector<SweepPreset>& sweep_presets();

/// Preset by name; nullptr for unknown names (callers print the list).
[[nodiscard]] const SweepPreset* preset_by_name(const std::string& name);

/// Resolve a scenario preset against a cell's duration and population:
///   none   — disabled spec;
///   flash  — join burst of nodes/4 at 25% of the run over a 10% window;
///   quake  — spatial mass failure of 25% of the population at mid-run;
///   phased — churn phases 0 → 0.5 → 0.1 at 0% / 33% / 66% of the run;
///   partition — 30% spatial (LAN-boundary) cut at 35% of the run, healing
///   at 65% (stale-record-debt comparison).
/// nullopt for unknown names.
[[nodiscard]] std::optional<scenario::ScenarioSpec> scenario_by_name(
    const std::string& name, SimTime duration, std::size_t nodes);

}  // namespace soc::sweep
