#include "src/sweep/shard.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/json_mini.hpp"
#include "src/sweep/io.hpp"

namespace soc::sweep {

std::vector<Shard> partition(const SweepSpec& spec, std::size_t shards_total) {
  SOC_CHECK(shards_total > 0);
  std::vector<Shard> shards(shards_total);
  for (std::size_t i = 0; i < shards_total; ++i) shards[i].id = i;
  // enumerate() yields cells sorted by key (canonical grid order), and a
  // stable append per shard preserves that order within each shard.
  for (SweepCell& cell : spec.enumerate()) {
    shards[shard_of(cell, shards_total)].cells.push_back(std::move(cell));
  }
  return shards;
}

std::string shard_path(const std::string& dir, std::size_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/shard-%zu.json", id);
  return dir + buf;
}

std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.json";
}

bool write_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    out.flush();
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool write_manifest(const std::string& dir, const Manifest& manifest) {
  std::string out = "{\n";
  out += "  \"sweep_manifest\": 1,\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  \"spec_fingerprint\": \"%016llx\",\n",
                static_cast<unsigned long long>(manifest.spec_fingerprint));
  out += buf;
  out += "  \"spec\": \"" + json_mini::escape(manifest.spec) + "\",\n";
  std::snprintf(buf, sizeof(buf), "  \"shards_total\": %zu,\n",
                manifest.shards_total);
  out += buf;
  out += "  \"shards\": [\n";
  for (std::size_t i = 0; i < manifest.shards.size(); ++i) {
    const ShardStatus& s = manifest.shards[i];
    std::snprintf(buf, sizeof(buf),
                  "    { \"id\": %zu, \"cells\": %zu, \"state\": \"%s\" }%s\n",
                  s.id, s.cells, json_mini::escape(s.state).c_str(),
                  i + 1 < manifest.shards.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return write_atomic(manifest_path(dir), out);
}

std::optional<Manifest> read_manifest(const std::string& dir) {
  const auto text = read_file(manifest_path(dir));
  if (!text.has_value()) return std::nullopt;
  using json_mini::find_number;
  using json_mini::find_string;
  Manifest m;
  const auto fp = find_string(*text, "spec_fingerprint", 0);
  const auto spec = find_string(*text, "spec", 0);
  const auto total = find_number(*text, "shards_total", 0);
  if (!fp.has_value() || !spec.has_value() || !total.has_value()) {
    return std::nullopt;
  }
  m.spec_fingerprint = std::strtoull(fp->c_str(), nullptr, 16);
  m.spec = *spec;
  m.shards_total = static_cast<std::size_t>(*total);
  std::size_t pos = text->find("\"shards\":");
  while (pos != std::string::npos) {
    const std::size_t at = text->find("\"id\":", pos + 1);
    if (at == std::string::npos) break;
    std::size_t block_end = text->find("\"id\":", at + 1);
    if (block_end == std::string::npos) block_end = text->size();
    ShardStatus s;
    s.id = static_cast<std::size_t>(
        find_number(*text, "id", at - 1, block_end).value_or(0));
    s.cells = static_cast<std::size_t>(
        find_number(*text, "cells", at, block_end).value_or(0));
    s.state = find_string(*text, "state", at, block_end).value_or("pending");
    m.shards.push_back(std::move(s));
    pos = at;
  }
  return m;
}

bool dir_matches_sweep(const std::string& dir,
                       std::uint64_t spec_fingerprint,
                       std::size_t shards_total) {
  const auto existing = read_manifest(dir);
  if (!existing.has_value()) return true;
  if (existing->spec_fingerprint == spec_fingerprint &&
      existing->shards_total == shards_total) {
    return true;
  }
  std::fprintf(stderr,
               "sweep: %s already holds a different sweep (manifest "
               "fingerprint %016llx/%zu shards, ours %016llx/%zu) — use a "
               "fresh --dir\n",
               dir.c_str(),
               static_cast<unsigned long long>(existing->spec_fingerprint),
               existing->shards_total,
               static_cast<unsigned long long>(spec_fingerprint),
               shards_total);
  return false;
}

}  // namespace soc::sweep
