#include "src/sweep/spec.hpp"

#include <algorithm>
#include <cstdio>

#include "src/common/assert.hpp"

namespace soc::sweep {

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

/// splitmix64 finalizer: decorrelates the structured fnv/base-seed bits so
/// neighboring cells get unrelated experiment seeds.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename... Args>
std::string fmt(const char* f, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), f, args...);
  return buf;
}

}  // namespace

std::optional<SweepSpec> SweepSpec::from_args(const CliArgs& args) {
  SweepSpec spec;
  spec.protocols.clear();
  for (const std::string& name :
       args.get_list("protocols", "HID-CAN,Newscast,KHDN-CAN")) {
    const auto kind = core::protocol_from_name(name);
    if (!kind.has_value()) {
      std::fprintf(stderr, "sweep: unknown protocol '%s'\n", name.c_str());
      return std::nullopt;
    }
    spec.protocols.push_back(*kind);
  }
  const auto lambdas = args.get_double_list("lambdas", "0.5");
  const auto node_counts = args.get_size_list("node-counts", "384");
  if (!lambdas.has_value() || !node_counts.has_value()) return std::nullopt;
  spec.lambdas = *lambdas;
  spec.node_counts = *node_counts;
  spec.scenarios = args.get_list("scenarios", "none");
  for (const std::string& s : spec.scenarios) {
    if (!scenario_by_name(s, seconds(3600.0), 64).has_value()) {
      std::fprintf(stderr, "sweep: unknown scenario preset '%s'\n", s.c_str());
      return std::nullopt;
    }
  }
  spec.repeats = static_cast<std::size_t>(args.get_int("repeats", 1));
  spec.base_seed = static_cast<std::uint64_t>(args.get_int("base-seed", 1));
  spec.hours = args.get_double("hours", 6.0);
  spec.churn_dynamic_degree = args.get_double("churn", 0.0);
  if (spec.protocols.empty() || spec.lambdas.empty() ||
      spec.node_counts.empty() || spec.scenarios.empty() ||
      spec.repeats == 0) {
    std::fprintf(stderr, "sweep: every grid axis needs at least one value\n");
    return std::nullopt;
  }
  return spec.normalized();
}

std::vector<std::string> SweepSpec::to_args() const {
  const SweepSpec n = normalized();
  const auto join = [](const std::vector<std::string>& parts) {
    std::string out;
    for (const std::string& p : parts) {
      if (!out.empty()) out += ',';
      out += p;
    }
    return out;
  };
  std::vector<std::string> protos;
  protos.reserve(n.protocols.size());
  for (const core::ProtocolKind p : n.protocols) {
    protos.push_back(core::protocol_name(p));
  }
  std::vector<std::string> ls;
  for (const double l : n.lambdas) ls.push_back(fmt("%.6g", l));
  std::vector<std::string> ns;
  for (const std::size_t c : n.node_counts) ns.push_back(fmt("%zu", c));
  return {
      "--protocols=" + join(protos),
      "--lambdas=" + join(ls),
      "--node-counts=" + join(ns),
      "--scenarios=" + join(n.scenarios),
      fmt("--repeats=%zu", n.repeats),
      fmt("--base-seed=%llu", static_cast<unsigned long long>(n.base_seed)),
      fmt("--hours=%.6g", n.hours),
      fmt("--churn=%.6g", n.churn_dynamic_degree),
  };
}

SweepSpec SweepSpec::normalized() const {
  SweepSpec n = *this;
  const auto dedup_sort = [](auto& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  std::sort(n.protocols.begin(), n.protocols.end(),
            [](core::ProtocolKind a, core::ProtocolKind b) {
              return static_cast<int>(a) < static_cast<int>(b);
            });
  n.protocols.erase(std::unique(n.protocols.begin(), n.protocols.end()),
                    n.protocols.end());
  dedup_sort(n.lambdas);
  dedup_sort(n.node_counts);
  dedup_sort(n.scenarios);
  return n;
}

std::string SweepSpec::describe() const {
  const SweepSpec n = normalized();
  std::string out = "sweep{p=[";
  for (std::size_t i = 0; i < n.protocols.size(); ++i) {
    out += (i ? "," : "") + core::protocol_name(n.protocols[i]);
  }
  out += "] l=[";
  for (std::size_t i = 0; i < n.lambdas.size(); ++i) {
    out += fmt("%s%.6g", i ? "," : "", n.lambdas[i]);
  }
  out += "] n=[";
  for (std::size_t i = 0; i < n.node_counts.size(); ++i) {
    out += fmt("%s%zu", i ? "," : "", n.node_counts[i]);
  }
  out += "] sc=[";
  for (std::size_t i = 0; i < n.scenarios.size(); ++i) {
    out += (i ? "," : "") + n.scenarios[i];
  }
  out += fmt("] r=%zu seed=%llu h=%.6g dd=%.6g}", n.repeats,
             static_cast<unsigned long long>(n.base_seed), n.hours,
             n.churn_dynamic_degree);
  return out;
}

std::uint64_t SweepSpec::fingerprint() const { return fnv1a(describe()); }

std::vector<SweepCell> SweepSpec::enumerate() const {
  const SweepSpec n = normalized();
  std::vector<SweepCell> cells;
  cells.reserve(n.cell_count());
  for (const core::ProtocolKind proto : n.protocols) {
    for (const double lambda : n.lambdas) {
      for (const std::size_t nodes : n.node_counts) {
        for (const std::string& sc : n.scenarios) {
          const std::string group =
              fmt("%s/l%.6g/n%zu/%s", core::protocol_name(proto).c_str(),
                  lambda, nodes, sc.c_str());
          for (std::size_t r = 0; r < n.repeats; ++r) {
            SweepCell cell;
            cell.group = group;
            cell.key = fmt("%s/r%zu", group.c_str(), r);

            core::ExperimentConfig c;
            c.protocol = proto;
            c.nodes = nodes;
            c.demand_ratio = lambda;
            c.duration = seconds(n.hours * 3600.0);
            c.sample_step = seconds(3600);
            c.churn_dynamic_degree = n.churn_dynamic_degree;
            // Content-derived seed: identical for this cell no matter which
            // process (or how many) runs the sweep.  Guard against 0 —
            // some RNG seedings treat it specially.
            const std::uint64_t seed =
                mix64(n.base_seed ^ fnv1a(cell.key));
            c.seed = seed != 0 ? seed : 0x5eed5eed5eed5eedull;
            const auto scenario = scenario_by_name(sc, c.duration, nodes);
            SOC_CHECK_MSG(scenario.has_value(), "unknown scenario preset");
            c.scenario = *scenario;
            cell.config = std::move(c);
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

std::optional<scenario::ScenarioSpec> scenario_by_name(const std::string& name,
                                                       SimTime duration,
                                                       std::size_t nodes) {
  scenario::ScenarioSpec spec;
  if (name == "none") return spec;
  const double d = to_seconds(duration);
  if (name == "flash") {
    spec.bursts.push_back(scenario::JoinBurst{
        seconds(0.25 * d), std::max<std::size_t>(1, nodes / 4),
        seconds(0.10 * d)});
    return spec;
  }
  if (name == "quake") {
    spec.failures.push_back(
        scenario::MassFailure{seconds(0.5 * d), 0.25, /*spatial=*/true});
    return spec;
  }
  if (name == "phased") {
    spec.phases.push_back(scenario::ChurnPhase{0, 0.0});
    spec.phases.push_back(scenario::ChurnPhase{seconds(d / 3.0), 0.5});
    spec.phases.push_back(scenario::ChurnPhase{seconds(2.0 * d / 3.0), 0.1});
    return spec;
  }
  if (name == "partition") {
    // 30% of the population cut off along LAN boundaries at 35% of the
    // run, healing at 65% — the protocols then spend the last third
    // digesting stale rejoined state (the stale-record-debt comparison).
    spec.partitions.push_back(
        scenario::Partition{seconds(0.35 * d), 0.30, seconds(0.30 * d)});
    return spec;
  }
  return std::nullopt;
}

}  // namespace soc::sweep
