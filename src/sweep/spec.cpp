#include "src/sweep/spec.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "src/common/assert.hpp"
#include "src/workload/serving.hpp"

namespace soc::sweep {

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

/// splitmix64 finalizer: decorrelates the structured fnv/base-seed bits so
/// neighboring cells get unrelated experiment seeds.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename... Args>
std::string fmt(const char* f, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), f, args...);
  return buf;
}

}  // namespace

namespace {

std::string join_strings(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += ',';
    out += p;
  }
  return out;
}

std::string join_doubles(const std::vector<double>& vals) {
  std::string out;
  for (const double v : vals) out += fmt("%s%.6g", out.empty() ? "" : ",", v);
  return out;
}

std::string join_sizes(const std::vector<std::size_t>& vals) {
  std::string out;
  for (const std::size_t v : vals) {
    out += fmt("%s%zu", out.empty() ? "" : ",", v);
  }
  return out;
}

std::vector<std::string> protocol_names(
    const std::vector<core::ProtocolKind>& protocols) {
  std::vector<std::string> names;
  names.reserve(protocols.size());
  for (const core::ProtocolKind p : protocols) {
    names.push_back(core::protocol_name(p));
  }
  return names;
}

}  // namespace

std::optional<SweepSpec> SweepSpec::from_args(const CliArgs& args,
                                              const SweepSpec& defaults) {
  SweepSpec spec;
  spec.protocols.clear();
  for (const std::string& name : args.get_list(
           "protocols", join_strings(protocol_names(defaults.protocols)))) {
    const auto kind = core::protocol_from_name(name);
    if (!kind.has_value()) {
      std::fprintf(stderr, "sweep: unknown protocol '%s'\n", name.c_str());
      return std::nullopt;
    }
    spec.protocols.push_back(*kind);
  }
  const auto lambdas =
      args.get_double_list("lambdas", join_doubles(defaults.lambdas));
  const auto node_counts =
      args.get_size_list("node-counts", join_sizes(defaults.node_counts));
  const auto churns =
      args.get_double_list("churns", join_doubles(defaults.churns));
  if (!lambdas.has_value() || !node_counts.has_value() || !churns.has_value()) {
    return std::nullopt;
  }
  spec.lambdas = *lambdas;
  spec.node_counts = *node_counts;
  spec.churns = *churns;
  spec.scenarios =
      args.get_list("scenarios", join_strings(defaults.scenarios));
  for (const std::string& s : spec.scenarios) {
    if (!scenario_by_name(s, seconds(3600.0), 64).has_value()) {
      std::fprintf(stderr, "sweep: unknown scenario preset '%s'\n", s.c_str());
      return std::nullopt;
    }
  }
  spec.variants = args.get_list("variants", join_strings(defaults.variants));
  for (const std::string& v : spec.variants) {
    core::ExperimentConfig probe;
    if (!apply_variant(v, probe)) {
      std::fprintf(stderr, "sweep: unknown variant '%s'\n", v.c_str());
      return std::nullopt;
    }
  }
  spec.servings = args.get_list("servings", join_strings(defaults.servings));
  for (const std::string& s : spec.servings) {
    if (!workload::serving_by_name(s).has_value()) {
      std::fprintf(stderr, "sweep: unknown serving preset '%s' (expected %s)\n",
                   s.c_str(), workload::serving_names_help().c_str());
      return std::nullopt;
    }
  }
  spec.repeats = static_cast<std::size_t>(
      args.get_int("repeats", static_cast<std::int64_t>(defaults.repeats)));
  spec.base_seed = static_cast<std::uint64_t>(args.get_int(
      "base-seed", static_cast<std::int64_t>(defaults.base_seed)));
  spec.hours = args.get_double("hours", defaults.hours);
  if (spec.protocols.empty() || spec.lambdas.empty() ||
      spec.node_counts.empty() || spec.scenarios.empty() ||
      spec.churns.empty() || spec.variants.empty() || spec.servings.empty() ||
      spec.repeats == 0) {
    std::fprintf(stderr, "sweep: every grid axis needs at least one value\n");
    return std::nullopt;
  }
  return spec.normalized();
}

std::vector<std::string> SweepSpec::to_args() const {
  const SweepSpec n = normalized();
  return {
      "--protocols=" + join_strings(protocol_names(n.protocols)),
      "--lambdas=" + join_doubles(n.lambdas),
      "--node-counts=" + join_sizes(n.node_counts),
      "--scenarios=" + join_strings(n.scenarios),
      "--churns=" + join_doubles(n.churns),
      "--variants=" + join_strings(n.variants),
      "--servings=" + join_strings(n.servings),
      fmt("--repeats=%zu", n.repeats),
      fmt("--base-seed=%llu", static_cast<unsigned long long>(n.base_seed)),
      fmt("--hours=%.6g", n.hours),
  };
}

SweepSpec SweepSpec::normalized() const {
  SweepSpec n = *this;
  const auto dedup_sort = [](auto& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  std::sort(n.protocols.begin(), n.protocols.end(),
            [](core::ProtocolKind a, core::ProtocolKind b) {
              return static_cast<int>(a) < static_cast<int>(b);
            });
  n.protocols.erase(std::unique(n.protocols.begin(), n.protocols.end()),
                    n.protocols.end());
  dedup_sort(n.lambdas);
  dedup_sort(n.node_counts);
  dedup_sort(n.scenarios);
  dedup_sort(n.churns);
  dedup_sort(n.variants);
  dedup_sort(n.servings);
  return n;
}

std::string SweepSpec::describe() const {
  const SweepSpec n = normalized();
  std::string out = "sweep{p=[";
  for (std::size_t i = 0; i < n.protocols.size(); ++i) {
    out += (i ? "," : "") + core::protocol_name(n.protocols[i]);
  }
  out += "] l=[";
  for (std::size_t i = 0; i < n.lambdas.size(); ++i) {
    out += fmt("%s%.6g", i ? "," : "", n.lambdas[i]);
  }
  out += "] n=[";
  for (std::size_t i = 0; i < n.node_counts.size(); ++i) {
    out += fmt("%s%zu", i ? "," : "", n.node_counts[i]);
  }
  out += "] sc=[";
  for (std::size_t i = 0; i < n.scenarios.size(); ++i) {
    out += (i ? "," : "") + n.scenarios[i];
  }
  out += "] c=[";
  for (std::size_t i = 0; i < n.churns.size(); ++i) {
    out += fmt("%s%.6g", i ? "," : "", n.churns[i]);
  }
  out += "] v=[";
  for (std::size_t i = 0; i < n.variants.size(); ++i) {
    out += (i ? "," : "") + n.variants[i];
  }
  // The plain-"off" default is elided so pre-serving specs keep their
  // describe() string — and hence their fingerprint and cell keys.
  if (n.servings != std::vector<std::string>{"off"}) {
    out += "] sv=[";
    for (std::size_t i = 0; i < n.servings.size(); ++i) {
      out += (i ? "," : "") + n.servings[i];
    }
  }
  out += fmt("] r=%zu seed=%llu h=%.6g}", n.repeats,
             static_cast<unsigned long long>(n.base_seed), n.hours);
  return out;
}

std::uint64_t SweepSpec::fingerprint() const { return fnv1a(describe()); }

std::vector<SweepCell> SweepSpec::enumerate() const {
  const SweepSpec n = normalized();
  std::vector<SweepCell> cells;
  cells.reserve(n.cell_count());
  for (const core::ProtocolKind proto : n.protocols) {
    for (const double lambda : n.lambdas) {
      for (const std::size_t nodes : n.node_counts) {
        for (const std::string& sc : n.scenarios) {
          for (const double churn : n.churns) {
            for (const std::string& variant : n.variants) {
              for (const std::string& sv : n.servings) {
                // Keys keep their pre-serving shape for "off" cells so
                // existing shard artifacts and pinned seeds stay valid.
                std::string group = fmt(
                    "%s/l%.6g/n%zu/%s/c%.6g/%s",
                    core::protocol_name(proto).c_str(), lambda, nodes,
                    sc.c_str(), churn, variant.c_str());
                if (sv != "off") group += "/" + sv;
                for (std::size_t r = 0; r < n.repeats; ++r) {
                  SweepCell cell;
                  cell.group = group;
                  cell.key = fmt("%s/r%zu", group.c_str(), r);

                  core::ExperimentConfig c;
                  c.protocol = proto;
                  c.nodes = nodes;
                  c.demand_ratio = lambda;
                  c.duration = seconds(n.hours * 3600.0);
                  c.sample_step = seconds(3600);
                  c.churn_dynamic_degree = churn;
                  SOC_CHECK_MSG(apply_variant(variant, c), "unknown variant");
                  const auto serving = workload::serving_by_name(sv);
                  SOC_CHECK_MSG(serving.has_value(), "unknown serving preset");
                  c.serving = *serving;
                  // Content-derived seed: identical for this cell no matter
                  // which process (or how many) runs the sweep.  Guard
                  // against 0 — some RNG seedings treat it specially.
                  const std::uint64_t seed =
                      mix64(n.base_seed ^ fnv1a(cell.key));
                  c.seed = seed != 0 ? seed : 0x5eed5eed5eed5eedull;
                  const auto scenario = scenario_by_name(sc, c.duration, nodes);
                  SOC_CHECK_MSG(scenario.has_value(), "unknown scenario preset");
                  c.scenario = *scenario;
                  cell.config = std::move(c);
                  cells.push_back(std::move(cell));
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

bool apply_variant(const std::string& name, core::ExperimentConfig& config) {
  if (name == "base") return true;
  // delta<N> / fanout<N>: a numeric suffix keeps the axis extensible past
  // the paper's {1,2,4,8} / {1..4} grids without new names.
  const auto numeric_suffix =
      [&](const char* prefix) -> std::optional<std::size_t> {
    const std::size_t len = std::strlen(prefix);
    if (name.rfind(prefix, 0) != 0 || name.size() == len) return std::nullopt;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(name.c_str() + len, &end, 10);
    if (end != name.c_str() + name.size() || v == 0) return std::nullopt;
    return static_cast<std::size_t>(v);
  };
  if (const auto delta = numeric_suffix("delta")) {
    config.want_results = *delta;
    return true;
  }
  if (const auto fanout = numeric_suffix("fanout")) {
    config.inscan.index_fanout_L = *fanout;
    return true;
  }
  if (name == "sel-random") {
    config.inscan.select_policy = index::IndexSelectPolicy::kRandomPowerLevel;
    return true;
  }
  if (name == "sel-nearest") {
    config.inscan.select_policy = index::IndexSelectPolicy::kNearestOnly;
    return true;
  }
  if (name == "sel-uniform") {
    config.inscan.select_policy = index::IndexSelectPolicy::kUniformEntry;
    return true;
  }
  if (name == "spread-strict") {
    config.inscan.spreading_scope = index::SpreadingScope::kSenderTracks;
    return true;
  }
  if (name == "spread-cascade") {
    config.inscan.spreading_scope = index::SpreadingScope::kCascade;
    return true;
  }
  if (name == "detached") {
    config.churn_task_policy = core::ChurnTaskPolicy::kDetachedExecution;
    return true;
  }
  if (name == "tasks-lost") {
    config.churn_task_policy = core::ChurnTaskPolicy::kTasksLost;
    return true;
  }
  if (name == "checkpoint") {
    config.churn_task_policy = core::ChurnTaskPolicy::kCheckpointRestart;
    return true;
  }
  return false;
}

const std::vector<SweepPreset>& sweep_presets() {
  using core::ProtocolKind;
  // The six protocols of Figs. 5–7, in the figures' legend order.
  static const std::vector<ProtocolKind> kSixProtocols{
      ProtocolKind::kSidCan,    ProtocolKind::kHidCan,
      ProtocolKind::kSidCanSos, ProtocolKind::kHidCanSos,
      ProtocolKind::kSidCanVd,  ProtocolKind::kNewscast};
  static const std::vector<SweepPreset> kPresets = [] {
    std::vector<SweepPreset> out;
    const auto add = [&out](const char* name, const char* what,
                            bool render_series,
                            const std::function<void(SweepSpec&)>& shape) {
      SweepPreset p;
      p.name = name;
      p.what = what;
      p.render_series = render_series;
      shape(p.spec);  // everything not set keeps the SweepSpec defaults
      out.push_back(std::move(p));
    };
    add("fig4", "T-Ratio under wide (0.84) vs narrow (0.25) query ranges",
        true, [](SweepSpec& s) {
          s.protocols = {ProtocolKind::kNewscast, ProtocolKind::kSidCan,
                         ProtocolKind::kKhdnCan};
          s.lambdas = {0.25, 0.84};
        });
    add("fig5", "six-protocol comparison at demand ratio 1.0", true,
        [](SweepSpec& s) {
          s.protocols = kSixProtocols;
          s.lambdas = {1.0};
        });
    add("fig6", "six-protocol comparison at demand ratio 0.5", true,
        [](SweepSpec& s) {
          s.protocols = kSixProtocols;
          s.lambdas = {0.5};
        });
    add("fig7", "six-protocol comparison at demand ratio 0.25", true,
        [](SweepSpec& s) {
          s.protocols = kSixProtocols;
          s.lambdas = {0.25};
        });
    add("fig8", "HID-CAN under node-churn dynamic degree 0..0.95", true,
        [](SweepSpec& s) {
          s.churns = {0.0, 0.25, 0.5, 0.75, 0.95};
        });
    add("table3", "HID-CAN scalability across populations", false,
        [](SweepSpec& s) {
          s.node_counts = {250, 500, 750, 1000, 1250, 1500};
        });
    add("ablation-fanout", "A1: index diffusion fan-out L in 1..4", false,
        [](SweepSpec& s) {
          s.variants = {"fanout1", "fanout2", "fanout3", "fanout4"};
        });
    add("ablation-selection", "A2: NINode selection policy", false,
        [](SweepSpec& s) {
          s.variants = {"sel-random", "sel-nearest", "sel-uniform"};
        });
    add("ablation-delta", "A3: first-k result count delta in {1,2,4,8}",
        false, [](SweepSpec& s) {
          s.variants = {"delta1", "delta2", "delta4", "delta8"};
        });
    add("ablation-checkpoint",
        "A4: churn task policies at 50% and 95% churn", false,
        [](SweepSpec& s) {
          s.churns = {0.5, 0.95};
          s.variants = {"detached", "tasks-lost", "checkpoint"};
        });
    add("serving",
        "serving workloads: open vs closed loop, hot-key skew, tail latency",
        false, [](SweepSpec& s) {
          s.protocols = {ProtocolKind::kHidCan, ProtocolKind::kNewscast,
                         ProtocolKind::kKhdnCan};
          s.lambdas = {0.25, 1.0};
          s.servings = {"open", "zipf", "closed", "closed+zipf"};
        });
    add("ablation-spreading",
        "A5: SID spreading-scope readings vs HID at two demand ratios",
        false, [](SweepSpec& s) {
          s.protocols = {ProtocolKind::kSidCan, ProtocolKind::kHidCan};
          s.lambdas = {0.25, 0.5};
          s.variants = {"spread-strict", "spread-cascade"};
        });
    return out;
  }();
  return kPresets;
}

const SweepPreset* preset_by_name(const std::string& name) {
  for (const SweepPreset& p : sweep_presets()) {
    if (name == p.name) return &p;
  }
  return nullptr;
}

std::optional<scenario::ScenarioSpec> scenario_by_name(const std::string& name,
                                                       SimTime duration,
                                                       std::size_t nodes) {
  scenario::ScenarioSpec spec;
  if (name == "none") return spec;
  const double d = to_seconds(duration);
  if (name == "flash") {
    spec.bursts.push_back(scenario::JoinBurst{
        seconds(0.25 * d), std::max<std::size_t>(1, nodes / 4),
        seconds(0.10 * d)});
    return spec;
  }
  if (name == "quake") {
    spec.failures.push_back(
        scenario::MassFailure{seconds(0.5 * d), 0.25, /*spatial=*/true});
    return spec;
  }
  if (name == "phased") {
    spec.phases.push_back(scenario::ChurnPhase{0, 0.0});
    spec.phases.push_back(scenario::ChurnPhase{seconds(d / 3.0), 0.5});
    spec.phases.push_back(scenario::ChurnPhase{seconds(2.0 * d / 3.0), 0.1});
    return spec;
  }
  if (name == "partition") {
    // 30% of the population cut off along LAN boundaries at 35% of the
    // run, healing at 65% — the protocols then spend the last third
    // digesting stale rejoined state (the stale-record-debt comparison).
    spec.partitions.push_back(
        scenario::Partition{seconds(0.35 * d), 0.30, seconds(0.30 * d)});
    return spec;
  }
  return std::nullopt;
}

}  // namespace soc::sweep
