#include "src/sweep/runner.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>

#include "src/common/json_mini.hpp"
#include "src/obs/trace.hpp"
#include "src/sweep/io.hpp"

namespace soc::sweep {

ShardResult run_shard(const Shard& shard, std::uint64_t spec_fingerprint,
                      std::size_t shards_total) {
  ShardResult result;
  result.spec_fingerprint = spec_fingerprint;
  result.shard_id = shard.id;
  result.shards_total = shards_total;
  result.cells.reserve(shard.cells.size());
  for (const SweepCell& cell : shard.cells) {
    // One trace lane per cell: task/query span ids restart per experiment,
    // so sharing a lane would pair spans across unrelated cells.  Lane pids
    // come from the tracer's own counter so local mode (many shards, one
    // process) keeps them unique.
    if (obs::Tracer* t = obs::tracer()) {
      t->set_lane(static_cast<std::uint32_t>(t->lane_count()), cell.key);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const core::ExperimentResults r = core::run_experiment(cell.config);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    CellResult out;
    out.key = cell.key;
    out.group = cell.group;
    out.seed = cell.config.seed;
    out.t_ratio = r.t_ratio;
    out.f_ratio = r.f_ratio;
    out.fairness = r.fairness;
    out.msgs_per_node = r.msg_cost_per_node;
    out.avg_query_delay_s = r.avg_query_delay_s;
    out.generated = r.generated;
    out.finished = r.finished;
    out.failed = r.failed;
    out.events = r.events_executed;
    out.messages = r.total_messages;
    out.messages_delivered = r.messages_delivered;
    out.messages_lost = r.messages_lost;
    out.messages_partitioned = r.messages_partitioned;
    out.stale_dead_provider = r.stale_records_dead_provider;
    out.stale_misplaced = r.stale_records_misplaced;
    out.slot_span_ratio = r.slot_span_ratio;
    out.wall_seconds = dt.count();
    out.series = r.series;
    out.latency_first_result = r.latency_first_result;
    out.latency_finish = r.latency_finish;
    for (const obs::MetricSample& m : r.metrics) {
      if (m.deterministic) out.metrics.push_back(m);
    }
    result.cells.push_back(std::move(out));
  }
  return result;
}

bool write_shard_result(const std::string& dir, const ShardResult& result) {
  std::string out = "{\n  \"sweep_shard\": 1,\n";
  // Sized with ample headroom: a paper-scale cell line with full-width
  // %.17g metrics and a long key measures ~530 bytes.  Truncation is
  // checked anyway — a torn cell line would make the shard file
  // permanently invalid (and the sweep unable to ever complete) while the
  // worker reports success.
  char buf[2048];
  int n = std::snprintf(buf, sizeof(buf),
                        "  \"spec_fingerprint\": \"%016llx\",\n"
                        "  \"shard\": %zu,\n  \"shards_total\": %zu,\n",
                        static_cast<unsigned long long>(
                            result.spec_fingerprint),
                        result.shard_id, result.shards_total);
  if (n < 0 || static_cast<std::size_t>(n) >= sizeof(buf)) return false;
  out += buf;
  out += "  \"cells\": [";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& c = result.cells[i];
    // %.17g round-trips doubles exactly through strtod, so stats computed
    // from a parsed shard file equal stats computed from the in-memory
    // results — a prerequisite for byte-identical merges.
    n = std::snprintf(
        buf, sizeof(buf),
        "%s\n    { \"key\": \"%s\", \"group\": \"%s\", \"seed\": %llu,\n"
        "      \"t_ratio\": %.17g, \"f_ratio\": %.17g, \"fairness\": %.17g,\n"
        "      \"msgs_per_node\": %.17g, \"avg_query_delay_s\": %.17g,\n"
        "      \"generated\": %llu, \"finished\": %llu, \"failed\": %llu,\n"
        "      \"events\": %llu, \"messages\": %llu,\n"
        "      \"delivered\": %llu, \"lost\": %llu, \"partitioned\": %llu,\n"
        "      \"stale_dead_provider\": %llu, \"stale_misplaced\": %llu,\n"
        "      \"slot_span_ratio\": %.17g,\n"
        "      \"wall_seconds\": %.6f,\n",
        i > 0 ? "," : "", json_mini::escape(c.key).c_str(),
        json_mini::escape(c.group).c_str(),
        static_cast<unsigned long long>(c.seed), c.t_ratio, c.f_ratio,
        c.fairness, c.msgs_per_node, c.avg_query_delay_s,
        static_cast<unsigned long long>(c.generated),
        static_cast<unsigned long long>(c.finished),
        static_cast<unsigned long long>(c.failed),
        static_cast<unsigned long long>(c.events),
        static_cast<unsigned long long>(c.messages),
        static_cast<unsigned long long>(c.messages_delivered),
        static_cast<unsigned long long>(c.messages_lost),
        static_cast<unsigned long long>(c.messages_partitioned),
        static_cast<unsigned long long>(c.stale_dead_provider),
        static_cast<unsigned long long>(c.stale_misplaced), c.slot_span_ratio,
        c.wall_seconds);
    if (n < 0 || static_cast<std::size_t>(n) >= sizeof(buf)) return false;
    out += buf;
    // The sparse-encoded latency histograms are appended as std::string
    // concatenations, not through the fixed snprintf buffer: a dense
    // histogram string can exceed any reasonable stack buffer, and a torn
    // cell line must never reach disk.  Their alphabet (digits ; : ,)
    // needs no JSON escaping.
    out += "      \"lat_first_b\": \"" + c.latency_first_result.encode() +
           "\",\n";
    out += "      \"lat_finish_b\": \"" + c.latency_finish.encode() + "\",\n";
    // Registry metrics as {"k","v"} pairs: the name is an escaped string
    // *value*, so no metric name can alias a schema key ("generated",
    // "hour", ...) under the bounded needle parser.  Before "series" so
    // the series sample scan below never sees them.
    out += "      \"metrics\": [";
    for (std::size_t m = 0; m < c.metrics.size(); ++m) {
      n = std::snprintf(buf, sizeof(buf),
                        "%s\n        { \"k\": \"%s\", \"v\": %.17g }",
                        m > 0 ? "," : "",
                        json_mini::escape(c.metrics[m].name).c_str(),
                        c.metrics[m].value);
      if (n < 0 || static_cast<std::size_t>(n) >= sizeof(buf)) return false;
      out += buf;
    }
    out += c.metrics.empty() ? "],\n" : " ],\n";
    out += "      \"series\": [";
    // The hour-by-hour samples go AFTER every scalar field: the bounded
    // first-match parser shares key names between the two ("generated",
    // "t_ratio", …), so within a cell block the scalar must come first.
    for (std::size_t s = 0; s < c.series.size(); ++s) {
      const metrics::SeriesSample& p = c.series[s];
      n = std::snprintf(
          buf, sizeof(buf),
          "%s\n        { \"hour\": %.17g, \"generated\": %llu,"
          " \"finished\": %llu, \"failed\": %llu,\n"
          "          \"t_ratio\": %.17g, \"f_ratio\": %.17g,"
          " \"fairness\": %.17g }",
          s > 0 ? "," : "", p.hour,
          static_cast<unsigned long long>(p.generated),
          static_cast<unsigned long long>(p.finished),
          static_cast<unsigned long long>(p.failed), p.t_ratio, p.f_ratio,
          p.fairness);
      if (n < 0 || static_cast<std::size_t>(n) >= sizeof(buf)) return false;
      out += buf;
    }
    out += c.series.empty() ? "] }" : " ] }";
  }
  out += "\n  ]\n}\n";
  return write_atomic(shard_path(dir, result.shard_id), out);
}

std::optional<ShardResult> read_shard_result(const std::string& path) {
  const auto text = read_file(path);
  if (!text.has_value()) return std::nullopt;
  using json_mini::find_number;
  using json_mini::find_string;
  if (!find_number(*text, "sweep_shard", 0).has_value()) return std::nullopt;
  ShardResult r;
  const auto fp = find_string(*text, "spec_fingerprint", 0);
  const auto shard = find_number(*text, "shard", 0);
  const auto total = find_number(*text, "shards_total", 0);
  if (!fp.has_value() || !shard.has_value() || !total.has_value()) {
    return std::nullopt;
  }
  r.spec_fingerprint = std::strtoull(fp->c_str(), nullptr, 16);
  r.shard_id = static_cast<std::size_t>(*shard);
  r.shards_total = static_cast<std::size_t>(*total);

  const std::string needle = "\"key\": \"";
  std::size_t pos = text->find("\"cells\":");
  if (pos == std::string::npos) return std::nullopt;
  pos = text->find(needle, pos);
  while (pos != std::string::npos) {
    std::size_t block_end = text->find(needle, pos + needle.size());
    if (block_end == std::string::npos) block_end = text->size();
    CellResult c;
    const auto key = find_string(*text, "key", pos - 1, block_end);
    const auto group = find_string(*text, "group", pos, block_end);
    if (!key.has_value() || !group.has_value()) return std::nullopt;
    c.key = *key;
    c.group = *group;
    const auto num = [&](const char* k) {
      return find_number(*text, k, pos, block_end);
    };
    const auto u64 = [&](const char* k) {
      return json_mini::find_uint64(*text, k, pos, block_end).value_or(0);
    };
    const auto required = num("t_ratio");
    if (!required.has_value()) return std::nullopt;
    c.seed = u64("seed");
    c.t_ratio = *required;
    c.f_ratio = num("f_ratio").value_or(0.0);
    c.fairness = num("fairness").value_or(1.0);
    c.msgs_per_node = num("msgs_per_node").value_or(0.0);
    c.avg_query_delay_s = num("avg_query_delay_s").value_or(0.0);
    c.generated = u64("generated");
    c.finished = u64("finished");
    c.failed = u64("failed");
    c.events = u64("events");
    c.messages = u64("messages");
    c.messages_delivered = u64("delivered");
    c.messages_lost = u64("lost");
    // Absent in pre-partition shard files: u64 defaults them to 0.
    c.messages_partitioned = u64("partitioned");
    c.stale_dead_provider = u64("stale_dead_provider");
    c.stale_misplaced = u64("stale_misplaced");
    c.slot_span_ratio = num("slot_span_ratio").value_or(1.0);
    c.wall_seconds = num("wall_seconds").value_or(0.0);
    // Latency histograms: absent in pre-serving shard files (empty
    // histograms), and a malformed encoding invalidates the whole file —
    // a silently-dropped histogram would merge wrong percentiles.
    const auto lat_first = find_string(*text, "lat_first_b", pos, block_end);
    const auto lat_finish = find_string(*text, "lat_finish_b", pos, block_end);
    if (lat_first.has_value() &&
        !c.latency_first_result.merge_encoded(*lat_first)) {
      return std::nullopt;
    }
    if (lat_finish.has_value() &&
        !c.latency_finish.merge_encoded(*lat_finish)) {
      return std::nullopt;
    }
    // Registry metrics: {"k","v"} pairs between the histograms and the
    // series (absent in pre-observability shard files).  Bounded at
    // "series" so a series sample can never be misread as a pair.
    const std::string pair_needle = "\"k\": \"";
    std::size_t metrics_end = text->find("\"series\":", pos);
    if (metrics_end == std::string::npos || metrics_end > block_end) {
      metrics_end = block_end;
    }
    std::size_t mp = text->find(pair_needle, pos);
    while (mp != std::string::npos && mp < metrics_end) {
      std::size_t pair_end = text->find(pair_needle, mp + pair_needle.size());
      if (pair_end == std::string::npos || pair_end > metrics_end) {
        pair_end = metrics_end;
      }
      const auto k = find_string(*text, "k", mp - 1, pair_end);
      const auto v = find_number(*text, "v", mp, pair_end);
      if (!k.has_value() || !v.has_value()) return std::nullopt;
      c.metrics.push_back(
          obs::MetricSample{*k, *v, /*deterministic=*/true});
      mp = text->find(pair_needle, pair_end - 1);
    }
    // Hour-by-hour samples, delimited by their "hour" key (absent from the
    // scalar block, and series samples carry no "key", so the cell block
    // bound above still holds).  Absent in pre-series shard files.
    const std::string hour_needle = "\"hour\":";
    std::size_t sp = text->find(hour_needle, pos);
    while (sp != std::string::npos && sp < block_end) {
      std::size_t sample_end = text->find(hour_needle, sp + hour_needle.size());
      if (sample_end == std::string::npos || sample_end > block_end) {
        sample_end = block_end;
      }
      metrics::SeriesSample p;
      const auto hour = find_number(*text, "hour", sp - 1, sample_end);
      if (!hour.has_value()) return std::nullopt;
      p.hour = *hour;
      p.generated =
          json_mini::find_uint64(*text, "generated", sp, sample_end).value_or(0);
      p.finished =
          json_mini::find_uint64(*text, "finished", sp, sample_end).value_or(0);
      p.failed =
          json_mini::find_uint64(*text, "failed", sp, sample_end).value_or(0);
      p.t_ratio = find_number(*text, "t_ratio", sp, sample_end).value_or(0.0);
      p.f_ratio = find_number(*text, "f_ratio", sp, sample_end).value_or(0.0);
      p.fairness = find_number(*text, "fairness", sp, sample_end).value_or(1.0);
      c.series.push_back(p);
      sp = text->find(hour_needle, sample_end - 1);
    }
    r.cells.push_back(std::move(c));
    pos = text->find(needle, block_end - 1);
  }
  return r;
}

bool shard_result_valid(const ShardResult& result, const Shard& shard,
                        std::uint64_t spec_fingerprint,
                        std::size_t shards_total) {
  if (result.spec_fingerprint != spec_fingerprint ||
      result.shard_id != shard.id || result.shards_total != shards_total ||
      result.cells.size() != shard.cells.size()) {
    return false;
  }
  for (std::size_t i = 0; i < shard.cells.size(); ++i) {
    if (result.cells[i].key != shard.cells[i].key) return false;
  }
  return true;
}

bool shard_complete(const std::string& dir, const Shard& shard,
                    std::uint64_t spec_fingerprint,
                    std::size_t shards_total) {
  const auto result = read_shard_result(shard_path(dir, shard.id));
  return result.has_value() &&
         shard_result_valid(*result, shard, spec_fingerprint, shards_total);
}

std::vector<std::size_t> pending_shards(const std::string& dir,
                                        const std::vector<Shard>& shards,
                                        std::uint64_t spec_fingerprint) {
  std::vector<std::size_t> pending;
  for (const Shard& shard : shards) {
    if (!shard_complete(dir, shard, spec_fingerprint, shards.size())) {
      pending.push_back(shard.id);
    }
  }
  return pending;
}

namespace {

/// Spawn `worker_binary --mode=worker --dir=D --shards=N --shard=K <spec>`.
/// Returns the child pid, or -1.
pid_t spawn_worker(const std::string& worker_binary, const SweepSpec& spec,
                   const std::string& dir, std::size_t shards_total,
                   std::size_t shard_id) {
  std::vector<std::string> args;
  args.push_back(worker_binary);
  args.push_back("--mode=worker");
  args.push_back("--dir=" + dir);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "--shards=%zu", shards_total);
  args.push_back(buf);
  std::snprintf(buf, sizeof(buf), "--shard=%zu", shard_id);
  args.push_back(buf);
  for (std::string& a : spec.to_args()) args.push_back(std::move(a));

  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid == 0) {
    execv(argv[0], argv.data());
    std::fprintf(stderr, "sweep: execv %s failed: %s\n", argv[0],
                 std::strerror(errno));
    _exit(127);
  }
  return pid;
}

}  // namespace

std::optional<OrchestrateOutcome> orchestrate(
    const SweepSpec& spec, std::size_t shards_total,
    const OrchestrateOptions& options) {
  const SweepSpec norm = spec.normalized();
  const std::uint64_t fp = norm.fingerprint();
  const std::vector<Shard> shards = partition(norm, shards_total);

  // A directory already carrying a different sweep's manifest is a user
  // error (mixing two sweeps' shard files would merge garbage).
  if (!dir_matches_sweep(options.dir, fp, shards_total)) return std::nullopt;

  Manifest manifest;
  manifest.spec_fingerprint = fp;
  manifest.spec = norm.describe();
  manifest.shards_total = shards_total;
  manifest.shards.resize(shards_total);

  OrchestrateOutcome outcome;
  std::vector<std::size_t> queue;
  for (const Shard& shard : shards) {
    ShardStatus& st = manifest.shards[shard.id];
    st.id = shard.id;
    st.cells = shard.cells.size();
    if (shard_complete(options.dir, shard, fp, shards_total)) {
      st.state = "done";  // resume: finished before a previous crash
      ++outcome.skipped;
    } else if (shard.cells.empty()) {
      // Nothing to compute — complete it inline instead of spawning a
      // process to do nothing.
      ShardResult empty;
      empty.spec_fingerprint = fp;
      empty.shard_id = shard.id;
      empty.shards_total = shards_total;
      const bool ok = write_shard_result(options.dir, empty);
      st.state = ok ? "done" : "failed";
      ok ? ++outcome.ran : ++outcome.failed;
    } else {
      st.state = "pending";
      queue.push_back(shard.id);
    }
  }
  if (!write_manifest(options.dir, manifest)) {
    std::fprintf(stderr, "sweep: cannot write manifest in %s\n",
                 options.dir.c_str());
    return std::nullopt;
  }

  const auto finish_shard = [&](std::size_t sid, bool worker_ok) {
    const bool done = worker_ok &&
                      shard_complete(options.dir, shards[sid], fp,
                                     shards_total);
    manifest.shards[sid].state = done ? "done" : "failed";
    done ? ++outcome.ran : ++outcome.failed;
    if (!done) {
      std::fprintf(stderr, "sweep: shard %zu failed%s\n", sid,
                   worker_ok ? " (invalid result file)" : "");
    }
    write_manifest(options.dir, manifest);
  };

  if (options.worker_binary.empty()) {
    // In-process reference path: sequential, deterministic order.
    for (const std::size_t sid : queue) {
      const ShardResult result = run_shard(shards[sid], fp, shards_total);
      finish_shard(sid, write_shard_result(options.dir, result));
    }
    return outcome;
  }

  std::map<pid_t, std::size_t> running;
  std::size_t next = 0;
  const std::size_t workers = options.workers > 0 ? options.workers : 1;
  while (next < queue.size() || !running.empty()) {
    while (next < queue.size() && running.size() < workers) {
      const std::size_t sid = queue[next++];
      const pid_t pid = spawn_worker(options.worker_binary, norm, options.dir,
                                     shards_total, sid);
      if (pid < 0) {
        finish_shard(sid, false);
        continue;
      }
      running.emplace(pid, sid);
    }
    if (running.empty()) continue;
    int status = 0;
    const pid_t pid = waitpid(-1, &status, 0);
    if (pid < 0) break;
    const auto it = running.find(pid);
    if (it == running.end()) continue;
    const std::size_t sid = it->second;
    running.erase(it);
    finish_shard(sid, WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  return outcome;
}

}  // namespace soc::sweep
