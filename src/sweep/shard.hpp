// Deterministic partition of a SweepSpec's cells into disjoint shards, and
// the sweep manifest that tracks shard completion across processes (and
// machines) for crash-resume.
//
// A cell's shard id is fnv1a(cell.key) mod shards_total — derived from the
// cell's content, not from enumeration order — so the partition is stable
// under any reordering of the spec's axis vectors, and two machines that
// independently partition the same spec agree on every assignment.
// Within a shard, cells stay sorted by key (the enumeration order of the
// normalized spec), fixing each worker's execution order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sweep/spec.hpp"

namespace soc::sweep {

/// Shard id of one cell under a `shards_total`-way partition.
[[nodiscard]] inline std::size_t shard_of(const SweepCell& cell,
                                          std::size_t shards_total) {
  return static_cast<std::size_t>(fnv1a(cell.key) %
                                  static_cast<std::uint64_t>(shards_total));
}

struct Shard {
  std::size_t id = 0;
  std::vector<SweepCell> cells;  ///< sorted by key; may be empty
};

/// Partition the spec's grid: exactly `shards_total` shards, every cell in
/// exactly one (exhaustive + disjoint by construction).
[[nodiscard]] std::vector<Shard> partition(const SweepSpec& spec,
                                           std::size_t shards_total);

// ---------------------------------------------------------------------------
// Manifest: <dir>/manifest.json.
//
// The orchestrator writes it before spawning workers and rewrites it
// (atomically) as shards complete, so a kill at any instant leaves either
// the old or the new manifest — never a torn one.  The authoritative
// completion record is the per-shard result files themselves (a shard is
// done iff its result file exists, parses, and carries this sweep's
// fingerprint); the manifest carries the sweep identity for resume-time
// validation, the shard inventory for humans/other machines, and the last
// observed status snapshot.
// ---------------------------------------------------------------------------

struct ShardStatus {
  std::size_t id = 0;
  std::size_t cells = 0;
  std::string state;  ///< "pending" | "done" | "failed"
};

struct Manifest {
  std::uint64_t spec_fingerprint = 0;
  std::string spec;  ///< SweepSpec::describe()
  std::size_t shards_total = 0;
  std::vector<ShardStatus> shards;
};

/// Result-file path for one shard: <dir>/shard-<id>.json.
[[nodiscard]] std::string shard_path(const std::string& dir, std::size_t id);
[[nodiscard]] std::string manifest_path(const std::string& dir);

/// Atomic write (tmp + rename).  Returns false on I/O error.
bool write_manifest(const std::string& dir, const Manifest& manifest);

/// nullopt when absent or unparseable.
[[nodiscard]] std::optional<Manifest> read_manifest(const std::string& dir);

/// True when `dir` carries no manifest yet, or its manifest names exactly
/// this sweep (fingerprint + shard count).  Every mode that writes into a
/// sweep directory (orchestrate, worker, plan) must check this first —
/// mixing two sweeps' artifacts in one directory destroys completed
/// compute and would merge garbage.
[[nodiscard]] bool dir_matches_sweep(const std::string& dir,
                                     std::uint64_t spec_fingerprint,
                                     std::size_t shards_total);

}  // namespace soc::sweep
