#include "src/sweep/merge.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/common/json_mini.hpp"
#include "src/common/stats.hpp"
#include "src/sweep/io.hpp"

namespace soc::sweep {

std::optional<MergedReport> merge_shards(const std::string& dir,
                                         const SweepSpec& spec,
                                         std::size_t shards_total,
                                         std::string* err) {
  const SweepSpec norm = spec.normalized();
  const std::uint64_t fp = norm.fingerprint();
  const std::vector<Shard> shards = partition(norm, shards_total);

  MergedReport report;
  report.spec_fingerprint = fp;
  report.shards_total = shards_total;
  for (const Shard& shard : shards) {
    const auto result = read_shard_result(shard_path(dir, shard.id));
    if (!result.has_value() ||
        !shard_result_valid(*result, shard, fp, shards_total)) {
      if (err != nullptr) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "shard %zu missing or invalid in %s", shard.id,
                      dir.c_str());
        *err = buf;
      }
      return std::nullopt;
    }
    for (const CellResult& c : result->cells) report.cells.push_back(c);
  }

  // Canonical order: shard layout must not leak into the merged bytes.
  std::sort(report.cells.begin(), report.cells.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.key < b.key;
            });

  // Group by `group` preserving first-appearance order of the sorted cells
  // (i.e. the normalized grid order, repeats collapsed).
  std::map<std::string, std::size_t> index_of;
  std::vector<std::vector<const CellResult*>> buckets;
  std::vector<std::string> order;
  for (const CellResult& c : report.cells) {
    const auto [it, inserted] = index_of.emplace(c.group, buckets.size());
    if (inserted) {
      buckets.emplace_back();
      order.push_back(c.group);
    }
    buckets[it->second].push_back(&c);
  }

  for (std::size_t g = 0; g < buckets.size(); ++g) {
    GroupStats s;
    s.group = order[g];
    s.repeats = buckets[g].size();
    RunningStats t, f, fair, mpn, delay;
    RunningStats p99_first, p99_finish;
    std::vector<double> ts, fs;
    std::map<std::string, RunningStats> metric_folds;
    for (const CellResult* c : buckets[g]) {
      t.add(c->t_ratio);
      f.add(c->f_ratio);
      fair.add(c->fairness);
      mpn.add(c->msgs_per_node);
      delay.add(c->avg_query_delay_s);
      ts.push_back(c->t_ratio);
      fs.push_back(c->f_ratio);
      s.generated += c->generated;
      s.finished += c->finished;
      s.failed += c->failed;
      s.events += c->events;
      s.messages += c->messages;
      s.messages_partitioned += c->messages_partitioned;
      s.stale_dead_provider += c->stale_dead_provider;
      s.stale_misplaced += c->stale_misplaced;
      s.slot_span_ratio_max = std::max(s.slot_span_ratio_max,
                                       c->slot_span_ratio);
      s.latency_first_result.merge(c->latency_first_result);
      s.latency_finish.merge(c->latency_finish);
      // The CI is over per-repeat tail estimates; a repeat with no queries
      // has no tail to estimate and contributes nothing.
      if (c->latency_first_result.total() > 0) {
        p99_first.add(c->latency_first_result.percentile_s(99.0));
      }
      if (c->latency_finish.total() > 0) {
        p99_finish.add(c->latency_finish.percentile_s(99.0));
      }
      for (const obs::MetricSample& m : c->metrics) {
        metric_folds[m.name].add(m.value);
      }
    }
    // std::map iteration gives the name-sorted order the report writer
    // needs for byte-determinism.
    for (const auto& [name, fold] : metric_folds) {
      s.metrics_mean.push_back(
          obs::MetricSample{name, fold.mean(), /*deterministic=*/true});
    }
    s.t_ratio_mean = t.mean();
    s.t_ratio_median = median(ts);
    s.t_ratio_ci95 = mean_ci95_halfwidth(t.count(), t.stddev());
    s.f_ratio_mean = f.mean();
    s.f_ratio_median = median(fs);
    s.f_ratio_ci95 = mean_ci95_halfwidth(f.count(), f.stddev());
    s.fairness_mean = fair.mean();
    s.fairness_ci95 = mean_ci95_halfwidth(fair.count(), fair.stddev());
    s.msgs_per_node_mean = mpn.mean();
    s.avg_query_delay_s_mean = delay.mean();
    s.latency_first_p99_ci95 =
        mean_ci95_halfwidth(p99_first.count(), p99_first.stddev());
    s.latency_finish_p99_ci95 =
        mean_ci95_halfwidth(p99_finish.count(), p99_finish.stddev());
    // Fold the repeats' hour-by-hour series index-by-index.  Repeats of a
    // group share a sampling cadence (same config except seed), but a
    // repeat's series can still be shorter; a missing sample reduces that
    // point's `repeats` count instead of contributing a padded 0.0.
    std::size_t longest = 0;
    for (const CellResult* c : buckets[g]) {
      longest = std::max(longest, c->series.size());
    }
    for (std::size_t idx = 0; idx < longest; ++idx) {
      GroupSeriesPoint p;
      RunningStats t_s, f_s, fair_s;
      for (const CellResult* c : buckets[g]) {
        if (idx >= c->series.size()) continue;
        const metrics::SeriesSample& sample = c->series[idx];
        if (p.repeats == 0) p.hour = sample.hour;
        ++p.repeats;
        t_s.add(sample.t_ratio);
        f_s.add(sample.f_ratio);
        fair_s.add(sample.fairness);
      }
      p.t_ratio_mean = t_s.mean();
      p.f_ratio_mean = f_s.mean();
      p.fairness_mean = fair_s.count() > 0 ? fair_s.mean() : 1.0;
      s.series.push_back(p);
    }
    report.groups.push_back(std::move(s));
  }
  return report;
}

bool write_merged_report(const std::string& path, const SweepSpec& spec,
                         const MergedReport& report) {
  const SweepSpec norm = spec.normalized();
  std::string out = "{\n  \"bench\": \"sweep\",\n";
  char buf[768];
  // BENCH-schema header.  nodes/hours let bench_compare verify two merged
  // reports describe comparable runs; nodes is 0 because the grid spans
  // several populations (the spec string carries the real axes).
  std::snprintf(buf, sizeof(buf),
                "  \"nodes\": 0,\n  \"hours\": %.3f,\n  \"seed\": %llu,\n"
                "  \"full\": false,\n",
                norm.hours, static_cast<unsigned long long>(norm.base_seed));
  out += buf;
  out += "  \"spec\": \"" + json_mini::escape(norm.describe()) + "\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"spec_fingerprint\": \"%016llx\",\n"
                "  \"shards_total\": %zu,\n  \"cells\": %zu,\n",
                static_cast<unsigned long long>(report.spec_fingerprint),
                report.shards_total, report.cells.size());
  out += buf;
  out += "  \"experiments\": [";
  for (std::size_t i = 0; i < report.groups.size(); ++i) {
    const GroupStats& s = report.groups[i];
    // Zeroed wall/rate fields: deterministic bytes, schema-compatible with
    // bench_compare (which treats a 0 baseline rate as ratio 1.0).
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    { \"name\": \"%s\", \"wall_seconds\": 0,\n"
        "      \"events\": %llu, \"events_per_sec\": 0,\n"
        "      \"messages\": %llu, \"messages_per_sec\": 0,\n"
        "      \"repeats\": %zu,\n"
        "      \"t_ratio_mean\": %.9g, \"t_ratio_median\": %.9g, "
        "\"t_ratio_ci95\": %.9g,\n"
        "      \"f_ratio_mean\": %.9g, \"f_ratio_median\": %.9g, "
        "\"f_ratio_ci95\": %.9g,\n"
        "      \"fairness_mean\": %.9g, \"fairness_ci95\": %.9g,\n"
        "      \"msgs_per_node_mean\": %.9g, "
        "\"avg_query_delay_s_mean\": %.9g,\n"
        "      \"generated\": %llu, \"finished\": %llu, \"failed\": %llu,\n"
        "      \"messages_partitioned\": %llu,\n"
        "      \"stale_dead_provider\": %llu, \"stale_misplaced\": %llu,\n"
        "      \"slot_span_ratio\": %.9g,\n",
        i > 0 ? "," : "", json_mini::escape(s.group).c_str(),
        static_cast<unsigned long long>(s.events),
        static_cast<unsigned long long>(s.messages), s.repeats, s.t_ratio_mean,
        s.t_ratio_median, s.t_ratio_ci95, s.f_ratio_mean, s.f_ratio_median,
        s.f_ratio_ci95, s.fairness_mean, s.fairness_ci95, s.msgs_per_node_mean,
        s.avg_query_delay_s_mean, static_cast<unsigned long long>(s.generated),
        static_cast<unsigned long long>(s.finished),
        static_cast<unsigned long long>(s.failed),
        static_cast<unsigned long long>(s.messages_partitioned),
        static_cast<unsigned long long>(s.stale_dead_provider),
        static_cast<unsigned long long>(s.stale_misplaced),
        s.slot_span_ratio_max);
    out += buf;
    // Per-group tail latency, bench-schema-shaped ("latency" sub-object as
    // in BENCH_*.json) plus the cross-repeat p99 CI.  compare_core's
    // bounded exact-key parser skips unknown keys, so older tooling reads
    // this report unchanged.
    const auto latency_json = [&buf](const char* key,
                                     const metrics::LatencyHistogram& h,
                                     double p99_ci, const char* trailer) {
      std::snprintf(buf, sizeof(buf),
                    "\"%s\": { \"n\": %llu, \"mean_s\": %.9g, "
                    "\"p50_s\": %.9g, \"p95_s\": %.9g, \"p99_s\": %.9g, "
                    "\"p999_s\": %.9g, \"p99_ci95\": %.9g }%s",
                    key, static_cast<unsigned long long>(h.total()),
                    h.mean_s(), h.percentile_s(50.0), h.percentile_s(95.0),
                    h.percentile_s(99.0), h.percentile_s(99.9), p99_ci,
                    trailer);
      return buf;
    };
    out += "      \"latency\": { ";
    out += latency_json("first_result", s.latency_first_result,
                        s.latency_first_p99_ci95, ", ");
    out += latency_json("finish", s.latency_finish, s.latency_finish_p99_ci95,
                        " },\n");
    // Per-group registry metrics (mean over repeats), {"k","v"}-encoded
    // like the shard files; before "series" for the same parser-bounding
    // reason.
    out += "      \"metrics\": [";
    for (std::size_t m = 0; m < s.metrics_mean.size(); ++m) {
      std::snprintf(buf, sizeof(buf),
                    "%s\n        { \"k\": \"%s\", \"v\": %.9g }",
                    m > 0 ? "," : "",
                    json_mini::escape(s.metrics_mean[m].name).c_str(),
                    s.metrics_mean[m].value);
      out += buf;
    }
    out += s.metrics_mean.empty() ? "],\n" : " ],\n";
    out += "      \"series\": [";
    // Figure curve, after every scalar: the bounded first-match parsers
    // (merge round-trip, compare_core) must hit the scalar first when a
    // key name recurs inside the samples.
    for (std::size_t p = 0; p < s.series.size(); ++p) {
      const GroupSeriesPoint& pt = s.series[p];
      std::snprintf(buf, sizeof(buf),
                    "%s\n        { \"hour\": %.17g, \"repeats\": %zu,"
                    " \"t_ratio\": %.9g, \"f_ratio\": %.9g,"
                    " \"fairness\": %.9g }",
                    p > 0 ? "," : "", pt.hour, pt.repeats, pt.t_ratio_mean,
                    pt.f_ratio_mean, pt.fairness_mean);
      out += buf;
    }
    out += s.series.empty() ? "] }" : " ] }";
  }
  out += "\n  ]\n}\n";
  return write_atomic(path, out);
}

namespace {

/// Column labels for the figure tables: drop the '/'-separated key
/// components every group shares (the constant axes of the grid), keep
/// the ones that distinguish the columns.  "sid-can/l0.5/n384/none/c0/base"
/// vs "newscast/l0.5/n384/none/c0/base" → "sid-can" vs "newscast".
std::vector<std::string> column_labels(const MergedReport& report) {
  std::vector<std::vector<std::string>> parts;
  for (const GroupStats& g : report.groups) {
    std::vector<std::string> p;
    std::size_t start = 0;
    while (start <= g.group.size()) {
      const std::size_t slash = g.group.find('/', start);
      const std::size_t end = slash == std::string::npos ? g.group.size()
                                                         : slash;
      p.push_back(g.group.substr(start, end - start));
      if (slash == std::string::npos) break;
      start = slash + 1;
    }
    parts.push_back(std::move(p));
  }
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    std::string label;
    for (std::size_t c = 0; c < parts[i].size(); ++c) {
      bool constant = true;
      for (const auto& other : parts) {
        if (c >= other.size() || other[c] != parts[i][c]) {
          constant = false;
          break;
        }
      }
      if (constant && parts.size() > 1) continue;
      if (!label.empty()) label += '/';
      label += parts[i][c];
    }
    // Every component constant (single group, or duplicates): fall back to
    // the full key so the column is still named.
    if (label.empty()) label = report.groups[i].group;
    labels.push_back(std::move(label));
  }
  return labels;
}

}  // namespace

void print_series_tables(const MergedReport& report) {
  std::size_t rows = 0;
  for (const GroupStats& g : report.groups) {
    rows = std::max(rows, g.series.size());
  }
  if (rows == 0) {
    std::printf("\n(no hour-by-hour series in this sweep's cells)\n");
    return;
  }
  const std::vector<std::string> labels = column_labels(report);
  struct Metric {
    const char* title;
    double GroupSeriesPoint::* value;
  };
  const Metric metrics[] = {{"T-Ratio", &GroupSeriesPoint::t_ratio_mean},
                            {"F-Ratio", &GroupSeriesPoint::f_ratio_mean},
                            {"fairness", &GroupSeriesPoint::fairness_mean}};
  for (const Metric& m : metrics) {
    std::printf("\n## %s by simulated hour\n%6s", m.title, "hour");
    for (const std::string& label : labels) {
      std::printf(" %14s", label.c_str());
    }
    std::printf("\n");
    for (std::size_t row = 0; row < rows; ++row) {
      // The hour label comes from the first group that sampled this index
      // (all groups of a sweep share the sampling cadence).
      double hour = 0.0;
      for (const GroupStats& g : report.groups) {
        if (row < g.series.size()) {
          hour = g.series[row].hour;
          break;
        }
      }
      std::printf("%6.2f", hour);
      for (const GroupStats& g : report.groups) {
        if (row >= g.series.size()) {
          // Missing sample: marked, never padded with 0.0 — a padded zero
          // is indistinguishable from a protocol genuinely at the floor.
          std::printf(" %14s", "-");
          continue;
        }
        const GroupSeriesPoint& pt = g.series[row];
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%.3f%s",
                      pt.*(m.value),
                      pt.repeats < g.repeats ? "*" : "");
        std::printf(" %14s", cell);
      }
      std::printf("\n");
    }
  }
  std::printf("\n(\"-\" = no sample at that hour; \"*\" = only some repeats "
              "reached it)\n");
}

void print_merged_table(const MergedReport& report) {
  std::printf("\n## merged sweep (%zu cells, %zu groups, %zu shards)\n",
              report.cells.size(), report.groups.size(), report.shards_total);
  std::printf("%-34s %4s %18s %18s %9s %12s %12s\n", "config", "rep",
              "T-Ratio (±95%)", "F-Ratio (±95%)", "fairness", "msgs/node",
              "stale-debt");
  for (const GroupStats& s : report.groups) {
    std::printf("%-34s %4zu %9.3f ±%6.3f %9.3f ±%6.3f %9.3f %12.0f %12llu\n",
                s.group.c_str(), s.repeats, s.t_ratio_mean, s.t_ratio_ci95,
                s.f_ratio_mean, s.f_ratio_ci95, s.fairness_mean,
                s.msgs_per_node_mean,
                static_cast<unsigned long long>(s.stale_dead_provider +
                                                s.stale_misplaced));
  }
  bool any_latency = false;
  for (const GroupStats& s : report.groups) {
    if (s.latency_first_result.total() > 0 || s.latency_finish.total() > 0) {
      any_latency = true;
      break;
    }
  }
  if (!any_latency) return;
  std::printf("\n## per-query latency, seconds "
              "(first = submit to first qualified result; "
              "finish = submit to completion)\n");
  std::printf("%-34s %9s %8s %8s %8s %10s %8s %8s\n", "config", "queries",
              "fst p50", "fst p99", "±p99CI", "fin p50", "fin p99",
              "fin p999");
  for (const GroupStats& s : report.groups) {
    std::printf("%-34s %9llu %8.3f %8.3f %8.3f %10.3f %8.3f %8.3f\n",
                s.group.c_str(),
                static_cast<unsigned long long>(s.latency_first_result.total()),
                s.latency_first_result.percentile_s(50.0),
                s.latency_first_result.percentile_s(99.0),
                s.latency_first_p99_ci95,
                s.latency_finish.percentile_s(50.0),
                s.latency_finish.percentile_s(99.0),
                s.latency_finish.percentile_s(99.9));
  }
}

}  // namespace soc::sweep
