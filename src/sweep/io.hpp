// Small file-IO helpers shared by the sweep subsystem (shard results,
// manifest, merged report).
#pragma once

#include <optional>
#include <string>

namespace soc::sweep {

/// Write `content` to `path` via tmp-file + rename, so readers (and a
/// resuming orchestrator) only ever see absent or complete files — a
/// worker killed mid-write leaves no torn result.  Returns false on I/O
/// error.
bool write_atomic(const std::string& path, const std::string& content);

/// Whole file as a string; nullopt when unreadable.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

}  // namespace soc::sweep
