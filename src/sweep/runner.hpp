// Shard execution: run one shard's experiments (worker), and the local
// orchestrator that spawns N worker processes, tracks completion through
// the manifest + per-shard result files, and resumes after a crash by
// re-running only the shards without a valid result.
//
// Determinism contract: a CellResult's metric fields depend only on the
// cell's ExperimentConfig (run_experiment is deterministic in its config,
// and every cell's seed is content-derived) — wall_seconds is the single
// nondeterministic field, and the merger keeps it out of the merged
// report.  Hence the same spec merges byte-identically whether its shards
// ran in this process, in 1 worker, or in 16.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/metrics/latency_histogram.hpp"
#include "src/metrics/task_metrics.hpp"
#include "src/obs/registry.hpp"
#include "src/sweep/shard.hpp"

namespace soc::sweep {

/// Deterministic per-experiment results (plus wall-clock, which the merged
/// report excludes).
struct CellResult {
  std::string key;
  std::string group;
  std::uint64_t seed = 0;
  double t_ratio = 0.0;
  double f_ratio = 0.0;
  double fairness = 1.0;
  double msgs_per_node = 0.0;
  double avg_query_delay_s = 0.0;
  std::uint64_t generated = 0;
  std::uint64_t finished = 0;
  std::uint64_t failed = 0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t messages_partitioned = 0;
  std::uint64_t stale_dead_provider = 0;
  std::uint64_t stale_misplaced = 0;
  /// Worst per-node map density at run end (deterministic; ≥ 1.0).
  double slot_span_ratio = 1.0;
  double wall_seconds = 0.0;  ///< nondeterministic; never merged
  /// Hour-by-hour samples (the paper figures' plotted shape), carried
  /// through the shard files so the merged report can render Figs. 4–8
  /// without re-running anything.
  std::vector<metrics::SeriesSample> series;
  /// Per-query latency histograms (submit→first qualified result,
  /// submit→finish), carried through shard files in the sparse
  /// LatencyHistogram::encode() form so the merger can fold repeats
  /// bucket-wise (exact integer sums — merge order never matters).
  /// Absent in pre-serving shard files; parsed as empty.
  metrics::LatencyHistogram latency_first_result;
  metrics::LatencyHistogram latency_finish;
  /// Registry snapshot, deterministic samples only (wall-clock and RSS
  /// gauges stay out — the merged report must be byte-identical however
  /// the shards ran).  Stored as {"k","v"} pairs in the shard file so a
  /// hostile metric name lives inside an escaped string value and can
  /// never alias a schema key under the needle parser.  Absent in
  /// pre-observability shard files; parsed as empty.
  std::vector<obs::MetricSample> metrics;
};

struct ShardResult {
  std::uint64_t spec_fingerprint = 0;
  std::size_t shard_id = 0;
  std::size_t shards_total = 0;
  std::vector<CellResult> cells;  ///< in shard cell order (sorted by key)
};

/// Execute every experiment of one shard in-process, in shard cell order.
[[nodiscard]] ShardResult run_shard(const Shard& shard,
                                    std::uint64_t spec_fingerprint,
                                    std::size_t shards_total);

/// Atomically write <dir>/shard-<id>.json.
bool write_shard_result(const std::string& dir, const ShardResult& result);

/// Parse a shard result file; nullopt when absent or malformed.
[[nodiscard]] std::optional<ShardResult> read_shard_result(
    const std::string& path);

/// Does a parsed result match the sweep fingerprint + shard geometry +
/// expected cell count/keys?  The validity half of shard_complete, split
/// out so callers that need the parsed cells (the merger) validate the
/// same parse they consume instead of reading the file twice.
[[nodiscard]] bool shard_result_valid(const ShardResult& result,
                                      const Shard& shard,
                                      std::uint64_t spec_fingerprint,
                                      std::size_t shards_total);

/// A shard is complete iff its result file exists, parses, and passes
/// shard_result_valid.
[[nodiscard]] bool shard_complete(const std::string& dir, const Shard& shard,
                                  std::uint64_t spec_fingerprint,
                                  std::size_t shards_total);

/// Shard ids still lacking a valid result file — the resume set.
[[nodiscard]] std::vector<std::size_t> pending_shards(
    const std::string& dir, const std::vector<Shard>& shards,
    std::uint64_t spec_fingerprint);

struct OrchestrateOptions {
  std::string dir;            ///< result/manifest directory (must exist)
  std::size_t workers = 2;    ///< concurrent worker processes
  std::string worker_binary;  ///< sweep_run path; empty = run in-process
};

struct OrchestrateOutcome {
  std::size_t ran = 0;      ///< shards executed this invocation
  std::size_t skipped = 0;  ///< shards already complete (resume)
  std::size_t failed = 0;   ///< shards whose worker died or wrote garbage
  [[nodiscard]] bool ok() const { return failed == 0; }
};

/// Run the sweep: partition, skip complete shards, execute the rest.
/// With a worker_binary, pending shards fan out over `workers` concurrent
/// worker processes (`sweep_run --mode=worker --shard=K ...`); otherwise
/// they run sequentially in-process — the single-process reference path
/// the determinism tests compare against.  Empty shards are completed
/// inline (their result file is written directly; no process spawn).
/// The manifest is rewritten atomically after every state change, and an
/// orchestrator killed at any point can simply be re-run: complete shards
/// are recognized by their result files and skipped.  Refuses to reuse a
/// directory whose manifest names a different sweep.
[[nodiscard]] std::optional<OrchestrateOutcome> orchestrate(
    const SweepSpec& spec, std::size_t shards_total,
    const OrchestrateOptions& options);

}  // namespace soc::sweep
