// LatencyHistogram invariants (src/metrics/latency_histogram.hpp): the
// fixed bucket layout, merge associativity/commutativity (the property
// that makes sharded percentiles exact), percentile edge cases, and the
// sparse text encoding the shard files carry.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <vector>

#include "src/metrics/latency_histogram.hpp"

namespace soc::metrics {
namespace {

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

TEST(LatencyHistogram, BucketLayoutIsExactBelow32us) {
  for (std::uint64_t us = 0; us < 32; ++us) {
    const std::size_t b = LatencyHistogram::bucket_index(us);
    EXPECT_EQ(b, us);
    EXPECT_EQ(LatencyHistogram::bucket_lo_us(b), us);
    EXPECT_EQ(LatencyHistogram::bucket_hi_us(b), us + 1);
  }
}

TEST(LatencyHistogram, BucketEdgesAreConsistentAcrossTheWholeRange) {
  // Every bucket's lo maps back to its own index, hi-1 stays inside, and
  // hi lands in the next bucket — including across the 32 µs boundary
  // where the layout switches from unit buckets to 16-way octaves.
  for (std::size_t b = 0; b + 1 < LatencyHistogram::kBucketCount; ++b) {
    const std::uint64_t lo = LatencyHistogram::bucket_lo_us(b);
    const std::uint64_t hi = LatencyHistogram::bucket_hi_us(b);
    ASSERT_LT(lo, hi);
    EXPECT_EQ(LatencyHistogram::bucket_index(lo), b);
    EXPECT_EQ(LatencyHistogram::bucket_index(hi - 1), b);
    EXPECT_EQ(LatencyHistogram::bucket_index(hi), b + 1);
  }
  // The last bucket absorbs everything up to uint64 max (the overflow
  // bucket of the acceptance checklist).
  const std::size_t last = LatencyHistogram::kBucketCount - 1;
  EXPECT_EQ(LatencyHistogram::bucket_index(kU64Max), last);
  EXPECT_EQ(LatencyHistogram::bucket_hi_us(last), kU64Max);
}

TEST(LatencyHistogram, PercentileEdgeCases) {
  LatencyHistogram h;
  // Empty: every percentile reports 0.
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.percentile_s(0.0), 0.0);
  EXPECT_EQ(h.percentile_s(50.0), 0.0);
  EXPECT_EQ(h.percentile_s(100.0), 0.0);
  EXPECT_EQ(h.mean_s(), 0.0);

  // Single sample: every percentile is that sample's bucket.
  h.record_us(10);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile_s(0.0), 10e-6);  // rank clamps up to 1
  EXPECT_DOUBLE_EQ(h.percentile_s(50.0), 10e-6);
  EXPECT_DOUBLE_EQ(h.percentile_s(99.9), 10e-6);
  EXPECT_DOUBLE_EQ(h.mean_s(), 10e-6);

  // All samples in one bucket: p50 == p999.
  LatencyHistogram one;
  for (int i = 0; i < 1000; ++i) one.record_us(7);
  EXPECT_DOUBLE_EQ(one.percentile_s(50.0), one.percentile_s(99.9));
  EXPECT_DOUBLE_EQ(one.percentile_s(50.0), 7e-6);

  // A sample in the overflow bucket is reported from there, not dropped.
  LatencyHistogram over;
  over.record_us(kU64Max);
  EXPECT_EQ(over.count(LatencyHistogram::kBucketCount - 1), 1u);
  EXPECT_DOUBLE_EQ(over.percentile_s(50.0),
                   static_cast<double>(kU64Max - 1) * 1e-6);
}

TEST(LatencyHistogram, PercentilesMatchSortedOracleAtBucketResolution) {
  std::mt19937_64 prng(42);
  std::vector<std::uint64_t> samples;
  LatencyHistogram h;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform over ~9 decades, the regime the octave layout targets.
    const double e = std::uniform_real_distribution<double>(0.0, 9.0)(prng);
    const auto us = static_cast<std::uint64_t>(std::pow(10.0, e));
    samples.push_back(us);
    h.record_us(us);
  }
  std::sort(samples.begin(), samples.end());
  for (const double p : {50.0, 95.0, 99.0, 99.9}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples.size())));
    const std::uint64_t exact = samples[rank - 1];
    // The histogram reports the top of the sample's bucket.
    const std::size_t b = LatencyHistogram::bucket_index(exact);
    EXPECT_DOUBLE_EQ(h.percentile_s(p),
                     static_cast<double>(LatencyHistogram::bucket_hi_us(b) - 1)
                         * 1e-6)
        << "p" << p;
  }
}

/// Record `n` deterministic pseudo-random samples into `h` (and optionally
/// a reference vector), seeded per-shard.
void fill(LatencyHistogram& h, std::uint64_t seed, int n) {
  std::mt19937_64 prng(seed);
  for (int i = 0; i < n; ++i) {
    const double e = std::uniform_real_distribution<double>(0.0, 8.0)(prng);
    h.record_us(static_cast<std::uint64_t>(std::pow(10.0, e)));
  }
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative) {
  LatencyHistogram a, b, c;
  fill(a, 1, 1000);
  fill(b, 2, 700);
  fill(c, 3, 1300);

  // (a+b)+c
  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ab_c = ab;
  ab_c.merge(c);
  // a+(b+c)
  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);
  // c+b+a
  LatencyHistogram cba = c;
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(ab_c.total(), a_bc.total());
  EXPECT_EQ(ab_c.sum_us(), a_bc.sum_us());
  EXPECT_EQ(cba.total(), a_bc.total());
  EXPECT_EQ(cba.sum_us(), a_bc.sum_us());
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    ASSERT_EQ(ab_c.count(i), a_bc.count(i)) << "bucket " << i;
    ASSERT_EQ(cba.count(i), a_bc.count(i)) << "bucket " << i;
  }
  // Hence identical percentiles — the sharded-merge exactness claim.
  for (const double p : {50.0, 99.0, 99.9}) {
    EXPECT_EQ(ab_c.percentile_s(p), cba.percentile_s(p));
  }
}

TEST(LatencyHistogram, NWayShardMergeEqualsSingleHistogram) {
  // One stream of samples split across 7 "workers" in round-robin, merged
  // in a scrambled order, must equal recording everything into one
  // histogram — the --mode=merge vs --mode=local equivalence in miniature.
  constexpr int kWorkers = 7;
  LatencyHistogram whole;
  LatencyHistogram shard[kWorkers];
  std::mt19937_64 prng(99);
  for (int i = 0; i < 10000; ++i) {
    const auto us = static_cast<std::uint64_t>(
        std::uniform_int_distribution<std::uint64_t>(0, 50'000'000)(prng));
    whole.record_us(us);
    shard[i % kWorkers].record_us(us);
  }
  LatencyHistogram merged;
  for (const int w : {3, 0, 6, 1, 5, 2, 4}) merged.merge(shard[w]);
  EXPECT_EQ(merged.total(), whole.total());
  EXPECT_EQ(merged.sum_us(), whole.sum_us());
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    ASSERT_EQ(merged.count(i), whole.count(i)) << "bucket " << i;
  }
  EXPECT_EQ(merged.percentile_s(99.9), whole.percentile_s(99.9));
}

TEST(LatencyHistogram, EncodeRoundTripsExactly) {
  LatencyHistogram h;
  fill(h, 7, 2500);
  h.record_us(0);
  h.record_us(kU64Max);

  LatencyHistogram back;
  ASSERT_TRUE(back.merge_encoded(h.encode()));
  EXPECT_EQ(back.total(), h.total());
  EXPECT_EQ(back.sum_us(), h.sum_us());
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    ASSERT_EQ(back.count(i), h.count(i)) << "bucket " << i;
  }

  // Empty encodes to "" and folds as a no-op.
  LatencyHistogram empty;
  EXPECT_EQ(empty.encode(), "");
  ASSERT_TRUE(back.merge_encoded(""));
  EXPECT_EQ(back.total(), h.total());
}

TEST(LatencyHistogram, MalformedEncodingsAreRejectedWithoutMutation) {
  LatencyHistogram h;
  h.record_us(5);
  const std::uint64_t before_total = h.total();
  const std::uint64_t before_sum = h.sum_us();
  for (const char* bad : {
           "12",            // no ';' separator
           "10;",           // sum with no buckets
           ";1:2",          // missing sum
           "10;1",          // bucket without count
           "10;1:",         // dangling ':'
           "10;999999:1",   // bucket index out of range
           "10;1:2,",       // trailing ','
           "10;a:2",        // non-numeric
           "10;1:2;3:4",    // second ';'
       }) {
    EXPECT_FALSE(h.merge_encoded(bad)) << bad;
    EXPECT_EQ(h.total(), before_total) << bad << " mutated on failure";
    EXPECT_EQ(h.sum_us(), before_sum) << bad;
  }
}

}  // namespace
}  // namespace soc::metrics
