// Serving-workload layer (src/workload/serving.hpp + the Experiment
// wiring): preset-name parsing, the diurnal rate curve, Zipf draw
// determinism and skew, closed-loop client structure, and whole-run
// determinism for every serving mode.
#include <gtest/gtest.h>

#include <map>

#include "src/core/soc.hpp"

namespace soc {
namespace {

using workload::ServingConfig;
using workload::serving_by_name;

TEST(ServingConfig, DefaultIsFullyDisabled) {
  const ServingConfig c;
  EXPECT_FALSE(c.closed_loop());
  EXPECT_FALSE(c.skewed());
  EXPECT_FALSE(c.diurnal());
  EXPECT_FALSE(c.enabled());
}

TEST(ServingByName, ParsesPresetsAndCompositions) {
  for (const char* off : {"off", "open"}) {
    const auto c = serving_by_name(off);
    ASSERT_TRUE(c.has_value()) << off;
    EXPECT_FALSE(c->enabled()) << off;
  }
  const auto closed = serving_by_name("closed");
  ASSERT_TRUE(closed.has_value());
  EXPECT_TRUE(closed->closed_loop());
  EXPECT_FALSE(closed->skewed());

  const auto zipf = serving_by_name("zipf");
  ASSERT_TRUE(zipf.has_value());
  EXPECT_TRUE(zipf->skewed());
  EXPECT_FALSE(zipf->closed_loop());

  const auto both = serving_by_name("closed+zipf");
  ASSERT_TRUE(both.has_value());
  EXPECT_TRUE(both->closed_loop());
  EXPECT_TRUE(both->skewed());
  EXPECT_FALSE(both->diurnal());

  const auto all = serving_by_name("closed+zipf+diurnal");
  ASSERT_TRUE(all.has_value());
  EXPECT_TRUE(all->enabled());
  EXPECT_TRUE(all->diurnal());

  EXPECT_FALSE(serving_by_name("").has_value());
  EXPECT_FALSE(serving_by_name("bogus").has_value());
  EXPECT_FALSE(serving_by_name("closed+bogus").has_value());
  EXPECT_FALSE(serving_by_name("closed+").has_value());
}

TEST(DiurnalFactor, DisabledIsExactlyOne) {
  const ServingConfig off;
  EXPECT_EQ(workload::diurnal_factor(off, 0), 1.0);
  EXPECT_EQ(workload::diurnal_factor(off, seconds(12 * 3600.0)), 1.0);
}

TEST(DiurnalFactor, FollowsTheSineAndRespectsTheFloor) {
  ServingConfig c;
  c.diurnal_amplitude = 0.6;
  c.diurnal_period_hours = 24.0;
  // t=0: sin(0)=0 → factor 1.  Quarter period: sin(π/2)=1 → 1.6.
  // Three quarters: sin(3π/2)=-1 → 0.4.
  EXPECT_NEAR(workload::diurnal_factor(c, 0), 1.0, 1e-12);
  EXPECT_NEAR(workload::diurnal_factor(c, seconds(6 * 3600.0)), 1.6, 1e-9);
  EXPECT_NEAR(workload::diurnal_factor(c, seconds(18 * 3600.0)), 0.4, 1e-9);
  // Amplitude > 1 would go negative at the trough; the floor keeps the
  // rate multiplier positive (a zero/negative exponential mean is UB).
  c.diurnal_amplitude = 2.0;
  EXPECT_EQ(workload::diurnal_factor(c, seconds(18 * 3600.0)), 0.05);
  // Phase shifts the curve: phase 0.25 moves the peak to t=0... period/4
  // earlier, i.e. t=0 now sits at the trough-to-peak crossing.
  c.diurnal_amplitude = 0.6;
  c.diurnal_phase = 0.25;
  EXPECT_NEAR(workload::diurnal_factor(c, seconds(12 * 3600.0)), 1.6, 1e-9);
}

TEST(ZipfGenerator, DrawsAreDeterministicAndSkewed) {
  const workload::ZipfGenerator zipf(64, 1.0);
  EXPECT_EQ(zipf.keys(), 64u);
  Rng a(123), b(123);
  std::map<std::size_t, std::size_t> freq;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t k = zipf.draw(a);
    ASSERT_EQ(k, zipf.draw(b)) << "same seed, same draws";
    ASSERT_LT(k, 64u);
    ++freq[k];
  }
  // Zipf(1): P(0) ≈ 1/H_64 ≈ 0.21, monotone decreasing.  Loose bounds —
  // this is a sanity check on the CDF inversion, not a statistics test.
  EXPECT_GT(freq[0], freq[5]);
  EXPECT_GT(freq[0], 20000 / 8);
  EXPECT_GT(freq[63], 0u) << "tail keys still reachable";
}

core::ExperimentConfig serving_config(const char* preset) {
  core::ExperimentConfig c;
  c.nodes = 32;
  c.duration = seconds(0.5 * 3600.0);
  c.sample_step = seconds(600);
  c.seed = 77;
  const auto serving = serving_by_name(preset);
  EXPECT_TRUE(serving.has_value());
  c.serving = *serving;
  return c;
}

TEST(ServingExperiment, EveryModeRunsDeterministically) {
  for (const char* preset :
       {"open", "closed", "zipf", "diurnal", "closed+zipf+diurnal"}) {
    const core::ExperimentConfig config = serving_config(preset);
    const core::ExperimentResults a = core::run_experiment(config);
    const core::ExperimentResults b = core::run_experiment(config);
    EXPECT_EQ(a.generated, b.generated) << preset;
    EXPECT_EQ(a.finished, b.finished) << preset;
    EXPECT_EQ(a.failed, b.failed) << preset;
    EXPECT_EQ(a.events_executed, b.events_executed) << preset;
    EXPECT_EQ(a.total_messages, b.total_messages) << preset;
    EXPECT_EQ(a.t_ratio, b.t_ratio) << preset;
    EXPECT_EQ(a.fairness, b.fairness) << preset;
    EXPECT_EQ(a.latency_first_result.total(), b.latency_first_result.total())
        << preset;
    EXPECT_EQ(a.latency_first_result.sum_us(), b.latency_first_result.sum_us())
        << preset;
    EXPECT_EQ(a.latency_finish.total(), b.latency_finish.total()) << preset;
    EXPECT_EQ(a.latency_finish.sum_us(), b.latency_finish.sum_us()) << preset;
    EXPECT_GT(a.generated, 0u) << preset;
  }
}

TEST(ServingExperiment, LatencyHistogramsPopulateInTheDefaultWorkload) {
  // Latency recording is passive and always on — the open-loop default
  // records first-result and finish latencies too.
  core::ExperimentConfig config = serving_config("open");
  const core::ExperimentResults r = core::run_experiment(config);
  ASSERT_GT(r.finished, 0u);
  EXPECT_EQ(r.latency_finish.total(), r.finished)
      << "one finish latency per finished task";
  EXPECT_GT(r.latency_first_result.total(), 0u);
  EXPECT_GT(r.latency_finish.percentile_s(99.0), 0.0);
}

TEST(ServingExperiment, ClosedLoopBoundsInFlightPerClient) {
  // Each closed-loop client holds at most one task in flight and thinks
  // (exponential) before its first submission.  With a think time far
  // beyond the horizon, each client submits at most once — the generated
  // count is bounded by nodes × clients (the open-loop Poisson stream has
  // no such cap).
  core::ExperimentConfig config = serving_config("closed");
  config.serving.clients_per_node = 2;
  config.serving.think_time_s = to_seconds(config.duration) * 1000.0;
  const core::ExperimentResults r = core::run_experiment(config);
  EXPECT_LE(r.generated, config.nodes * config.serving.clients_per_node);

  // A short think time re-issues on completion: strictly more traffic than
  // one round per client.
  config.serving.think_time_s = 1.0;
  const core::ExperimentResults busy = core::run_experiment(config);
  EXPECT_GT(busy.generated,
            static_cast<std::uint64_t>(config.nodes) *
                config.serving.clients_per_node);
}

TEST(ServingExperiment, ZipfSkewChangesTheWorkloadTrajectory) {
  const core::ExperimentResults off =
      core::run_experiment(serving_config("open"));
  const core::ExperimentResults zipf =
      core::run_experiment(serving_config("zipf"));
  // Same seed, same arrival process — but demand vectors are redrawn from
  // the hot-key profile table, so the execution trajectory must diverge.
  EXPECT_TRUE(off.events_executed != zipf.events_executed ||
              off.total_messages != zipf.total_messages ||
              off.latency_finish.sum_us() != zipf.latency_finish.sum_us());
}

}  // namespace
}  // namespace soc
