// Tests for the proportional-share scheduler: Eq. (1) allocation, the
// admission guarantee of Inequality (2), VM overhead, and piecewise
// progress integration — including the worked example from §II of the
// paper.
#include <gtest/gtest.h>

#include <cmath>

#include "src/psm/scheduler.hpp"
#include "src/psm/task.hpp"
#include "src/sim/simulator.hpp"

namespace soc::psm {
namespace {

/// Overhead-free scheduler for arithmetic-exact tests.
VmOverhead no_overhead() {
  VmOverhead o;
  o.cpu_fraction = o.io_fraction = o.net_fraction = 0.0;
  o.memory_mb = 0.0;
  return o;
}

TaskSpec make_task(std::uint32_t seq, ResourceVector e,
                   std::array<double, kRateDims> workload,
                   NodeId origin = NodeId(0)) {
  TaskSpec t;
  t.id = TaskId{origin, seq};
  t.expectation = std::move(e);
  t.workload = workload;
  return t;
}

TEST(PsmScheduler, PaperSectionIIExample) {
  // Node p_r: capacity {13.5 GFlops, 1200 M}; three tasks expecting
  // {2,100}, {3,200}, {4,300} must receive {3,200}, {4.5,400}, {6,600}.
  // Our vectors are 5-dimensional; the example maps CPU→dim0, memory→dim4.
  sim::Simulator sim;
  PsmScheduler sched(sim, ResourceVector{13.5, 100.0, 100.0, 100.0, 1200.0},
                     no_overhead());
  const auto t1 = make_task(1, ResourceVector{2, 1, 1, 1, 100}, {1e5, 1, 1});
  const auto t2 = make_task(2, ResourceVector{3, 1, 1, 1, 200}, {1e5, 1, 1});
  const auto t3 = make_task(3, ResourceVector{4, 1, 1, 1, 300}, {1e5, 1, 1});
  ASSERT_TRUE(sched.admit(t1));
  ASSERT_TRUE(sched.admit(t2));
  ASSERT_TRUE(sched.admit(t3));

  EXPECT_NEAR(sched.allocation_of(t1.id)[kCpu], 3.0, 1e-9);
  EXPECT_NEAR(sched.allocation_of(t2.id)[kCpu], 4.5, 1e-9);
  EXPECT_NEAR(sched.allocation_of(t3.id)[kCpu], 6.0, 1e-9);
  EXPECT_NEAR(sched.allocation_of(t1.id)[kMemory], 200.0, 1e-9);
  EXPECT_NEAR(sched.allocation_of(t2.id)[kMemory], 400.0, 1e-9);
  EXPECT_NEAR(sched.allocation_of(t3.id)[kMemory], 600.0, 1e-9);
}

TEST(PsmScheduler, AllocationAlwaysDominatesExpectation) {
  sim::Simulator sim;
  PsmScheduler sched(sim, ResourceVector{10, 10, 10, 10, 1000},
                     no_overhead());
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto t = make_task(i, ResourceVector{2, 2, 2, 2, 200}, {100, 100, 100});
    ASSERT_TRUE(sched.admit(t));
    const ResourceVector r = sched.allocation_of(t.id);
    EXPECT_TRUE(r.dominates(t.expectation));
  }
  // Remaining availability is exactly {2,2,2,2,200}: an equal demand still
  // fits (Inequality (2) is non-strict) but anything larger is rejected.
  EXPECT_TRUE(sched.can_admit(ResourceVector{2, 2, 2, 2, 200}));
  EXPECT_FALSE(sched.can_admit(ResourceVector{2, 2, 2.5, 2, 200}));
}

TEST(PsmScheduler, AdmissionRejectsSingleDimensionShortfall) {
  sim::Simulator sim;
  PsmScheduler sched(sim, ResourceVector{10, 10, 10, 10, 1000},
                     no_overhead());
  ASSERT_TRUE(sched.admit(
      make_task(1, ResourceVector{1, 1, 9.5, 1, 100}, {10, 10, 10})));
  // Plenty of CPU left, but network is nearly exhausted.
  EXPECT_FALSE(sched.can_admit(ResourceVector{1, 1, 1, 1, 100}));
  EXPECT_TRUE(sched.can_admit(ResourceVector{1, 1, 0.5, 1, 100}));
}

TEST(PsmScheduler, SoleTaskGetsFullCapacityAndFinishesEarly) {
  sim::Simulator sim;
  PsmScheduler sched(sim, ResourceVector{10, 10, 10, 10, 1000},
                     no_overhead());
  CompletionInfo done{};
  sched.set_finish_callback([&](const CompletionInfo& c) { done = c; });
  // Expects rate 2 → would take 100 s; sole occupancy gives rate 10 → 20 s.
  const auto t = make_task(1, ResourceVector{2, 2, 2, 1, 100}, {200, 0, 0});
  ASSERT_TRUE(sched.admit(t));
  sim.run_until(seconds(3600));
  EXPECT_EQ(done.id, t.id);
  EXPECT_NEAR(done.exec_seconds(), 20.0, 0.1);
}

TEST(PsmScheduler, ContendedTasksSlowToProportionalShare) {
  sim::Simulator sim;
  PsmScheduler sched(sim, ResourceVector{10, 10, 10, 10, 1000},
                     no_overhead());
  int finished = 0;
  SimTime last_finish = 0;
  sched.set_finish_callback([&](const CompletionInfo& c) {
    ++finished;
    last_finish = c.finished_at;
  });
  // Two identical tasks, each expecting half the node: they share equally
  // (rate 5 each) and finish together at t = 200/5 = 40 s.
  for (std::uint32_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(sched.admit(
        make_task(i, ResourceVector{5, 1, 1, 1, 100}, {200, 0, 0})));
  }
  sim.run_until(seconds(3600));
  EXPECT_EQ(finished, 2);
  EXPECT_NEAR(to_seconds(last_finish), 40.0, 0.1);
}

TEST(PsmScheduler, RatesRecomputeWhenTaskCompletes) {
  sim::Simulator sim;
  PsmScheduler sched(sim, ResourceVector{12, 10, 10, 10, 1000},
                     no_overhead());
  std::vector<std::pair<TaskId, double>> finishes;
  sched.set_finish_callback([&](const CompletionInfo& c) {
    finishes.emplace_back(c.id, to_seconds(c.finished_at));
  });
  // Short task: expectation 6, workload 60.  Long task: expectation 6,
  // workload 360.  Phase 1: both run at rate 6 (l = 12 = c).  Short ends at
  // t = 10 with long at 300 remaining; long then runs alone at rate 12 and
  // ends at t = 10 + 300/12 = 35.
  ASSERT_TRUE(sched.admit(
      make_task(1, ResourceVector{6, 1, 1, 1, 100}, {60, 0, 0})));
  ASSERT_TRUE(sched.admit(
      make_task(2, ResourceVector{6, 1, 1, 1, 100}, {360, 0, 0})));
  sim.run_until(seconds(3600));
  ASSERT_EQ(finishes.size(), 2u);
  EXPECT_NEAR(finishes[0].second, 10.0, 0.05);
  EXPECT_NEAR(finishes[1].second, 35.0, 0.05);
}

TEST(PsmScheduler, MultiDimensionalFinishIsMaxOverRateDims) {
  sim::Simulator sim;
  PsmScheduler sched(sim, ResourceVector{10, 10, 10, 10, 1000},
                     no_overhead());
  double exec_s = 0;
  sched.set_finish_callback(
      [&](const CompletionInfo& c) { exec_s = c.exec_seconds(); });
  // Sole task: rates = full capacity {10,10,10}.  Workloads {100, 300, 50}
  // → finish at max(10, 30, 5) = 30 s.
  ASSERT_TRUE(sched.admit(
      make_task(1, ResourceVector{1, 1, 1, 1, 100}, {100, 300, 50})));
  sim.run_until(seconds(3600));
  EXPECT_NEAR(exec_s, 30.0, 0.1);
}

TEST(PsmScheduler, VmOverheadShrinksAvailability) {
  sim::Simulator sim;
  PsmScheduler sched(sim, ResourceVector{100, 100, 100, 100, 1000});
  const ResourceVector a0 = sched.availability();
  EXPECT_DOUBLE_EQ(a0[kCpu], 100.0);
  ASSERT_TRUE(sched.admit(
      make_task(1, ResourceVector{10, 10, 10, 10, 100}, {100, 0, 0})));
  const ResourceVector a1 = sched.availability();
  // One VM: CPU loses 5% of capacity plus the task's expectation.
  EXPECT_NEAR(a1[kCpu], 100.0 * 0.95 - 10.0, 1e-9);
  EXPECT_NEAR(a1[kIo], 100.0 * 0.90 - 10.0, 1e-9);
  EXPECT_NEAR(a1[kNet], 100.0 * 0.95 - 10.0, 1e-9);
  EXPECT_NEAR(a1[kMemory], 1000.0 - 5.0 - 100.0, 1e-9);
  // Disk has no per-VM overhead.
  EXPECT_NEAR(a1[kDisk], 100.0 - 10.0, 1e-9);
}

TEST(PsmScheduler, CanAdmitAccountsForNewVmOverhead) {
  sim::Simulator sim;
  PsmScheduler sched(sim, ResourceVector{100, 100, 100, 100, 1000});
  // Availability with zero VMs is 100, but admitting one VM costs 5% CPU:
  // a request of 96 must be rejected, 94 accepted.
  EXPECT_FALSE(sched.can_admit(ResourceVector{96, 1, 1, 1, 10}));
  EXPECT_TRUE(sched.can_admit(ResourceVector{94, 1, 1, 1, 10}));
}

TEST(PsmScheduler, AbortRemovesTaskWithoutCallback) {
  sim::Simulator sim;
  PsmScheduler sched(sim, ResourceVector{10, 10, 10, 10, 1000},
                     no_overhead());
  bool fired = false;
  sched.set_finish_callback([&](const CompletionInfo&) { fired = true; });
  const auto t = make_task(1, ResourceVector{2, 2, 2, 2, 100}, {1000, 0, 0});
  ASSERT_TRUE(sched.admit(t));
  const auto spec = sched.abort(t.id);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->id, t.id);
  sim.run_until(seconds(3600));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sched.running_count(), 0u);
  EXPECT_FALSE(sched.abort(t.id).has_value());  // double abort
}

TEST(PsmScheduler, AbortAllReturnsEverySpec) {
  sim::Simulator sim;
  PsmScheduler sched(sim, ResourceVector{10, 10, 10, 10, 1000},
                     no_overhead());
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(sched.admit(
        make_task(i, ResourceVector{1, 1, 1, 1, 50}, {100, 0, 0})));
  }
  const auto specs = sched.abort_all();
  EXPECT_EQ(specs.size(), 3u);
  EXPECT_EQ(sched.running_count(), 0u);
  EXPECT_TRUE(sched.availability().dominates(ResourceVector{9, 9, 9, 9, 900}));
}

TEST(PsmScheduler, AbortSpeedsUpRemainingTask) {
  sim::Simulator sim;
  PsmScheduler sched(sim, ResourceVector{10, 10, 10, 10, 1000},
                     no_overhead());
  double exec_s = 0;
  sched.set_finish_callback(
      [&](const CompletionInfo& c) { exec_s = c.exec_seconds(); });
  const auto hog = make_task(1, ResourceVector{5, 1, 1, 1, 100}, {1e6, 0, 0});
  const auto fast = make_task(2, ResourceVector{5, 1, 1, 1, 100}, {200, 0, 0});
  ASSERT_TRUE(sched.admit(hog));
  ASSERT_TRUE(sched.admit(fast));
  // At t=20 the hog is aborted; `fast` has burned 20 s × rate 5 = 100 of
  // 200, then finishes the rest alone at rate 10 → t = 30 s total.
  sim.schedule_at(seconds(20), [&] { sched.abort(hog.id); });
  sim.run_until(seconds(3600));
  EXPECT_NEAR(exec_s, 30.0, 0.1);
}

TEST(PsmScheduler, ExpectedExecSecondsUsesBottleneckDim) {
  const auto t = make_task(1, ResourceVector{2, 4, 5, 1, 100}, {200, 100, 50});
  // 200/2 = 100, 100/4 = 25, 50/5 = 10 → expected 100 s.
  EXPECT_DOUBLE_EQ(t.expected_exec_seconds(), 100.0);
}

// Property sweep: admitted tasks always finish no later than their
// expectation-rate deadline, regardless of how many contenders arrive.
class PsmDeadlineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PsmDeadlineProperty, FinishNoLaterThanExpectedTime) {
  const int n_tasks = GetParam();
  sim::Simulator sim(static_cast<std::uint64_t>(n_tasks));
  PsmScheduler sched(sim, ResourceVector{100, 100, 100, 100, 10000});
  Rng rng(static_cast<std::uint64_t>(n_tasks) * 31 + 7);

  struct Expected {
    SimTime admitted_at;
    double deadline_s;
  };
  std::unordered_map<TaskId, Expected> expected;
  int finished = 0;
  sched.set_finish_callback([&](const CompletionInfo& c) {
    ++finished;
    const auto& e = expected.at(c.id);
    const double elapsed = to_seconds(c.finished_at - e.admitted_at);
    // Grace of 1% covers event-granularity rounding.
    EXPECT_LE(elapsed, e.deadline_s * 1.01 + 0.01);
  });

  int admitted = 0;
  for (int i = 0; i < n_tasks; ++i) {
    const SimTime at = seconds(rng.uniform(0.0, 500.0));
    sim.schedule_at(at, [&, i] {
      ResourceVector e{rng.uniform(1, 10), rng.uniform(1, 10),
                       rng.uniform(1, 10), rng.uniform(1, 10),
                       rng.uniform(50, 500)};
      std::array<double, kRateDims> w{};
      for (std::size_t k = 0; k < kRateDims; ++k) {
        w[k] = e[k] * rng.uniform(10.0, 100.0);
      }
      TaskSpec t;
      t.id = TaskId{NodeId(0), static_cast<std::uint32_t>(i)};
      t.expectation = e;
      t.workload = w;
      if (sched.admit(t)) {
        ++admitted;
        expected[t.id] = {sim.now(), t.expected_exec_seconds()};
      }
    });
  }
  sim.run_until(seconds(10000));
  EXPECT_GT(admitted, 0);
  EXPECT_EQ(finished, admitted);
}

INSTANTIATE_TEST_SUITE_P(TaskCounts, PsmDeadlineProperty,
                         ::testing::Values(1, 4, 16, 64));

}  // namespace
}  // namespace soc::psm
