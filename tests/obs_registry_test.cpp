// obs::Registry invariants — the naming/charset contract, snapshot
// ordering, gauge evaluation, the deterministic flag — and the one that
// matters most: hostile metric names round-trip through the REAL sweep
// shard writer/reader without aliasing any schema key.  The shard file
// stores samples as {"k": name, "v": value} pairs precisely so a metric
// named "series", "key" or "generated" lives inside an escaped string
// value and can never fool the bounded needle parser; this test feeds it
// the worst names we could think of and checks the scalars, series and
// metrics all survive.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/obs/registry.hpp"
#include "src/sweep/runner.hpp"

namespace soc {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    path_ = (fs::temp_directory_path() /
             (std::string("soc_obs_") + tag + "_" +
              std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ObsRegistry, SanitizeKeepsCharsetAndDefangsTheRest) {
  EXPECT_EQ(obs::Registry::sanitize("bus.state-update.sent"),
            "bus.state-update.sent");
  EXPECT_EQ(obs::Registry::sanitize("mem.host_table.bytes"),
            "mem.host_table.bytes");
  EXPECT_EQ(obs::Registry::sanitize("AZaz09_.-"), "AZaz09_.-");
  // Quotes, backslashes, whitespace, colons — everything a name could use
  // to tear JSON or fake a key — become '_'.
  EXPECT_EQ(obs::Registry::sanitize("a\"b\\c d:e,f\ng"), "a_b_c_d_e_f_g");
  EXPECT_EQ(obs::Registry::sanitize(""), "");
}

TEST(ObsRegistry, SetAddGaugeAndSortedSnapshot) {
  obs::Registry reg;
  reg.set("z.gauge.value", 3.5);
  reg.add("a.counter.hits", 2.0);
  reg.add("a.counter.hits", 3.0);
  double backing = 7.0;
  reg.gauge("m.live.value", [&backing] { return backing; });
  backing = 11.0;  // callbacks evaluate at snapshot time, not registration

  const std::vector<obs::MetricSample> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.counter.hits");
  EXPECT_EQ(snap[0].value, 5.0);
  EXPECT_EQ(snap[1].name, "m.live.value");
  EXPECT_EQ(snap[1].value, 11.0);
  EXPECT_EQ(snap[2].name, "z.gauge.value");
  EXPECT_EQ(snap[2].value, 3.5);
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
}

TEST(ObsRegistry, DeterministicFlagTravelsWithTheSample) {
  obs::Registry reg;
  reg.set("rss.post_join.bytes", 1e6, /*deterministic=*/false);
  reg.set("tasks.finished", 42.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_FALSE(snap[0].deterministic);  // rss.* sorts first
  EXPECT_TRUE(snap[1].deterministic);
}

TEST(ObsRegistry, SetOverwritesAndClearEmpties) {
  obs::Registry reg;
  reg.set("x.y.z", 1.0);
  reg.set("x.y.z", 2.0);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.snapshot()[0].value, 2.0);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(ObsRegistry, HostileNamesRoundTripThroughShardFile) {
  const TempDir dir("hostile");

  // A cell with real scalars and series, plus metric names chosen to
  // collide with every schema key the shard parser searches for.
  sweep::CellResult cell;
  cell.key = "HID-CAN/l0.5/n64/r0";
  cell.group = "HID-CAN/l0.5/n64";
  cell.seed = 0xdeadbeefcafe1234ull;
  cell.t_ratio = 0.875;
  cell.f_ratio = 0.0625;
  cell.fairness = 0.96875;
  cell.generated = 320;
  cell.finished = 280;
  cell.failed = 20;
  cell.events = 123456;
  cell.messages = 65432;
  cell.messages_delivered = 65000;
  cell.latency_finish.record_us(1500);
  cell.latency_finish.record_us(70);
  metrics::SeriesSample sample;
  sample.hour = 1.0;
  sample.generated = 320;
  sample.finished = 280;
  sample.t_ratio = 0.875;
  cell.series.push_back(sample);
  // Schema words as metric names: under a naive writer any of these would
  // alias a cell scalar ("generated"), the series scan ("hour"), the cell
  // delimiter ("key"), the histogram fields, or the pair schema itself
  // ("k"/"v").  The registry convention says names are dotted, but the
  // writer must not *depend* on that.
  const std::vector<obs::MetricSample> hostile = {
      {"generated", 1.0, true},    {"hour", 2.0, true},
      {"key", 3.0, true},          {"series", 4.0, true},
      {"lat_first_b", 5.0, true},  {"k", 6.0, true},
      {"v", 7.0, true},            {"t_ratio", 8.0, true},
      {"wall_seconds", 9.0, true}, {"spec_fingerprint", 10.0, true},
      // Bypassing Registry::sanitize on purpose: even raw quotes and
      // backslashes must survive via json_mini::escape, not tear the file.
      {"quote\"back\\slash", 11.0, true},
      {"bus.state-update.sent", 12345.0, true},
  };
  cell.metrics = hostile;

  sweep::ShardResult shard;
  shard.spec_fingerprint = 0x0123456789abcdefull;
  shard.shard_id = 0;
  shard.shards_total = 1;
  shard.cells.push_back(cell);

  ASSERT_TRUE(sweep::write_shard_result(dir.path(), shard));
  const auto parsed =
      sweep::read_shard_result(sweep::shard_path(dir.path(), 0));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->cells.size(), 1u);
  const sweep::CellResult& back = parsed->cells[0];

  // The hostile names corrupted nothing around them.
  EXPECT_EQ(parsed->spec_fingerprint, shard.spec_fingerprint);
  EXPECT_EQ(back.key, cell.key);
  EXPECT_EQ(back.group, cell.group);
  EXPECT_EQ(back.seed, cell.seed);
  EXPECT_EQ(back.t_ratio, cell.t_ratio);
  EXPECT_EQ(back.f_ratio, cell.f_ratio);
  EXPECT_EQ(back.generated, cell.generated);
  EXPECT_EQ(back.finished, cell.finished);
  EXPECT_EQ(back.events, cell.events);
  EXPECT_EQ(back.latency_finish.total(), 2u);
  EXPECT_EQ(back.latency_finish.sum_us(), 1570u);
  ASSERT_EQ(back.series.size(), 1u);
  EXPECT_EQ(back.series[0].hour, 1.0);
  EXPECT_EQ(back.series[0].generated, 320u);
  EXPECT_EQ(back.series[0].t_ratio, 0.875);

  // And the metrics themselves round-tripped exactly, in order.
  ASSERT_EQ(back.metrics.size(), hostile.size());
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_EQ(back.metrics[i].name, hostile[i].name) << i;
    EXPECT_EQ(back.metrics[i].value, hostile[i].value) << i;
    EXPECT_TRUE(back.metrics[i].deterministic);
  }
}

TEST(ObsRegistry, EmptyMetricsBlockParsesAsEmpty) {
  const TempDir dir("empty");
  sweep::CellResult cell;
  cell.key = "Newscast/l0.3/n24/r0";
  cell.group = "Newscast/l0.3/n24";
  cell.t_ratio = 0.5;
  sweep::ShardResult shard;
  shard.spec_fingerprint = 1;
  shard.shard_id = 0;
  shard.shards_total = 1;
  shard.cells.push_back(cell);
  ASSERT_TRUE(sweep::write_shard_result(dir.path(), shard));
  const auto parsed =
      sweep::read_shard_result(sweep::shard_path(dir.path(), 0));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->cells.size(), 1u);
  EXPECT_TRUE(parsed->cells[0].metrics.empty());
  EXPECT_TRUE(parsed->cells[0].series.empty());
}

}  // namespace
}  // namespace soc
