// Unit tests for src/common: ResourceVector, RNG, stats, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "src/common/cli.hpp"
#include "src/common/resource_vector.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/common/types.hpp"

namespace soc {
namespace {

TEST(ResourceVector, ZeroConstructedIsZero) {
  const ResourceVector v(5);
  EXPECT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(ResourceVector, InitializerList) {
  const ResourceVector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 2.0);
}

TEST(ResourceVector, DominatesIsComponentwise) {
  const ResourceVector a{2.0, 3.0};
  const ResourceVector b{1.0, 3.0};
  EXPECT_TRUE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  EXPECT_TRUE(a.dominates(a));  // reflexive
  EXPECT_FALSE(a.strictly_dominates(b));
  EXPECT_TRUE((ResourceVector{2.0, 4.0}).strictly_dominates(b));
}

TEST(ResourceVector, DominanceIsPartialNotTotal) {
  const ResourceVector a{2.0, 1.0};
  const ResourceVector b{1.0, 2.0};
  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
}

TEST(ResourceVector, Arithmetic) {
  const ResourceVector a{2.0, 3.0};
  const ResourceVector b{1.0, 1.5};
  EXPECT_EQ((a + b), (ResourceVector{3.0, 4.5}));
  EXPECT_EQ((a - b), (ResourceVector{1.0, 1.5}));
  EXPECT_EQ((a * 2.0), (ResourceVector{4.0, 6.0}));
  EXPECT_EQ(a.divided_by(b), (ResourceVector{2.0, 2.0}));
}

TEST(ResourceVector, MinMaxClamp) {
  const ResourceVector a{2.0, 1.0};
  const ResourceVector b{1.0, 3.0};
  EXPECT_EQ(a.cw_min(b), (ResourceVector{1.0, 1.0}));
  EXPECT_EQ(a.cw_max(b), (ResourceVector{2.0, 3.0}));
  EXPECT_EQ((ResourceVector{-1.0, 5.0}).clamped(b), (ResourceVector{0.0, 3.0}));
  EXPECT_EQ(a.min_component(), 1.0);
  EXPECT_EQ(a.max_component(), 2.0);
  EXPECT_EQ(a.sum(), 3.0);
  EXPECT_TRUE(a.non_negative());
  EXPECT_FALSE((a - b).non_negative());
}

TEST(ResourceVector, BestFitSlackPrefersTighterCandidate) {
  const ResourceVector demand{1.0, 1.0};
  const ResourceVector scale{10.0, 10.0};
  const ResourceVector tight{1.5, 1.5};
  const ResourceVector roomy{8.0, 9.0};
  EXPECT_LT(best_fit_slack(tight, demand, scale),
            best_fit_slack(roomy, demand, scale));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfDrawOrder) {
  const Rng root(7);
  Rng f1 = root.fork("alpha");
  Rng f2 = root.fork("beta");
  // Re-fork after draws: forks depend only on the parent's seed.
  Rng again = root.fork("alpha");
  EXPECT_EQ(f1.next_u64(), again.next_u64());
  EXPECT_NE(f1.seed(), f2.seed());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3000.0);
  EXPECT_NEAR(sum / n, 3000.0, 40.0);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng r(13);
  const auto s = r.sample_indices(10, 4);
  EXPECT_EQ(s.size(), 4u);
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 4u);
  // k > n returns all n.
  EXPECT_EQ(r.sample_indices(3, 10).size(), 3u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w.begin(), w.end());
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng r(19);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(5.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(JainFairness, PerfectlyFairIsOne) {
  const std::vector<double> v{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(jain_fairness(v), 1.0);
}

TEST(JainFairness, WorstCaseIsOneOverN) {
  const std::vector<double> v{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(v), 0.25);
}

TEST(JainFairness, EmptyIsVacuouslyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.3);
  h.add(0.99);
  h.add(5.0);    // clamps to last bucket
  h.add(-1.0);   // clamps to first bucket
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 0.25);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 0.5);
}

TEST(Percentile, SingleElementIsEveryPercentile) {
  const std::vector<double> v{3.5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 3.5);
}

TEST(StudentT95, TableToNormalLimitBoundary) {
  EXPECT_DOUBLE_EQ(student_t95(0), 0.0);
  EXPECT_DOUBLE_EQ(student_t95(1), 12.706);
  // dof 30 is the last table entry; 31 falls to the normal limit.
  EXPECT_DOUBLE_EQ(student_t95(30), 2.042);
  EXPECT_DOUBLE_EQ(student_t95(31), 1.960);
}

TEST(RunningStats, MergeWithEmptySideIsIdentity) {
  RunningStats filled, empty;
  for (const double x : {1.0, 2.0, 6.0}) filled.add(x);

  RunningStats a = filled;
  a.merge(empty);  // empty right side: no-op
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.variance(), filled.variance());
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);

  RunningStats b;  // empty left side: copies the other accumulator
  b.merge(filled);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
  EXPECT_DOUBLE_EQ(b.variance(), filled.variance());
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  EXPECT_DOUBLE_EQ(b.max(), 6.0);
}

// Regression for the UBSan finding: add() used to cast an unclamped double
// to std::size_t, UB for NaN, ±inf, negatives, and anything >= bins (the
// sanitizer lane runs this test under -fsanitize=undefined).
TEST(Histogram, NonFiniteAndOutOfRangeInputs) {
  Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(std::numeric_limits<double>::infinity());
  h.add(1e300);
  h.add(-1e300);
  // NaN belongs to no bucket: counted separately, excluded from total().
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);  // -inf and -1e300 clamp low
  EXPECT_EQ(h.count(3), 2u);  // +inf and 1e300 clamp high
}

TEST(Histogram, BoundaryValuesLandInCorrectBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.0);    // lo: first bucket
  h.add(0.25);   // exact bucket edge: belongs to the upper bucket
  h.add(1.0);    // hi (half-open range): clamps into the last bucket
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.nan_count(), 0u);
}

TEST(CliArgs, ParsesAllForms) {
  const char* argv[] = {"prog",     "--nodes=2000", "--lambda", "0.5",
                        "--full",   "--name",       "hid"};
  const CliArgs args(7, argv);
  EXPECT_EQ(args.get_int("nodes", 0), 2000);
  EXPECT_DOUBLE_EQ(args.get_double("lambda", 0.0), 0.5);
  EXPECT_TRUE(args.get_bool("full", false));
  EXPECT_EQ(args.get("name", ""), "hid");
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_int("missing", 9), 9);
}

TEST(SimTimeHelpers, Conversions) {
  EXPECT_EQ(seconds(1.5), 1500000);
  EXPECT_EQ(millis(2.0), 2000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(86400.0)), 86400.0);
  EXPECT_DOUBLE_EQ(to_hours(seconds(7200.0)), 2.0);
}

}  // namespace
}  // namespace soc
