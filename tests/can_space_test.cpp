// Tests for the partition tree and CanSpace membership/routing, including
// property-style churn sweeps that check the overlay invariants after
// arbitrary join/leave interleavings.
#include <gtest/gtest.h>

#include <set>

#include "src/can/partition_tree.hpp"
#include "src/can/space.hpp"

namespace soc::can {
namespace {

TEST(PartitionTree, FirstOwnerHoldsUnitCube) {
  const PartitionTree t(2, NodeId(0));
  EXPECT_EQ(t.leaf_count(), 1u);
  EXPECT_EQ(t.zone_of(NodeId(0)), Zone::unit(2));
  EXPECT_EQ(t.owner_of(Point{0.3, 0.9}), NodeId(0));
}

TEST(PartitionTree, SplitAssignsHalfContainingJoinerPoint) {
  PartitionTree t(2, NodeId(0));
  // Depth 0 splits along dim 0; the joiner picks a point in the lower half.
  t.split(NodeId(0), NodeId(1), Point{0.1, 0.5});
  EXPECT_TRUE(t.zone_of(NodeId(1)).contains(Point{0.1, 0.5}));
  EXPECT_FALSE(t.zone_of(NodeId(0)).contains(Point{0.1, 0.5}));
  EXPECT_TRUE(t.tiles_unit_cube());
}

TEST(PartitionTree, SplitDimensionCyclesWithDepth) {
  PartitionTree t(2, NodeId(0));
  t.split(NodeId(0), NodeId(1));  // depth 0 → dim 0
  const Zone z0 = t.zone_of(NodeId(0));
  EXPECT_DOUBLE_EQ(z0.side(0), 0.5);
  EXPECT_DOUBLE_EQ(z0.side(1), 1.0);
  t.split(NodeId(0), NodeId(2));  // depth 1 → dim 1
  EXPECT_DOUBLE_EQ(t.zone_of(NodeId(0)).side(1), 0.5);
}

TEST(PartitionTree, LeaveMergesSiblingLeaf) {
  PartitionTree t(2, NodeId(0));
  t.split(NodeId(0), NodeId(1));
  const auto repair = t.leave(NodeId(1));
  EXPECT_EQ(repair.merge_survivor, NodeId(0));
  EXPECT_FALSE(repair.reassigned_to.valid());
  EXPECT_EQ(t.leaf_count(), 1u);
  EXPECT_EQ(t.zone_of(NodeId(0)), Zone::unit(2));
}

TEST(PartitionTree, LeaveWithInternalSiblingReassigns) {
  PartitionTree t(2, NodeId(0));
  t.split(NodeId(0), NodeId(1));  // 0 and 1 split dim 0
  t.split(NodeId(1), NodeId(2));  // 1's half splits dim 1
  // Node 0's sibling subtree is internal (holds 1 and 2): on 0's departure
  // one of them absorbs its pair-sibling and the freed node takes 0's zone.
  const Zone departed = t.zone_of(NodeId(0));
  const auto repair = t.leave(NodeId(0));
  EXPECT_TRUE(repair.reassigned_to.valid());
  EXPECT_EQ(t.zone_of(repair.reassigned_to), departed);
  EXPECT_TRUE(t.tiles_unit_cube());
  EXPECT_EQ(t.leaf_count(), 2u);
}

TEST(PartitionTree, ChurnKeepsTilingInvariant) {
  Rng rng(77);
  PartitionTree t(3, NodeId(0));
  std::vector<NodeId> live{NodeId(0)};
  std::uint32_t next = 1;
  for (int step = 0; step < 500; ++step) {
    if (live.size() <= 2 || rng.chance(0.6)) {
      const NodeId owner = live[rng.pick_index(live.size())];
      const NodeId joiner(next++);
      t.split(owner, joiner);
      live.push_back(joiner);
    } else {
      const std::size_t idx = rng.pick_index(live.size());
      t.leave(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_TRUE(t.tiles_unit_cube()) << "step " << step;
    ASSERT_EQ(t.leaf_count(), live.size());
  }
}

class CanSpaceTest : public ::testing::Test {
 protected:
  CanSpace make_space(std::size_t dims, std::size_t n, std::uint64_t seed) {
    CanSpace space(dims, Rng(seed));
    for (std::uint32_t i = 0; i < n; ++i) space.join(NodeId(i));
    return space;
  }
};

TEST_F(CanSpaceTest, JoinGrowsMembershipAndKeepsInvariants) {
  const CanSpace space = make_space(2, 32, 5);
  EXPECT_EQ(space.size(), 32u);
  EXPECT_TRUE(space.verify_invariants());
}

TEST_F(CanSpaceTest, OwnerOfFindsContainingZone) {
  const CanSpace space = make_space(2, 64, 6);
  Rng rng(123);
  for (int i = 0; i < 100; ++i) {
    const Point p{rng.uniform(), rng.uniform()};
    const NodeId owner = space.owner_of(p);
    EXPECT_TRUE(space.zone_of(owner).contains(p));
  }
}

TEST_F(CanSpaceTest, NeighborsAreSymmetric) {
  const CanSpace space = make_space(3, 48, 7);
  for (const NodeId id : space.member_ids()) {
    for (const NodeId n : space.neighbors_of(id)) {
      const auto& back = space.neighbors_of(n);
      EXPECT_TRUE(std::find(back.begin(), back.end(), id) != back.end());
    }
  }
}

TEST_F(CanSpaceTest, DirectionalNeighborsPartitionByDimAndSide) {
  const CanSpace space = make_space(2, 40, 8);
  for (const NodeId id : space.member_ids()) {
    std::size_t directional_total = 0;
    for (std::size_t d = 0; d < 2; ++d) {
      for (const Direction dir : {Direction::kNegative, Direction::kPositive}) {
        const auto dn = space.directional_neighbors(id, d, dir);
        directional_total += dn.size();
        for (const NodeId n : dn) {
          const auto adim = space.zone_of(id).adjacency_dim(space.zone_of(n));
          ASSERT_TRUE(adim.has_value());
          EXPECT_EQ(*adim, d);
          EXPECT_EQ(space.zone_of(id).positive_side(space.zone_of(n), d),
                    dir == Direction::kPositive);
        }
      }
    }
    EXPECT_EQ(directional_total, space.neighbors_of(id).size());
  }
}

TEST_F(CanSpaceTest, GreedyRoutingReachesTargetOwner) {
  const CanSpace space = make_space(2, 128, 9);
  Rng rng(55);
  for (int i = 0; i < 200; ++i) {
    const Point target{rng.uniform(), rng.uniform()};
    const NodeId start = space.random_member(rng);
    NodeId cur = start;
    std::size_t hops = 0;
    while (!space.zone_of(cur).contains(target)) {
      cur = space.next_hop(cur, target);
      ASSERT_LE(++hops, space.size());
    }
    EXPECT_EQ(cur, space.owner_of(target));
  }
}

TEST_F(CanSpaceTest, RouteHopCountIsSubLinear) {
  const CanSpace space = make_space(2, 256, 10);
  Rng rng(66);
  double total_hops = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const Point target{rng.uniform(), rng.uniform()};
    total_hops +=
        static_cast<double>(space.route(space.random_member(rng), target).size());
  }
  // Plain CAN routing is O(n^{1/d}) = O(sqrt(256)) = 16 per dimension; the
  // average must sit well under that bound times d.
  EXPECT_LT(total_hops / trials, 32.0);
}

TEST_F(CanSpaceTest, LeaveKeepsInvariantsSimpleMerge) {
  CanSpace space(2, Rng(11));
  space.join(NodeId(0));
  space.join(NodeId(1));
  space.leave(NodeId(1));
  EXPECT_EQ(space.size(), 1u);
  EXPECT_TRUE(space.verify_invariants());
  EXPECT_EQ(space.zone_of(NodeId(0)), Zone::unit(2));
}

TEST_F(CanSpaceTest, RehomeListenerFiresOnJoinAndLeave) {
  CanSpace space(2, Rng(12));
  int rehomes = 0;
  CanSpace::Listener listener;
  listener.on_rehome = [&](NodeId, NodeId) { ++rehomes; };
  space.set_listener(listener);
  space.join(NodeId(0));
  space.join(NodeId(1));
  EXPECT_EQ(rehomes, 1);  // split moves half the records
  space.leave(NodeId(0));
  EXPECT_GE(rehomes, 2);  // departure moves the cache to the heir
}

// Property sweep: random churn at several population sizes must preserve
// all overlay invariants at every step.
class ChurnProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChurnProperty, InvariantsHoldUnderChurn) {
  const auto [dims, steps] = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(dims * steps));
  CanSpace space(static_cast<std::size_t>(dims), Rng(999));
  std::vector<NodeId> live;
  std::uint32_t next = 0;
  for (int i = 0; i < 12; ++i) {
    space.join(NodeId(next));
    live.push_back(NodeId(next++));
  }
  for (int step = 0; step < steps; ++step) {
    if (live.size() < 4 || rng.chance(0.55)) {
      space.join(NodeId(next));
      live.push_back(NodeId(next++));
    } else {
      const std::size_t idx = rng.pick_index(live.size());
      space.leave(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    if (step % 10 == 0) {
      ASSERT_TRUE(space.verify_invariants()) << "step " << step;
    }
  }
  ASSERT_TRUE(space.verify_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSteps, ChurnProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(60, 200)),
    [](const auto& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_steps" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace soc::can
