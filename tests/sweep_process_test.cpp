// Cross-process sweep determinism, driving the real sweep_run binary
// (path injected as SOC_SWEEP_BIN by CMake):
//
//   * a 24-config mini-sweep merged from 4 worker processes is
//     byte-identical to the same sweep run single-process;
//   * an orchestrator SIGKILLed mid-sweep resumes from its manifest and
//     result files, re-running only the unfinished shards (finished shard
//     files stay untouched — same inode, same mtime), and the resumed
//     merge equals the uninterrupted one.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "src/sweep/io.hpp"
#include "src/sweep/runner.hpp"

#ifndef SOC_SWEEP_BIN
#error "SOC_SWEEP_BIN must point at the sweep_run binary"
#endif

namespace soc::sweep {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kShards = 4;

/// The 24-cell mini-grid as CLI flags.  `hours` sets per-experiment work:
/// the byte-identity test wants speed, the kill test wants shards slow
/// enough that a SIGKILL reliably lands mid-sweep.
std::vector<std::string> spec_flags(double hours) {
  char h[32];
  std::snprintf(h, sizeof(h), "--hours=%g", hours);
  return {"--protocols=HID-CAN,Newscast,KHDN-CAN", "--lambdas=0.3,0.5",
          "--node-counts=24,32", "--scenarios=none", "--repeats=2",
          "--base-seed=7", h};
}

SweepSpec spec_for_validation(double hours) {
  SweepSpec spec;
  spec.protocols = {core::ProtocolKind::kHidCan, core::ProtocolKind::kNewscast,
                    core::ProtocolKind::kKhdnCan};
  spec.lambdas = {0.3, 0.5};
  spec.node_counts = {24, 32};
  spec.scenarios = {"none"};
  spec.repeats = 2;
  spec.base_seed = 7;
  spec.hours = hours;
  return spec;
}

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    path_ = (fs::temp_directory_path() /
             (std::string("soc_sweepproc_") + tag + "_" +
              std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Spawn sweep_run with the given mode flags in its own process group (so
/// a SIGKILL to the group takes its workers down too — the crash the
/// resume path must survive).  Returns the child pid.
pid_t spawn_sweep(const std::vector<std::string>& mode_flags, double hours) {
  std::vector<std::string> args;
  args.emplace_back(SOC_SWEEP_BIN);
  for (const std::string& f : mode_flags) args.push_back(f);
  for (const std::string& f : spec_flags(hours)) args.push_back(f);
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    setpgid(0, 0);
    // Quiet the table output; errors still reach the test log via stderr.
    freopen("/dev/null", "w", stdout);
    execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

/// Run to completion; returns the exit code (-1 on abnormal exit).
int run_sweep(const std::vector<std::string>& mode_flags, double hours) {
  const pid_t pid = spawn_sweep(mode_flags, hours);
  if (pid < 0) return -1;
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(SweepProcess, FourWorkerMergeIsByteIdenticalToSingleProcess) {
  const TempDir local("local");
  const TempDir fanout("fanout");
  constexpr double kHours = 0.05;

  ASSERT_EQ(run_sweep({"--mode=local", "--dir=" + local.path(),
                       "--shards=" + std::to_string(kShards)},
                      kHours),
            0);
  ASSERT_EQ(run_sweep({"--mode=orchestrate", "--workers=4",
                       "--dir=" + fanout.path(),
                       "--shards=" + std::to_string(kShards)},
                      kHours),
            0);

  const auto merged_local = read_file(local.path() + "/SWEEP_merged.json");
  const auto merged_fanout = read_file(fanout.path() + "/SWEEP_merged.json");
  ASSERT_TRUE(merged_local.has_value());
  ASSERT_TRUE(merged_fanout.has_value());
  EXPECT_FALSE(merged_local->empty());
  EXPECT_EQ(*merged_local, *merged_fanout)
      << "merged report must not depend on the process layout";

  // The per-shard artifacts agree too (same partition, same results).
  for (std::size_t s = 0; s < kShards; ++s) {
    const auto a = read_file(shard_path(local.path(), s));
    const auto b = read_file(shard_path(fanout.path(), s));
    ASSERT_TRUE(a.has_value() && b.has_value()) << "shard " << s;
    // Shard files carry nondeterministic wall_seconds; compare the parsed
    // deterministic fields instead of bytes.
    const auto ra = read_shard_result(shard_path(local.path(), s));
    const auto rb = read_shard_result(shard_path(fanout.path(), s));
    ASSERT_TRUE(ra.has_value() && rb.has_value());
    ASSERT_EQ(ra->cells.size(), rb->cells.size());
    for (std::size_t i = 0; i < ra->cells.size(); ++i) {
      EXPECT_EQ(ra->cells[i].key, rb->cells[i].key);
      EXPECT_EQ(ra->cells[i].seed, rb->cells[i].seed);
      EXPECT_EQ(ra->cells[i].events, rb->cells[i].events);
      EXPECT_EQ(ra->cells[i].messages, rb->cells[i].messages);
      EXPECT_EQ(ra->cells[i].t_ratio, rb->cells[i].t_ratio);
    }
  }
}

TEST(SweepProcess, KilledOrchestratorResumesWithoutRecomputingDoneShards) {
  // Long enough per shard (~tens of ms) that the SIGKILL lands mid-sweep.
  constexpr double kHours = 4.0;
  const TempDir reference("kill_ref");

  // Uninterrupted run for comparison.
  ASSERT_EQ(run_sweep({"--mode=local", "--dir=" + reference.path(),
                       "--shards=" + std::to_string(kShards)},
                      kHours),
            0);

  const SweepSpec spec = spec_for_validation(kHours);
  const std::vector<Shard> shards = partition(spec, kShards);
  const std::uint64_t fp = spec.fingerprint();

  struct Snapshot {
    std::size_t id;
    struct timespec mtime;
    ino_t inode;
  };
  std::vector<Snapshot> survivors;
  std::string killed_dir;

  // Start the orchestrator sequentially (1 worker => shards finish one by
  // one), wait for the *first* shard result to land, then SIGKILL the
  // whole process group mid-sweep.  On a loaded machine the kill can in
  // principle arrive after the last shard finished — that attempt proves
  // nothing about resume, so retry in a fresh directory.
  std::vector<std::unique_ptr<TempDir>> dirs;
  for (int attempt = 0; attempt < 5 && survivors.empty(); ++attempt) {
    dirs.push_back(std::make_unique<TempDir>(
        ("kill" + std::to_string(attempt)).c_str()));
    const std::string& dir = dirs.back()->path();
    const pid_t pid = spawn_sweep({"--mode=orchestrate", "--workers=1",
                                   "--dir=" + dir,
                                   "--shards=" + std::to_string(kShards)},
                                  kHours);
    ASSERT_GT(pid, 0);

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    bool first_done = false;
    while (std::chrono::steady_clock::now() < deadline) {
      std::size_t done = 0;
      for (const Shard& s : shards) {
        if (shard_complete(dir, s, fp, kShards)) ++done;
      }
      if (done >= 1) {
        first_done = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(first_done) << "no shard completed within the deadline";
    ASSERT_EQ(kill(-pid, SIGKILL), 0);
    int status = 0;
    waitpid(pid, &status, 0);
    ASSERT_TRUE(WIFSIGNALED(status)) << "orchestrator should die by signal";

    // Snapshot what survived the crash; a fully-finished attempt retries.
    std::size_t done_before = 0;
    std::vector<Snapshot> snap;
    for (const Shard& s : shards) {
      if (!shard_complete(dir, s, fp, kShards)) continue;
      ++done_before;
      struct stat st {};
      ASSERT_EQ(stat(shard_path(dir, s.id).c_str(), &st), 0);
      snap.push_back({s.id, st.st_mtim, st.st_ino});
    }
    if (done_before >= 1 && done_before < kShards) {
      survivors = std::move(snap);
      killed_dir = dir;
    }
  }
  ASSERT_FALSE(survivors.empty())
      << "could not interrupt the sweep mid-flight in 5 attempts";
  const std::string killed_path = killed_dir;

  // Resume: the orchestrator must finish the remaining shards and merge.
  ASSERT_EQ(run_sweep({"--mode=orchestrate", "--workers=2",
                       "--dir=" + killed_path,
                       "--shards=" + std::to_string(kShards)},
                      kHours),
            0);

  // Finished shards were not recomputed: their files are untouched.
  for (const Snapshot& s : survivors) {
    struct stat st {};
    ASSERT_EQ(stat(shard_path(killed_path, s.id).c_str(), &st), 0);
    EXPECT_EQ(st.st_ino, s.inode) << "shard " << s.id << " was rewritten";
    EXPECT_EQ(st.st_mtim.tv_sec, s.mtime.tv_sec) << "shard " << s.id;
    EXPECT_EQ(st.st_mtim.tv_nsec, s.mtime.tv_nsec) << "shard " << s.id;
  }

  // The manifest reflects the completed sweep…
  const auto manifest = read_manifest(killed_path);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->spec_fingerprint, fp);
  EXPECT_EQ(manifest->shards.size(), kShards);
  for (const ShardStatus& s : manifest->shards) EXPECT_EQ(s.state, "done");

  // …and the resumed merge is byte-identical to the uninterrupted run.
  const auto merged_killed = read_file(killed_path + "/SWEEP_merged.json");
  const auto merged_ref = read_file(reference.path() + "/SWEEP_merged.json");
  ASSERT_TRUE(merged_killed.has_value() && merged_ref.has_value());
  EXPECT_EQ(*merged_killed, *merged_ref);
}

}  // namespace
}  // namespace soc::sweep
