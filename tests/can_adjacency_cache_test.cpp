// Churn stress for the cached per-neighbor adjacency metadata.
//
// CanSpace keeps, for every neighbor entry, the abutting dimension and side
// (NeighborLink), maintained *incrementally* on join/leave so routing and
// directional filtering never recompute zone adjacency.  These tests drive
// arbitrary join/leave interleavings and assert after every step that the
// cache matches a from-scratch recomputation from the zones — the oracle
// the incremental maintenance must never drift from — and that the
// allocation-free directional filter agrees with a brute-force partition.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/can/space.hpp"

namespace soc::can {
namespace {

// Brute-force oracle: recompute every member's links from zones alone.
void expect_cache_matches_recomputation(const CanSpace& space,
                                        const std::vector<NodeId>& members,
                                        int step) {
  ASSERT_TRUE(space.verify_adjacency_cache()) << "step " << step;
  for (const NodeId id : members) {
    const auto& links = space.neighbor_links(id);
    const auto& neighbors = space.neighbors_of(id);
    ASSERT_EQ(links.size(), neighbors.size()) << "step " << step;
    for (std::size_t i = 0; i < links.size(); ++i) {
      const auto adim =
          space.zone_of(id).adjacency_dim(space.zone_of(links[i].id));
      ASSERT_TRUE(adim.has_value()) << "step " << step;
      EXPECT_EQ(static_cast<std::size_t>(links[i].dim), *adim)
          << "step " << step;
      EXPECT_EQ(links[i].positive,
                space.zone_of(id).positive_side(space.zone_of(links[i].id),
                                                *adim))
          << "step " << step;
    }
  }
}

// The directional filter must be exactly the (dim, side) partition of the
// neighbor set, in neighbor order, for every dimension and direction.
void expect_directional_partition(const CanSpace& space,
                                  const std::vector<NodeId>& members,
                                  int step) {
  std::vector<NodeId> scratch;
  for (const NodeId id : members) {
    std::size_t total = 0;
    for (std::size_t d = 0; d < space.dims(); ++d) {
      for (const Direction dir : {Direction::kNegative, Direction::kPositive}) {
        space.directional_neighbors(id, d, dir, scratch);
        total += scratch.size();
        // Brute-force recomputation of the same filter.
        std::vector<NodeId> expected;
        for (const NodeId n : space.neighbors_of(id)) {
          const auto adim = space.zone_of(id).adjacency_dim(space.zone_of(n));
          if (!adim.has_value() || *adim != d) continue;
          if (space.zone_of(id).positive_side(space.zone_of(n), d) ==
              (dir == Direction::kPositive)) {
            expected.push_back(n);
          }
        }
        EXPECT_EQ(scratch, expected) << "step " << step;
      }
    }
    EXPECT_EQ(total, space.neighbors_of(id).size()) << "step " << step;
  }
}

class AdjacencyCacheChurn
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AdjacencyCacheChurn, CacheMatchesRecomputationUnderChurn) {
  const auto [dims, steps] = GetParam();
  Rng rng(4200 + static_cast<std::uint64_t>(dims * steps));
  CanSpace space(static_cast<std::size_t>(dims), Rng(4242));
  std::vector<NodeId> live;
  std::uint32_t next = 0;
  for (int i = 0; i < 10; ++i) {
    space.join(NodeId(next));
    live.push_back(NodeId(next++));
  }
  for (int step = 0; step < steps; ++step) {
    if (live.size() < 4 || rng.chance(0.5)) {
      space.join(NodeId(next));
      live.push_back(NodeId(next++));
    } else {
      const std::size_t idx = rng.pick_index(live.size());
      space.leave(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    expect_cache_matches_recomputation(space, live, step);
    if (step % 5 == 0) expect_directional_partition(space, live, step);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSteps, AdjacencyCacheChurn,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(80, 160)),
    [](const auto& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_steps" +
             std::to_string(std::get<1>(info.param));
    });

// The scratch overload performs zero allocations once the buffer has grown
// to the peak directional-neighbor count (the acceptance criterion for the
// hot probe/diffusion/KHDN paths).
TEST(AdjacencyCache, DirectionalScratchReusesCapacity) {
  CanSpace space(3, Rng(7));
  for (std::uint32_t i = 0; i < 128; ++i) space.join(NodeId(i));
  std::vector<NodeId> scratch;
  // Warm the buffer to its peak size.
  std::size_t peak = 0;
  for (std::uint32_t i = 0; i < 128; ++i) {
    for (std::size_t d = 0; d < 3; ++d) {
      for (const Direction dir : {Direction::kNegative, Direction::kPositive}) {
        space.directional_neighbors(NodeId(i), d, dir, scratch);
        peak = std::max(peak, scratch.size());
      }
    }
  }
  const std::size_t cap = scratch.capacity();
  ASSERT_GE(cap, peak);
  // Steady state: capacity never changes again (no reallocation).
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < 128; ++i) {
      for (std::size_t d = 0; d < 3; ++d) {
        for (const Direction dir :
             {Direction::kNegative, Direction::kPositive}) {
          space.directional_neighbors(NodeId(i), d, dir, scratch);
          EXPECT_EQ(scratch.capacity(), cap);
        }
      }
    }
  }
}

}  // namespace
}  // namespace soc::can
