// sim_fuzz — randomized scenario schedules with interval invariant checks.
//
// Each schedule draws a random experiment configuration (protocol, scale,
// duration, demand ratio, churn policy) plus a random ScenarioSpec (phased
// churn, flash-crowd bursts, correlated mass failures, capacity skew),
// runs it stepwise, and asserts the global invariant set of
// src/scenario/invariants.hpp at a configurable simulated-time interval.
//
// Everything derives from one base seed: schedule k uses
// Rng(seed).fork("sim-fuzz").fork(k), so
//
//   sim_fuzz --seed S --only K
//
// replays schedule K bit-identically no matter how many schedules the
// failing run executed (the per-schedule trajectory fingerprint printed
// with --verbose is the proof).  On a violation the harness prints the
// schedule's config, its scenario spec, the simulated time, every violated
// invariant, and the exact replay command, then exits 1.
//
//   sim_fuzz [--schedules 50] [--seed 1] [--only K] [--check-every-s 300]
//            [--trace-on-failure]
//
// --trace-on-failure: when a schedule violates an invariant, replay it
// bit-identically with the obs tracer installed and dump the failing
// trajectory's Chrome trace (sim_fuzz_trace_<seed>_<k>.json, next to the
// replay command) — the span timeline up to the violation, openable in
// Perfetto.
//            [--nodes-lo 24] [--nodes-hi 48] [--max-seconds 0] [--verbose]
//
// --max-seconds bounds *wall-clock* time: the harness stops launching new
// schedules once the budget is spent (the schedule in flight finishes its
// run).  The budget never feeds schedule derivation — schedule k draws the
// identical config whether or not a budget is set, so a violation found
// under a time budget replays with the usual `--seed S --only K`.
//
// The default ctest entry runs 50 schedules (a few seconds); the `nightly`
// ctest configuration runs a wall-clock-bounded budget (see CMakeLists /
// ci.sh).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "src/common/cli.hpp"
#include "src/core/experiment.hpp"
#include "src/obs/trace.hpp"
#include "src/scenario/invariants.hpp"
#include "src/scenario/spec.hpp"

namespace {

using namespace soc;

struct FuzzOptions {
  std::uint64_t schedules = 50;
  std::uint64_t seed = 1;
  std::int64_t only = -1;  ///< replay one schedule index
  double check_every_s = 300.0;
  std::size_t nodes_lo = 24;
  std::size_t nodes_hi = 48;
  double max_seconds = 0.0;  ///< wall-clock budget; 0 = unbounded
  bool verbose = false;
  bool trace_on_failure = false;  ///< dump the failing schedule's trace
  /// Internal: this run IS the tracing replay — suppress the violation
  /// report (already printed) and do not recurse.
  bool tracing_replay = false;
};

const char* policy_name(core::ChurnTaskPolicy p) {
  switch (p) {
    case core::ChurnTaskPolicy::kDetachedExecution:
      return "detached";
    case core::ChurnTaskPolicy::kTasksLost:
      return "tasks-lost";
    case core::ChurnTaskPolicy::kCheckpointRestart:
      return "checkpoint";
  }
  return "?";
}

/// Draw one schedule's experiment config.  CAN-based protocols dominate
/// the mix — they carry the tessellation/index invariants — but the
/// gossip baseline stays in rotation for the engine-level checks.
core::ExperimentConfig random_config(Rng& rng, const FuzzOptions& opt) {
  static constexpr core::ProtocolKind kMix[] = {
      core::ProtocolKind::kHidCan,    core::ProtocolKind::kSidCan,
      core::ProtocolKind::kHidCanSos, core::ProtocolKind::kSidCanVd,
      core::ProtocolKind::kKhdnCan,   core::ProtocolKind::kHidCan,
      core::ProtocolKind::kSidCan,    core::ProtocolKind::kNewscast,
  };
  core::ExperimentConfig cfg;
  cfg.protocol = kMix[rng.pick_index(std::size(kMix))];
  cfg.nodes = opt.nodes_lo +
              rng.pick_index(opt.nodes_hi - opt.nodes_lo + 1);
  cfg.duration = seconds(rng.uniform(1200.0, 2700.0));
  cfg.sample_step = seconds(600);
  cfg.demand_ratio = rng.pick(std::vector<double>{0.25, 0.5, 1.0});
  cfg.want_results = static_cast<std::size_t>(rng.uniform_int(1, 2));
  cfg.churn_dynamic_degree = rng.chance(0.5) ? rng.uniform(0.05, 0.4) : 0.0;
  const double policy_roll = rng.uniform();
  cfg.churn_task_policy =
      policy_roll < 0.5    ? core::ChurnTaskPolicy::kDetachedExecution
      : policy_roll < 0.75 ? core::ChurnTaskPolicy::kTasksLost
                           : core::ChurnTaskPolicy::kCheckpointRestart;
  cfg.seed = rng.next_u64();
  cfg.scenario = scenario::random_spec(rng, cfg.duration);
  // Link-fault draw appended after every pre-existing draw so schedules
  // that never reach it (the chance fails) share their prefix stream with
  // older harness versions.  ~35% of schedules run under correlated
  // loss/reorder/duplication/straggler faults.
  if (rng.chance(0.35)) {
    net::LinkFaultConfig& lf = cfg.link_faults;
    lf.enabled = true;
    lf.lan.p_enter_bad = rng.uniform(0.005, 0.05);
    lf.lan.p_exit_bad = rng.uniform(0.2, 0.6);
    lf.lan.loss_good = rng.uniform(0.0, 0.01);
    lf.lan.loss_bad = rng.uniform(0.1, 0.5);
    lf.wan.p_enter_bad = rng.uniform(0.01, 0.08);
    lf.wan.p_exit_bad = rng.uniform(0.1, 0.5);
    lf.wan.loss_good = rng.uniform(0.0, 0.02);
    lf.wan.loss_bad = rng.uniform(0.2, 0.7);
    lf.reorder_probability = rng.uniform(0.0, 0.1);
    lf.reorder_extra_delay_s = rng.uniform(0.05, 0.5);
    lf.duplicate_probability = rng.uniform(0.0, 0.05);
    lf.straggler_fraction = rng.uniform(0.0, 0.15);
    lf.straggler_multiplier = rng.uniform(1.5, 4.0);
  }
  return cfg;
}

std::string config_line(const core::ExperimentConfig& cfg) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "protocol=%s nodes=%zu duration=%.0fs lambda=%.2f "
                "base-churn=%.2f policy=%s faults=%s seed=%llu",
                core::protocol_name(cfg.protocol).c_str(), cfg.nodes,
                to_seconds(cfg.duration), cfg.demand_ratio,
                cfg.churn_dynamic_degree, policy_name(cfg.churn_task_policy),
                cfg.link_faults.enabled ? "on" : "off",
                static_cast<unsigned long long>(cfg.seed));
  return buf;
}

/// FNV-1a over end-of-run counters: the per-schedule trajectory
/// fingerprint shown by --verbose (identical across replays by
/// construction; a cheap way to demonstrate bit-identical replay).
std::uint64_t fingerprint(const core::ExperimentResults& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  mix(r.generated);
  mix(r.finished);
  mix(r.failed);
  mix(r.total_messages);
  mix(r.messages_delivered);
  mix(r.messages_lost);
  mix(r.messages_partitioned);
  mix(r.events_executed);
  return h;
}

struct ScheduleOutcome {
  bool ok = true;
  std::uint64_t assertions = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t fingerprint = 0;
};

ScheduleOutcome run_schedule(std::uint64_t k, const FuzzOptions& opt) {
  Rng rng = Rng(opt.seed).fork("sim-fuzz").fork(k);
  const core::ExperimentConfig cfg = random_config(rng, opt);
  Rng check_rng = rng.fork("invariant-checks");

  core::Experiment ex(cfg);
  ex.setup();

  ScheduleOutcome out;
  const SimTime step = seconds(opt.check_every_s);
  for (SimTime t = step;; t += step) {
    const SimTime until = std::min(t, cfg.duration);
    ex.simulator().run_until(until);
    const scenario::InvariantReport report =
        scenario::check_invariants(ex, check_rng);
    out.assertions += report.assertions;
    ++out.checkpoints;
    if (!report.ok()) {
      if (opt.tracing_replay) {
        out.ok = false;
        return out;
      }
      std::printf("\nsim_fuzz: INVARIANT VIOLATION in schedule %llu\n",
                  static_cast<unsigned long long>(k));
      std::printf("  %s\n", config_line(cfg).c_str());
      std::printf("  %s\n", cfg.scenario.describe().c_str());
      std::printf("  at sim-time %.0fs (%llu alive)\n", to_seconds(until),
                  static_cast<unsigned long long>(ex.alive_nodes()));
      std::printf("%s", report.to_string().c_str());
      // Every option that feeds the schedule derivation or the check
      // cadence must appear here, or the replay draws a different
      // schedule than the one that failed.
      std::printf(
          "replay: sim_fuzz --seed %llu --only %llu --nodes-lo %zu "
          "--nodes-hi %zu --check-every-s %g\n",
          static_cast<unsigned long long>(opt.seed),
          static_cast<unsigned long long>(k), opt.nodes_lo, opt.nodes_hi,
          opt.check_every_s);
      if (opt.trace_on_failure) {
        // Bit-identical replay with the tracer installed: same seed chain,
        // same schedule, same violation — tracing is a pure observer.
        obs::Tracer tracer;
        obs::install_tracer(&tracer);
        FuzzOptions replay = opt;
        replay.tracing_replay = true;
        (void)run_schedule(k, replay);
        obs::install_tracer(nullptr);
        char path[96];
        std::snprintf(path, sizeof(path), "sim_fuzz_trace_%llu_%llu.json",
                      static_cast<unsigned long long>(opt.seed),
                      static_cast<unsigned long long>(k));
        if (tracer.export_json(path)) {
          std::printf("trace:  %s (%zu events)\n", path,
                      tracer.event_count());
        } else {
          std::printf("trace:  cannot write %s\n", path);
        }
      }
      out.ok = false;
      return out;
    }
    if (until == cfg.duration) break;
  }
  out.fingerprint = fingerprint(ex.results());
  if (opt.verbose) {
    std::printf("schedule %3llu  %-70s fp=%016llx\n",
                static_cast<unsigned long long>(k), config_line(cfg).c_str(),
                static_cast<unsigned long long>(out.fingerprint));
    std::printf("             %s\n", cfg.scenario.describe().c_str());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  FuzzOptions opt;
  opt.schedules =
      static_cast<std::uint64_t>(args.get_int("schedules", 50));
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  opt.only = args.get_int("only", -1);
  opt.check_every_s = args.get_double("check-every-s", 300.0);
  opt.nodes_lo = static_cast<std::size_t>(args.get_int("nodes-lo", 24));
  opt.nodes_hi = static_cast<std::size_t>(args.get_int("nodes-hi", 48));
  opt.max_seconds = args.get_double("max-seconds", 0.0);
  opt.verbose = args.get_bool("verbose", false);
  opt.trace_on_failure = args.get_bool("trace-on-failure", false);
  if (opt.nodes_hi < opt.nodes_lo || opt.nodes_lo == 0 ||
      opt.check_every_s <= 0.0 || opt.max_seconds < 0.0) {
    std::fprintf(stderr, "sim_fuzz: bad option ranges\n");
    return 2;
  }

  std::uint64_t assertions = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t ran = 0;
  if (opt.only >= 0) {
    // Replay one schedule directly — valid for any index, including ones
    // beyond the default --schedules bound (a nightly-lane violation at
    // schedule 700 must replay without remembering the lane's budget).
    const ScheduleOutcome out =
        run_schedule(static_cast<std::uint64_t>(opt.only), opt);
    if (!out.ok) return 1;
    assertions = out.assertions;
    checkpoints = out.checkpoints;
    ran = 1;
  } else {
    const auto start = std::chrono::steady_clock::now();
    const auto budget_spent = [&] {
      if (opt.max_seconds <= 0.0) return false;
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      return elapsed.count() >= opt.max_seconds;
    };
    for (std::uint64_t k = 0; k < opt.schedules; ++k) {
      if (budget_spent()) {
        std::printf(
            "sim_fuzz: wall-clock budget (%.0fs) spent after %llu of %llu "
            "schedules\n",
            opt.max_seconds, static_cast<unsigned long long>(ran),
            static_cast<unsigned long long>(opt.schedules));
        break;
      }
      const ScheduleOutcome out = run_schedule(k, opt);
      if (!out.ok) return 1;
      assertions += out.assertions;
      checkpoints += out.checkpoints;
      ++ran;
    }
  }
  std::printf(
      "sim_fuzz: %llu schedule(s), %llu invariant checkpoints, %llu "
      "assertions, 0 violations (seed %llu)\n",
      static_cast<unsigned long long>(ran),
      static_cast<unsigned long long>(checkpoints),
      static_cast<unsigned long long>(assertions),
      static_cast<unsigned long long>(opt.seed));
  return 0;
}
