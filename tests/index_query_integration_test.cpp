// Integration tests of the discovery pipeline in isolation: INSCAN state
// updates, index diffusion, and the Alg. 3–5 query, on a static overlay
// with synthetic availabilities (no PSM, no contention).
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/can/space.hpp"
#include "src/index/inscan.hpp"
#include "src/net/message_bus.hpp"
#include "src/net/topology.hpp"
#include "src/psm/task.hpp"
#include "src/query/query_engine.hpp"
#include "src/sim/simulator.hpp"

namespace soc {
namespace {

using index::DiffusionMethod;

class DiscoveryFixture {
 public:
  DiscoveryFixture(std::size_t n, std::size_t dims, DiffusionMethod method,
                   std::uint64_t seed)
      : sim_(seed), topo_(net::TopologyConfig{}, Rng(seed + 1)),
        bus_(sim_, topo_), space_(dims, Rng(seed + 2)),
        cmax_(ResourceVector::filled(dims, 10.0)), rng_(seed + 3) {
    index::InscanConfig cfg;
    cfg.diffusion = method;
    index_ = std::make_unique<index::IndexSystem>(sim_, bus_, space_, cfg,
                                                  Rng(seed + 4));
    index_->attach_to_space();
    index_->set_availability_provider(
        [this](NodeId id) -> std::optional<index::Record> {
          const auto it = avail_.find(id);
          if (it == avail_.end()) return std::nullopt;
          index::Record r;
          r.provider = id;
          r.availability = it->second;
          r.location = can::Point::normalized(it->second, cmax_);
          r.published_at = sim_.now();
          r.expires_at = sim_.now() + index_->config().record_ttl;
          return r;
        });
    query::QueryConfig qc;
    engine_ = std::make_unique<query::QueryEngine>(*index_, qc);

    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = topo_.add_host();
      space_.join(id);
      // Synthetic availability: uniform in [0, 10]^dims.
      ResourceVector a(dims);
      for (std::size_t d = 0; d < dims; ++d) a[d] = rng_.uniform(0.0, 10.0);
      avail_[id] = a;
      index_->add_node(id);
      ids_.push_back(id);
    }
  }

  /// Let state updates, probes and diffusion run.
  void warm_up(double sim_seconds = 1500.0) {
    sim_.run_until(sim_.now() + seconds(sim_seconds));
  }

  /// Issue one query and run the sim until it resolves.
  std::vector<query::Candidate> query_once(const ResourceVector& demand,
                                           std::size_t want = 1) {
    std::vector<query::Candidate> out;
    bool done = false;
    const NodeId requester = ids_[rng_.pick_index(ids_.size())];
    engine_->submit_k(requester, demand,
                      can::Point::normalized(demand, cmax_), want,
                      [&](std::vector<query::Candidate> found) {
                        out = std::move(found);
                        done = true;
                      });
    sim_.run_until(sim_.now() + seconds(200));
    EXPECT_TRUE(done) << "query did not resolve in time";
    return out;
  }

  /// Ground truth: number of nodes whose availability dominates demand.
  std::size_t qualified_population(const ResourceVector& demand) const {
    std::size_t n = 0;
    for (const auto& [_, a] : avail_) n += a.dominates(demand);
    return n;
  }

  std::size_t total_cached_records() const {
    std::size_t n = 0;
    for (const NodeId id : ids_) {
      n += index_->cache(id).live_count(sim_.now());
    }
    return n;
  }

  std::size_t total_pi_entries() const {
    std::size_t n = 0;
    for (const NodeId id : ids_) {
      n += index_->pi_list(id).live_count(sim_.now());
    }
    return n;
  }

  sim::Simulator sim_;
  net::Topology topo_;
  net::MessageBus bus_;
  can::CanSpace space_;
  ResourceVector cmax_;
  Rng rng_;
  std::unique_ptr<index::IndexSystem> index_;
  std::unique_ptr<query::QueryEngine> engine_;
  std::unordered_map<NodeId, ResourceVector> avail_;
  std::vector<NodeId> ids_;
};

TEST(DiscoveryIntegration, StateUpdatesReachDutyNodes) {
  DiscoveryFixture fx(64, 2, DiffusionMethod::kHopping, 11);
  fx.warm_up(900);
  // Every node publishes within the 400 s cycle; all 64 records should be
  // cached somewhere (minus in-flight ones).
  EXPECT_GE(fx.total_cached_records(), 56u);
  // Records must be stored at the zone owner of their location.
  for (const NodeId id : fx.ids_) {
    for (const auto& r : fx.index_->cache(id).all_live(fx.sim_.now())) {
      EXPECT_TRUE(fx.space_.zone_of(id).contains(r.location))
          << "record misplaced on node " << id.value;
    }
  }
}

TEST(DiscoveryIntegration, DiffusionPopulatesPiLists) {
  DiscoveryFixture fx(64, 2, DiffusionMethod::kHopping, 13);
  fx.warm_up(1500);
  EXPECT_GT(fx.total_pi_entries(), 64u);  // several entries per node on avg
}

TEST(DiscoveryIntegration, EasyDemandIsFound) {
  DiscoveryFixture fx(64, 2, DiffusionMethod::kHopping, 17);
  fx.warm_up(1500);
  const ResourceVector demand{2.0, 2.0};  // ~64% of nodes qualify
  ASSERT_GT(fx.qualified_population(demand), 20u);
  int hits = 0;
  for (int i = 0; i < 20; ++i) {
    const auto found = fx.query_once(demand);
    if (found.empty()) continue;
    ++hits;
    EXPECT_TRUE(found[0].availability.dominates(demand));
  }
  EXPECT_GE(hits, 16) << "resource matching rate too low for easy demands";
}

TEST(DiscoveryIntegration, ScarceDemandStillFindable) {
  DiscoveryFixture fx(128, 2, DiffusionMethod::kHopping, 19);
  fx.warm_up(1500);
  const ResourceVector demand{8.5, 8.5};  // ~2% of nodes qualify
  const std::size_t qualified = fx.qualified_population(demand);
  ASSERT_GE(qualified, 1u);
  int hits = 0;
  for (int i = 0; i < 30; ++i) {
    if (!fx.query_once(demand).empty()) ++hits;
  }
  // Best-fit search should find scarce resources in a solid majority of
  // attempts — this is exactly what PID-CAN is designed for.
  EXPECT_GE(hits, 15);
}

TEST(DiscoveryIntegration, ImpossibleDemandReturnsEmpty) {
  DiscoveryFixture fx(32, 2, DiffusionMethod::kHopping, 23);
  fx.warm_up(1200);
  const ResourceVector demand{11.0, 11.0};  // beyond every availability
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(fx.query_once(demand).empty());
  }
}

TEST(DiscoveryIntegration, FirstKReturnsDistinctProviders) {
  DiscoveryFixture fx(96, 2, DiffusionMethod::kHopping, 29);
  fx.warm_up(1500);
  const ResourceVector demand{1.0, 1.0};
  const auto found = fx.query_once(demand, /*want=*/4);
  std::set<std::uint32_t> providers;
  for (const auto& c : found) providers.insert(c.provider.value);
  EXPECT_EQ(providers.size(), found.size()) << "duplicate providers returned";
  EXPECT_GE(found.size(), 2u);
}

TEST(DiscoveryIntegration, SpreadingAlsoWorksButNarrower) {
  DiscoveryFixture hop(64, 2, DiffusionMethod::kHopping, 31);
  DiscoveryFixture spread(64, 2, DiffusionMethod::kSpreading, 31);
  hop.warm_up(1500);
  spread.warm_up(1500);
  // Spreading sends d·L messages per round but relays nothing, so its
  // PILists should not out-populate hopping's.
  EXPECT_GT(spread.total_pi_entries(), 0u);
  EXPECT_GE(hop.total_pi_entries(), spread.total_pi_entries() / 2);
}

TEST(DiscoveryIntegration, FullRangeQueryFindsEntireQualifiedSet) {
  DiscoveryFixture fx(64, 2, DiffusionMethod::kHopping, 37);
  fx.warm_up(900);
  const ResourceVector demand{5.0, 5.0};
  // Collect ground truth from the caches (what is actually discoverable).
  std::size_t cached_qualified = 0;
  for (const NodeId id : fx.ids_) {
    cached_qualified +=
        fx.index_->cache(id).qualified(demand, fx.sim_.now()).size();
  }
  ASSERT_GT(cached_qualified, 0u);

  std::vector<query::Candidate> out;
  bool done = false;
  fx.engine_->submit_full_range(fx.ids_[0], demand,
                                can::Point::normalized(demand, fx.cmax_),
                                [&](std::vector<query::Candidate> f) {
                                  out = std::move(f);
                                  done = true;
                                });
  fx.sim_.run_until(fx.sim_.now() + seconds(200));
  ASSERT_TRUE(done);
  // The flood visits every responsible zone: it must find essentially all
  // cached qualified records (records may expire/move mid-flood).
  EXPECT_GE(out.size() + 2, cached_qualified);
  for (const auto& c : out) {
    EXPECT_TRUE(c.availability.dominates(demand));
  }
}

TEST(DiscoveryIntegration, FiveDimensionalSpaceWorks) {
  DiscoveryFixture fx(128, 5, DiffusionMethod::kHopping, 41);
  fx.warm_up(1500);
  const ResourceVector demand{3.0, 3.0, 3.0, 3.0, 3.0};
  ASSERT_GT(fx.qualified_population(demand), 5u);
  int hits = 0;
  for (int i = 0; i < 20; ++i) {
    if (!fx.query_once(demand).empty()) ++hits;
  }
  EXPECT_GE(hits, 12);
}

}  // namespace
}  // namespace soc
