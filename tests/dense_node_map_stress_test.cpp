// Long-churn stress for DenseNodeMap.  Two lanes:
//
// No-compaction baseline (the first two tests; no maybe_compact calls):
// ids are never reused, so a heavily churned map accumulates one vacant
// slot per departed node and iteration walks O(max id), not O(live).
// Quantified on this container (512 live, 100k churn events): slot_span
// grows to live + churn_events, and iteration scans ~196 slots per live
// element at the end vs 1.0 at the start.
//
// Compaction lane (the remaining tests): calling maybe_compact() at the
// erase sites — as every production holder does — keeps span_ratio
// bounded by kCompactFactor under the same churn, an unconditional
// compact() restores fresh-map iteration density, and the documented
// reference/hole semantics (re-lookup after compaction, O(1) same-id
// re-emplace into a retained hole, rare out-of-order re-emplace after a
// compaction dropped the hole) hold exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/common/dense_node_map.hpp"
#include "src/common/rng.hpp"

namespace soc {
namespace {

constexpr std::size_t kLive = 512;
constexpr std::size_t kChurnEvents = 100000;

TEST(DenseNodeMapStress, LongChurnAccountingStaysExact) {
  DenseNodeMap<std::uint64_t> map;
  Rng rng(20260729);
  std::vector<NodeId> live;
  std::uint32_t next_id = 0;

  for (std::size_t i = 0; i < kLive; ++i) {
    map.emplace(NodeId(next_id), next_id * 7ull);
    live.push_back(NodeId(next_id));
    ++next_id;
  }
  EXPECT_EQ(map.slot_span(), kLive);  // dense while nothing departed

  for (std::size_t step = 0; step < kChurnEvents; ++step) {
    // Depart a random live node, join a fresh one (stable population).
    const std::size_t idx = rng.pick_index(live.size());
    ASSERT_TRUE(map.erase(live[idx]));
    EXPECT_FALSE(map.contains(live[idx]));
    EXPECT_FALSE(map.erase(live[idx]));  // double-erase is a clean no-op
    live[idx] = NodeId(next_id);
    map.emplace(NodeId(next_id), next_id * 7ull);
    ++next_id;
  }

  // Exact occupancy accounting after heavy churn.
  EXPECT_EQ(map.size(), kLive);
  EXPECT_EQ(map.slot_span(), kLive + kChurnEvents);

  // Iteration yields exactly the live set, ascending, values intact.
  std::vector<NodeId> seen;
  for (const auto& [id, v] : map) {
    EXPECT_EQ(v, id.value * 7ull);
    seen.push_back(id);
  }
  std::vector<NodeId> expected = live;
  std::sort(expected.begin(), expected.end());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen, expected);

  // Vacant slots of departed ids stay dead: find() is null for every id
  // that ever lived and departed (spot-check a sample).
  for (std::uint32_t probe = 0; probe < next_id; probe += 97) {
    const bool is_live = std::binary_search(expected.begin(), expected.end(),
                                            NodeId(probe));
    EXPECT_EQ(map.find(NodeId(probe)) != nullptr, is_live)
        << "slot " << probe;
  }
}

TEST(DenseNodeMapStress, IterationCostTracksSlotSpanNotLiveCount) {
  // The quantification behind the ROADMAP note: measure slots scanned per
  // live element before and after churn (a deterministic proxy for the
  // iteration cost; wall-clock is printed informationally, not asserted —
  // CI machines are noisy).
  DenseNodeMap<std::uint64_t> map;
  Rng rng(7);
  std::vector<NodeId> live;
  std::uint32_t next_id = 0;
  for (std::size_t i = 0; i < kLive; ++i) {
    map.emplace(NodeId(next_id), 1);
    live.push_back(NodeId(next_id++));
  }

  const auto time_pass = [&map] {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t sum = 0;
    for (const auto& [id, v] : map) sum += v + id.value;
    const std::chrono::duration<double, std::micro> dt =
        std::chrono::steady_clock::now() - t0;
    return std::pair(sum, dt.count());
  };

  const auto [sum_before, us_before] = time_pass();
  for (std::size_t step = 0; step < kChurnEvents; ++step) {
    const std::size_t idx = rng.pick_index(live.size());
    map.erase(live[idx]);
    live[idx] = NodeId(next_id);
    map.emplace(NodeId(next_id++), 1);
  }
  const auto [sum_after, us_after] = time_pass();

  const double scanned_per_live_before =
      static_cast<double>(kLive) / static_cast<double>(kLive);
  const double scanned_per_live_after =
      static_cast<double>(map.slot_span()) / static_cast<double>(map.size());
  EXPECT_DOUBLE_EQ(scanned_per_live_before, 1.0);
  // 100k churn over 512 live → ~196 slots walked per live element.
  EXPECT_NEAR(scanned_per_live_after, 196.3, 1.0);

  std::printf(
      "dense-map churn: slot_span %zu live %zu (%.1f slots/live); full "
      "iteration %.1f us before churn, %.1f us after\n",
      map.slot_span(), map.size(), scanned_per_live_after, us_before,
      us_after);
  // Keep the optimizer honest about the timed loops.
  EXPECT_GT(sum_before + sum_after, 0u);
}

TEST(DenseNodeMapStress, MaybeCompactBoundsSpanRatioUnderChurn) {
  // The production pattern: erase on departure, then maybe_compact() at
  // the caller's safe point.  Under the same 100k-event churn that drove
  // the baseline to ~196 slots/live, the ratio must stay bounded by the
  // trigger factor — the "100k churn iteration no longer degrades"
  // guarantee the scale lane relies on.
  DenseNodeMap<std::uint64_t> map;
  Rng rng(20260808);
  std::vector<NodeId> live;
  std::uint32_t next_id = 0;
  for (std::size_t i = 0; i < kLive; ++i) {
    map.emplace(NodeId(next_id), next_id * 3ull);
    live.push_back(NodeId(next_id++));
  }

  std::size_t compactions = 0;
  for (std::size_t step = 0; step < kChurnEvents; ++step) {
    const std::size_t idx = rng.pick_index(live.size());
    ASSERT_TRUE(map.erase(live[idx]));
    if (map.maybe_compact()) ++compactions;
    // After the safe-point call the density bound holds unconditionally
    // (span >= kCompactMinSpan here, so the small-span exemption is out).
    ASSERT_LE(map.span_ratio(),
              static_cast<double>(DenseNodeMap<std::uint64_t>::kCompactFactor))
        << "step " << step;
    live[idx] = NodeId(next_id);
    map.emplace(NodeId(next_id), next_id * 3ull);
    ++next_id;
  }

  EXPECT_GT(compactions, 0u);  // the trigger actually fired under churn
  EXPECT_EQ(map.size(), kLive);
  EXPECT_LE(map.slot_span(),
            DenseNodeMap<std::uint64_t>::kCompactFactor * kLive + 1);

  // Compaction moved storage only: the live set, its values, and the
  // ascending iteration order are exactly the baseline's.
  std::vector<NodeId> expected = live;
  std::sort(expected.begin(), expected.end());
  std::vector<NodeId> seen;
  for (const auto& [id, v] : map) {
    EXPECT_EQ(v, id.value * 3ull);
    seen.push_back(id);
  }
  EXPECT_EQ(seen, expected);
}

TEST(DenseNodeMapStress, CompactRestoresFreshIterationDensity) {
  // Churn WITHOUT periodic compaction (the degenerate baseline), then one
  // unconditional compact(): the full-pass cost proxy (slots scanned per
  // live element) must land within 2x of a fresh map's — it lands at
  // exactly 1.0, since every hole is reclaimed.
  DenseNodeMap<std::uint64_t> map;
  Rng rng(11);
  std::vector<NodeId> live;
  std::uint32_t next_id = 0;
  for (std::size_t i = 0; i < kLive; ++i) {
    map.emplace(NodeId(next_id), 1);
    live.push_back(NodeId(next_id++));
  }
  for (std::size_t step = 0; step < kChurnEvents; ++step) {
    const std::size_t idx = rng.pick_index(live.size());
    map.erase(live[idx]);
    live[idx] = NodeId(next_id);
    map.emplace(NodeId(next_id++), 1);
  }
  ASSERT_GT(map.span_ratio(), 100.0);  // degenerate, as the baseline pins

  map.compact();

  const double scanned_per_live =
      static_cast<double>(map.slot_span()) / static_cast<double>(map.size());
  EXPECT_LE(scanned_per_live, 2.0);  // within 2x of a fresh map's 1.0
  EXPECT_DOUBLE_EQ(scanned_per_live, 1.0);
  EXPECT_EQ(map.size(), kLive);
  EXPECT_EQ(map.slot_span(), kLive);

  // The survivors are intact and still ascending.
  std::vector<NodeId> expected = live;
  std::sort(expected.begin(), expected.end());
  std::vector<NodeId> seen;
  for (const auto& [id, v] : map) {
    EXPECT_EQ(v, 1u);
    seen.push_back(id);
  }
  EXPECT_EQ(seen, expected);
}

TEST(DenseNodeMapStress, CompactionReferenceAndHoleSemantics) {
  // The reference-invalidation guard: compact() moves every stored value,
  // so holders must re-look-up afterwards — this pins that the re-lookup
  // finds the right value at the new address, and that both re-emplace
  // paths around a compaction behave as documented.
  DenseNodeMap<std::uint64_t> map;
  for (std::uint32_t id = 0; id < 200; ++id) map.emplace(NodeId(id), id * 9ull);

  // Depart the even ids; id 100's hole is retained (same-id re-emplace
  // stays O(1) and must not grow the span).
  for (std::uint32_t id = 0; id < 200; id += 2) ASSERT_TRUE(map.erase(NodeId(id)));
  const std::size_t span_before = map.slot_span();
  map.emplace(NodeId(100), 900ull);
  EXPECT_EQ(map.slot_span(), span_before);  // reused the retained hole

  const std::uint64_t* stale = map.find(NodeId(101));
  ASSERT_NE(stale, nullptr);
  map.compact();

  // Post-compact re-lookup: every survivor is found with its value; the
  // old address is dead (documented contract; can't be asserted directly,
  // but the re-looked-up pointer observing the right value is the
  // discipline every audited holder follows).
  const std::uint64_t* fresh = map.find(NodeId(101));
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(*fresh, 101 * 9ull);
  EXPECT_EQ(map.at(NodeId(100)), 900ull);
  EXPECT_EQ(map.slot_span(), map.size());
  (void)stale;

  // Out-of-order re-emplace after the compaction dropped the hole (the
  // rare restore-straddles-compaction path): id 42 is smaller than the
  // largest stored id, so this takes the sorted middle insert.  Ascending
  // iteration order and every lookup must survive the slot_of_ fixup.
  map.emplace(NodeId(42), 4242ull);
  EXPECT_EQ(map.at(NodeId(42)), 4242ull);
  std::vector<std::uint32_t> order;
  for (const auto& [id, v] : map) {
    order.push_back(id.value);
    EXPECT_EQ(v, id.value == 42 ? 4242ull
                                : id.value == 100 ? 900ull : id.value * 9ull);
  }
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(map.size(), order.size());
  for (const std::uint32_t id : order) EXPECT_TRUE(map.contains(NodeId(id)));
}

}  // namespace
}  // namespace soc
