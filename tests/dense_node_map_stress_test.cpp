// Long-churn stress for DenseNodeMap: ids are never reused, so a heavily
// churned map accumulates one vacant slot per departed node and iteration
// walks O(max id), not O(live).  This suite pins the exact costs (the
// ROADMAP open item) and the correctness properties that must survive
// them.
//
// Quantified on this container (512 live, 100k churn events):
//   * slot_span grows to live + churn_events (one optional<T> slot per
//     departed id is retained — with T = 8 bytes that is 16 bytes/slot of
//     permanent growth on this ABI);
//   * iteration visits every slot ever allocated: ~196 slots scanned per
//     live element at the end vs 1.0 at the start — the O(max id) cost is
//     real but linear-scan cheap (sub-millisecond per full pass at 100k
//     slots), consistent with ROADMAP's "only bites at --full-scale
//     multi-day churn" judgement.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "src/common/dense_node_map.hpp"
#include "src/common/rng.hpp"

namespace soc {
namespace {

constexpr std::size_t kLive = 512;
constexpr std::size_t kChurnEvents = 100000;

TEST(DenseNodeMapStress, LongChurnAccountingStaysExact) {
  DenseNodeMap<std::uint64_t> map;
  Rng rng(20260729);
  std::vector<NodeId> live;
  std::uint32_t next_id = 0;

  for (std::size_t i = 0; i < kLive; ++i) {
    map.emplace(NodeId(next_id), next_id * 7ull);
    live.push_back(NodeId(next_id));
    ++next_id;
  }
  EXPECT_EQ(map.slot_span(), kLive);  // dense while nothing departed

  for (std::size_t step = 0; step < kChurnEvents; ++step) {
    // Depart a random live node, join a fresh one (stable population).
    const std::size_t idx = rng.pick_index(live.size());
    ASSERT_TRUE(map.erase(live[idx]));
    EXPECT_FALSE(map.contains(live[idx]));
    EXPECT_FALSE(map.erase(live[idx]));  // double-erase is a clean no-op
    live[idx] = NodeId(next_id);
    map.emplace(NodeId(next_id), next_id * 7ull);
    ++next_id;
  }

  // Exact occupancy accounting after heavy churn.
  EXPECT_EQ(map.size(), kLive);
  EXPECT_EQ(map.slot_span(), kLive + kChurnEvents);

  // Iteration yields exactly the live set, ascending, values intact.
  std::vector<NodeId> seen;
  for (const auto& [id, v] : map) {
    EXPECT_EQ(v, id.value * 7ull);
    seen.push_back(id);
  }
  std::vector<NodeId> expected = live;
  std::sort(expected.begin(), expected.end());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen, expected);

  // Vacant slots of departed ids stay dead: find() is null for every id
  // that ever lived and departed (spot-check a sample).
  for (std::uint32_t probe = 0; probe < next_id; probe += 97) {
    const bool is_live = std::binary_search(expected.begin(), expected.end(),
                                            NodeId(probe));
    EXPECT_EQ(map.find(NodeId(probe)) != nullptr, is_live)
        << "slot " << probe;
  }
}

TEST(DenseNodeMapStress, IterationCostTracksSlotSpanNotLiveCount) {
  // The quantification behind the ROADMAP note: measure slots scanned per
  // live element before and after churn (a deterministic proxy for the
  // iteration cost; wall-clock is printed informationally, not asserted —
  // CI machines are noisy).
  DenseNodeMap<std::uint64_t> map;
  Rng rng(7);
  std::vector<NodeId> live;
  std::uint32_t next_id = 0;
  for (std::size_t i = 0; i < kLive; ++i) {
    map.emplace(NodeId(next_id), 1);
    live.push_back(NodeId(next_id++));
  }

  const auto time_pass = [&map] {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t sum = 0;
    for (const auto& [id, v] : map) sum += v + id.value;
    const std::chrono::duration<double, std::micro> dt =
        std::chrono::steady_clock::now() - t0;
    return std::pair(sum, dt.count());
  };

  const auto [sum_before, us_before] = time_pass();
  for (std::size_t step = 0; step < kChurnEvents; ++step) {
    const std::size_t idx = rng.pick_index(live.size());
    map.erase(live[idx]);
    live[idx] = NodeId(next_id);
    map.emplace(NodeId(next_id++), 1);
  }
  const auto [sum_after, us_after] = time_pass();

  const double scanned_per_live_before =
      static_cast<double>(kLive) / static_cast<double>(kLive);
  const double scanned_per_live_after =
      static_cast<double>(map.slot_span()) / static_cast<double>(map.size());
  EXPECT_DOUBLE_EQ(scanned_per_live_before, 1.0);
  // 100k churn over 512 live → ~196 slots walked per live element.
  EXPECT_NEAR(scanned_per_live_after, 196.3, 1.0);

  std::printf(
      "dense-map churn: slot_span %zu live %zu (%.1f slots/live); full "
      "iteration %.1f us before churn, %.1f us after\n",
      map.slot_span(), map.size(), scanned_per_live_after, us_before,
      us_after);
  // Keep the optimizer honest about the timed loops.
  EXPECT_GT(sum_before + sum_after, 0u);
}

}  // namespace
}  // namespace soc
