// Unit coverage for the scenario layer: spec opt-in semantics, randomized
// spec determinism, capacity skew wiring through the workload generator,
// and the engine's population effects (bursts, mass failures, phased
// churn) — each checked against the global invariant set after the run.
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/scenario/engine.hpp"
#include "src/scenario/invariants.hpp"
#include "src/scenario/spec.hpp"
#include "src/workload/generator.hpp"

namespace soc {
namespace {

core::ExperimentConfig base_config() {
  core::ExperimentConfig c;
  c.protocol = core::ProtocolKind::kHidCan;
  c.nodes = 32;
  c.duration = seconds(1800);
  c.sample_step = seconds(600);
  c.seed = 11;
  return c;
}

void expect_invariants_hold(core::Experiment& ex) {
  Rng rng(404);
  const scenario::InvariantReport report =
      scenario::check_invariants(ex, rng);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ScenarioSpec, DefaultIsDisabled) {
  EXPECT_FALSE(core::ExperimentConfig{}.scenario.enabled());
  EXPECT_FALSE(scenario::ScenarioSpec{}.enabled());
  EXPECT_EQ(scenario::ScenarioSpec{}.describe(), "scenario{off}");
}

TEST(ScenarioSpec, RandomSpecIsDeterministicInSeed) {
  Rng a(77);
  Rng b(77);
  for (int i = 0; i < 20; ++i) {
    const auto sa = scenario::random_spec(a, seconds(2000));
    const auto sb = scenario::random_spec(b, seconds(2000));
    EXPECT_EQ(sa.describe(), sb.describe()) << "draw " << i;
  }
}

TEST(ScenarioSpec, ChurnDegreeFollowsPhases) {
  scenario::ScenarioSpec spec;
  spec.phases.push_back({seconds(0), 0.5});
  spec.phases.push_back({seconds(100), 0.0});
  spec.phases.push_back({seconds(200), 1.0});
  EXPECT_DOUBLE_EQ(spec.churn_degree_at(seconds(50)), 0.5);
  EXPECT_DOUBLE_EQ(spec.churn_degree_at(seconds(150)), 0.0);
  EXPECT_DOUBLE_EQ(spec.churn_degree_at(seconds(250)), 1.0);
}

TEST(CapacitySkew, ScalesGeneratedVectorsWithoutPerturbingBaseDraws) {
  workload::NodeGenConfig plain_cfg;
  workload::NodeGenConfig weak_cfg;
  scenario::CapacitySkew skew;
  skew.weak_fraction = 1.0;  // every draw lands in the weak band
  skew.weak_scale = 0.5;
  skew.apply(weak_cfg);
  ASSERT_TRUE(weak_cfg.skewed());
  ASSERT_FALSE(plain_cfg.skewed());

  // For one vector from the same seed, the base table picks are
  // byte-identical and only the final scale differs — the skew roll comes
  // after all base draws.  (The roll does advance the stream, so each
  // comparison starts from a fresh seed.)
  workload::NodeGenerator plain(plain_cfg);
  workload::NodeGenerator weak(weak_cfg);
  for (int i = 0; i < 50; ++i) {
    Rng rng_a(static_cast<std::uint64_t>(i) + 5);
    Rng rng_b(static_cast<std::uint64_t>(i) + 5);
    const ResourceVector p = plain.generate(rng_a);
    const ResourceVector w = weak.generate(rng_b);
    for (std::size_t k = 0; k < p.size(); ++k) {
      EXPECT_DOUBLE_EQ(w[k], 0.5 * p[k]) << "dim " << k << " draw " << i;
    }
  }
}

TEST(ScenarioEngine, JoinBurstGrowsThePopulation) {
  core::ExperimentConfig cfg = base_config();
  scenario::JoinBurst burst;
  burst.at = seconds(600);
  burst.joins = 12;
  burst.spread = seconds(60);
  cfg.scenario.bursts.push_back(burst);

  core::Experiment ex(cfg);
  ex.setup();
  ex.run();
  ASSERT_NE(ex.scenario_engine(), nullptr);
  EXPECT_EQ(ex.scenario_engine()->counters().burst_joins, 12u);
  EXPECT_EQ(ex.alive_nodes(), cfg.nodes + 12);
  expect_invariants_hold(ex);
}

TEST(ScenarioEngine, MassFailureShrinksThePopulation) {
  for (const bool spatial : {false, true}) {
    core::ExperimentConfig cfg = base_config();
    scenario::MassFailure fail;
    fail.at = seconds(900);
    fail.fraction = 0.5;
    fail.spatial = spatial;
    cfg.scenario.failures.push_back(fail);

    core::Experiment ex(cfg);
    ex.setup();
    ex.run();
    ASSERT_NE(ex.scenario_engine(), nullptr);
    EXPECT_EQ(ex.scenario_engine()->counters().failure_kills, cfg.nodes / 2)
        << (spatial ? "spatial" : "cohort");
    EXPECT_EQ(ex.alive_nodes(), cfg.nodes - cfg.nodes / 2);
    expect_invariants_hold(ex);
  }
}

TEST(ScenarioEngine, PhasedChurnRunsOnlyInChurningPhases) {
  core::ExperimentConfig cfg = base_config();
  // Churn hard for the first half, then go calm.
  cfg.scenario.phases.push_back({seconds(0), 1.0});
  cfg.scenario.phases.push_back({cfg.duration / 2, 0.0});

  core::Experiment ex(cfg);
  ex.setup();
  ex.run();
  ASSERT_NE(ex.scenario_engine(), nullptr);
  // dd=1.0 over half the run at one churn window per 3000 s ≈ ~9–10
  // depart+join pairs in expectation; just require the chain clearly ran.
  EXPECT_GT(ex.scenario_engine()->counters().churn_events, 2u);
  // Departures are matched by joins, so the population is stable.
  EXPECT_EQ(ex.alive_nodes(), cfg.nodes);
  expect_invariants_hold(ex);
}

TEST(ScenarioEngine, PartitionThenHealRestoresMembership) {
  core::ExperimentConfig cfg = base_config();
  cfg.topology.lan_size = 8;  // 32 nodes → 4 LANs, so a spatial cut exists
  scenario::Partition part;
  part.at = seconds(600);
  part.fraction = 0.3;
  part.duration = seconds(300);
  cfg.scenario.partitions.push_back(part);

  core::Experiment ex(cfg);
  ex.setup();

  // Mid-partition: the cut is active, every victim is parked by the
  // protocol, and the victims' records elsewhere show up as
  // dead-provider stale debt.
  ex.simulator().run_until(seconds(750));
  ASSERT_TRUE(ex.partition_active());
  const std::vector<NodeId> victims = ex.partitioned_ids();
  ASSERT_FALSE(victims.empty());
  for (const NodeId id : victims) EXPECT_TRUE(ex.is_partitioned(id));
  EXPECT_EQ(ex.protocol().parked_ids(), victims);
  expect_invariants_hold(ex);
  const core::ExperimentResults mid = ex.results();
  EXPECT_GT(mid.stale_records_dead_provider, 0u);

  // After the heal: victims rejoined, nothing stays parked, traffic
  // crosses the old cut again, and the invariant set still holds.
  ex.run();
  ASSERT_NE(ex.scenario_engine(), nullptr);
  EXPECT_EQ(ex.scenario_engine()->counters().partitions_started, 1u);
  EXPECT_EQ(ex.scenario_engine()->counters().heals, 1u);
  EXPECT_EQ(ex.scenario_engine()->counters().partition_detached,
            victims.size());
  EXPECT_FALSE(ex.partition_active());
  EXPECT_TRUE(ex.partitioned_ids().empty());
  EXPECT_TRUE(ex.protocol().parked_ids().empty());
  expect_invariants_hold(ex);
}

TEST(ScenarioEngine, PartitionRunsAreDeterministicAcrossProtocols) {
  for (const core::ProtocolKind proto :
       {core::ProtocolKind::kHidCan, core::ProtocolKind::kKhdnCan,
        core::ProtocolKind::kNewscast}) {
    core::ExperimentConfig cfg = base_config();
    cfg.protocol = proto;
    cfg.topology.lan_size = 8;
    cfg.scenario.partitions.push_back({seconds(500), 0.3, seconds(400)});

    const core::ExperimentResults a = core::run_experiment(cfg);
    const core::ExperimentResults b = core::run_experiment(cfg);
    EXPECT_EQ(a.messages_partitioned, b.messages_partitioned);
    EXPECT_EQ(a.total_messages, b.total_messages);
    EXPECT_EQ(a.events_executed, b.events_executed);
    EXPECT_EQ(a.stale_records_dead_provider, b.stale_records_dead_provider);
    EXPECT_EQ(a.stale_records_misplaced, b.stale_records_misplaced);
  }
}

TEST(ScenarioEngine, ScenarioRunsAreDeterministic) {
  core::ExperimentConfig cfg = base_config();
  cfg.scenario.phases.push_back({seconds(0), 0.8});
  cfg.scenario.bursts.push_back({seconds(300), 8, seconds(120)});
  cfg.scenario.failures.push_back({seconds(1200), 0.3, true});
  cfg.scenario.skew.weak_fraction = 0.3;
  cfg.scenario.skew.weak_scale = 0.6;

  const core::ExperimentResults a = core::run_experiment(cfg);
  const core::ExperimentResults b = core::run_experiment(cfg);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

}  // namespace
}  // namespace soc
