// Tests for the CSV exporter and the 2-D CAN ASCII renderer.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "src/can/ascii_art.hpp"
#include "src/metrics/csv.hpp"

namespace soc {
namespace {

TEST(Csv, HeaderAndRows) {
  metrics::SeriesSample s1;
  s1.hour = 1;
  s1.t_ratio = 0.5;
  s1.f_ratio = 0.25;
  s1.fairness = 0.9;
  metrics::SeriesSample s2 = s1;
  s2.hour = 2;
  s2.t_ratio = 0.6;

  const std::string csv = metrics::series_to_csv(
      {"hid", "sid"}, {{s1, s2}, {s1}});
  std::istringstream is(csv);
  std::string header, row1, row2;
  std::getline(is, header);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(header,
            "hour,hid_t_ratio,hid_f_ratio,hid_fairness,"
            "sid_t_ratio,sid_f_ratio,sid_fairness");
  EXPECT_EQ(row1, "1,0.5,0.25,0.9,0.5,0.25,0.9");
  // The shorter series pads with empty cells.
  EXPECT_EQ(row2, "2,0.6,0.25,0.9,,,");
}

TEST(Csv, WriteFileRoundTrip) {
  const std::string path = "/tmp/soc_csv_test.csv";
  ASSERT_TRUE(metrics::write_file(path, "a,b\n1,2\n"));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "a,b\n1,2\n");
}

TEST(AsciiArt, RendersAllZonesWithLabels) {
  can::CanSpace space(2, Rng(31));
  for (std::uint32_t i = 0; i < 8; ++i) space.join(NodeId(i));
  const std::string art = can::render_ascii(space, 64, 20);
  // Structural smoke checks: borders exist, output is the right shape.
  EXPECT_NE(art.find('+'), std::string::npos);
  EXPECT_NE(art.find('|'), std::string::npos);
  EXPECT_NE(art.find('-'), std::string::npos);
  std::size_t lines = 0;
  for (const char c : art) lines += (c == '\n');
  EXPECT_EQ(lines, 21u);
  // At least some owner labels fit into their zones.
  bool any_digit = false;
  for (const char c : art) any_digit |= (c >= '0' && c <= '9');
  EXPECT_TRUE(any_digit);
}

TEST(AsciiArt, SingleNodeOwnsWholeSquare) {
  can::CanSpace space(2, Rng(32));
  space.join(NodeId(0));
  const std::string art = can::render_ascii(space, 16, 6);
  std::istringstream is(art);
  std::string first;
  std::getline(is, first);
  EXPECT_EQ(first.front(), '+');
  EXPECT_EQ(first.back(), '+');
}

}  // namespace
}  // namespace soc
