// obs::Tracer invariants — the three design constraints from trace.hpp:
//
//   1. Pure observer: a traced experiment takes the exact bit-trajectory
//      of an untraced one.  Fingerprinted the same way as the golden
//      tests (raw double bits included), across all three protocols and
//      the churn scenario, so a tracer hook that draws RNG, schedules an
//      event, or perturbs iteration order fails here before it can move
//      a golden.
//   2. The emitted trace is well-formed Chrome trace-event JSON — checked
//      line-by-line with the same json_mini primitives the repo's other
//      parsers use (no external JSON dependency).
//   3. Span accounting is sane: every completed task/query closes its
//      async span, so 'e' events never outnumber 'b' events and at least
//      one 'e' exists per finished task.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/json_mini.hpp"
#include "src/core/experiment.hpp"
#include "src/obs/trace.hpp"

namespace soc {
namespace {

class Fnv64 {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 0x100000001b3ull;
    }
  }
  void add_double(double d) { add(std::bit_cast<std::uint64_t>(d)); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// Same shape as the golden-trajectory config: small, churned, all
/// leave/rehome/timeout paths exercised.
core::ExperimentConfig small_config(core::ProtocolKind protocol) {
  core::ExperimentConfig c;
  c.protocol = protocol;
  c.nodes = 64;
  c.duration = seconds(3600);
  c.sample_step = seconds(600);
  c.seed = 7;
  c.churn_dynamic_degree = 0.1;
  return c;
}

/// Full-results fingerprint: counters, raw double bits, the figure series,
/// and every deterministic registry sample (names and value bits).
std::uint64_t fingerprint(const core::ExperimentResults& r) {
  Fnv64 h;
  h.add(r.generated);
  h.add(r.finished);
  h.add(r.failed);
  h.add(r.total_messages);
  h.add(r.messages_delivered);
  h.add(r.messages_lost);
  h.add(r.events_executed);
  h.add_double(r.t_ratio);
  h.add_double(r.f_ratio);
  h.add_double(r.fairness);
  h.add_double(r.avg_query_delay_s);
  for (const auto& s : r.series) {
    h.add(s.generated);
    h.add(s.finished);
    h.add(s.failed);
    h.add_double(s.t_ratio);
    h.add_double(s.f_ratio);
    h.add_double(s.fairness);
  }
  for (const auto& m : r.metrics) {
    if (!m.deterministic) continue;  // RSS/time gauges: wall-clock regime
    for (const char ch : m.name) h.add(static_cast<unsigned char>(ch));
    h.add_double(m.value);
  }
  return h.value();
}

/// Run the scenario untraced, then traced, and require bit-identical
/// results.  Returns the traced run's event counts for span accounting.
struct TracedRun {
  std::uint64_t finished = 0;
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t events = 0;
};

TracedRun expect_trace_transparent(core::ProtocolKind protocol) {
  const core::ExperimentConfig config = small_config(protocol);
  const std::uint64_t off = fingerprint(core::run_experiment(config));

  obs::Tracer tracer;
  obs::Tracer* prev = obs::install_tracer(&tracer);
  const core::ExperimentResults traced = core::run_experiment(config);
  obs::install_tracer(prev);

  EXPECT_EQ(fingerprint(traced), off)
      << "tracing perturbed the trajectory (protocol "
      << static_cast<int>(protocol) << ")";
  return TracedRun{traced.finished, tracer.count_ph('b'),
                   tracer.count_ph('e'), tracer.event_count()};
}

TEST(ObsTrace, HidCanTrajectoryIdenticalWithTracingOn) {
  const TracedRun t = expect_trace_transparent(core::ProtocolKind::kHidCan);
  // Span accounting: begins for every task and query, an end for every one
  // that completed (some spans legitimately stay open at cutoff).
  EXPECT_GT(t.ends, 0u);
  EXPECT_GE(t.begins, t.ends);
  EXPECT_GE(t.ends, t.finished) << "every finished task must close its span";
  EXPECT_GT(t.events, t.begins + t.ends) << "marks/instants missing";
}

TEST(ObsTrace, NewscastTrajectoryIdenticalWithTracingOn) {
  const TracedRun t = expect_trace_transparent(core::ProtocolKind::kNewscast);
  EXPECT_GT(t.ends, 0u);
  EXPECT_GE(t.begins, t.ends);
  EXPECT_GE(t.ends, t.finished);
}

TEST(ObsTrace, KhdnCanTrajectoryIdenticalWithTracingOn) {
  const TracedRun t = expect_trace_transparent(core::ProtocolKind::kKhdnCan);
  EXPECT_GT(t.ends, 0u);
  EXPECT_GE(t.begins, t.ends);
  EXPECT_GE(t.ends, t.finished);
}

TEST(ObsTrace, TracedTraceIsDeterministic) {
  // Same seed, same trace bytes: timestamps are simulated time and ids are
  // logical counters, so nothing wall-clock-dependent can leak in.
  const core::ExperimentConfig config =
      small_config(core::ProtocolKind::kHidCan);
  std::string first;
  for (int run = 0; run < 2; ++run) {
    obs::Tracer tracer;
    tracer.set_lane(0, "HID-CAN");
    obs::Tracer* prev = obs::install_tracer(&tracer);
    (void)core::run_experiment(config);
    obs::install_tracer(prev);
    if (run == 0) {
      first = tracer.to_json();
    } else {
      EXPECT_EQ(tracer.to_json(), first);
    }
  }
}

TEST(ObsTrace, JsonIsWellFormedLineByLine) {
  obs::Tracer tracer;
  obs::Tracer* prev = obs::install_tracer(&tracer);
  tracer.set_lane(3, "lane-three");
  const core::ExperimentResults r =
      core::run_experiment(small_config(core::ProtocolKind::kHidCan));
  obs::install_tracer(prev);
  ASSERT_GT(r.finished, 0u);
  ASSERT_GT(tracer.event_count(), 0u);

  const std::string json = tracer.to_json();
  const std::string head = "{\"traceEvents\": [\n";
  const std::string tail = "\n]}\n";
  ASSERT_EQ(json.rfind(head, 0), 0u);
  ASSERT_GE(json.size(), head.size() + tail.size());
  ASSERT_EQ(json.substr(json.size() - tail.size()), tail);

  // One JSON object per line, ','-separated; each must expose its fields
  // to the same bounded lookups every parser in this repo relies on.
  const std::string body =
      json.substr(head.size(), json.size() - head.size() - tail.size());
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t nl = body.find('\n', start);
    if (nl == std::string::npos) nl = body.size();
    std::string line = body.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == ',') line.pop_back();
    ASSERT_FALSE(line.empty());
    ++lines;
    ASSERT_EQ(line.front(), '{') << line;
    ASSERT_EQ(line.back(), '}') << line;
    const auto ph = json_mini::find_string(line, "ph", 0);
    ASSERT_TRUE(ph.has_value()) << line;
    ASSERT_EQ(ph->size(), 1u) << line;
    ASSERT_TRUE(json_mini::find_number(line, "pid", 0).has_value()) << line;
    if (*ph == "M") continue;  // process_name metadata: no timestamp
    EXPECT_TRUE(json_mini::find_number(line, "ts", 0).has_value()) << line;
    EXPECT_TRUE(json_mini::find_string(line, "cat", 0).has_value()) << line;
    EXPECT_TRUE(json_mini::find_string(line, "name", 0).has_value()) << line;
    if (*ph == "b" || *ph == "e" || *ph == "n") {
      EXPECT_TRUE(json_mini::find_string(line, "id", 0).has_value()) << line;
    }
    if (*ph == "X") {
      EXPECT_TRUE(json_mini::find_number(line, "dur", 0).has_value()) << line;
    }
  }
  // Every buffered event plus the one lane-metadata record made it out.
  EXPECT_EQ(lines, tracer.event_count() + 1);
}

TEST(ObsTrace, GlobalSinkInstallsAndRestores) {
  ASSERT_EQ(obs::tracer(), nullptr) << "tests must leave the sink clean";
  obs::Tracer a;
  obs::Tracer b;
  EXPECT_EQ(obs::install_tracer(&a), nullptr);
  EXPECT_EQ(obs::tracer(), &a);
  EXPECT_EQ(obs::install_tracer(&b), &a);
  EXPECT_EQ(obs::tracer(), &b);
  EXPECT_EQ(obs::install_tracer(nullptr), &b);
  EXPECT_EQ(obs::tracer(), nullptr);
}

TEST(ObsTrace, PhaseCountsPartitionEventCount) {
  obs::Tracer t;
  t.begin("c", "n", 1, 10);
  t.mark("c", "m", 1, 20);
  t.end("c", "n", 1, 30);
  t.instant("p", "phase", 40);
  t.instant("p", "phase", 50, "nodes", 64);
  t.complete("w", "walk", 10, 25, "hops", 3);
  EXPECT_EQ(t.count_ph('b'), 1u);
  EXPECT_EQ(t.count_ph('n'), 1u);
  EXPECT_EQ(t.count_ph('e'), 1u);
  EXPECT_EQ(t.count_ph('i'), 2u);
  EXPECT_EQ(t.count_ph('X'), 1u);
  EXPECT_EQ(t.event_count(), 6u);
}

}  // namespace
}  // namespace soc
