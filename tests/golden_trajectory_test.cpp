// Golden-trajectory regression for storage/routing refactors.
//
// Perf refactors in this repo must be *trajectory-preserving*: a same-seed
// run takes bit-identical routes and produces bit-identical figure series.
// The fingerprints live in tests/golden_fingerprints.txt (source tree, path
// baked in via SOC_GOLDEN_FILE); any refactor that changes a route choice,
// an RNG draw order, or a metric bit changes a fingerprint and fails here.
//
// When a PR changes behavior *intentionally* (new protocol logic, new
// tie-break, a new candidate order), the re-baseline is mechanical, not
// hand-edited:
//
//   cmake --build build --target regen_goldens
//
// which runs `golden_trajectory_test --regen` (rewrites the fingerprint
// file, printing old -> new per key) and regenerates
// bench/BENCH_baseline.json in the same step — both anchors always move in
// the same commit.  Run the suite twice afterwards to confirm the new
// trajectory is stable.  The protocol is documented in README.
//
// The fingerprints hash raw double bits, so they assume the reference
// toolchain (same libm/compiler/flags).  On a different toolchain a
// last-ulp libm difference can legitimately shift one churn delay; if all
// tests fail on an otherwise-green tree after a toolchain change,
// regenerate rather than debug.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/can/space.hpp"
#include "src/core/experiment.hpp"

namespace soc {
namespace {

class Fnv64 {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 0x100000001b3ull;
    }
  }
  void add_double(double d) { add(std::bit_cast<std::uint64_t>(d)); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

// Routes, next-hop choices and directional neighbor sets over a churned
// 2-d space.  Pins the greedy tie-break chain (containment, box distance,
// center distance, id) and the adjacency metadata.
std::uint64_t route_fingerprint() {
  can::CanSpace space(2, Rng(42));
  Rng rng(43);
  std::vector<NodeId> live;
  std::uint32_t next = 0;
  for (int i = 0; i < 48; ++i) {
    space.join(NodeId(next));
    live.push_back(NodeId(next++));
  }
  Fnv64 h;
  for (int step = 0; step < 300; ++step) {
    if (live.size() < 8 || rng.chance(0.55)) {
      space.join(NodeId(next));
      live.push_back(NodeId(next++));
    } else {
      const std::size_t idx = rng.pick_index(live.size());
      space.leave(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    // Every 7th step, fingerprint a route and the directional partition of
    // a sampled member.
    if (step % 7 != 0) continue;
    const can::Point target{rng.uniform(), rng.uniform()};
    const NodeId start = space.random_member(rng);
    h.add(start.value);
    for (const NodeId hop : space.route(start, target)) h.add(hop.value);
    const NodeId sample = space.random_member(rng);
    for (std::size_t d = 0; d < 2; ++d) {
      for (const can::Direction dir :
           {can::Direction::kNegative, can::Direction::kPositive}) {
        for (const NodeId n : space.directional_neighbors(sample, d, dir)) {
          h.add(n.value);
        }
      }
    }
  }
  return h.value();
}

core::ExperimentConfig small_config(core::ProtocolKind protocol) {
  core::ExperimentConfig c;
  c.protocol = protocol;
  c.nodes = 64;
  c.duration = seconds(3600);
  c.sample_step = seconds(600);
  c.seed = 7;
  c.churn_dynamic_degree = 0.1;  // exercise leave/rehome/timeout paths
  return c;
}

std::uint64_t experiment_fingerprint(core::ProtocolKind protocol) {
  const core::ExperimentResults r = core::run_experiment(small_config(protocol));
  Fnv64 h;
  h.add(r.generated);
  h.add(r.finished);
  h.add(r.failed);
  h.add(r.total_messages);
  h.add(r.messages_delivered);
  h.add(r.messages_lost);
  h.add(r.events_executed);
  h.add_double(r.t_ratio);
  h.add_double(r.f_ratio);
  h.add_double(r.fairness);
  h.add_double(r.avg_query_delay_s);
  for (const auto& s : r.series) {
    h.add(s.generated);
    h.add(s.finished);
    h.add(s.failed);
    h.add_double(s.t_ratio);
    h.add_double(s.f_ratio);
    h.add_double(s.fairness);
  }
  return h.value();
}

/// The fingerprint registry: the single list --regen and the tests share,
/// so a new golden can never be asserted without being regenerable.
struct Golden {
  const char* key;
  std::uint64_t (*compute)();
};

constexpr Golden kGoldens[] = {
    {"routes", &route_fingerprint},
    {"hid_can", [] { return experiment_fingerprint(core::ProtocolKind::kHidCan); }},
    {"newscast",
     [] { return experiment_fingerprint(core::ProtocolKind::kNewscast); }},
    {"khdn_can",
     [] { return experiment_fingerprint(core::ProtocolKind::kKhdnCan); }},
};

/// Parse "key value" lines ('#' starts a comment).  Returns false when the
/// file is unreadable.
bool load_goldens(const std::string& path,
                  std::vector<std::pair<std::string, std::uint64_t>>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string key;
    std::uint64_t value = 0;
    if (row >> key >> value) out.emplace_back(std::move(key), value);
  }
  return true;
}

std::uint64_t expected(const char* key) {
  std::vector<std::pair<std::string, std::uint64_t>> goldens;
  const bool loaded = load_goldens(SOC_GOLDEN_FILE, goldens);
  EXPECT_TRUE(loaded) << "cannot read " << SOC_GOLDEN_FILE
                      << " — run `cmake --build build --target regen_goldens`";
  for (const auto& [k, v] : goldens) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "no golden named '" << key << "' in " << SOC_GOLDEN_FILE
                << " — run `cmake --build build --target regen_goldens`";
  return 0;
}

TEST(GoldenTrajectory, CanRoutesBitIdentical) {
  const std::uint64_t actual = route_fingerprint();
  EXPECT_EQ(actual, expected("routes")) << "actual: " << actual;
}

TEST(GoldenTrajectory, HidCanSeriesBitIdentical) {
  const std::uint64_t actual =
      experiment_fingerprint(core::ProtocolKind::kHidCan);
  EXPECT_EQ(actual, expected("hid_can")) << "actual: " << actual;
}

TEST(GoldenTrajectory, NewscastSeriesBitIdentical) {
  const std::uint64_t actual =
      experiment_fingerprint(core::ProtocolKind::kNewscast);
  EXPECT_EQ(actual, expected("newscast")) << "actual: " << actual;
}

TEST(GoldenTrajectory, KhdnCanSeriesBitIdentical) {
  const std::uint64_t actual =
      experiment_fingerprint(core::ProtocolKind::kKhdnCan);
  EXPECT_EQ(actual, expected("khdn_can")) << "actual: " << actual;
}

/// --regen: recompute every registered fingerprint and rewrite the golden
/// file, printing old -> new so the intentional change is reviewable.
int regen_goldens() {
  std::vector<std::pair<std::string, std::uint64_t>> old;
  load_goldens(SOC_GOLDEN_FILE, old);  // missing file: all keys print (new)
  const auto previous = [&](std::string_view key) -> const std::uint64_t* {
    for (const auto& [k, v] : old) {
      if (k == key) return &v;
    }
    return nullptr;
  };

  std::ofstream out(SOC_GOLDEN_FILE, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "regen: cannot write %s\n", SOC_GOLDEN_FILE);
    return 1;
  }
  out << "# Golden trajectory fingerprints (FNV-1a over counters and raw\n"
         "# double bits; reference toolchain only).  Do not edit by hand:\n"
         "# regenerate with `cmake --build build --target regen_goldens`,\n"
         "# which also rewrites bench/BENCH_baseline.json in the same step.\n";
  for (const Golden& g : kGoldens) {
    const std::uint64_t value = g.compute();
    out << g.key << ' ' << value << '\n';
    const std::uint64_t* was = previous(g.key);
    if (was == nullptr) {
      std::printf("regen: %-10s (new)      -> %llu\n", g.key,
                  static_cast<unsigned long long>(value));
    } else if (*was != value) {
      std::printf("regen: %-10s %llu -> %llu\n", g.key,
                  static_cast<unsigned long long>(*was),
                  static_cast<unsigned long long>(value));
    } else {
      std::printf("regen: %-10s unchanged (%llu)\n", g.key,
                  static_cast<unsigned long long>(value));
    }
  }
  std::printf("regen: wrote %s\n", SOC_GOLDEN_FILE);
  return 0;
}

}  // namespace
}  // namespace soc

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--regen") return soc::regen_goldens();
  }
  return RUN_ALL_TESTS();
}
