// Golden-trajectory regression for storage/routing refactors.
//
// The dense-node-storage rewrite (slab pools, DenseNodeMap, cached CAN
// adjacency with pruned greedy scans) must be *trajectory-preserving*: a
// same-seed run takes bit-identical routes and produces bit-identical
// figure series.  These fingerprints were captured from the PR-1
// implementation (unordered_map storage, uncached adjacency) on the
// reference toolchain; any refactor that changes a route choice, an RNG
// draw order, or a metric bit changes a fingerprint and fails here.
//
// If a future PR changes behavior *intentionally* (new protocol logic, new
// tie-break), regenerate the constants: run the suite, and copy the actual
// fingerprint each failing EXPECT_EQ prints (the "Which is:" value and the
// hex stream message) into the kGolden* constants below — regenerating
// bench/BENCH_baseline.json in the same PR.
//
// The fingerprints hash raw double bits, so they assume the reference
// toolchain (same libm/compiler/flags).  On a different toolchain a
// last-ulp libm difference can legitimately shift one churn delay; if all
// three tests fail on an otherwise-green tree after a toolchain change,
// regenerate rather than debug.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "src/can/space.hpp"
#include "src/core/experiment.hpp"

namespace soc {
namespace {

class Fnv64 {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 0x100000001b3ull;
    }
  }
  void add_double(double d) { add(std::bit_cast<std::uint64_t>(d)); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

// Routes, next-hop choices and directional neighbor sets over a churned
// 2-d space.  Pins the greedy tie-break chain (containment, box distance,
// center distance, id) and the adjacency metadata.
std::uint64_t route_fingerprint() {
  can::CanSpace space(2, Rng(42));
  Rng rng(43);
  std::vector<NodeId> live;
  std::uint32_t next = 0;
  for (int i = 0; i < 48; ++i) {
    space.join(NodeId(next));
    live.push_back(NodeId(next++));
  }
  Fnv64 h;
  for (int step = 0; step < 300; ++step) {
    if (live.size() < 8 || rng.chance(0.55)) {
      space.join(NodeId(next));
      live.push_back(NodeId(next++));
    } else {
      const std::size_t idx = rng.pick_index(live.size());
      space.leave(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    // Every 7th step, fingerprint a route and the directional partition of
    // a sampled member.
    if (step % 7 != 0) continue;
    const can::Point target{rng.uniform(), rng.uniform()};
    const NodeId start = space.random_member(rng);
    h.add(start.value);
    for (const NodeId hop : space.route(start, target)) h.add(hop.value);
    const NodeId sample = space.random_member(rng);
    for (std::size_t d = 0; d < 2; ++d) {
      for (const can::Direction dir :
           {can::Direction::kNegative, can::Direction::kPositive}) {
        for (const NodeId n : space.directional_neighbors(sample, d, dir)) {
          h.add(n.value);
        }
      }
    }
  }
  return h.value();
}

core::ExperimentConfig small_config(core::ProtocolKind protocol) {
  core::ExperimentConfig c;
  c.protocol = protocol;
  c.nodes = 64;
  c.duration = seconds(3600);
  c.sample_step = seconds(600);
  c.seed = 7;
  c.churn_dynamic_degree = 0.1;  // exercise leave/rehome/timeout paths
  return c;
}

std::uint64_t experiment_fingerprint(core::ProtocolKind protocol) {
  const core::ExperimentResults r = core::run_experiment(small_config(protocol));
  Fnv64 h;
  h.add(r.generated);
  h.add(r.finished);
  h.add(r.failed);
  h.add(r.total_messages);
  h.add(r.messages_delivered);
  h.add(r.messages_lost);
  h.add(r.events_executed);
  h.add_double(r.t_ratio);
  h.add_double(r.f_ratio);
  h.add_double(r.fairness);
  h.add_double(r.avg_query_delay_s);
  for (const auto& s : r.series) {
    h.add(s.generated);
    h.add(s.finished);
    h.add(s.failed);
    h.add_double(s.t_ratio);
    h.add_double(s.f_ratio);
    h.add_double(s.fairness);
  }
  return h.value();
}

// Captured from the PR-1 implementation (pre-dense-storage).
constexpr std::uint64_t kGoldenRoutes = 9398799750731397732ull;
constexpr std::uint64_t kGoldenHidCan = 11745447543902692920ull;
constexpr std::uint64_t kGoldenNewscast = 10852525670100304651ull;

TEST(GoldenTrajectory, CanRoutesBitIdenticalToPr1) {
  EXPECT_EQ(route_fingerprint(), kGoldenRoutes)
      << std::hex << route_fingerprint();
}

TEST(GoldenTrajectory, HidCanSeriesBitIdenticalToPr1) {
  EXPECT_EQ(experiment_fingerprint(core::ProtocolKind::kHidCan), kGoldenHidCan)
      << std::hex << experiment_fingerprint(core::ProtocolKind::kHidCan);
}

TEST(GoldenTrajectory, NewscastSeriesBitIdenticalToPr1) {
  EXPECT_EQ(experiment_fingerprint(core::ProtocolKind::kNewscast),
            kGoldenNewscast)
      << std::hex
      << experiment_fingerprint(core::ProtocolKind::kNewscast);
}

}  // namespace
}  // namespace soc
