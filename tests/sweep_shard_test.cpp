// Sweep sharding invariants (src/sweep/): the partition is exhaustive,
// disjoint and stable under grid reordering; cell seeds are content-
// derived; shard results round-trip through their JSON files; merging is
// idempotent and independent of shard layout; and the resume set shrinks
// exactly as shard results land.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>

#include "src/common/stats.hpp"
#include "src/sweep/io.hpp"
#include "src/sweep/merge.hpp"
#include "src/sweep/runner.hpp"

namespace soc::sweep {
namespace {

namespace fs = std::filesystem;

/// The 24-cell mini-grid used across these tests: 3 protocols × 2 λ ×
/// 2 populations × 2 repeats, sized so a full in-process run stays well
/// under a second.
SweepSpec mini_spec() {
  SweepSpec spec;
  spec.protocols = {core::ProtocolKind::kHidCan, core::ProtocolKind::kNewscast,
                    core::ProtocolKind::kKhdnCan};
  spec.lambdas = {0.3, 0.5};
  spec.node_counts = {24, 32};
  spec.scenarios = {"none"};
  spec.repeats = 2;
  spec.base_seed = 7;
  spec.hours = 0.05;
  return spec;
}

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    path_ = (fs::temp_directory_path() /
             (std::string("soc_sweep_") + tag + "_" +
              std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SweepSpec, EnumerationCoversGridWithUniqueContentDerivedCells) {
  const SweepSpec spec = mini_spec();
  const std::vector<SweepCell> cells = spec.enumerate();
  EXPECT_EQ(cells.size(), spec.cell_count());
  EXPECT_EQ(cells.size(), 24u);

  std::set<std::string> keys;
  std::set<std::uint64_t> seeds;
  for (const SweepCell& c : cells) {
    keys.insert(c.key);
    seeds.insert(c.config.seed);
    EXPECT_NE(c.config.seed, 0u);
    EXPECT_EQ(c.key.rfind(c.group, 0), 0u) << "key starts with group";
  }
  EXPECT_EQ(keys.size(), cells.size()) << "cell keys are unique";
  EXPECT_EQ(seeds.size(), cells.size()) << "cell seeds are unique";
}

TEST(SweepSpec, ReorderedAxesProduceIdenticalCells) {
  const SweepSpec spec = mini_spec();
  SweepSpec shuffled = spec;
  std::reverse(shuffled.protocols.begin(), shuffled.protocols.end());
  std::reverse(shuffled.lambdas.begin(), shuffled.lambdas.end());
  std::reverse(shuffled.node_counts.begin(), shuffled.node_counts.end());
  // Duplicates collapse too.
  shuffled.lambdas.push_back(spec.lambdas[0]);

  EXPECT_EQ(spec.describe(), shuffled.describe());
  EXPECT_EQ(spec.fingerprint(), shuffled.fingerprint());

  const auto a = spec.enumerate();
  const auto b = shuffled.enumerate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].config.seed, b[i].config.seed);
  }
}

TEST(SweepShard, PartitionIsExhaustiveDisjointAndStable) {
  const SweepSpec spec = mini_spec();
  const auto cells = spec.enumerate();
  for (const std::size_t n : {1u, 4u, 7u, 64u}) {
    const std::vector<Shard> shards = partition(spec, n);
    ASSERT_EQ(shards.size(), n);
    std::map<std::string, std::size_t> where;
    std::size_t total = 0;
    for (const Shard& s : shards) {
      for (const SweepCell& c : s.cells) {
        EXPECT_TRUE(where.emplace(c.key, s.id).second)
            << c.key << " assigned twice";
        EXPECT_EQ(shard_of(c, n), s.id);
        ++total;
      }
    }
    EXPECT_EQ(total, cells.size()) << "every cell lands in some shard";
    // Stability: a reordered spec partitions identically.
    SweepSpec reordered = spec;
    std::reverse(reordered.protocols.begin(), reordered.protocols.end());
    for (const Shard& s : partition(reordered, n)) {
      for (const SweepCell& c : s.cells) {
        EXPECT_EQ(where.at(c.key), s.id);
      }
    }
  }
}

TEST(SweepShard, ManifestRoundTrips) {
  const TempDir dir("manifest");
  Manifest m;
  m.spec_fingerprint = 0xabcdef0123456789ull;
  m.spec = mini_spec().describe();
  m.shards_total = 3;
  m.shards = {{0, 5, "done"}, {1, 0, "pending"}, {2, 19, "failed"}};
  ASSERT_TRUE(write_manifest(dir.path(), m));
  const auto back = read_manifest(dir.path());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->spec_fingerprint, m.spec_fingerprint);
  EXPECT_EQ(back->spec, m.spec);
  EXPECT_EQ(back->shards_total, m.shards_total);
  ASSERT_EQ(back->shards.size(), m.shards.size());
  for (std::size_t i = 0; i < m.shards.size(); ++i) {
    EXPECT_EQ(back->shards[i].id, m.shards[i].id);
    EXPECT_EQ(back->shards[i].cells, m.shards[i].cells);
    EXPECT_EQ(back->shards[i].state, m.shards[i].state);
  }
}

TEST(SweepRunner, ShardResultRoundTripsThroughJson) {
  const TempDir dir("roundtrip");
  SweepSpec spec = mini_spec();
  // One protocol is enough for an IO round-trip; keep it quick.
  spec.protocols = {core::ProtocolKind::kNewscast};
  spec.repeats = 1;
  const std::vector<Shard> shards = partition(spec, 2);
  const std::uint64_t fp = spec.fingerprint();
  for (const Shard& shard : shards) {
    const ShardResult result = run_shard(shard, fp, shards.size());
    ASSERT_TRUE(write_shard_result(dir.path(), result));
    const auto back = read_shard_result(shard_path(dir.path(), shard.id));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->spec_fingerprint, fp);
    EXPECT_EQ(back->shard_id, shard.id);
    EXPECT_EQ(back->shards_total, shards.size());
    ASSERT_EQ(back->cells.size(), result.cells.size());
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
      const CellResult& a = result.cells[i];
      const CellResult& b = back->cells[i];
      EXPECT_EQ(a.key, b.key);
      EXPECT_EQ(a.group, b.group);
      EXPECT_EQ(a.seed, b.seed);
      // %.17g round-trips doubles bit-exactly.
      EXPECT_EQ(a.t_ratio, b.t_ratio);
      EXPECT_EQ(a.f_ratio, b.f_ratio);
      EXPECT_EQ(a.fairness, b.fairness);
      EXPECT_EQ(a.msgs_per_node, b.msgs_per_node);
      EXPECT_EQ(a.avg_query_delay_s, b.avg_query_delay_s);
      EXPECT_EQ(a.generated, b.generated);
      EXPECT_EQ(a.events, b.events);
      EXPECT_EQ(a.messages, b.messages);
    }
    EXPECT_TRUE(shard_complete(dir.path(), shard, fp, shards.size()));
  }
}

TEST(SweepRunner, ResumeSetShrinksAsShardResultsLand) {
  const TempDir dir("resume");
  const SweepSpec spec = mini_spec();
  const std::size_t n = 4;
  const std::vector<Shard> shards = partition(spec, n);
  const std::uint64_t fp = spec.fingerprint();

  auto pending = pending_shards(dir.path(), shards, fp);
  EXPECT_EQ(pending.size(), n) << "nothing done yet";

  // Simulate the pre-crash state: shards 0 and 2 completed, the
  // orchestrator died before the rest.
  for (const std::size_t sid : {0u, 2u}) {
    ASSERT_TRUE(write_shard_result(dir.path(),
                                   run_shard(shards[sid], fp, n)));
  }
  pending = pending_shards(dir.path(), shards, fp);
  std::vector<std::size_t> expect{1, 3};
  EXPECT_EQ(pending, expect) << "only unfinished shards pend";

  // A result for the wrong sweep must not count as done.
  ASSERT_TRUE(write_shard_result(dir.path(), run_shard(shards[1], fp ^ 1, n)));
  pending = pending_shards(dir.path(), shards, fp);
  EXPECT_EQ(pending, expect) << "foreign-fingerprint result is not complete";

  // Finish the rest through the in-process orchestrator: it must skip 0/2
  // and rerun exactly 1/3 (the foreign file on 1 gets overwritten).
  OrchestrateOptions options;
  options.dir = dir.path();
  const auto outcome = orchestrate(spec, n, options);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->skipped, 2u);
  EXPECT_EQ(outcome->ran, 2u);
  EXPECT_EQ(outcome->failed, 0u);
  EXPECT_TRUE(pending_shards(dir.path(), shards, fp).empty());

  // Idempotent re-run: everything now resumes as done.
  const auto again = orchestrate(spec, n, options);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->skipped, n);
  EXPECT_EQ(again->ran, 0u);

  const auto manifest = read_manifest(dir.path());
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->spec_fingerprint, fp);
  for (const ShardStatus& s : manifest->shards) EXPECT_EQ(s.state, "done");
}

TEST(SweepRunner, OrchestrateRefusesForeignDirectory) {
  const TempDir dir("foreign");
  const SweepSpec spec = mini_spec();
  OrchestrateOptions options;
  options.dir = dir.path();
  Manifest other;
  other.spec_fingerprint = spec.fingerprint() ^ 0xdead;
  other.spec = "sweep{other}";
  other.shards_total = 2;
  ASSERT_TRUE(write_manifest(dir.path(), other));
  EXPECT_FALSE(orchestrate(spec, 2, options).has_value());
}

TEST(SweepMerge, MergeIsIdempotentAndShardLayoutIndependent) {
  const SweepSpec spec = mini_spec();
  const std::uint64_t fp = spec.fingerprint();

  // Run the same grid under two different shard geometries.
  const auto run_all = [&](const std::string& dir, std::size_t n) {
    for (const Shard& shard : partition(spec, n)) {
      ASSERT_TRUE(write_shard_result(dir, run_shard(shard, fp, n)));
    }
  };
  const TempDir dir3("merge3");
  const TempDir dir5("merge5");
  run_all(dir3.path(), 3);
  run_all(dir5.path(), 5);

  std::string err;
  const auto merged3 = merge_shards(dir3.path(), spec, 3, &err);
  ASSERT_TRUE(merged3.has_value()) << err;
  const auto merged5 = merge_shards(dir5.path(), spec, 5, &err);
  ASSERT_TRUE(merged5.has_value()) << err;

  ASSERT_EQ(merged3->cells.size(), spec.cell_count());
  ASSERT_EQ(merged5->cells.size(), spec.cell_count());
  for (std::size_t i = 0; i < merged3->cells.size(); ++i) {
    EXPECT_EQ(merged3->cells[i].key, merged5->cells[i].key);
    EXPECT_EQ(merged3->cells[i].events, merged5->cells[i].events);
    EXPECT_EQ(merged3->cells[i].t_ratio, merged5->cells[i].t_ratio);
  }
  ASSERT_EQ(merged3->groups.size(), merged5->groups.size());

  // Written reports: identical bytes across layouts (shards_total is part
  // of the schema header, so compare the 3-way report against itself
  // re-merged — idempotence — and the group payload across layouts).
  const std::string path_a = dir3.path() + "/merged_a.json";
  const std::string path_b = dir3.path() + "/merged_b.json";
  ASSERT_TRUE(write_merged_report(path_a, spec, *merged3));
  ASSERT_TRUE(write_merged_report(path_b, spec, *merged3));
  EXPECT_EQ(read_file(path_a), read_file(path_b)) << "merge is idempotent";

  for (std::size_t g = 0; g < merged3->groups.size(); ++g) {
    const GroupStats& a = merged3->groups[g];
    const GroupStats& b = merged5->groups[g];
    EXPECT_EQ(a.group, b.group);
    EXPECT_EQ(a.repeats, b.repeats);
    EXPECT_EQ(a.t_ratio_mean, b.t_ratio_mean);
    EXPECT_EQ(a.t_ratio_median, b.t_ratio_median);
    EXPECT_EQ(a.t_ratio_ci95, b.t_ratio_ci95);
    EXPECT_EQ(a.f_ratio_mean, b.f_ratio_mean);
    EXPECT_EQ(a.fairness_mean, b.fairness_mean);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.messages, b.messages);
  }

  // An incomplete shard set must refuse to merge, not under-report.
  std::remove(shard_path(dir5.path(), 1).c_str());
  EXPECT_FALSE(merge_shards(dir5.path(), spec, 5, &err).has_value());
  EXPECT_NE(err.find("shard 1"), std::string::npos) << err;
}

TEST(SweepSpec, ChurnAndVariantAxesEnumerate) {
  SweepSpec spec = mini_spec();
  spec.protocols = {core::ProtocolKind::kHidCan};
  spec.lambdas = {0.5};
  spec.node_counts = {24};
  spec.churns = {0.0, 0.5};
  spec.variants = {"base", "delta4", "checkpoint"};
  spec.repeats = 1;
  const auto cells = spec.enumerate();
  ASSERT_EQ(cells.size(), 6u);

  std::set<std::string> keys;
  for (const SweepCell& c : cells) keys.insert(c.key);
  EXPECT_EQ(keys.size(), cells.size());
  // The axes land in the config, not just the key.
  bool saw_churn = false, saw_delta = false, saw_checkpoint = false;
  for (const SweepCell& c : cells) {
    if (c.config.churn_dynamic_degree == 0.5) saw_churn = true;
    if (c.config.want_results == 4) saw_delta = true;
    if (c.config.churn_task_policy == core::ChurnTaskPolicy::kCheckpointRestart)
      saw_checkpoint = true;
  }
  EXPECT_TRUE(saw_churn);
  EXPECT_TRUE(saw_delta);
  EXPECT_TRUE(saw_checkpoint);
}

TEST(SweepSpec, UnknownVariantIsRejected) {
  core::ExperimentConfig config;
  EXPECT_FALSE(apply_variant("no-such-variant", config));
  EXPECT_TRUE(apply_variant("base", config));
}

TEST(SweepPresets, EveryPresetResolvesAndEnumerates) {
  ASSERT_FALSE(sweep_presets().empty());
  std::set<std::string> names;
  for (const SweepPreset& p : sweep_presets()) {
    EXPECT_TRUE(names.insert(p.name).second) << p.name << " duplicated";
    const SweepPreset* found = preset_by_name(p.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &p);
    EXPECT_GT(p.spec.cell_count(), 0u) << p.name;
    // Presets must enumerate cleanly (valid protocol/scenario/variant
    // names throughout — enumerate() would die on an unknown variant).
    EXPECT_EQ(p.spec.enumerate().size(), p.spec.cell_count()) << p.name;
  }
  EXPECT_EQ(preset_by_name("no-such-figure"), nullptr);

  // Spot-check the headline grids against the paper.
  const SweepPreset* fig6 = preset_by_name("fig6");
  ASSERT_NE(fig6, nullptr);
  EXPECT_EQ(fig6->spec.protocols.size(), 6u);
  EXPECT_TRUE(fig6->render_series);
  const SweepPreset* table3 = preset_by_name("table3");
  ASSERT_NE(table3, nullptr);
  EXPECT_EQ(table3->spec.node_counts.size(), 6u);
  EXPECT_FALSE(table3->render_series);
  const SweepPreset* fig8 = preset_by_name("fig8");
  ASSERT_NE(fig8, nullptr);
  EXPECT_EQ(fig8->spec.churns.size(), 5u);
}

TEST(SweepRunner, SeriesRoundTripsThroughShardFile) {
  const TempDir dir("series");
  ShardResult result;
  result.spec_fingerprint = 0x1234;
  result.shard_id = 0;
  result.shards_total = 1;
  CellResult c;
  c.key = "HID-CAN/l0.5/n24/none/c0/base/r0";
  c.group = "HID-CAN/l0.5/n24/none/c0/base";
  c.seed = 42;
  c.t_ratio = 0.25;
  for (int h = 1; h <= 3; ++h) {
    metrics::SeriesSample s;
    s.hour = h;
    s.generated = static_cast<std::uint64_t>(10 * h);
    s.finished = static_cast<std::uint64_t>(4 * h);
    s.failed = static_cast<std::uint64_t>(h);
    s.t_ratio = 0.4 + 0.01 * h;
    s.f_ratio = 0.1 / h;
    s.fairness = 1.0 - 0.001 * h;
    c.series.push_back(s);
  }
  result.cells.push_back(c);
  // A second cell without series: the parser must not steal the first
  // cell's samples across the block boundary.
  CellResult empty = c;
  empty.key = "HID-CAN/l0.5/n24/none/c0/base/r1";
  empty.series.clear();
  result.cells.push_back(empty);

  ASSERT_TRUE(write_shard_result(dir.path(), result));
  const auto back = read_shard_result(shard_path(dir.path(), 0));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->cells.size(), 2u);
  ASSERT_EQ(back->cells[0].series.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const metrics::SeriesSample& a = c.series[i];
    const metrics::SeriesSample& b = back->cells[0].series[i];
    EXPECT_EQ(a.hour, b.hour);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.finished, b.finished);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.t_ratio, b.t_ratio);   // %.17g: bit-exact
    EXPECT_EQ(a.f_ratio, b.f_ratio);
    EXPECT_EQ(a.fairness, b.fairness);
  }
  EXPECT_TRUE(back->cells[1].series.empty());
  // The scalar fields still parse to the scalar values, not a series
  // sample's recurrence of the same key names.
  EXPECT_EQ(back->cells[0].t_ratio, 0.25);
  EXPECT_EQ(back->cells[0].generated, 0u);
}

TEST(SweepRunner, EscapedLabelsRoundTripThroughShardFile) {
  const TempDir dir("escape");
  ShardResult result;
  result.spec_fingerprint = 0x5678;
  result.shard_id = 0;
  result.shards_total = 1;
  CellResult c;
  c.key = "weird\"proto\\x/l0.5\tn24\n/r0";  // every escape class at once
  c.group = "weird\"proto\\x";
  c.t_ratio = 0.5;
  result.cells.push_back(c);

  ASSERT_TRUE(write_shard_result(dir.path(), result));
  const auto back = read_shard_result(shard_path(dir.path(), 0));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->cells.size(), 1u);
  EXPECT_EQ(back->cells[0].key, c.key);
  EXPECT_EQ(back->cells[0].group, c.group);
}

TEST(SweepRunner, RaggedSeriesRoundTripWithoutPadding) {
  const TempDir dir("gseries");
  ShardResult result;
  result.spec_fingerprint = 0x9abc;
  result.shard_id = 0;
  result.shards_total = 1;
  // Two repeats of one group; the second repeat's series is one hour
  // shorter.  The shard file must preserve the ragged lengths — padding a
  // short series with zeros (the old print_series bug) would fabricate a
  // sample the run never produced.
  for (int rep = 0; rep < 2; ++rep) {
    CellResult c;
    c.key = "P/l0.5/n24/none/c0/base/r" + std::to_string(rep);
    c.group = "P/l0.5/n24/none/c0/base";
    const int hours = rep == 0 ? 3 : 2;
    for (int h = 1; h <= hours; ++h) {
      metrics::SeriesSample s;
      s.hour = h;
      s.t_ratio = rep == 0 ? 0.5 : 0.7;
      s.fairness = 1.0;
      c.series.push_back(s);
    }
    result.cells.push_back(c);
  }
  ASSERT_TRUE(write_shard_result(dir.path(), result));
  const auto back = read_shard_result(shard_path(dir.path(), 0));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->cells.size(), 2u);
  EXPECT_EQ(back->cells[0].series.size(), 3u);
  EXPECT_EQ(back->cells[1].series.size(), 2u);
}

TEST(SweepMerge, MergedGroupSeriesFromRealRun) {
  const TempDir dir("realseries");
  SweepSpec spec = mini_spec();
  spec.protocols = {core::ProtocolKind::kNewscast};
  spec.lambdas = {0.5};
  spec.node_counts = {24};
  spec.repeats = 2;
  spec.hours = 2.0;  // two hourly samples
  const std::uint64_t fp = spec.fingerprint();
  for (const Shard& shard : partition(spec, 2)) {
    ASSERT_TRUE(write_shard_result(dir.path(), run_shard(shard, fp, 2)));
  }
  std::string err;
  const auto merged = merge_shards(dir.path(), spec, 2, &err);
  ASSERT_TRUE(merged.has_value()) << err;
  ASSERT_EQ(merged->groups.size(), 1u);
  const GroupStats& g = merged->groups[0];
  ASSERT_EQ(g.series.size(), 2u);
  EXPECT_EQ(g.series[0].hour, 1.0);
  EXPECT_EQ(g.series[1].hour, 2.0);
  for (const GroupSeriesPoint& p : g.series) {
    EXPECT_EQ(p.repeats, 2u) << "both repeats sample every hour";
  }
  // The group curve is the mean of the two repeats' curves.
  RunningStats t0;
  for (const CellResult& c : merged->cells) {
    ASSERT_EQ(c.series.size(), 2u);
    t0.add(c.series[0].t_ratio);
  }
  EXPECT_EQ(g.series[0].t_ratio_mean, t0.mean());
  // And the merged report keeps its series after the write.
  const std::string path = dir.path() + "/merged.json";
  ASSERT_TRUE(write_merged_report(path, spec, *merged));
  const auto text = read_file(path);
  ASSERT_TRUE(text.has_value());
  EXPECT_NE(text->find("\"series\": ["), std::string::npos);
}

TEST(SweepSpec, ServingAxisEnumeratesAndKeepsOffKeysStable) {
  SweepSpec base = mini_spec();
  base.protocols = {core::ProtocolKind::kHidCan};
  base.lambdas = {0.5};
  base.node_counts = {24};
  base.repeats = 1;

  // The implicit default and an explicit {"off"} are the same spec: same
  // describe() (no sv=[] segment), same fingerprint, same keys/seeds —
  // pre-serving manifests and shard files stay resumable.
  SweepSpec off = base;
  off.servings = {"off"};
  EXPECT_EQ(base.describe(), off.describe());
  EXPECT_EQ(base.fingerprint(), off.fingerprint());
  EXPECT_EQ(base.describe().find("sv=["), std::string::npos);

  SweepSpec sv = base;
  sv.servings = {"off", "closed", "closed+zipf"};
  EXPECT_NE(sv.describe().find("sv=["), std::string::npos);
  EXPECT_NE(sv.fingerprint(), base.fingerprint());
  const auto cells = sv.enumerate();
  ASSERT_EQ(cells.size(), 3u);
  ASSERT_EQ(cells.size(), sv.cell_count());

  std::map<std::string, const SweepCell*> by_key;
  for (const SweepCell& c : cells) by_key[c.key] = &c;
  // "off" cells keep the pre-serving key shape (no suffix) and config.
  const auto* off_cell = by_key.at("HID-CAN/l0.5/n24/none/c0/base/r0");
  EXPECT_FALSE(off_cell->config.serving.enabled());
  EXPECT_EQ(off_cell->config.seed,
            base.enumerate()[0].config.seed)
      << "off cell seed unchanged by the new axis";
  // Serving cells carry the axis in key and config.
  const auto* closed = by_key.at("HID-CAN/l0.5/n24/none/c0/base/closed/r0");
  EXPECT_TRUE(closed->config.serving.closed_loop());
  EXPECT_FALSE(closed->config.serving.skewed());
  const auto* both =
      by_key.at("HID-CAN/l0.5/n24/none/c0/base/closed+zipf/r0");
  EXPECT_TRUE(both->config.serving.closed_loop());
  EXPECT_TRUE(both->config.serving.skewed());
}

TEST(SweepPresets, ServingPresetSpansTheLoopAndSkewAxes) {
  const SweepPreset* serving = preset_by_name("serving");
  ASSERT_NE(serving, nullptr);
  EXPECT_EQ(serving->spec.servings.size(), 4u);
  EXPECT_EQ(serving->spec.lambdas.size(), 2u);
  EXPECT_EQ(serving->spec.enumerate().size(), serving->spec.cell_count());
}

TEST(SweepRunner, LatencyHistogramsRoundTripThroughShardFile) {
  const TempDir dir("latency");
  ShardResult result;
  result.spec_fingerprint = 0xfeed;
  result.shard_id = 0;
  result.shards_total = 1;
  CellResult c;
  c.key = "HID-CAN/l0.5/n24/none/c0/base/closed/r0";
  c.group = "HID-CAN/l0.5/n24/none/c0/base/closed";
  c.t_ratio = 0.5;
  for (std::uint64_t us : {0ull, 7ull, 31ull, 32ull, 4096ull, 5'000'000ull}) {
    c.latency_first_result.record_us(us);
    c.latency_finish.record_us(us * 2 + 1);
  }
  // Second cell with empty histograms: must come back empty, not steal the
  // first cell's encoding across the block boundary.
  CellResult empty = c;
  empty.key = "HID-CAN/l0.5/n24/none/c0/base/closed/r1";
  empty.latency_first_result = metrics::LatencyHistogram{};
  empty.latency_finish = metrics::LatencyHistogram{};
  result.cells.push_back(c);
  result.cells.push_back(empty);

  ASSERT_TRUE(write_shard_result(dir.path(), result));
  const auto back = read_shard_result(shard_path(dir.path(), 0));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->cells.size(), 2u);
  EXPECT_EQ(back->cells[0].latency_first_result.encode(),
            c.latency_first_result.encode());
  EXPECT_EQ(back->cells[0].latency_finish.encode(),
            c.latency_finish.encode());
  EXPECT_EQ(back->cells[0].latency_first_result.sum_us(),
            c.latency_first_result.sum_us());
  EXPECT_EQ(back->cells[1].latency_first_result.total(), 0u);
  EXPECT_EQ(back->cells[1].latency_finish.total(), 0u);

  // A corrupted encoding invalidates the whole shard file (forcing a
  // re-run) instead of silently merging an empty histogram.
  const auto text = read_file(shard_path(dir.path(), 0));
  ASSERT_TRUE(text.has_value());
  std::string bad = *text;
  const std::size_t at = bad.find("\"lat_first_b\": \"");
  ASSERT_NE(at, std::string::npos);
  bad.insert(at + std::strlen("\"lat_first_b\": \""), "garbage;");
  ASSERT_TRUE(write_atomic(shard_path(dir.path(), 0), bad));
  EXPECT_FALSE(read_shard_result(shard_path(dir.path(), 0)).has_value());
}

TEST(SweepRunner, HostileCellKeysCannotForgeLatencyOrSeriesFields) {
  // A cell key carrying literal JSON ("hour": …, "lat_first_b": …) must be
  // escaped on write and must not fabricate series samples or histograms
  // on read — the regression guard for the bounded first-match parser.
  const TempDir dir("hostile");
  ShardResult result;
  result.spec_fingerprint = 0xbad;
  result.shard_id = 0;
  result.shards_total = 1;
  CellResult c;
  c.key = "evil\", \"hour\": 99, \"lat_first_b\": \"1;0:1\", \"x\": \"/r0";
  c.group = "evil\", \"hour\": 99, \"lat_first_b\": \"1;0:1\", \"x\": \"";
  c.t_ratio = 0.25;
  result.cells.push_back(c);

  ASSERT_TRUE(write_shard_result(dir.path(), result));
  const auto back = read_shard_result(shard_path(dir.path(), 0));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->cells.size(), 1u);
  EXPECT_EQ(back->cells[0].key, c.key);
  EXPECT_EQ(back->cells[0].t_ratio, 0.25);
  EXPECT_TRUE(back->cells[0].series.empty())
      << "escaped key text must not parse as a series sample";
  EXPECT_EQ(back->cells[0].latency_first_result.total(), 0u)
      << "escaped key text must not parse as a histogram";
}

TEST(SweepMerge, LatencyFoldsBucketWiseAcrossShardLayouts) {
  // Real serving cells across two shard geometries: the folded group
  // histogram (and thus every percentile) must be layout-independent, and
  // must equal the bucket-wise sum of the per-cell histograms.
  SweepSpec spec = mini_spec();
  spec.protocols = {core::ProtocolKind::kNewscast};
  spec.lambdas = {0.5};
  spec.node_counts = {24};
  spec.servings = {"closed"};
  spec.repeats = 2;
  spec.hours = 0.3;
  const std::uint64_t fp = spec.fingerprint();

  const TempDir dir2("lat2");
  const TempDir dir5("lat5");
  for (const Shard& shard : partition(spec, 2)) {
    ASSERT_TRUE(write_shard_result(dir2.path(), run_shard(shard, fp, 2)));
  }
  for (const Shard& shard : partition(spec, 5)) {
    ASSERT_TRUE(write_shard_result(dir5.path(), run_shard(shard, fp, 5)));
  }
  std::string err;
  const auto a = merge_shards(dir2.path(), spec, 2, &err);
  ASSERT_TRUE(a.has_value()) << err;
  const auto b = merge_shards(dir5.path(), spec, 5, &err);
  ASSERT_TRUE(b.has_value()) << err;
  ASSERT_EQ(a->groups.size(), 1u);
  ASSERT_EQ(b->groups.size(), 1u);
  EXPECT_EQ(a->groups[0].latency_finish.encode(),
            b->groups[0].latency_finish.encode());
  EXPECT_EQ(a->groups[0].latency_first_result.encode(),
            b->groups[0].latency_first_result.encode());
  EXPECT_EQ(a->groups[0].latency_finish.percentile_s(99.0),
            b->groups[0].latency_finish.percentile_s(99.0));
  EXPECT_EQ(a->groups[0].latency_first_p99_ci95,
            b->groups[0].latency_first_p99_ci95);

  // The group fold equals summing the cells by hand.
  metrics::LatencyHistogram manual;
  for (const CellResult& cell : a->cells) manual.merge(cell.latency_finish);
  EXPECT_EQ(manual.encode(), a->groups[0].latency_finish.encode());

  // And the written report carries the latency block.
  const std::string path = dir2.path() + "/merged.json";
  ASSERT_TRUE(write_merged_report(path, spec, *a));
  const auto text = read_file(path);
  ASSERT_TRUE(text.has_value());
  EXPECT_NE(text->find("\"latency\": { \"first_result\":"), std::string::npos);
  EXPECT_NE(text->find("\"p999_s\":"), std::string::npos);
  EXPECT_NE(text->find("\"p99_ci95\":"), std::string::npos);
}

TEST(SweepMerge, GroupStatsMatchHandComputedCi) {
  const TempDir dir("ci");
  SweepSpec spec = mini_spec();
  spec.protocols = {core::ProtocolKind::kNewscast};
  spec.lambdas = {0.5};
  spec.node_counts = {24};
  spec.repeats = 4;
  const std::uint64_t fp = spec.fingerprint();
  for (const Shard& shard : partition(spec, 2)) {
    ASSERT_TRUE(write_shard_result(dir.path(), run_shard(shard, fp, 2)));
  }
  std::string err;
  const auto merged = merge_shards(dir.path(), spec, 2, &err);
  ASSERT_TRUE(merged.has_value()) << err;
  ASSERT_EQ(merged->groups.size(), 1u);
  const GroupStats& g = merged->groups[0];
  ASSERT_EQ(g.repeats, 4u);

  RunningStats t;
  std::vector<double> ts;
  for (const CellResult& c : merged->cells) {
    t.add(c.t_ratio);
    ts.push_back(c.t_ratio);
  }
  EXPECT_EQ(g.t_ratio_mean, t.mean());
  EXPECT_EQ(g.t_ratio_median, median(ts));
  EXPECT_EQ(g.t_ratio_ci95, mean_ci95_halfwidth(4, t.stddev()));
  // dof=3 → t=3.182; spot-check the table against the closed form.
  EXPECT_NEAR(mean_ci95_halfwidth(4, t.stddev()),
              3.182 * t.stddev() / 2.0, 1e-12);
}

}  // namespace
}  // namespace soc::sweep
