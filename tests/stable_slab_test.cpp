// StableSlab: address stability across growth (the property PsmScheduler's
// self-capturing closures require), construct/destroy accounting, and the
// deterministic LIFO slot-reuse order.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/stable_slab.hpp"

namespace soc {
namespace {

struct Tracked {
  explicit Tracked(std::uint64_t v) : value(v) { ++live_count; }
  ~Tracked() { --live_count; }
  Tracked(const Tracked&) = delete;
  Tracked& operator=(const Tracked&) = delete;
  std::uint64_t value;
  static int live_count;
};
int Tracked::live_count = 0;

TEST(StableSlab, AddressesSurviveGrowth) {
  StableSlab<std::uint64_t, 4> slab;  // tiny chunks: force many of them
  std::vector<std::uint32_t> slots;
  std::vector<const std::uint64_t*> addrs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint32_t s = slab.alloc(i * 17);
    slots.push_back(s);
    addrs.push_back(&slab[s]);
  }
  // Every address taken before any growth still points at its value.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(addrs[i], &slab[slots[i]]);
    EXPECT_EQ(*addrs[i], i * 17);
  }
  EXPECT_EQ(slab.live(), 1000u);
  EXPECT_GE(slab.capacity_slots(), 1000u);
}

TEST(StableSlab, ReleaseDestroysAndReusesLifo) {
  Tracked::live_count = 0;
  {
    StableSlab<Tracked, 8> slab;
    const std::uint32_t a = slab.alloc(1);
    const std::uint32_t b = slab.alloc(2);
    const std::uint32_t c = slab.alloc(3);
    EXPECT_EQ(Tracked::live_count, 3);

    slab.release(b);
    slab.release(a);
    EXPECT_EQ(Tracked::live_count, 1);
    EXPECT_EQ(slab.live(), 1u);

    // LIFO reuse: the most recently released slot comes back first —
    // deterministic, so cold-slot assignment cannot depend on timing.
    EXPECT_EQ(slab.alloc(4), a);
    EXPECT_EQ(slab.alloc(5), b);
    EXPECT_EQ(slab[a].value, 4u);
    EXPECT_EQ(slab[b].value, 5u);
    EXPECT_EQ(slab[c].value, 3u);
    EXPECT_EQ(Tracked::live_count, 3);

    // Fresh allocations continue at the chunk tail, not past it.
    const std::uint32_t d = slab.alloc(6);
    EXPECT_EQ(d, 3u);
  }
  // Destructor destroys every still-occupied slot, and only those.
  EXPECT_EQ(Tracked::live_count, 0);
}

TEST(StableSlab, HonorsChunkGranularity) {
  StableSlab<int, 16> slab;
  EXPECT_EQ(slab.capacity_slots(), 0u);
  for (int i = 0; i < 17; ++i) slab.alloc(i);
  EXPECT_EQ(slab.capacity_slots(), 32u);  // two 16-slot chunks
  EXPECT_EQ(slab.live(), 17u);
}

}  // namespace
}  // namespace soc
