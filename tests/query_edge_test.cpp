// Edge cases of the query pipeline: corner duty nodes, timeouts, mid-query
// churn, concurrent queries, and the virtual-dimension / SoS protocol
// variants end to end.
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/core/pidcan_protocol.hpp"
#include "src/index/inscan.hpp"
#include "src/net/topology.hpp"
#include "src/psm/task.hpp"
#include "src/query/query_engine.hpp"
#include "src/sim/simulator.hpp"

namespace soc {
namespace {

// Minimal harness around IndexSystem + QueryEngine with settable
// availabilities.
struct Harness {
  Harness(std::size_t n, std::size_t dims, std::uint64_t seed)
      : sim(seed), topo(net::TopologyConfig{}, Rng(seed + 1)),
        bus(sim, topo), space(dims, Rng(seed + 2)),
        cmax(ResourceVector::filled(dims, 10.0)),
        index(sim, bus, space, index::InscanConfig{}, Rng(seed + 3)),
        engine(index, query::QueryConfig{}), rng(seed + 4) {
    index.attach_to_space();
    index.set_availability_provider(
        [this](NodeId id) -> std::optional<index::Record> {
          const auto it = avail.find(id);
          if (it == avail.end()) return std::nullopt;
          index::Record r;
          r.provider = id;
          r.availability = it->second;
          r.location = can::Point::normalized(it->second, cmax);
          r.published_at = sim.now();
          r.expires_at = sim.now() + index.config().record_ttl;
          return r;
        });
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = topo.add_host();
      space.join(id);
      ResourceVector a(dims);
      for (std::size_t d = 0; d < dims; ++d) a[d] = rng.uniform(0.0, 10.0);
      avail[id] = a;
      index.add_node(id);
      ids.push_back(id);
    }
  }

  sim::Simulator sim;
  net::Topology topo;
  net::MessageBus bus;
  can::CanSpace space;
  ResourceVector cmax;
  index::IndexSystem index;
  query::QueryEngine engine;
  Rng rng;
  std::unordered_map<NodeId, ResourceVector> avail;
  std::vector<NodeId> ids;
};

TEST(QueryEdge, CornerDutyNodeWithNoPositiveNeighbors) {
  Harness h(32, 2, 51);
  h.sim.run_until(seconds(1200));
  // A demand at the very top corner: its duty node owns the corner zone
  // and has no positive neighbors on either axis — the query must still
  // resolve (via the duty node's own cache) rather than hang.
  const ResourceVector demand{9.99, 9.99};
  bool done = false;
  std::vector<query::Candidate> out;
  h.engine.submit_k(h.ids[0], demand,
                    can::Point::normalized(demand, h.cmax), 1,
                    [&](std::vector<query::Candidate> f) {
                      out = std::move(f);
                      done = true;
                    });
  h.sim.run_until(h.sim.now() + seconds(200));
  EXPECT_TRUE(done);
  for (const auto& c : out) {
    EXPECT_TRUE(c.availability.dominates(demand));
  }
}

TEST(QueryEdge, CallbackFiresExactlyOnceOnTimeout) {
  Harness h(16, 2, 53);
  // No warm-up: caches are cold, PILists empty — the query either ends
  // early (agents exhausted) or times out; the callback must fire once.
  int calls = 0;
  h.engine.submit_k(h.ids[0], ResourceVector{9.0, 9.0},
                    can::Point{0.9, 0.9}, 1,
                    [&](std::vector<query::Candidate>) { ++calls; });
  h.sim.run_until(h.sim.now() + seconds(600));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(h.engine.stats().submitted, 1u);
  EXPECT_EQ(h.engine.stats().satisfied + h.engine.stats().partial +
                h.engine.stats().failed,
            1u);
}

TEST(QueryEdge, ManyConcurrentQueriesAllResolve) {
  Harness h(64, 2, 55);
  h.sim.run_until(seconds(1500));
  int done = 0;
  const int kQueries = 50;
  for (int i = 0; i < kQueries; ++i) {
    const ResourceVector demand{h.rng.uniform(0.0, 9.0),
                                h.rng.uniform(0.0, 9.0)};
    h.engine.submit_k(h.ids[h.rng.pick_index(h.ids.size())], demand,
                      can::Point::normalized(demand, h.cmax), 1,
                      [&](std::vector<query::Candidate>) { ++done; });
  }
  h.sim.run_until(h.sim.now() + seconds(300));
  EXPECT_EQ(done, kQueries);
}

TEST(QueryEdge, RequesterChurnMidQueryStillTerminates) {
  Harness h(48, 2, 57);
  h.sim.run_until(seconds(1200));
  bool done = false;
  const NodeId requester = h.ids[5];
  h.engine.submit_k(requester, ResourceVector{5.0, 5.0},
                    can::Point{0.5, 0.5}, 1,
                    [&](std::vector<query::Candidate>) { done = true; });
  // The requester departs immediately; found-notices to it are lost, but
  // the engine-side timeout must still close the query.
  h.index.remove_node(requester);
  h.space.leave(requester);
  h.avail.erase(requester);
  h.sim.run_until(h.sim.now() + seconds(600));
  EXPECT_TRUE(done);
}

TEST(QueryEdge, VisitedNodeCountIsBounded) {
  Harness h(64, 2, 59);
  h.sim.run_until(seconds(1500));
  for (int i = 0; i < 20; ++i) {
    const ResourceVector demand{h.rng.uniform(0.0, 9.0),
                                h.rng.uniform(0.0, 9.0)};
    h.engine.submit_k(h.ids[h.rng.pick_index(h.ids.size())], demand,
                      can::Point::normalized(demand, h.cmax), 1,
                      [](std::vector<query::Candidate>) {});
  }
  h.sim.run_until(h.sim.now() + seconds(400));
  // Single-message queries touch a handful of nodes, never a flood: the
  // mean must stay far below the population.
  EXPECT_LT(h.engine.stats().visited_nodes.mean(), 40.0);
  EXPECT_GT(h.engine.stats().visited_nodes.mean(), 0.0);
}

TEST(QueryEdge, VirtualDimensionProtocolEndToEnd) {
  sim::Simulator sim(61);
  net::Topology topo(net::TopologyConfig{}, Rng(62));
  net::MessageBus bus(sim, topo);
  core::PidCanOptions opt;
  opt.virtual_dimension = true;
  opt.inscan.diffusion = index::DiffusionMethod::kSpreading;  // paper's VD
  // This test exercises the virtual-dimension mechanics (6-D space, random
  // virtual coordinates), not SID's diffusion weakness — use the cascade
  // scope so index coverage isn't the bottleneck.
  opt.inscan.spreading_scope = index::SpreadingScope::kCascade;
  const ResourceVector cmax{25.6, 80, 10, 240, 4096};
  core::PidCanProtocol proto(sim, bus, cmax, opt, Rng(63));
  EXPECT_EQ(proto.space().dims(), psm::kDims + 1);  // +1 virtual dim
  EXPECT_EQ(proto.name(), "SID-CAN+VD");

  proto.set_availability_source(
      [](NodeId) -> std::optional<ResourceVector> {
        return ResourceVector{10.0, 40.0, 8.0, 120.0, 2048.0};
      });
  for (std::uint32_t i = 0; i < 48; ++i) {
    topo.add_host();
    proto.on_join(NodeId(i));
  }
  sim.run_until(seconds(1500));

  int done = 0, hits = 0;
  for (int i = 0; i < 10; ++i) {
    proto.query(NodeId(static_cast<std::uint32_t>(i)),
                ResourceVector{5.0, 20.0, 4.0, 60.0, 1024.0}, 1,
                [&](std::vector<core::Discovered> found) {
                  ++done;
                  hits += !found.empty();
                });
  }
  sim.run_until(sim.now() + seconds(400));
  EXPECT_EQ(done, 10);
  EXPECT_GE(hits, 5);  // homogeneous availabilities: most should match
}

TEST(QueryEdge, SosQueriesStillSatisfyOriginalDemand) {
  sim::Simulator sim(65);
  net::Topology topo(net::TopologyConfig{}, Rng(66));
  net::MessageBus bus(sim, topo);
  core::PidCanOptions opt;
  opt.slack_on_submission = true;
  opt.inscan.diffusion = index::DiffusionMethod::kHopping;
  const ResourceVector cmax{25.6, 80, 10, 240, 4096};
  core::PidCanProtocol proto(sim, bus, cmax, opt, Rng(67));
  EXPECT_EQ(proto.name(), "HID-CAN+SoS");

  Rng arng(68);
  std::unordered_map<std::uint32_t, ResourceVector> avail;
  proto.set_availability_source(
      [&](NodeId id) -> std::optional<ResourceVector> {
        return avail.at(id.value);
      });
  for (std::uint32_t i = 0; i < 64; ++i) {
    topo.add_host();
    avail[i] = ResourceVector{arng.uniform(1, 25.6), arng.uniform(10, 80),
                              arng.uniform(1, 10), arng.uniform(10, 240),
                              arng.uniform(256, 4096)};
    proto.on_join(NodeId(i));
  }
  sim.run_until(seconds(1500));

  const ResourceVector demand{4.0, 15.0, 2.0, 30.0, 512.0};
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    proto.query(NodeId(static_cast<std::uint32_t>(i)), demand, 1,
                [&](std::vector<core::Discovered> found) {
                  ++done;
                  // Whatever SoS skewed to, returned candidates must still
                  // dominate the *original* expectation.
                  for (const auto& c : found) {
                    EXPECT_TRUE(c.availability.dominates(demand));
                  }
                });
  }
  sim.run_until(sim.now() + seconds(600));
  EXPECT_EQ(done, 10);
}

}  // namespace
}  // namespace soc
