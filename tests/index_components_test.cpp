// Unit tests for the index-layer building blocks: RecordStore (cache γ),
// PIList, and the 2^k index-node tables.
#include <gtest/gtest.h>

#include "src/index/index_table.hpp"
#include "src/index/pi_list.hpp"
#include "src/index/record.hpp"

namespace soc::index {
namespace {

Record make_record(std::uint32_t provider, std::initializer_list<double> a,
                   SimTime published, SimTime ttl = seconds(600)) {
  Record r;
  r.provider = NodeId(provider);
  r.availability = ResourceVector(a);
  r.location = can::Point(r.availability.size());
  for (std::size_t i = 0; i < r.availability.size(); ++i) {
    r.location[i] = r.availability[i] / 10.0;
  }
  r.published_at = published;
  r.expires_at = published + ttl;
  return r;
}

TEST(RecordStore, PutOverwritesPerProvider) {
  RecordStore store;
  store.put(make_record(1, {5.0, 5.0}, 0));
  store.put(make_record(1, {2.0, 2.0}, seconds(10)));
  EXPECT_EQ(store.size(), 1u);
  const auto all = store.all_live(seconds(20));
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].availability, (ResourceVector{2.0, 2.0}));
}

TEST(RecordStore, TtlExpiryHidesAndPrunes) {
  RecordStore store;
  store.put(make_record(1, {5.0, 5.0}, 0, seconds(100)));
  EXPECT_TRUE(store.has_live_records(seconds(99)));
  EXPECT_FALSE(store.has_live_records(seconds(100)));
  EXPECT_EQ(store.live_count(seconds(100)), 0u);
  EXPECT_EQ(store.size(), 1u);  // still stored
  store.prune(seconds(100));
  EXPECT_EQ(store.size(), 0u);
}

TEST(RecordStore, QualifiedFiltersByDominance) {
  RecordStore store;
  store.put(make_record(1, {5.0, 5.0}, 0));
  store.put(make_record(2, {9.0, 2.0}, 0));
  store.put(make_record(3, {9.0, 9.0}, 0));
  const auto q = store.qualified(ResourceVector{4.0, 4.0}, seconds(1));
  ASSERT_EQ(q.size(), 2u);
  for (const auto& r : q) {
    EXPECT_TRUE(r.availability.dominates(ResourceVector{4.0, 4.0}));
  }
}

TEST(RecordStore, EraseRemovesProvider) {
  RecordStore store;
  store.put(make_record(1, {5.0, 5.0}, 0));
  EXPECT_TRUE(store.erase(NodeId(1)));
  EXPECT_FALSE(store.erase(NodeId(1)));
  EXPECT_EQ(store.size(), 0u);
}

TEST(RecordStore, ExtractInZoneMovesOnlyContained) {
  RecordStore store;
  store.put(make_record(1, {2.0, 2.0}, 0));  // location (0.2, 0.2)
  store.put(make_record(2, {8.0, 8.0}, 0));  // location (0.8, 0.8)
  const can::Zone lower(can::Point{0.0, 0.0}, can::Point{0.5, 0.5});
  const auto moved = store.extract_in_zone(lower, seconds(1));
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0].provider, NodeId(1));
  EXPECT_EQ(store.size(), 1u);
}

TEST(RecordStore, ExtractAllEmptiesStore) {
  RecordStore store;
  store.put(make_record(1, {2.0, 2.0}, 0));
  store.put(make_record(2, {8.0, 8.0}, 0));
  EXPECT_EQ(store.extract_all().size(), 2u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(PiList, AddRefreshAndExpiry) {
  PiList pi(4, seconds(100));
  pi.add(NodeId(1), 0);
  pi.add(NodeId(2), seconds(50));
  EXPECT_EQ(pi.live_count(seconds(99)), 2u);
  EXPECT_EQ(pi.live_count(seconds(120)), 1u);  // node 1 expired
  pi.add(NodeId(1), seconds(120));             // re-heard
  EXPECT_TRUE(pi.contains_live(NodeId(1), seconds(121)));
}

TEST(PiList, CapacityEvictsStalest) {
  PiList pi(3, seconds(1000));
  pi.add(NodeId(1), seconds(1));
  pi.add(NodeId(2), seconds(2));
  pi.add(NodeId(3), seconds(3));
  pi.add(NodeId(4), seconds(4));  // evicts node 1 (stalest)
  EXPECT_FALSE(pi.contains_live(NodeId(1), seconds(5)));
  EXPECT_TRUE(pi.contains_live(NodeId(2), seconds(5)));
  EXPECT_TRUE(pi.contains_live(NodeId(4), seconds(5)));
}

TEST(PiList, SampleReturnsDistinctLiveSubset) {
  PiList pi(16, seconds(1000));
  for (std::uint32_t i = 0; i < 10; ++i) pi.add(NodeId(i), seconds(i));
  Rng rng(5);
  const auto s = pi.sample(4, seconds(20), rng);
  EXPECT_EQ(s.size(), 4u);
  std::set<NodeId> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 4u);
  // Asking for more than live returns all live.
  EXPECT_EQ(pi.sample(50, seconds(20), rng).size(), 10u);
}

TEST(PiList, PruneDropsExpired) {
  PiList pi(8, seconds(10));
  pi.add(NodeId(1), 0);
  pi.add(NodeId(2), seconds(100));
  pi.prune(seconds(100));
  EXPECT_FALSE(pi.contains_live(NodeId(1), seconds(100)));
  EXPECT_TRUE(pi.contains_live(NodeId(2), seconds(100)));
}

TEST(IndexTable, StoreAndPickByLevel) {
  IndexTable tbl(2, 2, seconds(1000));
  tbl.store(0, can::Direction::kNegative, 0, NodeId(1), 0);
  tbl.store(0, can::Direction::kNegative, 1, NodeId(2), 0);
  tbl.store(0, can::Direction::kNegative, 2, NodeId(3), 0);
  Rng rng(7);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 100; ++i) {
    const auto pick = tbl.pick(0, can::Direction::kNegative,
                               IndexSelectPolicy::kRandomPowerLevel,
                               seconds(1), rng);
    ASSERT_TRUE(pick.has_value());
    seen.insert(pick->value);
  }
  EXPECT_EQ(seen.size(), 3u);  // all levels get picked eventually
}

TEST(IndexTable, NearestOnlyPolicyPicksLowestLevel) {
  IndexTable tbl(1, 2, seconds(1000));
  tbl.store(0, can::Direction::kNegative, 2, NodeId(3), 0);
  tbl.store(0, can::Direction::kNegative, 0, NodeId(1), 0);
  Rng rng(9);
  const auto pick = tbl.pick(0, can::Direction::kNegative,
                             IndexSelectPolicy::kNearestOnly, seconds(1), rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, NodeId(1));
}

TEST(IndexTable, EmptyTrackReturnsNullopt) {
  IndexTable tbl(2, 2, seconds(1000));
  Rng rng(11);
  EXPECT_FALSE(tbl.pick(1, can::Direction::kPositive,
                        IndexSelectPolicy::kUniformEntry, 0, rng)
                   .has_value());
}

TEST(IndexTable, EntriesExpire) {
  IndexTable tbl(1, 2, seconds(100));
  tbl.store(0, can::Direction::kNegative, 0, NodeId(1), 0);
  Rng rng(13);
  EXPECT_TRUE(tbl.pick(0, can::Direction::kNegative,
                       IndexSelectPolicy::kUniformEntry, seconds(99), rng)
                  .has_value());
  EXPECT_FALSE(tbl.pick(0, can::Direction::kNegative,
                        IndexSelectPolicy::kUniformEntry, seconds(100), rng)
                   .has_value());
}

TEST(IndexTable, PerLevelSampleCapEvictsStalest) {
  IndexTable tbl(1, 2, seconds(1000));
  tbl.store(0, can::Direction::kNegative, 0, NodeId(1), seconds(1));
  tbl.store(0, can::Direction::kNegative, 0, NodeId(2), seconds(2));
  tbl.store(0, can::Direction::kNegative, 0, NodeId(3), seconds(3));
  const auto live =
      tbl.live_entries(0, can::Direction::kNegative, seconds(4));
  ASSERT_EQ(live.size(), 2u);
  for (const auto& e : live) EXPECT_NE(e.id, NodeId(1));  // stalest evicted
}

TEST(IndexTable, RefreshInPlaceDoesNotDuplicate) {
  IndexTable tbl(1, 2, seconds(1000));
  tbl.store(0, can::Direction::kNegative, 1, NodeId(5), seconds(1));
  tbl.store(0, can::Direction::kNegative, 1, NodeId(5), seconds(50));
  EXPECT_EQ(tbl.total_entries(), 1u);
  const auto live =
      tbl.live_entries(0, can::Direction::kNegative, seconds(51));
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].refreshed_at, seconds(50));
}

}  // namespace
}  // namespace soc::index
