// Tests for the checkpoint-restart fault-tolerance extension (the paper's
// §VI future work): the CheckpointStore unit behaviour, scheduler progress
// snapshots, and the end-to-end churn policies.
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/psm/checkpoint.hpp"

namespace soc {
namespace {

TEST(CheckpointStore, RecordLookupErase) {
  psm::CheckpointStore store;
  const TaskId id{NodeId(1), 7};
  EXPECT_FALSE(store.lookup(id).has_value());
  store.record(id, {100.0, 50.0, 10.0}, seconds(10));
  const auto cp = store.lookup(id);
  ASSERT_TRUE(cp.has_value());
  EXPECT_DOUBLE_EQ(cp->remaining[0], 100.0);
  EXPECT_EQ(cp->taken_at, seconds(10));
  store.erase(id);
  EXPECT_FALSE(store.lookup(id).has_value());
}

TEST(CheckpointStore, RestartCountSurvivesNewSnapshots) {
  psm::CheckpointStore store;
  const TaskId id{NodeId(2), 1};
  EXPECT_EQ(store.note_restart(id, seconds(5)), 1u);
  EXPECT_EQ(store.note_restart(id, seconds(6)), 2u);
  store.record(id, {10.0, 0.0, 0.0}, seconds(7));
  EXPECT_EQ(store.lookup(id)->restarts, 2u);
}

TEST(CheckpointStore, LostWorkIsProgressSinceSnapshot) {
  psm::CheckpointStore store;
  const TaskId id{NodeId(3), 1};
  store.record(id, {100.0, 60.0, 0.0}, seconds(1));
  // Task progressed to {40, 30, 0} before dying: 60 + 30 lost.
  EXPECT_DOUBLE_EQ(store.lost_work(id, {40.0, 30.0, 0.0}), 90.0);
  // Unknown task: conservative zero.
  EXPECT_DOUBLE_EQ(store.lost_work(TaskId{NodeId(9), 9}, {1.0, 1.0, 1.0}),
                   0.0);
}

TEST(PsmScheduler, RemainingOfIntegratesProgress) {
  sim::Simulator sim;
  psm::VmOverhead none;
  none.cpu_fraction = none.io_fraction = none.net_fraction = 0.0;
  none.memory_mb = 0.0;
  psm::PsmScheduler sched(sim, ResourceVector{10, 10, 10, 10, 1000}, none);
  psm::TaskSpec t;
  t.id = TaskId{NodeId(0), 1};
  t.expectation = ResourceVector{2, 1, 1, 1, 100};
  t.workload = {1000, 0, 0};
  ASSERT_TRUE(sched.admit(t));
  sim.run_until(seconds(10));  // sole task: CPU rate 10 → 100 done
  const auto rem = sched.remaining_of(t.id);
  ASSERT_TRUE(rem.has_value());
  EXPECT_NEAR((*rem)[0], 900.0, 1.0);
  EXPECT_FALSE(sched.remaining_of(TaskId{NodeId(0), 99}).has_value());
}

TEST(PsmScheduler, AbortAllWithProgressReportsRemaining) {
  sim::Simulator sim;
  psm::PsmScheduler sched(sim, ResourceVector{10, 10, 10, 10, 1000});
  for (std::uint32_t i = 0; i < 2; ++i) {
    psm::TaskSpec t;
    t.id = TaskId{NodeId(0), i};
    t.expectation = ResourceVector{2, 1, 1, 1, 100};
    t.workload = {500, 0, 0};
    ASSERT_TRUE(sched.admit(t));
  }
  sim.run_until(seconds(20));
  const auto progress = sched.abort_all_with_progress();
  ASSERT_EQ(progress.size(), 2u);
  for (const auto& p : progress) {
    EXPECT_LT(p.remaining[0], 500.0);  // some work got done
    EXPECT_GT(p.remaining[0], 0.0);
  }
  EXPECT_EQ(sched.running_count(), 0u);
}

core::ExperimentConfig churn_config(core::ChurnTaskPolicy policy,
                                    std::uint64_t seed = 21) {
  core::ExperimentConfig c;
  c.protocol = core::ProtocolKind::kHidCan;
  c.nodes = 96;
  c.demand_ratio = 0.5;
  c.duration = seconds(3 * 3600);
  c.churn_dynamic_degree = 0.75;
  c.churn_task_policy = policy;
  c.seed = seed;
  return c;
}

TEST(ChurnPolicy, TasksLostKillsRunningTasks) {
  const auto r =
      core::run_experiment(churn_config(core::ChurnTaskPolicy::kTasksLost));
  EXPECT_GT(r.tasks_killed_by_churn, 0u);
  EXPECT_EQ(r.checkpoint_restarts, 0u);
  EXPECT_GT(r.wasted_work_rate_seconds, 0.0);
}

TEST(ChurnPolicy, CheckpointRestartRecoversTasks) {
  const auto lost =
      core::run_experiment(churn_config(core::ChurnTaskPolicy::kTasksLost));
  const auto ckpt = core::run_experiment(
      churn_config(core::ChurnTaskPolicy::kCheckpointRestart));
  EXPECT_GT(ckpt.checkpoint_snapshots, 0u);
  EXPECT_GT(ckpt.checkpoint_restarts, 0u);
  // Restarting from checkpoints must beat losing tasks outright.
  EXPECT_GT(ckpt.t_ratio, lost.t_ratio);
  EXPECT_LT(ckpt.f_ratio, lost.f_ratio);
}

TEST(ChurnPolicy, DetachedExecutionKillsNothing) {
  const auto r = core::run_experiment(
      churn_config(core::ChurnTaskPolicy::kDetachedExecution));
  EXPECT_EQ(r.tasks_killed_by_churn, 0u);
  EXPECT_EQ(r.checkpoint_snapshots, 0u);
}

}  // namespace
}  // namespace soc
