// Unit tests for CAN geometry: points, zones, splits, adjacency.
#include <gtest/gtest.h>

#include "src/can/geometry.hpp"

namespace soc::can {
namespace {

TEST(Point, NormalizedClampsIntoUnitCube) {
  const ResourceVector v{5.0, 20.0, 0.0};
  const ResourceVector cmax{10.0, 10.0, 10.0};
  const Point p = Point::normalized(v, cmax);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 1.0);  // clamped
  EXPECT_DOUBLE_EQ(p[2], 0.0);
}

TEST(Zone, UnitCubeContainsEverything) {
  const Zone z = Zone::unit(3);
  EXPECT_TRUE(z.contains(Point{0.0, 0.0, 0.0}));
  EXPECT_TRUE(z.contains(Point{0.5, 0.7, 0.2}));
  EXPECT_TRUE(z.contains(Point{1.0, 1.0, 1.0}));  // closed top edge
  EXPECT_DOUBLE_EQ(z.volume(), 1.0);
}

TEST(Zone, SplitHalvesAreDisjointAndCover) {
  const Zone z = Zone::unit(2);
  const auto [lo, hi] = z.split(0);
  EXPECT_DOUBLE_EQ(lo.volume() + hi.volume(), 1.0);
  EXPECT_TRUE(lo.contains(Point{0.25, 0.5}));
  EXPECT_FALSE(lo.contains(Point{0.5, 0.5}));  // boundary belongs to upper
  EXPECT_TRUE(hi.contains(Point{0.5, 0.5}));
  EXPECT_FALSE(lo.overlaps(hi));
}

TEST(Zone, ContainmentIsHalfOpenExceptTopEdge) {
  const auto [lo, hi] = Zone::unit(1).split(0);
  EXPECT_TRUE(lo.contains(Point{0.0}));
  EXPECT_FALSE(lo.contains(Point{0.5}));
  EXPECT_TRUE(hi.contains(Point{0.5}));
  EXPECT_TRUE(hi.contains(Point{1.0}));
}

TEST(Zone, AdjacencyAlongOneDim) {
  const auto [left, right] = Zone::unit(2).split(0);
  const auto d = left.adjacency_dim(right);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 0u);
  EXPECT_TRUE(left.positive_side(right, 0));
  EXPECT_FALSE(right.positive_side(left, 0));
}

TEST(Zone, CornerContactIsNotAdjacency) {
  // Split the square into four quadrants; diagonal quadrants touch only at
  // the corner and must not count as neighbors.
  const auto [left, right] = Zone::unit(2).split(0);
  const auto [ll, lu] = left.split(1);
  const auto [rl, ru] = right.split(1);
  EXPECT_FALSE(ll.adjacency_dim(ru).has_value());
  EXPECT_FALSE(lu.adjacency_dim(rl).has_value());
  EXPECT_TRUE(ll.adjacency_dim(rl).has_value());
  EXPECT_TRUE(ll.adjacency_dim(lu).has_value());
}

TEST(Zone, AdjacencyRequiresPositiveOverlapElsewhere) {
  // Two zones abutting on x but with disjoint y ranges are not neighbors.
  const Zone a(Point{0.0, 0.0}, Point{0.5, 0.5});
  const Zone b(Point{0.5, 0.5}, Point{1.0, 1.0});
  EXPECT_FALSE(a.adjacency_dim(b).has_value());
}

TEST(Zone, MergeRebuildsParent) {
  const Zone z = Zone::unit(2);
  const auto [lo, hi] = z.split(1);
  const auto merged = lo.merged_with(hi);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(*merged, z);
  // Non-siblings with different cross-sections cannot merge.
  const auto [ll, lh] = lo.split(0);
  EXPECT_FALSE(ll.merged_with(hi).has_value());
}

TEST(Zone, DistanceSqIsZeroInside) {
  const Zone z(Point{0.25, 0.25}, Point{0.5, 0.5});
  EXPECT_DOUBLE_EQ(z.distance_sq(Point{0.3, 0.3}), 0.0);
  EXPECT_DOUBLE_EQ(z.distance_sq(Point{0.75, 0.375}), 0.0625);
  EXPECT_DOUBLE_EQ(z.distance_sq(Point{0.0, 0.0}), 2 * 0.0625);
}

TEST(Zone, IntersectsUpperRange) {
  const Zone z(Point{0.0, 0.0}, Point{0.5, 0.5});
  EXPECT_TRUE(z.intersects_upper_range(Point{0.4, 0.4}));
  EXPECT_FALSE(z.intersects_upper_range(Point{0.6, 0.1}));
  EXPECT_FALSE(z.intersects_upper_range(Point{0.5, 0.1}));  // boundary open
  const Zone top(Point{0.5, 0.5}, Point{1.0, 1.0});
  EXPECT_TRUE(top.intersects_upper_range(Point{1.0, 1.0}));  // closed at 1
}

TEST(Zone, CenterAndSides) {
  const Zone z(Point{0.0, 0.5}, Point{0.5, 1.0});
  const Point c = z.center();
  EXPECT_DOUBLE_EQ(c[0], 0.25);
  EXPECT_DOUBLE_EQ(c[1], 0.75);
  EXPECT_DOUBLE_EQ(z.side(0), 0.5);
}

}  // namespace
}  // namespace soc::can
