// Behavioural tests of the IndexSystem internals: publish/invalidate
// choreography, the Alg. 1 non-empty-cache guard, diffusion accounting,
// and the hopping-vs-spreading message structure.
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/index/inscan.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulator.hpp"

namespace soc::index {
namespace {

struct InscanHarness {
  InscanHarness(std::size_t n, InscanConfig cfg, std::uint64_t seed)
      : sim(seed), topo(net::TopologyConfig{}, Rng(seed + 1)),
        bus(sim, topo), space(2, Rng(seed + 2)),
        index(sim, bus, space, cfg, Rng(seed + 3)),
        cmax(ResourceVector::filled(2, 10.0)), rng(seed + 4) {
    index.attach_to_space();
    index.set_availability_provider(
        [this](NodeId id) -> std::optional<Record> {
          const auto it = avail.find(id);
          if (it == avail.end()) return std::nullopt;
          Record r;
          r.provider = id;
          r.availability = it->second;
          r.location = can::Point::normalized(it->second, cmax);
          r.published_at = sim.now();
          r.expires_at = sim.now() + index.config().record_ttl;
          return r;
        });
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = topo.add_host();
      space.join(id);
      avail[id] = ResourceVector{rng.uniform(0, 10), rng.uniform(0, 10)};
      index.add_node(id);
      ids.push_back(id);
    }
  }

  NodeId holder_of(NodeId provider) {
    for (const NodeId id : ids) {
      for (const auto& r : index.cache(id).all_live(sim.now())) {
        if (r.provider == provider) return id;
      }
    }
    return NodeId{};
  }

  sim::Simulator sim;
  net::Topology topo;
  net::MessageBus bus;
  can::CanSpace space;
  IndexSystem index;
  ResourceVector cmax;
  Rng rng;
  std::unordered_map<NodeId, ResourceVector> avail;
  std::vector<NodeId> ids;
};

TEST(InscanBehavior, RepublishMovesRecordAndInvalidatesOldCopy) {
  InscanHarness h(48, InscanConfig{}, 71);
  h.sim.run_until(seconds(600));
  const NodeId provider = h.ids[7];
  const NodeId old_holder = h.holder_of(provider);
  ASSERT_TRUE(old_holder.valid());

  // The provider's availability jumps to the opposite corner: the record
  // must move to a new duty node and vanish from the old one.
  h.avail[provider] = ResourceVector{9.5, 9.5};
  const auto inval_before = h.index.activity().invalidations;
  h.index.publish_now(provider);
  h.sim.run_until(h.sim.now() + seconds(120));

  const NodeId new_holder = h.holder_of(provider);
  ASSERT_TRUE(new_holder.valid());
  EXPECT_NE(new_holder, old_holder);
  EXPECT_GT(h.index.activity().invalidations, inval_before);
  // Exactly one live record for the provider remains system-wide.
  std::size_t copies = 0;
  for (const NodeId id : h.ids) {
    for (const auto& r : h.index.cache(id).all_live(h.sim.now())) {
      copies += (r.provider == provider);
    }
  }
  EXPECT_EQ(copies, 1u);
}

TEST(InscanBehavior, NoInvalidationWhenDutyNodeUnchanged) {
  InscanHarness h(32, InscanConfig{}, 73);
  h.sim.run_until(seconds(600));
  const NodeId provider = h.ids[3];
  const auto inval_before = h.index.activity().invalidations;
  // Re-publish the *same* availability: same location, same duty node.
  h.index.publish_now(provider);
  h.sim.run_until(h.sim.now() + seconds(60));
  EXPECT_EQ(h.index.activity().invalidations, inval_before);
}

TEST(InscanBehavior, EmptyCacheNeverInitiatesDiffusion) {
  // No availability provider data → caches stay empty → Alg. 1's guard
  // must suppress every initiation.
  InscanConfig cfg;
  sim::Simulator sim(75);
  net::Topology topo(net::TopologyConfig{}, Rng(76));
  net::MessageBus bus(sim, topo);
  can::CanSpace space(2, Rng(77));
  IndexSystem index(sim, bus, space, cfg, Rng(78));
  for (std::uint32_t i = 0; i < 16; ++i) {
    topo.add_host();
    space.join(NodeId(i));
    index.add_node(NodeId(i));
  }
  sim.run_until(seconds(1200));
  EXPECT_GT(index.activity().diffusion_rounds, 0u);
  EXPECT_EQ(index.activity().diffusion_initiations, 0u);
  EXPECT_EQ(bus.stats().sent(net::MsgType::kIndexDiffuse), 0u);
}

TEST(InscanBehavior, HoppingRelaysMoreWidelyThanStrictSpreading) {
  InscanConfig hop;
  hop.diffusion = DiffusionMethod::kHopping;
  InscanConfig spread;
  spread.diffusion = DiffusionMethod::kSpreading;
  spread.spreading_scope = SpreadingScope::kSenderTracks;
  InscanHarness a(64, hop, 79);
  InscanHarness b(64, spread, 79);
  a.sim.run_until(seconds(1800));
  b.sim.run_until(seconds(1800));
  // Per initiation, hopping cascades across dimensions while the strict
  // spreading reading tops out at d·L receptions.
  const double hop_per_init =
      static_cast<double>(a.index.activity().diffusion_relays) /
      static_cast<double>(std::max<std::uint64_t>(
          a.index.activity().diffusion_initiations, 1));
  const double spread_per_init =
      static_cast<double>(b.index.activity().diffusion_relays) /
      static_cast<double>(std::max<std::uint64_t>(
          b.index.activity().diffusion_initiations, 1));
  EXPECT_GT(hop_per_init, 1.0);
  EXPECT_LE(spread_per_init, 2.0 * 2.0 + 0.5);  // d·L = 4 for d=2, L=2
}

TEST(InscanBehavior, CascadeSpreadingMatchesOmegaBound) {
  InscanConfig cfg;
  cfg.diffusion = DiffusionMethod::kSpreading;
  cfg.spreading_scope = SpreadingScope::kCascade;
  InscanHarness h(64, cfg, 81);
  h.sim.run_until(seconds(1800));
  const auto& act = h.index.activity();
  ASSERT_GT(act.diffusion_initiations, 0u);
  // ω = L(L^d − 1)/(L − 1) = 6 for L = 2, d = 2 — an upper bound since
  // edge nodes truncate branches.
  const double per_init = static_cast<double>(act.diffusion_relays) /
                          static_cast<double>(act.diffusion_initiations);
  EXPECT_LE(per_init, 6.0 + 0.5);
  EXPECT_GT(per_init, 1.0);
}

TEST(InscanBehavior, RemoveNodeSilencesItsPeriodics) {
  InscanHarness h(24, InscanConfig{}, 83);
  h.sim.run_until(seconds(600));
  const NodeId victim = h.ids[5];
  h.index.remove_node(victim);
  h.space.leave(victim);
  h.avail.erase(victim);
  const auto before = h.index.activity().publishes;
  // The victim must publish nothing further; others keep going.
  h.sim.run_until(h.sim.now() + seconds(1200));
  EXPECT_GT(h.index.activity().publishes, before);
  EXPECT_FALSE(h.index.tracks(victim));
  EXPECT_TRUE(h.space.verify_invariants());
}

TEST(InscanBehavior, PublishCountsAndRouteDelivery) {
  InscanHarness h(32, InscanConfig{}, 85);
  h.sim.run_until(seconds(900));
  const auto& act = h.index.activity();
  // Every node publishes at join and then periodically (400 s cycle over
  // 900 s → ≥ 2 periodic rounds for most).
  EXPECT_GE(act.publishes, 32u * 2);
  // All published records land somewhere (allowing a few in flight).
  std::size_t stored = 0;
  for (const NodeId id : h.ids) {
    stored += h.index.cache(id).live_count(h.sim.now());
  }
  EXPECT_GE(stored + 4, 32u);
}

}  // namespace
}  // namespace soc::index
