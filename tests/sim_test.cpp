// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.hpp"
#include "src/sim/simulator.hpp"

namespace soc::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(3); });
  q.push(10, [&] { fired.push_back(1); });
  q.push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoWithinSameTimestamp) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) q.push(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventHandle h = q.push(1, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));  // double-cancel reports failure
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventHandle h = q.push(1, [] {});
  q.push(5, [] {});
  q.cancel(h);
  EXPECT_EQ(q.next_time(), 5);
  EXPECT_EQ(q.size(), 1u);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(seconds(10), [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, seconds(10));
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15);  // clock reaches the horizon
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_at(1, [&] {
    times.push_back(sim.now());
    sim.schedule_after(4, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<SimTime>{1, 5}));
}

TEST(Simulator, PeriodicFiresUntilStopped) {
  Simulator sim;
  int count = 0;
  sim.schedule_periodic(seconds(100), [&] {
    ++count;
    return count < 5;
  });
  sim.run_until(seconds(10000));
  EXPECT_EQ(count, 5);
}

TEST(Simulator, PeriodicPhaseControlsFirstFiring) {
  Simulator sim;
  SimTime first = -1;
  sim.schedule_periodic(
      seconds(100),
      [&] {
        if (first < 0) first = sim.now();
        return false;
      },
      /*phase=*/seconds(7));
  sim.run_all();
  EXPECT_EQ(first, seconds(7));
}

TEST(Simulator, PeriodicJitterStaysWithinBounds) {
  Simulator sim(99);
  std::vector<SimTime> firings;
  sim.schedule_periodic(
      seconds(100),
      [&] {
        firings.push_back(sim.now());
        return firings.size() < 50;
      },
      seconds(100), /*jitter=*/0.2);
  sim.run_all();
  for (std::size_t i = 1; i < firings.size(); ++i) {
    const SimTime gap = firings[i] - firings[i - 1];
    EXPECT_GE(gap, seconds(80));
    EXPECT_LE(gap, seconds(120));
  }
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool ran = false;
  const auto h = sim.schedule_at(5, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<std::uint64_t> draws;
    Rng r = sim.rng().fork("test");
    for (int i = 0; i < 16; ++i) draws.push_back(r.next_u64());
    return draws;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace soc::sim
