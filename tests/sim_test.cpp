// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.hpp"
#include "src/sim/simulator.hpp"

namespace soc::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(3); });
  q.push(10, [&] { fired.push_back(1); });
  q.push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoWithinSameTimestamp) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) q.push(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventHandle h = q.push(1, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));  // double-cancel reports failure
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventHandle h = q.push(1, [] {});
  q.push(5, [] {});
  q.cancel(h);
  EXPECT_EQ(q.next_time(), 5);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, StaleHandleToRecycledSlotIsRejected) {
  EventQueue q;
  const EventHandle h1 = q.push(1, [] {});
  EXPECT_TRUE(q.cancel(h1));
  // The freed slot is recycled with a bumped generation...
  const EventHandle h2 = q.push(2, [] {});
  EXPECT_EQ(h2.slot, h1.slot);
  EXPECT_NE(h2.gen, h1.gen);
  // ...so the stale handle must not cancel the new event.
  EXPECT_FALSE(q.cancel(h1));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(h2));
}

// The old design's failure mode: lazily-cancelled events lingered in the
// heap as tombstones, so a schedule-heavy/cancel-heavy workload (timeouts!)
// grew memory without bound.  With in-place removal, one million
// schedule+cancel cycles must leave both the live count and the slab
// high-water mark at baseline.
TEST(EventQueue, CancelledEventsReleaseSlabMemory) {
  EventQueue q;
  const EventHandle keeper = q.push(1'000'000'000, [] {});
  constexpr std::size_t kBatch = 64;      // pending timeouts at any moment
  constexpr std::size_t kCycles = 16384;  // ~1M scheduled events total
  std::vector<EventHandle> batch;
  for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
    batch.clear();
    for (std::size_t i = 0; i < kBatch; ++i) {
      batch.push_back(
          q.push(static_cast<SimTime>(cycle * kBatch + i + 1), [] {}));
    }
    for (const EventHandle h : batch) EXPECT_TRUE(q.cancel(h));
  }
  // Live events back to baseline: just the keeper.
  EXPECT_EQ(q.size(), 1u);
  // Slab occupancy bounded by the peak number of simultaneously pending
  // events, not the ~1M total scheduled.
  EXPECT_LE(q.slab_slots(), kBatch + 1);
  EXPECT_EQ(q.next_time(), 1'000'000'000);
  EXPECT_TRUE(q.cancel(keeper));
  EXPECT_TRUE(q.empty());
}

// Same property through the Simulator's periodic API: a periodic process
// whose queued firing is repeatedly cancelled and re-established must not
// grow the slab.
TEST(Simulator, CancelledPeriodicsReleaseSlabMemory) {
  Simulator sim;
  std::size_t fired = 0;
  for (int round = 0; round < 20000; ++round) {
    const EventHandle h = sim.schedule_periodic(seconds(10), [&] {
      ++fired;
      return false;
    });
    ASSERT_TRUE(sim.cancel(h));
  }
  sim.run_all();
  EXPECT_EQ(fired, 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(seconds(10), [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, seconds(10));
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15);  // clock reaches the horizon
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_at(1, [&] {
    times.push_back(sim.now());
    sim.schedule_after(4, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<SimTime>{1, 5}));
}

TEST(Simulator, PeriodicFiresUntilStopped) {
  Simulator sim;
  int count = 0;
  sim.schedule_periodic(seconds(100), [&] {
    ++count;
    return count < 5;
  });
  sim.run_until(seconds(10000));
  EXPECT_EQ(count, 5);
}

TEST(Simulator, PeriodicPhaseControlsFirstFiring) {
  Simulator sim;
  SimTime first = -1;
  sim.schedule_periodic(
      seconds(100),
      [&] {
        if (first < 0) first = sim.now();
        return false;
      },
      /*phase=*/seconds(7));
  sim.run_all();
  EXPECT_EQ(first, seconds(7));
}

TEST(Simulator, PeriodicJitterStaysWithinBounds) {
  Simulator sim(99);
  std::vector<SimTime> firings;
  sim.schedule_periodic(
      seconds(100),
      [&] {
        firings.push_back(sim.now());
        return firings.size() < 50;
      },
      seconds(100), /*jitter=*/0.2);
  sim.run_all();
  for (std::size_t i = 1; i < firings.size(); ++i) {
    const SimTime gap = firings[i] - firings[i - 1];
    EXPECT_GE(gap, seconds(80));
    EXPECT_LE(gap, seconds(120));
  }
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool ran = false;
  const auto h = sim.schedule_at(5, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorDeathTest, SchedulingIntoThePastAborts) {
  Simulator sim;
  sim.schedule_at(seconds(10), [] {});
  sim.run_all();
  ASSERT_EQ(sim.now(), seconds(10));
  EXPECT_DEATH(sim.schedule_at(seconds(5), [] {}),
               "cannot schedule into the past");
}

TEST(SimulatorDeathTest, SchedulingAtNeverAborts) {
  Simulator sim;
  EXPECT_DEATH(sim.schedule_at(kSimTimeNever, [] {}),
               "cannot schedule at kSimTimeNever");
  EXPECT_DEATH(sim.schedule_after(kSimTimeNever, [] {}),
               "delay overflows SimTime");
}

TEST(Simulator, ScheduleAtNowIsAllowed) {
  Simulator sim;
  sim.schedule_at(seconds(1), [] {});
  sim.run_all();
  bool ran = false;
  sim.schedule_at(sim.now(), [&] { ran = true; });  // at == now is valid
  sim.run_all();
  EXPECT_TRUE(ran);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<std::uint64_t> draws;
    Rng r = sim.rng().fork("test");
    for (int i = 0; i < 16; ++i) draws.push_back(r.next_u64());
    return draws;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace soc::sim
