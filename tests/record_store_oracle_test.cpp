// Churn-stress oracle for the sorted flat RecordStore.
//
// The PR that converted RecordStore from unordered_map to a NodeId-sorted
// flat array intentionally re-baselined the golden trajectories (candidate
// order now follows provider id instead of hash-iteration order).  This
// suite is the proof obligation backing that re-baseline: under random
// interleavings of every mutating operation, the flat store must hold
// exactly the same record *set* as a from-scratch map oracle, and every
// result list must come out in ascending provider order — the new, intended
// deterministic order.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/common/rng.hpp"
#include "src/index/record.hpp"

namespace soc::index {
namespace {

/// The executable specification: newest record per provider, TTL expiry.
/// Deliberately the old representation (hash map, order-free) rebuilt from
/// the documented semantics rather than from the store's code.
class MapOracle {
 public:
  void put(const Record& r) { records_[r.provider] = r; }
  bool erase(NodeId provider) { return records_.erase(provider) > 0; }

  void prune(SimTime now) {
    std::erase_if(records_,
                  [&](const auto& kv) { return kv.second.expired(now); });
  }

  [[nodiscard]] std::size_t live_count(SimTime now) const {
    std::size_t n = 0;
    for (const auto& [_, r] : records_) n += !r.expired(now);
    return n;
  }

  [[nodiscard]] std::vector<Record> qualified(const ResourceVector& demand,
                                              SimTime now) const {
    std::vector<Record> out;
    for (const auto& [_, r] : records_) {
      if (!r.expired(now) && r.qualifies(demand)) out.push_back(r);
    }
    return out;
  }

  [[nodiscard]] std::vector<Record> all_live(SimTime now) const {
    std::vector<Record> out;
    for (const auto& [_, r] : records_) {
      if (!r.expired(now)) out.push_back(r);
    }
    return out;
  }

  /// Matches RecordStore::extract_in_zone: the sweep also drops (without
  /// returning) any expired record it passes over.
  std::vector<Record> extract_in_zone(const can::Zone& zone, SimTime now) {
    std::vector<Record> out;
    std::erase_if(records_, [&](const auto& kv) {
      if (kv.second.expired(now)) return true;
      if (!zone.contains(kv.second.location)) return false;
      out.push_back(kv.second);
      return true;
    });
    return out;
  }

  std::vector<Record> extract_all() {
    std::vector<Record> out;
    for (const auto& [_, r] : records_) out.push_back(r);
    records_.clear();
    return out;
  }

  [[nodiscard]] std::size_t size() const { return records_.size(); }

 private:
  std::unordered_map<NodeId, Record> records_;
};

Record random_record(std::uint32_t provider, Rng& rng, SimTime now) {
  Record r;
  r.provider = NodeId(provider);
  ResourceVector a(2);
  a[0] = rng.uniform(0, 10);
  a[1] = rng.uniform(0, 10);
  r.availability = a;
  r.location = can::Point{a[0] / 10.0, a[1] / 10.0};
  r.published_at = now;
  // Mixed lifetimes so every comparison sees live and expired entries.
  r.expires_at = now + seconds(rng.uniform(1.0, 900.0));
  return r;
}

bool same_record(const Record& a, const Record& b) {
  return a.provider == b.provider && a.availability == b.availability &&
         a.published_at == b.published_at && a.expires_at == b.expires_at;
}

void sort_by_provider(std::vector<Record>& v) {
  std::sort(v.begin(), v.end(), [](const Record& a, const Record& b) {
    return a.provider < b.provider;
  });
}

/// Store output must equal the oracle's as a set; `expect_sorted` checks
/// the store's intended ascending-provider ordering on top.
void expect_same_set(std::vector<Record> from_store,
                     std::vector<Record> from_oracle, bool expect_sorted,
                     const char* what, int step) {
  if (expect_sorted) {
    EXPECT_TRUE(std::is_sorted(from_store.begin(), from_store.end(),
                               [](const Record& a, const Record& b) {
                                 return a.provider < b.provider;
                               }))
        << what << " not NodeId-sorted at step " << step;
  }
  sort_by_provider(from_store);
  sort_by_provider(from_oracle);
  ASSERT_EQ(from_store.size(), from_oracle.size())
      << what << " size diverged at step " << step;
  for (std::size_t i = 0; i < from_store.size(); ++i) {
    EXPECT_TRUE(same_record(from_store[i], from_oracle[i]))
        << what << " entry " << i << " diverged at step " << step;
  }
}

TEST(RecordStoreOracle, RandomOpChurnMatchesMapOracle) {
  constexpr std::uint32_t kProviders = 48;
  constexpr int kSteps = 6000;
  RecordStore store;
  MapOracle oracle;
  Rng rng(20260729);
  SimTime now = 0;

  for (int step = 0; step < kSteps; ++step) {
    now += seconds(rng.uniform(0.0, 30.0));  // time only moves forward
    const double roll = rng.uniform();
    const auto provider =
        static_cast<std::uint32_t>(rng.uniform_int(0, kProviders - 1));
    if (roll < 0.45) {
      const Record r = random_record(provider, rng, now);
      store.put(r);
      oracle.put(r);
    } else if (roll < 0.62) {
      EXPECT_EQ(store.erase(NodeId(provider)), oracle.erase(NodeId(provider)))
          << "erase result diverged at step " << step;
    } else if (roll < 0.72) {
      store.prune(now);
      oracle.prune(now);
    } else if (roll < 0.80) {
      // Zone sweep (ownership handoff): random axis-aligned box.
      can::Point lo{rng.uniform(), rng.uniform()};
      can::Point hi{rng.uniform(lo[0], 1.0), rng.uniform(lo[1], 1.0)};
      const can::Zone zone(lo, hi);
      expect_same_set(store.extract_in_zone(zone, now),
                      oracle.extract_in_zone(zone, now),
                      /*expect_sorted=*/true, "extract_in_zone", step);
    } else if (roll < 0.82) {
      // Full drain (owner departure).
      expect_same_set(store.extract_all(), oracle.extract_all(),
                      /*expect_sorted=*/true, "extract_all", step);
    } else {
      // Read-only comparison step.
      ResourceVector demand(2);
      demand[0] = rng.uniform(0, 10);
      demand[1] = rng.uniform(0, 10);
      expect_same_set(store.qualified(demand, now),
                      oracle.qualified(demand, now),
                      /*expect_sorted=*/true, "qualified", step);
      EXPECT_EQ(store.qualified_count(demand, now),
                oracle.qualified(demand, now).size())
          << "qualified_count diverged at step " << step;
    }

    // Invariants after every op.
    ASSERT_EQ(store.size(), oracle.size()) << "size diverged at step " << step;
    ASSERT_EQ(store.live_count(now), oracle.live_count(now))
        << "live_count diverged at step " << step;
    ASSERT_EQ(store.has_live_records(now), oracle.live_count(now) > 0)
        << "has_live_records diverged at step " << step;
    if (step % 250 == 0) {
      expect_same_set(store.all_live(now), oracle.all_live(now),
                      /*expect_sorted=*/true, "all_live", step);
    }
    // Structural invariants of the slab layout: sorted unique keys, every
    // slot in-range and owned exactly once, free-list consistent.
    if (step % 100 == 0) {
      ASSERT_TRUE(store.verify_sorted_unique())
          << "slab invariants broken at step " << step;
    }
  }
  EXPECT_TRUE(store.verify_sorted_unique());
}

TEST(RecordStoreOracle, SlotReuseChurnKeepsSlabConsistent) {
  // Heavy erase/re-put cycling over a small provider set forces the slab
  // free-list through constant reuse — the regime where a stale slot index
  // (the classic compaction bug) would alias two providers' records.
  RecordStore store;
  Rng rng(31337);
  SimTime now = 0;
  constexpr std::uint32_t kProviders = 8;
  for (int round = 0; round < 400; ++round) {
    now += seconds(1.0);
    const auto p =
        static_cast<std::uint32_t>(rng.uniform_int(0, kProviders - 1));
    if (rng.uniform() < 0.5) {
      store.put(random_record(p, rng, now));
    } else {
      store.erase(NodeId(p));
    }
    ASSERT_TRUE(store.verify_sorted_unique()) << "round " << round;
    ASSERT_LE(store.size(), static_cast<std::size_t>(kProviders));
    // Each surviving provider resolves to exactly its own record.
    for (const Record& r : store.all_live(now + seconds(1000.0))) {
      ASSERT_LT(r.provider.value, kProviders);
    }
  }
  // Drain and rebuild: the free-list absorbs the whole slab and hands the
  // slots back.
  store.extract_all();
  ASSERT_TRUE(store.verify_sorted_unique());
  EXPECT_EQ(store.size(), 0u);
  for (std::uint32_t p = 0; p < kProviders; ++p) {
    store.put(random_record(p, rng, now));
  }
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kProviders));
  EXPECT_TRUE(store.verify_sorted_unique());
}

TEST(RecordStoreOracle, QualifiedIntoReusesScratchAndMatchesQualified) {
  RecordStore store;
  Rng rng(99);
  for (std::uint32_t p = 0; p < 32; ++p) {
    store.put(random_record(p, rng, 0));
  }
  const ResourceVector demand{3.0, 3.0};
  std::vector<Record> scratch{random_record(999, rng, 0)};  // stale content
  store.qualified_into(demand, seconds(1), scratch);
  const auto fresh = store.qualified(demand, seconds(1));
  ASSERT_EQ(scratch.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_TRUE(same_record(scratch[i], fresh[i])) << "entry " << i;
  }
  // Repeated harvests into the same buffer are idempotent.
  store.qualified_into(demand, seconds(1), scratch);
  ASSERT_EQ(scratch.size(), fresh.size());
}

}  // namespace
}  // namespace soc::index
