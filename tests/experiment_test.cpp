// System-level integration tests: the full Experiment driver end-to-end for
// every protocol, determinism, churn survival, and the reproduction's key
// qualitative properties (parameterized over protocols and demand ratios).
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"

namespace soc::core {
namespace {

ExperimentConfig small_config(ProtocolKind kind, double lambda,
                              std::uint64_t seed = 1) {
  ExperimentConfig c;
  c.protocol = kind;
  c.nodes = 96;
  c.demand_ratio = lambda;
  c.duration = seconds(2 * 3600);
  c.sample_step = seconds(3600);
  c.seed = seed;
  return c;
}

TEST(Experiment, RunsEndToEndAndProducesTasks) {
  const auto r = run_experiment(small_config(ProtocolKind::kHidCan, 0.5));
  EXPECT_GT(r.generated, 20u);
  EXPECT_GT(r.finished, 0u);
  EXPECT_GE(r.t_ratio, 0.0);
  EXPECT_LE(r.t_ratio, 1.0);
  EXPECT_GE(r.f_ratio, 0.0);
  EXPECT_LE(r.f_ratio, 1.0);
  EXPECT_GT(r.fairness, 0.0);
  EXPECT_LE(r.fairness, 1.0);
  EXPECT_GT(r.total_messages, 1000u);
  ASSERT_EQ(r.series.size(), 2u);
  EXPECT_EQ(r.protocol, "HID-CAN");
}

TEST(Experiment, DeterministicForSameSeed) {
  const auto a = run_experiment(small_config(ProtocolKind::kHidCan, 0.5, 7));
  const auto b = run_experiment(small_config(ProtocolKind::kHidCan, 0.5, 7));
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_DOUBLE_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Experiment, DifferentSeedsDiffer) {
  const auto a = run_experiment(small_config(ProtocolKind::kHidCan, 0.5, 7));
  const auto b = run_experiment(small_config(ProtocolKind::kHidCan, 0.5, 8));
  EXPECT_NE(a.events_executed, b.events_executed);
}

TEST(Experiment, TaskAccountingIsConsistent) {
  const auto r = run_experiment(small_config(ProtocolKind::kHidCan, 0.5));
  // finished + failed never exceeds generated (the rest are in flight).
  EXPECT_LE(r.finished + r.failed, r.generated);
  EXPECT_NEAR(r.t_ratio, static_cast<double>(r.finished) / r.generated, 1e-9);
  EXPECT_NEAR(r.f_ratio, static_cast<double>(r.failed) / r.generated, 1e-9);
}

TEST(Experiment, ArrivalRateScalesInverselyWithLambda) {
  const auto full = run_experiment(small_config(ProtocolKind::kHidCan, 1.0));
  const auto quarter =
      run_experiment(small_config(ProtocolKind::kHidCan, 0.25));
  // λ=1 draws arrivals 4× as often as λ=0.25 (3000/λ mean inter-arrival).
  EXPECT_GT(full.generated, quarter.generated * 2);
}

// Every protocol must run end-to-end and finish a sensible share of tasks.
class AllProtocols : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AllProtocols, RunsAndFinishesTasks) {
  auto config = small_config(GetParam(), 0.25, 3);
  const auto r = run_experiment(config);
  EXPECT_GT(r.generated, 10u);
  // λ=0.25 is the easy regime: every protocol should finish a majority.
  EXPECT_GT(r.t_ratio, 0.3) << protocol_name(GetParam());
  EXPECT_EQ(r.protocol, protocol_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllProtocols,
    ::testing::Values(ProtocolKind::kHidCan, ProtocolKind::kSidCan,
                      ProtocolKind::kHidCanSos, ProtocolKind::kSidCanSos,
                      ProtocolKind::kSidCanVd, ProtocolKind::kNewscast,
                      ProtocolKind::kKhdnCan),
    [](const auto& info) {
      std::string n = protocol_name(info.param);
      for (auto& ch : n) {
        if (ch == '-' || ch == '+') ch = '_';
      }
      return n;
    });

// Churn sweeps: the system must stay alive and keep finishing tasks at
// every dynamic degree the paper tests.
class ChurnSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChurnSweep, SurvivesAndFinishesTasks) {
  auto config = small_config(ProtocolKind::kHidCan, 0.5, 5);
  config.churn_dynamic_degree = GetParam();
  Experiment ex(config);
  ex.setup();
  ex.run();
  const auto r = ex.results();
  EXPECT_GT(r.generated, 10u);
  EXPECT_GT(r.finished, 0u);
  // The population stays roughly stable (each departure pairs with a join).
  EXPECT_NEAR(static_cast<double>(ex.alive_nodes()), 96.0, 96.0 * 0.25);
}

INSTANTIATE_TEST_SUITE_P(Degrees, ChurnSweep,
                         ::testing::Values(0.25, 0.5, 0.75, 0.95),
                         [](const auto& info) {
                           return "deg" + std::to_string(static_cast<int>(
                                              info.param * 100));
                         });

TEST(Experiment, HigherLambdaIsHarder) {
  const auto easy = run_experiment(small_config(ProtocolKind::kHidCan, 0.25));
  const auto hard = run_experiment(small_config(ProtocolKind::kHidCan, 1.0));
  EXPECT_GT(easy.t_ratio, hard.t_ratio);
  EXPECT_LT(easy.f_ratio, hard.f_ratio);
}

TEST(Experiment, DiagnosticsClassifyFailures) {
  auto config = small_config(ProtocolKind::kHidCan, 1.0);
  config.diagnose_failures = true;
  const auto r = run_experiment(config);
  // Every failure falls in exactly one feasibility bucket.
  EXPECT_EQ(r.fail_infeasible + r.fail_feasible, r.failed);
  EXPECT_LE(r.fail_undiscoverable, r.fail_feasible);
}

TEST(Experiment, SubmitTaskManually) {
  auto config = small_config(ProtocolKind::kHidCan, 0.25);
  config.mean_interarrival_s = 1e9;  // suppress the Poisson arrivals
  Experiment ex(config);
  ex.setup();
  ex.simulator().run_until(seconds(1800));  // warm up indexes
  for (int i = 0; i < 10; ++i) ex.submit_task(NodeId(0));
  ex.run();
  const auto r = ex.results();
  EXPECT_EQ(r.generated, 10u);
  EXPECT_GT(r.finished, 5u);
}

TEST(Experiment, MessageCostGrowsSubLinearlyWithScale) {
  auto small = small_config(ProtocolKind::kHidCan, 0.5, 9);
  small.nodes = 64;
  auto big = small_config(ProtocolKind::kHidCan, 0.5, 9);
  big.nodes = 256;
  const auto rs = run_experiment(small);
  const auto rb = run_experiment(big);
  // 4× the nodes must cost far less than 4× the per-node messages
  // (Table III: roughly logarithmic growth).
  EXPECT_LT(rb.msg_cost_per_node, rs.msg_cost_per_node * 2.5);
}

}  // namespace
}  // namespace soc::core
