// Unit coverage for bench/compare_core.hpp — the bench_compare gate logic
// on synthetic report histories, exercising exactly the scenarios that
// motivated trend mode (one noisy baseline must not move the gate in
// either direction).
#include <gtest/gtest.h>

#include "bench/compare_core.hpp"

namespace soc::bench {
namespace {

PerfReport make_report(double ev_rate, double msg_rate, double events = 1000,
                       double messages = 500, double seed = 1) {
  PerfReport r;
  r.nodes = 256;
  r.hours = 4;
  r.seed = seed;
  PerfExperiment e;
  e.name = "HID-CAN";
  e.events = events;
  e.events_per_sec = ev_rate;
  e.messages = messages;
  e.messages_per_sec = msg_rate;
  r.experiments.push_back(e);
  return r;
}

TEST(CompareCore, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({5.0}), 5.0);
}

TEST(CompareCore, MedianBaselineCollapsesHistoryRates) {
  const std::vector<PerfReport> history{
      make_report(900, 450), make_report(1000, 500), make_report(1100, 550)};
  const PerfReport base = median_baseline(history, 3);
  ASSERT_EQ(base.experiments.size(), 1u);
  EXPECT_DOUBLE_EQ(base.experiments[0].events_per_sec, 1000);
  EXPECT_DOUBLE_EQ(base.experiments[0].messages_per_sec, 500);
  // Counts come verbatim from the newest history entry, not a median.
  EXPECT_DOUBLE_EQ(base.experiments[0].events, 1000);
}

TEST(CompareCore, MedianBaselineUsesOnlyLastN) {
  // An ancient slow epoch must age out of the window.
  const std::vector<PerfReport> history{
      make_report(100, 50), make_report(1000, 500), make_report(1020, 510),
      make_report(980, 490)};
  const PerfReport base = median_baseline(history, 3);
  EXPECT_DOUBLE_EQ(base.experiments[0].events_per_sec, 1000);
}

TEST(CompareCore, OneSlowOutlierCannotLowerTheTrendGate) {
  // History: four sane runs and one machine hiccup at half speed.  A
  // single-baseline gate against the hiccup would wave through a real 40%
  // regression; the median gate does not.
  const std::vector<PerfReport> history{
      make_report(1000, 500), make_report(1010, 505), make_report(500, 250),
      make_report(990, 495), make_report(1005, 502)};
  const PerfReport median = median_baseline(history, 5);
  EXPECT_DOUBLE_EQ(median.experiments[0].events_per_sec, 1000);

  const PerfReport regressed = make_report(600, 300);
  // Against the hiccup alone: 600/500 looks like an improvement.
  EXPECT_EQ(compare_reports(history[2], regressed, 0.10, false).regressions,
            0);
  // Against the median: caught.
  EXPECT_EQ(compare_reports(median, regressed, 0.10, false).regressions, 1);
}

TEST(CompareCore, OneFastOutlierCannotFlakeTheTrendGate) {
  // Dual case: one anomalously fast history run must not fail a healthy
  // new run (the flakiness the ROADMAP item wants to avoid while
  // tightening the threshold).
  const std::vector<PerfReport> history{
      make_report(1000, 500), make_report(2000, 1000), make_report(1010, 505)};
  const PerfReport fresh = make_report(995, 498);
  EXPECT_EQ(compare_reports(history[1], fresh, 0.10, false).regressions, 1);
  EXPECT_EQ(
      compare_reports(median_baseline(history, 3), fresh, 0.10, false)
          .regressions,
      0);
}

TEST(CompareCore, MissingExperimentIsARegression) {
  PerfReport base = make_report(1000, 500);
  PerfExperiment extra;
  extra.name = "KHDN-CAN";
  extra.events_per_sec = 800;
  extra.messages_per_sec = 400;
  base.experiments.push_back(extra);
  const PerfReport fresh = make_report(1000, 500);  // KHDN-CAN vanished
  EXPECT_EQ(compare_reports(base, fresh, 0.10, false).regressions, 1);
}

TEST(CompareCore, SameSeedCountDriftIsFlagged) {
  const PerfReport base = make_report(1000, 500, 1000, 500, /*seed=*/1);
  const PerfReport drifted = make_report(1000, 500, 1001, 500, /*seed=*/1);
  EXPECT_EQ(compare_reports(base, drifted, 0.10, /*same_seed=*/true)
                .count_drifts,
            1);
  // Different seeds legitimately change counts: no tripwire.
  EXPECT_EQ(compare_reports(base, drifted, 0.10, /*same_seed=*/false)
                .count_drifts,
            0);
}

TEST(CompareCore, ParserRoundTripsTheEmittedSchema) {
  const std::string text = R"({
  "bench": "hotpath",
  "nodes": 256,
  "hours": 4.000,
  "seed": 7,
  "experiments": [
    { "name": "HID-CAN", "wall_seconds": 1.5,
      "events": 123456, "events_per_sec": 82304.0,
      "messages": 7890, "messages_per_sec": 5260.0 },
    { "name": "Newscast", "wall_seconds": 0.5,
      "events": 42, "events_per_sec": 84.0,
      "messages": 21, "messages_per_sec": 42.0 }
  ]
})";
  std::string err;
  const auto r = parse_report_text(text, &err);
  ASSERT_TRUE(r.has_value()) << err;
  EXPECT_DOUBLE_EQ(r->nodes, 256);
  EXPECT_DOUBLE_EQ(r->seed, 7);
  ASSERT_EQ(r->experiments.size(), 2u);
  EXPECT_EQ(r->experiments[0].name, "HID-CAN");
  EXPECT_DOUBLE_EQ(r->experiments[0].events, 123456);
  // Field search is block-bounded: Newscast's numbers are its own.
  EXPECT_DOUBLE_EQ(r->experiments[1].events_per_sec, 84.0);

  std::string err2;
  EXPECT_FALSE(parse_report_text("{}", &err2).has_value());
  EXPECT_FALSE(err2.empty());
}

TEST(CompareCore, LatencyBlockCannotShadowScalarFields) {
  // The serving-PR schema nests a "latency" object (with its own "n",
  // "mean_s", "p50_s", ...) between the scalars and "traffic".  The
  // bounded exact-key parser must keep reading the experiment's scalars —
  // none of the latency keys may shadow "events", "messages", or the
  // rates, in ANY ordering of the block relative to them.  Hostile
  // ordering on purpose: latency comes FIRST here, unlike the writer.
  const std::string text = R"({
  "bench": "sweep",
  "nodes": 0,
  "hours": 6.000,
  "seed": 1,
  "experiments": [
    { "name": "HID-CAN/l0.5/n24/none/c0/base/closed",
      "latency": { "first_result": { "n": 17, "mean_s": 2.5, "p50_s": 0.007,
                                     "p95_s": 9.1, "p99_s": 41.0,
                                     "p999_s": 41.0, "p99_ci95": 0.5 },
                   "finish": { "n": 12, "mean_s": 150.1, "p50_s": 151.0,
                               "p95_s": 218.0, "p99_s": 218.1,
                               "p999_s": 218.1 } },
      "wall_seconds": 0,
      "events": 5000, "events_per_sec": 0,
      "messages": 2500, "messages_per_sec": 0,
      "slot_span_ratio": 1.25 },
    { "name": "HID-CAN/l0.5/n24/none/c0/base/open", "wall_seconds": 0,
      "events": 4000, "events_per_sec": 0,
      "messages": 2000, "messages_per_sec": 0 }
  ]
})";
  std::string err;
  const auto r = parse_report_text(text, &err);
  ASSERT_TRUE(r.has_value()) << err;
  ASSERT_EQ(r->experiments.size(), 2u);
  EXPECT_DOUBLE_EQ(r->experiments[0].events, 5000);
  EXPECT_DOUBLE_EQ(r->experiments[0].messages, 2500);
  EXPECT_DOUBLE_EQ(r->experiments[0].slot_span_ratio, 1.25);
  // The second experiment (no latency block) is bounded correctly.
  EXPECT_DOUBLE_EQ(r->experiments[1].events, 4000);
  EXPECT_DOUBLE_EQ(r->experiments[1].slot_span_ratio, 1.0);
}

}  // namespace
}  // namespace soc::bench
