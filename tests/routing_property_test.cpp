// Property tests on routing: bus-driven greedy routing always reaches the
// owner of the target point, across dimensions and scales; INSCAN's
// long-link routing never does worse than plain CAN on hop count; records
// always sit at the owner of their location after arbitrary churn.
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/can/router.hpp"
#include "src/index/inscan.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulator.hpp"

namespace soc {
namespace {

class RoutingProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RoutingProperty, BusRoutingArrivesAtOwner) {
  const auto [dims, n] = GetParam();
  sim::Simulator sim(static_cast<std::uint64_t>(dims * 1000 + n));
  net::Topology topo(net::TopologyConfig{}, Rng(1));
  net::MessageBus bus(sim, topo);
  can::CanSpace space(static_cast<std::size_t>(dims), Rng(2));
  Rng rng(3);
  std::vector<NodeId> ids;
  for (int i = 0; i < n; ++i) {
    const NodeId id = topo.add_host();
    space.join(id);
    ids.push_back(id);
  }
  for (int trial = 0; trial < 40; ++trial) {
    can::Point target(static_cast<std::size_t>(dims));
    for (int d = 0; d < dims; ++d) {
      target[static_cast<std::size_t>(d)] = rng.uniform();
    }
    const NodeId from = ids[rng.pick_index(ids.size())];
    NodeId arrived;
    can::route_greedy(space, bus, from, target, net::MsgType::kDutyQuery, 64,
                      256, [&](NodeId duty) { arrived = duty; });
    sim.run_until(sim.now() + seconds(120));
    ASSERT_TRUE(arrived.valid()) << "route lost";
    EXPECT_EQ(arrived, space.owner_of(target));
    EXPECT_TRUE(space.zone_of(arrived).contains(target));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndScale, RoutingProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(16, 128)),
    [](const auto& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(RoutingProperty, BoundaryTargetsRouteCleanly) {
  // Points exactly on split boundaries (dyadic rationals) used to stall
  // greedy routing; they must resolve to exactly one owner.
  sim::Simulator sim(7);
  net::Topology topo(net::TopologyConfig{}, Rng(8));
  net::MessageBus bus(sim, topo);
  can::CanSpace space(2, Rng(9));
  for (std::uint32_t i = 0; i < 64; ++i) {
    topo.add_host();
    space.join(NodeId(i));
  }
  for (const double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (const double y : {0.0, 0.5, 1.0}) {
      const can::Point target{x, y};
      NodeId arrived;
      can::route_greedy(space, bus, NodeId(0), target,
                        net::MsgType::kDutyQuery, 64, 256,
                        [&](NodeId duty) { arrived = duty; });
      sim.run_until(sim.now() + seconds(120));
      ASSERT_TRUE(arrived.valid()) << "stalled at (" << x << "," << y << ")";
      EXPECT_EQ(arrived, space.owner_of(target));
    }
  }
}

TEST(RoutingProperty, LongLinkRoutingBeatsPlainCanOnAverage) {
  // INSCAN long links (2^k fingers) should cut hop counts versus plain
  // neighbor-greedy routing at scale.
  sim::Simulator sim(11);
  net::Topology topo(net::TopologyConfig{}, Rng(12));
  net::MessageBus bus(sim, topo);
  can::CanSpace space(2, Rng(13));
  index::InscanConfig cfg;
  index::IndexSystem idx(sim, bus, space, cfg, Rng(14));
  idx.attach_to_space();
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < 256; ++i) {
    const NodeId id = topo.add_host();
    space.join(id);
    idx.add_node(id);
    ids.push_back(id);
  }
  sim.run_until(seconds(1200));  // probes fill the finger tables

  Rng rng(15);
  double plain_hops = 0, finger_msgs = 0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    const can::Point target{rng.uniform(), rng.uniform()};
    const NodeId from = ids[rng.pick_index(ids.size())];
    plain_hops += static_cast<double>(space.route(from, target).size());

    const std::uint64_t before = bus.stats().sent(net::MsgType::kDutyQuery);
    bool arrived = false;
    idx.route(from, target, net::MsgType::kDutyQuery, 64,
              [&](NodeId) { arrived = true; });
    sim.run_until(sim.now() + seconds(120));
    EXPECT_TRUE(arrived);
    finger_msgs += static_cast<double>(
        bus.stats().sent(net::MsgType::kDutyQuery) - before);
  }
  EXPECT_LT(finger_msgs / trials, plain_hops / trials + 0.5)
      << "long links should not lengthen routes";
}

TEST(RoutingProperty, RecordsSitAtOwnersAfterChurn) {
  sim::Simulator sim(17);
  net::Topology topo(net::TopologyConfig{}, Rng(18));
  net::MessageBus bus(sim, topo);
  can::CanSpace space(2, Rng(19));
  index::InscanConfig cfg;
  index::IndexSystem idx(sim, bus, space, cfg, Rng(20));
  idx.attach_to_space();
  const ResourceVector cmax = ResourceVector::filled(2, 10.0);
  std::unordered_map<NodeId, ResourceVector> avail;
  idx.set_availability_provider(
      [&](NodeId id) -> std::optional<index::Record> {
        const auto it = avail.find(id);
        if (it == avail.end()) return std::nullopt;
        index::Record r;
        r.provider = id;
        r.availability = it->second;
        r.location = can::Point::normalized(it->second, cmax);
        r.published_at = sim.now();
        r.expires_at = sim.now() + cfg.record_ttl;
        return r;
      });
  Rng rng(21);
  std::vector<NodeId> live;
  std::uint32_t next = 0;
  auto join_one = [&] {
    const NodeId id = topo.add_host();
    SOC_CHECK(id.value == next);
    ++next;
    space.join(id);
    avail[id] = ResourceVector{rng.uniform(0, 10), rng.uniform(0, 10)};
    idx.add_node(id);
    live.push_back(id);
  };
  for (int i = 0; i < 48; ++i) join_one();
  sim.run_until(seconds(900));

  // Churn: interleave joins and leaves with running time.
  for (int step = 0; step < 30; ++step) {
    if (live.size() < 16 || rng.chance(0.5)) {
      join_one();
    } else {
      const std::size_t idx_victim = rng.pick_index(live.size());
      const NodeId victim = live[idx_victim];
      idx.remove_node(victim);
      space.leave(victim);
      avail.erase(victim);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx_victim));
    }
    sim.run_until(sim.now() + seconds(60));
  }
  ASSERT_TRUE(space.verify_invariants());

  // Every live cached record must be stored at the current owner of its
  // location (re-homing on splits/merges keeps this true at all times).
  for (const NodeId id : live) {
    for (const auto& r : idx.cache(id).all_live(sim.now())) {
      EXPECT_TRUE(space.zone_of(id).contains(r.location))
          << "record for provider " << r.provider.value
          << " misplaced on node " << id.value;
    }
  }
}

}  // namespace
}  // namespace soc
