// Tests for gossip-based max-aggregation (the paper's [23], used by SoS to
// obtain c_max) and its wiring into PID-CAN.
#include <gtest/gtest.h>

#include "src/can/space.hpp"
#include "src/core/pidcan_protocol.hpp"
#include "src/gossip/aggregation.hpp"
#include "src/net/topology.hpp"
#include "src/psm/task.hpp"
#include "src/sim/simulator.hpp"

namespace soc::gossip {
namespace {

class AggregationFixture {
 public:
  AggregationFixture(std::size_t n, std::uint64_t seed,
                     AggregationConfig cfg = {})
      : sim_(seed), topo_(net::TopologyConfig{}, Rng(seed + 1)),
        bus_(sim_, topo_), space_(2, Rng(seed + 2)),
        agg_(sim_, bus_, cfg, Rng(seed + 3)), rng_(seed + 4) {
    agg_.set_peer_sampler([this](NodeId id) -> std::optional<NodeId> {
      if (!space_.contains(id)) return std::nullopt;
      const auto& ns = space_.neighbors_of(id);
      if (ns.empty()) return std::nullopt;
      return ns[rng_.pick_index(ns.size())];
    });
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = topo_.add_host();
      space_.join(id);
      ResourceVector local{rng_.uniform(1.0, 9.0), rng_.uniform(1.0, 9.0)};
      if (i == n / 2) local = ResourceVector{25.6, 19.0};  // the true max
      agg_.add_node(id, local);
      ids_.push_back(id);
    }
  }

  sim::Simulator sim_;
  net::Topology topo_;
  net::MessageBus bus_;
  can::CanSpace space_;
  MaxAggregator agg_;
  Rng rng_;
  std::vector<NodeId> ids_;
};

TEST(MaxAggregation, ConvergesToGlobalMaxEverywhere) {
  AggregationFixture fx(64, 3);
  fx.sim_.run_until(seconds(1200));  // ~20 exchange rounds
  std::size_t converged = 0;
  for (const NodeId id : fx.ids_) {
    const ResourceVector& est = fx.agg_.estimate(id);
    converged += (est[0] == 25.6 && est[1] == 19.0);
  }
  // Epidemic max spreads in O(log n) rounds; essentially everyone should
  // know the global ceiling.
  EXPECT_GE(converged, fx.ids_.size() * 9 / 10);
}

TEST(MaxAggregation, EstimateDominatesLocalValue) {
  AggregationFixture fx(32, 5);
  fx.sim_.run_until(seconds(600));
  for (const NodeId id : fx.ids_) {
    // Estimates are monotone merges of local values; never below zero and
    // never above the true global max.
    const ResourceVector& est = fx.agg_.estimate(id);
    EXPECT_TRUE(est.non_negative());
    EXPECT_TRUE((ResourceVector{25.6, 19.0}).dominates(est));
  }
}

TEST(MaxAggregation, EpochResetForgetsDepartedMax) {
  AggregationConfig cfg;
  cfg.epoch_length = seconds(600);
  AggregationFixture fx(32, 7, cfg);
  fx.sim_.run_until(seconds(500));  // first epoch: max known widely
  // The holder of the maximum departs.
  const NodeId holder = fx.ids_[32 / 2];
  fx.agg_.remove_node(holder);
  fx.space_.leave(holder);
  // Two full epochs later the stale maximum must be gone everywhere.
  fx.sim_.run_until(seconds(500 + 2 * 600 + 300));
  for (const NodeId id : fx.ids_) {
    if (id == holder) continue;
    EXPECT_LT(fx.agg_.estimate(id)[0], 25.6);
  }
}

TEST(MaxAggregation, UpdateLocalRaisesEstimate) {
  AggregationFixture fx(8, 9);
  const NodeId id = fx.ids_[0];
  fx.agg_.update_local(id, ResourceVector{99.0, 1.0});
  EXPECT_DOUBLE_EQ(fx.agg_.estimate(id)[0], 99.0);
}

TEST(MaxAggregation, ExchangesAreCounted) {
  AggregationFixture fx(16, 11);
  fx.sim_.run_until(seconds(600));
  EXPECT_GT(fx.agg_.exchanges(), 16u * 5);
}

TEST(PidCanAggregation, SosUsesAggregatedBound) {
  sim::Simulator sim(13);
  net::Topology topo(net::TopologyConfig{}, Rng(14));
  net::MessageBus bus(sim, topo);
  core::PidCanOptions opt;
  opt.slack_on_submission = true;
  opt.aggregate_cmax = true;
  const ResourceVector cmax{25.6, 80, 10, 240, 4096};
  core::PidCanProtocol proto(sim, bus, cmax, opt, Rng(15));
  ASSERT_NE(proto.aggregator(), nullptr);

  proto.set_availability_source(
      [](NodeId) -> std::optional<ResourceVector> {
        return ResourceVector{4.0, 20.0, 6.0, 60.0, 1024.0};
      });
  for (std::uint32_t i = 0; i < 32; ++i) {
    topo.add_host();
    proto.on_join(NodeId(i));
  }
  sim.run_until(seconds(1200));
  // Every node contributes the same capacity: the aggregated bound equals
  // it, well below the configured global c_max.
  const ResourceVector bound = proto.cmax_bound_for(NodeId(0));
  EXPECT_DOUBLE_EQ(bound[0], 4.0);
  EXPECT_TRUE(cmax.dominates(bound));
}

}  // namespace
}  // namespace soc::gossip
