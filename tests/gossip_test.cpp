// Tests for the Newscast gossip baseline.
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/gossip/newscast.hpp"
#include "src/net/topology.hpp"
#include "src/psm/task.hpp"
#include "src/sim/simulator.hpp"

namespace soc::gossip {
namespace {

class GossipFixture {
 public:
  GossipFixture(std::size_t n, std::uint64_t seed, NewscastConfig cfg = {})
      : sim_(seed), topo_(net::TopologyConfig{}, Rng(seed + 1)),
        bus_(sim_, topo_), system_(sim_, bus_, cfg, Rng(seed + 2)),
        rng_(seed + 3) {
    system_.set_availability_provider(
        [this](NodeId id) -> std::optional<ResourceVector> {
          const auto it = avail_.find(id);
          if (it == avail_.end()) return std::nullopt;
          return it->second;
        });
    std::vector<NodeId> members;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = topo_.add_host();
      ResourceVector a(psm::kDims);
      for (std::size_t d = 0; d < psm::kDims; ++d) {
        a[d] = rng_.uniform(0.0, 10.0);
      }
      avail_[id] = a;
      std::vector<NodeId> bootstrap;
      for (std::size_t b = 0; b < 4 && b < members.size(); ++b) {
        bootstrap.push_back(members[rng_.pick_index(members.size())]);
      }
      system_.add_node(id, bootstrap);
      members.push_back(id);
      ids_.push_back(id);
    }
  }

  sim::Simulator sim_;
  net::Topology topo_;
  net::MessageBus bus_;
  NewscastSystem system_;
  Rng rng_;
  std::unordered_map<NodeId, ResourceVector> avail_;
  std::vector<NodeId> ids_;
};

TEST(Newscast, ViewsFillUpToBound) {
  NewscastConfig cfg;
  cfg.view_size = 8;
  GossipFixture fx(64, 5, cfg);
  fx.sim_.run_until(seconds(1200));
  std::size_t total = 0;
  for (const NodeId id : fx.ids_) {
    const auto& view = fx.system_.view_of(id);
    EXPECT_LE(view.size(), 8u);
    total += view.size();
  }
  // After many exchange rounds, views should be essentially full.
  EXPECT_GT(total, 64u * 6);
}

TEST(Newscast, ViewEntriesCarryFreshAvailability) {
  GossipFixture fx(32, 7);
  fx.sim_.run_until(seconds(900));
  std::size_t with_data = 0;
  for (const NodeId id : fx.ids_) {
    for (const auto& e : fx.system_.view_of(id)) {
      ASSERT_TRUE(fx.avail_.contains(e.id));
      if (e.availability.sum() > 0) {
        ++with_data;
        EXPECT_EQ(e.availability, fx.avail_.at(e.id));
      }
    }
  }
  EXPECT_GT(with_data, 32u);
}

TEST(Newscast, QueryFindsQualifiedEntry) {
  GossipFixture fx(64, 9);
  fx.sim_.run_until(seconds(1200));
  const ResourceVector demand = ResourceVector::filled(psm::kDims, 2.0);
  int hits = 0;
  for (int i = 0; i < 20; ++i) {
    bool done = false;
    std::vector<GossipCandidate> out;
    fx.system_.query(fx.ids_[fx.rng_.pick_index(fx.ids_.size())], demand, 1,
                     [&](std::vector<GossipCandidate> f) {
                       out = std::move(f);
                       done = true;
                     });
    fx.sim_.run_until(fx.sim_.now() + seconds(200));
    EXPECT_TRUE(done);
    if (!out.empty()) {
      ++hits;
      EXPECT_TRUE(out[0].availability.dominates(demand));
    }
  }
  EXPECT_GE(hits, 15);
}

TEST(Newscast, ImpossibleDemandFails) {
  GossipFixture fx(32, 11);
  fx.sim_.run_until(seconds(900));
  bool done = false;
  std::vector<GossipCandidate> out;
  fx.system_.query(fx.ids_[0], ResourceVector::filled(psm::kDims, 99.0), 1,
                   [&](std::vector<GossipCandidate> f) {
                     out = std::move(f);
                     done = true;
                   });
  fx.sim_.run_until(fx.sim_.now() + seconds(300));
  EXPECT_TRUE(done);
  EXPECT_TRUE(out.empty());
  EXPECT_GE(fx.system_.stats().failed, 1u);
}

TEST(Newscast, RemovedNodeStopsGossiping) {
  GossipFixture fx(16, 13);
  fx.sim_.run_until(seconds(600));
  fx.system_.remove_node(fx.ids_[0]);
  EXPECT_FALSE(fx.system_.tracks(fx.ids_[0]));
  // Simulation continues without touching the removed node's state.
  fx.sim_.run_until(fx.sim_.now() + seconds(600));
  EXPECT_TRUE(fx.system_.tracks(fx.ids_[1]));
}

}  // namespace
}  // namespace soc::gossip
