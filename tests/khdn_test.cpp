// Tests for the KHDN-CAN baseline: duty placement, K-hop negative record
// spreading, and the sampled K-hop positive query scan.
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/khdn/khdn.hpp"
#include "src/net/topology.hpp"
#include "src/psm/task.hpp"
#include "src/sim/simulator.hpp"

namespace soc::khdn {
namespace {

class KhdnFixture {
 public:
  KhdnFixture(std::size_t n, std::size_t dims, std::uint64_t seed,
              KhdnConfig cfg = {})
      : sim_(seed), topo_(net::TopologyConfig{}, Rng(seed + 1)),
        bus_(sim_, topo_), space_(dims, Rng(seed + 2)),
        system_(sim_, bus_, space_, cfg, Rng(seed + 3)), rng_(seed + 4),
        cmax_(ResourceVector::filled(dims, 10.0)) {
    system_.attach_to_space();
    system_.set_availability_provider(
        [this](NodeId id) -> std::optional<index::Record> {
          const auto it = avail_.find(id);
          if (it == avail_.end()) return std::nullopt;
          index::Record r;
          r.provider = id;
          r.availability = it->second;
          r.location = can::Point::normalized(it->second, cmax_);
          return r;
        });
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = topo_.add_host();
      space_.join(id);
      ResourceVector a(dims);
      for (std::size_t d = 0; d < dims; ++d) a[d] = rng_.uniform(0.0, 10.0);
      avail_[id] = a;
      system_.add_node(id);
      ids_.push_back(id);
    }
  }

  sim::Simulator sim_;
  net::Topology topo_;
  net::MessageBus bus_;
  can::CanSpace space_;
  KhdnSystem system_;
  Rng rng_;
  ResourceVector cmax_;
  std::unordered_map<NodeId, ResourceVector> avail_;
  std::vector<NodeId> ids_;
};

TEST(Khdn, SpreadingCreatesRecordCopies) {
  KhdnFixture fx(64, 2, 3);
  fx.sim_.run_until(seconds(900));
  // Every node published; with K=2 spreading each record also lands on
  // negative neighbors, so total stored records exceed the population.
  std::size_t total = 0;
  for (const NodeId id : fx.ids_) {
    total += fx.system_.cache(id).live_count(fx.sim_.now());
  }
  EXPECT_GT(total, 64u);
  EXPECT_GT(fx.bus_.stats().sent(net::MsgType::kKhdnSpread), 64u);
}

TEST(Khdn, QueryFindsQualifiedCandidates) {
  KhdnFixture fx(64, 2, 5);
  fx.sim_.run_until(seconds(900));
  const ResourceVector demand{3.0, 3.0};
  int hits = 0;
  for (int i = 0; i < 20; ++i) {
    bool done = false;
    std::vector<KhdnCandidate> out;
    fx.system_.query(fx.ids_[fx.rng_.pick_index(fx.ids_.size())], demand,
                     can::Point::normalized(demand, fx.cmax_), 1,
                     [&](std::vector<KhdnCandidate> f) {
                       out = std::move(f);
                       done = true;
                     });
    fx.sim_.run_until(fx.sim_.now() + seconds(200));
    EXPECT_TRUE(done);
    if (!out.empty()) {
      ++hits;
      EXPECT_TRUE(out[0].availability.dominates(demand));
    }
  }
  EXPECT_GE(hits, 12);
}

TEST(Khdn, ImpossibleDemandReturnsEmpty) {
  KhdnFixture fx(32, 2, 7);
  fx.sim_.run_until(seconds(600));
  bool done = false;
  std::vector<KhdnCandidate> out;
  const ResourceVector demand{11.0, 11.0};
  fx.system_.query(fx.ids_[0], demand,
                   can::Point::normalized(demand, fx.cmax_), 1,
                   [&](std::vector<KhdnCandidate> f) {
                     out = std::move(f);
                     done = true;
                   });
  fx.sim_.run_until(fx.sim_.now() + seconds(300));
  EXPECT_TRUE(done);
  EXPECT_TRUE(out.empty());
}

TEST(Khdn, LargerKSpreadsFurther) {
  KhdnConfig k1;
  k1.k_hops = 1;
  KhdnConfig k3;
  k3.k_hops = 3;
  KhdnFixture a(64, 2, 9, k1);
  KhdnFixture b(64, 2, 9, k3);
  a.sim_.run_until(seconds(900));
  b.sim_.run_until(seconds(900));
  EXPECT_GT(b.bus_.stats().sent(net::MsgType::kKhdnSpread),
            a.bus_.stats().sent(net::MsgType::kKhdnSpread));
}

TEST(Khdn, RemoveNodeDropsState) {
  KhdnFixture fx(16, 2, 11);
  fx.sim_.run_until(seconds(600));
  fx.system_.remove_node(fx.ids_[3]);
  EXPECT_FALSE(fx.system_.tracks(fx.ids_[3]));
  fx.space_.leave(fx.ids_[3]);
  EXPECT_TRUE(fx.space_.verify_invariants());
}

}  // namespace
}  // namespace soc::khdn
