// FlatMap oracle test: a long random insert/find/erase workload checked
// against std::unordered_map at every step, plus the properties the
// Experiment::in_flight_ swap leans on — rehash-and-shrink after a drain,
// tombstone reuse, and deterministic iteration for a deterministic
// history.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/flat_map.hpp"
#include "src/common/rng.hpp"

namespace soc {
namespace {

TEST(FlatMap, MatchesUnorderedMapOracleUnderChurn) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  Rng rng(20260808);

  std::uint64_t next_key = 0;
  std::vector<std::uint64_t> alive;
  for (std::size_t step = 0; step < 50000; ++step) {
    // Mostly sequential keys (TaskIds are), biased toward growth early
    // and churn later, like the in-flight table's life cycle.
    if (alive.empty() || rng.chance(0.55)) {
      const std::uint64_t k = next_key++;
      EXPECT_TRUE(map.emplace(k, k * 13));
      EXPECT_FALSE(map.emplace(k, 0));  // duplicate insert is a no-op
      oracle.emplace(k, k * 13);
      alive.push_back(k);
    } else {
      const std::size_t idx = rng.pick_index(alive.size());
      const std::uint64_t k = alive[idx];
      EXPECT_TRUE(map.erase(k));
      EXPECT_FALSE(map.erase(k));  // double erase reports absence
      oracle.erase(k);
      alive[idx] = alive.back();
      alive.pop_back();
    }
    ASSERT_EQ(map.size(), oracle.size());
    // Spot-check lookups across present, erased, and never-seen keys.
    for (std::uint64_t probe = step % 7; probe < next_key + 3; probe += 41) {
      const auto it = map.find(probe);
      const auto oit = oracle.find(probe);
      ASSERT_EQ(it != map.end(), oit != oracle.end()) << "key " << probe;
      if (oit != oracle.end()) {
        ASSERT_EQ(it->first, probe);
        ASSERT_EQ(it->second, oit->second);
      }
      ASSERT_EQ(map.contains(probe), oit != oracle.end());
    }
  }

  // Full iteration covers exactly the oracle's pairs (order-insensitive).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got, want;
  for (const auto& e : map) got.emplace_back(e.first, e.second);
  for (const auto& [k, v] : oracle) want.emplace_back(k, v);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(FlatMap, DrainedTableShrinksOnceTombstonesForceARehash) {
  FlatMap<std::uint32_t, std::uint32_t> map;
  for (std::uint32_t k = 0; k < 100000; ++k) map.emplace(k, k);
  const std::size_t peak_cap = map.capacity();
  EXPECT_GE(peak_cap, 100000u);
  // Drain to a small survivor set, then churn at that size — the
  // in-flight table's life cycle after a workload burst.  Every erase
  // leaves a tombstone; when full+tombstone load passes 3/4 the rehash
  // sizes for the *live* count, handing the burst's memory back (which
  // unordered_map never does).
  for (std::uint32_t k = 64; k < 100000; ++k) map.erase(k);
  std::uint32_t next = 200000;
  for (std::size_t step = 0; step < 250000; ++step) {
    map.emplace(next, next);
    map.erase(next);
    ++next;
  }
  EXPECT_EQ(map.size(), 64u);
  EXPECT_LT(map.capacity(), peak_cap / 64);
  for (std::uint32_t k = 0; k < 64; ++k) {
    ASSERT_NE(map.find(k), map.end());
    EXPECT_EQ(map.find(k)->second, k);
  }
}

TEST(FlatMap, IterationIsDeterministicForSameHistory) {
  const auto build = [] {
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 500; ++k) m.emplace(k, static_cast<int>(k));
    for (std::uint64_t k = 0; k < 500; k += 3) m.erase(k);
    for (std::uint64_t k = 1000; k < 1200; ++k) {
      m.emplace(k, static_cast<int>(k));
    }
    return m;
  };
  const FlatMap<std::uint64_t, int> a = build();
  const FlatMap<std::uint64_t, int> b = build();
  std::vector<std::uint64_t> order_a, order_b;
  for (const auto& e : a) order_a.push_back(e.first);
  for (const auto& e : b) order_b.push_back(e.first);
  EXPECT_EQ(order_a, order_b);  // same history → same table walk
  EXPECT_EQ(order_a.size(), a.size());
}

}  // namespace
}  // namespace soc
