// Determinism regression for the simulator hot path: a full experiment is a
// pure function of its seed.  Two runs with the same config must produce
// bit-identical metric series and traffic counts — the property that makes
// every figure in the reproduction comparable across machines and across
// engine rewrites (this guard was introduced with the indexed-heap event
// queue, whose same-timestamp FIFO tie-break must match the original).
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"

namespace soc::core {
namespace {

ExperimentConfig small_config(ProtocolKind protocol, std::uint64_t seed) {
  ExperimentConfig c;
  c.protocol = protocol;
  c.nodes = 64;
  c.duration = seconds(3600);
  c.sample_step = seconds(600);
  c.seed = seed;
  c.churn_dynamic_degree = 0.1;  // exercise cancel paths via churn/timeouts
  return c;
}

void expect_identical(const ExperimentResults& a, const ExperimentResults& b) {
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.t_ratio, b.t_ratio);
  EXPECT_EQ(a.f_ratio, b.f_ratio);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
  EXPECT_EQ(a.msg_cost_per_node, b.msg_cost_per_node);
  EXPECT_EQ(a.avg_query_delay_s, b.avg_query_delay_s);
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].hour, b.series[i].hour) << "row " << i;
    EXPECT_EQ(a.series[i].generated, b.series[i].generated) << "row " << i;
    EXPECT_EQ(a.series[i].finished, b.series[i].finished) << "row " << i;
    EXPECT_EQ(a.series[i].failed, b.series[i].failed) << "row " << i;
    EXPECT_EQ(a.series[i].t_ratio, b.series[i].t_ratio) << "row " << i;
    EXPECT_EQ(a.series[i].f_ratio, b.series[i].f_ratio) << "row " << i;
    EXPECT_EQ(a.series[i].fairness, b.series[i].fairness) << "row " << i;
  }
}

TEST(Determinism, HidCanSameSeedBitIdentical) {
  const auto a = run_experiment(small_config(ProtocolKind::kHidCan, 7));
  const auto b = run_experiment(small_config(ProtocolKind::kHidCan, 7));
  expect_identical(a, b);
  EXPECT_GT(a.generated, 0u);  // the run did something
}

TEST(Determinism, NewscastSameSeedBitIdentical) {
  const auto a = run_experiment(small_config(ProtocolKind::kNewscast, 7));
  const auto b = run_experiment(small_config(ProtocolKind::kNewscast, 7));
  expect_identical(a, b);
  EXPECT_GT(a.generated, 0u);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_experiment(small_config(ProtocolKind::kHidCan, 7));
  const auto b = run_experiment(small_config(ProtocolKind::kHidCan, 8));
  // Bulk counters are the loosest fingerprint; events_executed differing is
  // enough to show the seed actually steers the run.
  EXPECT_NE(a.events_executed, b.events_executed);
}

}  // namespace
}  // namespace soc::core
