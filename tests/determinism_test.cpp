// Determinism regression for the simulator hot path: a full experiment is a
// pure function of its seed.  Two runs with the same config must produce
// bit-identical metric series and traffic counts — the property that makes
// every figure in the reproduction comparable across machines and across
// engine rewrites (this guard was introduced with the indexed-heap event
// queue, whose same-timestamp FIFO tie-break must match the original).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/experiment.hpp"
#include "src/index/inscan.hpp"
#include "src/net/topology.hpp"

namespace soc::core {
namespace {

ExperimentConfig small_config(ProtocolKind protocol, std::uint64_t seed) {
  ExperimentConfig c;
  c.protocol = protocol;
  c.nodes = 64;
  c.duration = seconds(3600);
  c.sample_step = seconds(600);
  c.seed = seed;
  c.churn_dynamic_degree = 0.1;  // exercise cancel paths via churn/timeouts
  return c;
}

void expect_identical(const ExperimentResults& a, const ExperimentResults& b) {
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.t_ratio, b.t_ratio);
  EXPECT_EQ(a.f_ratio, b.f_ratio);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
  EXPECT_EQ(a.msg_cost_per_node, b.msg_cost_per_node);
  EXPECT_EQ(a.avg_query_delay_s, b.avg_query_delay_s);
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].hour, b.series[i].hour) << "row " << i;
    EXPECT_EQ(a.series[i].generated, b.series[i].generated) << "row " << i;
    EXPECT_EQ(a.series[i].finished, b.series[i].finished) << "row " << i;
    EXPECT_EQ(a.series[i].failed, b.series[i].failed) << "row " << i;
    EXPECT_EQ(a.series[i].t_ratio, b.series[i].t_ratio) << "row " << i;
    EXPECT_EQ(a.series[i].f_ratio, b.series[i].f_ratio) << "row " << i;
    EXPECT_EQ(a.series[i].fairness, b.series[i].fairness) << "row " << i;
  }
  // Per-MsgType traffic counters must match exactly — the breakdown the
  // perf-trajectory JSON records and bench_compare --check-counts gates.
  ASSERT_EQ(a.traffic_by_type.size(), b.traffic_by_type.size());
  for (std::size_t i = 0; i < a.traffic_by_type.size(); ++i) {
    EXPECT_EQ(a.traffic_by_type[i].type, b.traffic_by_type[i].type) << i;
    EXPECT_EQ(a.traffic_by_type[i].sent, b.traffic_by_type[i].sent)
        << a.traffic_by_type[i].type;
    EXPECT_EQ(a.traffic_by_type[i].delivered, b.traffic_by_type[i].delivered)
        << a.traffic_by_type[i].type;
    EXPECT_EQ(a.traffic_by_type[i].lost, b.traffic_by_type[i].lost)
        << a.traffic_by_type[i].type;
  }
}

TEST(Determinism, HidCanSameSeedBitIdentical) {
  const auto a = run_experiment(small_config(ProtocolKind::kHidCan, 7));
  const auto b = run_experiment(small_config(ProtocolKind::kHidCan, 7));
  expect_identical(a, b);
  EXPECT_GT(a.generated, 0u);  // the run did something
}

TEST(Determinism, NewscastSameSeedBitIdentical) {
  const auto a = run_experiment(small_config(ProtocolKind::kNewscast, 7));
  const auto b = run_experiment(small_config(ProtocolKind::kNewscast, 7));
  expect_identical(a, b);
  EXPECT_GT(a.generated, 0u);
}

// Index-layer determinism: drive an IndexSystem directly (publishes, probe
// walks, diffusion) and fingerprint what the unordered_map-era store could
// never pin — the byte sequence of every duty cache's qualified() ordering
// — plus every per-MsgType traffic counter.  Two same-seed runs must agree
// bit for bit, and each qualified() list must come out NodeId-sorted (the
// flat store's intended order).
struct IndexRun {
  std::vector<std::uint8_t> qualified_bytes;
  std::vector<std::uint64_t> traffic;
  bool sorted = true;
};

IndexRun run_index_layer(std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::Topology topo(net::TopologyConfig{}, Rng(seed + 1));
  net::MessageBus bus(sim, topo);
  can::CanSpace space(2, Rng(seed + 2));
  index::IndexSystem index(sim, bus, space, index::InscanConfig{},
                           Rng(seed + 3));
  index.attach_to_space();
  const ResourceVector cmax = ResourceVector::filled(2, 10.0);
  std::unordered_map<NodeId, ResourceVector> avail;
  index.set_availability_provider(
      [&](NodeId id) -> std::optional<index::Record> {
        const auto it = avail.find(id);
        if (it == avail.end()) return std::nullopt;
        index::Record r;
        r.provider = id;
        r.availability = it->second;
        r.location = can::Point::normalized(it->second, cmax);
        r.published_at = sim.now();
        r.expires_at = sim.now() + index.config().record_ttl;
        return r;
      });
  Rng rng(seed + 4);
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < 48; ++i) {
    const NodeId id = topo.add_host();
    space.join(id);
    avail[id] = ResourceVector{rng.uniform(0, 10), rng.uniform(0, 10)};
    index.add_node(id);
    ids.push_back(id);
  }
  sim.run_until(seconds(1800));

  IndexRun out;
  for (const NodeId id : ids) {
    for (int d = 0; d <= 8; d += 4) {
      const ResourceVector demand{static_cast<double>(d),
                                  static_cast<double>(d)};
      const auto q = index.cache(id).qualified(demand, sim.now());
      out.sorted &= std::is_sorted(
          q.begin(), q.end(), [](const index::Record& a,
                                 const index::Record& b) {
            return a.provider < b.provider;
          });
      // Byte-serialize the ordering: node, demand level, then the provider
      // id sequence exactly as the query pipeline would consume it.
      for (const std::uint32_t v : {id.value, static_cast<std::uint32_t>(d)}) {
        for (int s = 0; s < 32; s += 8) {
          out.qualified_bytes.push_back((v >> s) & 0xffu);
        }
      }
      for (const auto& r : q) {
        for (int s = 0; s < 32; s += 8) {
          out.qualified_bytes.push_back((r.provider.value >> s) & 0xffu);
        }
      }
    }
  }
  for (std::size_t t = 0; t < static_cast<std::size_t>(net::MsgType::kCount);
       ++t) {
    const auto type = static_cast<net::MsgType>(t);
    out.traffic.push_back(bus.stats().sent(type));
    out.traffic.push_back(bus.stats().delivered(type));
    out.traffic.push_back(bus.stats().lost(type));
  }
  return out;
}

TEST(Determinism, IndexLayerQualifiedOrderingsByteIdentical) {
  const IndexRun a = run_index_layer(29);
  const IndexRun b = run_index_layer(29);
  EXPECT_TRUE(a.sorted);
  EXPECT_TRUE(b.sorted);
  ASSERT_FALSE(a.qualified_bytes.empty());
  EXPECT_EQ(a.qualified_bytes, b.qualified_bytes);
  EXPECT_EQ(a.traffic, b.traffic);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_experiment(small_config(ProtocolKind::kHidCan, 7));
  const auto b = run_experiment(small_config(ProtocolKind::kHidCan, 8));
  // Bulk counters are the loosest fingerprint; events_executed differing is
  // enough to show the seed actually steers the run.
  EXPECT_NE(a.events_executed, b.events_executed);
}

}  // namespace
}  // namespace soc::core
