// Tests for the Table I/II workload generators and the evaluation metrics.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/stats.hpp"
#include "src/metrics/task_metrics.hpp"
#include "src/workload/generator.hpp"

namespace soc {
namespace {

using metrics::TaskMetrics;
using workload::NodeGenerator;
using workload::TaskGenConfig;
using workload::TaskGenerator;

TEST(NodeGenerator, CapacitiesWithinTableIRanges) {
  NodeGenerator gen;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const ResourceVector c = gen.generate(rng);
    ASSERT_EQ(c.size(), psm::kDims);
    EXPECT_GE(c[psm::kCpu], 1.0);
    EXPECT_LE(c[psm::kCpu], 25.6);
    EXPECT_GE(c[psm::kIo], 20.0);
    EXPECT_LE(c[psm::kIo], 80.0);
    EXPECT_GE(c[psm::kNet], 5.0);
    EXPECT_LE(c[psm::kNet], 10.0);
    EXPECT_GE(c[psm::kDisk], 20.0);
    EXPECT_LE(c[psm::kDisk], 240.0);
    EXPECT_GE(c[psm::kMemory], 512.0);
    EXPECT_LE(c[psm::kMemory], 4096.0);
  }
}

TEST(NodeGenerator, CmaxDominatesEveryDraw) {
  NodeGenerator gen;
  const ResourceVector cmax = gen.cmax();
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(cmax.dominates(gen.generate(rng)));
  }
  EXPECT_DOUBLE_EQ(cmax[psm::kCpu], 25.6);
  EXPECT_DOUBLE_EQ(cmax[psm::kMemory], 4096.0);
}

TEST(NodeGenerator, DiscreteValuesComeFromTable) {
  NodeGenerator gen;
  Rng rng(3);
  std::set<double> io_values;
  for (int i = 0; i < 400; ++i) io_values.insert(gen.generate(rng)[psm::kIo]);
  EXPECT_EQ(io_values, (std::set<double>{20, 40, 60, 80}));
}

TEST(TaskGenerator, DemandScalesWithLambda) {
  TaskGenConfig half;
  half.demand_ratio = 0.5;
  TaskGenConfig quarter;
  quarter.demand_ratio = 0.25;
  const TaskGenerator g_half(half), g_quarter(quarter);
  Rng rng(4);
  double sum_half = 0, sum_quarter = 0;
  for (int i = 0; i < 2000; ++i) {
    sum_half += g_half.generate(NodeId(0), 0, 0, rng).expectation[psm::kCpu];
    sum_quarter +=
        g_quarter.generate(NodeId(0), 0, 0, rng).expectation[psm::kCpu];
  }
  EXPECT_NEAR(sum_half / sum_quarter, 2.0, 0.1);
}

TEST(TaskGenerator, DemandsWithinTableIIRanges) {
  TaskGenConfig cfg;
  cfg.demand_ratio = 1.0;
  const TaskGenerator gen(cfg);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto t = gen.generate(NodeId(1), static_cast<std::uint32_t>(i),
                                seconds(100), rng);
    const auto& e = t.expectation;
    EXPECT_GE(e[psm::kCpu], 1.0);
    EXPECT_LE(e[psm::kCpu], 25.6);
    EXPECT_GE(e[psm::kNet], 0.1);
    EXPECT_LE(e[psm::kNet], 10.0);
    EXPECT_GE(e[psm::kMemory], 512.0);
    EXPECT_LE(e[psm::kMemory], 4096.0);
    EXPECT_EQ(t.submit_time, seconds(100));
    EXPECT_EQ(t.origin, NodeId(1));
  }
}

TEST(TaskGenerator, MeanExecutionTimeNear3000s) {
  TaskGenConfig cfg;
  cfg.demand_ratio = 0.5;
  const TaskGenerator gen(cfg);
  Rng rng(6);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += gen.generate(NodeId(0), 0, 0, rng).expected_exec_seconds();
  }
  // Clamping to [300, 12000] pulls the exponential mean slightly below
  // 3000 s; the paper only requires "overall average ≈ 3000 seconds".
  EXPECT_NEAR(sum / n, 3000.0, 200.0);
}

TEST(TaskGenerator, WorkloadMatchesExpectationTimesExecTime) {
  TaskGenConfig cfg;
  cfg.demand_ratio = 0.5;
  const TaskGenerator gen(cfg);
  Rng rng(7);
  const auto t = gen.generate(NodeId(0), 0, 0, rng);
  const double exec = t.expected_exec_seconds();
  for (std::size_t k = 0; k < psm::kRateDims; ++k) {
    EXPECT_NEAR(t.workload[k] / t.expectation[k], exec, 1e-6);
  }
}

TEST(ArrivalProcess, ExponentialMean) {
  Rng rng(8);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += to_seconds(workload::next_arrival_delay(3000.0, rng));
  }
  EXPECT_NEAR(sum / n, 3000.0, 60.0);
}

TEST(TaskMetrics, RatiosTrackEvents) {
  TaskMetrics m;
  for (int i = 0; i < 10; ++i) m.on_generated(seconds(i * 10));
  for (int i = 0; i < 6; ++i) m.on_finished(seconds(50 + i), 1.0);
  for (int i = 0; i < 2; ++i) m.on_failed(seconds(70 + i));
  EXPECT_DOUBLE_EQ(m.t_ratio(), 0.6);
  EXPECT_DOUBLE_EQ(m.f_ratio(), 0.2);
  EXPECT_EQ(m.generated(), 10u);
}

TEST(TaskMetrics, FairnessMatchesJainFormula) {
  TaskMetrics m;
  m.on_generated(0);
  m.on_finished(seconds(1), 1.0);
  m.on_finished(seconds(2), 0.0);
  m.on_finished(seconds(3), 0.0);
  m.on_finished(seconds(4), 0.0);
  EXPECT_DOUBLE_EQ(m.fairness(), 0.25);
}

TEST(TaskMetrics, SeriesIsCumulativeAndMonotone) {
  TaskMetrics m;
  for (int h = 0; h < 24; ++h) {
    m.on_generated(seconds(h * 3600 + 100));
    if (h % 2 == 0) m.on_finished(seconds(h * 3600 + 200), 0.8);
    if (h % 3 == 0) m.on_failed(seconds(h * 3600 + 300));
  }
  const auto series = m.series(seconds(86400), seconds(3600));
  ASSERT_EQ(series.size(), 24u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].generated, series[i - 1].generated);
    EXPECT_GE(series[i].finished, series[i - 1].finished);
    EXPECT_GE(series[i].failed, series[i - 1].failed);
  }
  EXPECT_EQ(series.back().generated, 24u);
  EXPECT_EQ(series.back().finished, 12u);
  EXPECT_EQ(series.back().failed, 8u);
  EXPECT_DOUBLE_EQ(series.back().t_ratio, 0.5);
}

TEST(TaskMetrics, SeriesHandlesEmptySystem) {
  const TaskMetrics m;
  const auto series = m.series(seconds(7200), seconds(3600));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].t_ratio, 0.0);
  EXPECT_DOUBLE_EQ(series[0].fairness, 1.0);
}

/// Brute-force oracle: the pre-streaming representation — every event kept
/// as a timestamped row, series samples computed by filtering.  The
/// streaming TaskMetrics must be bit-identical to this, since the golden
/// trajectories hash the fairness doubles that series() emits.
struct EventOracle {
  struct Ev {
    SimTime at;
    double value;
  };
  std::vector<Ev> generated, failed, finished;

  [[nodiscard]] metrics::SeriesSample sample(SimTime t) const {
    metrics::SeriesSample s;
    s.hour = to_hours(t);
    double sum = 0.0, sum_sq = 0.0;
    std::size_t fin = 0;
    // Streaming order is event order — accumulate left to right exactly.
    for (const Ev& e : finished) {
      if (e.at > t) continue;
      ++fin;
      sum += e.value;
      sum_sq += e.value * e.value;
    }
    for (const Ev& e : generated) s.generated += e.at <= t;
    for (const Ev& e : failed) s.failed += e.at <= t;
    s.finished = fin;
    if (s.generated > 0) {
      s.t_ratio = static_cast<double>(fin) / static_cast<double>(s.generated);
      s.f_ratio =
          static_cast<double>(s.failed) / static_cast<double>(s.generated);
    }
    s.fairness = jain_from_moments(fin, sum, sum_sq);
    return s;
  }
};

TEST(TaskMetrics, StreamingSeriesIsBitIdenticalToEventOracle) {
  // Deterministic pseudo-random event tape, with equal timestamps and
  // bucket-boundary hits on purpose.  Each stream is fed in nondecreasing
  // time order (the simulator guarantee) but the three streams interleave
  // arbitrarily relative to each other.
  TaskMetrics m;
  EventOracle oracle;
  Rng rng(0xfeedface);
  SimTime tg = 0, tf = 0, tc = 0;
  for (int i = 0; i < 4000; ++i) {
    const double roll = rng.uniform();
    if (roll < 0.5) {
      tg += seconds(rng.uniform(0.0, 90.0));
      m.on_generated(tg);
      oracle.generated.push_back({tg, 0.0});
    } else if (roll < 0.8) {
      tc += seconds(rng.uniform(0.0, 150.0));
      // Duplicate timestamps within a bucket are the common case; exact
      // bucket-edge values (multiples of 60 s) exercise the boundary.
      // Round UP so the per-stream nondecreasing-time guarantee holds.
      if (rng.uniform() < 0.2) {
        tc = ((tc + seconds(60) - 1) / seconds(60)) * seconds(60);
      }
      const double v = rng.uniform();
      m.on_finished(tc, v);
      oracle.finished.push_back({tc, v});
    } else {
      tf += seconds(rng.uniform(0.0, 300.0));
      m.on_failed(tf);
      oracle.failed.push_back({tf, 0.0});
    }
  }
  for (const SimTime step : {seconds(60), seconds(600), seconds(3600)}) {
    const SimTime horizon = seconds(90000);
    const auto series = m.series(horizon, step);
    ASSERT_EQ(series.size(),
              static_cast<std::size_t>(horizon / step));
    for (std::size_t i = 0; i < series.size(); ++i) {
      const SimTime t = static_cast<SimTime>(i + 1) * step;
      const metrics::SeriesSample want = oracle.sample(t);
      ASSERT_EQ(series[i].generated, want.generated) << "t=" << t;
      ASSERT_EQ(series[i].finished, want.finished) << "t=" << t;
      ASSERT_EQ(series[i].failed, want.failed) << "t=" << t;
      // Bit-identical doubles, not NEAR: the golden hashes depend on it.
      ASSERT_EQ(series[i].t_ratio, want.t_ratio) << "t=" << t;
      ASSERT_EQ(series[i].f_ratio, want.f_ratio) << "t=" << t;
      ASSERT_EQ(series[i].fairness, want.fairness) << "t=" << t;
    }
  }
  // Memory model: the accumulators keep at most one snapshot per closed
  // 60 s bucket per stream, never one per event.
  EXPECT_DOUBLE_EQ(m.fairness(), oracle.sample(seconds(1 << 30)).fairness);
}

}  // namespace
}  // namespace soc
