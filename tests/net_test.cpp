// Unit tests for the LAN/WAN topology and message bus.
#include <gtest/gtest.h>

#include "src/net/message_bus.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulator.hpp"

namespace soc::net {
namespace {

TopologyConfig small_config() {
  TopologyConfig c;
  c.lan_size = 4;
  c.latency_jitter = 0.0;
  return c;
}

TEST(Topology, GroupsHostsIntoLans) {
  Topology topo(small_config(), Rng(1));
  topo.add_hosts(10);
  EXPECT_EQ(topo.host_count(), 10u);
  EXPECT_EQ(topo.lan_of(NodeId(0)), 0u);
  EXPECT_EQ(topo.lan_of(NodeId(3)), 0u);
  EXPECT_EQ(topo.lan_of(NodeId(4)), 1u);
  EXPECT_EQ(topo.lan_of(NodeId(9)), 2u);
  EXPECT_TRUE(topo.same_lan(NodeId(0), NodeId(3)));
  EXPECT_FALSE(topo.same_lan(NodeId(3), NodeId(4)));
}

TEST(Topology, BandwidthsWithinTableIRanges) {
  Topology topo(small_config(), Rng(2));
  topo.add_hosts(64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const double wan = topo.wan_bandwidth_mbps(NodeId(i));
    EXPECT_GE(wan, 0.2);
    EXPECT_LE(wan, 2.0);
  }
  const double lan_bw = topo.bandwidth_mbps(NodeId(0), NodeId(1));
  EXPECT_GE(lan_bw, 5.0);
  EXPECT_LE(lan_bw, 10.0);
}

TEST(Topology, WanBandwidthIsBottleneckOfEndpoints) {
  Topology topo(small_config(), Rng(3));
  topo.add_hosts(8);
  const NodeId a(0), b(5);
  EXPECT_DOUBLE_EQ(
      topo.bandwidth_mbps(a, b),
      std::min(topo.wan_bandwidth_mbps(a), topo.wan_bandwidth_mbps(b)));
}

TEST(Topology, LanFasterThanWan) {
  Topology topo(small_config(), Rng(4));
  topo.add_hosts(8);
  Rng jitter(1);
  const SimTime lan = topo.transfer_delay(NodeId(0), NodeId(1), 1000, jitter);
  const SimTime wan = topo.transfer_delay(NodeId(0), NodeId(4), 1000, jitter);
  EXPECT_LT(lan, wan);
}

TEST(Topology, TransferDelayScalesWithSize) {
  Topology topo(small_config(), Rng(5));
  topo.add_hosts(8);
  Rng jitter(1);
  const SimTime small = topo.transfer_delay(NodeId(0), NodeId(4), 100, jitter);
  const SimTime big =
      topo.transfer_delay(NodeId(0), NodeId(4), 1000000, jitter);
  EXPECT_LT(small, big);
  // 1 MB over at most 2 Mbps is at least 4 s of serialization.
  EXPECT_GT(big, seconds(4.0));
}

// Regression for the fill rule: hosts fill LANs *sequentially* in arrival
// order (lan = host_index / lan_size) — each LAN fills to capacity before
// the next opens, so late (churn) joins land in the newest LAN.  The class
// doc once said "round-robin", which would scatter cohort arrivals across
// every LAN and break the spatial correlation LAN-level partitions rely
// on; this pins the actual behavior.
TEST(Topology, HostsFillLansSequentiallyNotRoundRobin) {
  Topology topo(small_config(), Rng(11));
  topo.add_hosts(9);  // lan_size 4: LANs {0,1,2,3} {4,5,6,7} {8}
  EXPECT_EQ(topo.lan_count(), 3u);
  for (std::uint32_t i = 0; i < 9; ++i) {
    EXPECT_EQ(topo.lan_of(NodeId(i)), i / 4) << "host " << i;
  }
  // Round-robin would put the next host in LAN 0; sequential fill grows
  // the newest, partial LAN until it reaches capacity.
  EXPECT_EQ(topo.lan_of(topo.add_host()), 2u);
  EXPECT_EQ(topo.lan_of(topo.add_host()), 2u);
  EXPECT_EQ(topo.lan_of(topo.add_host()), 2u);
  EXPECT_EQ(topo.lan_count(), 3u);
  EXPECT_EQ(topo.lan_of(topo.add_host()), 3u);  // 13th host opens LAN 3
  EXPECT_EQ(topo.lan_count(), 4u);
}

TEST(Topology, TransferDelayIsDeterministicInTheJitterStream) {
  TopologyConfig cfg = small_config();
  cfg.latency_jitter = 0.1;
  Topology topo(cfg, Rng(12));
  topo.add_hosts(8);
  Rng a(99), b(99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(topo.transfer_delay(NodeId(0), NodeId(5), 512, a),
              topo.transfer_delay(NodeId(0), NodeId(5), 512, b))
        << "draw " << i;
  }
  // Different jitter seeds diverge somewhere in the sequence (jitter is
  // real, not a constant factor).
  Rng c(100);
  bool any_diff = false;
  Rng a2(99);
  for (int i = 0; i < 50; ++i) {
    any_diff |= topo.transfer_delay(NodeId(0), NodeId(5), 512, a2) !=
                topo.transfer_delay(NodeId(0), NodeId(5), 512, c);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Topology, ZeroJitterDelayMatchesHandComputedSerialization) {
  Topology topo(small_config(), Rng(13));  // latency_jitter = 0
  topo.add_hosts(8);
  Rng jitter(1);
  const NodeId a(0), b(5);
  const std::size_t bytes = 125000;  // 1 Mbit
  const double mbps = topo.bandwidth_mbps(a, b);
  // bits / (mbps * 1e6) seconds of serialization on top of propagation.
  const SimTime expected =
      topo.base_latency(a, b) +
      seconds(static_cast<double>(bytes) * 8.0 / (mbps * 1e6));
  EXPECT_EQ(topo.transfer_delay(a, b, bytes, jitter), expected);
  // The jitter stream was never consumed: a fresh Rng(1) is still in sync.
  Rng fresh(1);
  EXPECT_EQ(fresh.next_u64(), jitter.next_u64());
}

TEST(Topology, LanWanBoundaryUsesTheRightLatencyAndBandwidth) {
  Topology topo(small_config(), Rng(14));  // zero jitter
  topo.add_hosts(8);
  Rng jitter(1);
  // Hosts 3 and 4 are adjacent ids on opposite sides of the LAN boundary.
  EXPECT_TRUE(topo.same_lan(NodeId(0), NodeId(3)));
  EXPECT_FALSE(topo.same_lan(NodeId(3), NodeId(4)));
  EXPECT_EQ(topo.base_latency(NodeId(0), NodeId(3)),
            topo.config().lan_latency);
  EXPECT_EQ(topo.base_latency(NodeId(3), NodeId(4)),
            topo.config().wan_latency);
  // A zero-byte message isolates propagation latency exactly.
  EXPECT_EQ(topo.transfer_delay(NodeId(0), NodeId(3), 0, jitter),
            topo.config().lan_latency);
  EXPECT_EQ(topo.transfer_delay(NodeId(3), NodeId(4), 0, jitter),
            topo.config().wan_latency);
}

TEST(MessageBus, DeliversWithPositiveDelay) {
  sim::Simulator sim(7);
  Topology topo(small_config(), Rng(7));
  topo.add_hosts(8);
  MessageBus bus(sim, topo);
  SimTime delivered_at = -1;
  bus.send(NodeId(0), NodeId(4), MsgType::kDutyQuery, 256,
           [&] { delivered_at = sim.now(); });
  sim.run_all();
  EXPECT_GT(delivered_at, 0);
  EXPECT_EQ(bus.stats().sent(MsgType::kDutyQuery), 1u);
  EXPECT_EQ(bus.stats().total_sent(), 1u);
}

TEST(MessageBus, SelfSendStillDelivers) {
  sim::Simulator sim(8);
  Topology topo(small_config(), Rng(8));
  topo.add_hosts(4);
  MessageBus bus(sim, topo);
  bool got = false;
  bus.send(NodeId(1), NodeId(1), MsgType::kDispatch, 64, [&] { got = true; });
  sim.run_all();
  EXPECT_TRUE(got);
}

TEST(MessageBus, LivenessDropsMessagesToDeadHosts) {
  sim::Simulator sim(9);
  Topology topo(small_config(), Rng(9));
  topo.add_hosts(8);
  MessageBus bus(sim, topo);
  bus.set_liveness([](NodeId id) { return id.value != 4; });
  bool got = false;
  bus.send(NodeId(0), NodeId(4), MsgType::kGossip, 64, [&] { got = true; });
  sim.run_all();
  EXPECT_FALSE(got);
  // The send itself is still accounted (traffic was emitted).
  EXPECT_EQ(bus.stats().sent(MsgType::kGossip), 1u);
}

TEST(MessageBus, PartitionSwallowsCrossCutMessagesOnly) {
  sim::Simulator sim(21);
  Topology topo(small_config(), Rng(21));
  topo.add_hosts(8);  // LAN 0: ids 0–3, LAN 1: ids 4–7
  MessageBus bus(sim, topo);
  bus.set_partition({0});
  EXPECT_TRUE(bus.partition_active());
  EXPECT_TRUE(bus.in_partition_cut(NodeId(0)));
  EXPECT_FALSE(bus.in_partition_cut(NodeId(4)));

  int delivered = 0;
  bus.send(NodeId(0), NodeId(4), MsgType::kGossip, 64, [&] { ++delivered; });
  bus.send(NodeId(4), NodeId(0), MsgType::kGossip, 64, [&] { ++delivered; });
  bus.send(NodeId(0), NodeId(1), MsgType::kGossip, 64, [&] { ++delivered; });
  bus.send(NodeId(4), NodeId(5), MsgType::kGossip, 64, [&] { ++delivered; });
  sim.run_all();
  // Cross-cut in both directions is swallowed; same-side traffic flows.
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(bus.stats().partitioned(MsgType::kGossip), 2u);
  EXPECT_EQ(bus.stats().delivered(MsgType::kGossip), 2u);
  EXPECT_EQ(bus.stats().lost(MsgType::kGossip), 0u);
  // Conservation: sent == delivered + lost + partitioned + in_flight +
  // synthetic, exactly.
  EXPECT_EQ(bus.stats().sent(MsgType::kGossip),
            bus.stats().delivered(MsgType::kGossip) +
                bus.stats().lost(MsgType::kGossip) +
                bus.stats().partitioned(MsgType::kGossip) +
                bus.stats().in_flight(MsgType::kGossip) +
                bus.stats().synthetic(MsgType::kGossip));

  bus.clear_partition();
  EXPECT_FALSE(bus.partition_active());
  bus.send(NodeId(0), NodeId(4), MsgType::kGossip, 64, [&] { ++delivered; });
  sim.run_all();
  EXPECT_EQ(delivered, 3);
}

// The fate is sealed at send time: a message already in flight across the
// cut when the partition heals is still swallowed (and vice versa, a
// message sent before the cut lands even if the cut forms mid-flight).
TEST(MessageBus, PartitionFateIsSealedAtSendTime) {
  sim::Simulator sim(22);
  Topology topo(small_config(), Rng(22));
  topo.add_hosts(8);
  MessageBus bus(sim, topo);

  bool pre_cut_arrived = false;
  bus.send(NodeId(0), NodeId(4), MsgType::kDispatch, 64,
           [&] { pre_cut_arrived = true; });
  bus.set_partition({0});
  bool in_cut_arrived = false;
  bus.send(NodeId(0), NodeId(4), MsgType::kDispatch, 64,
           [&] { in_cut_arrived = true; });
  bus.clear_partition();
  sim.run_all();
  EXPECT_TRUE(pre_cut_arrived);
  EXPECT_FALSE(in_cut_arrived);
  EXPECT_EQ(bus.stats().partitioned(MsgType::kDispatch), 1u);
  EXPECT_EQ(bus.stats().delivered(MsgType::kDispatch), 1u);
}

TEST(MessageBus, SelfSendBypassesPartition) {
  sim::Simulator sim(23);
  Topology topo(small_config(), Rng(23));
  topo.add_hosts(8);
  MessageBus bus(sim, topo);
  bus.set_partition({0});
  bool got = false;
  bus.send(NodeId(0), NodeId(0), MsgType::kDispatch, 64, [&] { got = true; });
  sim.run_all();
  EXPECT_TRUE(got);
  EXPECT_EQ(bus.stats().total_partitioned(), 0u);
}

TEST(TrafficStats, PartitionedCountsSeparatelyFromLost) {
  TrafficStats s;
  s.on_send(NodeId(0), MsgType::kGossip, 10);
  s.on_send(NodeId(0), MsgType::kGossip, 10);
  s.on_send(NodeId(0), MsgType::kGossip, 10);
  s.on_partitioned(MsgType::kGossip);
  s.on_lost(MsgType::kGossip);
  s.on_delivered(MsgType::kGossip);
  EXPECT_EQ(s.partitioned(MsgType::kGossip), 1u);
  EXPECT_EQ(s.lost(MsgType::kGossip), 1u);
  EXPECT_EQ(s.delivered(MsgType::kGossip), 1u);
  EXPECT_EQ(s.total_partitioned(), 1u);
  EXPECT_EQ(s.in_flight(MsgType::kGossip), 0u);
  s.reset();
  EXPECT_EQ(s.total_partitioned(), 0u);
}

TEST(TrafficStats, PerNodeCostAveragesTotals) {
  TrafficStats s;
  for (int i = 0; i < 10; ++i) s.on_send(NodeId(0), MsgType::kStateUpdate, 100);
  EXPECT_DOUBLE_EQ(s.per_node_cost(5), 2.0);
  EXPECT_EQ(s.bytes_sent(), 1000u);
  s.reset();
  EXPECT_EQ(s.total_sent(), 0u);
}

TEST(TrafficStats, MsgTypeNamesAreDistinct) {
  EXPECT_EQ(msg_type_name(MsgType::kStateUpdate), "state-update");
  EXPECT_EQ(msg_type_name(MsgType::kIndexJump), "index-jump");
  EXPECT_NE(msg_type_name(MsgType::kGossip), msg_type_name(MsgType::kDispatch));
}

}  // namespace
}  // namespace soc::net
