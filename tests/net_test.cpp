// Unit tests for the LAN/WAN topology and message bus.
#include <gtest/gtest.h>

#include "src/net/message_bus.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulator.hpp"

namespace soc::net {
namespace {

TopologyConfig small_config() {
  TopologyConfig c;
  c.lan_size = 4;
  c.latency_jitter = 0.0;
  return c;
}

TEST(Topology, GroupsHostsIntoLans) {
  Topology topo(small_config(), Rng(1));
  topo.add_hosts(10);
  EXPECT_EQ(topo.host_count(), 10u);
  EXPECT_EQ(topo.lan_of(NodeId(0)), 0u);
  EXPECT_EQ(topo.lan_of(NodeId(3)), 0u);
  EXPECT_EQ(topo.lan_of(NodeId(4)), 1u);
  EXPECT_EQ(topo.lan_of(NodeId(9)), 2u);
  EXPECT_TRUE(topo.same_lan(NodeId(0), NodeId(3)));
  EXPECT_FALSE(topo.same_lan(NodeId(3), NodeId(4)));
}

TEST(Topology, BandwidthsWithinTableIRanges) {
  Topology topo(small_config(), Rng(2));
  topo.add_hosts(64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const double wan = topo.wan_bandwidth_mbps(NodeId(i));
    EXPECT_GE(wan, 0.2);
    EXPECT_LE(wan, 2.0);
  }
  const double lan_bw = topo.bandwidth_mbps(NodeId(0), NodeId(1));
  EXPECT_GE(lan_bw, 5.0);
  EXPECT_LE(lan_bw, 10.0);
}

TEST(Topology, WanBandwidthIsBottleneckOfEndpoints) {
  Topology topo(small_config(), Rng(3));
  topo.add_hosts(8);
  const NodeId a(0), b(5);
  EXPECT_DOUBLE_EQ(
      topo.bandwidth_mbps(a, b),
      std::min(topo.wan_bandwidth_mbps(a), topo.wan_bandwidth_mbps(b)));
}

TEST(Topology, LanFasterThanWan) {
  Topology topo(small_config(), Rng(4));
  topo.add_hosts(8);
  Rng jitter(1);
  const SimTime lan = topo.transfer_delay(NodeId(0), NodeId(1), 1000, jitter);
  const SimTime wan = topo.transfer_delay(NodeId(0), NodeId(4), 1000, jitter);
  EXPECT_LT(lan, wan);
}

TEST(Topology, TransferDelayScalesWithSize) {
  Topology topo(small_config(), Rng(5));
  topo.add_hosts(8);
  Rng jitter(1);
  const SimTime small = topo.transfer_delay(NodeId(0), NodeId(4), 100, jitter);
  const SimTime big =
      topo.transfer_delay(NodeId(0), NodeId(4), 1000000, jitter);
  EXPECT_LT(small, big);
  // 1 MB over at most 2 Mbps is at least 4 s of serialization.
  EXPECT_GT(big, seconds(4.0));
}

TEST(MessageBus, DeliversWithPositiveDelay) {
  sim::Simulator sim(7);
  Topology topo(small_config(), Rng(7));
  topo.add_hosts(8);
  MessageBus bus(sim, topo);
  SimTime delivered_at = -1;
  bus.send(NodeId(0), NodeId(4), MsgType::kDutyQuery, 256,
           [&] { delivered_at = sim.now(); });
  sim.run_all();
  EXPECT_GT(delivered_at, 0);
  EXPECT_EQ(bus.stats().sent(MsgType::kDutyQuery), 1u);
  EXPECT_EQ(bus.stats().total_sent(), 1u);
}

TEST(MessageBus, SelfSendStillDelivers) {
  sim::Simulator sim(8);
  Topology topo(small_config(), Rng(8));
  topo.add_hosts(4);
  MessageBus bus(sim, topo);
  bool got = false;
  bus.send(NodeId(1), NodeId(1), MsgType::kDispatch, 64, [&] { got = true; });
  sim.run_all();
  EXPECT_TRUE(got);
}

TEST(MessageBus, LivenessDropsMessagesToDeadHosts) {
  sim::Simulator sim(9);
  Topology topo(small_config(), Rng(9));
  topo.add_hosts(8);
  MessageBus bus(sim, topo);
  bus.set_liveness([](NodeId id) { return id.value != 4; });
  bool got = false;
  bus.send(NodeId(0), NodeId(4), MsgType::kGossip, 64, [&] { got = true; });
  sim.run_all();
  EXPECT_FALSE(got);
  // The send itself is still accounted (traffic was emitted).
  EXPECT_EQ(bus.stats().sent(MsgType::kGossip), 1u);
}

TEST(TrafficStats, PerNodeCostAveragesTotals) {
  TrafficStats s;
  for (int i = 0; i < 10; ++i) s.on_send(NodeId(0), MsgType::kStateUpdate, 100);
  EXPECT_DOUBLE_EQ(s.per_node_cost(5), 2.0);
  EXPECT_EQ(s.bytes_sent(), 1000u);
  s.reset();
  EXPECT_EQ(s.total_sent(), 0u);
}

TEST(TrafficStats, MsgTypeNamesAreDistinct) {
  EXPECT_EQ(msg_type_name(MsgType::kStateUpdate), "state-update");
  EXPECT_EQ(msg_type_name(MsgType::kIndexJump), "index-jump");
  EXPECT_NE(msg_type_name(MsgType::kGossip), msg_type_name(MsgType::kDispatch));
}

}  // namespace
}  // namespace soc::net
