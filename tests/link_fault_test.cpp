// Correlated link-fault layer (src/net/link_model.hpp): Gilbert–Elliott
// burst loss, duplication under the conservation law, straggler
// assignment, and seed determinism of the whole faulty bus.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/net/link_model.hpp"
#include "src/net/message_bus.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulator.hpp"

namespace soc::net {
namespace {

TopologyConfig small_config() {
  TopologyConfig c;
  c.lan_size = 4;
  c.latency_jitter = 0.0;
  return c;
}

// A chain pinned in the bad state with loss_bad=1 kills every message on
// its class; the other class (all-zero config) is untouched — per-class
// chains are independent.
TEST(LinkModel, BadStateLossHitsOnlyItsLinkClass) {
  Topology topo(small_config(), Rng(1));
  topo.add_hosts(8);
  LinkFaultConfig cfg;
  cfg.enabled = true;
  cfg.wan.p_enter_bad = 1.0;  // first WAN message already steps into bad
  cfg.wan.p_exit_bad = 0.0;
  cfg.wan.loss_bad = 1.0;
  LinkModel model(topo, cfg, Rng(2));

  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(model.apply(NodeId(0), NodeId(4)).lost) << "wan msg " << i;
    EXPECT_TRUE(model.in_bad_state(/*wan=*/true));
    EXPECT_FALSE(model.apply(NodeId(0), NodeId(1)).lost) << "lan msg " << i;
    EXPECT_FALSE(model.in_bad_state(/*wan=*/false));
  }
}

// Burst shape: losses cluster.  With a slow entry and fast exit the chain
// spends most messages good; with certain loss in bad and none in good,
// every loss coincides with the bad state.
TEST(LinkModel, LossesTrackTheChainState) {
  Topology topo(small_config(), Rng(3));
  topo.add_hosts(8);
  LinkFaultConfig cfg;
  cfg.enabled = true;
  cfg.wan.p_enter_bad = 0.1;
  cfg.wan.p_exit_bad = 0.5;
  cfg.wan.loss_bad = 1.0;
  cfg.wan.loss_good = 0.0;
  LinkModel model(topo, cfg, Rng(4));

  int losses = 0;
  for (int i = 0; i < 500; ++i) {
    const bool lost = model.apply(NodeId(0), NodeId(4)).lost;
    EXPECT_EQ(lost, model.in_bad_state(/*wan=*/true));
    losses += lost ? 1 : 0;
  }
  // Stationary bad fraction is p_enter/(p_enter+p_exit) = 1/6 of messages;
  // a wide band keeps the test robust across RNG implementations.
  EXPECT_GT(losses, 20);
  EXPECT_LT(losses, 250);
}

TEST(LinkModel, StragglerAssignmentIsPerNodeAndOrderIndependent) {
  Topology topo(small_config(), Rng(5));
  topo.add_hosts(64);
  LinkFaultConfig cfg;
  cfg.enabled = true;
  cfg.straggler_fraction = 0.25;
  cfg.straggler_multiplier = 3.0;

  LinkModel a(topo, cfg, Rng(6));
  LinkModel b(topo, cfg, Rng(6));
  // Query b in reverse order: the assignment is a pure function of
  // (seed, id), not of first-touch order.
  std::size_t stragglers = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const double ma = a.straggler_multiplier_of(NodeId(i));
    const double mb = b.straggler_multiplier_of(NodeId(63 - i));
    EXPECT_TRUE(ma == 1.0 || ma == 3.0);
    EXPECT_EQ(ma, a.straggler_multiplier_of(NodeId(i)));  // memoized
    stragglers += ma > 1.0 ? 1 : 0;
    (void)mb;
  }
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a.straggler_multiplier_of(NodeId(i)),
              b.straggler_multiplier_of(NodeId(i)));
  }
  // ~16 expected of 64; just require the fraction is neither 0 nor 1.
  EXPECT_GT(stragglers, 0u);
  EXPECT_LT(stragglers, 64u);

  // A straggler endpoint slows the whole link (max of both ends).
  const LinkModel::Fate f = a.apply(NodeId(0), NodeId(4));
  EXPECT_EQ(f.delay_multiplier,
            std::max(a.straggler_multiplier_of(NodeId(0)),
                     a.straggler_multiplier_of(NodeId(4))));
}

// Duplication bills the copy as a second send, so the conservation law
// stays exact and the callback runs once per arrival.
TEST(MessageBusFaults, DuplicationPreservesConservation) {
  sim::Simulator sim(7);
  Topology topo(small_config(), Rng(7));
  topo.add_hosts(8);
  MessageBus bus(sim, topo);
  LinkFaultConfig cfg;
  cfg.enabled = true;
  cfg.duplicate_probability = 1.0;
  bus.enable_link_faults(cfg);

  int arrivals = 0;
  const int kMessages = 25;
  for (int i = 0; i < kMessages; ++i) {
    bus.send(NodeId(0), NodeId(4), MsgType::kGossip, 64, [&] { ++arrivals; });
  }
  sim.run_all();
  EXPECT_EQ(arrivals, 2 * kMessages);
  const TrafficStats& s = bus.stats();
  EXPECT_EQ(s.sent(MsgType::kGossip), 2u * kMessages);
  EXPECT_EQ(s.sent(MsgType::kGossip),
            s.delivered(MsgType::kGossip) + s.lost(MsgType::kGossip) +
                s.partitioned(MsgType::kGossip) + s.in_flight(MsgType::kGossip) +
                s.synthetic(MsgType::kGossip));
  EXPECT_EQ(bus.in_flight(), 0u);
}

// Under every fault knob at once, the conservation law holds at the end of
// the run and the whole trajectory is a pure function of the seed.
TEST(MessageBusFaults, FaultyBusIsConservativeAndSeedDeterministic) {
  LinkFaultConfig cfg;
  cfg.enabled = true;
  cfg.lan.p_enter_bad = 0.05;
  cfg.lan.p_exit_bad = 0.3;
  cfg.lan.loss_bad = 0.4;
  cfg.wan.p_enter_bad = 0.1;
  cfg.wan.p_exit_bad = 0.3;
  cfg.wan.loss_good = 0.01;
  cfg.wan.loss_bad = 0.5;
  cfg.reorder_probability = 0.2;
  cfg.reorder_extra_delay_s = 0.5;
  cfg.duplicate_probability = 0.1;
  cfg.straggler_fraction = 0.2;
  cfg.straggler_multiplier = 2.5;

  const auto run = [&cfg](std::uint64_t seed) {
    sim::Simulator sim(seed);
    Topology topo(small_config(), Rng(seed));
    topo.add_hosts(16);
    MessageBus bus(sim, topo);
    bus.enable_link_faults(cfg);
    Rng traffic(seed + 1);
    for (int i = 0; i < 400; ++i) {
      const NodeId from(static_cast<std::uint32_t>(traffic.pick_index(16)));
      const NodeId to(static_cast<std::uint32_t>(traffic.pick_index(16)));
      bus.send(from, to, MsgType::kStateUpdate, 128, [] {});
    }
    sim.run_all();
    const TrafficStats& s = bus.stats();
    EXPECT_EQ(s.total_sent(),
              s.total_delivered() + s.total_lost() + s.total_partitioned() +
                  s.total_in_flight());
    EXPECT_EQ(s.total_in_flight(), 0u);
    struct Out {
      std::uint64_t sent, delivered, lost, events;
    };
    return Out{s.total_sent(), s.total_delivered(), s.total_lost(),
               sim.events_executed()};
  };

  const auto a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.events, b.events);
  EXPECT_GT(a.lost, 0u);  // the knobs actually bite
  // A different seed takes a different trajectory somewhere.
  EXPECT_TRUE(a.delivered != c.delivered || a.events != c.events ||
              a.sent != c.sent);
}

// Reordering: with a huge forced extra delay on every message, a later
// send can arrive before an earlier one on the same link.
TEST(MessageBusFaults, ReorderingLetsALaterSendOvertake) {
  sim::Simulator sim(9);
  Topology topo(small_config(), Rng(9));
  topo.add_hosts(8);
  MessageBus bus(sim, topo);
  LinkFaultConfig cfg;
  cfg.enabled = true;
  cfg.reorder_probability = 0.5;
  cfg.reorder_extra_delay_s = 30.0;
  bus.enable_link_faults(cfg);

  std::vector<int> order;
  for (int i = 0; i < 40; ++i) {
    bus.send(NodeId(0), NodeId(4), MsgType::kGossip, 64,
             [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  ASSERT_EQ(order.size(), 40u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace soc::net
