// Regression for the probe-walk ghost bug fixed alongside the flat
// RecordStore re-baseline: a directional probe walk that outlives its
// origin's departure must be killed, not allowed to re-materialize a ghost
// NodeState for the departed node (the pre-fix code called
// state(walk->origin) unguarded on every hop to draw from the origin's RNG,
// which silently resurrected protocol state — and the final report then
// passed the contains() guard and stored into the ghost's index table).
//
// The only observable a test needs is IndexSystem::tracks(): accessor
// helpers like cache()/table() materialize state themselves, but tracks()
// is read-only, so a departed node showing tracks() == true can only mean a
// ghost was created.
#include <gtest/gtest.h>

#include <vector>

#include "src/index/inscan.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulator.hpp"

namespace soc::index {
namespace {

struct ProbeHarness {
  ProbeHarness(std::size_t n, std::uint64_t seed)
      : sim(seed), topo(net::TopologyConfig{}, Rng(seed + 1)),
        bus(sim, topo), space(2, Rng(seed + 2)),
        index(sim, bus, space, InscanConfig{}, Rng(seed + 3)) {
    index.attach_to_space();
    // No availability provider: the only protocol traffic is probe walks
    // (publish_now returns early, diffusion never initiates on empty
    // caches), so the assertions below isolate the walk lifecycle.
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = topo.add_host();
      space.join(id);
      index.add_node(id);
      ids.push_back(id);
    }
  }

  void depart(NodeId id) {
    index.remove_node(id);
    space.leave(id);
  }

  sim::Simulator sim;
  net::Topology topo;
  net::MessageBus bus;
  can::CanSpace space;
  IndexSystem index;
  std::vector<NodeId> ids;
};

TEST(ProbeGhostRegression, WalkPastDepartedOriginIsKilledNotResurrected) {
  ProbeHarness h(48, 311);
  const NodeId origin = h.ids[7];

  // Launch fresh walks in every track direction, then depart the origin
  // while every first-hop probe message is still in flight (deliveries are
  // delayed; nothing has executed yet).
  for (std::size_t d = 0; d < h.space.dims(); ++d) {
    h.index.probe_now(origin, d, can::Direction::kNegative);
    h.index.probe_now(origin, d, can::Direction::kPositive);
  }
  ASSERT_GT(h.bus.in_flight(), 0u);
  h.depart(origin);
  ASSERT_FALSE(h.index.tracks(origin));

  // Let every in-flight walk run to completion (multi-hop walks + the
  // report leg are all well inside this horizon).
  h.sim.run_until(seconds(600));

  EXPECT_FALSE(h.index.tracks(origin))
      << "a probe walk re-materialized ghost NodeState for a departed origin";
  // Survivors keep probing; the system as a whole stays healthy.
  EXPECT_TRUE(h.space.verify_invariants());
  for (const NodeId id : h.ids) {
    if (id == origin) continue;
    EXPECT_TRUE(h.index.tracks(id));
  }
}

TEST(ProbeGhostRegression, ChurnNeverLeavesGhostState) {
  ProbeHarness h(64, 313);
  Rng rng(317);
  h.sim.run_until(seconds(300));

  // Repeatedly depart nodes mid-run — periodic index refreshes keep walks
  // in flight the whole time — and let the rest of the run flush them.
  std::vector<NodeId> departed;
  std::vector<NodeId> alive = h.ids;
  for (int round = 0; round < 20; ++round) {
    const std::size_t i = rng.pick_index(alive.size());
    const NodeId victim = alive[i];
    alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
    departed.push_back(victim);
    h.depart(victim);
    h.sim.run_until(h.sim.now() + seconds(450));
  }
  h.sim.run_until(h.sim.now() + seconds(3600));

  for (const NodeId ghost : departed) {
    EXPECT_FALSE(h.index.tracks(ghost))
        << "ghost NodeState for departed node " << ghost.value;
  }
  for (const NodeId id : alive) {
    EXPECT_TRUE(h.index.tracks(id));
  }
  EXPECT_TRUE(h.space.verify_invariants());
}

}  // namespace
}  // namespace soc::index
