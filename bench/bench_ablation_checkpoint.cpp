// Ablation A4 — execution fault tolerance under churn, the paper's §VI
// future-work extension: compare (a) the paper's detached-execution churn
// model, (b) tasks dying with their host, and (c) checkpoint-restart on
// top of HID-CAN, at two churn intensities.
#include "bench/bench_common.hpp"

using namespace soc;
using namespace soc::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.print_header("Ablation A4: churn task policies "
                   "(HID-CAN, lambda = 0.5; paper future-work extension)");

  struct Case {
    core::ChurnTaskPolicy policy;
    double churn;
    const char* label;
  };
  std::vector<Case> cases;
  for (const double churn : {0.5, 0.95}) {
    const int pct = static_cast<int>(churn * 100);
    cases.push_back({core::ChurnTaskPolicy::kDetachedExecution, churn,
                     nullptr});
    cases.push_back({core::ChurnTaskPolicy::kTasksLost, churn, nullptr});
    cases.push_back({core::ChurnTaskPolicy::kCheckpointRestart, churn,
                     nullptr});
    (void)pct;
  }

  std::vector<core::ExperimentConfig> configs;
  std::vector<std::string> labels;
  for (const auto& c0 : cases) {
    auto c = opt.base_config();
    c.protocol = core::ProtocolKind::kHidCan;
    c.demand_ratio = 0.5;
    c.churn_dynamic_degree = c0.churn;
    c.churn_task_policy = c0.policy;
    configs.push_back(c);
    const char* pname =
        c0.policy == core::ChurnTaskPolicy::kDetachedExecution ? "detached"
        : c0.policy == core::ChurnTaskPolicy::kTasksLost       ? "lost"
                                                               : "checkpoint";
    labels.push_back(std::string(pname) + "@" +
                     std::to_string(static_cast<int>(c0.churn * 100)) + "%");
  }
  const auto results = run_all(configs);

  std::printf("\n%-16s %8s %8s %9s %8s %9s %10s %12s\n", "policy@churn",
              "T-Ratio", "F-Ratio", "fairness", "killed", "restarts",
              "snapshots", "wasted-work");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("%-16s %8.3f %8.3f %9.3f %8llu %9llu %10llu %12.0f\n",
                labels[i].c_str(), r.t_ratio, r.f_ratio, r.fairness,
                static_cast<unsigned long long>(r.tasks_killed_by_churn),
                static_cast<unsigned long long>(r.checkpoint_restarts),
                static_cast<unsigned long long>(r.checkpoint_snapshots),
                r.wasted_work_rate_seconds);
  }
  std::printf("\nExpected shape: 'lost' craters T-Ratio/F-Ratio versus the\n"
              "paper's detached model; checkpoint-restart recovers most of\n"
              "the gap at the cost of snapshot traffic and redone work.\n");
  return 0;
}
