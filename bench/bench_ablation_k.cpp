// Ablation A3 — the first-k result count δ.  The paper's single-message
// query returns "the first k matched results"; δ = 1 minimizes traffic,
// larger δ gives the requester fallback candidates under contention.
#include "bench/bench_common.hpp"

using namespace soc;
using namespace soc::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.print_header(
      "Ablation A3: expected result count delta (HID-CAN, lambda = 0.5)");

  std::vector<core::ExperimentConfig> configs;
  std::vector<std::string> labels;
  for (const std::size_t k : {1, 2, 4, 8}) {
    auto c = opt.base_config();
    c.protocol = core::ProtocolKind::kHidCan;
    c.demand_ratio = 0.5;
    c.want_results = k;
    configs.push_back(c);
    labels.push_back("delta=" + std::to_string(k));
  }
  const auto results = run_all(configs);

  std::printf("\n%-10s %10s %10s %10s %14s %14s %16s\n", "delta", "T-Ratio",
              "F-Ratio", "fairness", "query-delay", "dispatch-try",
              "msgs/node");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("%-10s %10.3f %10.3f %10.3f %13.2fs %14.2f %16.0f\n",
                labels[i].c_str(), r.t_ratio, r.f_ratio, r.fairness,
                r.avg_query_delay_s, r.avg_dispatch_attempts,
                r.msg_cost_per_node);
  }
  return 0;
}
