// Ablation A1 — the index-diffusion fan-out L.  The paper fixes L = 2 and
// argues the message overhead L(L^d − 1)/(L − 1) forces a small constant;
// this sweep shows the matching-rate/traffic trade-off around that choice.
#include "bench/bench_common.hpp"

using namespace soc;
using namespace soc::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.print_header(
      "Ablation A1: index diffusion fan-out L (HID-CAN, lambda = 0.5)");

  std::vector<core::ExperimentConfig> configs;
  std::vector<std::string> labels;
  for (const std::size_t L : {1, 2, 3, 4}) {
    auto c = opt.base_config();
    c.protocol = core::ProtocolKind::kHidCan;
    c.demand_ratio = 0.5;
    c.inscan.index_fanout_L = L;
    configs.push_back(c);
    labels.push_back("L=" + std::to_string(L));
  }
  const auto results = run_all(configs);

  std::printf("\n%-6s %10s %10s %10s %14s %16s\n", "L", "T-Ratio", "F-Ratio",
              "fairness", "query-delay", "msgs/node");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("%-6s %10.3f %10.3f %10.3f %13.2fs %16.0f\n",
                labels[i].c_str(), r.t_ratio, r.f_ratio, r.fairness,
                r.avg_query_delay_s, r.msg_cost_per_node);
  }
  return 0;
}
