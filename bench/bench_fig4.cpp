// Fig. 4 — "Contrary Results under Different Query Ranges": throughput
// ratio over 24 hours for Newscast gossip, SID-CAN and KHDN-CAN, at
// (a) demand ratio 0.84 (wide query ranges) and (b) 0.25 (intensive,
// narrow ranges where SID-CAN loses its edge).
#include "bench/bench_common.hpp"

using namespace soc;
using namespace soc::bench;
using core::ProtocolKind;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.print_header("Fig. 4: T-Ratio under different query ranges "
                   "(Newscast vs SID-CAN vs KHDN-CAN)");

  const std::vector<ProtocolKind> protocols{
      ProtocolKind::kNewscast, ProtocolKind::kSidCan, ProtocolKind::kKhdnCan};

  for (const double ratio : {0.84, 0.25}) {
    std::vector<core::ExperimentConfig> configs;
    for (const ProtocolKind p : protocols) {
      auto c = opt.base_config();
      c.protocol = p;
      c.demand_ratio = ratio;
      configs.push_back(c);
    }
    const auto results = run_all(configs);
    char title[96];
    std::snprintf(title, sizeof title,
                  "Fig. 4(%c) throughput ratio, demand ratio = %.2f",
                  ratio > 0.5 ? 'a' : 'b', ratio);
    print_series(title, [](const metrics::SeriesSample& s) { return s.t_ratio; },
                 results);
    print_summary(results);
  }
  return 0;
}
