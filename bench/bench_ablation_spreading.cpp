// Ablation A5 — the two readings of the spreading (SID) diffusion method.
// Fig. 3(a) of the paper draws index nodes only on the sender's axis
// tracks (d·L messages, no cascade), while its cost analysis
// ω = L(L^d − 1)/(L − 1) implies receivers open the next dimension like
// the hopping method does.  This ablation quantifies how much of SID's
// reported weakness versus HID comes down to that interpretation, at two
// demand ratios.
#include "bench/bench_common.hpp"

using namespace soc;
using namespace soc::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.print_header("Ablation A5: spreading-method interpretations vs HID");

  struct Case {
    core::ProtocolKind kind;
    index::SpreadingScope scope;
    const char* label;
  };
  const std::vector<Case> cases{
      {core::ProtocolKind::kSidCan, index::SpreadingScope::kSenderTracks,
       "SID/strict"},
      {core::ProtocolKind::kSidCan, index::SpreadingScope::kCascade,
       "SID/cascade"},
      {core::ProtocolKind::kHidCan, index::SpreadingScope::kSenderTracks,
       "HID"},
  };

  for (const double lambda : {0.5, 0.25}) {
    std::vector<core::ExperimentConfig> configs;
    std::vector<std::string> labels;
    for (const auto& c0 : cases) {
      auto c = opt.base_config();
      c.protocol = c0.kind;
      c.demand_ratio = lambda;
      c.inscan.spreading_scope = c0.scope;
      configs.push_back(c);
      labels.emplace_back(c0.label);
    }
    const auto results = run_all(configs);
    std::printf("\n## lambda = %.2f\n", lambda);
    std::printf("%-14s %10s %10s %10s %16s\n", "variant", "T-Ratio",
                "F-Ratio", "fairness", "msgs/node");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::printf("%-14s %10.3f %10.3f %10.3f %16.0f\n", labels[i].c_str(),
                  r.t_ratio, r.f_ratio, r.fairness, r.msg_cost_per_node);
    }
  }
  std::printf("\nThe strict reading reproduces the paper's SID-vs-HID gap;\n"
              "the cascade reading closes most of it, at hopping-equal\n"
              "traffic.  See EXPERIMENTS.md for discussion.\n");
  return 0;
}
