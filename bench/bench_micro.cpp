// Micro benchmarks (google-benchmark): throughput of the substrates the
// simulation rests on — event queue, RNG, resource-vector dominance, CAN
// geometry/routing — plus the paper's §III.A routing-hops claims:
// INSCAN-augmented routing should scale like O(log² n) versus plain CAN's
// O(n^{1/d}), and INSCAN-RQ's traffic grows with the responsible-node
// count while PID-CAN's stays bounded.
#include <benchmark/benchmark.h>

#include "src/core/soc.hpp"
#include "src/obs/trace.hpp"

namespace {

using namespace soc;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(static_cast<SimTime>(rng.uniform_int(0, 1000000)), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().at);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

// The hot-path acceptance mix: fill, cancel half, then a pop-one/push-one
// steady state — the shape the simulator actually produces (timeouts are
// scheduled and almost always cancelled before firing).  Callbacks carry a
// delivery-event-sized capture (~24 bytes: context pointer plus payload),
// like every real event in the engine; captureless lambdas would understate
// the per-event closure cost.
void BM_EventQueueChurnMix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  std::vector<sim::EventHandle> handles;
  std::uint64_t executed = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    handles.clear();
    handles.reserve(n);
    auto make_fn = [&executed](std::uint64_t a, std::uint32_t b) {
      return [ctx = &executed, a, b] { *ctx += a ^ b; };
    };
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(
          q.push(static_cast<SimTime>(rng.uniform_int(0, 1 << 20)),
                 make_fn(i, static_cast<std::uint32_t>(i))));
    }
    for (std::size_t i = 0; i < n; i += 2) q.cancel(handles[i]);
    SimTime now = 0;
    for (std::size_t i = 0; i < n / 2; ++i) {
      auto p = q.pop();
      now = p.at;
      p.fn();
      q.push(now + static_cast<SimTime>(rng.uniform_int(1, 1 << 16)),
             make_fn(i, 7));
    }
    while (!q.empty()) {
      auto p = q.pop();
      p.fn();
    }
  }
  benchmark::DoNotOptimize(executed);
  // Items = pushes + cancels + pops per iteration.
  state.SetItemsProcessed(
      static_cast<std::int64_t>(n + n / 2 + n / 2 + n) * state.iterations());
}
BENCHMARK(BM_EventQueueChurnMix)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

// The timeout pattern in isolation: every scheduled event is cancelled
// before it can fire.  Lazy tombstones make this quadratic-ish in heap
// residue; in-place removal keeps the heap permanently small.
void BM_EventQueueScheduleCancel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(14);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      const auto h =
          q.push(static_cast<SimTime>(rng.uniform_int(0, 1 << 20)), [] {});
      q.cancel(h);
    }
    benchmark::DoNotOptimize(q.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          state.iterations());
}
BENCHMARK(BM_EventQueueScheduleCancel)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(2);
  double acc = 0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

// The exact hook shape every hot path uses when tracing is off: one load
// of the global sink and a predictable branch.  Guards trace.hpp's
// zero-cost-when-off claim — this should stay within noise of an empty
// loop iteration.
void BM_TracerOff(benchmark::State& state) {
  std::uint64_t id = 0;
  for (auto _ : state) {
    if (obs::Tracer* t = obs::tracer()) {
      t->mark("bench", "hook", id, static_cast<SimTime>(id));
    }
    benchmark::DoNotOptimize(++id);
  }
}
BENCHMARK(BM_TracerOff);

// The same hook with a sink installed — what `--trace` costs per event
// (a fixed-size record appended to a deque slab).
void BM_TracerOn(benchmark::State& state) {
  obs::Tracer tracer;
  obs::Tracer* prev = obs::install_tracer(&tracer);
  std::uint64_t id = 0;
  for (auto _ : state) {
    if (obs::Tracer* t = obs::tracer()) {
      t->mark("bench", "hook", id, static_cast<SimTime>(id));
    }
    benchmark::DoNotOptimize(++id);
  }
  obs::install_tracer(prev);
}
BENCHMARK(BM_TracerOn);

void BM_ResourceVectorDominates(benchmark::State& state) {
  Rng rng(3);
  std::vector<ResourceVector> vs;
  for (int i = 0; i < 1024; ++i) {
    ResourceVector v(5);
    for (std::size_t d = 0; d < 5; ++d) v[d] = rng.uniform(0, 10);
    vs.push_back(v);
  }
  const ResourceVector demand{3, 3, 3, 3, 3};
  std::size_t i = 0, hits = 0;
  for (auto _ : state) {
    hits += vs[i++ & 1023].dominates(demand);
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_ResourceVectorDominates);

void BM_ZoneSplitContain(benchmark::State& state) {
  const can::Zone unit = can::Zone::unit(5);
  Rng rng(4);
  for (auto _ : state) {
    auto [lo, hi] = unit.split(static_cast<std::size_t>(rng.uniform_int(0, 4)));
    can::Point p(5);
    for (std::size_t d = 0; d < 5; ++d) p[d] = rng.uniform();
    benchmark::DoNotOptimize(lo.contains(p) || hi.contains(p));
  }
}
BENCHMARK(BM_ZoneSplitContain);

can::CanSpace make_space(std::size_t n, std::size_t dims) {
  can::CanSpace space(dims, Rng(5));
  for (std::uint32_t i = 0; i < n; ++i) space.join(NodeId(i));
  return space;
}

void BM_CanGreedyRouting(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const can::CanSpace space = make_space(n, 5);
  Rng rng(6);
  double total_hops = 0;
  std::size_t routes = 0;
  for (auto _ : state) {
    can::Point target(5);
    for (std::size_t d = 0; d < 5; ++d) target[d] = rng.uniform();
    const NodeId start = space.random_member(rng);
    total_hops += static_cast<double>(space.route(start, target).size());
    ++routes;
  }
  state.counters["avg_hops"] =
      benchmark::Counter(total_hops / static_cast<double>(routes));
}
BENCHMARK(BM_CanGreedyRouting)->Arg(256)->Arg(1024)->Arg(4096);

// Routing-heavy mix: full greedy next_hop chains over pre-drawn
// (start, target) pairs — no per-iteration membership sampling, so the
// number isolates the per-hop candidate scan that the cached adjacency
// metadata prunes (the dominant cost the CAN paper attributes to greedy
// routing: two distance evaluations per neighbor per hop).
void BM_CanNextHopMix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const can::CanSpace space = make_space(n, 5);
  Rng rng(21);
  struct Query {
    NodeId start;
    can::Point target;
  };
  std::vector<Query> queries;
  for (int i = 0; i < 512; ++i) {
    can::Point target(5);
    for (std::size_t d = 0; d < 5; ++d) target[d] = rng.uniform();
    queries.push_back(Query{space.random_member(rng), target});
  }
  std::size_t i = 0;
  std::uint64_t hops = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ & 511];
    NodeId cur = q.start;
    while (!space.zone_of(cur).contains(q.target)) {
      cur = space.next_hop(cur, q.target);
      ++hops;
    }
    benchmark::DoNotOptimize(cur);
  }
  state.counters["hops_per_route"] = benchmark::Counter(
      static_cast<double>(hops) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_CanNextHopMix)->Arg(1024)->Arg(4096);

// Directional neighbor filtering through the cached per-neighbor adjacency
// metadata, into a reused scratch buffer — the inner loop of probe walks,
// diffusion target picks and KHDN spreading.  Zero allocations in steady
// state.
void BM_CanDirectionalScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const can::CanSpace space = make_space(n, 5);
  Rng rng(22);
  std::vector<NodeId> members;
  for (std::uint32_t i = 0; i < n; ++i) members.push_back(NodeId(i));
  std::vector<NodeId> scratch;
  std::size_t i = 0, total = 0;
  for (auto _ : state) {
    const NodeId id = members[i++ % members.size()];
    for (std::size_t d = 0; d < 5; ++d) {
      space.directional_neighbors(id, d, can::Direction::kNegative, scratch);
      total += scratch.size();
      space.directional_neighbors(id, d, can::Direction::kPositive, scratch);
      total += scratch.size();
    }
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_CanDirectionalScan)->Arg(1024)->Arg(4096);

// Record-cache mix: the duty-node inner loop of every query harvest — a
// TTL-churn put/erase pair against a full qualified() dominance scan per
// iteration (Alg. 5 line 1).  The store size is the steady-state record
// count a duty node carries at paper scale.
void BM_RecordStoreQualifiedMix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(23);
  const ResourceVector cmax = ResourceVector::filled(5, 10.0);
  std::vector<index::Record> records;
  for (std::uint32_t i = 0; i < n; ++i) {
    index::Record r;
    r.provider = NodeId(i);
    ResourceVector a(5);
    for (std::size_t d = 0; d < 5; ++d) a[d] = rng.uniform(0, 10);
    r.availability = a;
    r.location = can::Point::normalized(a, cmax);
    r.published_at = 0;
    r.expires_at = kSimTimeNever;
    records.push_back(r);
  }
  index::RecordStore store;
  for (const auto& r : records) store.put(r);
  const ResourceVector demand = ResourceVector::filled(5, 4.0);
  std::vector<index::Record> scratch;
  std::size_t i = 0;
  std::uint64_t found = 0;
  for (auto _ : state) {
    store.erase(NodeId(static_cast<std::uint32_t>(i % n)));
    store.put(records[i % n]);
    store.qualified_into(demand, 0, scratch);
    found += scratch.size();
    ++i;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RecordStoreQualifiedMix)->Arg(256)->Arg(2048);

void BM_PsmAdmitFinish(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(7);
    psm::PsmScheduler sched(sim, ResourceVector{100, 100, 100, 100, 10000});
    for (std::uint32_t i = 0; i < 16; ++i) {
      psm::TaskSpec t;
      t.id = TaskId{NodeId(0), i};
      t.expectation = ResourceVector{2, 2, 2, 2, 100};
      t.workload = {200, 200, 200};
      sched.admit(t);
    }
    sim.run_until(seconds(3600));
    benchmark::DoNotOptimize(sched.running_count());
  }
}
BENCHMARK(BM_PsmAdmitFinish);

// §III.A: query traffic of the exhaustive INSCAN-RQ versus the
// single-message PID-CAN query, at growing scale.  Reported as counters so
// the O(N)-vs-O(log N) gap the paper motivates is visible directly.
void BM_RangeQueryTraffic(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim(8);
  net::Topology topo(net::TopologyConfig{}, Rng(9));
  net::MessageBus bus(sim, topo);
  can::CanSpace space(5, Rng(10));
  index::InscanConfig cfg;
  index::IndexSystem idx(sim, bus, space, cfg, Rng(11));
  idx.attach_to_space();
  Rng rng(12);
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId id = topo.add_host();
    space.join(id);
    ids.push_back(id);
  }
  std::unordered_map<NodeId, ResourceVector> avail;
  const ResourceVector cmax = ResourceVector::filled(5, 10.0);
  idx.set_availability_provider(
      [&](NodeId id) -> std::optional<index::Record> {
        index::Record r;
        r.provider = id;
        r.availability = avail[id];
        r.location = can::Point::normalized(avail[id], cmax);
        r.published_at = sim.now();
        r.expires_at = sim.now() + seconds(1e6);
        return r;
      });
  for (const NodeId id : ids) {
    ResourceVector a(5);
    for (std::size_t d = 0; d < 5; ++d) a[d] = rng.uniform(0, 10);
    avail[id] = a;
    idx.add_node(id);
  }
  sim.run_until(seconds(1500));

  query::QueryConfig qc;
  query::QueryEngine engine(idx, qc);
  const ResourceVector demand = ResourceVector::filled(5, 4.0);
  const can::Point target = can::Point::normalized(demand, cmax);

  // Count only query-pipeline message types so concurrent background
  // maintenance (state updates, probes, diffusion) stays out of the
  // comparison.
  auto query_traffic = [&bus] {
    return bus.stats().sent(net::MsgType::kDutyQuery) +
           bus.stats().sent(net::MsgType::kIndexAgent) +
           bus.stats().sent(net::MsgType::kIndexJump) +
           bus.stats().sent(net::MsgType::kFoundNotice);
  };
  std::uint64_t full_msgs = 0, pid_msgs = 0, trials = 0;
  for (auto _ : state) {
    const NodeId requester = ids[rng.pick_index(ids.size())];
    const std::uint64_t before_full = query_traffic();
    engine.submit_full_range(requester, demand, target, [](auto) {});
    sim.run_until(sim.now() + seconds(300));
    const std::uint64_t mid = query_traffic();
    engine.submit_k(requester, demand, target, 1, [](auto) {});
    sim.run_until(sim.now() + seconds(300));
    full_msgs += mid - before_full;
    pid_msgs += query_traffic() - mid;
    ++trials;
  }
  state.counters["inscan_rq_msgs"] = benchmark::Counter(
      static_cast<double>(full_msgs) / static_cast<double>(trials));
  state.counters["pidcan_msgs"] = benchmark::Counter(
      static_cast<double>(pid_msgs) / static_cast<double>(trials));
}
BENCHMARK(BM_RangeQueryTraffic)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
