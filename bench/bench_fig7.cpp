// Fig. 7 — six-protocol comparison at demand ratio λ = 0.25 (the regime
// where the paper reports HID-CAN failing only 2 of 14362 tasks while
// Newscast fails 1793).
#include "bench/bench_fig567.hpp"

int main(int argc, char** argv) {
  return soc::bench::run_six_protocol_figure(argc, argv, 7, 0.25);
}
