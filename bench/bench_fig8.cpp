// Fig. 8 — HID-CAN under different node-churning rates (dynamic degree =
// 0 / 25 / 50 / 75 / 95 %, λ = 0.5): T-Ratio, F-Ratio and fairness should
// degrade only mildly up to 50% churn.
#include "bench/bench_common.hpp"

using namespace soc;
using namespace soc::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.print_header("Fig. 8: HID-CAN under different node churning rates "
                   "(lambda = 0.5)");

  const std::vector<double> degrees{0.0, 0.25, 0.5, 0.75, 0.95};
  std::vector<core::ExperimentConfig> configs;
  std::vector<std::string> labels;
  for (const double deg : degrees) {
    auto c = opt.base_config();
    c.protocol = core::ProtocolKind::kHidCan;
    c.demand_ratio = 0.5;
    c.churn_dynamic_degree = deg;
    configs.push_back(c);
    labels.push_back(deg == 0.0 ? "static"
                                : "dynamic=" + std::to_string(static_cast<int>(
                                                   deg * 100)) + "%");
  }
  auto results = run_all(configs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i].protocol = labels[i];  // label series columns by churn level
  }

  print_series("Fig. 8(a) throughput ratio",
               [](const metrics::SeriesSample& s) { return s.t_ratio; },
               results);
  print_series("Fig. 8(b) failed task ratio",
               [](const metrics::SeriesSample& s) { return s.f_ratio; },
               results);
  print_series("Fig. 8(c) fairness index",
               [](const metrics::SeriesSample& s) { return s.fairness; },
               results);
  print_summary(results, labels);
  return 0;
}
