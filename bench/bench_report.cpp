// Hot-path perf report: times full experiment runs (the trips through
// EventQueue and MessageBus that dominate every figure bench) and emits the
// BENCH_hotpath.json perf trajectory consumed by future PRs.
//
//   ./bench_report [--nodes N] [--hours H] [--seed S] [--full]
//                  [--json BENCH_hotpath.json] [--trace trace.json]
//                  [--profile-handlers]
//
// --trace records every experiment's query/task lifecycle spans into one
// Chrome trace-event file (open in Perfetto), one process lane per
// protocol.  Tracing is a pure observer: the table and JSON above are
// byte-identical with or without it.
//
// --profile-handlers attaches the obs::TimeProfiler to each experiment's
// MessageBus and prints a per-MsgType handler wall-time table (count,
// total ms, mean/p99 ns, share) — where simulated work spends real time.
// It costs a clock pair per delivered message, so leave it off when the
// wall-clock rates themselves are the measurement.
//
// Experiments run sequentially — one at a time, single-threaded — so each
// wall-clock figure measures the simulator alone, not pool scheduling.
#include "bench/bench_common.hpp"
#include "src/obs/trace.hpp"

using namespace soc;
using namespace soc::bench;
using core::ProtocolKind;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  if (opt.json_path.empty()) opt.json_path = "BENCH_hotpath.json";
  const CliArgs args(argc, argv);
  const std::string trace_path = args.get("trace", "");
  const bool profile_handlers = args.get_bool("profile-handlers", false);
  opt.print_header("Hot-path perf report (events/sec, messages/sec)");

  const std::vector<ProtocolKind> protocols{
      ProtocolKind::kHidCan, ProtocolKind::kNewscast, ProtocolKind::kKhdnCan};

  obs::Tracer tracer;
  if (!trace_path.empty()) obs::install_tracer(&tracer);

  std::vector<PerfSample> samples;
  std::printf("\n%-14s %10s %14s %14s %14s %14s\n", "config", "wall-s",
              "events", "events/s", "messages", "msgs/s");
  std::uint32_t lane = 0;
  for (const ProtocolKind p : protocols) {
    core::ExperimentConfig c = opt.base_config();
    c.protocol = p;
    if (!trace_path.empty()) {
      // set_lane stores the pointer, so the name must outlive the tracer.
      const char* lane_name = p == ProtocolKind::kHidCan    ? "HID-CAN"
                              : p == ProtocolKind::kNewscast ? "Newscast"
                                                             : "KHDN-CAN";
      tracer.set_lane(lane++, lane_name);
    }
    obs::TimeProfiler profiler(static_cast<std::size_t>(net::MsgType::kCount));
    const PerfSample s =
        timed_run(c, profile_handlers ? &profiler : nullptr);
    const double wall = s.wall_seconds > 0.0 ? s.wall_seconds : 1e-9;
    std::printf("%-14s %10.3f %14llu %14.0f %14llu %14.0f\n", s.name.c_str(),
                s.wall_seconds, static_cast<unsigned long long>(s.events),
                static_cast<double>(s.events) / wall,
                static_cast<unsigned long long>(s.messages),
                static_cast<double>(s.messages) / wall);
    samples.push_back(s);
    if (profile_handlers) {
      // Wall time per handler type: where the events/sec above is spent.
      std::uint64_t grand_total_ns = 0;
      for (std::size_t k = 0; k < profiler.keys(); ++k) {
        grand_total_ns += profiler.bucket(k).sum_us();  // ns samples
      }
      std::printf("  %-16s %12s %10s %10s %10s %7s\n", "handler", "count",
                  "total-ms", "mean-ns", "p99-ns", "share");
      for (std::size_t k = 0; k < profiler.keys(); ++k) {
        const metrics::LatencyHistogram& h = profiler.bucket(k);
        if (h.total() == 0) continue;
        std::printf("  %-16s %12llu %10.1f %10.0f %10.0f %6.1f%%\n",
                    std::string(net::msg_type_name(
                                    static_cast<net::MsgType>(k)))
                        .c_str(),
                    static_cast<unsigned long long>(h.total()),
                    static_cast<double>(h.sum_us()) / 1e6,
                    static_cast<double>(h.sum_us()) /
                        static_cast<double>(h.total()),
                    h.percentile_s(99.0) * 1e6,  // ns samples: *1e6, not 1e9
                    grand_total_ns > 0
                        ? 100.0 * static_cast<double>(h.sum_us()) /
                              static_cast<double>(grand_total_ns)
                        : 0.0);
      }
    }
  }
  // Phase-boundary RSS (registry gauges sampled inside each experiment):
  // the single getrusage high-water mark below cannot say *when* memory
  // peaked; these two samples bracket the join ramp vs the churn phase.
  std::printf("\n%-14s %16s %16s\n", "config", "rss-post-join", "rss-post-churn");
  for (const PerfSample& s : samples) {
    double post_join = 0.0, post_churn = 0.0;
    for (const auto& m : s.metrics) {
      if (m.name == "rss.post_join.bytes") post_join = m.value;
      if (m.name == "rss.post_churn.bytes") post_churn = m.value;
    }
    std::printf("%-14s %12.1f MiB %12.1f MiB\n", s.name.c_str(),
                post_join / (1024.0 * 1024.0), post_churn / (1024.0 * 1024.0));
  }
  std::printf("\npeak RSS: %.1f MiB\n",
              static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));

  if (!write_perf_json(opt.json_path, "hotpath", opt, samples)) return 1;
  std::printf("wrote %s\n", opt.json_path.c_str());
  if (!trace_path.empty()) {
    obs::install_tracer(nullptr);
    if (!tracer.export_json(trace_path)) {
      std::fprintf(stderr, "warning: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                tracer.event_count());
  }
  return 0;
}
