// Hot-path perf report: times full experiment runs (the trips through
// EventQueue and MessageBus that dominate every figure bench) and emits the
// BENCH_hotpath.json perf trajectory consumed by future PRs.
//
//   ./bench_report [--nodes N] [--hours H] [--seed S] [--full]
//                  [--json BENCH_hotpath.json]
//
// Experiments run sequentially — one at a time, single-threaded — so each
// wall-clock figure measures the simulator alone, not pool scheduling.
#include "bench/bench_common.hpp"

using namespace soc;
using namespace soc::bench;
using core::ProtocolKind;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  if (opt.json_path.empty()) opt.json_path = "BENCH_hotpath.json";
  opt.print_header("Hot-path perf report (events/sec, messages/sec)");

  const std::vector<ProtocolKind> protocols{
      ProtocolKind::kHidCan, ProtocolKind::kNewscast, ProtocolKind::kKhdnCan};

  std::vector<PerfSample> samples;
  std::printf("\n%-14s %10s %14s %14s %14s %14s\n", "config", "wall-s",
              "events", "events/s", "messages", "msgs/s");
  for (const ProtocolKind p : protocols) {
    core::ExperimentConfig c = opt.base_config();
    c.protocol = p;
    const PerfSample s = timed_run(c);
    const double wall = s.wall_seconds > 0.0 ? s.wall_seconds : 1e-9;
    std::printf("%-14s %10.3f %14llu %14.0f %14llu %14.0f\n", s.name.c_str(),
                s.wall_seconds, static_cast<unsigned long long>(s.events),
                static_cast<double>(s.events) / wall,
                static_cast<unsigned long long>(s.messages),
                static_cast<double>(s.messages) / wall);
    samples.push_back(s);
  }
  std::printf("\npeak RSS: %.1f MiB\n",
              static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));

  if (!write_perf_json(opt.json_path, "hotpath", opt, samples)) return 1;
  std::printf("wrote %s\n", opt.json_path.c_str());
  return 0;
}
