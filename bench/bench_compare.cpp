// Mechanical perf-regression gate over two BENCH_*.json perf-trajectory
// files (the schema bench_common.hpp's write_perf_json emits).
//
//   ./bench_compare [--threshold 0.10] [--check-counts=1] old.json new.json
//
// (Flag values use the = form when a positional operand follows, matching
// CliArgs's "--name value" consumption rule.)
//
// For every experiment name present in both files it compares the hot-path
// rates (events/sec, messages/sec) and exits non-zero when the new file is
// more than `threshold` slower on any of them.  Wall-clock rates only make
// sense on one machine under one config, so the tool refuses to compare
// files whose nodes/hours differ.
//
// --check-counts additionally fails when the event/message *counts* drift
// for the same config+seed — a determinism tripwire: an engine refactor
// that changes counts changed the simulated trajectory, not just its speed.
//
// The checked-in bench/BENCH_baseline.json is the perf-history anchor; the
// bench_compare ctest target re-runs bench_report at the baseline's config
// and diffs against it with a tolerant threshold (CI machines are noisy —
// the gate is for order-of-magnitude regressions, the README table is for
// the curated trajectory).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/cli.hpp"

namespace {

struct Experiment {
  std::string name;
  double wall_seconds = 0.0;
  double events = 0.0;
  double events_per_sec = 0.0;
  double messages = 0.0;
  double messages_per_sec = 0.0;
};

struct Report {
  double nodes = 0.0;
  double hours = 0.0;
  double seed = 0.0;
  std::vector<Experiment> experiments;
};

/// Extract the number following `"key": ` in text[from, to); nullopt when
/// the key is absent there.  Bounding the search keeps a field missing from
/// one experiment block from silently reading the next block's value.
/// Tolerant of whitespace; enough JSON for our own schema.
std::optional<double> find_number(const std::string& text,
                                  const std::string& key, std::size_t from,
                                  std::size_t to = std::string::npos) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= to) return std::nullopt;
  const char* start = text.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return v;
}

std::optional<Report> parse_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  Report r;
  r.nodes = find_number(text, "nodes", 0).value_or(0.0);
  r.hours = find_number(text, "hours", 0).value_or(0.0);
  r.seed = find_number(text, "seed", 0).value_or(0.0);

  std::size_t pos = 0;
  for (;;) {
    const std::string needle = "\"name\": \"";
    const std::size_t at = text.find(needle, pos);
    if (at == std::string::npos) break;
    const std::size_t name_start = at + needle.size();
    const std::size_t name_end = text.find('"', name_start);
    if (name_end == std::string::npos) break;
    // Fields must come from this experiment's block: bound the search at
    // the next experiment's "name" key (or end of file for the last one).
    std::size_t block_end = text.find(needle, name_end);
    if (block_end == std::string::npos) block_end = text.size();
    Experiment e;
    e.name = text.substr(name_start, name_end - name_start);
    e.wall_seconds =
        find_number(text, "wall_seconds", name_end, block_end).value_or(0.0);
    e.events = find_number(text, "events", name_end, block_end).value_or(0.0);
    e.events_per_sec =
        find_number(text, "events_per_sec", name_end, block_end).value_or(0.0);
    e.messages =
        find_number(text, "messages", name_end, block_end).value_or(0.0);
    e.messages_per_sec = find_number(text, "messages_per_sec", name_end,
                                     block_end).value_or(0.0);
    r.experiments.push_back(std::move(e));
    pos = name_end;
  }
  if (r.experiments.empty()) {
    std::fprintf(stderr, "bench_compare: no experiments found in %s\n",
                 path.c_str());
    return std::nullopt;
  }
  return r;
}

const Experiment* find_experiment(const Report& r, const std::string& name) {
  for (const auto& e : r.experiments) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  // Positional operands (the two files) are whatever does not look like a
  // flag; flags go through CliArgs.
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      // Skip the flag's value form "--name value".
      const bool has_eq = std::strchr(argv[i], '=') != nullptr;
      const bool next_is_value =
          !has_eq && i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0;
      if (next_is_value) ++i;
      continue;
    }
    files.emplace_back(argv[i]);
  }
  const soc::CliArgs args(argc, argv);
  const double threshold = args.get_double("threshold", 0.10);
  const bool check_counts = args.get_bool("check-counts", false);

  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare [--threshold 0.10] [--check-counts=1] "
                 "old.json new.json\n");
    return 2;
  }

  const auto old_r = parse_report(files[0]);
  const auto new_r = parse_report(files[1]);
  if (!old_r.has_value() || !new_r.has_value()) return 2;

  if (old_r->nodes != new_r->nodes || old_r->hours != new_r->hours) {
    std::fprintf(stderr,
                 "bench_compare: config mismatch (old: nodes=%.0f hours=%.2f, "
                 "new: nodes=%.0f hours=%.2f) — rates are not comparable\n",
                 old_r->nodes, old_r->hours, new_r->nodes, new_r->hours);
    return 2;
  }
  const bool same_seed = old_r->seed == new_r->seed;

  std::printf("# bench_compare %s -> %s (threshold %.0f%%)\n",
              files[0].c_str(), files[1].c_str(), threshold * 100.0);
  std::printf("%-14s %14s %14s %8s %14s %14s %8s\n", "config", "old-ev/s",
              "new-ev/s", "ratio", "old-msg/s", "new-msg/s", "ratio");

  int regressions = 0;
  int count_drifts = 0;
  // A baseline experiment missing from the new report is the most extreme
  // regression of all (the benchmark vanished) — never pass it silently.
  for (const Experiment& e_old : old_r->experiments) {
    if (find_experiment(*new_r, e_old.name) == nullptr) {
      std::printf("%-14s MISSING from new report  << REGRESSION\n",
                  e_old.name.c_str());
      ++regressions;
    }
  }
  for (const Experiment& e_new : new_r->experiments) {
    const Experiment* e_old = find_experiment(*old_r, e_new.name);
    if (e_old == nullptr) {
      std::printf("%-14s (new; no baseline)\n", e_new.name.c_str());
      continue;
    }
    const double ev_ratio = e_old->events_per_sec > 0.0
                                ? e_new.events_per_sec / e_old->events_per_sec
                                : 1.0;
    const double msg_ratio =
        e_old->messages_per_sec > 0.0
            ? e_new.messages_per_sec / e_old->messages_per_sec
            : 1.0;
    const bool regressed =
        ev_ratio < 1.0 - threshold || msg_ratio < 1.0 - threshold;
    std::printf("%-14s %14.0f %14.0f %7.2fx %14.0f %14.0f %7.2fx%s\n",
                e_new.name.c_str(), e_old->events_per_sec,
                e_new.events_per_sec, ev_ratio, e_old->messages_per_sec,
                e_new.messages_per_sec, msg_ratio,
                regressed ? "  << REGRESSION" : "");
    if (regressed) ++regressions;
    if (same_seed &&
        (e_old->events != e_new.events || e_old->messages != e_new.messages)) {
      ++count_drifts;
      std::printf(
          "%-14s note: same-seed counts drifted (events %.0f -> %.0f, "
          "messages %.0f -> %.0f)%s\n",
          "", e_old->events, e_new.events, e_old->messages, e_new.messages,
          check_counts ? "  << DRIFT" : " — trajectory changed");
    }
  }

  if (regressions > 0) {
    std::fprintf(stderr, "bench_compare: %d regression(s) beyond %.0f%%\n",
                 regressions, threshold * 100.0);
    return 1;
  }
  if (check_counts && count_drifts > 0) {
    std::fprintf(stderr,
                 "bench_compare: %d same-seed count drift(s) — determinism "
                 "tripwire\n",
                 count_drifts);
    return 1;
  }
  std::printf("bench_compare: OK\n");
  return 0;
}
