// Mechanical perf-regression gate over BENCH_*.json perf-trajectory files
// (the schema bench_common.hpp's write_perf_json emits).  The comparison
// logic lives in bench/compare_core.hpp (unit-tested); this file is the
// CLI.
//
//   ./bench_compare [--threshold 0.10] [--check-counts=1] old.json new.json
//   ./bench_compare --trend=N [--threshold 0.10] [--check-counts=1]
//                   hist1.json hist2.json ... new.json
//
// (Flag values use the = form when a positional operand follows, matching
// CliArgs's "--name value" consumption rule.)
//
// Single-baseline mode compares the hot-path rates (events/sec,
// messages/sec) of every experiment present in both files and exits
// non-zero when the new file is more than `threshold` slower on any of
// them.  Trend mode gates against the per-experiment *median* of the last
// N history files instead — one noisy baseline cannot move a median, so
// the threshold can sit tighter without flaking (run it once several PRs
// of baseline history exist).  Wall-clock rates only make sense on one
// machine under one config, so the tool refuses to compare files whose
// nodes/hours differ.
//
// --check-counts additionally fails when the event/message *counts* drift
// for the same config+seed — a determinism tripwire: an engine refactor
// that changes counts changed the simulated trajectory, not just its
// speed.  In trend mode counts compare against the most recent history
// file (counts are exact; medians are not meaningful for them).
//
// The checked-in bench/BENCH_baseline.json is the perf-history anchor; the
// bench_compare ctest target re-runs bench_report at the baseline's config
// and diffs against it with a tolerant threshold (CI machines are noisy —
// the gate is for order-of-magnitude regressions, the README table is for
// the curated trajectory).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bench/compare_core.hpp"
#include "src/common/cli.hpp"

namespace {

std::optional<soc::bench::PerfReport> parse_report_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  auto r = soc::bench::parse_report_text(buf.str(), &err);
  if (!r.has_value()) {
    std::fprintf(stderr, "bench_compare: %s in %s\n", err.c_str(),
                 path.c_str());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // Positional operands (the report files) are whatever does not look like
  // a flag; flags go through CliArgs.
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      // Skip the flag's value form "--name value".
      const bool has_eq = std::strchr(argv[i], '=') != nullptr;
      const bool next_is_value =
          !has_eq && i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0;
      if (next_is_value) ++i;
      continue;
    }
    files.emplace_back(argv[i]);
  }
  const soc::CliArgs args(argc, argv);
  const double threshold = args.get_double("threshold", 0.10);
  const bool check_counts = args.get_bool("check-counts", false);
  const auto trend = static_cast<std::size_t>(args.get_int("trend", 0));

  if ((trend == 0 && files.size() != 2) || (trend > 0 && files.size() < 2)) {
    std::fprintf(
        stderr,
        "usage: bench_compare [--threshold 0.10] [--check-counts=1] "
        "old.json new.json\n"
        "       bench_compare --trend=N [...] hist1.json ... new.json\n");
    return 2;
  }

  std::vector<soc::bench::PerfReport> reports;
  for (const std::string& f : files) {
    const auto r = parse_report_file(f);
    if (!r.has_value()) return 2;
    reports.push_back(*r);
  }
  const soc::bench::PerfReport fresh = reports.back();
  reports.pop_back();

  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (reports[i].nodes != fresh.nodes || reports[i].hours != fresh.hours) {
      std::fprintf(stderr,
                   "bench_compare: config mismatch (%s: nodes=%.0f "
                   "hours=%.2f, new: nodes=%.0f hours=%.2f) — rates are not "
                   "comparable\n",
                   files[i].c_str(), reports[i].nodes, reports[i].hours,
                   fresh.nodes, fresh.hours);
      return 2;
    }
  }

  const soc::bench::PerfReport base =
      trend > 0 ? soc::bench::median_baseline(reports, trend) : reports[0];
  const bool same_seed = base.seed == fresh.seed;

  if (trend > 0) {
    std::printf("# bench_compare --trend=%zu over %zu history file(s) -> %s "
                "(threshold %.0f%%)\n",
                trend, reports.size(), files.back().c_str(),
                threshold * 100.0);
  } else {
    std::printf("# bench_compare %s -> %s (threshold %.0f%%)\n",
                files[0].c_str(), files.back().c_str(), threshold * 100.0);
  }

  const soc::bench::CompareOutcome out = soc::bench::compare_reports(
      base, fresh, threshold, same_seed, check_counts);

  if (out.regressions > 0) {
    std::fprintf(stderr, "bench_compare: %d regression(s) beyond %.0f%%\n",
                 out.regressions, threshold * 100.0);
    return 1;
  }
  if (check_counts && out.count_drifts > 0) {
    std::fprintf(stderr,
                 "bench_compare: %d same-seed count drift(s) — determinism "
                 "tripwire\n",
                 out.count_drifts);
    return 1;
  }
  std::printf("bench_compare: OK\n");
  return 0;
}
