// Shared driver for Figs. 5, 6 and 7: the six-protocol comparison
// (SID-CAN, HID-CAN, SID-CAN+SoS, HID-CAN+SoS, SID-CAN+VD, Newscast) over
// one simulated day, reporting throughput ratio, failed task ratio and
// Jain's fairness index — at a figure-specific demand ratio λ.
#pragma once

#include "bench/bench_common.hpp"

namespace soc::bench {

inline int run_six_protocol_figure(int argc, char** argv, int figure_no,
                                   double lambda) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  char what[128];
  std::snprintf(what, sizeof what,
                "Fig. %d: efficacy of resource discovery protocols "
                "(lambda = %.2f)",
                figure_no, lambda);
  opt.print_header(what);

  using core::ProtocolKind;
  const std::vector<ProtocolKind> protocols{
      ProtocolKind::kSidCan,    ProtocolKind::kHidCan,
      ProtocolKind::kSidCanSos, ProtocolKind::kHidCanSos,
      ProtocolKind::kSidCanVd,  ProtocolKind::kNewscast};

  std::vector<core::ExperimentConfig> configs;
  for (const ProtocolKind p : protocols) {
    auto c = opt.base_config();
    c.protocol = p;
    c.demand_ratio = lambda;
    configs.push_back(c);
  }
  const auto results = run_all(configs);

  char title[96];
  std::snprintf(title, sizeof title, "Fig. %d(a) throughput ratio", figure_no);
  print_series(title, [](const metrics::SeriesSample& s) { return s.t_ratio; },
               results);
  std::snprintf(title, sizeof title, "Fig. %d(b) failed task ratio",
                figure_no);
  print_series(title, [](const metrics::SeriesSample& s) { return s.f_ratio; },
               results);
  std::snprintf(title, sizeof title, "Fig. %d(c) fairness index", figure_no);
  print_series(title,
               [](const metrics::SeriesSample& s) { return s.fairness; },
               results);
  print_summary(results);
  return 0;
}

}  // namespace soc::bench
