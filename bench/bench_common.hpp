// Shared infrastructure for the perf benches: option parsing, timed
// experiment runs, and the BENCH_*.json perf-trajectory report.
//
// The paper's figure/table grids no longer live here — they are SweepSpec
// presets (`sweep_run --preset fig4` … — see src/sweep/spec.hpp), which
// run sharded, resumable, and byte-deterministic instead of via an
// in-process thread pool.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/json_mini.hpp"
#include "src/core/soc.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/registry.hpp"

namespace soc::bench {

struct BenchOptions {
  std::size_t nodes = 384;        ///< scaled default; --full → 2000
  double hours = 6.0;             ///< scaled default; --full → 24
  std::uint64_t seed = 1;
  bool full = false;
  std::string json_path;          ///< --json <path>: emit a BENCH_*.json

  static BenchOptions parse(int argc, char** argv) {
    const CliArgs args(argc, argv);
    BenchOptions o;
    o.full = args.get_bool("full", false);
    o.nodes = static_cast<std::size_t>(
        args.get_int("nodes", o.full ? 2000 : 384));
    o.hours = args.get_double("hours", o.full ? 24.0 : 6.0);
    o.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    o.json_path = args.get("json", "");
    return o;
  }

  [[nodiscard]] core::ExperimentConfig base_config() const {
    core::ExperimentConfig c;
    c.nodes = nodes;
    c.duration = seconds(hours * 3600.0);
    c.sample_step = seconds(3600);
    c.seed = seed;
    return c;
  }

  void print_header(const char* what) const {
    std::printf("# %s\n", what);
    std::printf("# nodes=%zu duration=%.1fh seed=%llu%s\n", nodes, hours,
                static_cast<unsigned long long>(seed),
                full ? " (paper scale)" : " (scaled; pass --full for paper scale)");
  }
};

// ---------------------------------------------------------------------------
// Perf-trajectory JSON (--json <path>).
//
// Every bench can emit a machine-readable BENCH_*.json so successive PRs
// have a perf baseline to beat.  Schema (one object per file):
//   {
//     "bench": "<name>",            // e.g. "hotpath"
//     "nodes": 384, "hours": 6.0, "seed": 1, "full": false,
//     "peak_rss_bytes": 123456789,  // getrusage high-water mark
//     "peak_rss_bytes_per_node": 321412.0,  // per configured node
//     "experiments": [
//       { "name": "HID-CAN", "wall_seconds": 1.23,
//         "events": 1000, "events_per_sec": 813.0,
//         "messages": 500, "messages_per_sec": 406.5,
//         "t_ratio": 0.9, "f_ratio": 0.05, "msgs_per_node": 120.0,
//         "slot_span_ratio": 1.0,   // per-node map density (≥ 1.0)
//         "latency": {              // per-query tail latency (seconds)
//           "first_result": { "n": 100, "mean_s": 1.0, "p50_s": 0.8,
//                             "p95_s": 2.0, "p99_s": 3.0, "p999_s": 4.0 },
//           "finish": { ... } },
//         "traffic": [
//           { "type": "state-update", "sent": 10, "delivered": 9,
//             "lost": 1 } ] }
//     ]
//   }
//
// bench_compare diffs two such files and exits non-zero on regressions
// beyond a threshold (see bench/bench_compare.cpp).
// ---------------------------------------------------------------------------

/// One timed experiment run for the JSON report.
struct PerfSample {
  std::string name;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  double t_ratio = 0.0;
  double f_ratio = 0.0;
  double msgs_per_node = 0.0;
  std::uint64_t messages_partitioned = 0;
  std::uint64_t stale_dead_provider = 0;
  std::uint64_t stale_misplaced = 0;
  double slot_span_ratio = 1.0;
  metrics::LatencyHistogram latency_first_result;
  metrics::LatencyHistogram latency_finish;
  std::vector<core::ExperimentResults::MsgTypeCounts> traffic;
  std::vector<obs::MetricSample> metrics;
};

/// Resident-set high-water mark of this process, in bytes.
inline std::uint64_t peak_rss_bytes() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(u.ru_maxrss);  // macOS reports bytes
#else
  return static_cast<std::uint64_t>(u.ru_maxrss) * 1024;  // Linux: KiB
#endif
}

/// Run one config under a wall-clock timer and record the hot-path rates.
/// With a TimeProfiler, each delivered message's handler is additionally
/// timed into the profiler's per-MsgType bucket (pure observer on the
/// trajectory, but it costs a clock pair per delivery — keep it off for
/// the rate figures the trajectory gate compares).
inline PerfSample timed_run(const core::ExperimentConfig& config,
                            obs::TimeProfiler* profiler = nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  core::Experiment exp(config);
  exp.setup();
  if (profiler != nullptr) exp.bus().set_time_profiler(profiler);
  exp.run();
  const core::ExperimentResults r = exp.results();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  PerfSample s;
  s.name = r.protocol;
  s.wall_seconds = dt.count();
  s.events = r.events_executed;
  s.messages = r.total_messages;
  s.t_ratio = r.t_ratio;
  s.f_ratio = r.f_ratio;
  s.msgs_per_node = r.msg_cost_per_node;
  s.messages_partitioned = r.messages_partitioned;
  s.stale_dead_provider = r.stale_records_dead_provider;
  s.stale_misplaced = r.stale_records_misplaced;
  s.slot_span_ratio = r.slot_span_ratio;
  s.latency_first_result = r.latency_first_result;
  s.latency_finish = r.latency_finish;
  s.traffic = r.traffic_by_type;
  s.metrics = r.metrics;
  return s;
}

/// One "latency" sub-object line for write_perf_json.
inline void write_latency_json(std::FILE* f, const char* key,
                               const metrics::LatencyHistogram& h,
                               const char* trailer) {
  std::fprintf(f,
               "\"%s\": { \"n\": %llu, \"mean_s\": %.6f, \"p50_s\": %.6f, "
               "\"p95_s\": %.6f, \"p99_s\": %.6f, \"p999_s\": %.6f }%s",
               key, static_cast<unsigned long long>(h.total()), h.mean_s(),
               h.percentile_s(50.0), h.percentile_s(95.0),
               h.percentile_s(99.0), h.percentile_s(99.9), trailer);
}

/// Emit the perf-trajectory JSON; returns false (with a warning) on I/O
/// failure so benches keep printing their tables regardless.
inline bool write_perf_json(const std::string& path, const char* bench_name,
                            const BenchOptions& opt,
                            const std::vector<PerfSample>& samples) {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n",
               json_mini::escape(bench_name).c_str());
  std::fprintf(f, "  \"nodes\": %zu,\n", opt.nodes);
  std::fprintf(f, "  \"hours\": %.3f,\n", opt.hours);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(opt.seed));
  std::fprintf(f, "  \"full\": %s,\n", opt.full ? "true" : "false");
  const std::uint64_t rss = peak_rss_bytes();
  std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(rss));
  std::fprintf(f, "  \"peak_rss_bytes_per_node\": %.1f,\n",
               static_cast<double>(rss) /
                   static_cast<double>(std::max<std::size_t>(opt.nodes, 1)));
  std::fprintf(f, "  \"experiments\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const PerfSample& s = samples[i];
    const double wall = s.wall_seconds > 0.0 ? s.wall_seconds : 1e-9;
    std::fprintf(f,
                 "    { \"name\": \"%s\", \"wall_seconds\": %.6f,\n"
                 "      \"events\": %llu, \"events_per_sec\": %.1f,\n"
                 "      \"messages\": %llu, \"messages_per_sec\": %.1f,\n"
                 "      \"t_ratio\": %.6f, \"f_ratio\": %.6f, "
                 "\"msgs_per_node\": %.3f,\n"
                 "      \"messages_partitioned\": %llu,\n"
                 "      \"stale_dead_provider\": %llu, "
                 "\"stale_misplaced\": %llu,\n"
                 "      \"slot_span_ratio\": %.3f,\n"
                 "      \"latency\": { ",
                 json_mini::escape(s.name).c_str(), s.wall_seconds,
                 static_cast<unsigned long long>(s.events),
                 static_cast<double>(s.events) / wall,
                 static_cast<unsigned long long>(s.messages),
                 static_cast<double>(s.messages) / wall, s.t_ratio, s.f_ratio,
                 s.msgs_per_node,
                 static_cast<unsigned long long>(s.messages_partitioned),
                 static_cast<unsigned long long>(s.stale_dead_provider),
                 static_cast<unsigned long long>(s.stale_misplaced),
                 s.slot_span_ratio);
    write_latency_json(f, "first_result", s.latency_first_result, ", ");
    write_latency_json(f, "finish", s.latency_finish, " },\n");
    std::fprintf(f, "      \"traffic\": [");
    for (std::size_t t = 0; t < s.traffic.size(); ++t) {
      const auto& m = s.traffic[t];
      std::fprintf(f,
                   "%s\n        { \"type\": \"%s\", \"sent\": %llu, "
                   "\"delivered\": %llu, \"lost\": %llu, "
                   "\"partitioned\": %llu }",
                   t > 0 ? "," : "", json_mini::escape(m.type).c_str(),
                   static_cast<unsigned long long>(m.sent),
                   static_cast<unsigned long long>(m.delivered),
                   static_cast<unsigned long long>(m.lost),
                   static_cast<unsigned long long>(m.partitioned));
    }
    // Registry snapshot as {"k","v"} pairs: metric names live inside
    // escaped string *values*, so a hostile name can never alias a schema
    // key under json_mini's needle parsing (see src/obs/registry.hpp).
    std::fprintf(f, " ],\n      \"metrics\": [");
    for (std::size_t m = 0; m < s.metrics.size(); ++m) {
      std::fprintf(f, "%s\n        { \"k\": \"%s\", \"v\": %.6f }",
                   m > 0 ? "," : "",
                   json_mini::escape(s.metrics[m].name).c_str(),
                   s.metrics[m].value);
    }
    std::fprintf(f, " ] }%s\n", i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace soc::bench
