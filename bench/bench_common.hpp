// Shared infrastructure for the reproduction benches: option parsing,
// parallel execution of experiment configurations (one deterministic
// single-threaded simulation per core), and paper-style series/table
// printing.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/core/soc.hpp"

namespace soc::bench {

struct BenchOptions {
  std::size_t nodes = 384;        ///< scaled default; --full → 2000
  double hours = 6.0;             ///< scaled default; --full → 24
  std::uint64_t seed = 1;
  bool full = false;

  static BenchOptions parse(int argc, char** argv) {
    const CliArgs args(argc, argv);
    BenchOptions o;
    o.full = args.get_bool("full", false);
    o.nodes = static_cast<std::size_t>(
        args.get_int("nodes", o.full ? 2000 : 384));
    o.hours = args.get_double("hours", o.full ? 24.0 : 6.0);
    o.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    return o;
  }

  [[nodiscard]] core::ExperimentConfig base_config() const {
    core::ExperimentConfig c;
    c.nodes = nodes;
    c.duration = seconds(hours * 3600.0);
    c.sample_step = seconds(3600);
    c.seed = seed;
    return c;
  }

  void print_header(const char* what) const {
    std::printf("# %s\n", what);
    std::printf("# nodes=%zu duration=%.1fh seed=%llu%s\n", nodes, hours,
                static_cast<unsigned long long>(seed),
                full ? " (paper scale)" : " (scaled; pass --full for paper scale)");
  }
};

/// Run all configs in parallel (each simulation stays single-threaded and
/// deterministic); results come back in input order.
inline std::vector<core::ExperimentResults> run_all(
    const std::vector<core::ExperimentConfig>& configs) {
  std::vector<core::ExperimentResults> results(configs.size());
  ThreadPool pool;
  pool.parallel_for(configs.size(), [&](std::size_t i) {
    results[i] = core::run_experiment(configs[i]);
  });
  return results;
}

/// Print one metric of all runs as an hour-by-hour series table, the shape
/// the paper's figures plot.
inline void print_series(
    const char* title,
    const std::function<double(const metrics::SeriesSample&)>& metric,
    const std::vector<core::ExperimentResults>& results) {
  std::printf("\n## %s\n", title);
  std::printf("%-6s", "hour");
  for (const auto& r : results) std::printf(" %12s", r.protocol.c_str());
  std::printf("\n");
  if (results.empty() || results[0].series.empty()) return;
  for (std::size_t row = 0; row < results[0].series.size(); ++row) {
    std::printf("%-6.0f", results[0].series[row].hour);
    for (const auto& r : results) {
      std::printf(" %12.3f", row < r.series.size() ? metric(r.series[row]) : 0.0);
    }
    std::printf("\n");
  }
}

/// Print the end-of-run summary row per configuration.
inline void print_summary(const std::vector<core::ExperimentResults>& results,
                          const std::vector<std::string>& labels = {}) {
  std::printf("\n## summary\n");
  std::printf("%-18s %8s %8s %9s %10s %10s %12s\n", "config", "T-Ratio",
              "F-Ratio", "fairness", "generated", "finished", "msgs/node");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const std::string label = i < labels.size() ? labels[i] : r.protocol;
    std::printf("%-18s %8.3f %8.3f %9.3f %10llu %10llu %12.0f\n",
                label.c_str(), r.t_ratio, r.f_ratio, r.fairness,
                static_cast<unsigned long long>(r.generated),
                static_cast<unsigned long long>(r.finished),
                r.msg_cost_per_node);
  }
}

}  // namespace soc::bench
