// Fig. 5 — six-protocol comparison at demand ratio λ = 1.
#include "bench/bench_fig567.hpp"

int main(int argc, char** argv) {
  return soc::bench::run_six_protocol_figure(argc, argv, 5, 1.0);
}
