// Ablation A2 — index-node selection policy.  The paper's design picks a
// random 2^k level then a random sample ("our strategy adopts probabilistic
// theory ... randomly selected rather than based on some fixed rules");
// the alternatives are a fixed nearest-entry rule and a level-blind uniform
// draw over the table.
#include "bench/bench_common.hpp"

using namespace soc;
using namespace soc::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.print_header(
      "Ablation A2: NINode selection policy (HID-CAN, lambda = 0.5)");

  struct Case {
    index::IndexSelectPolicy policy;
    const char* label;
  };
  const std::vector<Case> cases{
      {index::IndexSelectPolicy::kRandomPowerLevel, "random-2^k (paper)"},
      {index::IndexSelectPolicy::kNearestOnly, "nearest-only"},
      {index::IndexSelectPolicy::kUniformEntry, "uniform-entry"},
  };

  std::vector<core::ExperimentConfig> configs;
  std::vector<std::string> labels;
  for (const auto& c0 : cases) {
    auto c = opt.base_config();
    c.protocol = core::ProtocolKind::kHidCan;
    c.demand_ratio = 0.5;
    c.inscan.select_policy = c0.policy;
    configs.push_back(c);
    labels.emplace_back(c0.label);
  }
  const auto results = run_all(configs);

  std::printf("\n%-20s %10s %10s %10s %16s\n", "policy", "T-Ratio", "F-Ratio",
              "fairness", "msgs/node");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("%-20s %10.3f %10.3f %10.3f %16.0f\n", labels[i].c_str(),
                r.t_ratio, r.f_ratio, r.fairness, r.msg_cost_per_node);
  }
  return 0;
}
