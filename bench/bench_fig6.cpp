// Fig. 6 — six-protocol comparison at demand ratio λ = 0.5.
#include "bench/bench_fig567.hpp"

int main(int argc, char** argv) {
  return soc::bench::run_six_protocol_figure(argc, argv, 6, 0.5);
}
