// Scale lane: prove the compacted memory layout at large populations on
// one machine.
//
//   ./bench_scale [--nodes N] [--hours H] [--seed S] [--churn D]
//                 [--protocol NAME] [--json BENCH_scale.json]
//                 [--verify-identical]
//
// One join/churn/query experiment at scale (defaults: 100k nodes, a short
// sim window, HID-CAN).  Emits the BENCH schema with the two memory-layout
// fields this lane exists to track: peak_rss_bytes_per_node (the
// bytes-per-node budget) and slot_span_ratio (worst per-node map density —
// bounded by DenseNodeMap compaction, see src/common/dense_node_map.hpp).
//
// --verify-identical runs the identical config twice in-process and fails
// unless both runs produce bit-identical results (FNV over counters and
// raw metric bits) — the determinism half of the scale acceptance
// criterion.  The 1M-node invocation is in README "Scaling"; the ctest
// `scale` label runs the 100k smoke (see CMakeLists.txt).
#include <bit>
#include <cinttypes>

#include "bench/bench_common.hpp"

using namespace soc;
using namespace soc::bench;

namespace {

/// FNV-1a over the deterministic results fields (counters + raw double
/// bits), mirroring tests/golden_trajectory_test.cpp's fingerprint shape.
std::uint64_t results_fingerprint(const core::ExperimentResults& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto add = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  const auto add_double = [&add](double d) {
    add(std::bit_cast<std::uint64_t>(d));
  };
  add(r.generated);
  add(r.finished);
  add(r.failed);
  add(r.total_messages);
  add(r.messages_delivered);
  add(r.messages_lost);
  add(r.messages_partitioned);
  add(r.events_executed);
  add_double(r.t_ratio);
  add_double(r.f_ratio);
  add_double(r.fairness);
  add_double(r.avg_query_delay_s);
  add_double(r.slot_span_ratio);
  for (const auto& s : r.series) {
    add(s.generated);
    add(s.finished);
    add(s.failed);
    add_double(s.t_ratio);
    add_double(s.f_ratio);
    add_double(s.fairness);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  BenchOptions opt;  // scale-lane defaults, not BenchOptions::parse's
  opt.nodes = static_cast<std::size_t>(args.get_int("nodes", 100000));
  opt.hours = args.get_double("hours", 0.05);
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  opt.json_path = args.get("json", "BENCH_scale.json");
  const double churn = args.get_double("churn", 0.05);
  const std::string proto_name = args.get("protocol", "HID-CAN");
  const bool verify_identical = args.get_bool("verify-identical", false);

  const auto protocol = core::protocol_from_name(proto_name);
  if (!protocol.has_value()) {
    std::fprintf(stderr, "bench_scale: unknown protocol '%s'\n",
                 proto_name.c_str());
    return 2;
  }

  std::printf("# Scale lane: %zu nodes, %.3fh, churn %.3f, %s, seed %llu\n",
              opt.nodes, opt.hours, churn, proto_name.c_str(),
              static_cast<unsigned long long>(opt.seed));

  core::ExperimentConfig c = opt.base_config();
  c.protocol = *protocol;
  c.churn_dynamic_degree = churn;

  const auto t0 = std::chrono::steady_clock::now();
  const core::ExperimentResults r1 = core::run_experiment(c);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  PerfSample s;
  s.name = r1.protocol;
  s.wall_seconds = dt.count();
  s.events = r1.events_executed;
  s.messages = r1.total_messages;
  s.t_ratio = r1.t_ratio;
  s.f_ratio = r1.f_ratio;
  s.msgs_per_node = r1.msg_cost_per_node;
  s.messages_partitioned = r1.messages_partitioned;
  s.stale_dead_provider = r1.stale_records_dead_provider;
  s.stale_misplaced = r1.stale_records_misplaced;
  s.slot_span_ratio = r1.slot_span_ratio;
  s.traffic = r1.traffic_by_type;
  s.metrics = r1.metrics;
  const double wall = s.wall_seconds > 0.0 ? s.wall_seconds : 1e-9;
  const std::uint64_t rss = peak_rss_bytes();
  std::printf("%-14s %10.1fs %12llu ev %10.0f ev/s %12llu msg\n",
              s.name.c_str(), s.wall_seconds,
              static_cast<unsigned long long>(s.events),
              static_cast<double>(s.events) / wall,
              static_cast<unsigned long long>(s.messages));
  std::printf("peak RSS: %.1f MiB  (%.0f bytes/node)\n",
              static_cast<double>(rss) / (1024.0 * 1024.0),
              static_cast<double>(rss) / static_cast<double>(c.nodes));
  std::printf("slot_span_ratio: %.3f\n", s.slot_span_ratio);

  // Attribution-profiler breakdown: per-subsystem bytes/node from the
  // registry's capacity accounting (mem.<bucket>.bytes), against the
  // process-level peak-RSS figure above.  The coverage ratio says how much
  // of the real footprint the hooks explain — allocator slack, binary and
  // stack make up the remainder.
  std::printf("\n%-24s %14s %12s\n", "subsystem", "bytes", "bytes/node");
  double accounted = 0.0;
  for (const auto& m : s.metrics) {
    if (m.name.rfind("mem.", 0) != 0 || m.name == "mem.slot_span_ratio" ||
        m.name == "mem.total.bytes") {
      continue;
    }
    // mem.<bucket>.bytes -> <bucket>
    const std::string bucket = m.name.substr(4, m.name.size() - 4 - 6);
    std::printf("%-24s %14.0f %12.1f\n", bucket.c_str(), m.value,
                m.value / static_cast<double>(c.nodes));
    accounted += m.value;
  }
  std::printf("%-24s %14.0f %12.1f  (%.0f%% of peak RSS)\n", "total",
              accounted, accounted / static_cast<double>(c.nodes),
              100.0 * accounted / static_cast<double>(rss));
  // The phase-boundary RSS gauges separate the two halves of the gap:
  // against the post-join RSS (before churn) the capacity hooks explain
  // nearly everything; the extra RSS the churn phase adds is glibc
  // free-list slack from departed nodes' freed state — held by the
  // allocator, attributable to no subsystem, and itself a bytes/node
  // lever (pooling per-node protocol state would reclaim it).
  for (const auto& m : s.metrics) {
    if (m.name == "rss.post_join.bytes" && m.value > 0.0) {
      std::printf("coverage vs post-join RSS: %.0f%%  (churn adds %.1f MiB "
                  "allocator slack, %.0f bytes/node)\n",
                  100.0 * accounted / m.value,
                  (static_cast<double>(rss) - m.value) / (1024.0 * 1024.0),
                  (static_cast<double>(rss) - m.value) /
                      static_cast<double>(c.nodes));
    }
  }

  int rc = 0;
  if (verify_identical) {
    // Re-run the identical config and compare full result fingerprints.
    // The second run shares this process's heap on purpose: bit-identity
    // must hold against allocator/address-layout differences, not be an
    // artifact of a fresh address space.
    const core::ExperimentResults r2 = core::run_experiment(c);
    const std::uint64_t f1 = results_fingerprint(r1);
    const std::uint64_t f2 = results_fingerprint(r2);
    if (f1 == f2) {
      std::printf("verify-identical: OK (fingerprint %016" PRIx64 ")\n", f1);
    } else {
      std::fprintf(stderr,
                   "verify-identical: FAILED (%016" PRIx64 " != %016" PRIx64
                   ") — same-seed trajectory diverged\n",
                   f1, f2);
      rc = 1;
    }
  }

  if (!write_perf_json(opt.json_path, "scale", opt, {s})) return 1;
  std::printf("wrote %s\n", opt.json_path.c_str());
  return rc;
}
