// Table III — system scalability of HID-CAN (λ = 0.5): throughput ratio,
// failed task ratio and fairness should stay flat as the system grows,
// while the per-node message delivery cost grows roughly logarithmically.
#include "bench/bench_common.hpp"

using namespace soc;
using namespace soc::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.print_header("Table III: system scalability of HID-CAN (lambda = 0.5)");

  // Paper scale: 2000–12000 nodes over one day.  Scaled default: the same
  // 6× span starting lower so the suite stays CI-friendly.
  const std::vector<std::size_t> scales =
      opt.full ? std::vector<std::size_t>{2000, 4000, 6000, 8000, 10000, 12000}
               : std::vector<std::size_t>{250, 500, 750, 1000, 1250, 1500};

  std::vector<core::ExperimentConfig> configs;
  std::vector<std::string> labels;
  for (const std::size_t n : scales) {
    auto c = opt.base_config();
    c.protocol = core::ProtocolKind::kHidCan;
    c.demand_ratio = 0.5;
    c.nodes = n;
    configs.push_back(c);
    labels.push_back("n=" + std::to_string(n));
  }
  const auto results = run_all(configs);

  std::printf("\n%-10s %12s %12s %12s %16s\n", "scale", "T-Ratio", "F-Ratio",
              "fairness", "msg-cost/node");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("%-10s %12.3f %11.1f%% %12.3f %16.0f\n", labels[i].c_str(),
                r.t_ratio, r.f_ratio * 100.0, r.fairness,
                r.msg_cost_per_node);
  }
  print_summary(results, labels);
  return 0;
}
